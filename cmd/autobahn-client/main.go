// Command autobahn-client is the open-loop load generator for TCP
// deployments (cmd/autobahn-node): it streams newline-delimited random
// transactions of a fixed size at a constant rate, matching the paper's
// workload (512-byte no-op transactions, §6). With -conns > 1 the rate
// is split across parallel connections — a single submitter thread
// cannot saturate a replica whose data plane runs multi-core (-shards).
package main

import (
	"bufio"
	"crypto/rand"
	"encoding/base64"
	"flag"
	"fmt"
	"log"
	"net"
	"sync"
	"time"
)

func main() {
	to := flag.String("to", "127.0.0.1:8000", "replica client address")
	rate := flag.Float64("rate", 1000, "transactions per second (total across connections)")
	size := flag.Int("size", 512, "transaction payload bytes (pre-encoding)")
	duration := flag.Duration("duration", 10*time.Second, "how long to stream")
	conns := flag.Int("conns", 1, "parallel submission connections")
	flag.Parse()

	if *conns < 1 {
		*conns = 1
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	total := 0
	for c := 0; c < *conns; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sent, err := stream(*to, *rate/float64(*conns), *size, *duration)
			if err != nil {
				log.Printf("conn: %v", err)
			}
			mu.Lock()
			total += sent
			mu.Unlock()
		}()
	}
	wg.Wait()
	log.Printf("sent %d transactions (%.0f tx/s over %d conns) to %s",
		total, float64(total)/duration.Seconds(), *conns, *to)
}

// stream feeds one connection at the given rate until the duration
// elapses, returning the number of transactions sent.
func stream(to string, rate float64, size int, duration time.Duration) (int, error) {
	conn, err := net.DialTimeout("tcp", to, 5*time.Second)
	if err != nil {
		return 0, err
	}
	defer conn.Close()
	w := bufio.NewWriterSize(conn, 1<<20)

	// Newline framing requires payloads without newlines: base64-encode
	// random bytes sized so the encoded form hits the target size.
	raw := make([]byte, (size*3)/4)
	interval := time.Duration(float64(time.Second) / rate)
	if interval <= 0 {
		interval = time.Microsecond
	}
	deadline := time.Now().Add(duration)
	sent := 0
	next := time.Now()
	for time.Now().Before(deadline) {
		if _, err := rand.Read(raw); err != nil {
			return sent, err
		}
		line := base64.StdEncoding.EncodeToString(raw)
		if _, err := fmt.Fprintln(w, line); err != nil {
			return sent, fmt.Errorf("send: %w", err)
		}
		sent++
		next = next.Add(interval)
		if d := time.Until(next); d > 0 {
			w.Flush()
			time.Sleep(d)
		}
	}
	return sent, w.Flush()
}
