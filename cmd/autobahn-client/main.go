// Command autobahn-client is the open-loop load generator for TCP
// deployments (cmd/autobahn-node): it streams newline-delimited random
// transactions of a fixed size at a constant rate, matching the paper's
// workload (512-byte no-op transactions, §6). With -conns > 1 the rate
// is split across parallel connections — a single submitter thread
// cannot saturate a replica whose data plane runs multi-core (-shards).
//
// With -gateway the client speaks the gateway protocol instead
// (autobahn-node -gateway): each connection is a gateway.Client with a
// submission window, seeded backoff on typed rejections, and ack-timeout
// resubmission, and the run reports end-to-end submit→commit-ack
// latency percentiles alongside the outcome counts.
package main

import (
	"bufio"
	"crypto/rand"
	"encoding/base64"
	"flag"
	"fmt"
	"log"
	"net"
	"sort"
	"sync"
	"time"

	"repro/internal/gateway"
)

func main() {
	to := flag.String("to", "127.0.0.1:8000", "replica client address")
	rate := flag.Float64("rate", 1000, "transactions per second (total across connections)")
	size := flag.Int("size", 512, "transaction payload bytes (pre-encoding)")
	duration := flag.Duration("duration", 10*time.Second, "how long to stream")
	conns := flag.Int("conns", 1, "parallel submission connections")
	useGateway := flag.Bool("gateway", false, "speak the gateway protocol to -to (windows, dedup, commit acks) instead of bare newline submission")
	priority := flag.Int("priority", 1, "gateway priority class: 0 bulk (shed first under load), 1 normal, 2 high")
	flag.Parse()

	if *conns < 1 {
		*conns = 1
	}
	if *useGateway {
		gatewayLoad(*to, *rate, *size, *duration, *conns, uint8(*priority))
		return
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	total := 0
	for c := 0; c < *conns; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sent, err := stream(*to, *rate/float64(*conns), *size, *duration)
			if err != nil {
				log.Printf("conn: %v", err)
			}
			mu.Lock()
			total += sent
			mu.Unlock()
		}()
	}
	wg.Wait()
	log.Printf("sent %d transactions (%.0f tx/s over %d conns) to %s",
		total, float64(total)/duration.Seconds(), *conns, *to)
}

// stream feeds one connection at the given rate until the duration
// elapses, returning the number of transactions sent.
func stream(to string, rate float64, size int, duration time.Duration) (int, error) {
	conn, err := net.DialTimeout("tcp", to, 5*time.Second)
	if err != nil {
		return 0, err
	}
	defer conn.Close()
	w := bufio.NewWriterSize(conn, 1<<20)

	// Newline framing requires payloads without newlines: base64-encode
	// random bytes sized so the encoded form hits the target size.
	raw := make([]byte, (size*3)/4)
	interval := time.Duration(float64(time.Second) / rate)
	if interval <= 0 {
		interval = time.Microsecond
	}
	deadline := time.Now().Add(duration)
	sent := 0
	next := time.Now()
	for time.Now().Before(deadline) {
		if _, err := rand.Read(raw); err != nil {
			return sent, err
		}
		line := base64.StdEncoding.EncodeToString(raw)
		if _, err := fmt.Fprintln(w, line); err != nil {
			return sent, fmt.Errorf("send: %w", err)
		}
		sent++
		next = next.Add(interval)
		if d := time.Until(next); d > 0 {
			w.Flush()
			time.Sleep(d)
		}
	}
	return sent, w.Flush()
}

// gatewayLoad drives -conns gateway clients at the target aggregate rate
// and reports outcome counts plus submit→commit-ack latency percentiles.
func gatewayLoad(to string, rate float64, size int, duration time.Duration, conns int, prio uint8) {
	var (
		mu                           sync.Mutex
		latencies                    []time.Duration
		committed, rejected, aborted uint64
	)
	outcome := func(out gateway.Outcome) {
		mu.Lock()
		defer mu.Unlock()
		switch {
		case out.Committed:
			committed++
			latencies = append(latencies, out.Latency)
		case out.Status == gateway.StatusAborted:
			aborted++
		default:
			rejected++
		}
	}
	var wg sync.WaitGroup
	for c := 0; c < conns; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl, err := gateway.Dial(to, gateway.ClientOptions{
				ID:        uint64(c + 1),
				Priority:  prio,
				OnOutcome: outcome,
			})
			if err != nil {
				log.Printf("gateway conn %d: %v", c, err)
				return
			}
			payload := make([]byte, size)
			rand.Read(payload)
			interval := time.Duration(float64(time.Second) * float64(conns) / rate)
			if interval <= 0 {
				interval = time.Microsecond
			}
			deadline := time.Now().Add(duration)
			next := time.Now()
			for time.Now().Before(deadline) {
				if _, err := cl.Submit(payload); err != nil {
					// Local window full: the commit pipeline is behind this
					// submitter — yield until acks free slots.
					time.Sleep(interval)
					continue
				}
				next = next.Add(interval)
				if d := time.Until(next); d > 0 {
					time.Sleep(d)
				}
			}
			// Drain in-flight submissions before tearing the client down.
			for i := 0; i < 100 && cl.InFlight() > 0; i++ {
				time.Sleep(100 * time.Millisecond)
			}
			cl.Close()
		}(c)
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	pct := func(p float64) time.Duration {
		if len(latencies) == 0 {
			return 0
		}
		i := int(p * float64(len(latencies)-1))
		return latencies[i]
	}
	log.Printf("gateway: %d committed (%.0f tx/s), %d rejected, %d aborted; ack latency p50 %s p99 %s",
		committed, float64(committed)/duration.Seconds(), rejected, aborted,
		pct(0.50).Round(time.Microsecond), pct(0.99).Round(time.Microsecond))
}
