// Command autobahn-client is the open-loop load generator for TCP
// deployments (cmd/autobahn-node): it streams newline-delimited random
// transactions of a fixed size at a constant rate, matching the paper's
// workload (512-byte no-op transactions, §6).
package main

import (
	"bufio"
	"crypto/rand"
	"encoding/base64"
	"flag"
	"fmt"
	"log"
	"net"
	"time"
)

func main() {
	to := flag.String("to", "127.0.0.1:8000", "replica client address")
	rate := flag.Float64("rate", 1000, "transactions per second")
	size := flag.Int("size", 512, "transaction payload bytes (pre-encoding)")
	duration := flag.Duration("duration", 10*time.Second, "how long to stream")
	flag.Parse()

	conn, err := net.DialTimeout("tcp", *to, 5*time.Second)
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()
	w := bufio.NewWriterSize(conn, 1<<20)

	// Newline framing requires payloads without newlines: base64-encode
	// random bytes sized so the encoded form hits the target size.
	raw := make([]byte, (*size*3)/4)
	interval := time.Duration(float64(time.Second) / *rate)
	if interval <= 0 {
		interval = time.Microsecond
	}
	deadline := time.Now().Add(*duration)
	sent := 0
	next := time.Now()
	for time.Now().Before(deadline) {
		if _, err := rand.Read(raw); err != nil {
			log.Fatal(err)
		}
		line := base64.StdEncoding.EncodeToString(raw)
		if _, err := fmt.Fprintln(w, line); err != nil {
			log.Fatalf("send: %v", err)
		}
		sent++
		next = next.Add(interval)
		if d := time.Until(next); d > 0 {
			w.Flush()
			time.Sleep(d)
		}
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
	log.Printf("sent %d transactions (%.0f tx/s) to %s", sent, float64(sent)/duration.Seconds(), *to)
}
