// Command autobahn-node runs one Autobahn replica over TCP. Peers are
// configured with a comma-separated address list ordered by replica ID;
// clients submit newline-delimited transactions over a separate TCP port.
//
// With -wal, the replica journals its safety-critical protocol state to
// a write-ahead log (the RocksDB substitute) before externalizing it: a
// killed process restarted with the same -wal path recovers its voting
// state and committed frontier, so it never contradicts a pre-crash vote
// and rejoins the cluster seamlessly. Committed batch payloads are
// additionally appended to <wal>.commits and summarized on stdout.
//
// Example 4-replica deployment on one machine:
//
//	for i in 0 1 2 3; do
//	  autobahn-node -id $i \
//	    -peers 127.0.0.1:9000,127.0.0.1:9001,127.0.0.1:9002,127.0.0.1:9003 \
//	    -client 127.0.0.1:800$i -wal /tmp/autobahn-$i.wal &
//	done
//	autobahn-client -to 127.0.0.1:8000 -rate 1000 -duration 10s
package main

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	_ "net/http/pprof" // -pprof exposes the default mux's profiles
	"os"
	"sort"
	"strings"
	"time"

	autobahn "repro"
	"repro/internal/metrics"
	"repro/internal/storage"
	"repro/internal/types"
)

func main() {
	id := flag.Int("id", 0, "this replica's ID (0-based, ordered as in -peers)")
	peers := flag.String("peers", "", "comma-separated replica addresses ordered by ID")
	clientAddr := flag.String("client", "", "address for client transaction submissions (optional)")
	walPath := flag.String("wal", "", "write-ahead log path for crash-restart recovery; committed batches go to <path>.commits (optional)")
	timeout := flag.Duration("view-timeout", time.Second, "consensus view timeout")
	quiet := flag.Bool("quiet", false, "suppress per-commit output")
	pprofAddr := flag.String("pprof", "", "listen address for net/http/pprof live profiling, e.g. 127.0.0.1:6060 (optional)")
	shards := flag.Int("shards", 0, "data-plane worker shards: lane traffic parallelism (0 = auto: one per core up to committee size, 1 = single-threaded)")
	gossip := flag.Int("gossip", 0, "car gossip fanout k (0 = full-mesh broadcast); try log2(committee)+1 for large committees")
	deltaCuts := flag.Bool("delta-cuts", false, "delta-compress cut-bearing consensus frames against each connection's previous cut")
	stallTimeout := flag.Duration("stall-timeout", 10*time.Second, "tear down and redial peer connections that accept but make no progress for this long (0 disables the stall detector)")
	gatewayAddr := flag.String("gateway", "", "client gateway listen address: per-client windows, dedup, admission control, commit acks (optional; see autobahn-client -gateway)")
	execOn := flag.Bool("exec", false, "run the deterministic execution layer over the committed stream (commits carry a cross-checkable AppHash)")
	snapEvery := flag.Uint64("snapshot-every", 0, "checkpoint execution state every N slots, truncate the WAL and batch log beneath it, and serve snapshot-based state sync to amnesiac peers (implies -exec; snapshot persists at <wal>.snap)")
	flag.Parse()
	if *snapEvery > 0 {
		*execOn = true
	}

	addrList := strings.Split(*peers, ",")
	if len(addrList) < 4 || (len(addrList)-1)%3 != 0 {
		log.Fatalf("need 3f+1 peer addresses, got %d", len(addrList))
	}
	if *id < 0 || *id >= len(addrList) {
		log.Fatalf("id %d out of range for %d peers", *id, len(addrList))
	}
	addrs := make(map[types.NodeID]string, len(addrList))
	for i, a := range addrList {
		addrs[types.NodeID(i)] = strings.TrimSpace(a)
	}

	logger := log.New(os.Stderr, fmt.Sprintf("r%d ", *id), log.Ltime|log.Lmicroseconds)
	replica, err := autobahn.NewReplica(types.NodeID(*id), addrs, autobahn.Options{
		N:             len(addrList),
		ViewTimeout:   *timeout,
		WALPath:       *walPath,
		DataShards:    *shards,
		GossipFanout:  *gossip,
		DeltaCuts:     *deltaCuts,
		StallTimeout:  *stallTimeout,
		GatewayAddr:   *gatewayAddr,
		Execution:     *execOn,
		SnapshotEvery: types.Slot(*snapEvery),
	}, logger)
	if err != nil {
		log.Fatal(err)
	}
	if err := replica.Start(); err != nil {
		log.Fatal(err)
	}
	// A journal barrier failure is unrecoverable: the replica has already
	// halted itself (un-journaled state must never externalize) — exit
	// loudly so the operator restarts the process against the durable WAL.
	go func() {
		err := <-replica.Fatal()
		logger.Fatalf("replica halted: journal failure: %v (restart with the same -wal to recover)", err)
	}()
	logger.Printf("replica %d listening on %s (committee of %d)", *id, addrs[types.NodeID(*id)], len(addrList))

	var wal *storage.Store
	if *walPath != "" {
		// The protocol journal lives at -wal (opened by the replica);
		// committed batch payloads are logged separately alongside it.
		wal, err = storage.Open(*walPath + ".commits")
		if err != nil {
			log.Fatal(err)
		}
		defer wal.Close()
	}

	if *pprofAddr != "" {
		go func() {
			logger.Printf("pprof listening on http://%s/debug/pprof/", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				logger.Printf("pprof: %v", err)
			}
		}()
	}

	if *clientAddr != "" {
		go serveClients(*clientAddr, replica, logger)
	}

	var committedTx, committedBatches uint64
	var prunedBelow types.Slot
	lastReport := time.Now()
	for c := range replica.Commits {
		committedBatches++
		committedTx += uint64(c.Batch.Count)
		if wal != nil {
			key := make([]byte, 18)
			binary.LittleEndian.PutUint64(key, uint64(c.Slot))
			binary.LittleEndian.PutUint16(key[8:], uint16(c.Lane))
			binary.LittleEndian.PutUint64(key[10:], uint64(c.Position))
			var val []byte
			for _, tx := range c.Batch.Txs {
				val = binary.LittleEndian.AppendUint32(val, uint32(len(tx)))
				val = append(val, tx...)
			}
			if err := wal.Put(key, val); err != nil {
				logger.Printf("wal: %v", err)
			}
			// The snapshot subsumes batches beneath its frontier: prune the
			// batch log in step with the replica's own truncation so the
			// whole on-disk footprint — not just the protocol WAL — stays
			// bounded. The frontier gauge is atomic, safe to poll here.
			if frontier := types.Slot(replica.Node().Stats().SnapshotFrontier); frontier > prunedBelow {
				pruneCommits(wal, frontier, logger)
				prunedBelow = frontier
			}
		}
		if !*quiet && time.Since(lastReport) >= time.Second {
			lastReport = time.Now()
			var egress metrics.TransportSnapshot
			for _, s := range replica.TransportStats() {
				egress.Add(s)
			}
			loop := replica.LoopStats()
			var gw string
			if g := replica.Gateway(); g != nil {
				s := g.Stats()
				gw = fmt.Sprintf("; gateway %d admitted/%d rejected/%d deduped, %d acked (mean %s), %d ack-drops",
					s.Admitted, s.Rejected(), s.Deduped, s.Acked, s.AckLatencyMean.Round(time.Microsecond), s.AckDrops)
			}
			logger.Printf("committed %d txs in %d batches (slot %d); egress ctl %d frames/%d flushes (%d delta), data %d frames/%d flushes, %d drops; ingress %d ctl/%d shard events, %d drops; gossip %d origin/%d relayed/%d dup-dropped; links %d dials/%d redials/%d stalls%s",
				committedTx, committedBatches, c.Slot,
				egress.Control.Frames, egress.Control.Flushes, egress.Control.DeltaFrames,
				egress.Data.Frames, egress.Data.Flushes,
				egress.Control.Drops+egress.Data.Drops,
				loop.ControlEvents, loop.ShardEvents,
				loop.InboxDrops+loop.ShardDrops,
				loop.GossipOrigin, loop.GossipRelays, loop.GossipDupDrops,
				loop.PeerDials, loop.PeerRedials, loop.PeerStalls, gw)
		}
	}
}

// pruneCommits deletes batch-log records for slots beneath the snapshot
// frontier and compacts the store so the file actually shrinks. Keys are
// collected under Range and sorted before deletion: deterministic delete
// order, and no mutation while iterating.
func pruneCommits(wal *storage.Store, below types.Slot, logger *log.Logger) {
	var doomed [][]byte
	wal.Range(func(key, _ []byte) bool {
		if len(key) == 18 && types.Slot(binary.LittleEndian.Uint64(key)) < below {
			doomed = append(doomed, append([]byte(nil), key...))
		}
		return true
	})
	if len(doomed) == 0 {
		return
	}
	sort.Slice(doomed, func(i, j int) bool { return bytes.Compare(doomed[i], doomed[j]) < 0 })
	for _, key := range doomed {
		if err := wal.Delete(key); err != nil {
			logger.Printf("batch-log prune: %v", err)
			return
		}
	}
	if err := wal.Compact(); err != nil {
		logger.Printf("batch-log compact: %v", err)
		return
	}
	logger.Printf("batch log pruned below slot %d (%d records)", below, len(doomed))
}

// serveClients accepts newline-delimited transactions and feeds them into
// this replica's mempool.
func serveClients(addr string, r *autobahn.Replica, logger *log.Logger) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		logger.Fatalf("client listener: %v", err)
	}
	logger.Printf("accepting client transactions on %s", addr)
	for {
		conn, err := ln.Accept()
		if err != nil {
			logger.Printf("client accept: %v", err)
			continue
		}
		go func() {
			defer conn.Close()
			sc := bufio.NewScanner(conn)
			sc.Buffer(make([]byte, 1<<20), 1<<20)
			for sc.Scan() {
				tx := make([]byte, len(sc.Bytes()))
				copy(tx, sc.Bytes())
				if len(tx) > 0 {
					r.Submit(tx)
				}
			}
		}()
	}
}
