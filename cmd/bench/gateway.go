// Gateway overload cell: a LiveCluster fronted by the client gateway
// tier (internal/gateway), driven by a 10k-client simulated fleet over
// in-memory pipes. The cell first probes sustainable capacity with a
// closed-loop subset, then paces the whole fleet open-loop at 1x and 2x
// that capacity and checks graceful degradation: committed throughput
// at 2x stays within 10% of at-capacity (admission control sheds the
// excess with typed rejections instead of collapsing), every submission
// reaches a terminal outcome, and bulk traffic is shed before normal.
package main

import (
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	autobahn "repro"
	"repro/internal/gateway"
)

// gwPayload sizes each simulated client transaction. Large enough that
// the replica's per-commit work dominates the harness's per-attempt work
// (frames, timers, pipe handoffs): on small hosts the load generators
// share cores with the cluster, and a tiny payload would measure the
// generators stealing CPU rather than the gateway shedding load.
const gwPayload = 1024

// prioOf maps a fleet index to its admission class: every 4th client is
// bulk (shed first), the rest normal.
func prioOf(i int) uint8 {
	if i%4 == 3 {
		return gateway.PriorityBulk
	}
	return gateway.PriorityNormal
}

// gwCell accumulates one load cell's outcomes across the fleet.
type gwCell struct {
	attempted  atomic.Uint64    // Submit calls (paced or flood)
	localShed  atomic.Uint64    // ErrWindowFull at the client: terminal, never hit the wire
	suppressed [3]atomic.Uint64 // ErrSuppressed by class: Busy-hint shed, never hit the wire

	mu        sync.Mutex
	lat       []time.Duration
	committed [3]uint64 // by priority class
	rejected  [3]uint64
	aborted   uint64
}

func (c *gwCell) outcomes() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := c.aborted
	for p := 0; p < 3; p++ {
		n += c.committed[p] + c.rejected[p]
	}
	return n
}

func (c *gwCell) suppressedTotal() uint64 {
	var n uint64
	for p := 0; p < 3; p++ {
		n += c.suppressed[p].Load()
	}
	return n
}

func (c *gwCell) committedTotal() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.committed[0] + c.committed[1] + c.committed[2]
}

// pct returns the p-quantile of the cell's commit-ack latencies.
func (c *gwCell) pct(p float64) time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.lat) == 0 {
		return 0
	}
	sort.Slice(c.lat, func(i, j int) bool { return c.lat[i] < c.lat[j] })
	return c.lat[int(p*float64(len(c.lat)-1))]
}

func runGateway(quick bool, seed uint64) {
	clients := 10_000
	probeN := 256
	probeDur := 3 * time.Second
	cellDur := 8 * time.Second
	drivers := 16
	if quick {
		clients = 2_000
		probeDur = 2 * time.Second
		cellDur = 4 * time.Second
	}

	lc, err := autobahn.NewLiveCluster(autobahn.Options{N: 4, Seed: seed, MaxBatchDelay: 5 * time.Millisecond})
	if err != nil {
		fmt.Printf("gateway: cluster: %v\n", err)
		check(false, "gateway: cluster construction")
		return
	}
	// MaxOutstanding is set far below the fleet's aggregate window budget
	// (clients x Window) so overload hits server-side admission before
	// client windows saturate: the cell must exercise typed rejections,
	// not just client-window backpressure. A tight ceiling is the point of
	// the tier — queues ahead of the replica stay short, and the capacity
	// probe measures the sustainable rate under that bound.
	srv := gateway.NewServer(lc.GatewayBackend(0), gateway.Options{AckQueue: 256, MaxOutstanding: 8192})
	lc.SetCommitObserver(func(c autobahn.Committed) {
		if c.Replica == 0 {
			srv.OnCommit(c.Batch)
		}
	})
	lc.Start()
	defer lc.Stop()
	defer srv.Stop()

	dial := func() (net.Conn, error) {
		a, b := net.Pipe()
		go srv.ServeConn(b)
		return a, nil
	}

	// Outcome routing: each client reports into whichever cell is live.
	var cur atomic.Pointer[gwCell]
	outcomeFor := func(prio uint8) func(gateway.Outcome) {
		return func(out gateway.Outcome) {
			c := cur.Load()
			if c == nil {
				return
			}
			c.mu.Lock()
			switch {
			case out.Committed:
				c.committed[prio]++
				c.lat = append(c.lat, out.Latency)
			case out.Status == gateway.StatusAborted:
				c.aborted++
			default:
				c.rejected[prio]++
			}
			c.mu.Unlock()
		}
	}

	// Build the fleet: every 4th client is bulk priority (shed first), the
	// rest normal. MaxAttempts=1 makes rejections terminal — open-loop
	// clients measure the admission verdict, they don't retry-storm.
	fmt.Printf("connecting %d simulated clients...\n", clients)
	fleet := make([]*gateway.Client, clients)
	var fleetErr atomic.Value
	var cwg sync.WaitGroup
	const workers = 64
	for w := 0; w < workers; w++ {
		cwg.Add(1)
		go func(w int) {
			defer cwg.Done()
			for i := w; i < clients; i += workers {
				prio := prioOf(i)
				cl, err := gateway.NewClient(gateway.ClientOptions{
					ID:          uint64(i + 1),
					Seed:        seed + uint64(i),
					Dial:        dial,
					Priority:    prio,
					Window:      64, // match the server window: backlog reaches admission, not just client windows
					MaxAttempts: 1,
					AckTimeout:  10 * time.Second,
					OnOutcome:   outcomeFor(prio),
				})
				if err != nil {
					fleetErr.Store(err)
					return
				}
				fleet[i] = cl
			}
		}(w)
	}
	cwg.Wait()
	if err := fleetErr.Load(); err != nil {
		fmt.Printf("gateway: fleet: %v\n", err)
		check(false, "gateway: fleet construction")
		return
	}
	defer func() {
		for _, cl := range fleet {
			cl.Close()
		}
	}()

	// drain waits for every in-flight submission to resolve (the terminal
	// -outcome guarantee this cell asserts).
	drain := func() bool {
		deadline := time.Now().Add(60 * time.Second)
		for time.Now().Before(deadline) {
			inflight := 0
			for _, cl := range fleet {
				inflight += cl.InFlight()
			}
			if inflight == 0 {
				return true
			}
			time.Sleep(50 * time.Millisecond)
		}
		return false
	}

	// Capacity probe: a closed-loop subset floods its windows; the
	// committed rate is what the replica sustains with admission control
	// holding the backlog at the shed threshold.
	probeCell := &gwCell{}
	cur.Store(probeCell)
	var pwg sync.WaitGroup
	probeDeadline := time.Now().Add(probeDur)
	for _, cl := range fleet[:probeN] {
		pwg.Add(1)
		go func(cl *gateway.Client) {
			defer pwg.Done()
			payload := make([]byte, gwPayload)
			for time.Now().Before(probeDeadline) {
				if _, err := cl.Submit(payload); err != nil {
					time.Sleep(500 * time.Microsecond)
				}
			}
		}(cl)
	}
	pwg.Wait()
	probeDrained := drain()
	capacity := float64(probeCell.committedTotal()) / probeDur.Seconds()
	fmt.Printf("capacity probe: %.0f tx/s committed (%d closed-loop clients, %v)\n", capacity, probeN, probeDur)
	record("clients", float64(clients))
	record("capacity_tps", capacity)

	// runPaced offers the whole fleet's load at the target aggregate rate,
	// round-robin across clients, then drains to terminal outcomes. Each
	// driver submits the batch its elapsed time owes per 2ms wake — sleep
	// granularity cannot throttle the offered rate the way per-submission
	// sleeps would.
	runPaced := func(rate float64, dur time.Duration) (*gwCell, bool) {
		c := &gwCell{}
		cur.Store(c)
		perDriver := rate / float64(drivers)
		var wg sync.WaitGroup
		for d := 0; d < drivers; d++ {
			wg.Add(1)
			go func(d int) {
				defer wg.Done()
				payload := make([]byte, gwPayload)
				start := time.Now()
				sent := 0
				k := d
				for {
					elapsed := time.Since(start)
					if elapsed >= dur {
						return
					}
					due := int(elapsed.Seconds()*perDriver) - sent
					if due > 2048 {
						due = 2048 // a stalled driver resumes offering, it doesn't burst-compensate
					}
					for j := 0; j < due; j++ {
						idx := k % clients
						cl := fleet[idx]
						k += drivers
						c.attempted.Add(1)
						if _, err := cl.Submit(payload); err != nil {
							if err == gateway.ErrSuppressed {
								// A cached Busy verdict: the admission
								// rejection, answered client-side.
								c.suppressed[prioOf(idx)].Add(1)
							} else {
								c.localShed.Add(1)
							}
						}
						sent++
					}
					time.Sleep(2 * time.Millisecond)
				}
			}(d)
		}
		wg.Wait()
		return c, drain()
	}

	report := func(tag string, c *gwCell, dur time.Duration) float64 {
		tput := float64(c.committedTotal()) / dur.Seconds()
		p50, p99 := c.pct(0.50), c.pct(0.99)
		c.mu.Lock()
		rej := c.rejected[0] + c.rejected[1] + c.rejected[2]
		c.mu.Unlock()
		fmt.Printf("%s: offered %d, committed %.0f tx/s, rejected %d (+%d suppressed), local-shed %d, ack p50 %v p99 %v\n",
			tag, c.attempted.Load(), tput, rej, c.suppressedTotal(), c.localShed.Load(),
			p50.Round(time.Microsecond), p99.Round(time.Microsecond))
		record("tput_"+tag+"_tps", tput)
		record("p50_"+tag+"_ms", float64(p50)/float64(time.Millisecond))
		record("p99_"+tag+"_ms", float64(p99)/float64(time.Millisecond))
		record("rejected_"+tag, float64(rej))
		record("suppressed_"+tag, float64(c.suppressedTotal()))
		return tput
	}

	cell1, drained1 := runPaced(capacity, cellDur)
	tput1 := report("1x", cell1, cellDur)
	cell2, drained2 := runPaced(2*capacity, cellDur)
	tput2 := report("2x", cell2, cellDur)
	cur.Store(nil)

	st := srv.Stats()
	record("admitted", float64(st.Admitted))
	record("deduped", float64(st.Deduped))
	record("acked", float64(st.Acked))
	record("ack_drops", float64(st.AckDrops))
	record("chain_dups", float64(st.ChainDups))

	check(probeDrained && drained1 && drained2,
		"gateway: every submission reaches a terminal outcome (commit ack, typed rejection, or local shed)")
	terminal := func(c *gwCell) bool {
		return c.outcomes() == c.attempted.Load()-c.localShed.Load()-c.suppressedTotal()
	}
	check(terminal(cell1) && terminal(cell2),
		"gateway: outcome accounting balances — nothing is silently dropped")
	check(tput1 > 0 && cell1.pct(0.99) > 0,
		"gateway: submit-to-commit-ack p50/p99 measured at capacity")
	check(tput2 >= 0.9*tput1,
		"gateway: no congestion collapse — committed throughput at 2x capacity >= 90% of at-capacity")
	check(st.ChainDups == 0,
		"gateway: dedup holds — zero duplicate commits reached the chain")

	// Shed ordering: under 2x overload, a bulk submission's rejection rate
	// must be at least normal's (bulk yields at half the backlog bound).
	// Suppressions count as rejections — they are Busy verdicts answered
	// from the client's cache.
	cell2.mu.Lock()
	bulkRej, bulkCom := cell2.rejected[0]+cell2.suppressed[0].Load(), cell2.committed[0]
	normRej, normCom := cell2.rejected[1]+cell2.suppressed[1].Load(), cell2.committed[1]
	cell2.mu.Unlock()
	if bulkRej+normRej > 100 {
		bulkRate := float64(bulkRej) / float64(bulkRej+bulkCom)
		normRate := float64(normRej) / float64(normRej+normCom)
		fmt.Printf("2x shed rates: bulk %.1f%%, normal %.1f%%\n", 100*bulkRate, 100*normRate)
		record("bulk_shed_rate_2x", bulkRate)
		record("normal_shed_rate_2x", normRate)
		check(bulkRate >= normRate,
			"gateway: weighted admission sheds bulk traffic before normal under overload")
	}
}
