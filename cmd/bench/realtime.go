// Real-runtime performance probes, run on wall-clock time (unlike the
// deterministic simulator experiments): `ingress` pins the wire decode
// micro-costs, `scaling` measures LiveCluster committed throughput
// across GOMAXPROCS — the figure the parallel data plane exists for.
package main

import (
	"encoding/binary"
	"fmt"
	gort "runtime"
	"testing"
	"time"

	autobahn "repro"
	"repro/internal/types"
	"repro/internal/wire"
)

// runIngress measures the ingress decode path: the zero-copy decoder
// (DecodeFrom over a pooled frame) against the legacy copying decoder,
// on the two frames that dominate real traffic — votes (control plane)
// and 500 KB cars (data plane, 1000 × 512 B transactions, the paper's
// workload). Failing check: the zero-copy path must allocate at most
// one object for a vote and may not allocate per transaction for a car.
func runIngress() {
	vote := &types.Vote{Lane: 1, Position: 9, Digest: types.Digest{5}, Voter: 2, Sig: make([]byte, 64)}
	voteEnc, err := wire.Encode(vote)
	if err != nil {
		panic(err)
	}
	txs := make([]types.Transaction, 1000)
	for i := range txs {
		txs[i] = make(types.Transaction, 512)
	}
	car := &types.Proposal{
		Lane: 1, Position: 7, Parent: types.Digest{3},
		Batch: types.NewBatch(1, 7, txs, 0),
		Sig:   make([]byte, 64),
	}
	carEnc, err := wire.Encode(car)
	if err != nil {
		panic(err)
	}

	bench := func(name string, enc []byte, decode func([]byte) (types.Message, error)) testing.BenchmarkResult {
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := decode(enc); err != nil {
					b.Fatal(err)
				}
			}
		})
		fmt.Printf("%-28s %10.0f ns/op %8d B/op %6d allocs/op\n",
			name, float64(res.NsPerOp()), res.AllocedBytesPerOp(), res.AllocsPerOp())
		record(name+"_ns_op", float64(res.NsPerOp()))
		record(name+"_allocs_op", float64(res.AllocsPerOp()))
		return res
	}

	voteCopy := bench("decode_vote_copy", voteEnc, wire.Decode)
	voteZero := bench("decode_vote_zerocopy", voteEnc, wire.DecodeFrom)
	carCopy := bench("decode_car500k_copy", carEnc, wire.Decode)
	carZero := bench("decode_car500k_zerocopy", carEnc, wire.DecodeFrom)

	check(voteZero.AllocsPerOp() <= 1, "zero-copy vote decode allocates at most the message struct")
	check(carZero.AllocsPerOp() < 16 && carZero.AllocsPerOp() < carCopy.AllocsPerOp()/10,
		"zero-copy car decode does not allocate per transaction")
	if voteCopy.NsPerOp() > 0 && carCopy.NsPerOp() > 0 {
		fmt.Printf("speedup: vote %.2fx, 500KB car %.2fx\n",
			float64(voteCopy.NsPerOp())/float64(voteZero.NsPerOp()),
			float64(carCopy.NsPerOp())/float64(carZero.NsPerOp()))
		record("car_decode_speedup", float64(carCopy.NsPerOp())/float64(carZero.NsPerOp()))
	}
}

// runScaling measures committed throughput of a 4-replica in-process
// LiveCluster (real signatures, sharded data plane auto-sized to
// GOMAXPROCS) at GOMAXPROCS 1, 2 and 4 — capped at the host's CPU
// count, since granting more procs than cores measures the scheduler,
// not the protocol. Failing check (≥2 usable cores): multi-core
// throughput may not fall below single-core — the regression signature
// of an accidentally re-serialized data plane.
func runScaling(quick bool) {
	dur := 6 * time.Second
	if quick {
		dur = 3 * time.Second
	}
	procsLadder := []int{1, 2, 4}
	avail := gort.NumCPU()
	rates := make(map[int]float64)
	for _, procs := range procsLadder {
		if procs > avail && procs != 1 {
			fmt.Printf("gomaxprocs=%d skipped (%d CPUs available)\n", procs, avail)
			continue
		}
		rate := liveThroughput(procs, dur)
		rates[procs] = rate
		fmt.Printf("gomaxprocs=%d: %8.0f tx/s committed\n", procs, rate)
		record(fmt.Sprintf("tput_gomaxprocs_%d", procs), rate)
	}
	record("cpus_available", float64(avail))
	single, okS := rates[1]
	best := 0.0
	for p, r := range rates {
		if p > 1 && r > best {
			best = r
		}
	}
	if okS && best > 0 {
		fmt.Printf("multi/single ratio: %.2fx\n", best/single)
		record("scaling_ratio", best/single)
		// 10% tolerance absorbs wall-clock noise on shared CI runners; a
		// re-serialized data plane shows up far below 1.0 because the
		// extra coordination costs without buying parallelism.
		check(best >= 0.9*single, "multi-core LiveCluster throughput is not below single-core")
	} else {
		fmt.Printf("scaling check skipped: %d usable CPUs\n", avail)
	}
}

// liveThroughput runs one LiveCluster throughput point at the given
// GOMAXPROCS: an unpaced submitter feeding all four replicas through
// the bulk path, committed transactions counted at replica 0.
func liveThroughput(procs int, dur time.Duration) float64 {
	prev := gort.GOMAXPROCS(procs)
	defer gort.GOMAXPROCS(prev)
	lc, err := autobahn.NewLiveCluster(autobahn.Options{N: 4, Seed: 7})
	if err != nil {
		panic(err)
	}
	lc.Start()
	defer lc.Stop()

	var committed uint64
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case c := <-lc.Commits:
				committed += uint64(c.Batch.Count)
			case <-time.After(2 * time.Second):
				return
			}
		}
	}()
	start := time.Now()
	var sent uint64
	burst := make([][]byte, 64)
	for time.Since(start) < dur {
		for i := range burst {
			tx := make([]byte, 128)
			binary.LittleEndian.PutUint64(tx, sent+uint64(i))
			burst[i] = tx
		}
		if err := lc.SubmitMany(types.NodeID(sent%4), burst); err != nil {
			panic(err)
		}
		sent += uint64(len(burst))
	}
	<-done
	return float64(committed) / dur.Seconds()
}
