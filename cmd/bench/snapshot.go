package main

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/sim"
	"repro/internal/workload"
)

// runSnapshot measures the cold-join cost of an amnesiac replica as the
// committed history deepens, with and without snapshot-based state sync
// (ISSUE 10 acceptance): with snapshots the rejoin fetches O(state) —
// join time stays flat as history grows — while genesis replay fetches
// and re-executes O(history), so its join time grows with depth. The
// amnesiac crashes at each depth, loses everything, and "joined" means
// its execution frontier reaches the frontier the cluster had decided
// when it went down.
func runSnapshot(quick bool, seed uint64) {
	depths := []time.Duration{6 * time.Second, 12 * time.Second, 24 * time.Second}
	if quick {
		depths = []time.Duration{5 * time.Second, 15 * time.Second}
	}
	fmt.Printf("%-10s %-14s %-14s\n", "history", "snapshot-join", "replay-join")
	joinOn := make([]time.Duration, len(depths))
	joinOff := make([]time.Duration, len(depths))
	for i, depth := range depths {
		joinOn[i] = measureJoin(seed, depth, true)
		joinOff[i] = measureJoin(seed, depth, false)
		fmt.Printf("%-10s %-14s %-14s\n", depth, joinTime(joinOn[i]), joinTime(joinOff[i]))
		ds := int(depth.Seconds())
		record(fmt.Sprintf("join_s_snapshot_depth%ds", ds), joinOn[i].Seconds())
		record(fmt.Sprintf("join_s_replay_depth%ds", ds), joinOff[i].Seconds())
	}
	first, last := 0, len(depths)-1
	ok := func(d time.Duration) bool { return d >= 0 }
	if !ok(joinOn[first]) || !ok(joinOn[last]) || !ok(joinOff[first]) || !ok(joinOff[last]) {
		check(false, "every cold join completes inside the horizon")
		return
	}
	check(true, "every cold join completes inside the horizon")
	check(joinOn[last] <= joinOn[first]+2*time.Second,
		"snapshot cold join is O(state): flat as history grows")
	check(joinOff[last] > joinOff[first],
		"genesis replay is O(history): join time grows with depth")
	check(joinOn[last] < joinOff[last],
		"snapshot join beats replay at the deepest history")
}

func joinTime(d time.Duration) string {
	if d < 0 {
		return "DNF"
	}
	return d.Round(10 * time.Millisecond).String()
}

// measureJoin runs one deterministic cold-join scenario: a 4-replica
// snapshotting (or not) cluster under 20k tx/s, replica 2 down with
// amnesia at `depth`, back one second later. Returns the virtual time
// from restart until replica 2's execution frontier reaches the frontier
// decided at its crash (-1 if it never does inside the horizon).
func measureJoin(seed uint64, depth time.Duration, snapshots bool) time.Duration {
	const down = time.Second
	restart := depth + down
	fs := (&sim.FaultSchedule{}).AddDown(2, depth, restart).Restart(2, restart, true)
	cfg := harness.ClusterConfig{
		System:    harness.Autobahn,
		N:         4,
		Seed:      seed,
		Execution: true,
		Faults:    fs,
		Horizon:   restart + 3*time.Minute,
	}
	if snapshots {
		cfg.SnapshotEvery = 25
	}
	c := harness.Build(cfg)
	horizon := restart + 2*time.Minute
	workload.Install(c.Engine, c.IDs, workload.Config{TotalRate: 20e3, Start: 0, End: horizon})
	c.Engine.Run(restart)
	target := c.Nodes[0].(*core.Node).Orderer().NextExec()
	for at := restart; at < horizon; at += 100 * time.Millisecond {
		c.Engine.Run(at)
		if nd, okNode := c.Nodes[2].(*core.Node); okNode && nd.Orderer().NextExec() >= target {
			return at - restart
		}
	}
	return -1
}
