// Byzantine adversary experiments: `byzantine` runs each shipped
// behavior (internal/adversary) as a windowed fault on the deterministic
// simulator and checks the paper's three claims under hostile — not just
// crashed — replicas: safety (an interceptor observes every replica's
// commits and proves no contradiction), liveness (committed throughput
// within a bound of the fault-free run) and seamlessness (hangover ≈ 0
// after the behavior window). `faultmatrix` then runs the same behaviors
// over the real TCP runtime — 4 replicas on loopback sockets, real
// ed25519, one Byzantine — plus lossy-link profiles (drop / delay /
// duplicate / reorder via transport.LinkFaults), asserting the same
// safety oracle and a commit floor in wall-clock time.
//
// Note the two runtimes deliberately exercise different defense layers:
// the simulator runs with crypto costs modeled (signatures trivially
// valid), so forged inputs must be rejected by state-machine rules alone
// (FIFO voting, digest chains, quorum counting); the TCP clusters verify
// real signatures, so the same attacks are additionally stopped at the
// crypto layer. Both must hold for the paper's adversary model.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/harness"
	"repro/internal/transport"
)

// runByzantine drives the per-behavior simulator scenarios.
func runByzantine(quick bool, seed uint64) {
	cfg := harness.ByzantineConfig{Seed: seed}
	if quick {
		cfg.Load = 15e3
		cfg.Duration = 20 * time.Second
		cfg.To = 12 * time.Second
	}
	for _, name := range harness.AdversaryNames() {
		c := cfg
		c.Behavior = name
		// Sync corruption needs a replica that actually has to sync: crash
		// an honest replica mid-window so its recovery fetches — some of
		// which land on the adversary — are part of the scenario.
		c.CompanionCrash = name == "bogus-sync"
		r := harness.RunByzantine(c)
		harness.PrintByzantine(os.Stdout, r)
		ratio := float64(r.Total) / float64(r.FaultFreeTotal)
		record(name+"_hangover_s", r.Hangover.Seconds())
		record(name+"_tput_ratio", ratio)
		record(name+"_p99_ms", float64(r.P99.Milliseconds()))
		record(name+"_peak_lat_ms", float64(r.PeakLat.Milliseconds()))
		check(r.Violation == "", name+": no contradictory commits (interceptor-observed)")
		check(r.Hangover <= 2*time.Second, name+": seamless recovery (hangover ~ 0 past the behavior window)")
		check(ratio >= 0.9, name+": committed throughput within 10% of fault-free")
	}

	// Max-fault cell: n=7 with f=2 equivocating lanes.
	r := harness.RunByzantine(harness.ByzantineConfig{
		Behavior: "equivocate", N: 7, Adversaries: 2, Seed: seed,
		Load: 15e3, Duration: 20 * time.Second, To: 12 * time.Second,
	})
	harness.PrintByzantine(os.Stdout, r)
	record("equivocate_n7_f2_hangover_s", r.Hangover.Seconds())
	check(r.Violation == "", "n=7: safety holds with f=2 equivocating lanes")
	check(float64(r.Total) >= 0.9*float64(r.FaultFreeTotal), "n=7: liveness holds with f=2 equivocating lanes")
}

// liveMatrixCell is one real-runtime cell of the fault matrix.
type liveMatrixCell struct {
	name      string
	adversary string // "" = all replicas honest
	rule      transport.LinkRule
	// n overrides the committee size (0 = 4); gossip/deltaCuts enable
	// the large-committee dissemination paths on every replica.
	n         int
	gossip    int
	deltaCuts bool
}

// lossy is the link profile every cell marked lossy uses: 5% loss, 2%
// duplication, 1-15ms of reordering jitter on every link.
var lossy = transport.LinkRule{DropP: 0.05, DupP: 0.02, Delay: time.Millisecond, Jitter: 14 * time.Millisecond}

// runFaultMatrix drives the live TCP matrix: behaviors × link faults
// over real loopback sockets.
func runFaultMatrix(quick bool, seed uint64) {
	cells := []liveMatrixCell{
		{name: "tcp-honest-baseline"},
		{name: "tcp-lossy-links", rule: lossy},
	}
	for _, b := range harness.AdversaryNames() {
		cells = append(cells, liveMatrixCell{name: "tcp-" + b, adversary: b})
	}
	cells = append(cells, liveMatrixCell{name: "tcp-equivocate-lossy", adversary: "equivocate", rule: lossy})
	// Large-committee cell: n=16 with gossip dissemination and delta
	// cuts, one equivocating replica, lossy links — the full PR-6 fast
	// path must clear the same safety oracle and commit floor as the
	// 4-replica cells.
	cells = append(cells, liveMatrixCell{
		name: "tcp-n16-gossip-equivocate-lossy", adversary: "equivocate",
		rule: lossy, n: 16, gossip: 5, deltaCuts: true,
	})

	dur, rate := 6*time.Second, 2000.0
	if quick {
		dur, rate = 3*time.Second, 1000.0
	}
	for _, cell := range cells {
		runLiveCell(cell, dur, rate, seed)
	}
}

// runLiveCell runs one 4-replica TCP cluster cell through the shared
// harness runner (harness.RunLiveTCPCell — the -race e2e tests drive the
// same code, so floor semantics and observer wiring cannot diverge) and
// turns its outcome into bench records and checks.
func runLiveCell(cell liveMatrixCell, dur time.Duration, rate float64, seed uint64) {
	res := harness.RunLiveTCPCell(harness.LiveCellConfig{
		N:            cell.n,
		GossipFanout: cell.gossip,
		DeltaCuts:    cell.deltaCuts,
		Adversary:    cell.adversary,
		Rule:         cell.rule,
		Seed:         seed,
		Rate:         rate,
		Duration:     dur,
		Logger:       log.New(os.Stderr, "faultmatrix ", 0),
	})
	if res.Err != nil {
		fmt.Printf("%-22s SKIP: %v\n", cell.name, res.Err)
		return
	}
	safety := "safe"
	if res.Violation != "" {
		safety = "VIOLATION: " + res.Violation
	}
	fmt.Printf("%-22s submitted=%d minCommitted=%d floor=%d elapsed=%5.1fs %s\n",
		cell.name, res.Submitted, res.MinCommitted, res.Floor, res.Elapsed.Seconds(), safety)
	if res.LinkStats != nil {
		fmt.Printf("%-22s link faults injected: dropped=%d duplicated=%d delayed=%d\n",
			"", res.LinkStats.Dropped, res.LinkStats.Duplicated, res.LinkStats.Delayed)
	}
	record(cell.name+"_min_committed", float64(res.MinCommitted))
	record(cell.name+"_submitted", float64(res.Submitted))
	record(cell.name+"_elapsed_s", res.Elapsed.Seconds())
	check(res.Violation == "", cell.name+": no contradictory commits across TCP replicas")
	check(res.MinCommitted >= res.Floor,
		fmt.Sprintf("%s: every replica committed >= 90%% of the honest-submitted load over real sockets", cell.name))
}
