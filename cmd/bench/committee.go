// Committee-scaling cells: LiveCluster throughput/latency across
// committee sizes (n = 4, 7, 16, 32), plus the two large-committee
// fast-path comparisons — batch-verified certificates against the
// sequential-verify baseline, and gossip car dissemination against
// full-mesh broadcast.
//
// Each cell commits a FIXED load and reports completion throughput
// (committed tx / elapsed-to-done): open-loop unpaced submission on a
// shared-CPU in-process cluster measures scheduler luck, not protocol
// cost. The load is closed-loop (bounded in-flight transactions, so no
// cell loses batches to inbox overload) and batches are capped small
// (64 tx) to keep the certificate-per-transaction ratio high — the
// whole point is to surface verification and dissemination costs that
// 1000-tx batches would amortize away. Commits are counted through the
// synchronous observer; the Commits channel drops under backpressure.
//
// The gossip cells run a SINGLE-ORIGIN load (all clients hit replica 0)
// and compare the busiest replica's data-plane egress per committed
// transaction. That is the claim gossip can honestly make: full-mesh
// broadcast bills the origin (n-1)·payload per car, gossip bills every
// replica ≤ k·payload per car — it caps the per-node hot spot, at the
// cost of ~k× total traffic across the cluster. Under a perfectly
// symmetric saturated load, full mesh is already load-balanced and
// total-bandwidth optimal; the skewed-origin cell is where the fanout
// cap shows up, exactly as at large n where a 500 KB car times (n-1)
// peers serializes tens of megabytes through one NIC.
package main

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	autobahn "repro"
	"repro/internal/types"
)

type committeeCellResult struct {
	tput      float64 // committed tx/s at replica 0 (fixed load / completion time)
	p99       time.Duration
	committed uint64
	// maxData is the busiest replica's data-plane egress bytes; maxCtl
	// the same for the control plane.
	maxData, maxCtl uint64
	// Gossip counters summed across replicas (zero without gossip).
	origin, relays, dups uint64
	certHits             uint64
}

func (r committeeCellResult) dataPerTx() float64 {
	if r.committed == 0 {
		return 0
	}
	return float64(r.maxData) / float64(r.committed)
}

// committeeCell runs one LiveCluster point: totalTx 128-byte
// transactions (submit timestamp embedded for end-to-end latency) in
// 64-tx bursts with at most maxInFlight outstanding, then reports
// committed throughput over the time to drain them all at replica 0.
func committeeCell(n, gossip int, sequential, singleOrigin bool, totalTx int, seed uint64) committeeCellResult {
	lc, err := autobahn.NewLiveCluster(autobahn.Options{
		N: n, Seed: seed, GossipFanout: gossip, SequentialCerts: sequential,
		MaxBatchTxs: 64, MaxBatchDelay: 5 * time.Millisecond,
	})
	if err != nil {
		panic(err)
	}
	var committed atomic.Uint64
	var latMu sync.Mutex
	var lats []float64
	lc.SetCommitObserver(func(c autobahn.Committed) {
		if c.Replica != 0 {
			return
		}
		committed.Add(uint64(c.Batch.Count))
		now := time.Now().UnixNano()
		latMu.Lock()
		for _, tx := range c.Batch.Txs {
			if len(tx) >= 16 && len(lats) < 1<<17 {
				if ts := int64(binary.LittleEndian.Uint64(tx[8:16])); ts > 0 && ts <= now {
					lats = append(lats, float64(now-ts))
				}
			}
		}
		latMu.Unlock()
	})
	lc.Start()
	defer lc.Stop()

	const maxInFlight = 1024
	start := time.Now()
	deadline := start.Add(120 * time.Second)
	burst := make([][]byte, 64)
	sent := 0
	for sent < totalTx && time.Now().Before(deadline) {
		if uint64(sent)-committed.Load() >= maxInFlight {
			time.Sleep(500 * time.Microsecond)
			continue
		}
		now := uint64(time.Now().UnixNano())
		for i := range burst {
			tx := make([]byte, 128)
			binary.LittleEndian.PutUint64(tx, uint64(sent+i))
			binary.LittleEndian.PutUint64(tx[8:16], now)
			burst[i] = tx
		}
		to := types.NodeID(0)
		if !singleOrigin {
			to = types.NodeID(sent / 64 % n)
		}
		if err := lc.SubmitMany(to, burst); err != nil {
			panic(err)
		}
		sent += len(burst)
	}
	for committed.Load() < uint64(totalTx) && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}

	var res committeeCellResult
	res.committed = committed.Load()
	res.tput = float64(res.committed) / time.Since(start).Seconds()
	latMu.Lock()
	if len(lats) > 0 {
		sort.Float64s(lats)
		res.p99 = time.Duration(lats[len(lats)*99/100])
	}
	latMu.Unlock()
	for i := 0; i < n; i++ {
		id := types.NodeID(i)
		ctl, data := lc.PlaneBytes(id)
		if data > res.maxData {
			res.maxData = data
		}
		if ctl > res.maxCtl {
			res.maxCtl = ctl
		}
		ls := lc.LoopStats(id)
		res.origin += ls.GossipOrigin
		res.relays += ls.GossipRelays
		res.dups += ls.GossipDupDrops
		hits, _ := lc.Node(id).CertCacheStats()
		res.certHits += hits
	}
	return res
}

// runCommittee prints the committee-scaling curve and runs the two
// fast-path comparisons, with failing shape checks (see EXPERIMENTS.md
// "Committee scaling").
func runCommittee(quick bool, seed uint64) {
	totalTx := 19200
	if quick {
		totalTx = 6400
	}
	fanout := func(n int) int {
		k := 1
		for 1<<k < n {
			k++
		}
		return k + 1 // log2(n)+1
	}

	// Scaling curve: default configuration (batch-verified, memoized
	// certificates; full-mesh dissemination), symmetric load.
	fmt.Printf("%-4s %12s %10s %14s\n", "n", "tx/s", "p99", "cert memo hits")
	curve := make(map[int]committeeCellResult)
	for _, n := range []int{4, 7, 16, 32} {
		r := committeeCell(n, 0, false, false, totalTx, seed)
		curve[n] = r
		fmt.Printf("%-4d %12.0f %10s %14d\n", n, r.tput, r.p99.Round(time.Millisecond), r.certHits)
		record(fmt.Sprintf("tput_n%d", n), r.tput)
		record(fmt.Sprintf("p99_ms_n%d", n), float64(r.p99.Milliseconds()))
		record(fmt.Sprintf("cert_memo_hits_n%d", n), float64(r.certHits))
	}
	check(curve[16].committed >= uint64(totalTx), "n=16 cell commits the full load")
	check(curve[32].committed >= uint64(totalTx), "n=32 cell commits the full load")
	check(curve[16].certHits > 0, "whole-certificate memo takes hits at n=16")

	// Batch-verified certificates vs the sequential-verify baseline at
	// n=16: same cluster, same load, verification strategy flipped.
	seq := committeeCell(16, 0, true, false, totalTx, seed)
	ratio := 0.0
	if seq.tput > 0 {
		ratio = curve[16].tput / seq.tput
	}
	fmt.Printf("\nn=16 verify: batch %8.0f tx/s vs sequential %8.0f tx/s (%.2fx)\n",
		curve[16].tput, seq.tput, ratio)
	record("tput_n16_sequential", seq.tput)
	record("batch_vs_seq_ratio_n16", ratio)
	check(ratio >= 1.3, "batch-verified certificates beat sequential verify by >=1.3x at n=16")

	// Gossip vs full mesh, single-origin load: the busiest replica's
	// data-plane bytes per committed transaction is the hot-spot metric
	// the fanout cap exists for.
	fm16 := committeeCell(16, 0, false, true, totalTx, seed)
	g16 := committeeCell(16, fanout(16), false, true, totalTx, seed)
	fmt.Printf("\nn=16 single-origin data plane: full-mesh %0.f B/tx vs gossip(k=%d) %0.f B/tx (origin %d, relays %d, dup-drops %d)\n",
		fm16.dataPerTx(), fanout(16), g16.dataPerTx(), g16.origin, g16.relays, g16.dups)
	record("fullmesh_max_data_bytes_per_tx_n16", fm16.dataPerTx())
	record("gossip_max_data_bytes_per_tx_n16", g16.dataPerTx())
	record("gossip_relays_n16", float64(g16.relays))
	record("gossip_dup_drops_n16", float64(g16.dups))
	check(g16.committed > 0 && fm16.committed > 0, "n=16 single-origin cells commit transactions")
	check(g16.origin > 0 && g16.relays > 0, "gossip origin and relay counters advance at n=16")
	check(g16.dataPerTx() > 0 && g16.dataPerTx() < fm16.dataPerTx(),
		"gossip cuts the busiest replica's data-plane bytes per committed tx at n=16")

	g32 := committeeCell(32, fanout(32), false, true, totalTx, seed)
	fmt.Printf("n=32 gossip(k=%d): %8.0f tx/s, %0.f B/tx max data plane, relays %d\n",
		fanout(32), g32.tput, g32.dataPerTx(), g32.relays)
	record("gossip_tput_n32", g32.tput)
	record("gossip_max_data_bytes_per_tx_n32", g32.dataPerTx())
	record("gossip_relays_n32", float64(g32.relays))
	check(g32.committed > 0 && g32.relays > 0, "n=32 gossip cell commits with active relays")
}
