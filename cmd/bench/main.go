// Command bench regenerates the paper's tables and figures (§6) on the
// discrete-event simulator, plus two real-runtime performance probes:
// `ingress` (wire decode micro-benchmarks: the zero-copy ingress path
// against the legacy copying decoder) and `scaling` (in-process
// LiveCluster committed throughput across GOMAXPROCS, exercising the
// sharded data plane). Each experiment prints the same rows/series the
// paper reports, plus a PASS/FAIL check of the expected comparative
// shape.  See EXPERIMENTS.md for recorded paper-vs-measured values.
//
// Usage:
//
//	bench -exp table1|fig1|fig5|fig6|fig7|fig8|ablation|restart|byzantine|ingress|scaling|committee|faultmatrix|soak|all [-quick] [-json out.json]
//
// -exp accepts a comma-separated list; `all` expands to the simulator
// figure experiments only (ingress/scaling/committee/faultmatrix measure
// the real runtime on real time, and byzantine — though deterministic —
// is owned by the CI fault-matrix job; all must be named explicitly, e.g.
// -exp all,faultmatrix). `byzantine` runs every shipped adversary
// behavior on the simulator; `faultmatrix` runs the same behaviors plus
// lossy-link profiles over real TCP loopback clusters (see
// faultmatrix.go); `soak` drives the long-haul churn soak — restart
// churn, stall windows, storage faults, Byzantine behaviors — on both
// runtimes with the safety oracle and leak watermarks armed (soak.go).
//
// With -json, the per-experiment headline metrics (throughput, latency,
// hangover, recovery — whatever the experiment measures) are written as
// a machine-readable report, so the repo accumulates a perf trajectory
// across PRs (see BENCH_pr3.json / BENCH_pr4.json for data points). A
// failed shape check exits non-zero (CI gates on it).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/harness"
)

// report is the -json output: experiment name → metric name → value.
type report struct {
	Seed        uint64                        `json:"seed"`
	Quick       bool                          `json:"quick"`
	Checks      map[string]bool               `json:"checks"`
	Experiments map[string]map[string]float64 `json:"experiments"`
}

var rep = report{
	Checks:      make(map[string]bool),
	Experiments: make(map[string]map[string]float64),
}

// current names the experiment being run, for record/check attribution.
var current string

func record(metric string, value float64) {
	m := rep.Experiments[current]
	if m == nil {
		m = make(map[string]float64)
		rep.Experiments[current] = m
	}
	m[metric] = value
}

func main() {
	exp := flag.String("exp", "all", "comma-separated experiments: table1, fig1, fig5, fig6, fig7, fig8, ablation, restart, byzantine, ingress, scaling, committee, faultmatrix, soak, gateway, snapshot, all (= the simulator set)")
	quick := flag.Bool("quick", false, "reduced sweeps for a fast smoke run")
	seed := flag.Uint64("seed", 1, "simulation seed")
	jsonPath := flag.String("json", "", "write machine-readable per-experiment metrics to this file")
	validate := flag.String("validate", "", "validate a bench JSON report against the report schema and exit (CI gates on it)")
	flag.Parse()
	if *validate != "" {
		if err := validateReport(*validate); err != nil {
			fmt.Fprintf(os.Stderr, "bench: %s: %v\n", *validate, err)
			os.Exit(1)
		}
		fmt.Printf("%s: valid bench report\n", *validate)
		return
	}
	rep.Seed = *seed
	rep.Quick = *quick

	want := make(map[string]bool)
	for _, e := range strings.Split(*exp, ",") {
		want[strings.TrimSpace(e)] = true
	}
	// `all` covers the deterministic simulator figure experiments; the
	// wall-clock-bound real-runtime probes run only when named, and so
	// does `byzantine` (deterministic, but owned by the CI fault-matrix
	// job — including it in `all` would run the whole suite twice per PR).
	notInAll := map[string]bool{"ingress": true, "scaling": true, "faultmatrix": true, "byzantine": true, "committee": true, "soak": true, "gateway": true, "snapshot": true}
	run := func(name string, fn func()) {
		if !want[name] && !(want["all"] && !notInAll[name]) {
			return
		}
		fmt.Printf("\n=== %s ===\n", name)
		current = name
		start := time.Now()
		fn()
		wall := time.Since(start)
		record("wall_clock_s", wall.Seconds())
		fmt.Printf("--- %s done in %v (wall clock)\n", name, wall.Round(time.Millisecond))
	}

	run("table1", func() { harness.Table1(os.Stdout) })

	run("fig1", func() {
		// VanillaHS latency hangover after a leader-failure blip (Fig. 1).
		r := harness.RunBlip(harness.BlipConfig{
			System: harness.VanillaHS, Load: 15e3, Seed: *seed,
			Duration: 20 * time.Second, CrashFrom: 5 * time.Second,
		})
		harness.PrintBlip(os.Stdout, r, 20)
		record("hangover_s", r.Hangover.Seconds())
		record("peak_lat_s", r.PeakLat.Seconds())
		record("baseline_ms", float64(r.Baseline.Milliseconds()))
		check(r.Hangover >= time.Second, "VanillaHS exhibits a hangover beyond the blip")
	})

	run("fig5", func() {
		cfg := harness.Fig5Config{Seed: *seed}
		if *quick {
			cfg.Loads = []float64{50e3, 150e3, 200e3, 240e3}
			cfg.Duration = 12 * time.Second
		}
		res := harness.Fig5(cfg)
		harness.PrintFig5(os.Stdout, res)
		at := func(points []harness.LoadPoint, load float64) *harness.LoadPoint {
			for i := range points {
				if points[i].Load == load {
					return &points[i]
				}
			}
			return nil
		}
		for sys, points := range res {
			if p := at(points, 200e3); p != nil {
				record(string(sys)+"_tput_at_200k", p.Throughput)
				record(string(sys)+"_lat_ms_at_200k", float64(p.MeanLat.Milliseconds()))
			}
		}
		auto := at(res[harness.Autobahn], 200e3)
		bull := at(res[harness.Bullshark], 200e3)
		if auto != nil && bull != nil && auto.Throughput >= 190e3 && bull.Throughput >= 190e3 {
			ratio := float64(bull.MeanLat) / float64(auto.MeanLat)
			fmt.Printf("latency ratio Bullshark/Autobahn at 200k tx/s: %.2fx (paper: 2.1x)\n", ratio)
			record("latency_ratio_bullshark_over_autobahn", ratio)
			check(ratio >= 1.6, "Autobahn cuts DAG latency roughly in half at equal throughput")
		}
	})

	run("fig6", func() {
		cfg := harness.Fig6Config{Seed: *seed}
		if *quick {
			cfg.Ns = []int{4, 12}
			cfg.Duration = 12 * time.Second
			cfg.Loads = []float64{1.5e3, 15e3, 30e3, 100e3, 175e3, 220e3, 240e3}
		}
		res := harness.Fig6(cfg)
		harness.PrintFig6(os.Stdout, res, cfg.Ns)
		for _, n := range cfg.Ns {
			for sys, p := range res[n] {
				record(fmt.Sprintf("%s_peak_n%d", sys, n), p.Peak)
			}
			a, b := res[n][harness.Autobahn], res[n][harness.Bullshark]
			v := res[n][harness.VanillaHS]
			check(a.Peak >= 0.9*b.Peak, fmt.Sprintf("n=%d: Autobahn matches Bullshark peak", n))
			check(a.Peak > 4*v.Peak, fmt.Sprintf("n=%d: Autobahn far exceeds VanillaHS peak", n))
		}
	})

	run("ablation", func() {
		r := harness.Ablation(4, 200e3, 15*time.Second, *seed)
		harness.PrintAblation(os.Stdout, r)
		record("full_ms", float64(r.Full.Milliseconds()))
		record("no_fastpath_ms", float64(r.NoFastPath.Milliseconds()))
		record("certified_tips_ms", float64(r.CertifiedTips.Milliseconds()))
		check(r.NoFastPath > r.Full, "fast path reduces latency (paper: ~40ms)")
		check(r.CertifiedTips > r.Full, "optimistic tips reduce latency (paper: ~33ms)")
	})

	run("fig7", func() {
		// Three leader-failure scenarios: Dbl (rotating, 1s timeout),
		// stable 1s, stable 5s — VanillaHS vs Autobahn.
		scenarios := []struct {
			name    string
			stable  bool
			timeout time.Duration
		}{
			{"Dbl.1s (rotating)", false, time.Second},
			{"1s (stable)", true, time.Second},
			{"5s (stable)", true, 5 * time.Second},
		}
		for i, sc := range scenarios {
			fmt.Printf("\n-- scenario %s --\n", sc.name)
			crashFor := 1500 * time.Millisecond
			if sc.timeout == 5*time.Second {
				crashFor = 5500 * time.Millisecond
			}
			vhs := harness.RunBlip(harness.BlipConfig{
				System: harness.VanillaHS, Load: 15e3, Seed: *seed,
				StableLeaders: sc.stable, Timeout: sc.timeout,
				CrashFor: crashFor, Duration: 35 * time.Second,
			})
			auto := harness.RunBlip(harness.BlipConfig{
				System: harness.Autobahn, Load: 220e3, Seed: *seed,
				Timeout: sc.timeout, CrashFor: crashFor, Duration: 35 * time.Second,
			})
			harness.PrintBlip(os.Stdout, vhs, 30)
			harness.PrintBlip(os.Stdout, auto, 30)
			record(fmt.Sprintf("vanilla_hangover_s_scenario%d", i), vhs.Hangover.Seconds())
			record(fmt.Sprintf("autobahn_hangover_s_scenario%d", i), auto.Hangover.Seconds())
			check(vhs.Hangover >= time.Second || vhs.PeakLat > 4*vhs.Baseline,
				"VanillaHS blips hard and/or hangs over")
			// Autobahn may carry a <=2s residual while the crashed replica
			// digests its data backlog (fast path partially degraded); see
			// EXPERIMENTS.md.
			check(auto.Hangover <= 2*time.Second, "Autobahn recovers seamlessly")
		}
	})

	run("fig8", func() {
		for _, sys := range harness.AllSystems {
			r := harness.RunPartition(harness.PartitionConfig{System: sys, Seed: *seed})
			harness.PrintPartition(os.Stdout, r)
			record(string(sys)+"_recovery_s", r.Recovery.Seconds())
		}
		auto := harness.RunPartition(harness.PartitionConfig{System: harness.Autobahn, Seed: *seed})
		vhs := harness.RunPartition(harness.PartitionConfig{System: harness.VanillaHS, Seed: *seed})
		check(auto.Recovery <= 4*time.Second, "Autobahn commits the partition backlog almost immediately")
		check(vhs.Recovery >= 4*auto.Recovery, "VanillaHS hangover is proportional to the blip")
	})

	run("restart", func() {
		// Crash-restart blip: a replica's process dies mid-run and comes
		// back from its journal (ISSUE 2 recovery scenario).
		r := harness.RunRestartBlip(harness.BlipConfig{
			Load: 20e3, Seed: *seed, Duration: 25 * time.Second,
		}, false)
		harness.PrintBlip(os.Stdout, r, 25)
		record("hangover_s", r.Hangover.Seconds())
		record("committed_tx", float64(r.Total))
		check(r.Hangover <= time.Second, "journal-backed restart has no hangover beyond the down window")
		check(r.Total >= 499_000, "the offered transactions commit across the restart")
	})

	run("byzantine", func() { runByzantine(*quick, *seed) })
	run("ingress", runIngress)
	run("scaling", func() { runScaling(*quick) })
	run("committee", func() { runCommittee(*quick, *seed) })
	run("faultmatrix", func() { runFaultMatrix(*quick, *seed) })
	run("soak", func() { runSoak(*quick, *seed) })
	run("gateway", func() { runGateway(*quick, *seed) })
	run("snapshot", func() { runSnapshot(*quick, *seed) })

	if *jsonPath != "" {
		data, err := json.MarshalIndent(&rep, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench: marshal report: %v\n", err)
			os.Exit(1)
		}
		data = append(data, '\n')
		if err := os.WriteFile(*jsonPath, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "bench: write report: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote %s\n", *jsonPath)
	}

	if failed {
		os.Exit(1)
	}
}

// validateReport is the -validate mode: strict-decode a bench JSON
// report (unknown fields are schema drift, not extra data) and require
// the structure a downstream perf-trajectory consumer depends on.
func validateReport(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	var r report
	if err := dec.Decode(&r); err != nil {
		return fmt.Errorf("schema violation: %w", err)
	}
	if dec.More() {
		return fmt.Errorf("trailing data after the report object")
	}
	if len(r.Experiments) == 0 {
		return fmt.Errorf("no experiments recorded")
	}
	for name, metrics := range r.Experiments {
		if name == "" {
			return fmt.Errorf("empty experiment name")
		}
		if len(metrics) == 0 {
			return fmt.Errorf("experiment %q has no metrics", name)
		}
	}
	return nil
}

func check(ok bool, claim string) {
	status := "PASS"
	if !ok {
		status = "FAIL"
		failed = true
	}
	rep.Checks[claim] = ok
	fmt.Printf("[%s] %s\n", status, claim)
}

// failed records any FAILed shape check; main exits non-zero so CI can
// gate on figure regressions.
var failed bool
