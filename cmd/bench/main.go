// Command bench regenerates the paper's tables and figures (§6) on the
// discrete-event simulator. Each experiment prints the same rows/series
// the paper reports, plus a PASS/FAIL check of the expected comparative
// shape. See EXPERIMENTS.md for recorded paper-vs-measured values.
//
// Usage:
//
//	bench -exp table1|fig1|fig5|fig6|fig7|fig8|ablation|restart|all [-quick]
//
// A failed shape check exits non-zero (CI gates on it).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/harness"
)

func main() {
	exp := flag.String("exp", "all", "experiment: table1, fig1, fig5, fig6, fig7, fig8, ablation, restart, all")
	quick := flag.Bool("quick", false, "reduced sweeps for a fast smoke run")
	seed := flag.Uint64("seed", 1, "simulation seed")
	flag.Parse()

	run := func(name string, fn func()) {
		if *exp == name || *exp == "all" {
			fmt.Printf("\n=== %s ===\n", name)
			start := time.Now()
			fn()
			fmt.Printf("--- %s done in %v (wall clock)\n", name, time.Since(start).Round(time.Millisecond))
		}
	}

	run("table1", func() { harness.Table1(os.Stdout) })

	run("fig1", func() {
		// VanillaHS latency hangover after a leader-failure blip (Fig. 1).
		r := harness.RunBlip(harness.BlipConfig{
			System: harness.VanillaHS, Load: 15e3, Seed: *seed,
			Duration: 20 * time.Second, CrashFrom: 5 * time.Second,
		})
		harness.PrintBlip(os.Stdout, r, 20)
		check(r.Hangover >= time.Second, "VanillaHS exhibits a hangover beyond the blip")
	})

	run("fig5", func() {
		cfg := harness.Fig5Config{Seed: *seed}
		if *quick {
			cfg.Loads = []float64{50e3, 150e3, 200e3, 240e3}
			cfg.Duration = 12 * time.Second
		}
		res := harness.Fig5(cfg)
		harness.PrintFig5(os.Stdout, res)
		at := func(points []harness.LoadPoint, load float64) *harness.LoadPoint {
			for i := range points {
				if points[i].Load == load {
					return &points[i]
				}
			}
			return nil
		}
		auto := at(res[harness.Autobahn], 200e3)
		bull := at(res[harness.Bullshark], 200e3)
		if auto != nil && bull != nil && auto.Throughput >= 190e3 && bull.Throughput >= 190e3 {
			ratio := float64(bull.MeanLat) / float64(auto.MeanLat)
			fmt.Printf("latency ratio Bullshark/Autobahn at 200k tx/s: %.2fx (paper: 2.1x)\n", ratio)
			check(ratio >= 1.6, "Autobahn cuts DAG latency roughly in half at equal throughput")
		}
	})

	run("fig6", func() {
		cfg := harness.Fig6Config{Seed: *seed}
		if *quick {
			cfg.Ns = []int{4, 12}
			cfg.Duration = 12 * time.Second
			cfg.Loads = []float64{1.5e3, 15e3, 30e3, 100e3, 175e3, 220e3, 240e3}
		}
		res := harness.Fig6(cfg)
		harness.PrintFig6(os.Stdout, res, cfg.Ns)
		for _, n := range cfg.Ns {
			a, b := res[n][harness.Autobahn], res[n][harness.Bullshark]
			v := res[n][harness.VanillaHS]
			check(a.Peak >= 0.9*b.Peak, fmt.Sprintf("n=%d: Autobahn matches Bullshark peak", n))
			check(a.Peak > 4*v.Peak, fmt.Sprintf("n=%d: Autobahn far exceeds VanillaHS peak", n))
		}
	})

	run("ablation", func() {
		r := harness.Ablation(4, 200e3, 15*time.Second, *seed)
		harness.PrintAblation(os.Stdout, r)
		check(r.NoFastPath > r.Full, "fast path reduces latency (paper: ~40ms)")
		check(r.CertifiedTips > r.Full, "optimistic tips reduce latency (paper: ~33ms)")
	})

	run("fig7", func() {
		// Three leader-failure scenarios: Dbl (rotating, 1s timeout),
		// stable 1s, stable 5s — VanillaHS vs Autobahn.
		scenarios := []struct {
			name    string
			stable  bool
			timeout time.Duration
		}{
			{"Dbl.1s (rotating)", false, time.Second},
			{"1s (stable)", true, time.Second},
			{"5s (stable)", true, 5 * time.Second},
		}
		for _, sc := range scenarios {
			fmt.Printf("\n-- scenario %s --\n", sc.name)
			crashFor := 1500 * time.Millisecond
			if sc.timeout == 5*time.Second {
				crashFor = 5500 * time.Millisecond
			}
			vhs := harness.RunBlip(harness.BlipConfig{
				System: harness.VanillaHS, Load: 15e3, Seed: *seed,
				StableLeaders: sc.stable, Timeout: sc.timeout,
				CrashFor: crashFor, Duration: 35 * time.Second,
			})
			auto := harness.RunBlip(harness.BlipConfig{
				System: harness.Autobahn, Load: 220e3, Seed: *seed,
				Timeout: sc.timeout, CrashFor: crashFor, Duration: 35 * time.Second,
			})
			harness.PrintBlip(os.Stdout, vhs, 30)
			harness.PrintBlip(os.Stdout, auto, 30)
			check(vhs.Hangover >= time.Second || vhs.PeakLat > 4*vhs.Baseline,
				"VanillaHS blips hard and/or hangs over")
			// Autobahn may carry a <=2s residual while the crashed replica
			// digests its data backlog (fast path partially degraded); see
			// EXPERIMENTS.md.
			check(auto.Hangover <= 2*time.Second, "Autobahn recovers seamlessly")
		}
	})

	run("fig8", func() {
		for _, sys := range harness.AllSystems {
			r := harness.RunPartition(harness.PartitionConfig{System: sys, Seed: *seed})
			harness.PrintPartition(os.Stdout, r)
		}
		auto := harness.RunPartition(harness.PartitionConfig{System: harness.Autobahn, Seed: *seed})
		vhs := harness.RunPartition(harness.PartitionConfig{System: harness.VanillaHS, Seed: *seed})
		check(auto.Recovery <= 4*time.Second, "Autobahn commits the partition backlog almost immediately")
		check(vhs.Recovery >= 4*auto.Recovery, "VanillaHS hangover is proportional to the blip")
	})

	run("restart", func() {
		// Crash-restart blip: a replica's process dies mid-run and comes
		// back from its journal (ISSUE 2 recovery scenario).
		r := harness.RunRestartBlip(harness.BlipConfig{
			Load: 20e3, Seed: *seed, Duration: 25 * time.Second,
		}, false)
		harness.PrintBlip(os.Stdout, r, 25)
		check(r.Hangover <= time.Second, "journal-backed restart has no hangover beyond the down window")
		check(r.Total >= 499_000, "the offered transactions commit across the restart")
	})

	if failed {
		os.Exit(1)
	}
}

func check(ok bool, claim string) {
	status := "PASS"
	if !ok {
		status = "FAIL"
		failed = true
	}
	fmt.Printf("[%s] %s\n", status, claim)
}

// failed records any FAILed shape check; main exits non-zero so CI can
// gate on figure regressions.
var failed bool
