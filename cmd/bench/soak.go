// Long-haul churn soak: `soak` drives the self-healing runtime through a
// seeded chaos schedule — rolling restarts (with an amnesia mix), stall
// windows, storage faults, Byzantine behaviors — on both runtimes. The
// simulated cell replays a minutes-long schedule deterministically and
// asserts the safety oracle (no contradictions, no duplicate commits,
// gap-free lanes, prefix agreement) plus per-window seamless recovery;
// the live TCP cell applies the same schedule operationally (real
// teardowns and WAL rebuilds, link-level stalls that the transport stall
// detector must catch and redial through, poisoned WALs whose journal
// barrier failure halts the replica fatally) and additionally watches
// goroutine/fd watermarks for leaks across the churn. Quick mode is the
// CI cell; the full run is the nightly soak.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/chaos"
	"repro/internal/harness"
	"repro/internal/types"
)

func runSoak(quick bool, seed uint64) {
	// --- simulated churn soak (deterministic: same seed, same run) ---
	// Execution + snapshots ride through the whole schedule: every replica
	// checkpoints and truncates while being restarted, stalled and lied
	// to, and the AppHash oracle cross-checks each commit.
	cfg := harness.SoakConfig{Seed: seed, Execution: true, SnapshotEvery: 25}
	if quick {
		cfg.Load = 15e3
		cfg.Duration = 30 * time.Second
		cfg.Chaos.Start = 5 * time.Second
		cfg.Chaos.End = 25 * time.Second
	} else {
		cfg.N = 7
		cfg.Load = 20e3
		cfg.Duration = 3 * time.Minute
		cfg.Chaos = chaos.Params{
			Start: 10 * time.Second, End: 160 * time.Second,
			Restarts: 8, DownFor: 2 * time.Second, AmnesiaMix: 0.34,
			Stalls: 5, StallFor: 1500 * time.Millisecond,
			StorageFaults: 3,
			Behaviors: []chaos.Behavior{
				{Node: 6, Name: "equivocate", From: 10 * time.Second, To: 160 * time.Second},
			},
		}
	}
	res, err := harness.RunSimSoak(cfg)
	if err != nil {
		fmt.Printf("sim soak: %v\n", err)
		check(false, "soak(sim): schedule generation and run")
		return
	}
	harness.PrintSoak(os.Stdout, res)
	record("sim_windows", float64(len(res.Windows)))
	record("sim_total_committed", float64(res.Total))
	record("sim_baseline_ms", float64(res.Baseline.Milliseconds()))
	record("sim_max_hangover_s", res.MaxHangover.Seconds())
	check(res.Violation == "",
		"soak(sim): no safety violation across churn (contradiction, dup, lane gap, prefix)")
	check(res.Recovered,
		"soak(sim): latency returns under 2x baseline inside every recovery gap")
	check(res.Total > 0, "soak(sim): the cluster commits under churn")

	// --- live TCP churn soak ---
	// SnapshotEvery is deliberately coarse: state sync triggers at
	// 2xSnapshotEvery slots behind, and a gateway-fronted replica that
	// snapshot-jumps a transient outage window skips the very commits its
	// clients are awaiting acks for (exactly-once over a skipped window
	// is undecidable gateway-side). Operators front gateways on replicas
	// whose checkpoint interval exceeds any transient outage; amnesiac
	// replicas — 100% of history behind — still cold-join via snapshot.
	lcfg := harness.LiveSoakConfig{
		Seed:          seed,
		Logger:        log.New(os.Stderr, "soak ", 0),
		Execution:     true,
		SnapshotEvery: 256,
	}
	if quick {
		lcfg.Duration = 12 * time.Second
		lcfg.Chaos.Start = 3 * time.Second
		lcfg.Chaos.End = 9 * time.Second
		lcfg.GatewayClients = 200
		lcfg.GatewayRate = 200
	} else {
		lcfg.N = 7
		lcfg.Rate = 1000
		lcfg.Duration = 60 * time.Second
		lcfg.Rule = lossy
		lcfg.DrainTimeout = 60 * time.Second
		lcfg.GatewayClients = 500
		lcfg.GatewayRate = 500
		lcfg.Chaos = chaos.Params{
			Start: 5 * time.Second, End: 50 * time.Second,
			Restarts: 3, DownFor: 2 * time.Second, AmnesiaMix: 0.4,
			Stalls: 2, StallFor: 2 * time.Second,
			StorageFaults: 2,
			Behaviors: []chaos.Behavior{
				{Node: types.NodeID(6), Name: "equivocate", From: 5 * time.Second, To: 50 * time.Second},
			},
		}
	}
	lres := harness.RunLiveSoak(lcfg)
	if lres.Err != nil {
		fmt.Printf("live soak SKIP: %v\n", lres.Err)
		return
	}
	harness.PrintLiveSoak(os.Stdout, lres)
	record("live_min_committed", float64(lres.MinCommitted))
	record("live_floor", float64(lres.Floor))
	record("live_operator_restarts", float64(lres.OperatorRestarts))
	record("live_journal_fatals", float64(lres.JournalFatals))
	record("live_stalls", float64(lres.Stalls))
	record("live_redials", float64(lres.Redials))
	record("live_goroutine_growth", float64(lres.GoroutineGrowth))
	record("live_fd_growth", float64(lres.FDGrowth))
	storageFaults := 0
	stallWindows := 0
	for _, ev := range lres.Schedule.Events {
		switch ev.Kind {
		case chaos.KindStorage:
			storageFaults++
		case chaos.KindStall:
			stallWindows++
		}
	}
	check(lres.Violation == "",
		"soak(live): no safety violation across operational churn over real sockets")
	check(lres.MinCommitted >= lres.Floor,
		"soak(live): every replica commits >= 90% of the eligible load despite churn")
	check(lres.JournalFatals >= uint64(storageFaults),
		"soak(live): every poisoned WAL halted its replica loudly (journal-fatal)")
	check(stallWindows == 0 || (lres.Stalls >= 1 && lres.Redials >= 1),
		"soak(live): stalled-but-connected peers were detected and redialed")
	check(lres.GoroutineGrowth <= 20,
		"soak(live): no goroutine leak across the churn (watermark)")
	check(lres.FDGrowth <= 16,
		"soak(live): no fd leak across the churn (watermark)")
	record("live_max_wal_bytes", float64(lres.MaxWALBytes))
	check(lres.MaxWALBytes > 0 && lres.MaxWALBytes <= 64<<20,
		"soak(live): snapshot truncation bounds on-disk WAL growth")
	// Gateway traffic through the same churn: the exactly-once claim.
	record("live_gw_submitted", float64(lres.GatewaySubmitted))
	record("live_gw_committed", float64(lres.GatewayCommitted))
	record("live_gw_rejected", float64(lres.GatewayRejected))
	record("live_gw_deduped", float64(lres.GatewayDeduped))
	record("live_gw_readmitted", float64(lres.GatewayReadmitted))
	record("live_gw_reconnects", float64(lres.GatewayReconnects))
	record("live_gw_resubmits", float64(lres.GatewayResubmits))
	check(lres.GatewayChainDups == 0,
		"soak(live): zero duplicate commits through the gateway dedup window")
	check(lres.GatewayDrained,
		"soak(live): every gateway submission reached a terminal outcome")
	check(lres.GatewaySubmitted > 0 && lres.GatewayCommitted >= lres.GatewaySubmitted*9/10,
		"soak(live): >= 90% of gateway submissions committed despite fault windows")
	check(lres.GatewayReconnects >= 1,
		"soak(live): fault teardowns forced gateway clients to reconnect")
}
