// Command autobahn-vet runs the repository's protocol-invariant
// analyzer suite (internal/analysis): detrange, noclock, bufrelease,
// nocopydigest, journalorder. See DESIGN.md §1.10 for the invariants
// and their originating bugs.
//
// Two modes:
//
//	autobahn-vet ./...            # standalone: load from source, check
//	go vet -vettool=$(which autobahn-vet) ./...
//
// The second form speaks the `go vet` unitchecker protocol (-V=full,
// -flags, unit.cfg) using the compiler's export data, so it composes
// with vet's build cache and covers in-package test files. The
// standalone form needs nothing but the source tree and is what `make
// vet` and CI use.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
)

func main() {
	listFlag := flag.Bool("list", false, "list analyzers and exit")
	jsonFlag := flag.Bool("json", false, "emit diagnostics as JSON")
	flagsFlag := flag.Bool("flags", false, "print analyzer flags in JSON (go vet protocol)")
	vFlag := flag.String("V", "", "print version and exit (-V=full, go vet protocol)")
	flag.Parse()

	if *vFlag != "" {
		printVersion(*vFlag)
		return
	}
	if *flagsFlag {
		// No analyzer-specific flags; report the standard set so
		// `go vet` knows what it may pass.
		fmt.Println(`[{"Name":"V","Bool":true,"Usage":"print version and exit"},{"Name":"flags","Bool":true,"Usage":"print analyzer flags in JSON"},{"Name":"json","Bool":true,"Usage":"emit JSON output"}]`)
		return
	}
	if *listFlag {
		for _, a := range analysis.All() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(runUnit(args[0]))
	}
	os.Exit(runStandalone(args, *jsonFlag))
}

// --- standalone mode ---

func runStandalone(patterns []string, asJSON bool) int {
	root, module, err := findModule()
	if err != nil {
		fmt.Fprintln(os.Stderr, "autobahn-vet:", err)
		return 2
	}
	loader := analysis.NewLoader(root, module)

	var pkgs []*analysis.Package
	load := func(p *analysis.Package, err error) bool {
		if err != nil {
			fmt.Fprintln(os.Stderr, "autobahn-vet:", err)
			return false
		}
		pkgs = append(pkgs, p)
		return true
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "all":
			all, err := loader.LoadAll()
			if err != nil {
				fmt.Fprintln(os.Stderr, "autobahn-vet:", err)
				return 2
			}
			pkgs = append(pkgs, all...)
		case strings.HasPrefix(pat, module):
			if !load(loader.Load(pat)) {
				return 2
			}
		default:
			// A directory path: map onto the module.
			abs, err := filepath.Abs(strings.TrimSuffix(pat, "/..."))
			if err != nil {
				fmt.Fprintln(os.Stderr, "autobahn-vet:", err)
				return 2
			}
			rel, err := filepath.Rel(root, abs)
			if err != nil || strings.HasPrefix(rel, "..") {
				fmt.Fprintf(os.Stderr, "autobahn-vet: %s is outside module %s\n", pat, module)
				return 2
			}
			ip := module
			if rel != "." {
				ip = module + "/" + filepath.ToSlash(rel)
			}
			if !load(loader.Load(ip)) {
				return 2
			}
		}
	}

	var diags []analysis.Diagnostic
	for _, pkg := range pkgs {
		diags = append(diags, analysis.Run(pkg, analysis.All())...)
	}
	return report(diags, asJSON)
}

func report(diags []analysis.Diagnostic, asJSON bool) int {
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "\t")
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(os.Stderr, "autobahn-vet:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(os.Stderr, d)
		}
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// findModule walks up from the working directory to the enclosing
// go.mod and returns the module root and path.
func findModule() (root, module string, err error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("no module line in %s/go.mod", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("no go.mod found above working directory")
		}
		dir = parent
	}
}

// --- go vet unitchecker protocol ---

// unitConfig mirrors the JSON config `go vet` writes for each
// compilation unit (the fields this tool needs).
type unitConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func runUnit(cfgFile string) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "autobahn-vet:", err)
		return 2
	}
	var cfg unitConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintln(os.Stderr, "autobahn-vet:", err)
		return 2
	}
	// Facts protocol: this suite exports none, but go vet expects the
	// output file to exist for caching.
	writeVetx := func() {
		if cfg.VetxOutput != "" {
			os.WriteFile(cfg.VetxOutput, nil, 0o666)
		}
	}
	// Dependency units are analyzed only for facts; with no facts to
	// compute, they are free.
	if cfg.VetxOnly {
		writeVetx()
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				writeVetx()
				return 0
			}
			fmt.Fprintln(os.Stderr, "autobahn-vet:", err)
			return 2
		}
		files = append(files, f)
	}
	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	tconf := types.Config{
		Importer: importerFunc(func(importPath string) (*types.Package, error) {
			path, ok := cfg.ImportMap[importPath]
			if !ok {
				return nil, fmt.Errorf("can't resolve import %q", importPath)
			}
			return compilerImporter.Import(path)
		}),
		GoVersion: cfg.GoVersion,
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	tpkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			writeVetx()
			return 0
		}
		fmt.Fprintln(os.Stderr, "autobahn-vet:", err)
		return 2
	}
	pkg := &analysis.Package{
		Path:  cfg.ImportPath,
		Dir:   cfg.Dir,
		Fset:  fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}
	diags := analysis.Run(pkg, analysis.All())
	writeVetx()
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s\n", d.Pos, d.Message)
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// printVersion implements -V=full: `go vet` hashes the reported
// buildID into its action cache key so tool changes invalidate cached
// results.
func printVersion(mode string) {
	if mode != "full" {
		fmt.Println("autobahn-vet version devel")
		return
	}
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintln(os.Stderr, "autobahn-vet:", err)
		os.Exit(2)
	}
	f, err := os.Open(exe)
	if err != nil {
		fmt.Fprintln(os.Stderr, "autobahn-vet:", err)
		os.Exit(2)
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		fmt.Fprintln(os.Stderr, "autobahn-vet:", err)
		os.Exit(2)
	}
	fmt.Printf("autobahn-vet version devel buildID=%x\n", h.Sum(nil))
}
