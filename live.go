package autobahn

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/mempool"
	"repro/internal/metrics"
	"repro/internal/runtime"
	"repro/internal/transport"
	"repro/internal/types"
)

// LiveCluster runs an n-replica Autobahn deployment inside one process in
// real time: one event-loop goroutine per replica, channel transport,
// real ed25519 signatures. Submit transactions to any replica and consume
// the totally ordered commits from the Commits channel.
type LiveCluster struct {
	opts  Options
	mesh  *transport.LocalMesh
	pools []*mempool.Pool
	mu    []sync.Mutex // per-pool locks (Submit may be called concurrently)
	nodes []*core.Node

	// Commits delivers every committed batch observed at replica 0 (one
	// canonical copy of the total order; all replicas agree).
	Commits chan Committed

	// observer, when set (SetCommitObserver), additionally receives every
	// replica's commits — the fault-matrix harness cross-checks replica
	// logs against each other through it.
	observer func(Committed)

	epoch   time.Time
	started bool
	done    chan struct{} // closed by Stop; terminates flushLoop
}

// SetCommitObserver registers fn to receive every replica's commits (not
// just replica 0's), called from replica event-loop goroutines. Must be
// called before Start; fn must be fast and thread-safe.
func (c *LiveCluster) SetCommitObserver(fn func(Committed)) { c.observer = fn }

// NewLiveCluster builds (but does not start) an in-process cluster.
// Signatures are always verified in live mode.
func NewLiveCluster(o Options) (*LiveCluster, error) {
	if o.N < 1 || (o.N > 1 && o.N < 4) {
		return nil, fmt.Errorf("autobahn: committee size %d cannot tolerate any fault (need n >= 4)", o.N)
	}
	if err := o.validateAdversaries(); err != nil {
		return nil, err
	}
	o.VerifySignatures = true
	lc := &LiveCluster{
		opts:    o,
		mesh:    transport.NewLocalMesh(),
		Commits: make(chan Committed, 4096),
		epoch:   time.Now(),
	}
	lc.mesh.Faults = o.LinkFaults
	suite := o.suite()
	sink := runtime.CommitSinkFunc(func(node types.NodeID, now time.Duration, cm runtime.Committed) {
		c := Committed{
			Replica: node, Lane: cm.Lane, Position: cm.Position,
			Slot: cm.Slot, Batch: cm.Batch, AppHash: cm.AppHash, At: now,
		}
		if obs := lc.observer; obs != nil {
			obs(c)
		}
		if node != 0 {
			return // one canonical stream; replicas agree by safety
		}
		select {
		case lc.Commits <- c:
		default: // consumer not keeping up: drop delivery notifications
		}
	})
	for i := 0; i < o.N; i++ {
		id := types.NodeID(i)
		cfg := o.nodeConfig(id, suite, sink)
		if o.SnapshotEvery > 0 {
			// In-process replicas have no WAL; snapshots live in memory so
			// peers can still serve state sync within the process.
			cfg.Snapshots = &core.MemSnapshots{}
		}
		// Parallel data plane (auto-sized to the hardware): lane traffic
		// runs on per-shard workers, consensus stays serialized.
		cfg.Shards = o.dataShards()
		behavior := o.Adversaries[id]
		if behavior != "" {
			cfg.Shards = 1 // adversary wrappers are single-threaded
		}
		nd := core.NewNode(cfg)
		lc.nodes = append(lc.nodes, nd)
		// A Byzantine replica is the honest node behind the adversary
		// wrapper; it joins the mesh through the wrapper so its behavior
		// intercepts every outbound message.
		var proto runtime.Protocol = nd
		if behavior != "" {
			w, err := adversary.WrapNode(nd, o.committee(), id, suite.Signer(id), behavior, 0, 0)
			if err != nil {
				return nil, err
			}
			proto = w
		}
		// Nodes implement runtime.PreVerifier: each loop signature-checks
		// inbound messages on a parallel worker stage before delivery.
		lc.mesh.AddNode(proto, lc.epoch).SetVerifyWorkers(o.VerifyWorkers)
		lc.pools = append(lc.pools, mempool.NewPool(mempool.Config{
			Self:          types.NodeID(i),
			MaxBatchTxs:   o.MaxBatchTxs,
			MaxBatchBytes: o.MaxBatchBytes,
			MaxBatchDelay: o.MaxBatchDelay,
		}))
	}
	if o.GossipFanout > 0 {
		lc.mesh.EnableGossip(o.GossipFanout, o.seedOr(1))
	}
	lc.mu = make([]sync.Mutex, o.N)
	return lc, nil
}

// LoopStats snapshots a replica's event-loop counters (ingress queue
// accounting plus gossip origin/relay/dup-drop counts).
func (c *LiveCluster) LoopStats(id types.NodeID) metrics.LoopSnapshot {
	return c.mesh.Loop(id).Counters()
}

// PlaneBytes returns a replica's cumulative outbound bytes on the
// control and data planes (gossip relays included) — the counters the
// committee benchmark asserts its bandwidth claims against.
func (c *LiveCluster) PlaneBytes(id types.NodeID) (control, data uint64) {
	return c.mesh.PlaneBytes(id)
}

// Start launches the replicas and the batch-flush ticker.
func (c *LiveCluster) Start() {
	if c.started {
		return
	}
	c.started = true
	c.done = make(chan struct{})
	c.mesh.Start()
	go c.flushLoop()
}

// Stop terminates all replicas and the flush ticker.
func (c *LiveCluster) Stop() {
	if !c.started {
		return
	}
	c.started = false
	close(c.done)
	c.mesh.Stop()
}

// Submit hands a transaction to a replica's mempool; full batches are
// sealed and disseminated immediately, partial ones within the batch
// delay. Safe for concurrent use.
func (c *LiveCluster) Submit(to types.NodeID, tx []byte) error {
	if int(to) >= c.opts.N {
		return fmt.Errorf("autobahn: no replica %d", to)
	}
	now := time.Since(c.epoch)
	c.mu[to].Lock()
	batches := c.pools[to].AddTx(types.Transaction(tx), now)
	c.mu[to].Unlock()
	for _, b := range batches {
		c.mesh.Loop(to).Submit(b)
	}
	return nil
}

// SubmitMany hands a burst of transactions to one replica's mempool
// under a single lock acquisition and timestamp — the committed
// throughput of a LiveCluster is submitter-bound (EXPERIMENTS.md), and
// per-transaction locking is a measurable share of that ceiling for
// callers that already aggregate (load generators, network frontends).
// Semantics match calling Submit for each transaction at one instant.
func (c *LiveCluster) SubmitMany(to types.NodeID, txs [][]byte) error {
	if int(to) >= c.opts.N {
		return fmt.Errorf("autobahn: no replica %d", to)
	}
	now := time.Since(c.epoch)
	var sealed []*types.Batch
	c.mu[to].Lock()
	for _, tx := range txs {
		if batches := c.pools[to].AddTx(types.Transaction(tx), now); batches != nil {
			sealed = append(sealed, batches...)
		}
	}
	c.mu[to].Unlock()
	for _, b := range sealed {
		c.mesh.Loop(to).Submit(b)
	}
	return nil
}

// flushLoop seals partially filled batches after the batch delay.
func (c *LiveCluster) flushLoop() {
	delay := c.opts.MaxBatchDelay
	if delay == 0 {
		delay = 100 * time.Millisecond
	}
	tick := time.NewTicker(delay / 2)
	defer tick.Stop()
	for {
		select {
		case <-c.done:
			return
		case <-tick.C:
		}
		now := time.Since(c.epoch)
		for i := range c.pools {
			c.mu[i].Lock()
			var b *types.Batch
			if c.pools[i].FlushDue(now) {
				b = c.pools[i].Flush(now)
			}
			c.mu[i].Unlock()
			if b != nil {
				c.mesh.Loop(types.NodeID(i)).Submit(b)
			}
		}
	}
}

// Node returns a replica for inspection.
func (c *LiveCluster) Node(id types.NodeID) *core.Node { return c.nodes[id] }

// GatewayBackend adapts one replica of the cluster to gateway.Backend, so
// a gateway.Server (or the bench/soak harnesses) can front an in-process
// deployment: submissions land in that replica's mempool and the depth
// gauges read its live backlog.
func (c *LiveCluster) GatewayBackend(id types.NodeID) liveBackend {
	return liveBackend{c: c, id: id}
}

type liveBackend struct {
	c  *LiveCluster
	id types.NodeID
}

func (b liveBackend) Submit(tx []byte)  { b.c.Submit(b.id, tx) }
func (b liveBackend) MempoolDepth() int { return b.c.pools[b.id].Depth() }
func (b liveBackend) LaneDepth() int    { return b.c.nodes[b.id].LaneDepth() }
