package autobahn

import (
	"encoding/binary"
	"fmt"
	"os"
	"testing"
	"time"

	"repro/internal/types"
)

// TestLiveClusterThroughputPoint measures the in-process cluster's
// committed throughput under an unpaced single-goroutine submitter (the
// EXPERIMENTS.md "real-runtime throughput" point). It is a measurement,
// not a regression gate — run it explicitly:
//
//	AUTOBAHN_LIVE_TPUT=1 go test -run TestLiveClusterThroughputPoint -v .
//
// The loose assertion only catches collapse (commits falling far behind
// the submitter), so CI noise cannot flake it.
func TestLiveClusterThroughputPoint(t *testing.T) {
	if os.Getenv("AUTOBAHN_LIVE_TPUT") == "" {
		t.Skip("measurement run; set AUTOBAHN_LIVE_TPUT=1 to enable")
	}
	lc, err := NewLiveCluster(Options{N: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	lc.Start()
	const dur = 8 * time.Second
	var committed uint64
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case c := <-lc.Commits:
				committed += uint64(c.Batch.Count)
			case <-time.After(3 * time.Second):
				return
			}
		}
	}()
	start := time.Now()
	var sent uint64
	if os.Getenv("AUTOBAHN_LIVE_TPUT_BULK") != "" {
		// Bulk path: 64-tx bursts through SubmitMany.
		burst := make([][]byte, 64)
		for time.Since(start) < dur {
			for i := range burst {
				tx := make([]byte, 128)
				binary.LittleEndian.PutUint64(tx, sent+uint64(i))
				burst[i] = tx
			}
			if err := lc.SubmitMany(types.NodeID(sent%4), burst); err != nil {
				t.Fatal(err)
			}
			sent += uint64(len(burst))
		}
	} else {
		for time.Since(start) < dur {
			tx := make([]byte, 128)
			binary.LittleEndian.PutUint64(tx, sent)
			if err := lc.Submit(types.NodeID(sent%4), tx); err != nil {
				t.Fatal(err)
			}
			sent++
		}
	}
	<-done
	lc.Stop()
	rate := float64(committed) / dur.Seconds()
	fmt.Printf("LiveCluster: %d submitted, %d committed in %v window (%.0f tx/s committed)\n",
		sent, committed, dur, rate)
	if committed < sent/2 {
		t.Fatalf("committed %d of %d submitted: cluster fell behind the submitter", committed, sent)
	}
}
