package autobahn

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/types"
)

func TestLiveClusterCommitsTransactions(t *testing.T) {
	lc, err := NewLiveCluster(Options{N: 4, MaxBatchDelay: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	lc.Start()
	defer lc.Stop()

	const txs = 400
	want := make(map[string]bool, txs)
	for i := 0; i < txs; i++ {
		tx := []byte(fmt.Sprintf("tx-%04d-payload", i))
		want[string(tx)] = true
		if err := lc.Submit(types.NodeID(i%4), tx); err != nil {
			t.Fatal(err)
		}
	}

	deadline := time.After(15 * time.Second)
	got := 0
	for got < txs {
		select {
		case c := <-lc.Commits:
			for _, tx := range c.Batch.Txs {
				if want[string(tx)] {
					delete(want, string(tx))
					got++
				}
			}
		case <-deadline:
			t.Fatalf("timed out: committed %d of %d txs", got, txs)
		}
	}
}

// TestLivePipelinePreVerifies asserts the staged ingress pipeline is
// actually in the live path: after committing traffic, the transport's
// pre-verification workers must have populated each replica's
// verified-signature memo, and the state machines' inline re-checks must
// have hit it (i.e. curve arithmetic came off the event loop).
// TestLiveClusterShardedCommits pins the parallel data plane end to
// end: 4 replicas, 4 data shards each (forced, regardless of host core
// count), real signatures, commits flowing. Under -race this covers the
// full shard↔control handoff: sharded lane ingestion, tip notices into
// the consensus engine, frontier messages back to the shards.
func TestLiveClusterShardedCommits(t *testing.T) {
	lc, err := NewLiveCluster(Options{N: 4, Seed: 3, DataShards: 4, MaxBatchDelay: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	lc.Start()
	defer lc.Stop()

	const txs = 400
	for i := 0; i < txs; i++ {
		if err := lc.Submit(types.NodeID(i%4), []byte(fmt.Sprintf("sharded-%04d", i))); err != nil {
			t.Fatal(err)
		}
	}
	got := 0
	deadline := time.After(30 * time.Second)
	for got < txs {
		select {
		case c := <-lc.Commits:
			got += int(c.Batch.Count)
		case <-deadline:
			t.Fatalf("committed only %d/%d transactions on the sharded cluster", got, txs)
		}
	}
	// All four lanes must have progressed (submission was round-robin).
	for i := 0; i < 4; i++ {
		if pos := lc.Node(0).Orderer().LastCommit(types.NodeID(i)); pos == 0 {
			t.Fatalf("lane %d never committed", i)
		}
	}
}

func TestLivePipelinePreVerifies(t *testing.T) {
	lc, err := NewLiveCluster(Options{N: 4, MaxBatchDelay: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	lc.Start()
	defer lc.Stop()

	for i := 0; i < 100; i++ {
		if err := lc.Submit(types.NodeID(i%4), []byte(fmt.Sprintf("pv-tx-%04d", i))); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.After(15 * time.Second)
	got := 0
	for got < 100 {
		select {
		case c := <-lc.Commits:
			got += len(c.Batch.Txs)
		case <-deadline:
			t.Fatalf("timed out: committed %d of 100 txs", got)
		}
	}
	for i := 0; i < 4; i++ {
		hits, misses := lc.Node(types.NodeID(i)).PreVerifyStats()
		if misses == 0 {
			t.Fatalf("replica %d: memo never populated (pipeline not running)", i)
		}
		if hits == 0 {
			t.Fatalf("replica %d: inline checks never hit the memo (no trust hand-off)", i)
		}
		t.Logf("replica %d: memo hits=%d misses=%d", i, hits, misses)
	}
}

func TestLiveClusterRejectsBadCommittee(t *testing.T) {
	if _, err := NewLiveCluster(Options{N: 3}); err == nil {
		t.Fatal("expected error for n=3 (tolerates no faults)")
	}
	if _, err := NewLiveCluster(Options{N: 0}); err == nil {
		t.Fatal("expected error for n=0")
	}
}

func TestSimClusterQuickstart(t *testing.T) {
	sc := NewSimCluster(SimOptions{Options: Options{N: 4}})
	sc.SubmitLoad(10_000, 512, 0, 5*time.Second)
	sc.Run(8 * time.Second)
	if total := sc.Recorder.Total(); total < 48_000 {
		t.Fatalf("committed %d of ~50000", total)
	}
	lat := sc.Recorder.MeanLatency(1*time.Second, 4*time.Second)
	if lat <= 0 || lat > time.Second {
		t.Fatalf("implausible latency %v", lat)
	}
	t.Logf("sim quickstart: total=%d lat=%v", sc.Recorder.Total(), lat)
}
