package autobahn

import (
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/gateway"
	"repro/internal/mempool"
	"repro/internal/metrics"
	"repro/internal/runtime"
	"repro/internal/storage"
	"repro/internal/transport"
	"repro/internal/types"
)

// Replica is a single Autobahn replica communicating with its peers over
// TCP (length-framed wire encoding, automatic reconnection). It is the
// building block of real multi-process deployments; see cmd/autobahn-node.
type Replica struct {
	opts    Options
	self    types.NodeID
	mesh    *transport.TCPMesh
	node    *core.Node
	journal core.Journal // nil without Options.WALPath

	poolMu   sync.Mutex
	pool     *mempool.Pool
	epoch    time.Time
	done     chan struct{} // closed by Stop; terminates flushLoop
	started  bool          // Start launched the event loop (Stop may Join it)
	stopOnce sync.Once

	// gateway is the client-facing ingress tier (Options.GatewayAddr);
	// nil when disabled. It feeds Submit and consumes the commit sink.
	gateway *gateway.Server

	// Journal-fatal state: a failed group-commit barrier halts the node
	// (core.Config.OnFatal), shuts this replica down, and reports the
	// cause on the fatal channel exactly once.
	fatal        chan error
	journalFatal atomic.Bool

	// Commits delivers this replica's totally ordered, execution-ready
	// batches.
	Commits chan Committed

	// observer, when set (SetCommitObserver), synchronously receives
	// every commit before the Commits channel — which drops under
	// backpressure. Harnesses that cross-check replica logs (the fault
	// matrix's safety oracle) must use the observer: a dropped channel
	// delivery would misalign an index-based log comparison.
	observer func(Committed)
}

// SetCommitObserver registers fn to synchronously receive every commit
// (never dropped, unlike the Commits channel). Must be called before
// Start; fn runs on the replica's event loop and must be fast and
// thread-safe.
func (r *Replica) SetCommitObserver(fn func(Committed)) { r.observer = fn }

// NewReplica builds replica `self` of a committee whose members listen at
// the given addresses (all replicas must share the same Options and
// address map). Signatures are always verified.
//
// With Options.WALPath set, the replica journals its safety-critical
// protocol state (own proposals, lane FIFO votes, consensus votes,
// decided slots) to that write-ahead log before externalizing it, and a
// restarted process recovers from the same path: it never contradicts a
// pre-crash vote and resumes execution from its committed frontier,
// fetching whatever else it misses through the normal non-blocking sync.
func NewReplica(self types.NodeID, addrs map[types.NodeID]string, o Options, logger *log.Logger) (*Replica, error) {
	if len(addrs) != o.N {
		return nil, fmt.Errorf("autobahn: %d addresses for committee of %d", len(addrs), o.N)
	}
	if err := o.validateAdversaries(); err != nil {
		return nil, err
	}
	o.VerifySignatures = true
	r := &Replica{
		opts:    o,
		self:    self,
		epoch:   time.Now(), // deployments tolerate skewed epochs: only latency *reports* depend on it
		done:    make(chan struct{}),
		fatal:   make(chan error, 1),
		Commits: make(chan Committed, 4096),
	}
	if o.WALFaults != nil && o.WALPath == "" {
		return nil, fmt.Errorf("autobahn: WALFaults requires WALPath")
	}
	if o.WALPath != "" {
		st, err := storage.OpenWithFaults(o.WALPath, o.WALFaults)
		if err != nil {
			return nil, fmt.Errorf("autobahn: replica journal: %w", err)
		}
		st.SyncEvery = o.WALSyncEvery
		r.journal = core.NewWALJournal(st)
	}
	sink := runtime.CommitSinkFunc(func(node types.NodeID, now time.Duration, cm runtime.Committed) {
		c := Committed{
			Replica: node, Lane: cm.Lane, Position: cm.Position,
			Slot: cm.Slot, Batch: cm.Batch, AppHash: cm.AppHash, At: now,
		}
		if obs := r.observer; obs != nil {
			obs(c)
		}
		if gw := r.gateway; gw != nil {
			gw.OnCommit(cm.Batch) // spill-queue append: never blocks the loop
		}
		select {
		case r.Commits <- c:
		default:
		}
	})
	suite := o.suite()
	cfg := o.nodeConfig(self, suite, sink)
	cfg.Journal = r.journal
	if o.SnapshotEvery > 0 {
		if o.WALPath != "" {
			// Snapshots persist beside the WAL, atomically replaced; a
			// restarted process recovers from the newer of snapshot and
			// journal frontier.
			cfg.Snapshots = storage.FileSnapshots{Path: o.WALPath + ".snap"}
		} else {
			cfg.Snapshots = &core.MemSnapshots{}
		}
	}
	// Parallel data plane (auto-sized to the hardware): lane traffic runs
	// on per-shard workers, consensus stays serialized.
	cfg.Shards = o.dataShards()
	behavior := o.Adversaries[self]
	if behavior != "" {
		cfg.Shards = 1 // adversary wrappers are single-threaded
	}
	// With a WAL, journal writes group-commit: records accumulate across
	// each event-loop burst and one Sync covers them all, with the gated
	// sends released only after it returns (the transport loop drives
	// the Flush hook). Without a WAL there is nothing to amortize.
	cfg.GroupCommit = r.journal != nil
	// A journal barrier failure is replica-fatal: un-journaled state must
	// never externalize, so the replica halts loudly — it stops itself
	// and reports on Fatal — rather than run on without durability.
	cfg.OnFatal = func(err error) {
		r.journalFatal.Store(true)
		select {
		case r.fatal <- err:
		default:
		}
		r.Stop()
	}
	r.node = core.NewNode(cfg)
	// A Byzantine replica joins the mesh behind its adversary wrapper,
	// which intercepts every outbound message (fault-matrix testing over
	// real sockets).
	var proto runtime.Protocol = r.node
	if behavior != "" {
		w, err := adversary.WrapNode(r.node, o.committee(), self, suite.Signer(self), behavior, 0, 0)
		if err != nil {
			return nil, err
		}
		proto = w
	}
	r.mesh = transport.NewTCPMesh(self, addrs, proto, r.epoch, logger)
	if o.StallTimeout > 0 {
		r.mesh.SetStallTimeout(o.StallTimeout)
	}
	if o.LinkFaults != nil {
		r.mesh.SetLinkFaults(o.LinkFaults)
	}
	if o.GossipFanout > 0 {
		// Seed varies by replica so relay samples differ across the
		// committee (a shared seed would correlate every node's graph).
		r.mesh.EnableGossip(o.GossipFanout, o.seedOr(1)+uint64(self)*0x9e3779b97f4a7c15)
	}
	if o.DeltaCuts {
		r.mesh.EnableDeltaCuts()
	}
	// The node implements runtime.PreVerifier, so the mesh's loop runs
	// inbound signature checks on a parallel worker stage.
	r.mesh.Loop().SetVerifyWorkers(o.VerifyWorkers)
	r.pool = mempool.NewPool(mempool.Config{
		Self:          self,
		MaxBatchTxs:   o.MaxBatchTxs,
		MaxBatchBytes: o.MaxBatchBytes,
		MaxBatchDelay: o.MaxBatchDelay,
	})
	if o.GatewayAddr != "" {
		gwOpts := o.Gateway
		if gwOpts.Logger == nil {
			gwOpts.Logger = logger
		}
		r.gateway = gateway.NewServer(r, gwOpts)
	}
	return r, nil
}

// Start begins listening, connects to peers lazily, and launches the
// replica's event loop and batch-flush ticker.
func (r *Replica) Start() error {
	if err := r.mesh.Start(); err != nil {
		return err
	}
	if r.gateway != nil {
		if err := r.gateway.Start(r.opts.GatewayAddr); err != nil {
			r.mesh.Stop()
			return err
		}
	}
	r.started = true
	go r.flushLoop()
	return nil
}

// Stop shuts the replica down: the flush ticker exits, the mesh closes,
// and the journal (if any) is flushed to disk.
func (r *Replica) Stop() {
	r.stopOnce.Do(func() {
		close(r.done)
		if r.gateway != nil {
			r.gateway.Stop()
		}
		r.mesh.Stop()
		if r.started {
			// Wait for the event loop's in-flight handler: journal writes
			// must win the race against the store closing beneath them.
			r.mesh.Loop().Join()
		}
		if r.journal != nil {
			if err := r.journal.Close(); err != nil {
				log.Printf("autobahn: closing replica journal: %v", err)
			}
		}
	})
}

// Submit adds one client transaction to this replica's mempool.
func (r *Replica) Submit(tx []byte) {
	now := time.Since(r.epoch)
	r.poolMu.Lock()
	batches := r.pool.AddTx(types.Transaction(tx), now)
	r.poolMu.Unlock()
	for _, b := range batches {
		r.mesh.Loop().Submit(b)
	}
}

func (r *Replica) flushLoop() {
	delay := r.opts.MaxBatchDelay
	if delay == 0 {
		delay = 100 * time.Millisecond
	}
	tick := time.NewTicker(delay / 2)
	defer tick.Stop()
	for {
		select {
		case <-r.done:
			return
		case <-tick.C:
		}
		now := time.Since(r.epoch)
		r.poolMu.Lock()
		var b *types.Batch
		if r.pool.FlushDue(now) {
			b = r.pool.Flush(now)
		}
		r.poolMu.Unlock()
		if b != nil {
			r.mesh.Loop().Submit(b)
		}
	}
}

// Node exposes the protocol state (stats, orderer) for monitoring.
func (r *Replica) Node() *core.Node { return r.node }

// MempoolDepth reports the live mempool backlog (gateway.Backend); an
// atomic gauge, safe without the pool lock.
func (r *Replica) MempoolDepth() int { return r.pool.Depth() }

// LaneDepth reports this replica's own-lane end-to-end backlog —
// batches awaiting a car plus proposed-but-uncommitted cars
// (gateway.Backend).
func (r *Replica) LaneDepth() int { return r.node.LaneDepth() }

// Gateway returns the client gateway tier, nil unless Options.GatewayAddr
// was set.
func (r *Replica) Gateway() *gateway.Server { return r.gateway }

// TransportStats snapshots the per-peer egress/ingress counters (frames,
// coalesced flushes, bytes, queue drops per control/data plane).
func (r *Replica) TransportStats() map[types.NodeID]metrics.TransportSnapshot {
	return r.mesh.PeerStats()
}

// LoopStats snapshots the event-loop ingress counters (events accepted
// on the control loop and data-plane shards, and inbox/shard drops —
// the overload signal), plus the replica's link-health aggregates
// (dials, redials, stall-detector teardowns across peers) and whether
// the journal went fatal.
func (r *Replica) LoopStats() metrics.LoopSnapshot {
	s := r.mesh.Loop().Counters()
	total := r.mesh.TotalStats()
	s.PeerDials = total.Dials
	s.PeerRedials = total.Redials
	s.PeerStalls = total.Stalls
	if r.journalFatal.Load() {
		s.JournalFatal = 1
	}
	return s
}

// Fatal reports an unrecoverable replica failure (a journal write or
// sync error: write-before-externalize could not be guaranteed). The
// replica has already halted and stopped itself when a value arrives;
// operators typically restart the process — recovery replays whatever
// the WAL durably holds.
func (r *Replica) Fatal() <-chan error { return r.fatal }
