package autobahn

import (
	"fmt"
	"log"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/mempool"
	"repro/internal/runtime"
	"repro/internal/transport"
	"repro/internal/types"
)

// Replica is a single Autobahn replica communicating with its peers over
// TCP (length-framed wire encoding, automatic reconnection). It is the
// building block of real multi-process deployments; see cmd/autobahn-node.
type Replica struct {
	opts Options
	self types.NodeID
	mesh *transport.TCPMesh
	node *core.Node

	poolMu sync.Mutex
	pool   *mempool.Pool
	epoch  time.Time

	// Commits delivers this replica's totally ordered, execution-ready
	// batches.
	Commits chan Committed
}

// NewReplica builds replica `self` of a committee whose members listen at
// the given addresses (all replicas must share the same Options and
// address map). Signatures are always verified.
func NewReplica(self types.NodeID, addrs map[types.NodeID]string, o Options, logger *log.Logger) (*Replica, error) {
	if len(addrs) != o.N {
		return nil, fmt.Errorf("autobahn: %d addresses for committee of %d", len(addrs), o.N)
	}
	o.VerifySignatures = true
	r := &Replica{
		opts:    o,
		self:    self,
		epoch:   time.Now(), // deployments tolerate skewed epochs: only latency *reports* depend on it
		Commits: make(chan Committed, 4096),
	}
	sink := runtime.CommitSinkFunc(func(node types.NodeID, now time.Duration, cm runtime.Committed) {
		select {
		case r.Commits <- Committed{
			Replica: node, Lane: cm.Lane, Position: cm.Position,
			Slot: cm.Slot, Batch: cm.Batch, At: now,
		}:
		default:
		}
	})
	r.node = core.NewNode(o.nodeConfig(self, o.suite(), sink))
	r.mesh = transport.NewTCPMesh(self, addrs, r.node, r.epoch, logger)
	// The node implements runtime.PreVerifier, so the mesh's loop runs
	// inbound signature checks on a parallel worker stage.
	r.mesh.Loop().SetVerifyWorkers(o.VerifyWorkers)
	r.pool = mempool.NewPool(mempool.Config{
		Self:          self,
		MaxBatchTxs:   o.MaxBatchTxs,
		MaxBatchBytes: o.MaxBatchBytes,
		MaxBatchDelay: o.MaxBatchDelay,
	})
	return r, nil
}

// Start begins listening, connects to peers lazily, and launches the
// replica's event loop and batch-flush ticker.
func (r *Replica) Start() error {
	if err := r.mesh.Start(); err != nil {
		return err
	}
	go r.flushLoop()
	return nil
}

// Stop shuts the replica down.
func (r *Replica) Stop() { r.mesh.Stop() }

// Submit adds one client transaction to this replica's mempool.
func (r *Replica) Submit(tx []byte) {
	now := time.Since(r.epoch)
	r.poolMu.Lock()
	batches := r.pool.AddTx(types.Transaction(tx), now)
	r.poolMu.Unlock()
	for _, b := range batches {
		r.mesh.Loop().Submit(b)
	}
}

func (r *Replica) flushLoop() {
	delay := r.opts.MaxBatchDelay
	if delay == 0 {
		delay = 100 * time.Millisecond
	}
	tick := time.NewTicker(delay / 2)
	defer tick.Stop()
	for {
		<-tick.C
		now := time.Since(r.epoch)
		r.poolMu.Lock()
		var b *types.Batch
		if r.pool.FlushDue(now) {
			b = r.pool.Flush(now)
		}
		r.poolMu.Unlock()
		if b != nil {
			r.mesh.Loop().Submit(b)
		}
	}
}

// Node exposes the protocol state (stats, orderer) for monitoring.
func (r *Replica) Node() *core.Node { return r.node }
