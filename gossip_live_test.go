package autobahn_test

import (
	"sync/atomic"
	"testing"
	"time"

	autobahn "repro"
	"repro/internal/harness"
	"repro/internal/types"
)

// TestLiveClusterGossipAgreementN16 runs the large-committee fast path
// end to end: a 16-replica sharded cluster disseminating cars over
// fanout-5 gossip instead of full-mesh broadcast. Every replica must
// commit an identical order (the interceptor's safety oracle), the
// honest load must reach the floor everywhere, and the gossip counters
// must show relays actually carried dissemination. Under -race this
// covers the relay path (sampler, dedup memo, counter wiring) against
// the sharded ingress concurrently.
func TestLiveClusterGossipAgreementN16(t *testing.T) {
	const n, txs = 16, 480
	lc, err := autobahn.NewLiveCluster(autobahn.Options{
		N: n, Seed: 5, MaxBatchDelay: 10 * time.Millisecond,
		DataShards: 2, GossipFanout: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	ci := harness.NewCommitInterceptor()
	var committed [n]atomic.Uint64
	lc.SetCommitObserver(func(c autobahn.Committed) {
		ci.Record(c.Replica, c.Lane, c.Position, c.Batch.Digest(), c.AppHash)
		committed[c.Replica].Add(uint64(c.Batch.Count))
	})
	lc.Start()
	defer lc.Stop()

	tx := make([]byte, 64)
	for k := 0; k < txs; k++ {
		if err := lc.Submit(types.NodeID(k%n), tx); err != nil {
			t.Fatal(err)
		}
		time.Sleep(time.Millisecond)
	}
	floor := uint64(float64(txs) * 0.9)
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		done := true
		for i := 0; i < n; i++ {
			if committed[i].Load() < floor {
				done = false
			}
		}
		if done {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if v := ci.Violation(); v != "" {
		t.Fatalf("safety violation under gossip dissemination: %s", v)
	}
	for i := 0; i < n; i++ {
		if got := committed[i].Load(); got < floor {
			t.Errorf("replica %d committed %d < floor %d", i, got, floor)
		}
	}
	var origin, relays uint64
	for i := 0; i < n; i++ {
		ls := lc.LoopStats(types.NodeID(i))
		origin += ls.GossipOrigin
		relays += ls.GossipRelays
	}
	if origin == 0 {
		t.Error("no gossip origins recorded: cars went out full-mesh")
	}
	if relays == 0 {
		t.Error("no gossip relays recorded: dissemination never chained")
	}
	t.Logf("n=16 gossip: origins=%d relays=%d", origin, relays)
}
