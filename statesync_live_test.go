package autobahn

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/transport"
	"repro/internal/types"
)

// TestReplicaColdJoinViaSnapshot is the real-runtime O(state) join path,
// under a lossy link: a snapshotting TCP cluster commits enough history
// to truncate it, one replica loses its disk entirely (WAL + snapshot),
// and the rebuilt process — behind a link dropping a share of its
// egress — must rejoin through snapshot-based state sync (manifest,
// verified chunks, install) instead of genesis replay, then keep
// committing with its peers.
func TestReplicaColdJoinViaSnapshot(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP e2e")
	}
	const snapEvery = 24
	addrs := freeAddrs(t, 4)
	dir := t.TempDir()
	opts := func(id int, faulty bool) Options {
		o := Options{
			N:             4,
			MaxBatchDelay: 10 * time.Millisecond,
			Execution:     true,
			SnapshotEvery: snapEvery,
			WALPath:       filepath.Join(dir, fmt.Sprintf("r%d.wal", id)),
		}
		if faulty {
			o.LinkFaults = transport.NewLinkFaults(7).SetAll(transport.LinkRule{DropP: 0.1})
		}
		return o
	}
	replicas := make([]*Replica, 4)
	for i := range replicas {
		r, err := NewReplica(types.NodeID(i), addrs, opts(i, false), log.New(os.Stderr, fmt.Sprintf("r%d ", i), 0))
		if err != nil {
			t.Fatal(err)
		}
		if err := r.Start(); err != nil {
			t.Fatal(err)
		}
		replicas[i] = r
	}
	defer func() {
		for _, r := range replicas {
			r.Stop()
		}
	}()

	// Drive load through replica 0 until the committed slot clears the
	// given threshold (watching replica 0's commit stream).
	driveUntilSlot := func(target types.Slot) {
		t.Helper()
		deadline := time.After(60 * time.Second)
		tick := time.NewTicker(5 * time.Millisecond)
		defer tick.Stop()
		k := 0
		for {
			select {
			case c := <-replicas[0].Commits:
				if c.Slot >= target {
					return
				}
			case <-tick.C:
				replicas[0].Submit([]byte(fmt.Sprintf("tx-%06d", k)))
				k++
			case <-deadline:
				t.Fatalf("cluster did not reach slot %d", target)
			}
		}
	}

	// History deep enough that several checkpoints (and truncations)
	// happened and a genesis joiner would be hopelessly behind.
	driveUntilSlot(3 * snapEvery)

	// Replica 3 loses everything: process, WAL, snapshot.
	replicas[3].Stop()
	os.Remove(filepath.Join(dir, "r3.wal"))
	os.Remove(filepath.Join(dir, "r3.wal.snap"))

	// Put more history between the crash and the rejoin.
	driveUntilSlot(5 * snapEvery)

	r3, err := NewReplica(3, addrs, opts(3, true), log.New(os.Stderr, "r3' ", 0))
	if err != nil {
		t.Fatal(err)
	}
	if err := r3.Start(); err != nil {
		t.Fatal(err)
	}
	replicas[3] = r3

	// Keep traffic flowing (commit notices are the sync trigger; chunks
	// ride the same mesh) until the amnesiac installs a snapshot and
	// resumes committing above its frontier.
	deadline := time.After(90 * time.Second)
	tick := time.NewTicker(5 * time.Millisecond)
	defer tick.Stop()
	k := 0
	committedAfterJoin := 0
	for {
		installed := r3.Node().Stats().SnapshotsInstalled
		if installed > 0 {
			select {
			case <-r3.Commits:
				committedAfterJoin++
			default:
			}
			if committedAfterJoin >= 20 {
				t.Logf("replica 3 cold-joined via %d snapshot install(s) at frontier %d, %d commits after join",
					installed, r3.Node().SnapshotFrontier(), committedAfterJoin)
				return
			}
		}
		select {
		case <-tick.C:
			replicas[0].Submit([]byte(fmt.Sprintf("post-%06d", k)))
			k++
		case <-deadline:
			t.Fatalf("cold join did not complete: installs=%d nextExec=%d commits-after=%d",
				installed, r3.Node().Orderer().NextExec(), committedAfterJoin)
		}
	}
}
