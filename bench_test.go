// Benchmarks regenerating every table and figure of the paper's
// evaluation (§6) on the discrete-event simulator, plus micro-benchmarks
// of the core building blocks. Macro-benchmarks report the paper's
// metrics via b.ReportMetric (latencies in ms, throughputs in tx/s);
// wall-clock ns/op is not the interesting output for those.
//
//	go test -bench=. -benchmem .
//
// See EXPERIMENTS.md for recorded paper-vs-measured values and cmd/bench
// for the full-fidelity sweeps.
//
// External test package: internal/harness imports the root package (the
// shared live-cell runner builds real Replicas), so in-package tests
// cannot import harness without a cycle.
package autobahn_test

import (
	"testing"
	"time"

	"repro/internal/crypto"
	"repro/internal/harness"
	"repro/internal/lane"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/types"
	"repro/internal/wire"
)

// BenchmarkTable1RTTMatrix verifies the simulated topology reproduces the
// paper's Table 1 RTTs (the delay model underlying every figure).
func BenchmarkTable1RTTMatrix(b *testing.B) {
	topo := sim.IntraUSTopology()
	for i := 0; i < b.N; i++ {
		for a := 0; a < 4; a++ {
			for c := 0; c < 4; c++ {
				d := topo.Delay(types.NodeID(a), types.NodeID(c))
				want := time.Duration(sim.IntraUSRTTms[a][c] / 2 * float64(time.Millisecond))
				if d != want {
					b.Fatalf("delay(%d,%d) = %v, want %v", a, c, d, want)
				}
			}
		}
	}
	b.ReportMetric(sim.IntraUSRTTms[0][2], "max_rtt_ms")
}

// BenchmarkFigure1Hangover reproduces Fig. 1: VanillaHS's latency
// hangover after a ~3s leader-failure blip at 15k tx/s.
func BenchmarkFigure1Hangover(b *testing.B) {
	var r harness.BlipResult
	for i := 0; i < b.N; i++ {
		r = harness.RunBlip(harness.BlipConfig{
			System: harness.VanillaHS, Load: 15e3,
			Duration: 20 * time.Second, CrashFrom: 5 * time.Second,
			Seed: uint64(i + 1),
		})
	}
	b.ReportMetric(r.Hangover.Seconds(), "hangover_s")
	b.ReportMetric(r.PeakLat.Seconds(), "peak_lat_s")
	b.ReportMetric(float64(r.Baseline.Milliseconds()), "baseline_ms")
}

// BenchmarkFigure5LatencyThroughput reproduces Fig. 5's headline point:
// all four systems at high load (200k tx/s), n=4.
func BenchmarkFigure5LatencyThroughput(b *testing.B) {
	type row struct {
		sys  harness.System
		load float64
	}
	rows := []row{
		{harness.Autobahn, 200e3},
		{harness.Bullshark, 200e3},
		{harness.BatchedHS, 150e3},
		{harness.VanillaHS, 15e3},
	}
	res := make(map[harness.System]harness.LoadPoint)
	for i := 0; i < b.N; i++ {
		for _, r := range rows {
			res[r.sys] = harness.MeasurePoint(r.sys, 4, r.load, 15*time.Second, uint64(i+1))
		}
	}
	for _, r := range rows {
		p := res[r.sys]
		b.ReportMetric(p.Throughput, string(r.sys)+"_tput")
		b.ReportMetric(float64(p.MeanLat.Milliseconds()), string(r.sys)+"_ms")
	}
	if a, bs := res[harness.Autobahn], res[harness.Bullshark]; a.MeanLat > 0 {
		b.ReportMetric(float64(bs.MeanLat)/float64(a.MeanLat), "latency_ratio")
	}
}

// BenchmarkFigure6Scaling reproduces Fig. 6's shape at n=4 and n=12:
// Autobahn and Bullshark hold their peak as n grows; VanillaHS collapses.
func BenchmarkFigure6Scaling(b *testing.B) {
	cfg := harness.Fig6Config{
		Ns:       []int{4, 12},
		Duration: 12 * time.Second,
		Loads:    []float64{1.5e3, 15e3, 30e3, 100e3, 175e3, 220e3, 240e3},
	}
	var res map[int]map[harness.System]harness.PeakPoint
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i + 1)
		res = harness.Fig6(cfg)
	}
	for _, n := range cfg.Ns {
		for _, sys := range harness.AllSystems {
			b.ReportMetric(res[n][sys].Peak, string(sys)+"_n"+itoa(n))
		}
	}
}

// BenchmarkAblationFastPathTips reproduces the §6.1 optimization deltas
// (paper: +40ms without the fast path, +33ms with certified-only tips).
func BenchmarkAblationFastPathTips(b *testing.B) {
	var r harness.AblationResult
	for i := 0; i < b.N; i++ {
		r = harness.Ablation(4, 200e3, 15*time.Second, uint64(i+1))
	}
	b.ReportMetric(float64(r.Full.Milliseconds()), "full_ms")
	b.ReportMetric(float64((r.NoFastPath - r.Full).Milliseconds()), "fastpath_delta_ms")
	b.ReportMetric(float64((r.CertifiedTips - r.Full).Milliseconds()), "tips_delta_ms")
}

// BenchmarkFigure7LeaderFailures reproduces Fig. 7's contrast under the
// rotating-leader double-timeout blip: VanillaHS@15k hangs over, while
// Autobahn@220k recovers seamlessly.
func BenchmarkFigure7LeaderFailures(b *testing.B) {
	var vhs, auto harness.BlipResult
	for i := 0; i < b.N; i++ {
		seed := uint64(i + 1)
		vhs = harness.RunBlip(harness.BlipConfig{
			System: harness.VanillaHS, Load: 15e3, Duration: 30 * time.Second, Seed: seed,
		})
		auto = harness.RunBlip(harness.BlipConfig{
			System: harness.Autobahn, Load: 220e3, Duration: 30 * time.Second, Seed: seed,
		})
	}
	b.ReportMetric(vhs.Hangover.Seconds(), "vanilla_hangover_s")
	b.ReportMetric(auto.Hangover.Seconds(), "autobahn_hangover_s")
	b.ReportMetric(auto.PeakLat.Seconds(), "autobahn_peak_s")
}

// BenchmarkFigure8Partition reproduces Fig. 8: a 20s half-half partition
// at 15k tx/s; Autobahn commits the backlog almost immediately after
// heal, VanillaHS's hangover is proportional to the blip.
func BenchmarkFigure8Partition(b *testing.B) {
	var auto, bull, vhs harness.PartitionResult
	for i := 0; i < b.N; i++ {
		seed := uint64(i + 1)
		auto = harness.RunPartition(harness.PartitionConfig{System: harness.Autobahn, Seed: seed})
		bull = harness.RunPartition(harness.PartitionConfig{System: harness.Bullshark, Seed: seed})
		vhs = harness.RunPartition(harness.PartitionConfig{System: harness.VanillaHS, Seed: seed})
	}
	b.ReportMetric(auto.Recovery.Seconds(), "autobahn_recovery_s")
	b.ReportMetric(bull.Recovery.Seconds(), "bullshark_recovery_s")
	b.ReportMetric(vhs.Recovery.Seconds(), "vanilla_recovery_s")
}

// --- micro-benchmarks of the substrate ---

func BenchmarkEd25519SignVerify(b *testing.B) {
	suite := crypto.NewEd25519Suite(4, 1)
	signer := suite.Signer(0)
	verifier := suite.Verifier()
	msg := []byte("autobahn-vote-signing-bytes-0123456789")
	sig := signer.Sign(msg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !verifier.Verify(0, msg, sig) {
			b.Fatal("verify failed")
		}
	}
}

func BenchmarkWireProposalRoundTrip(b *testing.B) {
	batch := types.NewBatch(1, 7, make([]types.Transaction, 64), 0)
	for i := range batch.Txs {
		batch.Txs[i] = make(types.Transaction, 512)
	}
	batch.Bytes = 64 * 512
	p := &types.Proposal{Lane: 1, Position: 9, Batch: batch, Sig: make([]byte, 64)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data, err := wire.Encode(p)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := wire.Decode(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLaneCarCycle(b *testing.B) {
	committee := types.NewCommittee(4)
	suite := crypto.NewNopSuite(4)
	states := make([]*lane.State, 4)
	for i := range states {
		states[i] = lane.NewState(lane.Config{
			Committee: committee, Self: types.NodeID(i),
			Signer: suite.Signer(types.NodeID(i)), Verifier: suite.Verifier(),
		})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batch := types.NewSyntheticBatch(0, uint64(i+1), 1000, 512_000, 0, 0)
		prop := states[0].AddBatch(batch)
		if prop == nil {
			b.Fatal("lane blocked")
		}
		for r := 1; r < 4; r++ {
			votes, err := states[r].OnProposal(prop)
			if err != nil {
				b.Fatal(err)
			}
			for _, v := range votes {
				if _, _, err := states[0].OnVote(v); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.ReportMetric(float64(states[0].Store().Len()), "stored")
}

func BenchmarkSimThroughput200k(b *testing.B) {
	var rec *metrics.Recorder
	for i := 0; i < b.N; i++ {
		c := harness.Build(harness.ClusterConfig{System: harness.Autobahn, N: 4, Seed: uint64(i + 1)})
		c.RunLoad(200e3, 0, 10*time.Second, 12*time.Second)
		rec = c.Recorder
	}
	b.ReportMetric(rec.Throughput(2*time.Second, 9*time.Second), "tx_per_s")
	b.ReportMetric(float64(rec.MeanLatency(2*time.Second, 9*time.Second).Milliseconds()), "lat_ms")
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
