package autobahn

import (
	"fmt"
	"log"
	"os"
	"testing"
	"time"

	"repro/internal/gateway"
	"repro/internal/types"
)

// TestReplicaGatewayEndToEnd runs the full client path over real sockets:
// a 4-replica TCP deployment with the gateway tier on replica 0, a
// gateway.Client submitting through it, and commit acknowledgments
// streaming back for every transaction.
func TestReplicaGatewayEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP e2e")
	}
	addrs := freeAddrs(t, 4)
	replicas := make([]*Replica, 4)
	for i := range replicas {
		o := Options{N: 4, MaxBatchDelay: 10 * time.Millisecond}
		if i == 0 {
			o.GatewayAddr = "127.0.0.1:0"
		}
		r, err := NewReplica(types.NodeID(i), addrs, o, log.New(os.Stderr, fmt.Sprintf("r%d ", i), 0))
		if err != nil {
			t.Fatal(err)
		}
		if err := r.Start(); err != nil {
			t.Fatal(err)
		}
		replicas[i] = r
	}
	defer func() {
		for _, r := range replicas {
			r.Stop()
		}
	}()

	cl, err := gateway.Dial(replicas[0].Gateway().Addr(), gateway.ClientOptions{ID: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// Fill the client window, then wait for every commit ack.
	const n = 50
	pending := make([]*gateway.Pending, 0, n)
	for i := 0; i < n; i++ {
		p, err := cl.Submit([]byte(fmt.Sprintf("gw-e2e-%04d", i)))
		for err == gateway.ErrWindowFull {
			time.Sleep(5 * time.Millisecond)
			p, err = cl.Submit([]byte(fmt.Sprintf("gw-e2e-%04d", i)))
		}
		if err != nil {
			t.Fatal(err)
		}
		pending = append(pending, p)
	}
	for _, p := range pending {
		if out := p.Wait(); !out.Committed {
			t.Fatalf("seq %d not committed: %+v", p.Seq(), out)
		}
	}
	st := replicas[0].Gateway().Stats()
	if st.Acked < n {
		t.Fatalf("acked %d < %d submissions", st.Acked, n)
	}
	if st.ChainDups != 0 {
		t.Fatalf("%d duplicate commits reached the chain", st.ChainDups)
	}
	// The tier's admission gauges read live replica state.
	if d := replicas[0].MempoolDepth(); d < 0 {
		t.Fatalf("mempool depth %d", d)
	}
}
