package autobahn

import (
	"fmt"
	"time"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/mempool"
	"repro/internal/metrics"
	"repro/internal/runtime"
	"repro/internal/sim"
	"repro/internal/types"
	"repro/internal/workload"
)

// SimCluster is a deterministic discrete-event Autobahn deployment over a
// modeled WAN (the paper's Table 1 topology by default). Virtual time
// makes minutes-long runs complete in milliseconds, bit-for-bit
// reproducible from the seed.
type SimCluster struct {
	Engine   *sim.Engine
	Recorder *metrics.Recorder
	nodes    []*core.Node
	ids      []types.NodeID
	journals []core.Journal
	snaps    []*core.MemSnapshots
	opts     Options
}

// SimOptions extends Options with simulation-specific knobs.
type SimOptions struct {
	Options
	// Topology overrides the WAN model (default: paper's intra-US GCP).
	Topology sim.Topology
	// Faults injects crashes, mutes and partitions.
	Faults *sim.FaultSchedule
	// OnCommit, if set, receives every committed batch at every replica.
	OnCommit func(Committed)
	// Horizon sizes the metrics time series (default 5 minutes).
	Horizon time.Duration
}

// NewSimCluster builds an n-replica simulated deployment.
func NewSimCluster(o SimOptions) *SimCluster {
	if o.Horizon == 0 {
		o.Horizon = 5 * time.Minute
	}
	topo := o.Topology
	if topo == nil {
		topo = sim.IntraUSTopology()
	}
	rec := metrics.NewRecorder(o.Horizon)
	rec.Quorum = o.committee().F() + 1
	suite := o.suite()
	eng := sim.NewEngine(sim.Config{
		Net:    sim.NewNetwork(sim.DefaultNetConfig(topo)),
		Faults: o.Faults,
		Seed:   o.seedOr(1),
	})
	if o.Faults != nil {
		if nb := len(o.Faults.Behaviors()); nb > o.committee().F() {
			panic(fmt.Sprintf("autobahn: %d Byzantine behaviors exceeds f=%d for n=%d", nb, o.committee().F(), o.N))
		}
	}
	c := &SimCluster{Engine: eng, Recorder: rec, opts: o.Options}
	sink := rec.Sink()
	if o.OnCommit != nil {
		inner := sink
		cb := o.OnCommit
		sink = runtime.CommitSinkFunc(func(node types.NodeID, now time.Duration, cm runtime.Committed) {
			inner.OnCommit(node, now, cm)
			cb(Committed{
				Replica: node, Lane: cm.Lane, Position: cm.Position,
				Slot: cm.Slot, Batch: cm.Batch, AppHash: cm.AppHash, At: now,
			})
		})
	}
	// Restart faults need per-node journals that outlive a protocol
	// teardown, plus a rebuild hook that re-reads them (or, with amnesia,
	// replaces them). Fault-free deployments skip journaling entirely, so
	// fixed-seed runs stay byte-identical.
	withJournals := o.Faults != nil && o.Faults.HasRestarts()
	if withJournals {
		c.journals = make([]core.Journal, o.N)
		for i := range c.journals {
			c.journals[i] = core.NewMemJournal()
		}
	}
	// Snapshot stores follow the journal lifecycle: retained across warm
	// restarts, replaced on amnesia.
	if o.SnapshotEvery > 0 {
		c.snaps = make([]*core.MemSnapshots, o.N)
		for i := range c.snaps {
			c.snaps[i] = &core.MemSnapshots{}
		}
	}
	build := func(id types.NodeID) *core.Node {
		cfg := o.nodeConfig(id, suite, sink)
		if withJournals {
			cfg.Journal = c.journals[id]
		}
		if c.snaps != nil {
			cfg.Snapshots = c.snaps[id]
		}
		return core.NewNode(cfg)
	}
	for i := 0; i < o.N; i++ {
		id := types.NodeID(i)
		nd := build(id)
		c.nodes = append(c.nodes, nd)
		c.ids = append(c.ids, id)
		// Byzantine behavior windows in the fault schedule wrap the node
		// with the adversary layer (protocol-level misbehavior; the engine
		// itself only models benign network faults).
		var proto runtime.Protocol = nd
		if o.Faults != nil {
			if bw, ok := o.Faults.BehaviorFor(id); ok {
				if withJournals {
					for _, r := range o.Faults.Restarts() {
						if r.Node == id {
							panic(fmt.Sprintf("autobahn: replica %s has both a Restart and a behavior", id))
						}
					}
				}
				w, err := adversary.WrapNode(nd, o.committee(), id, suite.Signer(id), bw.Behavior, bw.From, bw.To)
				if err != nil {
					panic(err)
				}
				proto = w
			}
		}
		eng.AddNode(proto)
	}
	if withJournals {
		eng.SetRebuild(func(id types.NodeID, amnesia bool) runtime.Protocol {
			if amnesia {
				c.journals[id] = core.NewMemJournal()
				if c.snaps != nil {
					c.snaps[id] = &core.MemSnapshots{}
				}
			}
			nd := build(id)
			c.nodes[id] = nd
			return nd
		})
	}
	return c
}

// Journal returns a replica's journal (nil unless the fault schedule
// contains restarts). Tests inspect it.
func (c *SimCluster) Journal(id types.NodeID) core.Journal {
	if c.journals == nil {
		return nil
	}
	return c.journals[id]
}

// SubmitLoad installs an open-loop workload of rate tx/s of txSize-byte
// transactions over [start, end), balanced across replicas.
func (c *SimCluster) SubmitLoad(rate float64, txSize int, start, end time.Duration) {
	workload.Install(c.Engine, c.ids, workload.Config{
		TotalRate: rate,
		TxSize:    txSize,
		Start:     start,
		End:       end,
		Batch: mempool.Config{
			MaxBatchTxs:   c.opts.MaxBatchTxs,
			MaxBatchBytes: c.opts.MaxBatchBytes,
			MaxBatchDelay: c.opts.MaxBatchDelay,
		},
	})
}

// Run advances virtual time to `until`.
func (c *SimCluster) Run(until time.Duration) { c.Engine.Run(until) }

// Node returns one replica (protocol inspection in tests and examples).
func (c *SimCluster) Node(id types.NodeID) *core.Node { return c.nodes[id] }

// Nodes returns the replica IDs.
func (c *SimCluster) Nodes() []types.NodeID { return c.ids }
