package autobahn_test

import (
	"sync/atomic"
	"testing"
	"time"

	autobahn "repro"
	"repro/internal/harness"
	"repro/internal/transport"
	"repro/internal/types"
)

// runTCPByzantineCell drives one 4-replica TCP loopback cell (replica 2
// running the named behavior, optional link faults) through the shared
// harness runner and asserts the safety oracle plus the honest-load
// commit floor — the same verdicts the CI fault matrix enforces.
func runTCPByzantineCell(t *testing.T, behavior string, rule *transport.LinkRule, dur time.Duration, rate float64) {
	t.Helper()
	cfg := harness.LiveCellConfig{
		Adversary: behavior, Seed: 7, Rate: rate, Duration: dur,
	}
	if rule != nil {
		cfg.Rule = *rule
	}
	res := harness.RunLiveTCPCell(cfg)
	if res.Err != nil {
		t.Fatalf("cell setup: %v", res.Err)
	}
	if res.Violation != "" {
		t.Fatalf("safety violation under %q: %s", behavior, res.Violation)
	}
	if res.MinCommitted < res.Floor {
		t.Fatalf("liveness under %q: per-replica committed %v < floor %d (submitted %d, honest %d, elapsed %v)",
			behavior, res.PerReplica, res.Floor, res.Submitted, res.SubmittedHonest, res.Elapsed)
	}
	t.Logf("submitted=%d min=%d floor=%d elapsed=%v", res.Submitted, res.MinCommitted, res.Floor, res.Elapsed)
}

// TestLiveClusterByzantine runs every shipped behavior on an in-process
// LiveCluster (channel mesh, real signatures, sharded honest replicas):
// all replicas — behind the observer, not just replica 0 — must keep
// committing an identical order with replica 2 hostile.
func TestLiveClusterByzantine(t *testing.T) {
	for _, behavior := range []string{"equivocate", "withhold-votes", "conflict-votes", "bogus-sync", "suppress-tips", "timeout-spam"} {
		t.Run(behavior, func(t *testing.T) {
			const n, txs = 4, 800
			lc, err := autobahn.NewLiveCluster(autobahn.Options{
				N: n, Seed: 9, MaxBatchDelay: 10 * time.Millisecond,
				Adversaries: map[types.NodeID]string{2: behavior},
			})
			if err != nil {
				t.Fatal(err)
			}
			ci := harness.NewCommitInterceptor()
			var committed [n]atomic.Uint64
			lc.SetCommitObserver(func(c autobahn.Committed) {
				ci.Record(c.Replica, c.Lane, c.Position, c.Batch.Digest(), c.AppHash)
				// Honest lanes only, to match the honest-submitted floor
				// (see harness.RunLiveTCPCell).
				if c.Lane == 2 {
					return
				}
				committed[c.Replica].Add(uint64(c.Batch.Count))
			})
			lc.Start()
			defer lc.Stop()
			tx := make([]byte, 64)
			honest := 0
			for k := 0; k < txs; k++ {
				to := types.NodeID(k % n)
				if err := lc.Submit(to, tx); err != nil {
					t.Fatal(err)
				}
				if to != 2 {
					honest++
				}
				time.Sleep(time.Millisecond)
			}
			// Floor on honest-submitted load only — see
			// harness.LiveCellResult.SubmittedHonest.
			floor := uint64(float64(honest) * 0.9)
			deadline := time.Now().Add(20 * time.Second)
			for time.Now().Before(deadline) {
				done := true
				for i := 0; i < n; i++ {
					if committed[i].Load() < floor {
						done = false
					}
				}
				if done {
					break
				}
				time.Sleep(20 * time.Millisecond)
			}
			if v := ci.Violation(); v != "" {
				t.Fatalf("safety violation under %q: %s", behavior, v)
			}
			for i := 0; i < n; i++ {
				if got := committed[i].Load(); got < floor {
					t.Errorf("replica %d committed %d < floor %d under %q", i, got, floor, behavior)
				}
			}
		})
	}
}

// TestTCPByzantineEquivocate: an equivocating lane owner over real
// sockets — every replica (fork receivers included) must keep committing
// the honest load and no two replicas may commit contradictory batches.
func TestTCPByzantineEquivocate(t *testing.T) {
	runTCPByzantineCell(t, "equivocate", nil, 6*time.Second, 1000)
}

// TestTCPByzantineSuppressTips: a tip-suppressing consensus leader over
// real sockets.
func TestTCPByzantineSuppressTips(t *testing.T) {
	runTCPByzantineCell(t, "suppress-tips", nil, time.Second, 600)
}

// TestTCPLossyLinks: an honest cluster over a dropping, duplicating,
// reordering network still commits (the seamlessness substrate).
func TestTCPLossyLinks(t *testing.T) {
	rule := transport.LinkRule{DropP: 0.05, DupP: 0.02, Delay: time.Millisecond, Jitter: 10 * time.Millisecond}
	runTCPByzantineCell(t, "", &rule, time.Second, 600)
}

// TestAdversaryBoundEnforced: more than f adversaries must be rejected
// at configuration time — quorum arguments assume ≤ f, and a scenario
// exceeding it would report protocol "violations" that are really
// misconfigurations.
func TestAdversaryBoundEnforced(t *testing.T) {
	_, err := autobahn.NewLiveCluster(autobahn.Options{
		N:           4,
		Adversaries: map[types.NodeID]string{1: "equivocate", 2: "equivocate"},
	})
	if err == nil {
		t.Fatal("2 adversaries at n=4 (f=1) accepted")
	}
}
