# Developer entry points; CI runs the same commands (.github/workflows).

GOMAXPROCS ?= 4

.PHONY: build test race vet fmt tidy-check check

build:
	go build ./...

test:
	go test ./...

race:
	GOMAXPROCS=$(GOMAXPROCS) go test -race ./...

# The protocol-invariant analyzer suite (internal/analysis, DESIGN.md
# §1.10): standalone first for fast feedback, then through go vet's
# -vettool protocol, which is what covers in-package test files and
# composes with the build cache.
vet:
	go vet ./...
	go run ./cmd/autobahn-vet ./...
	go build -o $(CURDIR)/bin/autobahn-vet ./cmd/autobahn-vet
	go vet -vettool=$(CURDIR)/bin/autobahn-vet ./...

fmt:
	gofmt -l -w .

tidy-check:
	go mod tidy -diff
	go mod verify

check: build vet test tidy-check
