package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Bufrelease checks that every pooled buffer acquired from
// wire.GetBuf/wire.GetFrame reaches a Release (or an ownership
// transfer) on every path out of the acquiring function. PR 3/4
// audited this by hand when pooling the hot paths; a leaked buffer is
// invisible in tests (the GC cleans up) but silently removes the
// pooling win under load, which is exactly when it matters.
//
// Accepted ways for an acquire to be resolved on a path:
//
//   - v.Release() on the buffer or any alias of it;
//   - defer v.Release() (covers every exit);
//   - ownership transfer: the *Buf/*Frame pointer itself passed to a
//     call, returned, sent on a channel, stored into a field, map,
//     slice element, or composite literal, or handed to a goroutine.
//
// Passing the payload (v.B, f.Data()) to a call is a read, not a
// transfer — the caller keeps ownership and still owes a Release.
// Deliberate abandonment to the GC (the delivered-message path in the
// transport; see wire.Frame's lifetime rules) is annotated with
// //lint:allow bufrelease.
var Bufrelease = &Analyzer{
	Name: "bufrelease",
	Doc:  "pooled wire buffers must be Released or ownership-transferred on all paths",
	Run:  runBufrelease,
}

const wirePkgPath = "repro/internal/wire"

func runBufrelease(pass *Pass) {
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFuncBuffers(pass, fd)
		}
	}
}

// isAcquire reports whether call is wire.GetBuf(...) or
// wire.GetFrame(...), including unqualified calls inside the wire
// package itself.
func isAcquire(pass *Pass, call *ast.CallExpr) bool {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.Ident:
		id = fun
	default:
		return false
	}
	obj, _ := pass.TypesInfo.Uses[id].(*types.Func)
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != wirePkgPath {
		return false
	}
	return obj.Name() == "GetBuf" || obj.Name() == "GetFrame"
}

func checkFuncBuffers(pass *Pass, fd *ast.FuncDecl) {
	// Collect acquires bound to a single variable: v := wire.GetBuf(n).
	// Acquires used directly as a call argument, return value, or
	// composite element are transfers at birth; a bare expression
	// statement discards the pointer and leaks immediately.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok && isAcquire(pass, call) {
				pass.Reportf(call.Pos(), "result of %s is discarded: the pooled buffer can never be Released", callName(call))
			}
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || !isAcquire(pass, call) || i >= len(n.Lhs) {
					continue
				}
				id, ok := n.Lhs[i].(*ast.Ident)
				if !ok {
					// Acquired straight into a field, slice, or map
					// element: ownership transferred at birth.
					continue
				}
				if id.Name == "_" {
					pass.Reportf(call.Pos(), "result of %s is discarded: the pooled buffer can never be Released", callName(call))
					continue
				}
				obj := pass.TypesInfo.Defs[id]
				if obj == nil {
					obj = pass.TypesInfo.Uses[id]
				}
				if obj == nil {
					continue
				}
				checkAcquire(pass, fd, n, call, obj)
			}
		}
		return true
	})
}

func callName(call *ast.CallExpr) string {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if x, ok := sel.X.(*ast.Ident); ok {
			return x.Name + "." + sel.Sel.Name
		}
		return sel.Sel.Name
	}
	if id, ok := call.Fun.(*ast.Ident); ok {
		return id.Name
	}
	return "acquire"
}

// checkAcquire runs a may-leak path walk for one acquire site.
func checkAcquire(pass *Pass, fd *ast.FuncDecl, acq *ast.AssignStmt, call *ast.CallExpr, obj types.Object) {
	tr := &bufTrack{pass: pass, objs: map[types.Object]bool{obj: true}}
	// A deferred release anywhere in the function covers all exits.
	deferred := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if ds, ok := n.(*ast.DeferStmt); ok && tr.resolvesExpr(ds.Call) {
			deferred = true
		}
		return true
	})
	if deferred {
		return
	}
	// Walk the statement lists enclosing the acquire, from the
	// statement after it outwards, asking: does a path exist to a
	// function exit on which the buffer is still live?
	path := enclosingStmtLists(fd.Body, acq)
	if path == nil {
		return
	}
	live := true
	var leakPos token.Pos
	for level := len(path) - 1; level >= 0 && live; level-- {
		lst := path[level]
		start := lst.index + 1
		live, leakPos = tr.flowStmts(lst.list.List[start:], live, leakPos)
		if level > 0 {
			// Re-entering an enclosing loop body does not re-acquire;
			// leaving a loop or branch continues the walk in the outer
			// list. Nothing extra to model at the seam.
			continue
		}
	}
	// Two ways to leak: still live when the walk falls off the end of
	// the function, or an early exit recorded while live (leakPos).
	if live || leakPos.IsValid() {
		note := "function end"
		if leakPos.IsValid() {
			note = "the exit at " + pass.Fset.Position(leakPos).String()
		}
		pass.Reportf(call.Pos(), "%s may reach %s without Release or ownership transfer of %q", callName(call), note, obj.Name())
	}
}

// stmtListRef is one level of the block nesting around the acquire.
type stmtListRef struct {
	list  *ast.BlockStmt
	index int // index of the child (or the acquire) within list
}

// enclosingStmtLists returns the chain of block statements from the
// function body down to the block directly containing target, with the
// index of the statement on the path at each level. Returns nil if the
// acquire is inside a construct the walker does not model (select,
// function literal); those sites use the allow directive.
func enclosingStmtLists(body *ast.BlockStmt, target ast.Stmt) []stmtListRef {
	var path []stmtListRef
	var find func(b *ast.BlockStmt) bool
	find = func(b *ast.BlockStmt) bool {
		for i, s := range b.List {
			if s == target {
				path = append(path, stmtListRef{b, i})
				return true
			}
			found := false
			ast.Inspect(s, func(n ast.Node) bool {
				if found {
					return false
				}
				if n == target {
					found = true
					return false
				}
				// Don't descend into nested function literals: their
				// bodies run at another time.
				if _, ok := n.(*ast.FuncLit); ok {
					return false
				}
				return true
			})
			if !found {
				continue
			}
			// Target is somewhere under s; recurse into s's blocks.
			blocks := childBlocks(s)
			for _, cb := range blocks {
				mark := len(path)
				path = append(path, stmtListRef{b, i})
				if find(cb) {
					return true
				}
				path = path[:mark]
			}
			return false
		}
		return false
	}
	if !find(body) {
		return nil
	}
	return path
}

// childBlocks lists the block statements directly owned by s.
func childBlocks(s ast.Stmt) []*ast.BlockStmt {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return []*ast.BlockStmt{s}
	case *ast.IfStmt:
		out := []*ast.BlockStmt{s.Body}
		if eb, ok := s.Else.(*ast.BlockStmt); ok {
			out = append(out, eb)
		} else if ei, ok := s.Else.(*ast.IfStmt); ok {
			out = append(out, childBlocks(ei)...)
		}
		return out
	case *ast.ForStmt:
		return []*ast.BlockStmt{s.Body}
	case *ast.RangeStmt:
		return []*ast.BlockStmt{s.Body}
	case *ast.SwitchStmt:
		var out []*ast.BlockStmt
		for _, c := range s.Body.List {
			cc := c.(*ast.CaseClause)
			out = append(out, &ast.BlockStmt{List: cc.Body})
		}
		return out
	case *ast.TypeSwitchStmt:
		var out []*ast.BlockStmt
		for _, c := range s.Body.List {
			cc := c.(*ast.CaseClause)
			out = append(out, &ast.BlockStmt{List: cc.Body})
		}
		return out
	case *ast.LabeledStmt:
		return childBlocks(s.Stmt)
	default:
		return nil
	}
}

// bufTrack carries the alias set for one acquire.
type bufTrack struct {
	pass *Pass
	objs map[types.Object]bool
}

// isRef reports whether e is a direct reference to the tracked pointer
// (bare identifier, optionally parenthesized or address-taken — not a
// field selection like v.B, which reads the payload without moving
// ownership).
func (tr *bufTrack) isRef(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident:
		return tr.objs[tr.pass.TypesInfo.Uses[e]]
	case *ast.ParenExpr:
		return tr.isRef(e.X)
	case *ast.UnaryExpr:
		return e.Op == token.AND && tr.isRef(e.X)
	}
	return false
}

// resolvesExpr reports whether e releases or transfers the buffer.
func (tr *bufTrack) resolvesExpr(e ast.Expr) bool {
	resolved := false
	ast.Inspect(e, func(n ast.Node) bool {
		if resolved {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			// v.Release() — the canonical resolution.
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Release" && tr.isRef(sel.X) {
				resolved = true
				return false
			}
			// f(v) — ownership transfer of the pointer itself.
			for _, arg := range n.Args {
				if tr.isRef(arg) {
					resolved = true
					return false
				}
			}
		case *ast.CompositeLit:
			for _, el := range n.Elts {
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					if tr.isRef(kv.Value) {
						resolved = true
						return false
					}
				} else if tr.isRef(el) {
					resolved = true
					return false
				}
			}
		case *ast.FuncLit:
			// A closure that mentions the buffer keeps it reachable;
			// if it releases or passes it, count that.
			inner := false
			ast.Inspect(n.Body, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && tr.objs[tr.pass.TypesInfo.Uses[id]] {
					inner = true
					return false
				}
				return true
			})
			if inner {
				resolved = true
			}
			return false
		}
		return true
	})
	return resolved
}

// resolvesStmt reports whether the (non-compound) statement releases or
// transfers the buffer, also updating the alias set for w := v.
func (tr *bufTrack) resolvesStmt(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.AssignStmt:
		for i, rhs := range s.Rhs {
			if tr.isRef(rhs) && i < len(s.Lhs) {
				switch lhs := s.Lhs[i].(type) {
				case *ast.Ident:
					// Alias: w := v. Ownership stays in the function.
					obj := tr.pass.TypesInfo.Defs[lhs]
					if obj == nil {
						obj = tr.pass.TypesInfo.Uses[lhs]
					}
					if obj != nil {
						tr.objs[obj] = true
					}
				default:
					// Stored into a field, slice, or map: transferred.
					return true
				}
			}
		}
		// Calls on the RHS may still transfer: buf.B, err = enc(buf) etc.
		for _, rhs := range s.Rhs {
			if !tr.isRef(rhs) && tr.resolvesExpr(rhs) {
				return true
			}
		}
		return false
	case *ast.ExprStmt:
		return tr.resolvesExpr(s.X)
	case *ast.SendStmt:
		return tr.isRef(s.Value) || tr.resolvesExpr(s.Value)
	case *ast.GoStmt:
		return tr.resolvesExpr(s.Call)
	case *ast.DeferStmt:
		return tr.resolvesExpr(s.Call)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			if tr.isRef(r) || tr.resolvesExpr(r) {
				return true
			}
		}
		return false
	default:
		return false
	}
}

// flowStmts walks a statement list with may-live state, returning
// whether the buffer may still be live at the end of the list and the
// position of the first leaking exit found.
func (tr *bufTrack) flowStmts(stmts []ast.Stmt, live bool, leakPos token.Pos) (bool, token.Pos) {
	for _, s := range stmts {
		if !live {
			return false, leakPos
		}
		live, leakPos = tr.flowStmt(s, live, leakPos)
	}
	return live, leakPos
}

func (tr *bufTrack) flowStmt(s ast.Stmt, live bool, leakPos token.Pos) (bool, token.Pos) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return tr.flowStmts(s.List, live, leakPos)
	case *ast.IfStmt:
		if s.Init != nil {
			live, leakPos = tr.flowStmt(s.Init, live, leakPos)
		}
		if tr.resolvesExpr(s.Cond) {
			return false, leakPos
		}
		tLive, tLeak := tr.flowStmts(s.Body.List, live, leakPos)
		eLive, eLeak := live, tLeak
		if s.Else != nil {
			eLive, eLeak = tr.flowStmt(s.Else, live, tLeak)
		}
		return tLive || eLive, firstValid(tLeak, eLeak)
	case *ast.ForStmt:
		bLive, bLeak := tr.flowStmts(s.Body.List, live, leakPos)
		// Zero-iteration path keeps the pre-loop state.
		return live || bLive, bLeak
	case *ast.RangeStmt:
		bLive, bLeak := tr.flowStmts(s.Body.List, live, leakPos)
		return live || bLive, bLeak
	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		var body *ast.BlockStmt
		hasDefault := false
		if sw, ok := s.(*ast.SwitchStmt); ok {
			body = sw.Body
		} else {
			body = s.(*ast.TypeSwitchStmt).Body
		}
		anyLive := false
		lp := leakPos
		for _, c := range body.List {
			cc := c.(*ast.CaseClause)
			if cc.List == nil {
				hasDefault = true
			}
			cLive, cLeak := tr.flowStmts(cc.Body, live, leakPos)
			anyLive = anyLive || cLive
			lp = firstValid(lp, cLeak)
		}
		if !hasDefault {
			anyLive = anyLive || live
		}
		return anyLive, lp
	case *ast.SelectStmt:
		anyLive := false
		lp := leakPos
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			cLive, cLeak := tr.flowStmts(cc.Body, live, leakPos)
			anyLive = anyLive || cLive
			lp = firstValid(lp, cLeak)
		}
		return anyLive, lp
	case *ast.ReturnStmt:
		if tr.resolvesStmt(s) {
			return false, leakPos
		}
		// Exiting while live: record the leaking return. The path
		// ends here, so downstream statements see a dead state.
		return false, firstValid(leakPos, s.Pos())
	case *ast.LabeledStmt:
		return tr.flowStmt(s.Stmt, live, leakPos)
	case *ast.BranchStmt:
		// break/continue/goto approximated as falling through; this
		// can only under-report (a skipped Release still counts), never
		// false-positive.
		return live, leakPos
	default:
		if tr.resolvesStmt(s) {
			return false, leakPos
		}
		return live, leakPos
	}
}

func firstValid(a, b token.Pos) token.Pos {
	if a.IsValid() {
		return a
	}
	return b
}
