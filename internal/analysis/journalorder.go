package analysis

import (
	"go/ast"
	"go/types"
)

// journaledPkgs are the packages that write the WAL: the node shell,
// the lane state machines, and the consensus engine.
var journaledPkgs = map[string]bool{
	"repro/internal/core":      true,
	"repro/internal/lane":      true,
	"repro/internal/consensus": true,
}

// Journalorder enforces PR 2's write-before-externalize rule: a
// message must hit the journal before it is sent or broadcast. If the
// send happens first and the replica crashes in between, it has
// externalized state (a vote, an ack, a commit notice) it no longer
// remembers after restart — the amnesia double-vote the recovery tests
// exist to prevent.
//
// The check is per function and per message: a Send/Broadcast whose
// argument is later journaled in the same function means the
// externalize happened before the record. Handlers that journal in one
// function and send from another are out of scope (order is then a
// protocol-level property the adversary harness covers).
var Journalorder = &Analyzer{
	Name: "journalorder",
	Doc:  "journal a message before sending it (write-before-externalize)",
	Run:  runJournalorder,
}

func runJournalorder(pass *Pass) {
	if !journaledPkgs[pass.Pkg.Path()] {
		return
	}
	pass.SkipTestFiles()
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkJournalOrder(pass, fd)
		}
	}
}

type callRec struct {
	call *ast.CallExpr
	args map[types.Object]bool
}

func checkJournalOrder(pass *Pass, fd *ast.FuncDecl) {
	var sends, journals []callRec
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		switch {
		case sel.Sel.Name == "Send" || sel.Sel.Name == "Broadcast":
			sends = append(sends, callRec{call, argObjs(pass, call)})
		case onJournal(pass, sel):
			journals = append(journals, callRec{call, argObjs(pass, call)})
		}
		return true
	})
	for _, s := range sends {
		for _, j := range journals {
			if j.call.Pos() <= s.call.Pos() {
				continue // journaled first (lexically): the good order
			}
			for obj := range s.args {
				if j.args[obj] {
					pass.Reportf(s.call.Pos(), "%q is sent before it is journaled (journal write at %s): journal before externalizing, or //lint:allow journalorder with a reason",
						obj.Name(), pass.Fset.Position(j.call.Pos()))
				}
			}
		}
	}
}

// onJournal reports whether the call selector is a method on something
// reached through a Journal-named field or variable (e.cfg.Journal.X,
// n.journal.X, ...).
func onJournal(pass *Pass, sel *ast.SelectorExpr) bool {
	switch x := sel.X.(type) {
	case *ast.SelectorExpr:
		return x.Sel.Name == "Journal" || x.Sel.Name == "journal"
	case *ast.Ident:
		return x.Name == "journal" || x.Name == "jrn" ||
			(pass.TypesInfo.Uses[x] != nil && isJournalType(pass.TypesInfo.Uses[x].Type()))
	}
	return false
}

// isJournalType reports whether t names a Journal interface or
// implementation.
func isJournalType(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Journal"
}

// argObjs collects the identifier objects appearing directly as call
// arguments (the journaled/sent message values).
func argObjs(pass *Pass, call *ast.CallExpr) map[types.Object]bool {
	out := map[types.Object]bool{}
	for _, arg := range call.Args {
		if id, ok := arg.(*ast.Ident); ok {
			if obj := pass.TypesInfo.Uses[id]; obj != nil {
				out[obj] = true
			}
		}
	}
	return out
}
