package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string // import path, e.g. "repro/internal/consensus"
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// A Loader parses and type-checks packages from source, resolving
// module-local import paths under a root directory and everything else
// through the standard library's source importer. It needs no
// pre-compiled export data and no network, which is what lets both the
// standalone autobahn-vet driver and the analysistest harness run on a
// bare toolchain image.
type Loader struct {
	// Fset is shared by every package the loader touches.
	Fset *token.FileSet
	// Root is the directory containing the module (or the testdata
	// src tree).
	Root string
	// Module is the module path mapped onto Root; imports equal to it
	// or below it resolve to subdirectories of Root.
	Module string
	// IncludeTests adds _test.go files that belong to the package
	// itself (package foo, not foo_test) to the loaded package.
	IncludeTests bool

	std  types.Importer
	pkgs map[string]*Package
}

// NewLoader returns a loader for the module rooted at root.
func NewLoader(root, module string) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		Fset:   fset,
		Root:   root,
		Module: module,
		std:    importer.ForCompiler(fset, "source", nil),
		pkgs:   map[string]*Package{},
	}
}

// dirFor maps an import path to a source directory, or "" if the path
// is not module-local.
func (l *Loader) dirFor(path string) string {
	if path == l.Module {
		return l.Root
	}
	if strings.HasPrefix(path, l.Module+"/") {
		return filepath.Join(l.Root, filepath.FromSlash(strings.TrimPrefix(path, l.Module+"/")))
	}
	return ""
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if dir := l.dirFor(path); dir != "" {
		pkg, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// Load parses and type-checks the module-local package with the given
// import path.
func (l *Loader) Load(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	dir := l.dirFor(path)
	if dir == "" {
		return nil, fmt.Errorf("load %s: not under module %s", path, l.Module)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names, testNames []string
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, "_") || strings.HasPrefix(name, ".") {
			continue
		}
		if strings.HasSuffix(name, "_test.go") {
			if l.IncludeTests {
				testNames = append(testNames, name)
			}
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	sort.Strings(testNames)
	var files []*ast.File
	pkgName := ""
	for _, name := range append(names, testNames...) {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		// An in-package test file shares the package clause; external
		// _test packages (package foo_test) are out of scope for the
		// invariant checks, which target the implementation.
		if strings.HasSuffix(name, "_test.go") && pkgName != "" && f.Name.Name != pkgName {
			continue
		}
		if pkgName == "" {
			pkgName = f.Name.Name
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("load %s: no Go files in %s", path, dir)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", path, err)
	}
	p := &Package{Path: path, Dir: dir, Fset: l.Fset, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = p
	return p, nil
}

// LoadAll walks the module root and loads every package directory,
// skipping testdata and hidden directories.
func (l *Loader) LoadAll() ([]*Package, error) {
	var paths []string
	err := filepath.WalkDir(l.Root, func(p string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if p != l.Root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(d.Name(), ".go") || strings.HasSuffix(d.Name(), "_test.go") {
			return nil
		}
		rel, err := filepath.Rel(l.Root, filepath.Dir(p))
		if err != nil {
			return err
		}
		ip := l.Module
		if rel != "." {
			ip = l.Module + "/" + filepath.ToSlash(rel)
		}
		paths = append(paths, ip)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	paths = dedup(paths)
	var out []*Package
	for _, ip := range paths {
		pkg, err := l.Load(ip)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

func dedup(s []string) []string {
	out := s[:0]
	for i, v := range s {
		if i == 0 || v != s[i-1] {
			out = append(out, v)
		}
	}
	return out
}
