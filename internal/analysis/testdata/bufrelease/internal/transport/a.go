package transport

import (
	"errors"

	"repro/internal/wire"
)

var errEmpty = errors.New("empty")

type frame struct{ buf *wire.Buf }

type sink struct{ ch chan *wire.Buf }

func deliver(b *wire.Buf) {}

// Leak on the early error exit: the happy path releases, the n == 0
// path returns with the buffer still live.
func encodeLeaky(n int) ([]byte, error) {
	buf := wire.GetBuf(n) // want `may reach .* without Release`
	if n == 0 {
		return nil, errEmpty
	}
	out := append([]byte(nil), buf.B...)
	buf.Release()
	return out, nil
}

// Leak at function end: never released, never transferred. Reading the
// payload (buf.B) is not a transfer.
func sumLeaky(n int) int {
	buf := wire.GetBuf(n) // want `may reach .* without Release`
	total := 0
	for _, b := range buf.B {
		total += int(b)
	}
	return total
}

// Discarding the acquire outright can never be released: flagged.
func discard(n int) {
	wire.GetBuf(n) // want `result of wire.GetBuf is discarded`
}

func discardBlank(n int) {
	_ = wire.GetBuf(n) // want `result of wire.GetBuf is discarded`
}

// Release on every path: ok.
func encodeOK(n int) ([]byte, error) {
	buf := wire.GetBuf(n)
	if n == 0 {
		buf.Release()
		return nil, errEmpty
	}
	out := append([]byte(nil), buf.B...)
	buf.Release()
	return out, nil
}

// defer covers every exit: ok.
func encodeDeferred(n int) ([]byte, error) {
	buf := wire.GetBuf(n)
	defer buf.Release()
	if n == 0 {
		return nil, errEmpty
	}
	return append([]byte(nil), buf.B...), nil
}

// Passing the pointer itself transfers ownership: ok.
func handOff(n int) {
	buf := wire.GetBuf(n)
	deliver(buf)
}

// Returning the pointer transfers ownership to the caller: ok.
func acquireFor(n int) *wire.Buf {
	buf := wire.GetBuf(n)
	return buf
}

// Storing into a field transfers ownership to the struct: ok.
func wrap(n int) *frame {
	f := &frame{}
	f.buf = wire.GetBuf(n)
	return f
}

// A channel send transfers ownership to the receiver: ok.
func enqueue(s *sink, n int) {
	buf := wire.GetBuf(n)
	s.ch <- buf
}

// An alias release resolves the original acquire: ok.
func aliased(n int) {
	buf := wire.GetBuf(n)
	b2 := buf
	b2.Release()
}

// Frames follow the same rules; the error path releases and delivery
// transfers: ok.
func ingest(n int, ok bool) {
	fr := wire.GetFrame(n)
	if !ok {
		fr.Release()
		return
	}
	deliverFrame(fr)
}

func deliverFrame(f *wire.Frame) {}

// Deliberate abandonment to the GC is annotated: ok.
func abandon(n int) []byte {
	fr := wire.GetFrame(n) //lint:allow bufrelease returned slice aliases the frame; the GC owns it from here
	return fr.Data()
}
