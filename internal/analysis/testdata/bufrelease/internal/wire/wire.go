// Package wire is a minimal mirror of the real pool API: the analyzer
// keys on the package path and the GetBuf/GetFrame function names.
package wire

type Buf struct{ B []byte }

func GetBuf(n int) *Buf { return &Buf{B: make([]byte, 0, n)} }

func (b *Buf) Release() {}

type Frame struct{ data []byte }

func GetFrame(n int) *Frame { return &Frame{data: make([]byte, n)} }

func (f *Frame) Data() []byte { return f.data }

func (f *Frame) Release() {}
