package consensus

type NodeID int

type Env interface {
	Send(to NodeID, msg any)
	SetTimer(d int64)
}

type engine struct {
	env     Env
	pending map[NodeID]int
}

// Raw map order decides send order: flagged with the send wording.
func (e *engine) retryAll() {
	for id, v := range e.pending { // want `message sends or timer registrations`
		e.env.Send(id, v)
	}
}

// Map order reaches a send transitively through a same-package call.
func (e *engine) retryVia() {
	for id, v := range e.pending { // want `message sends or timer registrations`
		e.sendOne(id, v)
	}
}

func (e *engine) sendOne(id NodeID, v int) {
	e.env.Send(id, v)
}

// Commutative accumulation is order-insensitive: ok.
func (e *engine) total() int {
	sum := 0
	for _, v := range e.pending {
		sum += v
	}
	return sum
}

// Rebuilding a map under the range key writes disjoint slots: ok.
func (e *engine) sizes(in map[NodeID][]int) map[NodeID]int {
	out := make(map[NodeID]int, len(in))
	for k, v := range in {
		out[k] = len(v)
	}
	return out
}

// Strict extremum over the unique range keys can never tie: ok.
func (e *engine) minKey() NodeID {
	best := NodeID(-1)
	for k := range e.pending {
		if best == -1 || k < best {
			best = k
		}
	}
	return best
}

// Existence checks returning constants give the same answer no matter
// which iteration fires: ok.
func (e *engine) hasPending() bool {
	for _, v := range e.pending {
		if v > 0 {
			return true
		}
	}
	return false
}

// delete(m, k) during iteration is order-insensitive: ok.
func (e *engine) clearNegative() {
	for k, v := range e.pending {
		if v < 0 {
			delete(e.pending, k)
		}
	}
}

// Last write in map order wins: flagged.
func (e *engine) anyValue() int {
	last := 0
	for _, v := range e.pending { // want `map iteration order`
		last = v
	}
	return last
}

// Collecting without sorting leaks map order into the result: flagged.
func (e *engine) keysUnsorted() []NodeID {
	var out []NodeID
	for k := range e.pending { // want `never sorted afterwards`
		out = append(out, k)
	}
	return out
}

// A value-derived key can collide, and collisions resolve in map
// order: flagged.
func (e *engine) invert(in map[NodeID]int) map[int]NodeID {
	out := map[int]NodeID{}
	for k, v := range in { // want `value-derived key`
		out[v] = k
	}
	return out
}

// A justified allow directive suppresses the finding.
func (e *engine) debugDump(log func(NodeID, int)) {
	for k, v := range e.pending { //lint:allow detrange debug output, order not observable by the protocol
		log(k, v)
	}
}
