package order

import "sort"

type NodeID int

type Pos int

type TipRef struct {
	Lane     NodeID
	Position Pos
}

type Range struct {
	Lane     NodeID
	From, To Pos
}

// catchupRangesReverted mirrors order.CatchupRanges with the PR 5
// determinism fix reverted: raw map iteration decides which tip wins
// best[lane], so two replicas with the same tip set can compute
// different catch-up plans.
func catchupRangesReverted(tips map[NodeID]TipRef, have map[NodeID]Pos) map[NodeID]Range {
	best := map[NodeID]Range{}
	for _, tip := range tips { // want `map iteration order`
		if have[tip.Lane] < tip.Position {
			best[tip.Lane] = Range{Lane: tip.Lane, From: have[tip.Lane], To: tip.Position}
		}
	}
	return best
}

// catchupRangesFixed is the shipped shape: collect keys, sort, then
// iterate in canonical order.
func catchupRangesFixed(tips map[NodeID]TipRef, have map[NodeID]Pos) []Range {
	lanes := make([]NodeID, 0, len(tips))
	for l := range tips {
		lanes = append(lanes, l)
	}
	sort.Slice(lanes, func(i, j int) bool { return lanes[i] < lanes[j] })
	out := make([]Range, 0, len(lanes))
	for _, l := range lanes {
		tip := tips[l]
		if have[l] < tip.Position {
			out = append(out, Range{Lane: l, From: have[l], To: tip.Position})
		}
	}
	return out
}

// localSortHelper checks that a package-local sorting helper counts as
// the sort in collect-then-sort.
func localSortHelper(tips map[NodeID]TipRef) []NodeID {
	lanes := make([]NodeID, 0, len(tips))
	for l := range tips {
		lanes = append(lanes, l)
	}
	sortLanes(lanes)
	return lanes
}

func sortLanes(lanes []NodeID) {
	sort.Slice(lanes, func(i, j int) bool { return lanes[i] < lanes[j] })
}
