// Package types is a minimal mirror of the real message types: the
// analyzer keys on the package path and the Batch/Proposal type names.
package types

type Digest [32]byte

type Batch struct {
	Payload []byte
	memo    *Digest
}

func (b *Batch) Clone() *Batch { return &Batch{Payload: b.Payload} }

type Proposal struct {
	Batches []*Batch
	memo    *Digest
}

func (p *Proposal) Clone() *Proposal { return &Proposal{Batches: p.Batches} }
