package mempool

import "repro/internal/types"

// Dereference copies duplicate the digest memo: flagged.
func derefCopy(b *types.Batch) {
	cp := *b // want `assignment of types.Batch copies its no-copy digest memo`
	_ = cp.Payload
}

// Value parameters copy at every call site: flagged.
func byValueParam(b types.Batch) { // want `declaring a value-typed field or parameter`
	_ = b.Payload
}

// Value-typed struct fields invite copies at every use: flagged.
type store struct {
	head types.Proposal // want `declaring a value-typed field or parameter`
}

// Ranging with a value variable copies each element: flagged.
func scan(batches []types.Batch) int {
	n := 0
	for _, b := range batches { // want `ranging with a value variable`
		n += len(b.Payload)
	}
	return n
}

// Passing a value argument copies at the call boundary: flagged.
func forward(b *types.Batch) {
	byValueParam(*b) // want `passing a value argument`
}

// Returning a value copies on the way out, and the value-typed result
// declaration is flagged in its own right: both reported.
func head(p *types.Proposal) types.Proposal { // want `declaring a value-typed field or parameter`
	return *p // want `returning a value`
}

// Channel sends copy into the channel buffer: flagged.
func publish(ch chan types.Batch, b *types.Batch) {
	ch <- *b // want `sending a value`
}

// Pointers and Clone() are the supported idioms: ok.
func clone(b *types.Batch) *types.Batch {
	return b.Clone()
}

func viaPointer(b *types.Batch) int {
	return len(b.Payload)
}

// Composite literals construct in place, not copy: ok.
func build(payload []byte) *types.Batch {
	b := types.Batch{Payload: payload}
	return &b
}
