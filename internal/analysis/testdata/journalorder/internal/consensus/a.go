package consensus

type NodeID int

type Vote struct {
	Slot  int
	Voter NodeID
}

type Journal struct{}

func (j *Journal) RecordVote(v *Vote) error { return nil }

type Env interface {
	Send(to NodeID, msg any)
	Broadcast(msg any)
}

type engine struct {
	env     Env
	Journal *Journal
}

// Sending before journaling externalizes state the replica forgets on
// crash: flagged.
func (e *engine) voteBad(to NodeID, v *Vote) {
	e.env.Send(to, v) // want `sent before it is journaled`
	e.Journal.RecordVote(v)
}

func (e *engine) broadcastBad(v *Vote) {
	e.env.Broadcast(v) // want `sent before it is journaled`
	e.Journal.RecordVote(v)
}

// Journal first, then externalize: ok.
func (e *engine) voteGood(to NodeID, v *Vote) {
	e.Journal.RecordVote(v)
	e.env.Send(to, v)
}

// Unrelated messages are not confused with the journaled one: ok.
func (e *engine) mixed(to NodeID, v, other *Vote) {
	e.env.Send(to, other)
	e.Journal.RecordVote(v)
	e.env.Send(to, v)
}

// The escape hatch (e.g. idempotent re-sends during recovery): ok.
func (e *engine) resend(to NodeID, v *Vote) {
	e.env.Send(to, v) //lint:allow journalorder idempotent re-send of an already-journaled vote
	e.Journal.RecordVote(v)
}
