package sim

import (
	"math/rand"
	"time"
)

// Wall-clock reads fork simulated and live behavior: flagged.
func elapsed() time.Duration {
	start := time.Now()      // want `time.Now in a sim-deterministic package`
	return time.Since(start) // want `time.Since in a sim-deterministic package`
}

// Ambient timers are wall-clock too: flagged.
func waitABit() {
	time.Sleep(time.Millisecond) // want `time.Sleep in a sim-deterministic package`
}

// The global RNG is process-shared state: flagged.
func jitter() int {
	return rand.Intn(10) // want `global math/rand.Intn`
}

// Seeded, locally-owned generators are the supported pattern: ok.
func seeded(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Type and constant references are not ambient state: ok.
func window(d time.Duration) time.Duration {
	var t time.Time
	_ = t
	return d + 5*time.Second
}

// Live-only edges annotate with a reason: ok.
func paceLive() {
	time.Sleep(time.Millisecond) //lint:allow noclock live pacing helper, not reachable from the simulator
}
