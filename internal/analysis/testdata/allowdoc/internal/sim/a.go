package sim

import "time"

// The directive below suppresses the noclock finding but carries no
// reason, which is itself reported (allowdoc): escape hatches must
// leave an audit trail.
func pace() {
	time.Sleep(time.Millisecond) //lint:allow noclock
}
