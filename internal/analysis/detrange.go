package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// simDeterministic lists the packages whose behavior must be a pure
// function of the event history: the protocol state machines and the
// simulator that replays them under a fixed seed, plus the harness and
// metrics layers whose aggregates feed the byte-stable sim fingerprint
// (harness.TestSimFingerprint) and the bench shape checks.
var simDeterministic = map[string]bool{
	"repro/internal/consensus": true,
	"repro/internal/order":     true,
	"repro/internal/fetch":     true,
	"repro/internal/lane":      true,
	"repro/internal/core":      true,
	"repro/internal/exec":      true,
	"repro/internal/sim":       true,
	"repro/internal/harness":   true,
	"repro/internal/metrics":   true,
	"repro/internal/chaos":     true,
}

// Detrange flags `range` over a map unless the loop body is provably
// iteration-order-insensitive. PR 5's adversarial schedules exposed
// this class three times (fetch retries, pending-vote retries, catch-up
// ranges): a map-order loop that feeds sends, timers, or returned
// aggregates makes fixed-seed simulation non-reproducible and replica
// behavior schedule-dependent.
//
// A map loop is accepted only when its body is one of the canonical
// order-insensitive shapes:
//
//   - key/value collection: appends to local slices that are sorted
//     later in the same function (collect-then-sort idiom);
//   - commutative accumulation: ++, --, +=, -=, |=, ^=, *=;
//   - map rebuild keyed by the range key (out[k] = f(v)): every
//     iteration writes its own key;
//   - strict extremum over the (unique) range keys:
//     if k < best { best, bestVal = k, v };
//   - existence checks that return only constants (return true);
//   - idempotent constant stores (x = true), delete(m, k), continue,
//     and if/for/block wrappers around the above with call-free
//     conditions.
//
// Anything else — map writes under value-derived keys, non-sorted
// appends, method calls, sends, non-constant returns — needs
// canonical-order iteration or a justified //lint:allow detrange
// directive.
var Detrange = &Analyzer{
	Name: "detrange",
	Doc:  "flags order-sensitive iteration over maps in sim-deterministic packages",
	Run:  runDetrange,
}

func runDetrange(pass *Pass) {
	if !simDeterministic[pass.Pkg.Path()] {
		return
	}
	pass.SkipTestFiles()
	sr := newSendReach(pass)
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok || !isMapRange(pass, rs) {
					return true
				}
				if ok, why := orderInsensitive(pass, fd, rs); !ok {
					kind := "deterministic aggregates (sim fingerprint)"
					if sr.reaches(fd) {
						kind = "message sends or timer registrations"
					}
					pass.Reportf(rs.Pos(), "map iteration order reaches %s: %s; collect keys and sort, or //lint:allow detrange with a reason", kind, why)
				}
				return true
			})
		}
	}
}

func isMapRange(pass *Pass, rs *ast.RangeStmt) bool {
	t := pass.TypesInfo.TypeOf(rs.X)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// loopCtx carries the state of one map-loop exemption check.
type loopCtx struct {
	pass *Pass
	// key is the range key variable's object (nil for `range m`
	// without a key or with _).
	key types.Object
	// collected maps local slices appended to inside the loop to the
	// position of the first append; each must be sorted after the loop.
	collected map[types.Object]token.Pos
}

func (lc *loopCtx) identObj(e ast.Expr) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	if obj := lc.pass.TypesInfo.Uses[id]; obj != nil {
		return obj
	}
	return lc.pass.TypesInfo.Defs[id]
}

// orderInsensitive reports whether the loop body is one of the accepted
// shapes; when it is not, why describes the first offending construct.
func orderInsensitive(pass *Pass, fd *ast.FuncDecl, rs *ast.RangeStmt) (bool, string) {
	lc := &loopCtx{pass: pass, collected: map[types.Object]token.Pos{}}
	if id, ok := rs.Key.(*ast.Ident); ok && id.Name != "_" {
		lc.key = lc.identObj(id)
	}
	ok, why := lc.stmts(rs.Body.List)
	if !ok {
		return false, why
	}
	for obj, pos := range lc.collected {
		if !sortedAfter(pass, fd, obj, rs.End()) {
			return false, "appends to " + obj.Name() + " which is never sorted afterwards (" + pass.Fset.Position(pos).String() + ")"
		}
	}
	return true, ""
}

func (lc *loopCtx) stmts(stmts []ast.Stmt) (bool, string) {
	for _, s := range stmts {
		if ok, why := lc.stmt(s); !ok {
			return false, why
		}
	}
	return true, ""
}

func (lc *loopCtx) stmt(s ast.Stmt) (bool, string) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return lc.stmts(s.List)
	case *ast.IfStmt:
		if lc.extremumByKey(s) {
			return true, ""
		}
		if s.Init != nil {
			if ok, why := lc.stmt(s.Init); !ok {
				return false, why
			}
		}
		if !callFree(lc.pass, s.Cond) {
			return false, "condition calls a function inside the loop"
		}
		if ok, why := lc.stmt(s.Body); !ok {
			return false, why
		}
		if s.Else != nil {
			return lc.stmt(s.Else)
		}
		return true, ""
	case *ast.ForStmt:
		if !callFree(lc.pass, s.Cond) {
			return false, "condition calls a function inside the loop"
		}
		return lc.stmt(s.Body)
	case *ast.RangeStmt:
		// A nested map range is judged on its own by the outer walk;
		// for the enclosing loop's purposes, judge the nested body
		// against the nested loop's own key.
		saved := lc.key
		if id, ok := s.Key.(*ast.Ident); ok && id.Name != "_" {
			lc.key = lc.identObj(id)
		} else {
			lc.key = nil
		}
		ok, why := lc.stmt(s.Body)
		lc.key = saved
		return ok, why
	case *ast.SwitchStmt:
		if !callFree(lc.pass, s.Tag) {
			return false, "switch tag calls a function inside the loop"
		}
		for _, c := range s.Body.List {
			if ok, why := lc.stmts(c.(*ast.CaseClause).Body); !ok {
				return false, why
			}
		}
		return true, ""
	case *ast.BranchStmt:
		if s.Tok == token.CONTINUE || s.Tok == token.BREAK {
			return true, ""
		}
		return false, "goto inside a map loop"
	case *ast.IncDecStmt:
		return true, ""
	case *ast.ReturnStmt:
		// Existence checks: returning only constants is the same
		// result no matter which iteration triggers it.
		for _, r := range s.Results {
			if !isConstExpr(lc.pass, r) && !isNilIdent(lc.pass, r) {
				return false, "returns a loop-dependent value (which iteration returns depends on map order)"
			}
		}
		return true, ""
	case *ast.AssignStmt:
		return lc.assign(s)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						if !callFree(lc.pass, v) {
							return false, "declaration calls a function inside the loop"
						}
					}
				}
			}
			return true, ""
		}
		return false, "unsupported declaration in a map loop"
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "delete" && lc.pass.TypesInfo.Uses[id] == types.Universe.Lookup("delete") {
				return true, ""
			}
		}
		return false, "calls or side effects in the loop body"
	default:
		return false, "order-sensitive statement in the loop body"
	}
}

// assign accepts commutative op-assignments, the collect idiom
// x = append(x, ...), map rebuilds keyed by the range key, idempotent
// constant stores, and fresh := bindings.
func (lc *loopCtx) assign(s *ast.AssignStmt) (bool, string) {
	switch s.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.OR_ASSIGN, token.XOR_ASSIGN, token.MUL_ASSIGN, token.AND_ASSIGN:
		for _, r := range s.Rhs {
			if !callFree(lc.pass, r) {
				return false, "accumulation operand calls a function"
			}
		}
		return true, ""
	case token.ASSIGN, token.DEFINE:
		for i, r := range s.Rhs {
			// x = append(x, ...): record the collected slice for the
			// sorted-later requirement.
			if call, ok := r.(*ast.CallExpr); ok && isBuiltin(lc.pass, call, "append") {
				obj := lc.identObj(s.Lhs[i])
				if obj == nil {
					return false, "append target is not a simple variable"
				}
				for _, arg := range call.Args[1:] {
					if !callFree(lc.pass, arg) {
						return false, "append argument calls a function"
					}
				}
				lc.collected[obj] = s.Pos()
				continue
			}
			if !callFree(lc.pass, r) {
				return false, "calls a function inside the loop"
			}
			// := introduces a fresh per-iteration binding — harmless.
			if s.Tok == token.DEFINE {
				continue
			}
			// out[k] = v keyed by the range key: every iteration
			// writes its own slot.
			if ix, ok := s.Lhs[i].(*ast.IndexExpr); ok {
				if lc.key != nil && lc.identObj(ix.Index) == lc.key {
					continue
				}
				return false, "writes a map/slice slot under a value-derived key (collisions resolve in map order)"
			}
			// Plain stores to variables that outlive the loop must be
			// idempotent (constants): overwriting with loop-dependent
			// values means last-in-map-order wins.
			if !isConstExpr(lc.pass, r) {
				return false, "stores a loop-dependent value (last write in map order wins)"
			}
		}
		return true, ""
	default:
		return false, "order-sensitive assignment in the loop body"
	}
}

// extremumByKey recognizes the strict min/max-over-keys idiom:
//
//	if best == 0 || k < best { best, bestVal = k, v }
//
// Map keys are unique, so a strict comparison against the range key
// can never tie and the winner is order-independent (companion
// assignments guarded by the same comparison ride along).
func (lc *loopCtx) extremumByKey(s *ast.IfStmt) bool {
	if lc.key == nil || s.Init != nil || s.Else != nil || !callFree(lc.pass, s.Cond) {
		return false
	}
	// The body may contain only plain assignments, one of which stores
	// the range key into a variable compared against it in the cond.
	var stored []types.Object
	for _, st := range s.Body.List {
		as, ok := st.(*ast.AssignStmt)
		if !ok || (as.Tok != token.ASSIGN && as.Tok != token.DEFINE) {
			return false
		}
		for i, r := range as.Rhs {
			if !callFree(lc.pass, r) {
				return false
			}
			if lc.identObj(r) == lc.key {
				// best = k: remember which variable holds the extremum.
				if tgt := lc.assignTarget(as.Lhs[i]); tgt != nil {
					stored = append(stored, tgt)
				}
			}
		}
	}
	if len(stored) == 0 {
		return false
	}
	// The condition must strictly compare the range key with a stored
	// variable (k < best, best > k, ...).
	strict := false
	ast.Inspect(s.Cond, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || (be.Op != token.LSS && be.Op != token.GTR) {
			return true
		}
		x, y := lc.extremumOperand(be.X), lc.extremumOperand(be.Y)
		for _, tgt := range stored {
			if (x == lc.key && y == tgt) || (x == tgt && y == lc.key) {
				strict = true
				return false
			}
		}
		return true
	})
	return strict
}

// assignTarget resolves an extremum store target: a simple variable or
// a field selection (pv.votedPos = pos).
func (lc *loopCtx) assignTarget(e ast.Expr) types.Object {
	switch e := e.(type) {
	case *ast.Ident:
		return lc.identObj(e)
	case *ast.SelectorExpr:
		if sel := lc.pass.TypesInfo.Selections[e]; sel != nil {
			return sel.Obj()
		}
	}
	return nil
}

func (lc *loopCtx) extremumOperand(e ast.Expr) types.Object {
	return lc.assignTarget(e)
}

func isBuiltin(pass *Pass, call *ast.CallExpr, name string) bool {
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == name && pass.TypesInfo.Uses[id] == types.Universe.Lookup(name)
}

func isConstExpr(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && tv.Value != nil
}

func isNilIdent(pass *Pass, e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && pass.TypesInfo.Uses[id] == types.Universe.Lookup("nil")
}

// callFree reports whether e contains no function calls other than the
// pure builtins len/cap and type conversions.
func callFree(pass *Pass, e ast.Expr) bool {
	if e == nil {
		return true
	}
	free := true
	ast.Inspect(e, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := call.Fun.(*ast.Ident); ok {
			switch pass.TypesInfo.Uses[id] {
			case types.Universe.Lookup("len"), types.Universe.Lookup("cap"):
				return true
			}
		}
		if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
			return true
		}
		free = false
		return false
	})
	return free
}

// sortedAfter reports whether obj is passed to a sorting call (the
// sort or slices packages, or a local helper whose name contains
// "sort") lexically after pos within the function.
func sortedAfter(pass *Pass, fd *ast.FuncDecl, obj types.Object, pos token.Pos) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos {
			return true
		}
		if !isSortCall(pass, call) {
			return true
		}
		for _, arg := range call.Args {
			mentioned := false
			ast.Inspect(arg, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
					mentioned = true
					return false
				}
				return true
			})
			if mentioned {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

func isSortCall(pass *Pass, call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		if pkgID, ok := fun.X.(*ast.Ident); ok {
			if pn, ok := pass.TypesInfo.Uses[pkgID].(*types.PkgName); ok {
				p := pn.Imported().Path()
				return p == "sort" || p == "slices"
			}
		}
		return strings.Contains(strings.ToLower(fun.Sel.Name), "sort")
	case *ast.Ident:
		return strings.Contains(strings.ToLower(fun.Name), "sort")
	}
	return false
}
