package analysis

import (
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// The golden-file convention mirrors x/tools' analysistest: a comment
//
//	// want `regex` `regex` ...
//
// on an offending line declares the diagnostics the analyzer must
// report there (one regex per expected diagnostic, matched against the
// message). Lines without a want comment must produce no diagnostics.
var (
	wantRe  = regexp.MustCompile("//\\s*want\\s+(.*)")
	quoteRe = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")
)

type wantKey struct {
	file string
	line int
}

// testAnalyzer loads each package from testdata/<dir> (module path
// "repro"), runs the single analyzer, and compares its diagnostics
// against the want comments.
func testAnalyzer(t *testing.T, a *Analyzer, dir string, pkgPaths ...string) {
	t.Helper()
	loader := NewLoader(filepath.Join("testdata", dir), "repro")
	for _, ip := range pkgPaths {
		pkg, err := loader.Load(ip)
		if err != nil {
			t.Fatalf("load %s: %v", ip, err)
		}

		wants := map[wantKey][]*regexp.Regexp{}
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantRe.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					k := wantKey{pos.Filename, pos.Line}
					for _, q := range quoteRe.FindAllStringSubmatch(m[1], -1) {
						pat := q[1]
						if pat == "" {
							pat = q[2]
						}
						re, err := regexp.Compile(pat)
						if err != nil {
							t.Fatalf("%s: bad want pattern %q: %v", pos, pat, err)
						}
						wants[k] = append(wants[k], re)
					}
					if len(wants[k]) == 0 {
						t.Fatalf("%s: want comment with no pattern", pos)
					}
				}
			}
		}

		for _, d := range Run(pkg, []*Analyzer{a}) {
			k := wantKey{d.Pos.Filename, d.Pos.Line}
			matched := false
			for i, re := range wants[k] {
				if re.MatchString(d.Message) {
					wants[k] = append(wants[k][:i], wants[k][i+1:]...)
					matched = true
					break
				}
			}
			if !matched {
				t.Errorf("%s: unexpected diagnostic: %s [%s]", d.Pos, d.Message, d.Analyzer)
			}
		}
		for k, res := range wants {
			for _, re := range res {
				t.Errorf("%s:%d: no diagnostic matching %q", k.file, k.line, re)
			}
		}
	}
}

func TestDetrange(t *testing.T) {
	testAnalyzer(t, Detrange, "detrange", "repro/internal/order", "repro/internal/consensus")
}

func TestNoclock(t *testing.T) {
	testAnalyzer(t, Noclock, "noclock", "repro/internal/sim")
}

func TestBufrelease(t *testing.T) {
	testAnalyzer(t, Bufrelease, "bufrelease", "repro/internal/transport")
}

func TestNocopydigest(t *testing.T) {
	testAnalyzer(t, Nocopydigest, "nocopydigest", "repro/internal/mempool")
}

func TestJournalorder(t *testing.T) {
	testAnalyzer(t, Journalorder, "journalorder", "repro/internal/consensus")
}

// TestAllowDirectiveNeedsReason: a bare //lint:allow suppresses its
// finding but is itself reported by the allowdoc pseudo-analyzer.
func TestAllowDirectiveNeedsReason(t *testing.T) {
	loader := NewLoader(filepath.Join("testdata", "allowdoc"), "repro")
	pkg, err := loader.Load("repro/internal/sim")
	if err != nil {
		t.Fatal(err)
	}
	diags := Run(pkg, []*Analyzer{Noclock})
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want exactly 1 (the allowdoc finding): %v", len(diags), diags)
	}
	d := diags[0]
	if d.Analyzer != "allowdoc" {
		t.Errorf("diagnostic analyzer = %q, want allowdoc", d.Analyzer)
	}
	if !strings.Contains(d.Message, "needs a reason") {
		t.Errorf("diagnostic message = %q, want a needs-a-reason report", d.Message)
	}
}

// TestVetCleanTree runs the full suite over the real repository and
// requires it to be clean: every finding in the tree has been fixed or
// annotated with a justified //lint:allow (ISSUE 7 satellite 1). New
// violations fail this test before they fail CI's vet step.
func TestVetCleanTree(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole repository")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	loader := NewLoader(root, "repro")
	pkgs, err := loader.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded only %d packages from %s; loader lost the tree?", len(pkgs), root)
	}
	for _, pkg := range pkgs {
		for _, d := range Run(pkg, All()) {
			t.Errorf("%s", d)
		}
	}
}

// TestAnalyzerMetadata keeps the suite well-formed: unique names (the
// //lint:allow directive keys on them) and documented invariants.
func TestAnalyzerMetadata(t *testing.T) {
	if len(All()) < 5 {
		t.Fatalf("suite has %d analyzers, want at least 5", len(All()))
	}
	seen := map[string]bool{}
	for _, a := range All() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v missing name, doc, or run", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
		if ok, _ := regexp.MatchString(`^[a-z]+$`, a.Name); !ok {
			t.Errorf("analyzer name %q is not all-lowercase (the allow directive grammar requires it)", a.Name)
		}
	}
}
