package analysis

import (
	"go/ast"
	"go/types"
)

// wallClock lists the time package's ambient-time entry points. The
// sim-deterministic packages receive time exclusively through injected
// clocks (runtime.Context.Now, sim virtual time), so any of these in
// protocol code silently forks simulated and live behavior.
var wallClock = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"After":     true,
	"Tick":      true,
	"Sleep":     true,
	"NewTimer":  true,
	"NewTicker": true,
	"AfterFunc": true,
}

// randConstructors are the math/rand entry points that build a
// seeded, locally-owned generator; everything else in the package
// reads process-global state and is banned.
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true,
	"NewChaCha8": true,
}

// Noclock bans wall-clock reads, ambient timers, and the global RNG in
// sim-deterministic packages. The deterministic simulator replays a
// fixed-seed schedule; one time.Now() or rand.Intn() in a shared code
// path and the byte-stable fingerprint (harness.TestSimFingerprint)
// only holds on the machines where the scheduler cooperates. Live-only
// edges (wall-clock pacing in harness live cells) annotate with
// //lint:allow noclock and a reason.
var Noclock = &Analyzer{
	Name: "noclock",
	Doc:  "bans time.Now/timers and global math/rand in sim-deterministic packages",
	Run:  runNoclock,
}

func runNoclock(pass *Pass) {
	if !simDeterministic[pass.Pkg.Path()] {
		return
	}
	pass.SkipTestFiles()
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkgID, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := pass.TypesInfo.Uses[pkgID].(*types.PkgName)
			if !ok {
				return true
			}
			// Referring to a package-level *type* (rand.Rand in a
			// declaration, time.Duration in a conversion) is fine; only
			// ambient-state entry points are banned.
			if _, isType := pass.TypesInfo.Uses[sel.Sel].(*types.TypeName); isType {
				return true
			}
			switch pn.Imported().Path() {
			case "time":
				if wallClock[sel.Sel.Name] {
					pass.Reportf(sel.Pos(), "time.%s in a sim-deterministic package: use the injected clock (runtime.Context / sim time), or //lint:allow noclock with a reason", sel.Sel.Name)
				}
			case "math/rand", "math/rand/v2":
				if !randConstructors[sel.Sel.Name] {
					pass.Reportf(sel.Pos(), "global math/rand.%s in a sim-deterministic package: use a seeded *rand.Rand owned by the component, or //lint:allow noclock with a reason", sel.Sel.Name)
				}
			}
			return true
		})
	}
}
