// Package analysis is autobahn-vet: a suite of protocol-invariant
// static checks for this repository, with a miniature driver framework
// mirroring the shape of golang.org/x/tools/go/analysis (which is not
// vendored here; the toolchain image carries no module proxy, so the
// framework is reimplemented on the standard library's go/ast and
// go/types).
//
// Each analyzer machine-checks a convention that an earlier PR learned
// the hard way (see DESIGN.md §1.10):
//
//   - detrange:     no map-order iteration where order reaches sends,
//     timers, or deterministic aggregates (PR 5's
//     nondeterminism class).
//   - noclock:      no wall clock / global RNG in sim-deterministic
//     packages (injected clocks and seeded RNGs only).
//   - bufrelease:   every wire.GetBuf/GetFrame acquire reaches Release
//     or an ownership transfer on all paths (PR 3/4's
//     hand-audited leak class).
//   - nocopydigest: types.Batch/types.Proposal must not be copied by
//     value (their digest memo is a no-copy atomic);
//     Clone() instead.
//   - journalorder: journal the message before externalizing it
//     (PR 2's write-before-externalize rule).
//
// A finding can be suppressed — with justification — by an allowlist
// directive comment on the offending line or the line above it:
//
//	//lint:allow <analyzer> <reason>
//
// Directives without a reason are themselves reported: the escape
// hatch must leave an audit trail.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// An Analyzer describes one invariant check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:allow directives.
	Name string
	// Doc is a one-paragraph description of the invariant.
	Doc string
	// Run performs the check, reporting findings via pass.Reportf.
	Run func(*Pass)
}

// A Pass provides one analyzer with one type-checked package and
// collects its diagnostics.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags  []Diagnostic
	allows allowIndex
}

// A Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Pos, d.Message, d.Analyzer)
}

// Reportf records a finding at pos unless an allowlist directive
// covers it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.allows.covers(p.Analyzer.Name, position) {
		return
	}
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      position,
		Message:  fmt.Sprintf(format, args...),
	})
}

// SkipTestFiles strips _test.go files from the pass. Determinism
// analyzers call it: tests legitimately busy-wait on the wall clock
// and iterate maps in assertion order.
func (p *Pass) SkipTestFiles() {
	kept := p.Files[:0:0]
	for _, f := range p.Files {
		if !strings.HasSuffix(p.Fset.Position(f.FileStart).Filename, "_test.go") {
			kept = append(kept, f)
		}
	}
	p.Files = kept
}

// --- allowlist directives ---

var allowRe = regexp.MustCompile(`^//\s*lint:allow\s+([a-z]+)\s*(.*)$`)

// allowIndex maps filename -> line -> analyzer names allowed there.
type allowIndex map[string]map[int][]string

func (ai allowIndex) covers(name string, pos token.Position) bool {
	for _, n := range ai[pos.Filename][pos.Line] {
		if n == name {
			return true
		}
	}
	return false
}

// indexAllows scans comments for //lint:allow directives. A directive
// covers its own source line and the line below it (so it works both
// as a trailing comment and as a standalone comment above the
// offending statement). Directives with no stated reason are reported
// as findings of the "allowdoc" pseudo-analyzer.
func indexAllows(fset *token.FileSet, files []*ast.File) (allowIndex, []Diagnostic) {
	idx := make(allowIndex)
	var bare []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := allowRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				lines := idx[pos.Filename]
				if lines == nil {
					lines = make(map[int][]string)
					idx[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], m[1])
				lines[pos.Line+1] = append(lines[pos.Line+1], m[1])
				if strings.TrimSpace(m[2]) == "" {
					bare = append(bare, Diagnostic{
						Analyzer: "allowdoc",
						Pos:      pos,
						Message:  fmt.Sprintf("lint:allow %s directive needs a reason", m[1]),
					})
				}
			}
		}
	}
	return idx, bare
}

// Run applies the analyzers to pkg and returns their findings sorted
// by position.
func Run(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	allows, diags := indexAllows(pkg.Fset, pkg.Files)
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			allows:    allows,
		}
		a.Run(pass)
		diags = append(diags, pass.diags...)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags
}
