package analysis

import (
	"go/ast"
	"go/types"
)

const typesPkgPath = "repro/internal/types"

// noCopyTypes are the digest-memoized message types: both embed an
// atomic.Pointer[Digest] memo, so a by-value copy silently duplicates
// the memo cell — the copy and the original stop agreeing on whether a
// digest has been computed, and a tampered copy can inherit a stale
// digest that no longer matches its contents (the exact bug class the
// PR 5 tamper tests exercise). Clone() is the supported way to derive
// a variant: shallow payload sharing, fresh memo.
var noCopyTypes = map[string]bool{
	"Batch":    true,
	"Proposal": true,
}

// Nocopydigest forbids by-value copies of types.Batch and
// types.Proposal: assignments, dereferences, value arguments, value
// returns, range values, channel sends, and value-typed declarations
// (parameters, struct fields) all copy the no-copy digest memo.
var Nocopydigest = &Analyzer{
	Name: "nocopydigest",
	Doc:  "types.Batch/types.Proposal must be handled by pointer (Clone(), not copy)",
	Run:  runNocopydigest,
}

func isNoCopyValue(t types.Type) (string, bool) {
	named, ok := t.(*types.Named)
	if !ok {
		return "", false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != typesPkgPath || !noCopyTypes[obj.Name()] {
		return "", false
	}
	return obj.Name(), true
}

func runNocopydigest(pass *Pass) {
	// copiesValue reports a copy when e is a value of a no-copy type
	// arriving from an existing value (anything but a composite
	// literal, which constructs in place).
	copiesValue := func(e ast.Expr) (string, bool) {
		if e == nil {
			return "", false
		}
		t := pass.TypesInfo.TypeOf(e)
		if t == nil {
			return "", false
		}
		name, ok := isNoCopyValue(t)
		if !ok {
			return "", false
		}
		if _, lit := e.(*ast.CompositeLit); lit {
			return "", false // in-place construction
		}
		return name, true
	}

	report := func(pos ast.Node, name, how string) {
		pass.Reportf(pos.Pos(), "%s of types.%s copies its no-copy digest memo; use a *types.%s (Clone() for variants)", how, name, name)
	}

	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, rhs := range n.Rhs {
					if name, ok := copiesValue(rhs); ok {
						report(rhs, name, "assignment")
					}
				}
			case *ast.CallExpr:
				// Conversions like types.Batch(x) don't arise; any
				// argument of bare value type is a copy at the call
				// boundary.
				if tv, ok := pass.TypesInfo.Types[n.Fun]; ok && tv.IsType() {
					return true
				}
				for _, arg := range n.Args {
					if name, ok := copiesValue(arg); ok {
						report(arg, name, "passing a value argument")
					}
				}
			case *ast.ReturnStmt:
				for _, r := range n.Results {
					if name, ok := copiesValue(r); ok {
						report(r, name, "returning a value")
					}
				}
			case *ast.RangeStmt:
				if n.Value != nil {
					if t := pass.TypesInfo.TypeOf(n.Value); t != nil {
						if name, ok := isNoCopyValue(t); ok {
							report(n.Value, name, "ranging with a value variable")
						}
					}
				}
			case *ast.SendStmt:
				if name, ok := copiesValue(n.Value); ok {
					report(n.Value, name, "sending a value")
				}
			case *ast.CompositeLit:
				for _, el := range n.Elts {
					e := el
					if kv, ok := el.(*ast.KeyValueExpr); ok {
						e = kv.Value
					}
					if name, ok := copiesValue(e); ok {
						report(e, name, "embedding a value in a composite literal")
					}
				}
			case *ast.Field:
				// Value-typed parameters, results, and struct fields
				// invite copies at every use site.
				if t := pass.TypesInfo.TypeOf(n.Type); t != nil {
					if name, ok := isNoCopyValue(t); ok {
						report(n.Type, name, "declaring a value-typed field or parameter")
					}
				}
			case *ast.ValueSpec:
				if n.Type != nil {
					if t := pass.TypesInfo.TypeOf(n.Type); t != nil {
						if name, ok := isNoCopyValue(t); ok {
							report(n.Type, name, "declaring a value-typed variable")
						}
					}
				}
				for _, v := range n.Values {
					if name, ok := copiesValue(v); ok {
						report(v, name, "assignment")
					}
				}
			}
			return true
		})
	}
}
