package analysis

// All returns the autobahn-vet analyzer suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		Detrange,
		Noclock,
		Bufrelease,
		Nocopydigest,
		Journalorder,
	}
}
