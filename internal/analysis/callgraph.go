package analysis

import (
	"go/ast"
	"go/types"
)

// emitNames are the method names through which protocol code
// externalizes state: message sends, broadcasts, and timer
// registrations (a timer's firing order is part of the simulated event
// schedule, so registering one is as order-sensitive as a send).
var emitNames = map[string]bool{
	"Send":      true,
	"Broadcast": true,
	"SetTimer":  true,
}

// sendReach computes, per function declaration in the package, whether
// the function transitively (through same-package calls) emits sends or
// timer registrations. fetch-style packages that hand emission requests
// back to the caller as values are covered too: constructing a
// composite literal of a type named "Emit" counts as emitting.
//
// Function literals are attributed to their enclosing declaration.
type sendReach struct {
	emits  map[*types.Func]bool
	byDecl map[*ast.FuncDecl]*types.Func
}

func newSendReach(pass *Pass) *sendReach {
	sr := &sendReach{
		emits:  map[*types.Func]bool{},
		byDecl: map[*ast.FuncDecl]*types.Func{},
	}
	// calls[f] = same-package functions f calls directly.
	calls := map[*types.Func][]*types.Func{}
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if obj == nil {
				continue
			}
			sr.byDecl[fd] = obj
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					switch fun := n.Fun.(type) {
					case *ast.SelectorExpr:
						if emitNames[fun.Sel.Name] {
							sr.emits[obj] = true
						}
						if callee := calleeOf(pass, fun.Sel); callee != nil {
							calls[obj] = append(calls[obj], callee)
						}
					case *ast.Ident:
						if callee := calleeOf(pass, fun); callee != nil {
							calls[obj] = append(calls[obj], callee)
						}
					}
				case *ast.CompositeLit:
					if named, ok := pass.TypesInfo.TypeOf(n).(*types.Named); ok && named.Obj().Name() == "Emit" {
						sr.emits[obj] = true
					}
				}
				return true
			})
		}
	}
	// Propagate emission through the same-package call graph to a
	// fixpoint.
	for changed := true; changed; {
		changed = false
		for caller, callees := range calls {
			if sr.emits[caller] {
				continue
			}
			for _, callee := range callees {
				if sr.emits[callee] {
					sr.emits[caller] = true
					changed = true
					break
				}
			}
		}
	}
	return sr
}

// calleeOf resolves a call target identifier to a function declared in
// the package under analysis, or nil.
func calleeOf(pass *Pass, id *ast.Ident) *types.Func {
	obj, _ := pass.TypesInfo.Uses[id].(*types.Func)
	if obj == nil || obj.Pkg() != pass.Pkg {
		return nil
	}
	return obj
}

// reaches reports whether the declaration transitively emits sends or
// timer registrations.
func (sr *sendReach) reaches(fd *ast.FuncDecl) bool {
	obj := sr.byDecl[fd]
	return obj != nil && sr.emits[obj]
}
