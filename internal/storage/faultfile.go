// Storage fault injection: a File wrapper that turns scheduled
// operations into the failures sick disks actually produce — write
// errors, short writes, failed fsyncs, and the crash point every WAL
// invariant ultimately hinges on ("die after append, before sync").
// The schedule is seeded and deterministic, so a failing fault test
// replays exactly.
package storage

import (
	"errors"
	"io"
	"math/rand/v2"
	"os"
	"sync"
)

// ErrInjected marks a fault-plan-scheduled failure (write or sync).
var ErrInjected = errors.New("storage: injected fault")

// ErrCrashed marks operations attempted after the plan's crash point:
// the process notionally died and this file handle is gone.
var ErrCrashed = errors.New("storage: crashed (fault plan crash point reached)")

// FaultPlan schedules faults for one file's operations. Counters are
// 1-based and count operations on the wrapped file (post-bufio: one
// Write per flushed buffer, not per record). The zero plan injects
// nothing.
type FaultPlan struct {
	// Seed drives the probabilistic faults (ShortWriteP).
	Seed uint64
	// FailWriteAfter > 0 fails the Nth write and every later one with
	// ErrInjected (a sick disk does not heal).
	FailWriteAfter uint64
	// ShortWriteP is the probability that a write persists only a
	// prefix and returns io.ErrShortWrite.
	ShortWriteP float64
	// FailSyncAfter > 0 fails the Nth Sync and every later one with
	// ErrInjected, without syncing.
	FailSyncAfter uint64
	// CrashAfterWrites > 0 simulates a crash immediately after the Nth
	// write completes: the data reached the kernel but was never
	// fsynced, and every subsequent operation returns ErrCrashed.
	CrashAfterWrites uint64
}

// FaultFile wraps a File with a FaultPlan. Safe for the store's
// single-writer-under-lock discipline plus concurrent Stats-style
// reads; it serializes all operations on its own mutex.
type FaultFile struct {
	mu      sync.Mutex
	f       File
	plan    FaultPlan
	rng     *rand.Rand
	writes  uint64
	syncs   uint64
	crashed bool
}

// NewFaultFile wraps f with the plan's fault schedule.
func NewFaultFile(f File, plan *FaultPlan) *FaultFile {
	return &FaultFile{
		f:    f,
		plan: *plan,
		rng:  rand.New(rand.NewPCG(plan.Seed, plan.Seed^0xda3e39cb94b95bdb)),
	}
}

// Crashed reports whether the crash point has been reached.
func (ff *FaultFile) Crashed() bool {
	ff.mu.Lock()
	defer ff.mu.Unlock()
	return ff.crashed
}

func (ff *FaultFile) Write(p []byte) (int, error) {
	ff.mu.Lock()
	defer ff.mu.Unlock()
	if ff.crashed {
		return 0, ErrCrashed
	}
	ff.writes++
	if ff.plan.FailWriteAfter > 0 && ff.writes >= ff.plan.FailWriteAfter {
		return 0, ErrInjected
	}
	if ff.plan.ShortWriteP > 0 && ff.rng.Float64() < ff.plan.ShortWriteP && len(p) > 0 {
		// Persist a strict prefix: the torn-record case a power cut
		// leaves behind, surfaced to the caller as a short write.
		n, err := ff.f.Write(p[:(len(p)+1)/2])
		if err != nil {
			return n, err
		}
		return n, io.ErrShortWrite
	}
	n, err := ff.f.Write(p)
	if err == nil && ff.plan.CrashAfterWrites > 0 && ff.writes >= ff.plan.CrashAfterWrites {
		ff.crashed = true // wrote, never synced: die before the barrier
	}
	return n, err
}

func (ff *FaultFile) Sync() error {
	ff.mu.Lock()
	defer ff.mu.Unlock()
	if ff.crashed {
		return ErrCrashed
	}
	ff.syncs++
	if ff.plan.FailSyncAfter > 0 && ff.syncs >= ff.plan.FailSyncAfter {
		return ErrInjected
	}
	return ff.f.Sync()
}

func (ff *FaultFile) Read(p []byte) (int, error) {
	ff.mu.Lock()
	defer ff.mu.Unlock()
	if ff.crashed {
		return 0, ErrCrashed
	}
	return ff.f.Read(p)
}

func (ff *FaultFile) Seek(offset int64, whence int) (int64, error) {
	ff.mu.Lock()
	defer ff.mu.Unlock()
	if ff.crashed {
		return 0, ErrCrashed
	}
	return ff.f.Seek(offset, whence)
}

func (ff *FaultFile) Truncate(size int64) error {
	ff.mu.Lock()
	defer ff.mu.Unlock()
	if ff.crashed {
		return ErrCrashed
	}
	return ff.f.Truncate(size)
}

// Close always reaches the real file: even a "crashed" handle must not
// leak its descriptor when the harness tears the replica down.
func (ff *FaultFile) Close() error {
	ff.mu.Lock()
	defer ff.mu.Unlock()
	return ff.f.Close()
}

// CorruptFlip flips one byte of the file at path — offset from the
// start when off >= 0, from the end when negative (-1 = last byte).
// Post-crash bit rot for recovery tests.
func CorruptFlip(path string, off int64) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	size, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		return err
	}
	if off < 0 {
		off += size
	}
	if off < 0 || off >= size {
		return errors.New("storage: corrupt offset out of range")
	}
	var b [1]byte
	if _, err := f.ReadAt(b[:], off); err != nil {
		return err
	}
	b[0] ^= 0xff
	_, err = f.WriteAt(b[:], off)
	return err
}

// CorruptTruncate cuts n bytes off the end of the file at path: the
// torn tail an interrupted append leaves behind.
func CorruptTruncate(path string, n int64) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	size, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		return err
	}
	if n > size {
		n = size
	}
	return f.Truncate(size - n)
}
