package storage

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func openTemp(t *testing.T) (*Store, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "test.wal")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	return s, path
}

func TestPutGetDelete(t *testing.T) {
	s, _ := openTemp(t)
	defer s.Close()
	if _, ok := s.Get([]byte("missing")); ok {
		t.Fatal("missing key found")
	}
	if err := s.Put([]byte("k1"), []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put([]byte("k1"), []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if v, ok := s.Get([]byte("k1")); !ok || !bytes.Equal(v, []byte("v2")) {
		t.Fatalf("get = %q, %v", v, ok)
	}
	if err := s.Delete([]byte("k1")); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get([]byte("k1")); ok {
		t.Fatal("deleted key found")
	}
	if s.Len() != 0 {
		t.Fatalf("len = %d", s.Len())
	}
}

func TestReplayAfterReopen(t *testing.T) {
	s, path := openTemp(t)
	for i := 0; i < 100; i++ {
		key := fmt.Appendf(nil, "key-%03d", i)
		val := bytes.Repeat([]byte{byte(i)}, i)
		if err := s.Put(key, val); err != nil {
			t.Fatal(err)
		}
	}
	s.Delete([]byte("key-050"))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Len() != 99 {
		t.Fatalf("replayed %d keys, want 99", r.Len())
	}
	if v, ok := r.Get([]byte("key-077")); !ok || len(v) != 77 {
		t.Fatalf("key-077 = %d bytes, %v", len(v), ok)
	}
	if _, ok := r.Get([]byte("key-050")); ok {
		t.Fatal("tombstoned key survived replay")
	}
}

func TestTornTailRecovered(t *testing.T) {
	s, path := openTemp(t)
	s.Put([]byte("intact"), []byte("value"))
	s.Close()

	// Append garbage simulating a torn write.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0xde, 0xad, 0xbe})
	f.Close()

	r, err := Open(path)
	if err != nil {
		t.Fatalf("torn tail must recover: %v", err)
	}
	defer r.Close()
	if v, ok := r.Get([]byte("intact")); !ok || !bytes.Equal(v, []byte("value")) {
		t.Fatal("intact prefix lost")
	}
	// The store remains writable after truncating the tail.
	if err := r.Put([]byte("after"), []byte("x")); err != nil {
		t.Fatal(err)
	}
}

// TestTornTailDropsOnlyTornRecord: a crash mid-append leaves a partial
// final record; replay must keep every earlier record intact and drop
// exactly the torn one (the journal recovery contract).
func TestTornTailDropsOnlyTornRecord(t *testing.T) {
	s, path := openTemp(t)
	for i := 0; i < 10; i++ {
		if err := s.Put(fmt.Appendf(nil, "key-%d", i), fmt.Appendf(nil, "val-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	// Craft a structurally valid record, then append only half of it —
	// exactly what a crash between write() calls leaves behind.
	key, val := []byte("torn-key"), []byte("torn-value")
	var rec []byte
	var hdr [12]byte
	binary.LittleEndian.PutUint32(hdr[0:], recordCRC(key, val, uint32(len(val))))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(key)))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(len(val)))
	rec = append(rec, hdr[:]...)
	rec = append(rec, key...)
	rec = append(rec, val...)
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write(rec[:len(rec)/2])
	f.Close()

	r, err := Open(path)
	if err != nil {
		t.Fatalf("torn tail must recover: %v", err)
	}
	defer r.Close()
	if r.Len() != 10 {
		t.Fatalf("replayed %d records, want 10 (only the torn one dropped)", r.Len())
	}
	for i := 0; i < 10; i++ {
		if v, ok := r.Get(fmt.Appendf(nil, "key-%d", i)); !ok || !bytes.Equal(v, fmt.Appendf(nil, "val-%d", i)) {
			t.Fatalf("key-%d lost or corrupted: %q %v", i, v, ok)
		}
	}
	if _, ok := r.Get(key); ok {
		t.Fatal("torn record replayed")
	}
	// The truncated store accepts and persists new writes.
	if err := r.Put([]byte("after"), []byte("x")); err != nil {
		t.Fatal(err)
	}
}

func TestRangeVisitsLiveKeys(t *testing.T) {
	s, _ := openTemp(t)
	defer s.Close()
	s.Put([]byte("a"), []byte("1"))
	s.Put([]byte("b"), []byte("2"))
	s.Delete([]byte("a"))
	got := map[string]string{}
	s.Range(func(k, v []byte) bool {
		got[string(k)] = string(v)
		return true
	})
	if len(got) != 1 || got["b"] != "2" {
		t.Fatalf("Range = %v", got)
	}
}

func TestCorruptedRecordStopsReplay(t *testing.T) {
	s, path := openTemp(t)
	s.Put([]byte("a"), []byte("1"))
	s.Put([]byte("b"), []byte("2"))
	s.Close()

	// Flip a byte inside the second record's value region.
	data, _ := os.ReadFile(path)
	data[len(data)-1] ^= 0xff
	os.WriteFile(path, data, 0o644)

	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, ok := r.Get([]byte("a")); !ok {
		t.Fatal("first record lost")
	}
	if _, ok := r.Get([]byte("b")); ok {
		t.Fatal("checksum-corrupted record replayed")
	}
}

func TestSyncEvery(t *testing.T) {
	s, _ := openTemp(t)
	defer s.Close()
	s.SyncEvery = 2
	for i := 0; i < 5; i++ {
		if err := s.Put([]byte{byte(i)}, []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() != 5 {
		t.Fatalf("len = %d", s.Len())
	}
}
