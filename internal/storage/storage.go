// Package storage is the persistence substrate standing in for the
// paper's RocksDB: an append-only, length-framed write-ahead log with an
// in-memory index. Both stores are sequential-write-dominated, which is
// the property that matters for the paper's "deserialize and store"
// throughput bottleneck; the simulator charges that cost through its
// processing model, while real deployments (cmd/autobahn-node) write
// through this package.
package storage

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"
	"sync"
)

// File is the slice of *os.File the store writes through. The
// indirection exists for fault injection: FaultFile wraps a real file
// and turns scheduled operations into errors, short writes, or a
// simulated crash (see faultfile.go).
type File interface {
	io.Reader
	io.Writer
	io.Seeker
	Sync() error
	Truncate(size int64) error
	Close() error
}

// Store is a WAL-backed key/value store. Keys and values are opaque
// bytes; writes append to the log and update the index atomically under
// one lock. Reopening replays the log.
type Store struct {
	mu    sync.Mutex
	f     File
	w     *bufio.Writer
	index map[string][]byte
	path  string
	plan  *FaultPlan
	dirty int
	// SyncEvery fsyncs after this many appends (0 = never, relying on OS
	// flush; crash durability is a non-goal for the reproduction).
	SyncEvery int

	// Write-barrier counters (see Stats): group-commit callers use the
	// appends/flushes ratio to verify barrier amortization.
	appends uint64
	flushes uint64
	fsyncs  uint64
}

// StoreStats are cumulative write-path counters.
type StoreStats struct {
	// Appends is the number of records written (Put + Delete).
	Appends uint64
	// Flushes is the number of buffered-writer flushes to the OS.
	Flushes uint64
	// Fsyncs is the number of file syncs to stable media.
	Fsyncs uint64
}

// Stats snapshots the store's write-path counters.
func (s *Store) Stats() StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return StoreStats{Appends: s.appends, Flushes: s.flushes, Fsyncs: s.fsyncs}
}

// Open opens (creating if absent) a store at path and replays its log.
func Open(path string) (*Store, error) {
	return OpenWithFaults(path, nil)
}

// OpenWithFaults opens a store whose file operations run through a
// fault plan (nil behaves exactly like Open). Replay runs on the real
// file — the plan schedules faults for the incarnation's own writes,
// not for reading the inherited log.
func OpenWithFaults(path string, plan *FaultPlan) (*Store, error) {
	// A leftover sidecar from a compaction interrupted before its atomic
	// rename is dead weight: the live log at path is still authoritative.
	os.Remove(path + compactSuffix)
	raw, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open %s: %w", path, err)
	}
	var f File = raw
	if plan != nil {
		f = NewFaultFile(raw, plan)
	}
	s := &Store{
		f:     f,
		index: make(map[string][]byte),
		path:  path,
		plan:  plan,
	}
	if err := s.replay(); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, err
	}
	s.w = bufio.NewWriterSize(f, 1<<20)
	return s, nil
}

// replay loads every intact record; a torn tail (partial final record or
// checksum mismatch) truncates the log there, WAL-style.
func (s *Store) replay() error {
	r := bufio.NewReaderSize(s.f, 1<<20)
	var off int64
	for {
		rec, n, err := readRecord(r)
		if err == io.EOF {
			break
		}
		if err != nil {
			// Torn tail: truncate and recover.
			if terr := s.f.Truncate(off); terr != nil {
				return fmt.Errorf("storage: truncate torn tail: %w", terr)
			}
			break
		}
		if rec.val == nil {
			delete(s.index, string(rec.key))
		} else {
			s.index[string(rec.key)] = rec.val
		}
		off += int64(n)
	}
	return nil
}

type record struct {
	key, val []byte
}

// Record framing: crc32(4) | klen(4) | vlen(4, ^0 = tombstone) | key | val.
func readRecord(r io.Reader) (record, int, error) {
	var hdr [12]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return record{}, 0, fmt.Errorf("storage: torn header")
		}
		return record{}, 0, err
	}
	crc := binary.LittleEndian.Uint32(hdr[0:])
	klen := binary.LittleEndian.Uint32(hdr[4:])
	vlen := binary.LittleEndian.Uint32(hdr[8:])
	if klen > 1<<20 || (vlen != ^uint32(0) && vlen > 256<<20) {
		return record{}, 0, fmt.Errorf("storage: implausible record lengths")
	}
	key := make([]byte, klen)
	if _, err := io.ReadFull(r, key); err != nil {
		return record{}, 0, fmt.Errorf("storage: torn key")
	}
	var val []byte
	if vlen != ^uint32(0) {
		val = make([]byte, vlen)
		if _, err := io.ReadFull(r, val); err != nil {
			return record{}, 0, fmt.Errorf("storage: torn value")
		}
	}
	if crc != recordCRC(key, val, vlen) {
		return record{}, 0, fmt.Errorf("storage: checksum mismatch")
	}
	n := 12 + int(klen)
	if val != nil {
		n += int(vlen)
	}
	return record{key: key, val: val}, n, nil
}

func recordCRC(key, val []byte, vlen uint32) uint32 {
	h := crc32.NewIEEE()
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], vlen)
	h.Write(b[:])
	h.Write(key)
	h.Write(val)
	return h.Sum32()
}

func (s *Store) append(key, val []byte, vlen uint32) error {
	if err := writeRecord(s.w, key, val, vlen); err != nil {
		return err
	}
	s.appends++
	s.dirty++
	if s.SyncEvery > 0 && s.dirty >= s.SyncEvery {
		s.dirty = 0
		s.flushes++
		if err := s.w.Flush(); err != nil {
			return err
		}
		s.fsyncs++
		return s.f.Sync()
	}
	return nil
}

// Put stores val under key.
func (s *Store) Put(key, val []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.append(key, val, uint32(len(val))); err != nil {
		return fmt.Errorf("storage: put: %w", err)
	}
	cp := make([]byte, len(val))
	copy(cp, val)
	s.index[string(key)] = cp
	return nil
}

// Get returns the value for key (nil, false when absent).
func (s *Store) Get(key []byte) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.index[string(key)]
	return v, ok
}

// Delete removes key (a tombstone is logged).
func (s *Store) Delete(key []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.append(key, nil, ^uint32(0)); err != nil {
		return fmt.Errorf("storage: delete: %w", err)
	}
	delete(s.index, string(key))
	return nil
}

// Range calls fn for every live key/value pair until fn returns false.
// Iteration order is unspecified; callers needing determinism must sort.
// fn must not call back into the store.
func (s *Store) Range(fn func(key, val []byte) bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for k, v := range s.index {
		if !fn([]byte(k), v) {
			return
		}
	}
}

// Len returns the number of live keys.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// Flush forces buffered appends to the OS.
func (s *Store) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.flushes++
	return s.w.Flush()
}

// Close flushes and closes the store.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.w.Flush(); err != nil {
		s.f.Close()
		return err
	}
	return s.f.Close()
}

const compactSuffix = ".compact"

// Compact rewrites the log to exactly the live index, reclaiming the
// space held by overwritten values, tombstones, and deleted keys — the
// truncation path under the execution layer's snapshot frontier. The
// rewrite is crash-safe on both sides of its atomic rename: the new log
// is written to a sidecar file and fsynced before it replaces the live
// path, so a crash mid-rewrite leaves the old log authoritative (Open
// removes the dead sidecar), and a crash after the rename finds the
// compacted log complete. Records are written in sorted key order so a
// compacted log replays deterministically.
//
// In-memory stores (no path) and fault-injected stores mid-crash return
// the underlying error; a fault-plan store re-arms its plan against the
// reopened file (write counters restart — compaction is an incarnation
// boundary for the plan).
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.w.Flush(); err != nil {
		return fmt.Errorf("storage: compact flush: %w", err)
	}
	tmp := s.path + compactSuffix
	raw, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("storage: compact open: %w", err)
	}
	bw := bufio.NewWriterSize(raw, 1<<20)
	keys := make([]string, 0, len(s.index))
	for k := range s.index {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if err := writeRecord(bw, []byte(k), s.index[k], uint32(len(s.index[k]))); err != nil {
			raw.Close()
			os.Remove(tmp)
			return fmt.Errorf("storage: compact write: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		raw.Close()
		os.Remove(tmp)
		return fmt.Errorf("storage: compact flush sidecar: %w", err)
	}
	if err := raw.Sync(); err != nil {
		raw.Close()
		os.Remove(tmp)
		return fmt.Errorf("storage: compact sync: %w", err)
	}
	if err := raw.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("storage: compact close: %w", err)
	}
	// Swap: close the old handle, atomically replace the path, reopen.
	if err := s.f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("storage: compact close old log: %w", err)
	}
	if err := os.Rename(tmp, s.path); err != nil {
		return fmt.Errorf("storage: compact rename: %w", err)
	}
	nf, err := os.OpenFile(s.path, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("storage: compact reopen: %w", err)
	}
	if _, err := nf.Seek(0, io.SeekEnd); err != nil {
		nf.Close()
		return fmt.Errorf("storage: compact seek: %w", err)
	}
	s.f = nf
	if s.plan != nil {
		s.f = NewFaultFile(nf, s.plan)
	}
	s.w = bufio.NewWriterSize(s.f, 1<<20)
	s.dirty = 0
	return nil
}

// writeRecord emits one framed record (shared by the live append path
// and compaction's sidecar rewrite).
func writeRecord(w io.Writer, key, val []byte, vlen uint32) error {
	var hdr [12]byte
	binary.LittleEndian.PutUint32(hdr[0:], recordCRC(key, val, vlen))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(key)))
	binary.LittleEndian.PutUint32(hdr[8:], vlen)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.Write(key); err != nil {
		return err
	}
	if val != nil {
		if _, err := w.Write(val); err != nil {
			return err
		}
	}
	return nil
}
