package storage

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// Snapshot files persist one execution snapshot — a manifest blob plus
// the serialized state it describes — with whole-file atomicity: the
// payload is written to a sidecar, fsynced, then renamed over the live
// path, so readers only ever see the previous complete snapshot or the
// new complete snapshot, never a torn one. Both sections carry CRCs;
// any framing or checksum failure reads as "no usable snapshot" and
// the caller falls back (to the journal frontier, or to genesis).
//
// Layout: magic(8) | mlen(4) | manifest | crc32(manifest) |
//         slen(4) | state | crc32(state).

var snapMagic = [8]byte{'A', 'B', 'S', 'N', 'A', 'P', '1', 0}

const (
	snapTmpSuffix   = ".tmp"
	maxSnapSection  = 1 << 30
	snapSectionHdrs = 8 + 4 + 4 + 4 + 4
)

// WriteSnapshot atomically persists a snapshot at path. The previous
// snapshot (if any) remains readable until the final rename commits the
// new one.
func WriteSnapshot(path string, manifest, state []byte) error {
	tmp := path + snapTmpSuffix
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("storage: snapshot open: %w", err)
	}
	w := bufio.NewWriterSize(f, 1<<20)
	w.Write(snapMagic[:])
	writeSnapSection(w, manifest)
	writeSnapSection(w, state)
	if err := w.Flush(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("storage: snapshot flush: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("storage: snapshot sync: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("storage: snapshot close: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("storage: snapshot commit: %w", err)
	}
	return nil
}

func writeSnapSection(w *bufio.Writer, b []byte) {
	var n [4]byte
	binary.LittleEndian.PutUint32(n[:], uint32(len(b)))
	w.Write(n[:])
	w.Write(b)
	binary.LittleEndian.PutUint32(n[:], crc32.ChecksumIEEE(b))
	w.Write(n[:])
}

// ReadSnapshot loads the snapshot at path. A missing file returns
// (nil, nil, nil) — no snapshot is a normal state, not an error. A
// present-but-unreadable file (torn write, corruption, bad magic)
// returns an error; callers treat it as "no usable snapshot" but may
// log it loudly.
func ReadSnapshot(path string) (manifest, state []byte, err error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil, nil
		}
		return nil, nil, fmt.Errorf("storage: snapshot open: %w", err)
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<20)
	var magic [8]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, nil, fmt.Errorf("storage: snapshot magic: %w", err)
	}
	if magic != snapMagic {
		return nil, nil, fmt.Errorf("storage: bad snapshot magic")
	}
	if manifest, err = readSnapSection(r); err != nil {
		return nil, nil, fmt.Errorf("storage: snapshot manifest: %w", err)
	}
	if state, err = readSnapSection(r); err != nil {
		return nil, nil, fmt.Errorf("storage: snapshot state: %w", err)
	}
	if _, err := r.ReadByte(); err != io.EOF {
		return nil, nil, fmt.Errorf("storage: trailing snapshot bytes")
	}
	return manifest, state, nil
}

// FileSnapshots is a file-backed snapshot store (core.SnapshotStore): a
// single snapshot file, atomically replaced on each Save. Load treats
// any unreadable file as "no snapshot" per ReadSnapshot.
type FileSnapshots struct{ Path string }

func (s FileSnapshots) Save(manifest, state []byte) error {
	return WriteSnapshot(s.Path, manifest, state)
}

func (s FileSnapshots) Load() ([]byte, []byte, error) {
	return ReadSnapshot(s.Path)
}

func readSnapSection(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("torn length: %w", err)
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > maxSnapSection {
		return nil, fmt.Errorf("implausible section length %d", n)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		return nil, fmt.Errorf("torn payload: %w", err)
	}
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("torn checksum: %w", err)
	}
	if binary.LittleEndian.Uint32(hdr[:]) != crc32.ChecksumIEEE(b) {
		return nil, fmt.Errorf("checksum mismatch")
	}
	return b, nil
}
