package storage

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func TestSnapshotRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "r.snap")
	man := []byte("manifest-bytes")
	state := bytes.Repeat([]byte{0xab}, 300<<10)
	if err := WriteSnapshot(path, man, state); err != nil {
		t.Fatalf("write: %v", err)
	}
	gm, gs, err := ReadSnapshot(path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if !bytes.Equal(gm, man) || !bytes.Equal(gs, state) {
		t.Fatal("snapshot did not round-trip")
	}
	// Overwrite with a second snapshot: the new one wins atomically.
	if err := WriteSnapshot(path, []byte("v2"), []byte("state2")); err != nil {
		t.Fatalf("rewrite: %v", err)
	}
	gm, gs, err = ReadSnapshot(path)
	if err != nil {
		t.Fatalf("reread: %v", err)
	}
	if string(gm) != "v2" || string(gs) != "state2" {
		t.Fatal("second snapshot not visible")
	}
}

func TestSnapshotMissingIsNotAnError(t *testing.T) {
	m, s, err := ReadSnapshot(filepath.Join(t.TempDir(), "absent.snap"))
	if err != nil || m != nil || s != nil {
		t.Fatalf("missing snapshot: (%v, %v, %v), want all nil", m, s, err)
	}
}

// TestSnapshotTornWriteFailsCleanly truncates a committed snapshot at
// every interesting boundary: each torn variant must fail to read (the
// caller falls back to journal/genesis), never return partial data.
func TestSnapshotTornWriteFailsCleanly(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.snap")
	man := bytes.Repeat([]byte{0x5a}, 200)
	state := bytes.Repeat([]byte{0xc3}, 4096)
	if err := WriteSnapshot(path, man, state); err != nil {
		t.Fatalf("write: %v", err)
	}
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{0, 4, 8, 10, 8 + 4 + len(man), 8 + 4 + len(man) + 2, len(full) - 1} {
		torn := filepath.Join(dir, fmt.Sprintf("torn-%d.snap", cut))
		if err := os.WriteFile(torn, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, err := ReadSnapshot(torn); err == nil {
			t.Fatalf("torn snapshot (cut %d) read without error", cut)
		}
	}
	// Bit flip inside the state payload: checksum must catch it.
	flipped := append([]byte(nil), full...)
	flipped[len(flipped)-10] ^= 0x40
	fp := filepath.Join(dir, "flip.snap")
	if err := os.WriteFile(fp, flipped, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadSnapshot(fp); err == nil {
		t.Fatal("corrupted snapshot read without error")
	}
}

// TestSnapshotWriteLeavesPreviousIntact: the sidecar+rename protocol
// means a failed write never destroys the previous snapshot.
func TestSnapshotWriteLeavesPreviousIntact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "p.snap")
	if err := WriteSnapshot(path, []byte("m1"), []byte("s1")); err != nil {
		t.Fatal(err)
	}
	// Simulate an interrupted second write: a leftover tmp sidecar.
	if err := os.WriteFile(path+snapTmpSuffix, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	m, s, err := ReadSnapshot(path)
	if err != nil || string(m) != "m1" || string(s) != "s1" {
		t.Fatalf("previous snapshot lost: (%q, %q, %v)", m, s, err)
	}
}

func TestCompactReclaimsAndPreservesIndex(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.wal")
	st, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	// Churn: many overwrites and deletes, then compact.
	for i := 0; i < 200; i++ {
		k := fmt.Appendf(nil, "key-%03d", i%20)
		v := bytes.Repeat([]byte{byte(i)}, 512)
		if err := st.Put(k, v); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		if err := st.Delete(fmt.Appendf(nil, "key-%03d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}
	before, _ := os.Stat(path)
	if err := st.Compact(); err != nil {
		t.Fatalf("compact: %v", err)
	}
	after, _ := os.Stat(path)
	if after.Size() >= before.Size() {
		t.Fatalf("compaction did not shrink the log: %d -> %d", before.Size(), after.Size())
	}
	if st.Len() != 10 {
		t.Fatalf("index has %d keys after compact, want 10", st.Len())
	}
	// Writes continue on the compacted log; reopen replays everything.
	if err := st.Put([]byte("post"), []byte("compact")); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(path)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer re.Close()
	if re.Len() != 11 {
		t.Fatalf("reopened index has %d keys, want 11", re.Len())
	}
	if v, ok := re.Get([]byte("post")); !ok || string(v) != "compact" {
		t.Fatal("post-compact write lost across reopen")
	}
	for i := 0; i < 10; i++ {
		if _, ok := re.Get(fmt.Appendf(nil, "key-%03d", i)); ok {
			t.Fatalf("deleted key-%03d resurrected by compaction", i)
		}
	}
}

// TestCompactCrashLeavesOldLogAuthoritative: a sidecar left behind by a
// crash mid-compaction (before the rename) must be ignored and removed
// by the next Open; the original log replays unchanged.
func TestCompactCrashLeavesOldLogAuthoritative(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cc.wal")
	st, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Put([]byte("a"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// A torn sidecar from a crashed compaction.
	if err := os.WriteFile(path+compactSuffix, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	re, err := Open(path)
	if err != nil {
		t.Fatalf("reopen with dead sidecar: %v", err)
	}
	defer re.Close()
	if v, ok := re.Get([]byte("a")); !ok || string(v) != "1" {
		t.Fatal("live log not authoritative after crashed compaction")
	}
	if _, err := os.Stat(path + compactSuffix); !os.IsNotExist(err) {
		t.Fatal("dead compaction sidecar not cleaned up")
	}
}
