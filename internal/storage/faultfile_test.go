package storage

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"path/filepath"
	"testing"
)

func openFaulty(t *testing.T, plan *FaultPlan) (*Store, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "fault.wal")
	s, err := OpenWithFaults(path, plan)
	if err != nil {
		t.Fatal(err)
	}
	return s, path
}

// A scheduled write failure must surface at the flush barrier, not
// vanish into the buffered writer.
func TestFaultWriteFailureSurfaces(t *testing.T) {
	s, _ := openFaulty(t, &FaultPlan{FailWriteAfter: 1})
	defer s.Close()
	if err := s.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatalf("buffered put should not fail yet: %v", err)
	}
	if err := s.Flush(); !errors.Is(err, ErrInjected) {
		t.Fatalf("flush error = %v, want ErrInjected", err)
	}
}

// A short write must surface as io.ErrShortWrite and leave a torn tail
// the next incarnation truncates away — losing only the damaged suffix.
func TestFaultShortWriteLeavesRecoverableTail(t *testing.T) {
	s, path := openFaulty(t, &FaultPlan{Seed: 7, ShortWriteP: 1})
	if err := s.Put([]byte("k"), bytes.Repeat([]byte("x"), 64)); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); !errors.Is(err, io.ErrShortWrite) {
		t.Fatalf("flush error = %v, want io.ErrShortWrite", err)
	}
	s.f.Close() // abandon the sick handle; bufio state is poisoned

	re, err := Open(path)
	if err != nil {
		t.Fatalf("recovery after torn write: %v", err)
	}
	defer re.Close()
	if re.Len() != 0 {
		t.Fatalf("recovered %d records from a torn log, want 0", re.Len())
	}
	// And the store still works: append a record, reopen, see it.
	if err := re.Put([]byte("k2"), []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
	re2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re2.Close()
	if v, ok := re2.Get([]byte("k2")); !ok || !bytes.Equal(v, []byte("v2")) {
		t.Fatalf("post-recovery record lost: %q %v", v, ok)
	}
}

// A scheduled sync failure must fail the synchronous fsync path (and
// keep failing — sick disks do not heal).
func TestFaultSyncFailure(t *testing.T) {
	s, _ := openFaulty(t, &FaultPlan{FailSyncAfter: 1})
	defer s.Close()
	s.SyncEvery = 1 // every append flushes and fsyncs inline
	if err := s.Put([]byte("k"), []byte("v")); !errors.Is(err, ErrInjected) {
		t.Fatalf("put error = %v, want ErrInjected", err)
	}
	if err := s.Put([]byte("k2"), []byte("v2")); !errors.Is(err, ErrInjected) {
		t.Fatalf("second put error = %v, want sticky ErrInjected", err)
	}
}

// The crash point: the write lands (kernel has it), the sync never
// happens, and every later operation reports the handle dead.
func TestFaultCrashAfterAppendBeforeSync(t *testing.T) {
	s, path := openFaulty(t, &FaultPlan{CrashAfterWrites: 1})
	if err := s.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatalf("the crashing write itself completes: %v", err)
	}
	ff, ok := s.f.(*FaultFile)
	if !ok || !ff.Crashed() {
		t.Fatalf("crash point not reached (file %T)", s.f)
	}
	if err := s.Put([]byte("k2"), []byte("v2")); err == nil {
		if err = s.Flush(); !errors.Is(err, ErrCrashed) {
			t.Fatalf("post-crash flush = %v, want ErrCrashed", err)
		}
	} else if !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash put = %v, want ErrCrashed", err)
	}
	s.f.Close()

	// The next incarnation recovers exactly the crash-surviving prefix.
	re, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if v, ok := re.Get([]byte("k")); !ok || !bytes.Equal(v, []byte("v")) {
		t.Fatalf("pre-crash record lost: %q %v", v, ok)
	}
	if re.Len() != 1 {
		t.Fatalf("recovered %d records, want 1", re.Len())
	}
}

// corruptionMatrix writes n records, applies a corruption, and returns
// the recovered store for assertions.
func writeRecords(t *testing.T, path string, n int) {
	t.Helper()
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := s.Put(fmt.Appendf(nil, "key-%02d", i), bytes.Repeat([]byte{byte(i)}, 32)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// Byte-flip and truncation over the log tail: recovery must drop the
// damaged record and everything after it (replay stops at the first
// bad checksum) while keeping every intact record before it.
func TestCorruptionMatrixDropsOnlyDamagedTail(t *testing.T) {
	const records = 8
	const recSize = 12 + 6 + 32 // header + "key-NN" + value
	cases := []struct {
		name    string
		corrupt func(path string) error
		keep    int
	}{
		{"flip-last-record-value", func(p string) error { return CorruptFlip(p, -1) }, records - 1},
		{"flip-mid-log", func(p string) error { return CorruptFlip(p, recSize*4+20) }, 4},
		{"flip-first-header", func(p string) error { return CorruptFlip(p, 0) }, 0},
		{"truncate-torn-tail", func(p string) error { return CorruptTruncate(p, 10) }, records - 1},
		{"truncate-two-records", func(p string) error { return CorruptTruncate(p, recSize+10) }, records - 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "corrupt.wal")
			writeRecords(t, path, records)
			if err := tc.corrupt(path); err != nil {
				t.Fatal(err)
			}
			s, err := Open(path)
			if err != nil {
				t.Fatalf("recovery from corruption must succeed: %v", err)
			}
			defer s.Close()
			if s.Len() != tc.keep {
				t.Fatalf("recovered %d records, want %d", s.Len(), tc.keep)
			}
			for i := 0; i < tc.keep; i++ {
				key := fmt.Appendf(nil, "key-%02d", i)
				if v, ok := s.Get(key); !ok || !bytes.Equal(v, bytes.Repeat([]byte{byte(i)}, 32)) {
					t.Fatalf("intact record %d lost or damaged", i)
				}
			}
		})
	}
}
