package exec

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/types"
)

func entryBatch(lane types.NodeID, seq uint64) *types.Batch {
	return types.NewBatch(lane, seq, []types.Transaction{
		bytes.Repeat([]byte{byte(seq)}, 64),
		bytes.Repeat([]byte{byte(seq + 1)}, 64),
	}, time.Duration(seq)*time.Millisecond)
}

// applyN executes n deterministic entries and returns the machine.
func applyN(t *testing.T, n int) *Machine {
	t.Helper()
	m := New()
	for i := 0; i < n; i++ {
		b := entryBatch(types.NodeID(i%4), uint64(i))
		m.Apply(types.Slot(i/4+1), b.Origin, types.Pos(i/4+1), b.Digest(), b)
	}
	return m
}

func TestApplyDeterministic(t *testing.T) {
	a, b := applyN(t, 40), applyN(t, 40)
	if a.AppHash() != b.AppHash() {
		t.Fatalf("same entries, different AppHash: %v vs %v", a.AppHash(), b.AppHash())
	}
	if a.Count() != 40 || b.Count() != 40 {
		t.Fatalf("chain length %d/%d, want 40", a.Count(), b.Count())
	}
	for i := 0; i < Buckets; i += 997 {
		if a.Balance(i) != b.Balance(i) {
			t.Fatalf("bucket %d diverged: %d vs %d", i, a.Balance(i), b.Balance(i))
		}
	}
}

func TestApplyDivergesOnMutation(t *testing.T) {
	a, b := New(), New()
	batch := entryBatch(1, 7)
	d := batch.Digest()
	a.Apply(1, 1, 1, d, batch)
	mutated := d
	mutated[0] ^= 0x01
	b.Apply(1, 1, 1, mutated, batch)
	if a.AppHash() == b.AppHash() {
		t.Fatal("mutated batch digest produced the same AppHash")
	}
}

func TestApplyOrderSensitive(t *testing.T) {
	a, b := New(), New()
	x, y := entryBatch(0, 1), entryBatch(1, 1)
	a.Apply(1, 0, 1, x.Digest(), x)
	a.Apply(1, 1, 1, y.Digest(), y)
	b.Apply(1, 1, 1, y.Digest(), y)
	b.Apply(1, 0, 1, x.Digest(), x)
	if a.AppHash() == b.AppHash() {
		t.Fatal("different execution orders produced the same AppHash")
	}
}

func TestRestoreHashContinuesChain(t *testing.T) {
	// A journal-recovered machine (hash restored, state not) must
	// produce the same chain values as one that executed all along —
	// the AppHash is state-independent by construction.
	full := applyN(t, 20)
	rec := New()
	rec.RestoreHash(full.AppHash(), full.Count())
	next := entryBatch(2, 99)
	h1 := full.Apply(6, 2, 6, next.Digest(), next)
	h2 := rec.Apply(6, 2, 6, next.Digest(), next)
	if h1 != h2 {
		t.Fatalf("restored chain diverged: %v vs %v", h1, h2)
	}
}

func TestSyntheticBatchFold(t *testing.T) {
	m := New()
	b := types.NewSyntheticBatch(1, 1, 100, 51200, 0, 0)
	before := m.AppHash()
	m.Apply(1, 1, 1, b.Digest(), b)
	if m.AppHash() == before {
		t.Fatal("synthetic batch did not advance the chain")
	}
}

func TestSerializeInstallRoundTrip(t *testing.T) {
	m := applyN(t, 32)
	state := m.Serialize()
	fresh := New()
	if err := fresh.Install(state); err != nil {
		t.Fatalf("install: %v", err)
	}
	if fresh.AppHash() != m.AppHash() || fresh.Count() != m.Count() {
		t.Fatalf("chain oracle not restored: (%v,%d) vs (%v,%d)",
			fresh.AppHash(), fresh.Count(), m.AppHash(), m.Count())
	}
	for i := 0; i < Buckets; i += 991 {
		if fresh.Balance(i) != m.Balance(i) {
			t.Fatalf("bucket %d not restored: %d vs %d", i, fresh.Balance(i), m.Balance(i))
		}
	}
	// The two machines must now evolve identically.
	b := entryBatch(3, 1000)
	if m.Apply(9, 3, 9, b.Digest(), b) != fresh.Apply(9, 3, 9, b.Digest(), b) {
		t.Fatal("installed machine diverged on the next entry")
	}
}

func TestInstallRejectsCorruptState(t *testing.T) {
	m := applyN(t, 8)
	state := m.Serialize()
	for _, tc := range []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"truncated", func(s []byte) []byte { return s[:len(s)-5] }},
		{"bad magic", func(s []byte) []byte { s[0] ^= 0xff; return s }},
		{"extended", func(s []byte) []byte { return append(s, 0) }},
	} {
		bad := tc.mutate(append([]byte(nil), state...))
		if err := New().Install(bad); err == nil {
			t.Fatalf("%s state installed without error", tc.name)
		}
	}
}

func TestManifestRoundTrip(t *testing.T) {
	m := applyN(t, 16)
	state := m.Serialize()
	frontier := []types.Pos{4, 4, 4, 4}
	digests := make([]types.Digest, 4)
	for i := range digests {
		digests[i][0] = byte(i + 1)
	}
	man := BuildManifest(5, frontier, digests, m.AppHash(), m.Count(), state)
	dec, err := DecodeManifest(man.Encode())
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if dec.Next != man.Next || dec.Count != man.Count ||
		dec.AppHash != man.AppHash || dec.StateHash != man.StateHash ||
		dec.StateLen != man.StateLen || dec.ChunkSize != man.ChunkSize ||
		len(dec.Frontier) != len(man.Frontier) || len(dec.Chunks) != len(man.Chunks) {
		t.Fatalf("manifest did not round-trip: %+v vs %+v", dec, man)
	}
	for i := range man.Frontier {
		if dec.Frontier[i] != man.Frontier[i] || dec.Digests[i] != man.Digests[i] {
			t.Fatalf("lane %d frontier did not round-trip", i)
		}
	}
	// Chunk/assemble cycle verifies end to end.
	assembled := make([]byte, 0, len(state))
	for i := range dec.Chunks {
		c := man.Chunk(state, i)
		if err := dec.VerifyChunk(i, c); err != nil {
			t.Fatalf("chunk %d: %v", i, err)
		}
		assembled = append(assembled, c...)
	}
	if err := dec.VerifyState(assembled); err != nil {
		t.Fatalf("assembled state: %v", err)
	}
}

func TestTornManifestFailsCleanly(t *testing.T) {
	m := applyN(t, 8)
	state := m.Serialize()
	man := BuildManifest(3, []types.Pos{2, 2, 2, 2}, make([]types.Digest, 4),
		m.AppHash(), m.Count(), state)
	enc := man.Encode()
	// Every strict prefix must be rejected, never partially installed.
	for cut := 0; cut < len(enc); cut += 7 {
		if _, err := DecodeManifest(enc[:cut]); err == nil {
			t.Fatalf("torn manifest (cut at %d) decoded without error", cut)
		}
	}
	if _, err := DecodeManifest(append(append([]byte(nil), enc...), 0xee)); err == nil {
		t.Fatal("manifest with trailing bytes decoded without error")
	}
}

func TestManifestRejectsHostileShapes(t *testing.T) {
	m := applyN(t, 8)
	state := m.Serialize()
	man := BuildManifest(3, []types.Pos{2, 2, 2, 2}, make([]types.Digest, 4),
		m.AppHash(), m.Count(), state)
	// Chunk-count/state-length mismatch must be rejected: a hostile
	// manifest may not understate the chunk list to skip verification.
	bad := *man
	bad.Chunks = bad.Chunks[:len(bad.Chunks)-1]
	if _, err := DecodeManifest(bad.Encode()); err == nil {
		t.Fatal("chunk-count mismatch decoded without error")
	}
	if err := man.VerifyChunk(0, []byte("wrong")); err == nil {
		t.Fatal("bad chunk verified")
	}
	if err := man.VerifyState(state[:len(state)-1]); err == nil {
		t.Fatal("short state verified")
	}
}
