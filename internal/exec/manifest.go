package exec

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"

	"repro/internal/types"
)

// Manifest describes one execution snapshot: the consensus coordinates
// it was taken at (resume replay from Next; the per-lane committed
// frontier with its digests), the chain oracle at that point, and the
// chunked state payload's integrity hashes. A cold replica fetches the
// manifest first, then each chunk, verifying every chunk against its
// pinned hash and the assembled state against StateHash before
// installing anything.
type Manifest struct {
	// Next is the first slot to replay after installing the snapshot.
	Next types.Slot
	// Frontier/Digests are the per-lane committed positions and chain
	// digests at Next (the orderer's frontier, one entry per lane).
	Frontier []types.Pos
	Digests  []types.Digest
	// AppHash/Count are the execution chain oracle at Next.
	AppHash types.Digest
	Count   uint64
	// StateHash is the SHA-256 of the full serialized state; it also
	// identifies the snapshot in chunk requests.
	StateHash types.Digest
	// StateLen/ChunkSize shape the chunked transfer; Chunks pins each
	// chunk's SHA-256.
	StateLen  uint64
	ChunkSize uint32
	Chunks    []types.Digest
}

// DefaultChunkSize is the snapshot transfer chunk size.
const DefaultChunkSize = 64 << 10

// maxManifestLanes/maxManifestChunks bound decoded manifests (hostile
// input reaches DecodeManifest straight off the wire).
const (
	maxManifestLanes  = 1 << 12
	maxManifestChunks = 1 << 16
)

var manifestMagic = [8]byte{'s', 'n', 'a', 'p', 'm', 'a', 'n', '1'}

// BuildManifest chunks a serialized state and assembles its manifest.
func BuildManifest(next types.Slot, frontier []types.Pos, digests []types.Digest, appHash types.Digest, count uint64, state []byte) *Manifest {
	m := &Manifest{
		Next:      next,
		Frontier:  append([]types.Pos(nil), frontier...),
		Digests:   append([]types.Digest(nil), digests...),
		AppHash:   appHash,
		Count:     count,
		StateHash: sha256.Sum256(state),
		StateLen:  uint64(len(state)),
		ChunkSize: DefaultChunkSize,
	}
	for off := 0; off < len(state); off += DefaultChunkSize {
		end := min(off+DefaultChunkSize, len(state))
		m.Chunks = append(m.Chunks, sha256.Sum256(state[off:end]))
	}
	return m
}

// Chunk returns the i-th chunk of a serialized state under this
// manifest's chunking (nil when out of range).
func (m *Manifest) Chunk(state []byte, i int) []byte {
	if i < 0 || i >= len(m.Chunks) || uint64(len(state)) != m.StateLen {
		return nil
	}
	off := i * int(m.ChunkSize)
	end := min(off+int(m.ChunkSize), len(state))
	return state[off:end]
}

// VerifyChunk checks one received chunk against its pinned hash and
// expected length.
func (m *Manifest) VerifyChunk(i int, data []byte) error {
	if i < 0 || i >= len(m.Chunks) {
		return fmt.Errorf("exec: chunk %d out of range (%d chunks)", i, len(m.Chunks))
	}
	wantLen := int(m.ChunkSize)
	if i == len(m.Chunks)-1 {
		wantLen = int(m.StateLen) - i*int(m.ChunkSize)
	}
	if len(data) != wantLen {
		return fmt.Errorf("exec: chunk %d is %d bytes, want %d", i, len(data), wantLen)
	}
	if sha256.Sum256(data) != m.Chunks[i] {
		return fmt.Errorf("exec: chunk %d hash mismatch", i)
	}
	return nil
}

// VerifyState checks an assembled state payload against the manifest.
func (m *Manifest) VerifyState(state []byte) error {
	if uint64(len(state)) != m.StateLen {
		return fmt.Errorf("exec: state is %d bytes, want %d", len(state), m.StateLen)
	}
	if sha256.Sum256(state) != m.StateHash {
		return fmt.Errorf("exec: state hash mismatch")
	}
	return nil
}

// Encode renders the manifest in its canonical binary form.
func (m *Manifest) Encode() []byte {
	n := 8 + 8 + 2 + len(m.Frontier)*8 + len(m.Digests)*types.DigestSize +
		types.DigestSize + 8 + types.DigestSize + 8 + 4 + 2 + len(m.Chunks)*types.DigestSize
	out := make([]byte, 0, n)
	out = append(out, manifestMagic[:]...)
	out = binary.LittleEndian.AppendUint64(out, uint64(m.Next))
	out = binary.LittleEndian.AppendUint16(out, uint16(len(m.Frontier)))
	for _, p := range m.Frontier {
		out = binary.LittleEndian.AppendUint64(out, uint64(p))
	}
	for _, d := range m.Digests {
		out = append(out, d[:]...)
	}
	out = append(out, m.AppHash[:]...)
	out = binary.LittleEndian.AppendUint64(out, m.Count)
	out = append(out, m.StateHash[:]...)
	out = binary.LittleEndian.AppendUint64(out, m.StateLen)
	out = binary.LittleEndian.AppendUint32(out, m.ChunkSize)
	out = binary.LittleEndian.AppendUint16(out, uint16(len(m.Chunks)))
	for _, d := range m.Chunks {
		out = append(out, d[:]...)
	}
	return out
}

// DecodeManifest parses and structurally validates a canonical
// manifest encoding. Every length is checked before use: manifests
// arrive over the network from untrusted peers (and from disk, where a
// torn write must fail cleanly, never install partially).
func DecodeManifest(buf []byte) (*Manifest, error) {
	r := manifestReader{buf: buf}
	var magic [8]byte
	r.read(magic[:])
	if magic != manifestMagic {
		return nil, fmt.Errorf("exec: bad manifest magic")
	}
	m := &Manifest{Next: types.Slot(r.u64())}
	lanes := int(r.u16())
	if lanes == 0 || lanes > maxManifestLanes {
		return nil, fmt.Errorf("exec: manifest with %d lanes", lanes)
	}
	if r.err == nil {
		m.Frontier = make([]types.Pos, lanes)
		for i := range m.Frontier {
			m.Frontier[i] = types.Pos(r.u64())
		}
		m.Digests = make([]types.Digest, lanes)
		for i := range m.Digests {
			r.read(m.Digests[i][:])
		}
	}
	r.read(m.AppHash[:])
	m.Count = r.u64()
	r.read(m.StateHash[:])
	m.StateLen = r.u64()
	m.ChunkSize = r.u32()
	chunks := int(r.u16())
	if r.err == nil {
		if chunks > maxManifestChunks {
			return nil, fmt.Errorf("exec: manifest with %d chunks", chunks)
		}
		m.Chunks = make([]types.Digest, chunks)
		for i := range m.Chunks {
			r.read(m.Chunks[i][:])
		}
	}
	if r.err != nil {
		return nil, r.err
	}
	if len(r.buf) != 0 {
		return nil, fmt.Errorf("exec: %d trailing manifest bytes", len(r.buf))
	}
	if m.Next == 0 {
		return nil, fmt.Errorf("exec: manifest at slot 0")
	}
	if m.ChunkSize == 0 || m.ChunkSize > 16<<20 {
		return nil, fmt.Errorf("exec: chunk size %d", m.ChunkSize)
	}
	if m.StateLen > 1<<30 {
		return nil, fmt.Errorf("exec: state length %d", m.StateLen)
	}
	want := int((m.StateLen + uint64(m.ChunkSize) - 1) / uint64(m.ChunkSize))
	if len(m.Chunks) != want {
		return nil, fmt.Errorf("exec: %d chunks for %d bytes at chunk size %d (want %d)",
			len(m.Chunks), m.StateLen, m.ChunkSize, want)
	}
	return m, nil
}

type manifestReader struct {
	buf []byte
	err error
}

func (r *manifestReader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if len(r.buf) < n {
		r.err = fmt.Errorf("exec: truncated manifest")
		return nil
	}
	b := r.buf[:n]
	r.buf = r.buf[n:]
	return b
}

func (r *manifestReader) read(dst []byte) {
	if b := r.take(len(dst)); b != nil {
		copy(dst, b)
	}
}

func (r *manifestReader) u16() uint16 {
	if b := r.take(2); b != nil {
		return binary.LittleEndian.Uint16(b)
	}
	return 0
}

func (r *manifestReader) u32() uint32 {
	if b := r.take(4); b != nil {
		return binary.LittleEndian.Uint32(b)
	}
	return 0
}

func (r *manifestReader) u64() uint64 {
	if b := r.take(8); b != nil {
		return binary.LittleEndian.Uint64(b)
	}
	return 0
}
