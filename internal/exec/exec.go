// Package exec implements the deterministic execution layer behind the
// orderer: an account state machine that consumes the committed stream
// (slot-ordered, zip-ordered within a slot) and maintains two artifacts:
//
//   - AppHash — a running chain hash over the executed entries. It is a
//     pure function of the execution *sequence* (slot, lane, position,
//     batch digest, chain length), deliberately independent of the
//     account state, so a journal-recovered replica restores the exact
//     oracle value from its WAL and replicas cross-check execution at
//     every commit boundary (a divergence is a loud safety violation
//     surfaced through harness.CommitInterceptor).
//
//   - Account state — a fixed array of bucketed balances mutated by a
//     deterministic fold over each batch (per-transaction FNV folds for
//     real payloads, a digest-derived fold for the simulator's synthetic
//     batches). The state exists to give snapshots real content: it is
//     what a cold replica fetches in O(state) instead of replaying
//     O(history), and what periodic snapshots checkpoint so the WAL and
//     lane stores can truncate below the snapshot frontier.
//
// Everything here is a pure state machine — no clocks, no randomness,
// no goroutines — so the same code runs under the discrete-event
// simulator and the live TCP runtime.
package exec

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"hash/fnv"

	"repro/internal/types"
)

// Buckets is the number of account buckets. 1<<16 buckets of 8 bytes is
// 512 KiB of state — small enough to snapshot cheaply every few dozen
// slots, large enough that snapshot transfer is measurably "state", not
// a header.
const Buckets = 1 << 16

// InitialBalance funds every bucket at genesis so transfers never
// bottom out immediately.
const InitialBalance = 1 << 40

// Machine is one replica's deterministic execution state. Methods are
// not safe for concurrent use; the owning event loop serializes them.
type Machine struct {
	appHash  types.Digest
	count    uint64 // chain length: entries executed since genesis
	balances []uint64
}

// New returns a genesis machine: zero AppHash, every bucket funded.
func New() *Machine {
	m := &Machine{balances: make([]uint64, Buckets)}
	for i := range m.balances {
		m.balances[i] = InitialBalance
	}
	return m
}

// AppHash returns the current chain hash.
func (m *Machine) AppHash() types.Digest { return m.appHash }

// Count returns the chain length (entries executed since genesis).
func (m *Machine) Count() uint64 { return m.count }

// Balance returns one bucket's balance (tests and inspection).
func (m *Machine) Balance(bucket int) uint64 { return m.balances[bucket] }

// Apply executes one committed entry: the chain hash absorbs the
// entry's coordinates and batch digest, then the batch's deterministic
// fold mutates the account state. The digest is passed explicitly (it
// is already memoized on the batch; the tamper test hook substitutes a
// mutated one). Returns the new AppHash.
func (m *Machine) Apply(slot types.Slot, lane types.NodeID, pos types.Pos, digest types.Digest, b *types.Batch) types.Digest {
	var hdr [8 + 2 + 8 + 8]byte
	binary.LittleEndian.PutUint64(hdr[0:], uint64(slot))
	binary.LittleEndian.PutUint16(hdr[8:], uint16(lane))
	binary.LittleEndian.PutUint64(hdr[10:], uint64(pos))
	binary.LittleEndian.PutUint64(hdr[18:], m.count)
	h := sha256.New()
	h.Write(m.appHash[:])
	h.Write(hdr[:])
	h.Write(digest[:])
	h.Sum(m.appHash[:0])
	m.count++

	if b != nil && b.Txs != nil {
		for _, tx := range b.Txs {
			f := fnv.New64a()
			f.Write(tx)
			m.transfer(f.Sum64())
		}
	} else {
		// Synthetic batch (simulator): fold digest-derived entropy once
		// per entry so state still evolves deterministically.
		m.transfer(binary.LittleEndian.Uint64(digest[0:8]))
		m.transfer(binary.LittleEndian.Uint64(digest[8:16]))
	}
	return m.appHash
}

// transfer moves a pseudo-amount between two buckets derived from the
// fold value. Purely deterministic; saturates at zero rather than
// underflowing.
func (m *Machine) transfer(h uint64) {
	from := h % Buckets
	to := (h >> 20) % Buckets
	amt := (h >> 40) & 0xffff
	if m.balances[from] >= amt {
		m.balances[from] -= amt
	} else {
		m.balances[from] = 0
	}
	m.balances[to] += amt
}

// RestoreHash restores the chain oracle alone — the journal-recovery
// path. The WAL records (appHash, count) with the execution frontier,
// so a restarted replica resumes the exact chain value even when the
// account state below the frontier is not locally reconstructible (it
// re-funds from the latest snapshot, or stays at genesis when none
// exists; the chain hash is state-independent by construction, so the
// cross-replica oracle is unaffected).
func (m *Machine) RestoreHash(appHash types.Digest, count uint64) {
	m.appHash = appHash
	m.count = count
}

// --- state serialization (snapshot payload) ---

var stateMagic = [8]byte{'a', 'b', 's', 't', 'a', 't', 'e', '1'}

// stateHeaderLen is magic + count + appHash + bucket count.
const stateHeaderLen = 8 + 8 + types.DigestSize + 4

// Serialize encodes the full machine state (chain oracle + balances)
// as a snapshot payload.
func (m *Machine) Serialize() []byte {
	out := make([]byte, stateHeaderLen+8*Buckets)
	copy(out[0:8], stateMagic[:])
	binary.LittleEndian.PutUint64(out[8:], m.count)
	copy(out[16:], m.appHash[:])
	binary.LittleEndian.PutUint32(out[16+types.DigestSize:], Buckets)
	off := stateHeaderLen
	for _, b := range m.balances {
		binary.LittleEndian.PutUint64(out[off:], b)
		off += 8
	}
	return out
}

// Install replaces the machine state with a serialized snapshot
// payload (validated against the format before any mutation).
func (m *Machine) Install(state []byte) error {
	if len(state) < stateHeaderLen {
		return fmt.Errorf("exec: state payload %d bytes, want >= %d", len(state), stateHeaderLen)
	}
	if [8]byte(state[0:8]) != stateMagic {
		return fmt.Errorf("exec: bad state magic")
	}
	buckets := binary.LittleEndian.Uint32(state[16+types.DigestSize:])
	if buckets != Buckets {
		return fmt.Errorf("exec: snapshot has %d buckets, machine has %d", buckets, Buckets)
	}
	if want := stateHeaderLen + 8*Buckets; len(state) != want {
		return fmt.Errorf("exec: state payload %d bytes, want %d", len(state), want)
	}
	m.count = binary.LittleEndian.Uint64(state[8:])
	copy(m.appHash[:], state[16:])
	off := stateHeaderLen
	for i := range m.balances {
		m.balances[i] = binary.LittleEndian.Uint64(state[off:])
		off += 8
	}
	return nil
}
