package order

import (
	"math/rand/v2"
	"testing"

	"repro/internal/lane"
	"repro/internal/types"
)

// buildLanes creates a store with `perLane` chained proposals for each of
// n lanes and returns it with the per-lane tips.
func buildLanes(n, perLane int) (*lane.Store, []types.TipRef) {
	store := lane.NewStore()
	tips := make([]types.TipRef, n)
	for l := 0; l < n; l++ {
		var parent types.Digest
		for pos := 1; pos <= perLane; pos++ {
			p := &types.Proposal{
				Lane:     types.NodeID(l),
				Position: types.Pos(pos),
				Parent:   parent,
				Batch:    types.NewSyntheticBatch(types.NodeID(l), uint64(pos), 10, 5120, 0, 0),
			}
			store.Put(p)
			parent = p.Digest()
			tips[l] = types.TipRef{Lane: types.NodeID(l), Position: types.Pos(pos), Digest: parent}
		}
	}
	return store, tips
}

func cutAt(tips []types.TipRef, positions []types.Pos, store *lane.Store) types.Cut {
	cut := types.NewEmptyCut(len(tips))
	for i, pos := range positions {
		if pos == 0 {
			continue
		}
		// Walk back from the tip to the requested position.
		props, _ := store.ChainSuffix(types.NodeID(i), 1, tips[i].Position, tips[i].Digest)
		p := props[pos-1]
		cut.Tips[i] = types.TipRef{Lane: types.NodeID(i), Position: pos, Digest: p.Digest()}
	}
	return cut
}

func TestExecuteInSlotOrder(t *testing.T) {
	store, tips := buildLanes(4, 3)
	o := NewOrderer(types.NewCommittee(4), store)

	// Decision for slot 2 arrives first: nothing executes.
	cut2 := cutAt(tips, []types.Pos{2, 2, 2, 2}, store)
	if err := o.AddDecision(2, &types.ConsensusProposal{Slot: 2, Cut: cut2}); err != nil {
		t.Fatal(err)
	}
	entries, missing, executed := o.TryExecute()
	if len(entries) != 0 || len(missing) != 0 || len(executed) != 0 {
		t.Fatalf("slot 2 executed before slot 1: %v %v %v", entries, missing, executed)
	}

	// Slot 1 arrives: both execute in order.
	cut1 := cutAt(tips, []types.Pos{1, 1, 1, 1}, store)
	if err := o.AddDecision(1, &types.ConsensusProposal{Slot: 1, Cut: cut1}); err != nil {
		t.Fatal(err)
	}
	entries, missing, executed = o.TryExecute()
	if len(missing) != 0 || len(executed) != 2 {
		t.Fatalf("missing=%v executed=%v", missing, executed)
	}
	// Slot 1 contributes 4 entries (pos 1 per lane), slot 2 another 4.
	if len(entries) != 8 {
		t.Fatalf("entries = %d", len(entries))
	}
	for i, e := range entries {
		if i < 4 && (e.Slot != 1 || e.Position != 1) {
			t.Fatalf("entry %d = %+v", i, e)
		}
		if i >= 4 && (e.Slot != 2 || e.Position != 2) {
			t.Fatalf("entry %d = %+v", i, e)
		}
	}
}

// TestZipOrder: within a slot, entries are ordered by (position, lane).
func TestZipOrder(t *testing.T) {
	store, tips := buildLanes(3, 4) // n=3 is not 3f+1 but the orderer is agnostic
	o := NewOrderer(types.NewCommittee(4), store)
	cut := types.NewEmptyCut(3)
	// Lane 0 advances to 3, lane 1 to 1, lane 2 to 2.
	for i, pos := range []types.Pos{3, 1, 2} {
		props, _ := store.ChainSuffix(types.NodeID(i), 1, tips[i].Position, tips[i].Digest)
		cut.Tips[i] = types.TipRef{Lane: types.NodeID(i), Position: pos, Digest: props[pos-1].Digest()}
	}
	o.AddDecision(1, &types.ConsensusProposal{Slot: 1, Cut: cut})
	entries, _, _ := o.TryExecute()
	var got [][2]int
	for _, e := range entries {
		got = append(got, [2]int{int(e.Position), int(e.Lane)})
	}
	want := [][2]int{{1, 0}, {1, 1}, {1, 2}, {2, 0}, {2, 2}, {3, 0}}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("zip order: got %v, want %v", got, want)
		}
	}
}

// TestNonMonotonicCutsIgnored (§5.4): a later slot whose tip is at or
// below the committed frontier contributes nothing from that lane.
func TestNonMonotonicCutsIgnored(t *testing.T) {
	store, tips := buildLanes(4, 3)
	o := NewOrderer(types.NewCommittee(4), store)
	o.AddDecision(1, &types.ConsensusProposal{Slot: 1, Cut: cutAt(tips, []types.Pos{3, 3, 3, 3}, store)})
	if _, _, executed := o.TryExecute(); len(executed) != 1 {
		t.Fatal("slot 1 must execute")
	}
	// Slot 2 proposes older tips (2 < 3 committed): all ignored.
	o.AddDecision(2, &types.ConsensusProposal{Slot: 2, Cut: cutAt(tips, []types.Pos{2, 2, 2, 2}, store)})
	entries, missing, executed := o.TryExecute()
	if len(executed) != 1 || len(entries) != 0 || len(missing) != 0 {
		t.Fatalf("non-monotonic cut mishandled: %v %v %v", entries, missing, executed)
	}
	if o.LastCommit(0) != 3 {
		t.Fatalf("frontier regressed to %d", o.LastCommit(0))
	}
}

func TestMissingDataReported(t *testing.T) {
	store, tips := buildLanes(4, 5)
	// A fresh store missing lane 2 entirely.
	gap := lane.NewStore()
	for l := 0; l < 4; l++ {
		if l == 2 {
			continue
		}
		props, _ := store.ChainSuffix(types.NodeID(l), 1, 5, tips[l].Digest)
		for _, p := range props {
			gap.Put(p)
		}
	}
	o := NewOrderer(types.NewCommittee(4), gap)
	o.AddDecision(1, &types.ConsensusProposal{Slot: 1, Cut: cutAt(tips, []types.Pos{5, 5, 5, 5}, store)})
	entries, missing, executed := o.TryExecute()
	if len(entries) != 0 || len(executed) != 0 {
		t.Fatal("must not execute with missing data")
	}
	if len(missing) != 1 || missing[0].Lane != 2 || missing[0].From != 1 || missing[0].To != 5 {
		t.Fatalf("missing = %+v", missing)
	}
	// Catch-up ranges coalesce across pending slots.
	o.AddDecision(2, &types.ConsensusProposal{Slot: 2, Cut: cutAt(tips, []types.Pos{5, 5, 5, 5}, store)})
	ranges := o.CatchupRanges()
	if len(ranges) != 1 || ranges[0].Lane != 2 || ranges[0].To != 5 {
		t.Fatalf("catchup = %+v", ranges)
	}
	// Supplying the data unblocks both slots.
	props, _ := store.ChainSuffix(2, 1, 5, tips[2].Digest)
	for _, p := range props {
		gap.Put(p)
	}
	_, missing, executed = o.TryExecute()
	if len(missing) != 0 || len(executed) != 2 {
		t.Fatalf("after fill: missing=%v executed=%v", missing, executed)
	}
}

func TestConflictingDecisionRejected(t *testing.T) {
	store, tips := buildLanes(4, 2)
	o := NewOrderer(types.NewCommittee(4), store)
	o.AddDecision(3, &types.ConsensusProposal{Slot: 3, Cut: cutAt(tips, []types.Pos{1, 1, 1, 1}, store)})
	err := o.AddDecision(3, &types.ConsensusProposal{Slot: 3, Cut: cutAt(tips, []types.Pos{2, 2, 2, 2}, store)})
	if err == nil {
		t.Fatal("conflicting decision for one slot accepted")
	}
	// An identical duplicate is fine.
	if err := o.AddDecision(3, &types.ConsensusProposal{Slot: 3, Cut: cutAt(tips, []types.Pos{1, 1, 1, 1}, store)}); err != nil {
		t.Fatal(err)
	}
}

// TestDecisionOrderIndependence: the total order is a deterministic
// function of the decided cuts, regardless of decision arrival order.
func TestDecisionOrderIndependence(t *testing.T) {
	store, tips := buildLanes(4, 8)
	slots := make([]*types.ConsensusProposal, 8)
	for s := 1; s <= 8; s++ {
		pos := types.Pos(s)
		slots[s-1] = &types.ConsensusProposal{
			Slot: types.Slot(s),
			Cut:  cutAt(tips, []types.Pos{pos, pos, pos, pos}, store),
		}
	}
	run := func(perm []int) []Entry {
		o := NewOrderer(types.NewCommittee(4), store)
		var all []Entry
		for _, idx := range perm {
			o.AddDecision(slots[idx].Slot, slots[idx])
			entries, _, _ := o.TryExecute()
			all = append(all, entries...)
		}
		return all
	}
	base := run([]int{0, 1, 2, 3, 4, 5, 6, 7})
	rng := rand.New(rand.NewPCG(1, 1))
	for trial := 0; trial < 10; trial++ {
		perm := rng.Perm(8)
		got := run(perm)
		if len(got) != len(base) {
			t.Fatalf("perm %v: %d entries vs %d", perm, len(got), len(base))
		}
		for i := range base {
			if got[i].Digest != base[i].Digest || got[i].Slot != base[i].Slot {
				t.Fatalf("perm %v: order diverged at %d", perm, i)
			}
		}
	}
}
