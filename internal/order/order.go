// Package order turns committed consensus cuts into a single total order
// of data proposals (§5.2.2 "Processing committed cuts" and "Creating a
// Total Order"): slots execute strictly in slot order; within a slot, each
// lane contributes the proposals between its last committed position and
// the committed tip, and the lanes are interleaved by the deterministic
// zip (position, then lane id). Non-monotonic cuts (§5.4) are filtered by
// ignoring tips at or below a lane's committed frontier; fork siblings
// below the frontier become garbage (§A.4).
package order

import (
	"fmt"
	"sort"

	"repro/internal/types"
)

// DataSource supplies stored proposals (satisfied by lane.Store).
type DataSource interface {
	// ChainSuffix returns lane proposals for positions [from, to] walking
	// parent links back from (to, tipDigest); ok is false if incomplete,
	// in which case the returned slice covers the top of the range only.
	ChainSuffix(lane types.NodeID, from, to types.Pos, tipDigest types.Digest) ([]*types.Proposal, bool)
}

// Entry is one totally-ordered data proposal.
type Entry struct {
	Slot     types.Slot
	Lane     types.NodeID
	Position types.Pos
	Batch    *types.Batch
	Digest   types.Digest
}

// Missing describes lane data required before a slot can execute; the
// fetch layer turns these into SyncRequests aimed at the tip's certifiers.
type Missing struct {
	Lane      types.NodeID
	From, To  types.Pos
	TipDigest types.Digest
	Tip       types.TipRef
	Slot      types.Slot
}

// Orderer executes committed slots in order.
type Orderer struct {
	committee types.Committee
	src       DataSource

	pendingSlots map[types.Slot]*types.ConsensusProposal
	nextExec     types.Slot
	lastCommit   []types.Pos
	lastDigest   []types.Digest
}

// NewOrderer builds an orderer starting at slot 1 with empty lanes.
func NewOrderer(committee types.Committee, src DataSource) *Orderer {
	return &Orderer{
		committee:    committee,
		src:          src,
		pendingSlots: make(map[types.Slot]*types.ConsensusProposal),
		nextExec:     1,
		lastCommit:   make([]types.Pos, committee.Size()),
		lastDigest:   make([]types.Digest, committee.Size()),
	}
}

// LastCommit returns the committed frontier position for a lane.
func (o *Orderer) LastCommit(lane types.NodeID) types.Pos { return o.lastCommit[lane] }

// NextExec returns the next slot awaiting execution.
func (o *Orderer) NextExec() types.Slot { return o.nextExec }

// PendingSlot reports whether a decided-but-unexecuted proposal exists
// for slot s.
func (o *Orderer) PendingSlot(s types.Slot) bool {
	_, ok := o.pendingSlots[s]
	return ok
}

// AddDecision records a committed slot. Decisions may arrive in any order
// and at most once per slot (consensus safety guarantees one value).
func (o *Orderer) AddDecision(s types.Slot, p *types.ConsensusProposal) error {
	if s == 0 {
		return fmt.Errorf("order: slot 0 invalid")
	}
	if s < o.nextExec {
		return nil // stale duplicate of an executed slot
	}
	if prev, ok := o.pendingSlots[s]; ok {
		if prev.Cut.Digest() != p.Cut.Digest() {
			return fmt.Errorf("order: conflicting decisions for slot %d", s)
		}
		return nil
	}
	o.pendingSlots[s] = p
	return nil
}

// TryExecute executes as many consecutive slots as data availability
// allows, returning the newly ordered entries, the data still missing for
// the first blocked slot (empty when blocked only on a missing decision),
// and the slots executed.
func (o *Orderer) TryExecute() (entries []Entry, missing []Missing, executed []types.Slot) {
	for {
		prop, ok := o.pendingSlots[o.nextExec]
		if !ok {
			return entries, nil, executed
		}
		slotEntries, slotMissing := o.executeSlot(o.nextExec, prop)
		if len(slotMissing) > 0 {
			return entries, slotMissing, executed
		}
		entries = append(entries, slotEntries...)
		executed = append(executed, o.nextExec)
		delete(o.pendingSlots, o.nextExec)
		o.nextExec++
	}
}

// executeSlot orders one slot's cut, or reports what data is missing.
func (o *Orderer) executeSlot(s types.Slot, prop *types.ConsensusProposal) ([]Entry, []Missing) {
	type laneChain struct {
		lane  types.NodeID
		props []*types.Proposal
	}
	var chains []laneChain
	var missing []Missing

	for _, tip := range prop.Cut.Tips {
		last := o.lastCommit[tip.Lane]
		if tip.Position <= last {
			continue // old tip in a non-monotonic cut: ignore (§5.4)
		}
		from := last + 1
		props, complete := o.src.ChainSuffix(tip.Lane, from, tip.Position, tip.Digest)
		if !complete {
			// Determine the exact missing sub-range: the suffix returned
			// covers [to-len+1, to]; everything below is absent.
			haveFrom := tip.Position + 1
			var anchor types.Digest
			if len(props) > 0 {
				haveFrom = props[0].Position
				anchor = props[0].Parent
			} else {
				anchor = tip.Digest
			}
			m := Missing{
				Lane: tip.Lane, From: from, To: haveFrom - 1,
				TipDigest: anchor, Tip: tip, Slot: s,
			}
			if len(props) == 0 {
				m.To = tip.Position
				m.TipDigest = tip.Digest
			}
			missing = append(missing, m)
			continue
		}
		chains = append(chains, laneChain{lane: tip.Lane, props: props})
	}
	if len(missing) > 0 {
		return nil, missing
	}

	// Deterministic zip: ascending (position, lane).
	var entries []Entry
	idx := make([]int, len(chains))
	for {
		best := -1
		for i, c := range chains {
			if idx[i] >= len(c.props) {
				continue
			}
			if best < 0 {
				best = i
				continue
			}
			pi, pb := c.props[idx[i]], chains[best].props[idx[best]]
			if pi.Position < pb.Position || (pi.Position == pb.Position && c.lane < chains[best].lane) {
				best = i
			}
		}
		if best < 0 {
			break
		}
		p := chains[best].props[idx[best]]
		idx[best]++
		entries = append(entries, Entry{
			Slot: s, Lane: p.Lane, Position: p.Position, Batch: p.Batch, Digest: p.Digest(),
		})
	}

	// Advance frontiers.
	for _, c := range chains {
		tipProp := c.props[len(c.props)-1]
		o.lastCommit[c.lane] = tipProp.Position
		o.lastDigest[c.lane] = tipProp.Digest()
	}
	return entries, nil
}

// CatchupRanges coalesces the data still needed across ALL decided-but-
// unexecuted slots into at most one range per lane, anchored at the
// highest committed tip (§5.2.2: a tip transitively references its whole
// history, so one round trip fetches an arbitrarily long backlog — the
// property that makes recovery seamless; fetching per slot would cost one
// round trip per slot of backlog).
func (o *Orderer) CatchupRanges() []Missing {
	type bestTip struct {
		tip  types.TipRef
		slot types.Slot
	}
	// Slots (and, below, lanes) are visited in ascending order — never
	// map order: on position ties the chosen anchor slot, and the order
	// of the emitted ranges (which become sends), must be deterministic
	// functions of the event history for fixed-seed simulations to stay
	// reproducible.
	slots := make([]types.Slot, 0, len(o.pendingSlots))
	for s := range o.pendingSlots {
		slots = append(slots, s)
	}
	sort.Slice(slots, func(i, j int) bool { return slots[i] < slots[j] })
	best := make(map[types.NodeID]bestTip)
	for _, s := range slots {
		for _, tip := range o.pendingSlots[s].Cut.Tips {
			if tip.Position <= o.lastCommit[tip.Lane] {
				continue
			}
			if b, ok := best[tip.Lane]; !ok || tip.Position > b.tip.Position {
				best[tip.Lane] = bestTip{tip: tip, slot: s}
			}
		}
	}
	var out []Missing
	for l := types.NodeID(0); int(l) < len(o.lastCommit); l++ {
		b, ok := best[l]
		if !ok {
			continue
		}
		from := o.lastCommit[l] + 1
		props, complete := o.src.ChainSuffix(l, from, b.tip.Position, b.tip.Digest)
		if complete {
			continue // locally present: nothing to fetch for this lane
		}
		// The store holds the top of the range; only the part below the
		// lowest held proposal is missing.
		m := Missing{Lane: l, From: from, To: b.tip.Position, TipDigest: b.tip.Digest, Tip: b.tip, Slot: b.slot}
		if len(props) > 0 {
			m.To = props[0].Position - 1
			m.TipDigest = props[0].Parent
		}
		out = append(out, m)
	}
	return out
}

// Frontier returns a copy of the per-lane committed positions.
func (o *Orderer) Frontier() []types.Pos {
	out := make([]types.Pos, len(o.lastCommit))
	copy(out, o.lastCommit)
	return out
}

// FrontierDigest returns the digest committed at a lane's frontier.
func (o *Orderer) FrontierDigest(lane types.NodeID) types.Digest { return o.lastDigest[lane] }

// FrontierDigests returns a copy of the per-lane frontier digests.
func (o *Orderer) FrontierDigests() []types.Digest {
	out := make([]types.Digest, len(o.lastDigest))
	copy(out, o.lastDigest)
	return out
}

// Restore resets the execution frontier from a journal snapshot (crash
// recovery): slots below nextExec count as executed and never re-emit,
// and per-lane committed positions/digests resume from the recorded
// frontier. Must be called before any decision is added.
func (o *Orderer) Restore(nextExec types.Slot, frontier []types.Pos, digests []types.Digest) {
	if nextExec > o.nextExec {
		o.nextExec = nextExec
	}
	if len(frontier) == len(o.lastCommit) {
		copy(o.lastCommit, frontier)
	}
	if len(digests) == len(o.lastDigest) {
		copy(o.lastDigest, digests)
	}
}

// InstallSnapshot jumps the execution frontier forward to a verified
// snapshot's frontier (state sync): slots below next will never execute
// locally — their effect is already in the installed state — so pending
// decisions beneath the frontier are discarded. Unlike Restore it may be
// called mid-run, after decisions have been added. A frontier at or
// below the current one is a no-op (the local replay already passed it).
func (o *Orderer) InstallSnapshot(next types.Slot, frontier []types.Pos, digests []types.Digest) {
	if next <= o.nextExec {
		return
	}
	o.nextExec = next
	if len(frontier) == len(o.lastCommit) {
		copy(o.lastCommit, frontier)
	}
	if len(digests) == len(o.lastDigest) {
		copy(o.lastDigest, digests)
	}
	// Purge pending decisions below the frontier in sorted order (the
	// deletion order must not depend on map layout — detrange).
	stale := make([]types.Slot, 0, len(o.pendingSlots))
	for s := range o.pendingSlots {
		if s < next {
			stale = append(stale, s)
		}
	}
	sort.Slice(stale, func(i, j int) bool { return stale[i] < stale[j] })
	for _, s := range stale {
		delete(o.pendingSlots, s)
	}
}
