package adversary

import (
	"time"

	"repro/internal/runtime"
	"repro/internal/types"
)

// forkSeqBit marks equivocation-fork batches: their (origin, seq) must
// differ from every honest batch or the fork would hash identically.
const forkSeqBit = uint64(1) << 63

// --- lane equivocation (§A.4) ---

// equivocate forks this replica's own lane: every second car broadcast is
// split — half the peers receive the honest proposal, the other half a
// conflicting proposal at the same position (same parent link, different
// batch, validly signed). Honest replicas FIFO-vote for whichever fork
// arrives first; at most one fork can certify or commit per position, and
// commit-time fork resolution (§A.4) keeps the total order consistent.
type equivocate struct {
	env *Env
	seq uint64
}

func (b *equivocate) Name() string                              { return "equivocate" }
func (b *equivocate) Init(runtime.Context)                      {}
func (b *equivocate) OnTimer(runtime.Context, runtime.TimerTag) {}

func (b *equivocate) Outbound(ctx runtime.Context, d runtime.Directed) []runtime.Directed {
	p, ok := d.Msg.(*types.Proposal)
	if !ok || !d.Broadcast || p.Lane != b.env.Self || !b.env.Active(ctx.Now()) {
		return pass(d)
	}
	b.seq++
	if b.seq%2 != 0 {
		return pass(d)
	}
	fork := p.Clone()
	fork.Batch = types.NewSyntheticBatch(b.env.Self, p.Batch.Seq|forkSeqBit,
		p.Batch.Count, p.Batch.Bytes, p.Batch.MeanArrival, p.Batch.CreatedAt)
	fork.Sig = b.env.Signer.Sign(fork.SigningBytes())
	out := make([]runtime.Directed, 0, b.env.Committee.Size()-1)
	for _, id := range b.env.Committee.Nodes() {
		if id == b.env.Self {
			continue
		}
		m := d.Msg
		if id%2 == 1 {
			m = fork
		}
		out = append(out, runtime.Directed{To: id, Msg: m})
	}
	return out
}

// --- lane-vote withholding / conflicting votes ---

// laneVotes attacks peer lanes' certification: the replica withholds its
// FIFO lane votes (starving PoAs of one share) or, in the conflict
// variant, answers every proposal with a validly signed vote for a
// fabricated digest — the worst a Byzantine voter can do, since it cannot
// forge other replicas' shares. With <= f such voters every honest lane
// still certifies from the remaining n-f honest votes.
type laneVotes struct {
	env      *Env
	conflict bool
}

func (b *laneVotes) Name() string {
	if b.conflict {
		return "conflict-votes"
	}
	return "withhold-votes"
}
func (b *laneVotes) Init(runtime.Context)                      {}
func (b *laneVotes) OnTimer(runtime.Context, runtime.TimerTag) {}

func (b *laneVotes) Outbound(ctx runtime.Context, d runtime.Directed) []runtime.Directed {
	v, ok := d.Msg.(*types.Vote)
	if !ok || !b.env.Active(ctx.Now()) {
		return pass(d)
	}
	if !b.conflict {
		return nil // withhold
	}
	cv := &types.Vote{Lane: v.Lane, Position: v.Position, Digest: v.Digest, Voter: v.Voter}
	cv.Digest[0] ^= 0xFF // vote for a digest nobody proposed
	cv.Sig = b.env.Signer.Sign(cv.SigningBytes())
	return replace(d, cv)
}

// --- bogus / stale sync replies (§5.2.2) ---

// bogusSync corrupts this replica's sync serving: requests it is asked to
// answer are met (round-robin) with silence, a stale strict prefix of the
// requested range, or a chain whose newest proposal was swapped for a
// forgery whose signature cannot verify. Requesters must detect each case
// and recover by re-targeting the fetch at another holder — the paper's
// non-blocking sync never trusts a single responder.
type bogusSync struct {
	env *Env
	n   uint64
}

func (b *bogusSync) Name() string                              { return "bogus-sync" }
func (b *bogusSync) Init(runtime.Context)                      {}
func (b *bogusSync) OnTimer(runtime.Context, runtime.TimerTag) {}

func (b *bogusSync) Outbound(ctx runtime.Context, d runtime.Directed) []runtime.Directed {
	rep, ok := d.Msg.(*types.SyncReply)
	if !ok || !b.env.Active(ctx.Now()) {
		return pass(d)
	}
	b.n++
	switch b.n % 3 {
	case 0:
		return nil // silent: the requester's retry rotates targets
	case 1:
		// Stale: serve a strict prefix and claim that is all there is.
		if len(rep.Proposals) < 2 {
			return nil
		}
		stale := &types.SyncReply{
			Lane:      rep.Lane,
			Proposals: rep.Proposals[:len(rep.Proposals)/2],
			Complete:  false,
		}
		return replace(d, stale)
	default:
		// Bogus: swap the newest proposal for a forgery (same position,
		// different batch, stale signature — it cannot verify).
		last := rep.Proposals[len(rep.Proposals)-1]
		forged := last.Clone()
		forged.Batch = types.NewSyntheticBatch(last.Lane, last.Batch.Seq|forkSeqBit,
			last.Batch.Count, last.Batch.Bytes, last.Batch.MeanArrival, last.Batch.CreatedAt)
		props := make([]*types.Proposal, len(rep.Proposals))
		copy(props, rep.Proposals)
		props[len(props)-1] = forged
		return replace(d, &types.SyncReply{Lane: rep.Lane, Proposals: props, Complete: rep.Complete})
	}
}

// --- tip suppression in cuts (§B.1) ---

// suppressTips attacks consensus leadership: whenever this replica leads
// a slot, the cut it broadcasts reports every peer lane at genesis,
// denying their progress. The Prepare is re-signed, so it is structurally
// valid — but honest replicas vote for the suppressed digest while the
// adversary's own engine awaits votes for the honest one, so its tenure
// times out and the next (honest) leader's cut commits the lanes' real
// tips. The cost is bounded by the view timeout per adversary-led slot,
// which is exactly the paper's crash-leader blip shape.
type suppressTips struct {
	env *Env
}

func (b *suppressTips) Name() string                              { return "suppress-tips" }
func (b *suppressTips) Init(runtime.Context)                      {}
func (b *suppressTips) OnTimer(runtime.Context, runtime.TimerTag) {}

func (b *suppressTips) Outbound(ctx runtime.Context, d runtime.Directed) []runtime.Directed {
	prep, ok := d.Msg.(*types.Prepare)
	if !ok || prep.Leader != b.env.Self || !b.env.Active(ctx.Now()) {
		return pass(d)
	}
	tips := make([]types.TipRef, len(prep.Proposal.Cut.Tips))
	for i, t := range prep.Proposal.Cut.Tips {
		if t.Lane == b.env.Self {
			tips[i] = t // keep own lane: pure victim suppression
			continue
		}
		tips[i] = types.TipRef{Lane: t.Lane} // genesis: lane "has nothing"
	}
	mod := &types.Prepare{
		Leader: prep.Leader,
		Proposal: types.ConsensusProposal{
			Slot: prep.Proposal.Slot,
			View: prep.Proposal.View,
			Cut:  types.Cut{Tips: tips},
		},
		Ticket: prep.Ticket,
	}
	mod.Sig = b.env.Signer.Sign(mod.SigningBytes())
	return replace(d, mod)
}

// --- timeout spam (§5.3) ---

// spamTag is the behavior-owned recurring timer.
var spamTag = runtime.TimerTag{Kind: runtime.BehaviorTagBase + 1}

// spamEvery is the spam cadence.
const spamEvery = 250 * time.Millisecond

// timeoutSpam floods the committee with validly signed Timeout complaints
// for the active consensus slots (current and next view), trying to force
// spurious view changes. A single Byzantine complainer is harmless by
// design: honest replicas join a mutiny only at f+1 complaints and form a
// TC only at 2f+1, so <= f spammers can never manufacture either.
type timeoutSpam struct {
	env *Env
}

func (b *timeoutSpam) Name() string { return "timeout-spam" }

func (b *timeoutSpam) Init(ctx runtime.Context) {
	ctx.SetTimer(spamEvery, spamTag)
}

func (b *timeoutSpam) Outbound(ctx runtime.Context, d runtime.Directed) []runtime.Directed {
	return pass(d)
}

func (b *timeoutSpam) OnTimer(ctx runtime.Context, tag runtime.TimerTag) {
	if tag != spamTag {
		return
	}
	ctx.SetTimer(spamEvery, spamTag) // keep the chain alive across windows
	if !b.env.Active(ctx.Now()) {
		return
	}
	eng := b.env.Node.Engine()
	next := b.env.Node.Orderer().NextExec()
	for s := next; s < next+4; s++ {
		v := eng.CurrentView(s)
		for dv := types.View(0); dv < 2; dv++ {
			t := &types.Timeout{Slot: s, View: v + dv, Voter: b.env.Self}
			t.Sig = b.env.Signer.Sign(t.SigningBytes())
			ctx.Broadcast(t)
		}
	}
}
