package adversary_test

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/sim"
	"repro/internal/types"
)

// TestBehaviorsSafeAndLive runs every shipped behavior as a windowed
// fault on the deterministic simulator and asserts the three properties
// the CI fault matrix enforces: no contradictory commits (interceptor-
// observed), committed throughput within a bound of the fault-free run,
// and hangover ~ 0 past the behavior window.
func TestBehaviorsSafeAndLive(t *testing.T) {
	for _, name := range harness.AdversaryNames() {
		t.Run(name, func(t *testing.T) {
			r := harness.RunByzantine(harness.ByzantineConfig{
				Behavior: name, Load: 10e3, Seed: 3,
				From: 3 * time.Second, To: 9 * time.Second,
				Duration:       14 * time.Second,
				CompanionCrash: name == "bogus-sync",
			})
			if r.Violation != "" {
				t.Fatalf("safety violation: %s", r.Violation)
			}
			if float64(r.Total) < 0.9*float64(r.FaultFreeTotal) {
				t.Fatalf("liveness: committed %d vs fault-free %d", r.Total, r.FaultFreeTotal)
			}
			if r.Hangover > 2*time.Second {
				t.Fatalf("hangover %v past the behavior window", r.Hangover)
			}
			t.Logf("total=%d/%d hangover=%v peak=%v", r.Total, r.FaultFreeTotal, r.Hangover, r.PeakLat)
		})
	}
}

// TestBehaviorsDeterministic: behaviors must derive all nondeterminism
// from the engine (ctx.Rand, event order) — two runs from one seed must
// produce identical outcomes, or the simulator's reproducibility promise
// is broken for adversarial schedules.
func TestBehaviorsDeterministic(t *testing.T) {
	run := func() harness.ByzantineResult {
		return harness.RunByzantine(harness.ByzantineConfig{
			Behavior: "equivocate", Load: 8e3, Seed: 17,
			From: 2 * time.Second, To: 6 * time.Second, Duration: 10 * time.Second,
		})
	}
	a, b := run(), run()
	if a.Total != b.Total || a.Violation != b.Violation || a.Hangover != b.Hangover {
		t.Fatalf("nondeterministic adversarial run: %+v vs %+v", a, b)
	}
	if len(a.Series) != len(b.Series) {
		t.Fatalf("series length differs: %d vs %d", len(a.Series), len(b.Series))
	}
	for i := range a.Series {
		if a.Series[i] != b.Series[i] {
			t.Fatalf("series differs at %d: %+v vs %+v", i, a.Series[i], b.Series[i])
		}
	}
}

// TestEquivocatingLanePenalizedAlone is the §B.1 interceptor test: an
// equivocating lane leader must never cause two honest replicas to
// commit contradictory batches at the same (lane, position), and the
// reputation mechanism must penalize only the equivocator's lane — the
// forks it sends to half the committee force critical-path tip syncs for
// its lane, each of which costs standing, while honest lanes stay clean.
func TestEquivocatingLanePenalizedAlone(t *testing.T) {
	const n, adv = 4, types.NodeID(2)
	faults := (&sim.FaultSchedule{}).AddBehavior(adv, "equivocate", 2*time.Second, 0)
	ci := harness.NewCommitInterceptor()
	c := harness.Build(harness.ClusterConfig{
		System: harness.Autobahn, N: n, Seed: 11, VerifySigs: true,
		Reputation: true, Faults: faults, WrapSink: ci.Wrap,
	})
	c.RunLoad(8e3, 0, 10*time.Second, 14*time.Second)

	if v := ci.Violation(); v != "" {
		t.Fatalf("safety violation: %s", v)
	}
	// Honest lanes carry 3/4 of the load and must commit in full.
	if c.Recorder.Total() < 8000*10*3/4 {
		t.Fatalf("committed only %d txs under an equivocating lane", c.Recorder.Total())
	}

	// Reputation: somewhere in the committee the equivocator's lane lost
	// standing (a replica served a critical-path tip sync for it), and no
	// honest lane lost any, anywhere.
	penalized := false
	for _, id := range []types.NodeID{0, 1, 3} {
		nd := nodeOf(t, c, id)
		repAdv := nd.Reputation(adv)
		for _, h := range []types.NodeID{0, 1, 3} {
			if repH := nd.Reputation(h); repH < 8 { // repMax
				t.Fatalf("honest lane %s penalized at replica %s (rep=%d)", h, id, repH)
			} else if repAdv < repH {
				penalized = true
			}
		}
	}
	if !penalized {
		t.Fatal("equivocating lane was never penalized at any honest replica")
	}
}

// TestBehaviorWindowInactive: outside its window a wrapped replica is
// byte-for-byte honest — the run must match the unwrapped deployment
// exactly (the wrapper may intercept, but the behavior passes through).
func TestBehaviorWindowInactive(t *testing.T) {
	run := func(withWrapper bool) (uint64, time.Duration) {
		var faults *sim.FaultSchedule
		if withWrapper {
			// Window opens long after the run ends.
			faults = (&sim.FaultSchedule{}).AddBehavior(2, "equivocate", time.Hour, 0)
		}
		c := harness.Build(harness.ClusterConfig{System: harness.Autobahn, N: 4, Seed: 5, Faults: faults})
		c.RunLoad(5e3, 0, 5*time.Second, 8*time.Second)
		return c.Recorder.Total(), c.Recorder.MeanLatency(time.Second, 4*time.Second)
	}
	t1, l1 := run(false)
	t2, l2 := run(true)
	if t1 != t2 || l1 != l2 {
		t.Fatalf("dormant wrapper changed the run: %d/%v vs %d/%v", t1, l1, t2, l2)
	}
}

// nodeOf unwraps a cluster replica to its honest core node.
func nodeOf(t *testing.T, c *harness.Cluster, id types.NodeID) *core.Node {
	t.Helper()
	switch nd := c.Nodes[id].(type) {
	case *core.Node:
		return nd
	default:
		t.Fatalf("replica %s is not a core node: %T", id, nd)
		return nil
	}
}
