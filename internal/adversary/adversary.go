// Package adversary implements Byzantine replica behaviors for both of
// this repository's runtimes: the deterministic discrete-event simulator
// (internal/sim) and the real-time transports (internal/transport).
//
// A Byzantine replica is modeled as an honest core.Node wrapped by a
// runtime.Behavior (Wrap): the wrapper intercepts the node's outbound
// traffic and lets the behavior suppress, rewrite or equivocate it, and
// inject adversarial messages of its own — all signed with the replica's
// own key, which is exactly the power a real Byzantine replica has. The
// honest paths are reused, never forked, so every adversary stays in sync
// with protocol changes by construction.
//
// The shipped behaviors (New/Names) cover the attack classes the paper's
// seamlessness and safety arguments must survive: lane equivocation
// (§A.4), lane-vote withholding and conflicting votes, bogus/stale sync
// replies (§5.2.2 non-blocking sync), tip suppression in consensus cuts
// (§B.1 motivates the reputation defense), and view-change timeout spam
// (§5.3).
package adversary

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/crypto"
	"repro/internal/runtime"
	"repro/internal/types"
)

// Env is the environment a behavior acts in: the committee, the wrapped
// replica's identity and signing key, read access to the honest node, and
// the behavior's activity window.
type Env struct {
	Committee types.Committee
	Self      types.NodeID
	// Signer holds the replica's own key — a Byzantine replica signs
	// whatever it likes with it (and nothing with anyone else's).
	Signer crypto.Signer
	// Node is the wrapped honest replica. Behaviors may inspect its state
	// (engine views, lane tips) from event context only: the wrapper is
	// single-threaded, like every runtime.Protocol.
	Node *core.Node
	// From/To bound the behavior's activity window (half-open, measured
	// on ctx.Now). To <= 0 means "no end".
	From, To time.Duration
}

// Active reports whether the behavior misbehaves at time now; outside the
// window the replica acts honestly.
func (e *Env) Active(now time.Duration) bool {
	return now >= e.From && (e.To <= 0 || now < e.To)
}

// pass is the identity Outbound result.
func pass(d runtime.Directed) []runtime.Directed { return []runtime.Directed{d} }

// replace swaps the message of a transmission, preserving its addressing.
func replace(d runtime.Directed, m types.Message) []runtime.Directed {
	return []runtime.Directed{{To: d.To, Broadcast: d.Broadcast, Msg: m}}
}

// Node wraps an honest Autobahn replica with a Byzantine behavior. It
// implements runtime.Protocol (and the pre-verification hook) so it can
// be dropped into any runtime where a *core.Node fits; it deliberately
// does NOT implement runtime.Sharder — adversaries run single-threaded,
// so behaviors never race the state they inspect.
type Node struct {
	inner *core.Node
	b     runtime.Behavior
	ictx  interceptCtx
}

// Wrap builds the Byzantine wrapper.
func Wrap(inner *core.Node, b runtime.Behavior) *Node {
	n := &Node{inner: inner, b: b}
	n.ictx.a = n
	return n
}

// Inner exposes the wrapped honest node (tests and harness inspection).
func (a *Node) Inner() *core.Node { return a.inner }

// Behavior exposes the wrapped behavior's name.
func (a *Node) Behavior() string { return a.b.Name() }

var (
	_ runtime.Protocol    = (*Node)(nil)
	_ runtime.PreVerifier = (*Node)(nil)
	_ runtime.Flusher     = (*Node)(nil)
)

// Init initializes the honest node (through the intercepting context) and
// then the behavior (raw context: its sends are already adversarial and
// must not be re-filtered).
func (a *Node) Init(ctx runtime.Context) {
	a.inner.Init(a.enter(ctx))
	a.b.Init(ctx)
}

// OnMessage delivers through the honest paths, intercepting replies.
func (a *Node) OnMessage(ctx runtime.Context, from types.NodeID, m types.Message) {
	a.inner.OnMessage(a.enter(ctx), from, m)
}

// OnClientBatch feeds the honest mempool→lane path, intercepting the
// resulting car broadcast (where lane equivocation happens).
func (a *Node) OnClientBatch(ctx runtime.Context, b *types.Batch) {
	a.inner.OnClientBatch(a.enter(ctx), b)
}

// OnTimer routes behavior-owned tags (Kind >= runtime.BehaviorTagBase) to
// the behavior and everything else to the honest node.
func (a *Node) OnTimer(ctx runtime.Context, tag runtime.TimerTag) {
	if tag.Kind >= runtime.BehaviorTagBase {
		a.b.OnTimer(ctx, tag)
		return
	}
	a.inner.OnTimer(a.enter(ctx), tag)
}

// PreVerify delegates inbound signature checking to the honest node (an
// adversary still refuses forged inputs: accepting them would only let
// other Byzantine replicas spend its voice).
func (a *Node) PreVerify(from types.NodeID, m types.Message) error {
	return a.inner.PreVerify(from, m)
}

// Flush drives the honest node's group-commit barrier; gated sends
// released by it pass through the behavior like any other send.
func (a *Node) Flush(ctx runtime.Context) {
	a.inner.Flush(a.enter(ctx))
}

// enter installs ctx behind the intercepting context for one event.
func (a *Node) enter(ctx runtime.Context) runtime.Context {
	a.ictx.Context = ctx
	return &a.ictx
}

// emit runs one honest transmission through the behavior and performs
// whatever it returns, on the raw context.
func (a *Node) emit(raw runtime.Context, d runtime.Directed) {
	for _, out := range a.b.Outbound(raw, d) {
		if out.Broadcast {
			raw.Broadcast(out.Msg)
		} else {
			raw.Send(out.To, out.Msg)
		}
	}
}

// interceptCtx is the runtime.Context handed to the honest node: sends
// and broadcasts detour through the behavior, everything else passes.
type interceptCtx struct {
	runtime.Context
	a *Node
}

func (c *interceptCtx) Send(to types.NodeID, m types.Message) {
	c.a.emit(c.Context, runtime.Directed{To: to, Msg: m})
}

func (c *interceptCtx) Broadcast(m types.Message) {
	c.a.emit(c.Context, runtime.Directed{Broadcast: true, Msg: m})
}

// Names lists the shipped behaviors in reporting order.
func Names() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// New builds a shipped behavior by name. The environment must name the
// wrapped node's committee, identity and signer; the node pointer may be
// filled in after construction via Wrap helpers, but must be set before
// the runtime starts for behaviors that inspect protocol state.
func New(name string, env *Env) (runtime.Behavior, error) {
	mk, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("adversary: unknown behavior %q (known: %v)", name, Names())
	}
	return mk(env), nil
}

var registry = map[string]func(*Env) runtime.Behavior{
	"equivocate":     func(e *Env) runtime.Behavior { return &equivocate{env: e} },
	"withhold-votes": func(e *Env) runtime.Behavior { return &laneVotes{env: e} },
	"conflict-votes": func(e *Env) runtime.Behavior { return &laneVotes{env: e, conflict: true} },
	"bogus-sync":     func(e *Env) runtime.Behavior { return &bogusSync{env: e} },
	"suppress-tips":  func(e *Env) runtime.Behavior { return &suppressTips{env: e} },
	"timeout-spam":   func(e *Env) runtime.Behavior { return &timeoutSpam{env: e} },
}

// WrapNode is the one-call builder used by cluster assembly: it wraps an
// honest node with the named behavior. The window [from, to) bounds when
// the behavior misbehaves; to <= 0 means "until the run ends".
func WrapNode(inner *core.Node, committee types.Committee, self types.NodeID, signer crypto.Signer, name string, from, to time.Duration) (*Node, error) {
	env := &Env{Committee: committee, Self: self, Signer: signer, Node: inner, From: from, To: to}
	b, err := New(name, env)
	if err != nil {
		return nil, err
	}
	return Wrap(inner, b), nil
}
