package consensus

import (
	"testing"
	"time"

	"repro/internal/crypto"
	"repro/internal/types"
)

// mockEnv records engine effects and lets tests relay them.
type mockEnv struct {
	self types.NodeID
	now  time.Duration
	sent []struct {
		to  types.NodeID
		msg types.Message
	}
	bcast   []types.Message
	timers  []Timer
	decided map[types.Slot]*types.ConsensusProposal
	fetches []types.TipRef
}

func (m *mockEnv) Send(to types.NodeID, msg types.Message) {
	m.sent = append(m.sent, struct {
		to  types.NodeID
		msg types.Message
	}{to, msg})
}
func (m *mockEnv) Broadcast(msg types.Message) { m.bcast = append(m.bcast, msg) }
func (m *mockEnv) SetTimer(t Timer)            { m.timers = append(m.timers, t) }
func (m *mockEnv) Decide(s types.Slot, p *types.ConsensusProposal, qc *types.CommitQC) {
	if m.decided == nil {
		m.decided = make(map[types.Slot]*types.ConsensusProposal)
	}
	m.decided[s] = p
}
func (m *mockEnv) FetchTipData(leader types.NodeID, tips []types.TipRef, s types.Slot, v types.View) {
	m.fetches = append(m.fetches, tips...)
}
func (m *mockEnv) Now() time.Duration { return m.now }

// mockProvider supplies a configurable lane view.
type mockProvider struct {
	cut     types.Cut
	hasData bool
	newTips int
}

func (p *mockProvider) AssembleCut(bool) types.Cut                { return p.cut }
func (p *mockProvider) HasTipData(types.TipRef) bool              { return p.hasData }
func (p *mockProvider) ValidateCut(types.Cut, types.NodeID) error { return nil }
func (p *mockProvider) NewTipCount([]types.Pos) int               { return p.newTips }
func (p *mockProvider) NextExec() types.Slot                      { return 1 }

// net wires 4 engines through mock envs with manual pumping.
type net struct {
	engines   []*Engine
	envs      []*mockEnv
	providers []*mockProvider
}

func newNet(t *testing.T, mutate func(id types.NodeID, cfg *Config)) *net {
	t.Helper()
	committee := types.NewCommittee(4)
	suite := crypto.NewEd25519Suite(4, 3)
	cut := types.NewEmptyCut(4)
	cut.Tips[0] = types.TipRef{
		Lane: 0, Position: 1, Digest: types.Digest{1},
		// Structurally consistent PoA; share validity is the provider's
		// concern (the mock accepts it).
		Cert: &types.PoA{Lane: 0, Position: 1, Digest: types.Digest{1}},
	}
	n := &net{}
	for i := 0; i < 4; i++ {
		id := types.NodeID(i)
		env := &mockEnv{self: id}
		prov := &mockProvider{cut: cut, hasData: true, newTips: 4}
		cfg := Config{
			Committee:  committee,
			Self:       id,
			Signer:     suite.Signer(id),
			Verifier:   suite.Verifier(),
			VerifySigs: true,
			FastPath:   true,
		}
		if mutate != nil {
			mutate(id, &cfg)
		}
		n.engines = append(n.engines, NewEngine(cfg, env, prov))
		n.envs = append(n.envs, env)
		n.providers = append(n.providers, prov)
	}
	return n
}

// pump relays queued sends/broadcasts until quiescent (skip drops sources).
func (n *net) pump(t *testing.T, skip map[types.NodeID]bool) {
	t.Helper()
	for round := 0; round < 64; round++ {
		progress := false
		for i, env := range n.envs {
			from := types.NodeID(i)
			bcast := env.bcast
			env.bcast = nil
			sent := env.sent
			env.sent = nil
			if skip[from] {
				continue
			}
			for _, m := range bcast {
				progress = true
				for j := range n.engines {
					if j != i {
						n.deliver(types.NodeID(j), from, m)
					}
				}
			}
			for _, sm := range sent {
				progress = true
				if sm.to == from {
					continue
				}
				n.deliver(sm.to, from, sm.msg)
			}
		}
		if !progress {
			return
		}
	}
	t.Fatal("pump did not quiesce")
}

func (n *net) deliver(to, from types.NodeID, m types.Message) {
	e := n.engines[to]
	switch msg := m.(type) {
	case *types.Prepare:
		e.OnPrepare(from, msg)
	case *types.PrepVote:
		e.OnPrepVote(from, msg)
	case *types.Confirm:
		e.OnConfirm(from, msg)
	case *types.ConfirmAck:
		e.OnConfirmAck(from, msg)
	case *types.CommitNotice:
		e.OnCommitNotice(from, msg)
	case *types.Timeout:
		e.OnTimeoutMsg(from, msg)
	}
}

// fireFastTimers fires pending fast-path timers so leaders fall back to
// the Confirm phase when n votes never arrive.
func (n *net) fireFastTimers() {
	for i, env := range n.envs {
		timers := env.timers
		env.timers = nil
		for _, tm := range timers {
			if tm.Kind == TimerFast {
				n.engines[i].OnTimer(tm)
			}
		}
	}
}

func initAll(n *net) {
	for _, e := range n.engines {
		e.Init()
	}
}

func TestSlotCommitsFastPath(t *testing.T) {
	n := newNet(t, nil)
	initAll(n)
	n.pump(t, nil)
	for i, env := range n.envs {
		p, ok := env.decided[1]
		if !ok {
			t.Fatalf("r%d did not decide slot 1", i)
		}
		if p.View != 0 {
			t.Fatalf("r%d decided in view %d", i, p.View)
		}
	}
	// All four decided the same value.
	d := n.envs[0].decided[1].Digest()
	for i := 1; i < 4; i++ {
		if n.envs[i].decided[1].Digest() != d {
			t.Fatalf("r%d decided a different proposal", i)
		}
	}
}

func TestSlotCommitsSlowPath(t *testing.T) {
	n := newNet(t, func(id types.NodeID, cfg *Config) { cfg.FastPath = false })
	initAll(n)
	n.pump(t, nil)
	for i, env := range n.envs {
		if _, ok := env.decided[1]; !ok {
			t.Fatalf("r%d did not decide on the slow path", i)
		}
	}
}

// TestFastPathFallsBackWhenVoteMissing: with one replica silent, the
// leader gets only 2f+1 votes; after the fast timer it confirms.
func TestFastPathFallsBackWhenVoteMissing(t *testing.T) {
	n := newNet(t, nil)
	initAll(n)
	silent := map[types.NodeID]bool{2: true}
	n.pump(t, silent)
	// Nobody decided yet: leader holds 3 votes waiting for the 4th.
	leader := types.NewCommittee(4).Leader(1, 0)
	if _, ok := n.envs[leader].decided[1]; ok {
		t.Fatal("decided fast with a missing vote")
	}
	n.fireFastTimers()
	n.pump(t, silent)
	for i, env := range n.envs {
		if types.NodeID(i) == 2 {
			continue
		}
		if _, ok := env.decided[1]; !ok {
			t.Fatalf("r%d did not decide after fast-path fallback", i)
		}
	}
}

// TestViewChangeCommitsUnderFaultyLeader: the slot-1 leader never speaks;
// view timers expire, a TC forms, the view-1 leader reproposes and all
// correct replicas decide in view 1.
func TestViewChangeCommitsUnderFaultyLeader(t *testing.T) {
	n := newNet(t, nil)
	committee := types.NewCommittee(4)
	badLeader := committee.Leader(1, 0)
	for i, e := range n.engines {
		if types.NodeID(i) != badLeader {
			e.Init()
		}
	}
	skip := map[types.NodeID]bool{badLeader: true}
	n.pump(t, skip)
	// Fire the view-0 timers at the live replicas.
	for i, env := range n.envs {
		if types.NodeID(i) == badLeader {
			continue
		}
		timers := env.timers
		env.timers = nil
		for _, tm := range timers {
			if tm.Kind == TimerView && tm.Slot == 1 && tm.View == 0 {
				n.engines[i].OnTimer(tm)
			}
		}
	}
	n.pump(t, skip)
	n.fireFastTimers() // new leader may need the fallback (only 3 voters)
	n.pump(t, skip)
	for i, env := range n.envs {
		if types.NodeID(i) == badLeader {
			continue
		}
		p, ok := env.decided[1]
		if !ok {
			t.Fatalf("r%d did not decide after view change", i)
		}
		if p.View == 0 {
			t.Fatalf("r%d decided in view 0 under a silent leader", i)
		}
	}
}

// TestPrepareValidation: forged or misdirected Prepares gather no votes.
func TestPrepareValidation(t *testing.T) {
	n := newNet(t, nil)
	committee := types.NewCommittee(4)
	leader := committee.Leader(1, 0)
	e := n.engines[(int(leader)+1)%4] // some non-leader replica
	env := n.envs[(int(leader)+1)%4]

	cut := types.NewEmptyCut(4)
	// Wrong leader identity.
	prep := &types.Prepare{
		Leader:   leader + 1,
		Proposal: types.ConsensusProposal{Slot: 1, View: 0, Cut: cut},
		Ticket:   types.Ticket{Kind: types.TicketCommit},
	}
	e.OnPrepare(leader+1, prep)
	// Right leader, bogus signature.
	prep2 := &types.Prepare{
		Leader:   leader,
		Proposal: types.ConsensusProposal{Slot: 1, View: 0, Cut: cut},
		Ticket:   types.Ticket{Kind: types.TicketCommit},
		Sig:      make([]byte, 64),
	}
	e.OnPrepare(leader, prep2)
	// View 1 without a TC.
	prep3 := &types.Prepare{
		Leader:   committee.Leader(1, 1),
		Proposal: types.ConsensusProposal{Slot: 1, View: 1, Cut: cut},
		Ticket:   types.Ticket{Kind: types.TicketCommit},
	}
	e.OnPrepare(committee.Leader(1, 1), prep3)

	for _, sm := range env.sent {
		if _, isVote := sm.msg.(*types.PrepVote); isVote {
			t.Fatal("invalid Prepare gathered a vote")
		}
	}
}

// TestVoteBlocksOnMissingTipData (§5.5.2): without local tip data the
// replica requests it instead of voting; TipDataArrived releases the vote.
func TestVoteBlocksOnMissingTipData(t *testing.T) {
	n := newNet(t, func(id types.NodeID, cfg *Config) { cfg.OptimisticTips = true })
	committee := types.NewCommittee(4)
	leader := committee.Leader(1, 0)
	voter := types.NodeID((int(leader) + 1) % 4)
	n.providers[voter].hasData = false
	// The leader proposes an optimistic (uncertified) tip for lane 0.
	optimistic := types.NewEmptyCut(4)
	optimistic.Tips[0] = types.TipRef{Lane: 0, Position: 2, Digest: types.Digest{2}}
	for _, prov := range n.providers {
		prov.cut = optimistic
	}

	// The leader proposes (its own provider has data).
	n.engines[leader].Init()
	// Deliver the Prepare only to the blocked voter.
	var prep *types.Prepare
	for _, m := range n.envs[leader].bcast {
		if p, ok := m.(*types.Prepare); ok {
			prep = p
		}
	}
	if prep == nil {
		t.Fatal("leader did not propose")
	}
	n.engines[voter].OnPrepare(leader, prep)
	if len(n.envs[voter].fetches) == 0 {
		t.Fatal("missing tip data must trigger a fetch")
	}
	for _, sm := range n.envs[voter].sent {
		if _, isVote := sm.msg.(*types.PrepVote); isVote {
			t.Fatal("voted without tip data")
		}
	}
	// Data arrives.
	n.providers[voter].hasData = true
	n.engines[voter].TipDataArrived(1, 0)
	voted := false
	for _, sm := range n.envs[voter].sent {
		if _, isVote := sm.msg.(*types.PrepVote); isVote {
			voted = true
		}
	}
	if !voted {
		t.Fatal("TipDataArrived did not release the vote")
	}
}

// TestCommitNoticeValidation: a forged CommitQC must not decide.
func TestCommitNoticeValidation(t *testing.T) {
	n := newNet(t, nil)
	cut := types.NewEmptyCut(4)
	prop := types.ConsensusProposal{Slot: 1, View: 0, Cut: cut}
	forged := &types.CommitNotice{
		QC: types.CommitQC{Slot: 1, View: 0, Digest: prop.Digest(), Shares: []types.SigShare{
			{Signer: 0, Sig: make([]byte, 64)},
			{Signer: 1, Sig: make([]byte, 64)},
			{Signer: 2, Sig: make([]byte, 64)},
		}},
		Proposal: prop,
	}
	n.engines[3].OnCommitNotice(0, forged)
	if n.engines[3].Decided(1) {
		t.Fatal("forged CommitQC decided a slot")
	}
	// And a QC/proposal mismatch must not decide either (valid-looking QC
	// for a different digest).
	mismatch := &types.CommitNotice{
		QC:       types.CommitQC{Slot: 1, View: 0, Digest: types.Digest{9}},
		Proposal: prop,
	}
	n.engines[3].OnCommitNotice(0, mismatch)
	if n.engines[3].Decided(1) {
		t.Fatal("mismatched CommitNotice decided a slot")
	}
}

// TestTimeoutRebroadcast: a view timer expiring repeatedly re-broadcasts
// the complaint (partition recovery) without double-counting it.
func TestTimeoutRebroadcast(t *testing.T) {
	n := newNet(t, nil)
	e, env := n.engines[0], n.envs[0]
	e.Init()
	env.bcast = nil
	e.OnTimer(Timer{Kind: TimerView, Slot: 1, View: 0})
	e.OnTimer(Timer{Kind: TimerView, Slot: 1, View: 0})
	count := 0
	for _, m := range env.bcast {
		if _, ok := m.(*types.Timeout); ok {
			count++
		}
	}
	if count != 2 {
		t.Fatalf("timeout broadcasts = %d, want 2", count)
	}
	_, timeouts, _, _, _ := e.DebugSlot(1)
	if timeouts[0] != 1 {
		t.Fatalf("own timeout collected %d times", timeouts[0])
	}
}

// TestParallelSlotWindow: slot k+1 cannot start without CommitQC_1.
func TestTicketWindowEnforced(t *testing.T) {
	n := newNet(t, func(id types.NodeID, cfg *Config) { cfg.MaxParallel = 2 })
	e := n.engines[0]
	e.Init()
	// Slot 3 requires CommitQC_1; a view-0 Prepare with a genesis ticket
	// must be rejected.
	committee := types.NewCommittee(4)
	leader3 := committee.Leader(3, 0)
	prep := &types.Prepare{
		Leader:   leader3,
		Proposal: types.ConsensusProposal{Slot: 3, View: 0, Cut: types.NewEmptyCut(4)},
		Ticket:   types.Ticket{Kind: types.TicketCommit}, // missing QC for slot 1
	}
	suite := crypto.NewEd25519Suite(4, 3)
	prep.Sig = suite.Signer(leader3).Sign(prep.SigningBytes())
	n.envs[0].sent = nil
	e.OnPrepare(leader3, prep)
	for _, sm := range n.envs[0].sent {
		if _, isVote := sm.msg.(*types.PrepVote); isVote {
			t.Fatal("slot beyond the ticket window gathered a vote")
		}
	}
}
