package consensus

import (
	"fmt"

	"repro/internal/crypto"
	"repro/internal/types"
)

// This file holds the consensus layer's stateless signature checks, split
// out of the stateful engine so they can run on the transport's parallel
// pre-verification stage (runtime.PreVerifier). The engine's inline
// validation calls the same helpers; with a shared crypto.VerifyCache a
// pre-verified message's signatures resolve to memo lookups there.

// PreVerifier checks consensus message signatures without touching engine
// state. Safe for concurrent use (immutable fields; a crypto.VerifyCache
// Verifier is thread-safe).
type PreVerifier struct {
	Committee types.Committee
	Verifier  crypto.Verifier
	// OptimisticTips mirrors Config.OptimisticTips: it sets the strong-vote
	// threshold PrepareQCs must meet (§5.5.2).
	OptimisticTips bool
}

// PreVerify implements the runtime.PreVerifier contract for the six
// consensus message types; everything else passes through untouched.
func (pv *PreVerifier) PreVerify(from types.NodeID, m types.Message) error {
	switch msg := m.(type) {
	case *types.Prepare:
		if msg.Leader != from {
			return fmt.Errorf("consensus: prepare relayed by %s for leader %s", from, msg.Leader)
		}
		return verifyPrepareSigs(pv.Committee, pv.Verifier, msg)
	case *types.PrepVote:
		return verifySignerMsg(pv.Committee, pv.Verifier, msg.Voter, msg.SigningBytes(), msg.Sig)
	case *types.Confirm:
		if err := verifySignerMsg(pv.Committee, pv.Verifier, msg.Leader, msg.SigningBytes(), msg.Sig); err != nil {
			return err
		}
		return verifyPrepareQC(pv.Committee, pv.Verifier, pv.OptimisticTips, &msg.QC)
	case *types.ConfirmAck:
		return verifySignerMsg(pv.Committee, pv.Verifier, msg.Voter, msg.SigningBytes(), msg.Sig)
	case *types.CommitNotice:
		return verifyCommitQC(pv.Committee, pv.Verifier, &msg.QC)
	case *types.Timeout:
		return verifyTimeoutSigs(pv.Committee, pv.Verifier, pv.OptimisticTips, msg)
	}
	return nil
}

func verifySignerMsg(committee types.Committee, v crypto.Verifier, signer types.NodeID, msg, sig []byte) error {
	if !committee.Valid(signer) {
		return fmt.Errorf("consensus: message from unknown replica %s", signer)
	}
	if !v.Verify(signer, msg, sig) {
		return fmt.Errorf("consensus: bad signature from %s", signer)
	}
	return nil
}

// verifyPrepareSigs checks everything cryptographic about a Prepare: the
// leader's signature, the ticket's certificate (CommitQC or TC), and the
// PoAs of every certified tip in the cut. Structural rules that depend on
// engine state or configuration (ticket kind for the view, winner
// reproposals, the optimistic-tips admission rule) stay in validPrepare.
func verifyPrepareSigs(committee types.Committee, v crypto.Verifier, prep *types.Prepare) error {
	if !v.Verify(prep.Leader, prep.SigningBytes(), prep.Sig) {
		return fmt.Errorf("consensus: bad prepare signature from %s", prep.Leader)
	}
	if qc := prep.Ticket.Commit; qc != nil {
		if err := verifyCommitQC(committee, v, qc); err != nil {
			return err
		}
	}
	if tc := prep.Ticket.TC; tc != nil {
		if err := crypto.VerifyTC(v, committee, tc); err != nil {
			return err
		}
	}
	// Each tip's PoA verifies as its own memoized certificate rather than
	// one merged share batch: the same PoA re-appears across consecutive
	// cuts (slow lanes keep their tip for many slots) and in standalone
	// broadcasts, so per-cert memoization turns the n-tips-×-f+1-shares
	// cost of a repeat Prepare into n lookups.
	for i := range prep.Proposal.Cut.Tips {
		if cert := prep.Proposal.Cut.Tips[i].Cert; cert != nil {
			if err := crypto.VerifyPoA(v, committee, cert); err != nil {
				return err
			}
		}
	}
	return nil
}

func verifyTimeoutSigs(committee types.Committee, v crypto.Verifier, optimisticTips bool, t *types.Timeout) error {
	if err := verifySignerMsg(committee, v, t.Voter, t.SigningBytes(), t.Sig); err != nil {
		return err
	}
	if t.HighQC != nil {
		return verifyPrepareQC(committee, v, optimisticTips, t.HighQC)
	}
	return nil
}
