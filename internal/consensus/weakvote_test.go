package consensus

import (
	"testing"

	"repro/internal/types"
)

// newWeakNet builds a 4-engine net with optimistic tips + weak votes and
// an uncertified tip for lane 0 in every provider's cut.
func newWeakNet(t *testing.T, dataAt func(types.NodeID) bool) *net {
	t.Helper()
	n := newNet(t, func(id types.NodeID, cfg *Config) {
		cfg.OptimisticTips = true
		cfg.WeakVotes = true
	})
	optimistic := types.NewEmptyCut(4)
	optimistic.Tips[0] = types.TipRef{Lane: 0, Position: 2, Digest: types.Digest{2}}
	for i, prov := range n.providers {
		prov.cut = optimistic
		prov.hasData = dataAt(types.NodeID(i))
	}
	return n
}

// TestWeakVoteCastImmediately (§5.5.2): a replica missing tip data casts a
// weak vote at once, then a strong vote when the data arrives.
func TestWeakVoteCastImmediately(t *testing.T) {
	committee := types.NewCommittee(4)
	leader := committee.Leader(1, 0)
	voter := types.NodeID((int(leader) + 1) % 4)
	n := newWeakNet(t, func(id types.NodeID) bool { return id != voter })

	n.engines[leader].Init()
	var prep *types.Prepare
	for _, m := range n.envs[leader].bcast {
		if p, ok := m.(*types.Prepare); ok {
			prep = p
		}
	}
	if prep == nil {
		t.Fatal("no proposal")
	}
	n.engines[voter].OnPrepare(leader, prep)

	var weak, strong int
	for _, sm := range n.envs[voter].sent {
		if v, ok := sm.msg.(*types.PrepVote); ok {
			if v.Strong {
				strong++
			} else {
				weak++
			}
		}
	}
	if weak != 1 || strong != 0 {
		t.Fatalf("before data: weak=%d strong=%d, want 1/0", weak, strong)
	}
	// Data arrives: the strong vote follows.
	n.providers[voter].hasData = true
	n.engines[voter].TipDataArrived(1, 0)
	weak, strong = 0, 0
	for _, sm := range n.envs[voter].sent {
		if v, ok := sm.msg.(*types.PrepVote); ok {
			if v.Strong {
				strong++
			} else {
				weak++
			}
		}
	}
	if weak != 1 || strong != 1 {
		t.Fatalf("after data: weak=%d strong=%d, want 1/1", weak, strong)
	}
}

// TestWeakVotesFormQCWithStrongThreshold: 2f+1 votes with f+1 strong make
// a PrepareQC; with fewer strong votes the slot cannot commit on votes
// alone.
func TestWeakQuorumCommits(t *testing.T) {
	committee := types.NewCommittee(4)
	leader := committee.Leader(1, 0)
	// Exactly f+1 = 2 replicas hold the data (the leader plus one); the
	// other two cast weak votes. QC = 4 votes, 2 strong: commits.
	withData := map[types.NodeID]bool{leader: true, (leader + 1) % 4: true}
	n := newWeakNet(t, func(id types.NodeID) bool { return withData[id] })
	initAll(n)
	n.pump(t, nil)
	n.fireFastTimers() // only 2 strong votes: fast path cannot fire
	n.pump(t, nil)
	committed := 0
	for _, env := range n.envs {
		if _, ok := env.decided[1]; ok {
			committed++
		}
	}
	if committed != 4 {
		t.Fatalf("weak-vote quorum committed at %d/4 replicas", committed)
	}
	// And it must have been the slow path.
	for i, env := range n.envs {
		if p := env.decided[1]; p != nil && p.View != 0 {
			t.Fatalf("r%d decided in view %d", i, p.View)
		}
	}
}

// TestWeakOnlyQuorumCannotCommit: with ZERO strong voters beyond the
// leader, the f+1-strong threshold blocks the QC — availability is not
// attested, so the value must not commit on the vote path.
func TestWeakOnlyQuorumCannotCommit(t *testing.T) {
	committee := types.NewCommittee(4)
	leader := committee.Leader(1, 0)
	n := newWeakNet(t, func(id types.NodeID) bool { return id == leader })
	initAll(n)
	n.pump(t, nil)
	n.fireFastTimers()
	n.pump(t, nil)
	for i, env := range n.envs {
		if _, ok := env.decided[1]; ok {
			t.Fatalf("r%d decided with only one strong vote", i)
		}
	}
}
