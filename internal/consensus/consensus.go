// Package consensus implements Autobahn's consensus layer (§5.2–§5.4): a
// slot-based, PBFT-style two-phase agreement protocol over lane cuts, with
// a single-round fast path in gracious intervals, classical view changes
// with timeout certificates, and parallel multi-slot agreement bounded by
// k concurrent instances.
//
// The engine is a deterministic state machine: all network and timer
// effects flow through the Env interface, and lane state is read through
// the Provider interface, so the package is testable in isolation and
// identical under simulation and real transport.
package consensus

import (
	"sort"
	"time"

	"repro/internal/types"
)

// TimerKind discriminates engine timers.
type TimerKind uint8

const (
	// TimerView is the per-(slot, view) progress timer (§5.3).
	TimerView TimerKind = iota + 1
	// TimerFast is the leader's short wait for n votes beyond 2f+1 (§5.2.1).
	TimerFast
	// TimerCoverage relaxes the lane-coverage rule for a slot so tails
	// flush under low load (§5.2.3 is best-effort; see DESIGN.md).
	TimerCoverage
)

// Timer is a request by the engine for a one-shot timer.
type Timer struct {
	Kind  TimerKind
	Slot  types.Slot
	View  types.View
	Delay time.Duration
}

// Env is the effect interface the engine drives.
type Env interface {
	// Send transmits m to a single replica.
	Send(to types.NodeID, m types.Message)
	// Broadcast transmits m to all other replicas.
	Broadcast(m types.Message)
	// SetTimer schedules OnTimer(t) after t.Delay; same (Kind, Slot, View)
	// replaces any pending timer.
	SetTimer(t Timer)
	// Decide reports a committed slot. Decisions may arrive out of slot
	// order; the ordering layer executes them in order.
	Decide(s types.Slot, p *types.ConsensusProposal, qc *types.CommitQC)
	// FetchTipData asks the node to retrieve the data proposals for
	// uncertified tips from the (s, v) leader; the node must call
	// TipDataArrived(s, v) once they are locally available (§5.5.2).
	FetchTipData(leader types.NodeID, tips []types.TipRef, s types.Slot, v types.View)
	// Now returns the current time.
	Now() time.Duration
}

// Provider exposes the lane layer to consensus.
type Provider interface {
	// AssembleCut returns the replica's current cut (§5.2).
	AssembleCut(optimistic bool) types.Cut
	// HasTipData reports local possession of a tip's data proposal.
	HasTipData(t types.TipRef) bool
	// ValidateCut structurally validates a proposed cut, including PoA
	// verification for certified tips.
	ValidateCut(cut types.Cut, leader types.NodeID) error
	// NewTipCount reports how many lanes have a proposable tip strictly
	// beyond base (the lane-coverage measure).
	NewTipCount(base []types.Pos) int
	// NextExec returns the next slot awaiting execution (the ordering
	// layer's frontier). Slots below it are fully settled; messages for
	// them are stale and must not resurrect engine state.
	NextExec() types.Slot
}

// Journal records the engine's safety-critical outputs before they are
// externalized, so a restarted replica can never contradict a pre-crash
// vote (see Restore). core.Journal adapts this to the replica-wide
// durable journal; the default is a no-op.
type Journal interface {
	// PrepVote records a prepare-phase vote (weak or strong).
	PrepVote(v *types.PrepVote)
	// ConfirmAck records a confirm-phase ack.
	ConfirmAck(a *types.ConfirmAck)
	// Timeout records a view-change complaint.
	Timeout(t *types.Timeout)
	// Commit records a decided slot's certificate and proposal.
	Commit(n *types.CommitNotice)
}

type nopJournal struct{}

func (nopJournal) PrepVote(*types.PrepVote)     {}
func (nopJournal) ConfirmAck(*types.ConfirmAck) {}
func (nopJournal) Timeout(*types.Timeout)       {}
func (nopJournal) Commit(*types.CommitNotice)   {}

// Signer abstracts message signing (satisfied by crypto.Signer).
type Signer interface {
	Sign(msg []byte) []byte
	ID() types.NodeID
}

// Verifier abstracts signature checks (satisfied by crypto.Verifier).
type Verifier interface {
	Verify(signer types.NodeID, msg, sig []byte) bool
}

// Config parameterizes the engine. Zero values take the documented
// defaults (fill).
type Config struct {
	Committee types.Committee
	Self      types.NodeID
	Signer    Signer
	Verifier  Verifier
	// VerifySigs enables full cryptographic validation of QCs, TCs and
	// leader signatures.
	VerifySigs bool

	// FastPath enables the single-round commit on n votes (§5.2.1).
	FastPath bool
	// FastPathWait is how long the leader waits beyond 2f+1 votes for the
	// full n (default 20ms).
	FastPathWait time.Duration
	// OptimisticTips lets leaders propose uncertified tips (§5.5.2).
	OptimisticTips bool
	// WeakVotes enables the §5.5.2 voting refinement: a replica missing an
	// optimistic tip's data casts a "weak" vote (agreement only) at once
	// and a "strong" vote (agreement + availability) when the data lands.
	// A PrepareQC then needs 2f+1 votes of which f+1 strong; the fast path
	// still requires n strong votes. Requires OptimisticTips.
	WeakVotes bool
	// ViewTimeout is the base view timer (default 1s, the paper's §6
	// setting); view v waits ViewTimeout * 2^v (doubling, capped).
	ViewTimeout time.Duration
	// MaxParallel is k, the bound on concurrent slot instances (§5.4;
	// default 4).
	MaxParallel int
	// Coverage is the lane-coverage threshold (default n-f new tips).
	Coverage int
	// CoverageDelay relaxes coverage for a slot after this long so data
	// tails commit under low load (default 50ms).
	CoverageDelay time.Duration
	// MinProposalGap paces consecutive proposals by the same leader
	// (default 5ms).
	MinProposalGap time.Duration
	// Journal durably records votes, acks, timeouts and commits before
	// they are externalized (nil = no persistence).
	Journal Journal
	// Trace, when non-nil, receives verbose engine events (tests only).
	Trace func(format string, args ...any)
}

func (e *Engine) trace(format string, args ...any) {
	if e.cfg.Trace != nil {
		e.cfg.Trace(format, args...)
	}
}

func (c *Config) fill() {
	if c.FastPathWait == 0 {
		c.FastPathWait = 20 * time.Millisecond
	}
	if c.ViewTimeout == 0 {
		c.ViewTimeout = time.Second
	}
	if c.MaxParallel == 0 {
		c.MaxParallel = 4
	}
	if c.Coverage == 0 {
		c.Coverage = c.Committee.Size() - c.Committee.F()
	}
	if c.CoverageDelay == 0 {
		c.CoverageDelay = 50 * time.Millisecond
	}
	if c.MinProposalGap == 0 {
		c.MinProposalGap = 5 * time.Millisecond
	}
	if c.Journal == nil {
		c.Journal = nopJournal{}
	}
}

// slotState tracks one consensus slot instance.
type slotState struct {
	slot types.Slot
	view types.View // current view

	sawParentPrepare bool
	parentCutPos     []types.Pos // tip positions of the first observed Prepare_{s-1}
	coverageRelaxed  bool
	coverageTimerSet bool
	timerRunning     bool
	proposed         bool // leader: proposed in current view

	// Replica-side per-slot agreement state (the cheat-sheet's prop/conf).
	highProp  *types.ConsensusProposal // highest-view proposal voted for
	highQC    *types.PrepareQC         // highest-view PrepareQC stored
	votedPrep map[types.View]bool      // cast a strong vote
	votedWeak map[types.View]bool      // cast a weak vote (§5.5.2)
	votedAck  map[types.View]bool
	mutinied  map[types.View]bool // sent Timeout; ignore Prepare/Confirm in view
	// Pending vote blocked on optimistic tip data.
	pendingVote *types.Prepare

	// Leader-side aggregation.
	prepVotes  map[types.View]map[types.NodeID]prepVote
	acks       map[types.View]map[types.NodeID]types.SigShare
	myPrepare  map[types.View]*types.Prepare
	sentConfrm map[types.View]bool
	fastArmed  bool

	// Timeout aggregation (per target view being complained about).
	timeouts map[types.View]map[types.NodeID]*types.Timeout

	// Outcome.
	decided   bool
	commitQC  *types.CommitQC
	committed *types.ConsensusProposal

	// Buffered higher-view Prepares awaiting view entry.
	prepBuffer map[types.View]*types.Prepare
}

type prepVote struct {
	share  types.SigShare
	strong bool
}

// Engine is one replica's consensus state across all slots.
type Engine struct {
	cfg      Config
	env      Env
	provider Provider

	slots      map[types.Slot]*slotState
	frontier   types.Slot // highest slot we have begun tracking
	maxDecided types.Slot // highest slot ever decided locally
	lastDecide map[types.Slot]*types.CommitQC
	// contiguous committed prefix (for ticket GC only; ordering is
	// handled by the order package).
	maxStarted  types.Slot
	lastPropose time.Duration
	// committed tip positions of the most recent decided slot, used as a
	// coverage fallback base.
	lastCommitPos []types.Pos
}

// NewEngine builds a consensus engine.
func NewEngine(cfg Config, env Env, provider Provider) *Engine {
	cfg.fill()
	return &Engine{
		cfg:           cfg,
		env:           env,
		provider:      provider,
		slots:         make(map[types.Slot]*slotState),
		lastDecide:    make(map[types.Slot]*types.CommitQC),
		lastCommitPos: make([]types.Pos, cfg.Committee.Size()),
		lastPropose:   -time.Hour,
	}
}

// Init bootstraps slot 1 (its parent-prepare precondition is vacuous).
func (e *Engine) Init() {
	st := e.slot(1)
	st.sawParentPrepare = true
	e.evalStart(1)
}

func (e *Engine) slot(s types.Slot) *slotState {
	st, ok := e.slots[s]
	if !ok {
		st = &slotState{
			slot:       s,
			votedPrep:  make(map[types.View]bool),
			votedWeak:  make(map[types.View]bool),
			votedAck:   make(map[types.View]bool),
			mutinied:   make(map[types.View]bool),
			prepVotes:  make(map[types.View]map[types.NodeID]prepVote),
			acks:       make(map[types.View]map[types.NodeID]types.SigShare),
			myPrepare:  make(map[types.View]*types.Prepare),
			sentConfrm: make(map[types.View]bool),
			timeouts:   make(map[types.View]map[types.NodeID]*types.Timeout),
			prepBuffer: make(map[types.View]*types.Prepare),
		}
		e.slots[s] = st
		if s > e.frontier {
			e.frontier = s
		}
	}
	return st
}

// inWindow reports whether s lies inside the active consensus window
// [nextExec, maxStarted + MaxParallel]: at or above the execution
// frontier, and no further ahead of the highest legitimately started slot
// than the §5.4 parallelism bound allows. Messages outside it must not
// allocate slot state — one Byzantine PrepVote for a far-future slot
// would otherwise corrupt `frontier` (making gcSlots delete live slots)
// and grow memory without bound.
func (e *Engine) inWindow(s types.Slot) bool {
	return s >= e.provider.NextExec() && s <= e.maxStarted+types.Slot(e.cfg.MaxParallel)
}

// slotIfActive returns existing state for s, or allocates it only when s
// is inside the active window (nil otherwise). Every handler driven by
// unvalidated peer slot numbers goes through here; self-certifying inputs
// (CommitNotices, whose QCs are verified) and self-armed paths use slot()
// directly.
func (e *Engine) slotIfActive(s types.Slot) *slotState {
	if st, ok := e.slots[s]; ok {
		return st
	}
	if s == 0 || !e.inWindow(s) {
		return nil
	}
	return e.slot(s)
}

// observeStarted advances the started-slot high-water mark that anchors
// the active window's upper bound.
func (e *Engine) observeStarted(s types.Slot) {
	if s > e.maxStarted {
		e.maxStarted = s
	}
}

// Decided reports whether slot s has committed locally.
func (e *Engine) Decided(s types.Slot) bool {
	st, ok := e.slots[s]
	return ok && st.decided
}

// CommitQCFor returns the commit certificate for a decided slot (nil if
// not decided or already garbage collected).
func (e *Engine) CommitQCFor(s types.Slot) *types.CommitQC { return e.lastDecide[s] }

// CommittedProposal returns the committed proposal for a decided slot.
func (e *Engine) CommittedProposal(s types.Slot) *types.ConsensusProposal {
	if st, ok := e.slots[s]; ok {
		return st.committed
	}
	return nil
}

// CurrentView returns the replica's current view for slot s.
func (e *Engine) CurrentView(s types.Slot) types.View {
	if st, ok := e.slots[s]; ok {
		return st.view
	}
	return 0
}

// DebugSlot returns internal counters for tests: current view, timeout
// counts per view, whether decided, and whether a timer is armed.
func (e *Engine) DebugSlot(s types.Slot) (view types.View, timeouts map[types.View]int, decided, timerRunning bool, sawParent bool) {
	st, ok := e.slots[s]
	if !ok {
		return 0, nil, false, false, false
	}
	timeouts = make(map[types.View]int)
	for v, set := range st.timeouts {
		timeouts[v] = len(set)
	}
	return st.view, timeouts, st.decided, st.timerRunning, st.sawParentPrepare
}

// Frontier returns the highest slot the engine tracks.
func (e *Engine) Frontier() types.Slot { return e.frontier }

// MaxDecided returns the highest slot this replica has ever decided (0
// if none). Unlike Decided it is not subject to slot-state GC, so the
// execution layer can detect "a later slot decided while my frontier
// slot's commit certificate never arrived" however wide the gap is.
func (e *Engine) MaxDecided() types.Slot { return e.maxDecided }

// Restore re-marks this replica's pre-crash consensus votes from a
// journal snapshot so the restarted replica can never contradict them:
// views with a journaled PrepVote or ConfirmAck are treated as already
// voted (both weak and strong — the voted digest is not reconstructed,
// so the conservative stance also covers leader equivocation across the
// crash), journaled Timeouts re-enter their mutiny, and each slot
// re-enters the highest view any journaled record attests. Must be
// called before Init; decided slots are replayed separately through
// OnCommitNotice.
func (e *Engine) Restore(prepVotes []*types.PrepVote, acks []*types.ConfirmAck, timeouts []*types.Timeout) {
	touch := func(s types.Slot, v types.View) *slotState {
		st := e.slot(s)
		if v > st.view {
			st.view = v
		}
		e.observeStarted(s)
		return st
	}
	for _, pv := range prepVotes {
		st := touch(pv.Slot, pv.View)
		st.votedPrep[pv.View] = true
		st.votedWeak[pv.View] = true
	}
	for _, a := range acks {
		st := touch(a.Slot, a.View)
		st.votedAck[a.View] = true
	}
	for _, t := range timeouts {
		st := touch(t.Slot, t.View)
		st.mutinied[t.View] = true
	}
}

// --- slot start & proposing (§5.2.3, §5.4) ---

// ticketFor returns the ticket a view-0 leader must carry for slot s,
// and whether the k-bound allows starting s at all.
func (e *Engine) ticketFor(s types.Slot) (types.Ticket, bool) {
	k := types.Slot(e.cfg.MaxParallel)
	if s <= k {
		return types.Ticket{Kind: types.TicketCommit}, true // genesis window
	}
	qc := e.lastDecide[s-k]
	if qc == nil {
		return types.Ticket{}, false
	}
	return types.Ticket{Kind: types.TicketCommit, Commit: qc}, true
}

// coverageBase returns the tip-position frontier coverage is measured
// against: the cut of the first observed Prepare_{s-1}, else the latest
// committed cut.
func (e *Engine) coverageBase(st *slotState) []types.Pos {
	if st.parentCutPos != nil {
		return st.parentCutPos
	}
	return e.lastCommitPos
}

// evalStart checks whether slot s can begin: timer arming for everyone,
// proposing for the view-0 leader.
func (e *Engine) evalStart(s types.Slot) {
	st := e.slot(s)
	if st.decided || !st.sawParentPrepare {
		return
	}
	_, ticketOK := e.ticketFor(s)
	if e.cfg.Committee.Leader(s, 0) == e.cfg.Self && !st.proposed {
		e.trace("t=%v %s evalStart s=%d ticket=%v covered=%v relaxed=%v", e.env.Now(), e.cfg.Self, s, ticketOK, e.coverageMet(st), st.coverageRelaxed)
	}
	if !ticketOK {
		return
	}
	covered := e.coverageMet(st)
	if !covered && !st.coverageTimerSet {
		st.coverageTimerSet = true
		e.env.SetTimer(Timer{Kind: TimerCoverage, Slot: s, Delay: e.cfg.CoverageDelay})
	}
	if !covered {
		return
	}
	// Arm the view-0 progress timer (all replicas).
	if !st.timerRunning && st.view == 0 {
		st.timerRunning = true
		e.env.SetTimer(Timer{Kind: TimerView, Slot: s, View: 0, Delay: e.viewTimeout(0)})
	}
	// Propose if we lead view 0.
	if st.view == 0 && !st.proposed && e.cfg.Committee.Leader(s, 0) == e.cfg.Self {
		e.propose(st)
	}
}

func (e *Engine) coverageMet(st *slotState) bool {
	base := e.coverageBase(st)
	newTips := e.provider.NewTipCount(base)
	if st.coverageRelaxed {
		return newTips >= 1
	}
	return newTips >= e.cfg.Coverage
}

func (e *Engine) propose(st *slotState) {
	now := e.env.Now()
	if now < e.lastPropose+e.cfg.MinProposalGap {
		// Pace proposals: retry when the gap elapses.
		e.env.SetTimer(Timer{Kind: TimerCoverage, Slot: st.slot, Delay: e.lastPropose + e.cfg.MinProposalGap - now})
		return
	}
	ticket, ok := e.ticketFor(st.slot)
	if !ok {
		return
	}
	cut := e.provider.AssembleCut(e.cfg.OptimisticTips)
	prop := types.ConsensusProposal{Slot: st.slot, View: 0, Cut: cut}
	prep := &types.Prepare{Leader: e.cfg.Self, Proposal: prop, Ticket: ticket}
	prep.Sig = e.cfg.Signer.Sign(prep.SigningBytes())
	st.proposed = true
	st.myPrepare[0] = prep
	e.trace("t=%v %s propose s=%d", e.env.Now(), e.cfg.Self, st.slot)
	e.lastPropose = now
	e.env.Broadcast(prep)
	e.processPrepare(e.cfg.Self, prep) // leader self-processes (stores + votes)
}

// OnTipsAdvanced re-evaluates start conditions when the lane layer gains
// new certified tips (called by the node on PoA/proposal arrival).
func (e *Engine) OnTipsAdvanced() {
	// Only the frontier slots can be waiting on coverage.
	for s := e.frontier; s > 0 && s+types.Slot(e.cfg.MaxParallel) > e.frontier; s-- {
		e.evalStart(s)
	}
}

// viewTimeout doubles per view, capped to avoid overflow.
func (e *Engine) viewTimeout(v types.View) time.Duration {
	shift := uint(v)
	if shift > 6 {
		shift = 6
	}
	return e.cfg.ViewTimeout << shift
}

// --- Prepare phase (§5.2.1 P1) ---

// OnPrepare handles a leader's Prepare message.
func (e *Engine) OnPrepare(from types.NodeID, prep *types.Prepare) {
	e.processPrepare(from, prep)
}

func (e *Engine) processPrepare(from types.NodeID, prep *types.Prepare) {
	s, v := prep.Proposal.Slot, prep.Proposal.View
	if !e.validPrepare(from, prep) {
		return
	}
	// A structurally valid Prepare carries its own start license (commit
	// ticket or TC), so it legitimately extends the active window.
	e.observeStarted(s)
	st := e.slot(s)

	// The first Prepare for s arms slot s+1 (§5.4).
	e.observeParentPrepare(s, prep)

	if st.decided {
		return
	}
	if v > st.view {
		// Not yet in view v: buffer and reprocess on entry (§5.3).
		st.prepBuffer[v] = prep
		return
	}
	if v < st.view || st.mutinied[v] {
		return
	}

	// Store the proposal (highProp) for potential view changes.
	if st.highProp == nil || prep.Proposal.View > st.highProp.View {
		p := prep.Proposal
		st.highProp = &p
	}

	e.tryPrepVote(st, prep)
}

// observeParentPrepare records the first Prepare for s and starts s+1.
func (e *Engine) observeParentPrepare(s types.Slot, prep *types.Prepare) {
	next := e.slot(s + 1)
	if !next.sawParentPrepare {
		next.sawParentPrepare = true
		next.parentCutPos = cutPositions(prep.Proposal.Cut)
		e.evalStart(s + 1)
	}
}

func cutPositions(c types.Cut) []types.Pos {
	out := make([]types.Pos, len(c.Tips))
	for i, t := range c.Tips {
		out[i] = t.Position
	}
	return out
}

// tryPrepVote votes for a Prepare if the availability rule allows it;
// otherwise it records the pending vote and requests the missing tip data
// from the leader (§5.5.2 — the only critical-path sync, constant size).
func (e *Engine) tryPrepVote(st *slotState, prep *types.Prepare) {
	s, v := prep.Proposal.Slot, prep.Proposal.View
	if st.votedPrep[v] || st.mutinied[v] {
		return
	}
	// Reproposals carrying a TC-selected winner are implicitly certified
	// (f+1 replicas voted for them); vote without an availability check.
	winnerReproposal := v > 0 && prep.Ticket.Kind == types.TicketTC &&
		prep.Ticket.TC != nil && prep.Ticket.TC.WinningProposal(e.cfg.Committee) != nil

	if !winnerReproposal {
		var missing []types.TipRef
		for _, t := range prep.Proposal.Cut.Tips {
			if !t.Certified() && !t.Empty() && !e.provider.HasTipData(t) {
				missing = append(missing, t)
			}
		}
		if len(missing) > 0 {
			st.pendingVote = prep
			e.trace("t=%v %s vote-blocked s=%d v=%d missing=%d lane0=%v pos=%d", e.env.Now(), e.cfg.Self, s, v, len(missing), missing[0].Lane, missing[0].Position)
			e.env.FetchTipData(prep.Leader, missing, s, v)
			if e.cfg.WeakVotes && !st.votedWeak[v] {
				// §5.5.2 refinement: assert agreement now, availability
				// later. The strong vote follows once the data lands.
				st.votedWeak[v] = true
				e.sendPrepVote(st, prep, false)
			}
			return
		}
	}
	st.pendingVote = nil
	st.votedPrep[v] = true
	e.trace("t=%v %s vote s=%d v=%d", e.env.Now(), e.cfg.Self, s, v)
	e.sendPrepVote(st, prep, true)
}

// sendPrepVote signs and routes one PrepVote of the given strength.
func (e *Engine) sendPrepVote(st *slotState, prep *types.Prepare, strong bool) {
	vote := &types.PrepVote{
		Slot:   prep.Proposal.Slot,
		View:   prep.Proposal.View,
		Digest: prep.Proposal.Digest(),
		Voter:  e.cfg.Self,
		Strong: strong,
	}
	vote.Sig = e.cfg.Signer.Sign(vote.SigningBytes())
	// Durably record the vote before it can influence anyone — including
	// this replica's own leader aggregation, whose QCs externalize it.
	e.cfg.Journal.PrepVote(vote)
	if prep.Leader == e.cfg.Self {
		e.collectPrepVote(st, vote)
	} else {
		e.env.Send(prep.Leader, vote)
	}
}

// TipDataArrived retries a vote blocked on optimistic tip data.
func (e *Engine) TipDataArrived(s types.Slot, v types.View) {
	st, ok := e.slots[s]
	if !ok || st.decided || st.pendingVote == nil {
		return
	}
	pv := st.pendingVote
	if pv.Proposal.View != v || v != st.view {
		return
	}
	e.tryPrepVote(st, pv)
}

// RetryPendingVotes re-attempts every vote blocked on tip data. The node
// calls this whenever lane data arrives through the live path (which can
// race with — and cancel — the explicit tip fetch). Slots are visited in
// ascending order — never map order: retries emit votes (sends), and
// send order must be a deterministic function of the event history for
// fixed-seed simulations to stay reproducible.
func (e *Engine) RetryPendingVotes() {
	slots := make([]types.Slot, 0, len(e.slots))
	for s, st := range e.slots {
		if st.pendingVote != nil && !st.decided && st.pendingVote.Proposal.View == st.view {
			slots = append(slots, s)
		}
	}
	sort.Slice(slots, func(i, j int) bool { return slots[i] < slots[j] })
	for _, s := range slots {
		st := e.slots[s]
		if st.pendingVote != nil && !st.decided && st.pendingVote.Proposal.View == st.view {
			e.tryPrepVote(st, st.pendingVote)
		}
	}
}

// HasPendingVote reports whether (s, v) is still blocked on tip data
// (the node uses this to drop deferred tip fetches that became moot).
func (e *Engine) HasPendingVote(s types.Slot, v types.View) bool {
	st, ok := e.slots[s]
	return ok && !st.decided && st.pendingVote != nil && st.pendingVote.Proposal.View == v && st.view == v
}

// OnPrepVote aggregates votes at the leader.
func (e *Engine) OnPrepVote(from types.NodeID, vote *types.PrepVote) {
	if from != vote.Voter || !e.cfg.Committee.Valid(from) {
		return
	}
	if e.cfg.VerifySigs && !e.cfg.Verifier.Verify(vote.Voter, vote.SigningBytes(), vote.Sig) {
		return
	}
	st := e.slotIfActive(vote.Slot)
	if st == nil {
		return // outside the active window: never allocate for votes
	}
	e.collectPrepVote(st, vote)
}

func (e *Engine) collectPrepVote(st *slotState, vote *types.PrepVote) {
	v := vote.View
	my := st.myPrepare[v]
	if my == nil || st.decided {
		return // not leading this view (or already done)
	}
	if vote.Digest != my.Proposal.Digest() {
		return
	}
	set := st.prepVotes[v]
	if set == nil {
		set = make(map[types.NodeID]prepVote)
		st.prepVotes[v] = set
	}
	if prev, dup := set[vote.Voter]; dup {
		if prev.strong || !vote.Strong {
			return // only a weak→strong upgrade is new information
		}
	}
	set[vote.Voter] = prepVote{
		share:  types.SigShare{Signer: vote.Voter, Sig: vote.Sig},
		strong: vote.Strong,
	}
	e.leaderCheckQuorum(st, v)
}

// leaderCheckQuorum drives the fast/slow path decision (§5.2.1).
func (e *Engine) leaderCheckQuorum(st *slotState, v types.View) {
	set := st.prepVotes[v]
	n := e.cfg.Committee.FastQuorum()
	q := e.cfg.Committee.Quorum()
	strong := 0
	for _, pv := range set {
		if pv.strong {
			strong++
		}
	}
	if e.cfg.FastPath && strong >= n {
		e.fastCommit(st, v)
		return
	}
	// With the weak-vote refinement a PrepareQC requires f+1 strong votes
	// among the 2f+1 (availability); without it every vote is strong.
	if e.cfg.WeakVotes && strong < e.cfg.Committee.PoAQuorum() {
		return
	}
	if len(set) >= q {
		if e.cfg.FastPath && !st.fastArmed && !st.sentConfrm[v] {
			// Wait a beat for the full n (§5.2.1 Fast Path).
			st.fastArmed = true
			e.env.SetTimer(Timer{Kind: TimerFast, Slot: st.slot, View: v, Delay: e.cfg.FastPathWait})
			return
		}
		if !e.cfg.FastPath && !st.sentConfrm[v] {
			e.sendConfirm(st, v)
		}
	}
}

func (e *Engine) buildPrepareQC(st *slotState, v types.View) *types.PrepareQC {
	my := st.myPrepare[v]
	set := st.prepVotes[v]
	qc := &types.PrepareQC{Slot: st.slot, View: v, Digest: my.Proposal.Digest()}
	for _, id := range e.cfg.Committee.Nodes() {
		if pv, ok := set[id]; ok {
			qc.Shares = append(qc.Shares, pv.share)
			qc.StrongMask = append(qc.StrongMask, pv.strong)
		}
	}
	return qc
}

func (e *Engine) fastCommit(st *slotState, v types.View) {
	my := st.myPrepare[v]
	set := st.prepVotes[v]
	qc := &types.CommitQC{Slot: st.slot, View: v, Digest: my.Proposal.Digest(), Fast: true}
	for _, id := range e.cfg.Committee.Nodes() {
		if pv, ok := set[id]; ok && pv.strong {
			qc.Shares = append(qc.Shares, pv.share)
		}
	}
	e.deliverCommit(st, qc, &my.Proposal, true)
}

// OnTimer dispatches engine timers.
func (e *Engine) OnTimer(t Timer) {
	st, ok := e.slots[t.Slot]
	switch t.Kind {
	case TimerCoverage:
		st2 := e.slotIfActive(t.Slot)
		if st2 == nil {
			return // slot settled (or never started) since the timer armed
		}
		st2.coverageRelaxed = true
		e.evalStart(t.Slot)
	case TimerFast:
		if !ok || st.decided || st.sentConfrm[t.View] || st.myPrepare[t.View] == nil {
			return
		}
		if len(st.prepVotes[t.View]) >= e.cfg.Committee.Quorum() {
			e.sendConfirm(st, t.View)
		}
	case TimerView:
		if !ok || st.decided || t.View != st.view {
			return
		}
		// First expiry starts the mutiny; subsequent expiries re-broadcast
		// the Timeout so complaints survive partitions (a TC needs 2f+1
		// replicas connected — complaints sent into a partition are lost
		// and must be repeated once connectivity returns).
		e.startMutiny(st, t.View)
	}
}

// --- Confirm phase (§5.2.1 P2) ---

func (e *Engine) sendConfirm(st *slotState, v types.View) {
	st.sentConfrm[v] = true
	qc := e.buildPrepareQC(st, v)
	conf := &types.Confirm{Leader: e.cfg.Self, QC: *qc}
	conf.Sig = e.cfg.Signer.Sign(conf.SigningBytes())
	e.env.Broadcast(conf)
	e.processConfirm(e.cfg.Self, conf)
}

// OnConfirm handles the leader's Confirm broadcast.
func (e *Engine) OnConfirm(from types.NodeID, conf *types.Confirm) {
	e.processConfirm(from, conf)
}

func (e *Engine) processConfirm(from types.NodeID, conf *types.Confirm) {
	s, v := conf.QC.Slot, conf.QC.View
	if from != conf.Leader || e.cfg.Committee.Leader(s, v) != conf.Leader {
		return
	}
	if e.cfg.VerifySigs {
		if !e.cfg.Verifier.Verify(conf.Leader, conf.SigningBytes(), conf.Sig) {
			return
		}
		if err := verifyPrepareQC(e.cfg.Committee, e.cfg.Verifier, e.cfg.OptimisticTips, &conf.QC); err != nil {
			return
		}
	}
	st := e.slotIfActive(s)
	if st == nil {
		return
	}
	if st.decided || v < st.view || st.mutinied[v] {
		return
	}
	// Buffer the QC for view changes (conf[s] in the cheat sheet).
	if st.highQC == nil || conf.QC.View > st.highQC.View {
		qc := conf.QC
		st.highQC = &qc
	}
	if st.votedAck[v] {
		return
	}
	st.votedAck[v] = true
	ack := &types.ConfirmAck{Slot: s, View: v, Digest: conf.QC.Digest, Voter: e.cfg.Self}
	ack.Sig = e.cfg.Signer.Sign(ack.SigningBytes())
	e.cfg.Journal.ConfirmAck(ack)
	if conf.Leader == e.cfg.Self {
		e.collectAck(st, ack)
	} else {
		e.env.Send(conf.Leader, ack)
	}
}

// OnConfirmAck aggregates acks at the leader into a CommitQC.
func (e *Engine) OnConfirmAck(from types.NodeID, ack *types.ConfirmAck) {
	if from != ack.Voter || !e.cfg.Committee.Valid(from) {
		return
	}
	if e.cfg.VerifySigs && !e.cfg.Verifier.Verify(ack.Voter, ack.SigningBytes(), ack.Sig) {
		return
	}
	st := e.slotIfActive(ack.Slot)
	if st == nil {
		return // outside the active window: never allocate for acks
	}
	e.collectAck(st, ack)
}

func (e *Engine) collectAck(st *slotState, ack *types.ConfirmAck) {
	v := ack.View
	my := st.myPrepare[v]
	if my == nil || st.decided || ack.Digest != my.Proposal.Digest() {
		return
	}
	set := st.acks[v]
	if set == nil {
		set = make(map[types.NodeID]types.SigShare)
		st.acks[v] = set
	}
	if _, dup := set[ack.Voter]; dup {
		return
	}
	set[ack.Voter] = types.SigShare{Signer: ack.Voter, Sig: ack.Sig}
	if len(set) < e.cfg.Committee.Quorum() {
		return
	}
	qc := &types.CommitQC{Slot: st.slot, View: v, Digest: ack.Digest}
	for _, id := range e.cfg.Committee.Nodes() {
		if sh, ok := set[id]; ok {
			qc.Shares = append(qc.Shares, sh)
		}
	}
	e.deliverCommit(st, qc, &my.Proposal, true)
}

// --- commit ---

// OnCommitNotice handles a broadcast commit certificate.
func (e *Engine) OnCommitNotice(from types.NodeID, m *types.CommitNotice) {
	if e.cfg.VerifySigs {
		if err := verifyCommitQC(e.cfg.Committee, e.cfg.Verifier, &m.QC); err != nil {
			return
		}
	}
	if m.Proposal.Slot != m.QC.Slot || m.Proposal.Digest() != m.QC.Digest {
		// The notice must carry the proposal matching the certificate.
		// (Reproposals keep slot+view in the digest, so this binds both.)
		return
	}
	st := e.slot(m.QC.Slot)
	qc := m.QC
	prop := m.Proposal
	e.deliverCommit(st, &qc, &prop, false)
}

// deliverCommit finalizes a slot locally and (if broadcast) announces it.
func (e *Engine) deliverCommit(st *slotState, qc *types.CommitQC, prop *types.ConsensusProposal, announce bool) {
	if st.decided {
		return
	}
	st.decided = true
	e.trace("t=%v %s decide s=%d v=%d fast=%v", e.env.Now(), e.cfg.Self, st.slot, qc.View, qc.Fast)
	st.commitQC = qc
	st.committed = prop
	st.pendingVote = nil
	e.lastDecide[st.slot] = qc
	if st.slot > e.maxDecided {
		e.maxDecided = st.slot
	}
	e.lastCommitPos = cutPositions(prop.Cut)
	e.observeStarted(st.slot)
	// Cancel interest in this slot's timers (they become no-ops).
	st.timerRunning = false
	notice := &types.CommitNotice{QC: *qc, Proposal: *prop}
	e.cfg.Journal.Commit(notice)
	if announce {
		e.env.Broadcast(notice)
	}
	e.env.Decide(st.slot, prop, qc)
	// Committing s unlocks the ticket for s+k; the prepare for s (implied
	// by commit) arms s+1 even if we never saw it directly.
	next := e.slot(st.slot + 1)
	if !next.sawParentPrepare {
		next.sawParentPrepare = true
		next.parentCutPos = cutPositions(prop.Cut)
	}
	e.gcSlots()
	e.evalStart(st.slot + 1)
	e.evalStart(st.slot + types.Slot(e.cfg.MaxParallel))
}

// gcSlots drops slot state far below the decided frontier. CommitQCs are
// retained somewhat longer: commit of s transitively certifies s-k (§5.4).
func (e *Engine) gcSlots() {
	const keep = 256
	if e.frontier <= keep {
		return
	}
	cutoff := e.frontier - keep
	for s := range e.slots {
		if s < cutoff && e.slots[s].decided {
			delete(e.slots, s)
		}
	}
	for s := range e.lastDecide {
		if s < cutoff {
			delete(e.lastDecide, s)
		}
	}
}
