package consensus

import (
	"sort"

	"repro/internal/crypto"
	"repro/internal/types"
)

// --- Prepare validation ---

// validPrepare enforces every structural and cryptographic rule on an
// incoming Prepare: leader legitimacy, ticket validity (commit ticket for
// view 0, TC for later views), winning-proposal enforcement, and cut
// validity (delegated to the provider for PoA checks).
func (e *Engine) validPrepare(from types.NodeID, prep *types.Prepare) bool {
	s, v := prep.Proposal.Slot, prep.Proposal.View
	if s == 0 {
		return false
	}
	if prep.Leader != from || e.cfg.Committee.Leader(s, v) != prep.Leader {
		return false
	}
	if e.cfg.VerifySigs && !e.cfg.Verifier.Verify(prep.Leader, prep.SigningBytes(), prep.Sig) {
		return false
	}
	winnerRepro := false
	switch v {
	case 0:
		if prep.Ticket.Kind != types.TicketCommit {
			return false
		}
		k := types.Slot(e.cfg.MaxParallel)
		if s > k {
			qc := prep.Ticket.Commit
			if qc == nil || qc.Slot != s-k {
				return false
			}
			if e.cfg.VerifySigs {
				if err := verifyCommitQC(e.cfg.Committee, e.cfg.Verifier, qc); err != nil {
					return false
				}
			}
		}
	default:
		tc := prep.Ticket.TC
		if prep.Ticket.Kind != types.TicketTC || tc == nil || tc.Slot != s || tc.View != v-1 {
			return false
		}
		if e.cfg.VerifySigs {
			if err := crypto.VerifyTC(e.cfg.Verifier, e.cfg.Committee, tc); err != nil {
				return false
			}
		}
		// A TC-selected winner constrains the reproposal (§5.3 step 3).
		if winner := tc.WinningProposal(e.cfg.Committee); winner != nil {
			if winner.Cut.Digest() != prep.Proposal.Cut.Digest() {
				return false
			}
			winnerRepro = true
		}
		// Seeing a valid TC for view v-1 is itself license to enter view
		// v: replicas that missed the timeout quorum adopt it here (the
		// paper buffers instead and relies on cascading timeouts; adopting
		// the ticket is the standard practical refinement, cf. Jolteon).
		st := e.slot(s)
		if v > st.view && !st.decided {
			e.enterView(st, v)
		}
	}
	if err := prep.Proposal.Cut.Validate(e.cfg.Committee); err != nil {
		return false
	}
	if err := e.provider.ValidateCut(prep.Proposal.Cut, prep.Leader); err != nil {
		return false
	}
	if !e.cfg.OptimisticTips && !winnerRepro {
		// Certified-tips-only deployments reject uncertified non-leader
		// tips outright (§5.5.2 is an explicit opt-in). Winner reproposals
		// are exempt: the original leader's own uncertified tip legally
		// rode in its cut, and f+1 Prep-Votes already attest availability
		// — the cut is implicitly certified (§5.5.2).
		for _, t := range prep.Proposal.Cut.Tips {
			if !t.Certified() && !t.Empty() && t.Lane != prep.Leader {
				return false
			}
		}
	}
	return true
}

// verifyPrepareQC and verifyCommitQC are stateless so the engine's inline
// validation and the PreVerifier share one implementation (the inline call
// is a memo hit for pre-verified messages).
func verifyPrepareQC(committee types.Committee, v crypto.Verifier, optimisticTips bool, qc *types.PrepareQC) error {
	strongThreshold := 0
	if optimisticTips {
		strongThreshold = committee.PoAQuorum() // f+1 strong (§5.5.2)
	}
	return crypto.VerifyPrepareQC(v, committee, qc, strongThreshold)
}

func verifyCommitQC(committee types.Committee, v crypto.Verifier, qc *types.CommitQC) error {
	return crypto.VerifyCommitQC(v, committee, qc)
}

// --- mutiny & timeout certificates (§5.3) ---

// startMutiny broadcasts this replica's Timeout for (slot, view) after its
// progress timer expired. The replica thereafter ignores Prepare/Confirm
// traffic in that view. Repeated calls (timer re-expiry while still stuck
// in the view) re-broadcast the complaint and re-arm the timer, so that a
// TC can still form after a partition heals.
func (e *Engine) startMutiny(st *slotState, v types.View) {
	if st.decided || v != st.view && st.mutinied[v] {
		return
	}
	t := &types.Timeout{
		Slot:     st.slot,
		View:     v,
		Voter:    e.cfg.Self,
		HighQC:   st.highQC,
		HighProp: st.highProp,
	}
	t.Sig = e.cfg.Signer.Sign(t.SigningBytes())
	first := !st.mutinied[v]
	st.mutinied[v] = true
	e.cfg.Journal.Timeout(t)
	e.env.Broadcast(t)
	// Re-arm so the complaint repeats while the view stays stuck.
	e.env.SetTimer(Timer{Kind: TimerView, Slot: st.slot, View: v, Delay: e.viewTimeout(v)})
	if first {
		e.collectTimeout(st, e.cfg.Self, t)
	}
}

// OnTimeoutMsg handles a peer's Timeout complaint.
func (e *Engine) OnTimeoutMsg(from types.NodeID, t *types.Timeout) {
	if from != t.Voter || !e.cfg.Committee.Valid(from) {
		return
	}
	st := e.slotIfActive(t.Slot)
	if st == nil {
		return // outside the active window: never allocate for complaints
	}
	if st.decided {
		// Already committed: catch the straggler up (§5.3 step 2).
		e.env.Send(from, &types.CommitNotice{QC: *st.commitQC, Proposal: *st.committed})
		return
	}
	// Accept only if we have not advanced past the complained-about view.
	if st.view > t.View {
		return
	}
	if e.cfg.VerifySigs {
		if !e.cfg.Verifier.Verify(t.Voter, t.SigningBytes(), t.Sig) {
			return
		}
		if t.HighQC != nil {
			if err := verifyPrepareQC(e.cfg.Committee, e.cfg.Verifier, e.cfg.OptimisticTips, t.HighQC); err != nil {
				return
			}
		}
	}
	e.collectTimeout(st, from, t)
}

func (e *Engine) collectTimeout(st *slotState, from types.NodeID, t *types.Timeout) {
	set := st.timeouts[t.View]
	if set == nil {
		set = make(map[types.NodeID]*types.Timeout)
		st.timeouts[t.View] = set
	}
	if _, dup := set[from]; dup {
		return
	}
	set[from] = t

	// Join the mutiny once f+1 complaints prove a correct replica is
	// stuck — ensures every correct replica eventually assembles the TC.
	if len(set) >= e.cfg.Committee.PoAQuorum() && !st.mutinied[t.View] && st.view <= t.View {
		e.startMutiny(st, t.View)
	}
	if len(set) >= e.cfg.Committee.Quorum() && st.view <= t.View {
		e.formTC(st, t.View)
	}
}

func (e *Engine) formTC(st *slotState, v types.View) {
	set := st.timeouts[v]
	tc := &types.TC{Slot: st.slot, View: v}
	voters := make([]types.NodeID, 0, len(set))
	for id := range set {
		voters = append(voters, id)
	}
	sort.Slice(voters, func(i, j int) bool { return voters[i] < voters[j] })
	for _, id := range voters {
		tc.Timeouts = append(tc.Timeouts, *set[id])
	}
	e.enterView(st, v+1)
	if e.cfg.Committee.Leader(st.slot, v+1) == e.cfg.Self {
		e.proposeWithTC(st, tc)
	}
}

// enterView advances the slot's current view, arms the new progress timer,
// and replays any buffered Prepare for the new view.
func (e *Engine) enterView(st *slotState, v types.View) {
	if v <= st.view || st.decided {
		return
	}
	st.view = v
	st.fastArmed = false
	st.pendingVote = nil
	st.timerRunning = true
	e.env.SetTimer(Timer{Kind: TimerView, Slot: st.slot, View: v, Delay: e.viewTimeout(v)})
	if prep, ok := st.prepBuffer[v]; ok {
		delete(st.prepBuffer, v)
		e.processPrepare(prep.Leader, prep)
	}
	for bv := range st.prepBuffer {
		if bv < v {
			delete(st.prepBuffer, bv)
		}
	}
}

// proposeWithTC starts the leader's tenure for view tc.View+1: it
// reproposes the TC's winning proposal if one exists, else proposes a
// fresh cut (§5.3 step 3).
func (e *Engine) proposeWithTC(st *slotState, tc *types.TC) {
	v := tc.View + 1
	if st.decided || st.myPrepare[v] != nil {
		return
	}
	var cut types.Cut
	if winner := tc.WinningProposal(e.cfg.Committee); winner != nil {
		cut = winner.Cut
	} else {
		cut = e.provider.AssembleCut(e.cfg.OptimisticTips)
	}
	prop := types.ConsensusProposal{Slot: st.slot, View: v, Cut: cut}
	prep := &types.Prepare{
		Leader:   e.cfg.Self,
		Proposal: prop,
		Ticket:   types.Ticket{Kind: types.TicketTC, TC: tc},
	}
	prep.Sig = e.cfg.Signer.Sign(prep.SigningBytes())
	st.myPrepare[v] = prep
	e.env.Broadcast(prep)
	e.processPrepare(e.cfg.Self, prep)
}
