package consensus

import (
	"testing"

	"repro/internal/types"
)

// TestFarFutureSlotFloodBounded: a Byzantine peer floods votes, acks,
// timeouts and stale coverage timers carrying far-future slot numbers.
// None of them may allocate slot state, corrupt the frontier (which
// would make gcSlots delete live slots), or grow memory.
func TestFarFutureSlotFloodBounded(t *testing.T) {
	n := newNet(t, func(id types.NodeID, cfg *Config) { cfg.VerifySigs = false })
	e := n.engines[0]
	slotsBefore := len(e.slots)
	frontierBefore := e.Frontier()

	for i := 0; i < 10_000; i++ {
		s := types.Slot(1e15) + types.Slot(i)
		e.OnPrepVote(1, &types.PrepVote{Slot: s, View: 0, Digest: types.Digest{1}, Voter: 1})
		e.OnConfirmAck(2, &types.ConfirmAck{Slot: s, View: 0, Digest: types.Digest{1}, Voter: 2})
		e.OnTimeoutMsg(3, &types.Timeout{Slot: s, View: 0, Voter: 3})
		e.OnTimer(Timer{Kind: TimerCoverage, Slot: s})
	}

	if got := len(e.slots); got != slotsBefore {
		t.Fatalf("flood allocated slot state: %d -> %d", slotsBefore, got)
	}
	if got := e.Frontier(); got != frontierBefore {
		t.Fatalf("flood moved frontier: %d -> %d", frontierBefore, got)
	}
}

// TestWindowAdmitsNearbySlots: slots within [nextExec, maxStarted+k] are
// still tracked — a timeout complaint for a legitimately running slot
// must allocate state so the replica can join the mutiny.
func TestWindowAdmitsNearbySlots(t *testing.T) {
	n := newNet(t, func(id types.NodeID, cfg *Config) { cfg.VerifySigs = false })
	e := n.engines[0]

	// Slot 3 is within MaxParallel (default 4) of the started frontier.
	e.OnTimeoutMsg(1, &types.Timeout{Slot: 3, View: 0, Voter: 1})
	_, timeouts, _, _, _ := e.DebugSlot(3)
	if timeouts[0] != 1 {
		t.Fatalf("in-window timeout not collected: %v", timeouts)
	}
	// Just beyond the window: rejected.
	e.OnTimeoutMsg(1, &types.Timeout{Slot: types.Slot(2 + e.cfg.MaxParallel*10), View: 0, Voter: 1})
	if _, ok := e.slots[types.Slot(2+e.cfg.MaxParallel*10)]; ok {
		t.Fatal("out-of-window timeout allocated state")
	}
}

// TestWindowFollowsProgress: as slots decide, the window's lower bound
// follows the execution frontier reported by the provider and old-slot
// messages stop allocating state after GC.
func TestWindowFollowsProgress(t *testing.T) {
	n := newNet(t, func(id types.NodeID, cfg *Config) { cfg.VerifySigs = false })
	e := n.engines[0]
	if !e.inWindow(1) || !e.inWindow(types.Slot(e.cfg.MaxParallel)) {
		t.Fatal("genesis window must admit the first k slots")
	}
	if e.inWindow(types.Slot(e.cfg.MaxParallel) + 1) {
		t.Fatal("genesis window must end at k")
	}
	if e.inWindow(0) {
		t.Fatal("slot 0 is never valid")
	}
}
