package sim

import (
	"time"

	"repro/internal/types"
)

// FaultSchedule injects failures into a simulation. All windows are
// half-open virtual-time intervals [From, To).
//
// Four fault kinds cover the paper's blip experiments plus crash-restart
// recovery:
//   - Down: the replica neither sends nor receives nor fires timers
//     (a crashed replica; used for the Fig. 1/7 leader-failure blips).
//   - Mute: the replica receives but its outbound messages are dropped
//     (a silent/Byzantine leader).
//   - Partition: messages crossing group boundaries are dropped
//     (the Fig. 8 partial partition).
//   - Restart: the replica's protocol state is torn down and re-built
//     mid-run (a process restart) — from its journal, or with amnesia.
//     Usually paired with a Down window ending at the restart instant.
type FaultSchedule struct {
	downs      []nodeWindow
	mutes      []nodeWindow
	partitions []partitionWindow
	restarts   []RestartEvent
	behaviors  []BehaviorWindow
}

// BehaviorWindow schedules a Byzantine behavior (internal/adversary) on
// one replica during [From, To). Unlike the benign faults above, behavior
// windows are not enforced by the engine: the cluster builder reads them
// and wraps the named replicas with adversary wrappers before the run
// (behaviors are protocol-level, not network-level). To <= 0 means "until
// the run ends". At most one behavior per node; at most f adversaries per
// schedule for the protocol's guarantees to hold.
type BehaviorWindow struct {
	Node     types.NodeID
	Behavior string
	From, To time.Duration
}

// RestartEvent describes one scheduled protocol restart.
type RestartEvent struct {
	Node types.NodeID
	At   time.Duration
	// Amnesia discards the node's journal: it restarts blank, like a
	// replica whose disk was lost (safe for at most f replicas).
	Amnesia bool
}

type nodeWindow struct {
	node     types.NodeID
	from, to time.Duration
}

type partitionWindow struct {
	group    map[types.NodeID]int
	from, to time.Duration
}

// Down marks node as crashed during [from, to).
func (f *FaultSchedule) Down(t time.Duration, node types.NodeID) bool {
	_, down := f.DownUntil(t, node)
	return down
}

// DownUntil reports whether node is crashed at t and, if so, when its
// current down window ends (overlapping windows are coalesced).
func (f *FaultSchedule) DownUntil(t time.Duration, node types.NodeID) (time.Duration, bool) {
	down := false
	until := t
	for changed := true; changed; {
		changed = false
		for _, w := range f.downs {
			if w.node == node && until >= w.from && until < w.to {
				down = true
				if w.to > until {
					until = w.to
					changed = true
				}
			}
		}
	}
	return until, down
}

// AddDown schedules a crash window.
func (f *FaultSchedule) AddDown(node types.NodeID, from, to time.Duration) *FaultSchedule {
	f.downs = append(f.downs, nodeWindow{node, from, to})
	return f
}

// AddMute schedules a silent-sender window.
func (f *FaultSchedule) AddMute(node types.NodeID, from, to time.Duration) *FaultSchedule {
	f.mutes = append(f.mutes, nodeWindow{node, from, to})
	return f
}

// AddPartition splits the committee into groups during [from, to); groups
// maps every affected node to a group index, and messages between
// different groups are dropped. Nodes absent from the map can talk to
// everyone.
func (f *FaultSchedule) AddPartition(groups map[types.NodeID]int, from, to time.Duration) *FaultSchedule {
	f.partitions = append(f.partitions, partitionWindow{group: groups, from: from, to: to})
	return f
}

// SplitPartition is a convenience for the paper's Fig. 8 scenario: nodes
// in `half` form group 1, everyone else group 0.
func (f *FaultSchedule) SplitPartition(n int, half []types.NodeID, from, to time.Duration) *FaultSchedule {
	groups := make(map[types.NodeID]int, n)
	for i := 0; i < n; i++ {
		groups[types.NodeID(i)] = 0
	}
	for _, id := range half {
		groups[id] = 1
	}
	return f.AddPartition(groups, from, to)
}

// Restart schedules a protocol restart of node at virtual time `at`:
// the engine tears the node's protocol state down and re-initializes it
// through the rebuild hook (Engine.SetRebuild). With amnesia the rebuild
// must discard the node's journal too. Pair with AddDown(node, from, at)
// to model the crash window preceding the restart.
func (f *FaultSchedule) Restart(node types.NodeID, at time.Duration, amnesia bool) *FaultSchedule {
	f.restarts = append(f.restarts, RestartEvent{Node: node, At: at, Amnesia: amnesia})
	return f
}

// AddBehavior schedules Byzantine behavior `name` on node during
// [from, to). Cluster builders (harness.Build, autobahn.NewSimCluster)
// honor the window by wrapping the node with internal/adversary; the
// engine itself is unaffected, so fault-free fixed-seed runs stay
// byte-identical. Behaviors cannot be combined with a Restart of the same
// node (the rebuild hook re-creates the node honestly), and cluster
// builders reject schedules with more than f behaviors — the protocol's
// quorum arguments assume ≤ f Byzantine replicas.
func (f *FaultSchedule) AddBehavior(node types.NodeID, name string, from, to time.Duration) *FaultSchedule {
	f.behaviors = append(f.behaviors, BehaviorWindow{Node: node, Behavior: name, From: from, To: to})
	return f
}

// Behaviors returns the scheduled behavior windows.
func (f *FaultSchedule) Behaviors() []BehaviorWindow { return f.behaviors }

// BehaviorFor returns the behavior window scheduled for a node, if any.
func (f *FaultSchedule) BehaviorFor(node types.NodeID) (BehaviorWindow, bool) {
	for _, b := range f.behaviors {
		if b.Node == node {
			return b, true
		}
	}
	return BehaviorWindow{}, false
}

// HasBehaviors reports whether any Byzantine behavior is scheduled.
func (f *FaultSchedule) HasBehaviors() bool { return len(f.behaviors) > 0 }

// Restarts returns the scheduled restart events.
func (f *FaultSchedule) Restarts() []RestartEvent { return f.restarts }

// HasRestarts reports whether any restart is scheduled (clusters use it
// to decide whether nodes need journals and a rebuild hook).
func (f *FaultSchedule) HasRestarts() bool { return len(f.restarts) > 0 }

// Blocked reports whether a message sent at t from a to b is dropped.
func (f *FaultSchedule) Blocked(t time.Duration, from, to types.NodeID) bool {
	if f.Down(t, from) || f.Down(t, to) {
		return true
	}
	for _, w := range f.mutes {
		if w.node == from && t >= w.from && t < w.to {
			return true
		}
	}
	for _, p := range f.partitions {
		if t >= p.from && t < p.to {
			ga, aok := p.group[from]
			gb, bok := p.group[to]
			if aok && bok && ga != gb {
				return true
			}
		}
	}
	return false
}
