package sim

import (
	"time"

	"repro/internal/types"
)

// FaultSchedule injects failures into a simulation. All windows are
// half-open virtual-time intervals [From, To).
//
// Three fault kinds cover the paper's blip experiments:
//   - Down: the replica neither sends nor receives nor fires timers
//     (a crashed replica; used for the Fig. 1/7 leader-failure blips).
//   - Mute: the replica receives but its outbound messages are dropped
//     (a silent/Byzantine leader).
//   - Partition: messages crossing group boundaries are dropped
//     (the Fig. 8 partial partition).
type FaultSchedule struct {
	downs      []nodeWindow
	mutes      []nodeWindow
	partitions []partitionWindow
}

type nodeWindow struct {
	node     types.NodeID
	from, to time.Duration
}

type partitionWindow struct {
	group    map[types.NodeID]int
	from, to time.Duration
}

// Down marks node as crashed during [from, to).
func (f *FaultSchedule) Down(t time.Duration, node types.NodeID) bool {
	_, down := f.DownUntil(t, node)
	return down
}

// DownUntil reports whether node is crashed at t and, if so, when its
// current down window ends (overlapping windows are coalesced).
func (f *FaultSchedule) DownUntil(t time.Duration, node types.NodeID) (time.Duration, bool) {
	down := false
	until := t
	for changed := true; changed; {
		changed = false
		for _, w := range f.downs {
			if w.node == node && until >= w.from && until < w.to {
				down = true
				if w.to > until {
					until = w.to
					changed = true
				}
			}
		}
	}
	return until, down
}

// AddDown schedules a crash window.
func (f *FaultSchedule) AddDown(node types.NodeID, from, to time.Duration) *FaultSchedule {
	f.downs = append(f.downs, nodeWindow{node, from, to})
	return f
}

// AddMute schedules a silent-sender window.
func (f *FaultSchedule) AddMute(node types.NodeID, from, to time.Duration) *FaultSchedule {
	f.mutes = append(f.mutes, nodeWindow{node, from, to})
	return f
}

// AddPartition splits the committee into groups during [from, to); groups
// maps every affected node to a group index, and messages between
// different groups are dropped. Nodes absent from the map can talk to
// everyone.
func (f *FaultSchedule) AddPartition(groups map[types.NodeID]int, from, to time.Duration) *FaultSchedule {
	f.partitions = append(f.partitions, partitionWindow{group: groups, from: from, to: to})
	return f
}

// SplitPartition is a convenience for the paper's Fig. 8 scenario: nodes
// in `half` form group 1, everyone else group 0.
func (f *FaultSchedule) SplitPartition(n int, half []types.NodeID, from, to time.Duration) *FaultSchedule {
	groups := make(map[types.NodeID]int, n)
	for i := 0; i < n; i++ {
		groups[types.NodeID(i)] = 0
	}
	for _, id := range half {
		groups[id] = 1
	}
	return f.AddPartition(groups, from, to)
}

// Blocked reports whether a message sent at t from a to b is dropped.
func (f *FaultSchedule) Blocked(t time.Duration, from, to types.NodeID) bool {
	if f.Down(t, from) || f.Down(t, to) {
		return true
	}
	for _, w := range f.mutes {
		if w.node == from && t >= w.from && t < w.to {
			return true
		}
	}
	for _, p := range f.partitions {
		if t >= p.from && t < p.to {
			ga, aok := p.group[from]
			gb, bok := p.group[to]
			if aok && bok && ga != gb {
				return true
			}
		}
	}
	return false
}
