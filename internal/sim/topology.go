package sim

import (
	"time"

	"repro/internal/types"
)

// Topology supplies one-way propagation delays between replicas.
type Topology interface {
	// Delay returns the one-way propagation delay from a to b.
	Delay(a, b types.NodeID) time.Duration
	// Regions returns the number of distinct regions (informational).
	Regions() int
}

// Region names of the paper's intra-US GCP deployment (§6, Table 1).
var IntraUSRegions = []string{"us-east1", "us-east5", "us-west1", "us-west4"}

// IntraUSRTTms is the paper's Table 1: round-trip times in milliseconds
// between the four GCP regions, indexed by IntraUSRegions order.
var IntraUSRTTms = [4][4]float64{
	{0.5, 19, 64, 55},
	{19, 0.5, 50, 57},
	{64, 50, 0.5, 28},
	{55, 57, 28, 0.5},
}

// regionTopology spreads n replicas round-robin across a set of regions
// with a symmetric inter-region RTT matrix; one-way delay is RTT/2.
type regionTopology struct {
	rttHalf [][]time.Duration
	regions int
}

// NewRegionTopology builds a topology from an RTT matrix given in
// milliseconds. Replica i is placed in region i mod len(matrix).
func NewRegionTopology(rttMs [][]float64) Topology {
	k := len(rttMs)
	half := make([][]time.Duration, k)
	for i := range half {
		if len(rttMs[i]) != k {
			panic("sim: RTT matrix must be square")
		}
		half[i] = make([]time.Duration, k)
		for j := range half[i] {
			half[i][j] = time.Duration(rttMs[i][j] / 2 * float64(time.Millisecond))
		}
	}
	return &regionTopology{rttHalf: half, regions: k}
}

// IntraUSTopology returns the paper's Table 1 topology (replica i in
// region i mod 4). It is the default for every experiment.
func IntraUSTopology() Topology {
	m := make([][]float64, 4)
	for i := range m {
		m[i] = IntraUSRTTms[i][:]
	}
	return NewRegionTopology(m)
}

func (t *regionTopology) Delay(a, b types.NodeID) time.Duration {
	ra := int(a) % t.regions
	rb := int(b) % t.regions
	return t.rttHalf[ra][rb]
}

func (t *regionTopology) Regions() int { return t.regions }

// UniformTopology gives every pair the same one-way delay — useful for
// unit tests with easily predictable arithmetic.
type UniformTopology struct {
	OneWay time.Duration
	Local  time.Duration // self/loopback delay
}

// Delay implements Topology.
func (t UniformTopology) Delay(a, b types.NodeID) time.Duration {
	if a == b {
		return t.Local
	}
	return t.OneWay
}

// Regions implements Topology.
func (t UniformTopology) Regions() int { return 1 }
