package sim

import (
	"time"

	"repro/internal/types"
)

// Network models the WAN data path between replicas:
//
//	sender NIC  ──►  propagation  ──►  receiver processing
//
// Messages are split into two classes by wire size. Bulk messages (data
// proposals, batch broadcasts, sync replies) are charged (i) sequential
// serialization on the sender's shared egress queue, (ii) one-way
// propagation delay from the latency matrix plus jitter, and (iii) a
// receiver-side processing queue modeling deserialization and storage —
// the resource the paper identifies as the throughput bottleneck for
// Autobahn and Bullshark ("bottlenecked on the cost of deserializing and
// storing data on disk", §6.1). Control messages (votes, QCs, prepares,
// timeouts) are charged propagation plus a fixed handling overhead and are
// never queued behind bulk data: real deployments carry them on separate
// connections serviced by other cores, and modeling head-of-line blocking
// here would manufacture protocol blips the paper's testbed does not have.
type Network struct {
	cfg    NetConfig
	engine *Engine
	// per-node queue frontiers (virtual times)
	egressFree []time.Duration
	procFree   []time.Duration
}

// NetConfig parameterizes the network model.
type NetConfig struct {
	// Topology supplies one-way propagation delays.
	Topology Topology
	// EgressBytesPerSec is the per-node NIC line rate for bulk data
	// (default 1.25 GB/s ≈ 10 Gb/s, the paper's machine type).
	EgressBytesPerSec float64
	// ProcBytesPerSec is the per-node bulk-data processing rate
	// (deserialize + store). Defaults to 100 MB/s: each replica ingests
	// the other n-1 lanes' data (own batches skip the wire), so at n=4 a
	// load of L tx/s of 512-byte transactions costs 0.75*L*512 B/s —
	// calibrated to put the fault-free peak near the paper's ~234k tx/s.
	ProcBytesPerSec float64
	// ProcOverhead is charged per bulk message (default 150µs).
	ProcOverhead time.Duration
	// CtrlOverhead is charged per control message (default 60µs,
	// approximating deserialize + signature checks).
	CtrlOverhead time.Duration
	// BulkThreshold classifies messages: wire size >= threshold is bulk
	// (default 16 KiB).
	BulkThreshold int
	// JitterFrac adds U[0, JitterFrac] × latency of random extra delay
	// (default 0.02).
	JitterFrac float64
}

// DefaultNetConfig returns the configuration used throughout the
// evaluation (10 Gb/s NIC, 100 MB/s processing, 2% jitter).
func DefaultNetConfig(topo Topology) NetConfig {
	return NetConfig{
		Topology:          topo,
		EgressBytesPerSec: 1.25e9,
		ProcBytesPerSec:   100e6,
		ProcOverhead:      150 * time.Microsecond,
		CtrlOverhead:      60 * time.Microsecond,
		BulkThreshold:     16 << 10,
		JitterFrac:        0.02,
	}
}

// NewNetwork builds a network from cfg, filling zero fields with defaults.
func NewNetwork(cfg NetConfig) *Network {
	if cfg.Topology == nil {
		panic("sim: NetConfig.Topology is required")
	}
	def := DefaultNetConfig(cfg.Topology)
	if cfg.EgressBytesPerSec == 0 {
		cfg.EgressBytesPerSec = def.EgressBytesPerSec
	}
	if cfg.ProcBytesPerSec == 0 {
		cfg.ProcBytesPerSec = def.ProcBytesPerSec
	}
	if cfg.ProcOverhead == 0 {
		cfg.ProcOverhead = def.ProcOverhead
	}
	if cfg.CtrlOverhead == 0 {
		cfg.CtrlOverhead = def.CtrlOverhead
	}
	if cfg.BulkThreshold == 0 {
		cfg.BulkThreshold = def.BulkThreshold
	}
	if cfg.JitterFrac == 0 {
		cfg.JitterFrac = def.JitterFrac
	}
	return &Network{cfg: cfg}
}

func (n *Network) bind(e *Engine) {
	n.engine = e
}

func (n *Network) frontier(id types.NodeID) {
	for int(id) >= len(n.egressFree) {
		n.egressFree = append(n.egressFree, 0)
		n.procFree = append(n.procFree, 0)
	}
}

// deliveryTime computes the virtual delivery time for m sent at t.
func (n *Network) deliveryTime(t time.Duration, from, to types.NodeID, m types.Message) time.Duration {
	n.frontier(from)
	n.frontier(to)
	size := m.WireSize()
	bulk := size >= n.cfg.BulkThreshold

	// Sender serialization.
	sendDone := t
	if bulk {
		start := maxDur(t, n.egressFree[from])
		sendDone = start + bytesTime(size, n.cfg.EgressBytesPerSec)
		n.egressFree[from] = sendDone
	} else {
		sendDone = t + bytesTime(size, n.cfg.EgressBytesPerSec)
	}

	// Propagation.
	lat := n.cfg.Topology.Delay(from, to)
	if n.cfg.JitterFrac > 0 {
		frac := n.cfg.JitterFrac * float64(n.engine.rng.Uint64()%1000) / 1000.0
		lat += time.Duration(float64(lat) * frac)
	}
	arrive := sendDone + lat

	// Receiver processing.
	if bulk {
		start := maxDur(arrive, n.procFree[to])
		done := start + n.cfg.ProcOverhead + bytesTime(size, n.cfg.ProcBytesPerSec)
		n.procFree[to] = done
		return done
	}
	return arrive + n.cfg.CtrlOverhead
}

// ProcBacklog returns how far node id's bulk processing frontier extends
// beyond now — a measure of data-processing queueing (used in tests).
func (n *Network) ProcBacklog(now time.Duration, id types.NodeID) time.Duration {
	n.frontier(id)
	if n.procFree[id] <= now {
		return 0
	}
	return n.procFree[id] - now
}

func bytesTime(size int, bps float64) time.Duration {
	return time.Duration(float64(size) / bps * float64(time.Second))
}

func maxDur(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}
