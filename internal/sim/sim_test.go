package sim

import (
	"testing"
	"time"

	"repro/internal/runtime"
	"repro/internal/types"
)

// echoProto counts deliveries and replies to every message; used to
// exercise the engine plumbing.
type echoProto struct {
	id        types.NodeID
	delivered []time.Duration
	timers    []runtime.TimerTag
	batches   int
	reply     bool
}

type ping struct{ size int }

func (p *ping) Type() types.MsgType { return 200 }
func (p *ping) WireSize() int       { return p.size }

func (e *echoProto) Init(ctx runtime.Context)                    { e.id = ctx.ID() }
func (e *echoProto) OnClientBatch(runtime.Context, *types.Batch) {}
func (e *echoProto) OnTimer(ctx runtime.Context, tag runtime.TimerTag) {
	e.timers = append(e.timers, tag)
}
func (e *echoProto) OnMessage(ctx runtime.Context, from types.NodeID, m types.Message) {
	e.delivered = append(e.delivered, ctx.Now())
	if e.reply {
		ctx.Send(from, &ping{size: 100})
	}
}

func twoNodeEngine(oneWay time.Duration, cfg NetConfig) (*Engine, *echoProto, *echoProto) {
	if cfg.Topology == nil {
		cfg.Topology = UniformTopology{OneWay: oneWay}
	}
	if cfg.JitterFrac == 0 {
		cfg.JitterFrac = -1 // sentinel: NewNetwork replaces 0 with default
	}
	net := NewNetwork(cfg)
	net.cfg.JitterFrac = 0 // exact arithmetic for tests
	e := NewEngine(Config{Net: net, Seed: 1})
	a, b := &echoProto{}, &echoProto{}
	e.AddNode(a)
	e.AddNode(b)
	return e, a, b
}

func TestControlMessageLatency(t *testing.T) {
	e, _, b := twoNodeEngine(10*time.Millisecond, NetConfig{})
	e.At(0, func() {
		e.nodes[0].Send(1, &ping{size: 100})
	})
	e.Run(time.Second)
	if len(b.delivered) != 1 {
		t.Fatalf("delivered %d messages", len(b.delivered))
	}
	// 100 bytes: egress ~80ns + 10ms propagation + 60µs control overhead.
	got := b.delivered[0]
	want := 10*time.Millisecond + 60*time.Microsecond
	if got < want || got > want+time.Millisecond {
		t.Fatalf("control delivery at %v, want ≈%v", got, want)
	}
}

func TestBulkProcessingQueueSerializes(t *testing.T) {
	e, _, b := twoNodeEngine(10*time.Millisecond, NetConfig{
		ProcBytesPerSec: 100e6, ProcOverhead: time.Millisecond,
	})
	const size = 1 << 20 // 1 MiB >= bulk threshold
	e.At(0, func() {
		e.nodes[0].Send(1, &ping{size: size})
		e.nodes[0].Send(1, &ping{size: size})
	})
	e.Run(time.Second)
	if len(b.delivered) != 2 {
		t.Fatalf("delivered %d", len(b.delivered))
	}
	proc := time.Duration(float64(size) / 100e6 * float64(time.Second))
	gap := b.delivered[1] - b.delivered[0]
	// The second message queues behind the first's processing.
	if gap < proc {
		t.Fatalf("bulk gap %v, want >= processing time %v", gap, proc)
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() []time.Duration {
		net := NewNetwork(DefaultNetConfig(IntraUSTopology()))
		e := NewEngine(Config{Net: net, Seed: 99})
		a, b := &echoProto{reply: true}, &echoProto{reply: true}
		e.AddNode(a)
		e.AddNode(b)
		e.At(0, func() { e.nodes[0].Send(1, &ping{size: 1 << 20}) })
		e.At(time.Millisecond, func() { e.nodes[1].Send(0, &ping{size: 500}) })
		e.Run(2 * time.Second)
		return append(append([]time.Duration{}, a.delivered...), b.delivered...)
	}
	r1, r2 := run(), run()
	if len(r1) != len(r2) || len(r1) == 0 {
		t.Fatalf("replay lengths differ: %d vs %d", len(r1), len(r2))
	}
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatalf("replay diverged at %d: %v vs %v", i, r1[i], r2[i])
		}
	}
}

func TestTimerReplaceAndCancel(t *testing.T) {
	e, a, _ := twoNodeEngine(time.Millisecond, NetConfig{})
	tag := runtime.TimerTag{Kind: 1, A: 42}
	e.At(0, func() {
		e.nodes[0].SetTimer(50*time.Millisecond, tag)
		e.nodes[0].SetTimer(80*time.Millisecond, tag) // replaces
	})
	e.Run(200 * time.Millisecond)
	if len(a.timers) != 1 {
		t.Fatalf("timer fired %d times, want 1 (replacement)", len(a.timers))
	}

	e2, a2, _ := twoNodeEngine(time.Millisecond, NetConfig{})
	e2.At(0, func() {
		e2.nodes[0].SetTimer(50*time.Millisecond, tag)
		e2.nodes[0].CancelTimer(tag)
	})
	e2.Run(200 * time.Millisecond)
	if len(a2.timers) != 0 {
		t.Fatalf("cancelled timer fired")
	}
}

// TestTimerDefersAcrossCrash: a timer due while its node is down fires at
// recovery instead of being lost (periodic chains must survive crashes).
func TestTimerDefersAcrossCrash(t *testing.T) {
	faults := (&FaultSchedule{}).AddDown(0, 40*time.Millisecond, 100*time.Millisecond)
	net := NewNetwork(NetConfig{Topology: UniformTopology{OneWay: time.Millisecond}})
	e := NewEngine(Config{Net: net, Faults: faults, Seed: 1})
	a := &echoProto{}
	e.AddNode(a)
	e.At(0, func() {
		e.nodes[0].SetTimer(50*time.Millisecond, runtime.TimerTag{Kind: 2})
	})
	e.Run(time.Second)
	if len(a.timers) != 1 {
		t.Fatalf("timer fired %d times", len(a.timers))
	}
	// It fired, and only after the down window ended.
	// (echoProto doesn't record fire times; rely on dispatch semantics:
	// Down() at fire time reschedules to the window end.)
}

func TestFaultScheduleBlocking(t *testing.T) {
	f := (&FaultSchedule{}).
		AddDown(1, 10, 20).
		AddMute(2, 30, 40).
		SplitPartition(4, []types.NodeID{2, 3}, 50, 60)

	if !f.Blocked(15, 0, 1) || !f.Blocked(15, 1, 0) {
		t.Fatal("down node must not send or receive")
	}
	if f.Blocked(25, 0, 1) {
		t.Fatal("recovered node must communicate")
	}
	if !f.Blocked(35, 2, 0) {
		t.Fatal("muted node must not send")
	}
	if f.Blocked(35, 0, 2) {
		t.Fatal("muted node must still receive")
	}
	if !f.Blocked(55, 0, 2) || !f.Blocked(55, 3, 1) {
		t.Fatal("cross-partition traffic must drop")
	}
	if f.Blocked(55, 0, 1) || f.Blocked(55, 2, 3) {
		t.Fatal("intra-partition traffic must flow")
	}
}

func TestDownUntilCoalescesWindows(t *testing.T) {
	f := (&FaultSchedule{}).AddDown(0, 10, 20).AddDown(0, 20, 30).AddDown(0, 25, 35)
	until, down := f.DownUntil(12, 0)
	if !down || until != 35 {
		t.Fatalf("DownUntil = (%v, %v), want (35, true)", until, down)
	}
	if _, down := f.DownUntil(35, 0); down {
		t.Fatal("window end is exclusive")
	}
}

func TestIntraUSTopologyMatchesTable1(t *testing.T) {
	topo := IntraUSTopology()
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			want := time.Duration(IntraUSRTTms[i][j] / 2 * float64(time.Millisecond))
			if d := topo.Delay(types.NodeID(i), types.NodeID(j)); d != want {
				t.Fatalf("delay(%d,%d) = %v, want %v", i, j, d, want)
			}
		}
	}
	// Replicas beyond 4 wrap around regions.
	if topo.Delay(0, 4) != topo.Delay(0, 0) {
		t.Fatal("replica 4 must map to region 0")
	}
}

func TestEverySchedulesUntilBound(t *testing.T) {
	e, _, _ := twoNodeEngine(time.Millisecond, NetConfig{})
	var fired []time.Duration
	e.Every(10*time.Millisecond, 20*time.Millisecond, 100*time.Millisecond, func(now time.Duration) {
		fired = append(fired, now)
	})
	e.Run(time.Second)
	if len(fired) != 5 { // 10,30,50,70,90
		t.Fatalf("Every fired %d times: %v", len(fired), fired)
	}
}
