// Package sim is a deterministic discrete-event simulator for WAN-replicated
// protocols. It executes runtime.Protocol nodes over a modeled network
// (latency matrix, per-link bandwidth, per-node bulk-data processing — see
// network.go) under injectable faults (crashes, mutes, partitions — see
// faults.go), with virtual time: a 60-second 250k tx/s run completes in well
// under a second of real time and is bit-for-bit reproducible from its seed.
//
// This package substitutes for the paper's 4-region GCP testbed
// (DESIGN.md §1, substitution 1). Protocol code is identical to what the
// real TCP runtime executes.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand/v2"
	"time"

	"repro/internal/runtime"
	"repro/internal/types"
)

// eventKind discriminates scheduled events.
type eventKind uint8

const (
	evDeliver eventKind = iota
	evTimer
	evFunc
)

type event struct {
	at   time.Duration
	seq  uint64 // tie-break for determinism
	kind eventKind
	node types.NodeID
	from types.NodeID
	msg  types.Message
	tag  runtime.TimerTag
	tseq uint64 // timer epoch
	fn   func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Config parameterizes an engine.
type Config struct {
	// Net models the network; required.
	Net *Network
	// Faults is the fault schedule; nil means fault-free.
	Faults *FaultSchedule
	// Seed drives all simulator randomness (jitter, per-node Rand).
	Seed uint64
	// MaxEvents aborts runaway simulations; 0 means a generous default.
	MaxEvents uint64
}

// Engine is the discrete-event core.
type Engine struct {
	cfg    Config
	now    time.Duration
	heap   eventHeap
	seq    uint64
	nodes  []*simNode
	faults *FaultSchedule
	rng    *rand.Rand
	events uint64
	// rebuild constructs a fresh protocol instance for a Restart fault;
	// required iff the fault schedule contains restarts.
	rebuild           func(id types.NodeID, amnesia bool) runtime.Protocol
	restartsScheduled bool
	// Stats
	delivered uint64
	dropped   uint64
}

// NewEngine builds an engine for the given configuration.
func NewEngine(cfg Config) *Engine {
	if cfg.Net == nil {
		panic("sim: Config.Net is required")
	}
	if cfg.MaxEvents == 0 {
		cfg.MaxEvents = 500_000_000
	}
	faults := cfg.Faults
	if faults == nil {
		faults = &FaultSchedule{}
	}
	e := &Engine{
		cfg:    cfg,
		faults: faults,
		rng:    rand.New(rand.NewPCG(cfg.Seed, cfg.Seed^0x9e3779b97f4a7c15)),
	}
	cfg.Net.bind(e)
	return e
}

// AddNode registers a protocol node; nodes must be added in ID order
// before Run. Init is deferred until Run starts.
func (e *Engine) AddNode(p runtime.Protocol) types.NodeID {
	id := types.NodeID(len(e.nodes))
	n := &simNode{
		engine: e,
		id:     id,
		proto:  p,
		timers: make(map[runtime.TimerTag]uint64),
		rng:    rand.New(rand.NewPCG(e.cfg.Seed^uint64(id+1), 0xda942042e4dd58b5^uint64(id))),
	}
	e.nodes = append(e.nodes, n)
	return id
}

// NumNodes returns the number of registered nodes.
func (e *Engine) NumNodes() int { return len(e.nodes) }

// Now returns current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// At schedules fn to run at virtual time t (>= Now).
func (e *Engine) At(t time.Duration, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.push(&event{at: t, kind: evFunc, fn: fn})
}

// Every schedules fn at start, start+interval, ... while t < until.
func (e *Engine) Every(start, interval, until time.Duration, fn func(t time.Duration)) {
	if interval <= 0 {
		panic("sim: Every interval must be positive")
	}
	var schedule func(t time.Duration)
	schedule = func(t time.Duration) {
		if t >= until {
			return
		}
		e.At(t, func() {
			fn(t)
			schedule(t + interval)
		})
	}
	schedule(start)
}

// SetRebuild registers the factory Restart faults use to re-instantiate
// a node's protocol (typically re-reading its journal; with amnesia the
// factory must hand the node a fresh journal instead).
func (e *Engine) SetRebuild(fn func(id types.NodeID, amnesia bool) runtime.Protocol) {
	e.rebuild = fn
}

// restartNode tears down a node's protocol state and re-initializes it
// (the process restarted). Pending timers of the old incarnation become
// stale; in-flight messages still deliver, as the network would redeliver
// to a restarted process.
func (e *Engine) restartNode(id types.NodeID, amnesia bool) {
	if e.rebuild == nil {
		panic(fmt.Sprintf("sim: Restart fault for %s scheduled without Engine.SetRebuild", id))
	}
	n := e.nodes[id]
	n.timers = make(map[runtime.TimerTag]uint64)
	n.proto = e.rebuild(id, amnesia)
	n.proto.Init(n)
}

// Run executes events until virtual time `until` (exclusive) or until the
// event queue drains. It returns the number of events processed.
func (e *Engine) Run(until time.Duration) uint64 {
	// Initialize nodes on first run.
	for _, n := range e.nodes {
		if !n.inited {
			n.inited = true
			n.proto.Init(n)
		}
	}
	// Schedule Restart faults once nodes exist. Fault-free schedules push
	// no events here, keeping fixed-seed runs byte-identical.
	if !e.restartsScheduled {
		e.restartsScheduled = true
		for _, r := range e.faults.Restarts() {
			r := r
			e.push(&event{at: r.At, kind: evFunc, fn: func() { e.restartNode(r.Node, r.Amnesia) }})
		}
	}
	processed := uint64(0)
	for len(e.heap) > 0 {
		ev := e.heap[0]
		if ev.at >= until {
			break
		}
		heap.Pop(&e.heap)
		e.now = ev.at
		e.events++
		processed++
		if e.events > e.cfg.MaxEvents {
			panic(fmt.Sprintf("sim: exceeded MaxEvents=%d at t=%s", e.cfg.MaxEvents, e.now))
		}
		e.dispatch(ev)
	}
	if e.now < until {
		e.now = until
	}
	return processed
}

func (e *Engine) dispatch(ev *event) {
	switch ev.kind {
	case evFunc:
		ev.fn()
	case evDeliver:
		n := e.nodes[ev.node]
		if e.faults.Down(e.now, ev.node) {
			e.dropped++
			return
		}
		e.delivered++
		n.proto.OnMessage(n, ev.from, ev.msg)
	case evTimer:
		n := e.nodes[ev.node]
		// Stale timer epochs (cancelled or replaced) are ignored.
		if cur, ok := n.timers[ev.tag]; !ok || cur != ev.tseq {
			return
		}
		if until, down := e.faults.DownUntil(e.now, ev.node); down {
			// A crashed process's pending timers fire when it resumes
			// (the process restarts and its timer loops re-arm). Without
			// this, periodic timer chains would die permanently.
			ev2 := *ev
			ev2.at = until
			e.push(&ev2)
			return
		}
		delete(n.timers, ev.tag)
		n.proto.OnTimer(n, ev.tag)
	}
}

func (e *Engine) push(ev *event) {
	e.seq++
	ev.seq = e.seq
	heap.Push(&e.heap, ev)
}

// SubmitBatch injects a client batch at node id at the current time
// (workload generators call this from At/Every callbacks).
func (e *Engine) SubmitBatch(id types.NodeID, b *types.Batch) {
	n := e.nodes[id]
	if e.faults.Down(e.now, id) {
		return
	}
	n.proto.OnClientBatch(n, b)
}

// Stats returns (delivered, dropped) message counts.
func (e *Engine) Stats() (delivered, dropped uint64) { return e.delivered, e.dropped }

// NodeDown reports whether id is crashed at the current virtual time
// (workload generators redirect client load away from crashed replicas,
// as real clients re-submitting to another replica would).
func (e *Engine) NodeDown(id types.NodeID) bool { return e.faults.Down(e.now, id) }

// Network returns the engine's network model.
func (e *Engine) Network() *Network { return e.cfg.Net }

// send models the network pipeline for one message; called by simNode.
func (e *Engine) send(from, to types.NodeID, m types.Message) {
	if e.faults.Blocked(e.now, from, to) {
		e.dropped++
		return
	}
	deliverAt := e.cfg.Net.deliveryTime(e.now, from, to, m)
	e.push(&event{at: deliverAt, kind: evDeliver, node: to, from: from, msg: m})
}

// simNode adapts a protocol to the engine; it implements runtime.Context.
type simNode struct {
	engine *Engine
	id     types.NodeID
	proto  runtime.Protocol
	inited bool
	timers map[runtime.TimerTag]uint64 // tag -> live epoch
	tseq   uint64
	rng    *rand.Rand
}

var _ runtime.Context = (*simNode)(nil)

func (n *simNode) ID() types.NodeID   { return n.id }
func (n *simNode) Now() time.Duration { return n.engine.now }
func (n *simNode) Rand() uint64       { return n.rng.Uint64() }

func (n *simNode) Send(to types.NodeID, m types.Message) {
	if int(to) >= len(n.engine.nodes) {
		panic(fmt.Sprintf("sim: %s sends to unknown node %s", n.id, to))
	}
	n.engine.send(n.id, to, m)
}

func (n *simNode) Broadcast(m types.Message) {
	// Deterministic rotation starting after self spreads egress fairly.
	num := len(n.engine.nodes)
	for off := 1; off < num; off++ {
		to := types.NodeID((int(n.id) + off) % num)
		n.engine.send(n.id, to, m)
	}
}

func (n *simNode) SetTimer(d time.Duration, tag runtime.TimerTag) {
	if d < 0 {
		d = 0
	}
	n.tseq++
	n.timers[tag] = n.tseq
	n.engine.push(&event{
		at:   n.engine.now + d,
		kind: evTimer,
		node: n.id,
		tag:  tag,
		tseq: n.tseq,
	})
}

func (n *simNode) CancelTimer(tag runtime.TimerTag) {
	delete(n.timers, tag)
}
