package crypto

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	gort "runtime"
	"sync"
	"sync/atomic"

	"repro/internal/types"
)

// This file implements the amortized verification primitives behind the
// staged ingress pipeline: a bounded memo of already-verified signatures
// (VerifyCache) and a BatchVerifier that checks many signatures at once,
// spreading the curve arithmetic across every available core.
//
// The memo is the trust hand-off between the pipeline stages: transport
// workers pre-verify a message's signatures off the event loop, populating
// the memo; when the single-threaded state machine later re-checks the
// same signature inline, the check resolves to a constant-time lookup
// instead of a second scalar multiplication. Paths that bypass
// pre-verification (the discrete-event simulator, direct unit tests)
// simply miss the memo and fall through to a full verification, so no
// path ever trusts an unchecked signature.

// memoKey identifies one verified signature. The digest covers both the
// message and the signature bytes: caching by message alone would let an
// attacker replay a *different* (invalid) signature for a known-signed
// message and have it accepted — harmless for authentication, but the
// bogus share could then be aggregated into a PoA or QC that every other
// replica rejects.
type memoKey struct {
	signer types.NodeID
	digest [32]byte
}

func makeMemoKey(signer types.NodeID, msg, sig []byte) memoKey {
	h := sha256.New()
	var n [4]byte
	binary.LittleEndian.PutUint32(n[:], uint32(len(msg)))
	h.Write(n[:])
	h.Write(msg)
	h.Write(sig)
	var k memoKey
	k.signer = signer
	h.Sum(k.digest[:0])
	return k
}

// VerifyCache wraps a Verifier with a bounded memo of signatures that
// already verified successfully. Failed verifications are never cached.
// Safe for concurrent use; implements Verifier.
//
// The memo uses two generations: inserts go to the young generation, and
// when it fills, the old generation is discarded and the young one takes
// its place. Lookups consult both. This bounds memory at ~2x capacity
// with O(1) operations and no per-entry bookkeeping.
type VerifyCache struct {
	inner Verifier

	mu       sync.RWMutex
	capacity int
	young    map[memoKey]struct{}
	old      map[memoKey]struct{}

	// Whole-certificate verdict memo (same two-generation scheme,
	// separate maps): a key here attests that an entire cert — every
	// share, threshold and distinctness included — verified under one of
	// the quorum helpers. Certificates re-arrive constantly (a PoA rides
	// in its car, then standalone, then in every cut that includes the
	// tip; a CommitQC rides the notice, the ticket and the commit-reply
	// path), and at large committees each re-arrival would otherwise
	// cost n share-memo lookups; the cert memo collapses it to one.
	certYoung map[[32]byte]struct{}
	certOld   map[[32]byte]struct{}

	// Counters are atomic: the hit path must stay lock-free beyond the
	// read lock — it is shared between the event loop and every
	// pre-verification worker.
	hits   atomic.Uint64
	misses atomic.Uint64

	certHits   atomic.Uint64
	certMisses atomic.Uint64
}

// NewVerifyCache wraps v with a memo holding at least capacity verified
// signatures (default 1<<14).
func NewVerifyCache(v Verifier, capacity int) *VerifyCache {
	if capacity <= 0 {
		capacity = 1 << 14
	}
	return &VerifyCache{
		inner:     v,
		capacity:  capacity,
		young:     make(map[memoKey]struct{}),
		old:       make(map[memoKey]struct{}),
		certYoung: make(map[[32]byte]struct{}),
		certOld:   make(map[[32]byte]struct{}),
	}
}

// Verify implements Verifier: memo hit, else full verification (caching
// the result only on success).
func (c *VerifyCache) Verify(signer types.NodeID, msg, sig []byte) bool {
	k := makeMemoKey(signer, msg, sig)
	c.mu.RLock()
	_, ok := c.young[k]
	if !ok {
		_, ok = c.old[k]
	}
	c.mu.RUnlock()
	if ok {
		c.hits.Add(1)
		return true
	}
	if !c.inner.Verify(signer, msg, sig) {
		return false
	}
	c.insert(k)
	return true
}

func (c *VerifyCache) insert(k memoKey) {
	c.misses.Add(1)
	c.mu.Lock()
	if len(c.young) >= c.capacity {
		c.old = c.young
		c.young = make(map[memoKey]struct{}, c.capacity)
	}
	c.young[k] = struct{}{}
	c.mu.Unlock()
}

// Cached reports whether the exact (signer, msg, sig) triple is memoized
// (tests and stats; a false result says nothing about validity).
func (c *VerifyCache) Cached(signer types.NodeID, msg, sig []byte) bool {
	k := makeMemoKey(signer, msg, sig)
	c.mu.RLock()
	defer c.mu.RUnlock()
	if _, ok := c.young[k]; ok {
		return true
	}
	_, ok := c.old[k]
	return ok
}

// Stats returns the memo hit/miss counters.
func (c *VerifyCache) Stats() (hits, misses uint64) {
	return c.hits.Load(), c.misses.Load()
}

// CertStats returns the whole-certificate verdict memo counters.
func (c *VerifyCache) CertStats() (hits, misses uint64) {
	return c.certHits.Load(), c.certMisses.Load()
}

// certHit reports (and counts) whether a whole-cert verdict is memoized.
func (c *VerifyCache) certHit(k [32]byte) bool {
	c.mu.RLock()
	_, ok := c.certYoung[k]
	if !ok {
		_, ok = c.certOld[k]
	}
	c.mu.RUnlock()
	if ok {
		c.certHits.Add(1)
	}
	return ok
}

// certInsert memoizes a whole-cert verdict. Only certificates whose every
// share verified may be inserted — a forged cert must never be cached.
func (c *VerifyCache) certInsert(k [32]byte) {
	c.certMisses.Add(1)
	c.mu.Lock()
	if len(c.certYoung) >= c.capacity {
		c.certOld = c.certYoung
		c.certYoung = make(map[[32]byte]struct{}, c.capacity)
	}
	c.certYoung[k] = struct{}{}
	c.mu.Unlock()
}

// SequentialVerifier marks the legacy certificate-verification path: the
// quorum helpers and BatchVerifier check every share with one inline
// Verify call each — no batching, no parallel striping, and no memo of
// either shares or whole-cert verdicts. It exists as the measured
// baseline for the committee-scaling benchmark (`bench -exp committee`),
// so the batch/memo speedup is quantified against the naive path rather
// than asserted.
type SequentialVerifier struct {
	inner Verifier
}

// Sequential wraps v so certificate verification takes the sequential
// baseline path: the quorum helpers see the wrapper type and fall back
// to one inline Verify per share. Wrap the suite's raw verifier (not a
// VerifyCache) to measure the fully un-memoized baseline.
func Sequential(v Verifier) *SequentialVerifier { return &SequentialVerifier{inner: v} }

// Verify implements Verifier by delegating to the wrapped verifier.
func (s *SequentialVerifier) Verify(signer types.NodeID, msg, sig []byte) bool {
	return s.inner.Verify(signer, msg, sig)
}

// batchItem is one queued signature check.
type batchItem struct {
	signer types.NodeID
	msg    []byte
	sig    []byte
}

// BatchVerifier collects signature checks and verifies them together,
// amortizing cost two ways: duplicate and memoized signatures are checked
// once (when the underlying Verifier is a VerifyCache), and the remaining
// curve arithmetic is spread across all available cores. It works with
// any Suite — ed25519 and nop alike — since it drives the suite's own
// Verifier.
//
// A BatchVerifier is single-use and not safe for concurrent use; create
// one per batch. (The underlying VerifyCache is shared and thread-safe.)
type BatchVerifier struct {
	v     Verifier
	items []batchItem
}

// NewBatchVerifier builds an empty batch over v. Pass a *VerifyCache to
// get memo amortization in addition to parallelism.
func NewBatchVerifier(v Verifier) *BatchVerifier {
	return &BatchVerifier{v: v}
}

// Add queues one signature check. The caller must not mutate msg or sig
// until Verify returns.
func (b *BatchVerifier) Add(signer types.NodeID, msg, sig []byte) {
	b.items = append(b.items, batchItem{signer: signer, msg: msg, sig: sig})
}

// Len reports the number of queued checks.
func (b *BatchVerifier) Len() int { return len(b.items) }

// AddPoA queues a PoA's shares after validating its structure (distinct
// committee signers at the f+1 threshold) — the batch form of VerifyPoA.
func (b *BatchVerifier) AddPoA(committee types.Committee, poa *types.PoA) error {
	if poa == nil {
		return fmt.Errorf("crypto: nil PoA")
	}
	if len(poa.Shares) < committee.PoAQuorum() {
		return fmt.Errorf("crypto: %d shares below threshold %d", len(poa.Shares), committee.PoAQuorum())
	}
	if _, err := DistinctSigners(committee, poa.Shares); err != nil {
		return err
	}
	msg := poa.SigningBytes()
	for _, s := range poa.Shares {
		b.Add(s.Signer, msg, s.Sig)
	}
	return nil
}

// parallelThreshold is the batch size below which fanning out to worker
// goroutines costs more than it saves.
const parallelThreshold = 4

// Verify checks every queued signature and fails if any one is invalid.
// On a VerifyCache only the valid signatures are memoized — a batch
// containing a forgery rejects, and the forgery is never cached. The
// batch is cleared afterwards.
func (b *BatchVerifier) Verify() error {
	items := b.items
	b.items = nil
	if len(items) == 0 {
		return nil
	}
	if bad := verifyRange(b.v, items); bad >= 0 {
		return fmt.Errorf("crypto: invalid signature from %s in batch of %d", items[bad].signer, len(items))
	}
	return nil
}

// VerifyCert is Verify for the queued shares of ONE certificate, with
// whole-cert amortization on top of the per-share path: when the
// underlying verifier is a VerifyCache, the cert's verdict — keyed by a
// digest over domain and every (signer, msg, sig) triple — is memoized,
// so a re-arriving certificate costs one hash and one map lookup instead
// of n share checks. domain separates certificate kinds that could
// otherwise collide on identical share sets (PoA vs QC framings).
//
// The happy path is one batched verification of all shares (parallel
// striping, pass/fail only). Only when that batch REJECTS does the
// per-share bisection run, to name the forged share in the error — the
// attribution cost is paid exclusively by invalid certificates.
//
// A *SequentialVerifier forces the legacy path instead: one inline check
// per share, no memo, no batching (the committee-scaling baseline).
func (b *BatchVerifier) VerifyCert(domain string) error {
	items := b.items
	b.items = nil
	if len(items) == 0 {
		return nil
	}
	if sv, ok := b.v.(*SequentialVerifier); ok {
		for i := range items {
			it := &items[i]
			if !sv.inner.Verify(it.signer, it.msg, it.sig) {
				return fmt.Errorf("crypto: invalid signature from %s in batch of %d", it.signer, len(items))
			}
		}
		return nil
	}
	cache, _ := b.v.(*VerifyCache)
	var key [32]byte
	if cache != nil {
		key = certFingerprint(domain, items)
		if cache.certHit(key) {
			return nil
		}
	}
	if !allValid(b.v, items) {
		// Batch failure: bisect to attribute the forgery. The valid
		// shares checked along the way still land in the share memo (when
		// cached), so an attacker padding real shares with one forgery
		// cannot make honest replicas re-pay for the real ones.
		bad := bisect(b.v, items)
		return fmt.Errorf("crypto: invalid signature from %s in batch of %d", items[bad].signer, len(items))
	}
	if cache != nil {
		cache.certInsert(key)
	}
	return nil
}

// certFingerprint digests one certificate's identity for the verdict
// memo: the domain tag plus every queued (signer, msg, sig) triple, all
// length-prefixed. Any change to any share — content, signature, order,
// count — yields a different key.
func certFingerprint(domain string, items []batchItem) [32]byte {
	h := sha256.New()
	var n [8]byte
	binary.LittleEndian.PutUint32(n[:4], uint32(len(domain)))
	binary.LittleEndian.PutUint32(n[4:], uint32(len(items)))
	h.Write(n[:])
	h.Write([]byte(domain))
	for i := range items {
		it := &items[i]
		binary.LittleEndian.PutUint32(n[:4], uint32(it.signer))
		binary.LittleEndian.PutUint32(n[4:], uint32(len(it.msg)))
		h.Write(n[:])
		h.Write(it.msg)
		binary.LittleEndian.PutUint32(n[:4], uint32(len(it.sig)))
		h.Write(n[:4])
		h.Write(it.sig)
	}
	var key [32]byte
	h.Sum(key[:0])
	return key
}

// allValid runs one batched pass over items — pass/fail only, with the
// curve arithmetic striped across cores above parallelThreshold.
func allValid(v Verifier, items []batchItem) bool {
	return verifyRange(v, items) < 0
}

// bisect locates one invalid share in a batch that failed its all-or-
// nothing check: verify halves as sub-batches and descend into a failing
// half until a single share remains. With one forgery among n shares
// this is O(log n) sub-batch passes over shares that (under a
// VerifyCache) are mostly memo hits by the second level; with multiple
// forgeries it attributes the first one found. items must contain at
// least one invalid share.
func bisect(v Verifier, items []batchItem) int {
	lo, hi := 0, len(items)
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if !allValid(v, items[lo:mid]) {
			hi = mid
		} else {
			lo = mid
		}
	}
	return lo
}

// verifyRange checks every item, returning the lowest invalid index or
// -1. Small batches (or single-core hosts) run inline; larger ones
// stripe the work across GOMAXPROCS goroutines.
func verifyRange(v Verifier, items []batchItem) int {
	workers := gort.GOMAXPROCS(0)
	if workers > len(items) {
		workers = len(items)
	}
	if _, seq := v.(*SequentialVerifier); seq {
		workers = 1 // baseline path: no parallel striping either
	}
	if len(items) < parallelThreshold || workers < 2 {
		for i := range items {
			it := &items[i]
			if !v.Verify(it.signer, it.msg, it.sig) {
				return i
			}
		}
		return -1
	}
	var (
		mu  sync.Mutex
		bad = -1
		wg  sync.WaitGroup
	)
	// Striped work distribution: worker w takes items w, w+workers, ...
	// Static striping keeps the hot path allocation- and contention-free
	// (no shared work queue to coordinate for these short batches).
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(items); i += workers {
				it := &items[i]
				if !v.Verify(it.signer, it.msg, it.sig) {
					mu.Lock()
					if bad < 0 || i < bad {
						bad = i
					}
					mu.Unlock()
					return
				}
			}
		}(w)
	}
	wg.Wait()
	return bad
}
