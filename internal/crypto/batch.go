package crypto

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	gort "runtime"
	"sync"
	"sync/atomic"

	"repro/internal/types"
)

// This file implements the amortized verification primitives behind the
// staged ingress pipeline: a bounded memo of already-verified signatures
// (VerifyCache) and a BatchVerifier that checks many signatures at once,
// spreading the curve arithmetic across every available core.
//
// The memo is the trust hand-off between the pipeline stages: transport
// workers pre-verify a message's signatures off the event loop, populating
// the memo; when the single-threaded state machine later re-checks the
// same signature inline, the check resolves to a constant-time lookup
// instead of a second scalar multiplication. Paths that bypass
// pre-verification (the discrete-event simulator, direct unit tests)
// simply miss the memo and fall through to a full verification, so no
// path ever trusts an unchecked signature.

// memoKey identifies one verified signature. The digest covers both the
// message and the signature bytes: caching by message alone would let an
// attacker replay a *different* (invalid) signature for a known-signed
// message and have it accepted — harmless for authentication, but the
// bogus share could then be aggregated into a PoA or QC that every other
// replica rejects.
type memoKey struct {
	signer types.NodeID
	digest [32]byte
}

func makeMemoKey(signer types.NodeID, msg, sig []byte) memoKey {
	h := sha256.New()
	var n [4]byte
	binary.LittleEndian.PutUint32(n[:], uint32(len(msg)))
	h.Write(n[:])
	h.Write(msg)
	h.Write(sig)
	var k memoKey
	k.signer = signer
	h.Sum(k.digest[:0])
	return k
}

// VerifyCache wraps a Verifier with a bounded memo of signatures that
// already verified successfully. Failed verifications are never cached.
// Safe for concurrent use; implements Verifier.
//
// The memo uses two generations: inserts go to the young generation, and
// when it fills, the old generation is discarded and the young one takes
// its place. Lookups consult both. This bounds memory at ~2x capacity
// with O(1) operations and no per-entry bookkeeping.
type VerifyCache struct {
	inner Verifier

	mu       sync.RWMutex
	capacity int
	young    map[memoKey]struct{}
	old      map[memoKey]struct{}

	// Counters are atomic: the hit path must stay lock-free beyond the
	// read lock — it is shared between the event loop and every
	// pre-verification worker.
	hits   atomic.Uint64
	misses atomic.Uint64
}

// NewVerifyCache wraps v with a memo holding at least capacity verified
// signatures (default 1<<14).
func NewVerifyCache(v Verifier, capacity int) *VerifyCache {
	if capacity <= 0 {
		capacity = 1 << 14
	}
	return &VerifyCache{
		inner:    v,
		capacity: capacity,
		young:    make(map[memoKey]struct{}),
		old:      make(map[memoKey]struct{}),
	}
}

// Verify implements Verifier: memo hit, else full verification (caching
// the result only on success).
func (c *VerifyCache) Verify(signer types.NodeID, msg, sig []byte) bool {
	k := makeMemoKey(signer, msg, sig)
	c.mu.RLock()
	_, ok := c.young[k]
	if !ok {
		_, ok = c.old[k]
	}
	c.mu.RUnlock()
	if ok {
		c.hits.Add(1)
		return true
	}
	if !c.inner.Verify(signer, msg, sig) {
		return false
	}
	c.insert(k)
	return true
}

func (c *VerifyCache) insert(k memoKey) {
	c.misses.Add(1)
	c.mu.Lock()
	if len(c.young) >= c.capacity {
		c.old = c.young
		c.young = make(map[memoKey]struct{}, c.capacity)
	}
	c.young[k] = struct{}{}
	c.mu.Unlock()
}

// Cached reports whether the exact (signer, msg, sig) triple is memoized
// (tests and stats; a false result says nothing about validity).
func (c *VerifyCache) Cached(signer types.NodeID, msg, sig []byte) bool {
	k := makeMemoKey(signer, msg, sig)
	c.mu.RLock()
	defer c.mu.RUnlock()
	if _, ok := c.young[k]; ok {
		return true
	}
	_, ok := c.old[k]
	return ok
}

// Stats returns the memo hit/miss counters.
func (c *VerifyCache) Stats() (hits, misses uint64) {
	return c.hits.Load(), c.misses.Load()
}

// batchItem is one queued signature check.
type batchItem struct {
	signer types.NodeID
	msg    []byte
	sig    []byte
}

// BatchVerifier collects signature checks and verifies them together,
// amortizing cost two ways: duplicate and memoized signatures are checked
// once (when the underlying Verifier is a VerifyCache), and the remaining
// curve arithmetic is spread across all available cores. It works with
// any Suite — ed25519 and nop alike — since it drives the suite's own
// Verifier.
//
// A BatchVerifier is single-use and not safe for concurrent use; create
// one per batch. (The underlying VerifyCache is shared and thread-safe.)
type BatchVerifier struct {
	v     Verifier
	items []batchItem
}

// NewBatchVerifier builds an empty batch over v. Pass a *VerifyCache to
// get memo amortization in addition to parallelism.
func NewBatchVerifier(v Verifier) *BatchVerifier {
	return &BatchVerifier{v: v}
}

// Add queues one signature check. The caller must not mutate msg or sig
// until Verify returns.
func (b *BatchVerifier) Add(signer types.NodeID, msg, sig []byte) {
	b.items = append(b.items, batchItem{signer: signer, msg: msg, sig: sig})
}

// Len reports the number of queued checks.
func (b *BatchVerifier) Len() int { return len(b.items) }

// AddPoA queues a PoA's shares after validating its structure (distinct
// committee signers at the f+1 threshold) — the batch form of VerifyPoA.
func (b *BatchVerifier) AddPoA(committee types.Committee, poa *types.PoA) error {
	if poa == nil {
		return fmt.Errorf("crypto: nil PoA")
	}
	if len(poa.Shares) < committee.PoAQuorum() {
		return fmt.Errorf("crypto: %d shares below threshold %d", len(poa.Shares), committee.PoAQuorum())
	}
	if _, err := DistinctSigners(committee, poa.Shares); err != nil {
		return err
	}
	msg := poa.SigningBytes()
	for _, s := range poa.Shares {
		b.Add(s.Signer, msg, s.Sig)
	}
	return nil
}

// parallelThreshold is the batch size below which fanning out to worker
// goroutines costs more than it saves.
const parallelThreshold = 4

// Verify checks every queued signature and fails if any one is invalid.
// On a VerifyCache only the valid signatures are memoized — a batch
// containing a forgery rejects, and the forgery is never cached. The
// batch is cleared afterwards.
func (b *BatchVerifier) Verify() error {
	items := b.items
	b.items = nil
	if len(items) == 0 {
		return nil
	}
	workers := gort.GOMAXPROCS(0)
	if workers > len(items) {
		workers = len(items)
	}
	if len(items) < parallelThreshold || workers < 2 {
		for i := range items {
			it := &items[i]
			if !b.v.Verify(it.signer, it.msg, it.sig) {
				return fmt.Errorf("crypto: invalid signature from %s in batch of %d", it.signer, len(items))
			}
		}
		return nil
	}
	var (
		mu  sync.Mutex
		bad = -1
		wg  sync.WaitGroup
	)
	// Striped work distribution: worker w takes items w, w+workers, ...
	// Static striping keeps the hot path allocation- and contention-free
	// (no shared work queue to coordinate for these short batches).
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(items); i += workers {
				it := &items[i]
				if !b.v.Verify(it.signer, it.msg, it.sig) {
					mu.Lock()
					if bad < 0 || i < bad {
						bad = i
					}
					mu.Unlock()
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if bad >= 0 {
		return fmt.Errorf("crypto: invalid signature from %s in batch of %d", items[bad].signer, len(items))
	}
	return nil
}
