// Package crypto provides the signing and verification primitives used by
// every protocol in this repository: ed25519 signatures (the paper uses
// ed25519-dalek; we use the standard library implementation), committee key
// registries, and quorum-certificate validation helpers.
//
// A NopSuite is provided for large-scale simulations and logic tests where
// signature arithmetic would dominate run time without changing protocol
// behaviour; the discrete-event simulator charges signature costs through
// its processing model instead.
package crypto

import (
	"crypto/ed25519"
	"crypto/sha256"
	"encoding/binary"
	"fmt"

	"repro/internal/types"
)

// Signer produces signatures on behalf of one replica.
type Signer interface {
	// Sign signs msg and returns the signature bytes.
	Sign(msg []byte) []byte
	// ID returns the replica this signer authenticates.
	ID() types.NodeID
}

// Verifier checks signatures against the committee's public keys.
type Verifier interface {
	// Verify reports whether sig is signer's valid signature over msg.
	Verify(signer types.NodeID, msg, sig []byte) bool
}

// Suite bundles per-replica signers with a shared verifier.
type Suite interface {
	Signer(id types.NodeID) Signer
	Verifier() Verifier
}

// --- ed25519 suite ---

type ed25519Suite struct {
	privs []ed25519.PrivateKey
	pubs  []ed25519.PublicKey
}

// NewEd25519Suite deterministically derives a keypair for each of n
// replicas from seed. Deterministic keys keep simulations reproducible;
// the TCP deployment path can instead load keys from disk via NewFromKeys.
func NewEd25519Suite(n int, seed uint64) Suite {
	s := &ed25519Suite{
		privs: make([]ed25519.PrivateKey, n),
		pubs:  make([]ed25519.PublicKey, n),
	}
	for i := 0; i < n; i++ {
		var material [32]byte
		binary.LittleEndian.PutUint64(material[:], seed)
		binary.LittleEndian.PutUint32(material[8:], uint32(i))
		copy(material[12:], "autobahn-key-seed...")
		h := sha256.Sum256(material[:])
		priv := ed25519.NewKeyFromSeed(h[:])
		s.privs[i] = priv
		s.pubs[i] = priv.Public().(ed25519.PublicKey)
	}
	return s
}

// NewFromKeys builds a suite from externally generated keys. pubs must
// cover the whole committee; privs may be nil for remote replicas (such a
// suite can verify but only sign for the keys it holds).
func NewFromKeys(privs []ed25519.PrivateKey, pubs []ed25519.PublicKey) Suite {
	return &ed25519Suite{privs: privs, pubs: pubs}
}

func (s *ed25519Suite) Signer(id types.NodeID) Signer {
	if int(id) >= len(s.privs) || s.privs[id] == nil {
		panic(fmt.Sprintf("crypto: no private key for %s", id))
	}
	return &edSigner{id: id, priv: s.privs[id]}
}

func (s *ed25519Suite) Verifier() Verifier { return &edVerifier{pubs: s.pubs} }

type edSigner struct {
	id   types.NodeID
	priv ed25519.PrivateKey
}

func (s *edSigner) Sign(msg []byte) []byte { return ed25519.Sign(s.priv, msg) }
func (s *edSigner) ID() types.NodeID       { return s.id }

type edVerifier struct {
	pubs []ed25519.PublicKey
}

func (v *edVerifier) Verify(signer types.NodeID, msg, sig []byte) bool {
	if int(signer) >= len(v.pubs) || v.pubs[signer] == nil {
		return false
	}
	return ed25519.Verify(v.pubs[signer], msg, sig)
}

// --- nop suite ---

type nopSuite struct{ n int }

// NewNopSuite returns a suite whose signatures are 64-byte tags binding
// only the signer identity. It preserves message sizes and signer
// accounting while skipping curve arithmetic. Never use outside tests and
// simulations.
func NewNopSuite(n int) Suite { return &nopSuite{n: n} }

func (s *nopSuite) Signer(id types.NodeID) Signer { return nopSigner{id: id} }
func (s *nopSuite) Verifier() Verifier            { return nopVerifier{n: s.n} }

type nopSigner struct{ id types.NodeID }

func (s nopSigner) Sign(msg []byte) []byte {
	sig := make([]byte, 64)
	binary.LittleEndian.PutUint16(sig, uint16(s.id))
	h := sha256.Sum256(msg)
	copy(sig[2:], h[:]) // bind the message so tampering tests still fail
	return sig
}
func (s nopSigner) ID() types.NodeID { return s.id }

type nopVerifier struct{ n int }

func (v nopVerifier) Verify(signer types.NodeID, msg, sig []byte) bool {
	if int(signer) >= v.n || len(sig) != 64 {
		return false
	}
	if binary.LittleEndian.Uint16(sig) != uint16(signer) {
		return false
	}
	h := sha256.Sum256(msg)
	for i := range h {
		if sig[2+i] != h[i] {
			return false
		}
	}
	return true
}
