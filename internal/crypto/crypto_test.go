package crypto

import (
	"testing"

	"repro/internal/types"
)

func suites(n int) map[string]Suite {
	return map[string]Suite{
		"ed25519": NewEd25519Suite(n, 42),
		"nop":     NewNopSuite(n),
	}
}

func TestSignVerifyRoundTrip(t *testing.T) {
	for name, suite := range suites(4) {
		t.Run(name, func(t *testing.T) {
			msg := []byte("the quick brown fox")
			for i := types.NodeID(0); i < 4; i++ {
				sig := suite.Signer(i).Sign(msg)
				if !suite.Verifier().Verify(i, msg, sig) {
					t.Fatalf("r%d: own signature must verify", i)
				}
				if suite.Verifier().Verify((i+1)%4, msg, sig) {
					t.Fatalf("r%d: signature must not verify for another signer", i)
				}
				if suite.Verifier().Verify(i, []byte("tampered"), sig) {
					t.Fatalf("r%d: signature must not verify a different message", i)
				}
			}
		})
	}
}

func TestDeterministicKeyDerivation(t *testing.T) {
	a := NewEd25519Suite(4, 7)
	b := NewEd25519Suite(4, 7)
	c := NewEd25519Suite(4, 8)
	msg := []byte("m")
	sigA := a.Signer(2).Sign(msg)
	if !b.Verifier().Verify(2, msg, sigA) {
		t.Fatal("same seed must derive identical keys")
	}
	if c.Verifier().Verify(2, msg, sigA) {
		t.Fatal("different seeds must derive different keys")
	}
}

func TestVerifyUnknownSigner(t *testing.T) {
	s := NewEd25519Suite(4, 1)
	if s.Verifier().Verify(9, []byte("m"), []byte("sig")) {
		t.Fatal("out-of-committee signer must not verify")
	}
}

func makePoA(t *testing.T, suite Suite, committee types.Committee, signers []types.NodeID) *types.PoA {
	t.Helper()
	poa := &types.PoA{Lane: 0, Position: 3, Digest: types.Digest{1, 2, 3}}
	for _, id := range signers {
		poa.Shares = append(poa.Shares, types.SigShare{
			Signer: id,
			Sig:    suite.Signer(id).Sign(poa.SigningBytes()),
		})
	}
	return poa
}

func TestVerifyPoA(t *testing.T) {
	committee := types.NewCommittee(4)
	suite := NewEd25519Suite(4, 1)
	v := suite.Verifier()

	if err := VerifyPoA(v, committee, makePoA(t, suite, committee, []types.NodeID{0, 2})); err != nil {
		t.Fatalf("valid f+1 PoA rejected: %v", err)
	}
	if err := VerifyPoA(v, committee, makePoA(t, suite, committee, []types.NodeID{0})); err == nil {
		t.Fatal("sub-threshold PoA accepted")
	}
	if err := VerifyPoA(v, committee, makePoA(t, suite, committee, []types.NodeID{2, 2})); err == nil {
		t.Fatal("duplicate-signer PoA accepted")
	}
	bad := makePoA(t, suite, committee, []types.NodeID{0, 2})
	bad.Shares[1].Sig[0] ^= 0xff
	if err := VerifyPoA(v, committee, bad); err == nil {
		t.Fatal("corrupted share accepted")
	}
	forged := makePoA(t, suite, committee, []types.NodeID{0, 2})
	forged.Digest = types.Digest{9} // shares signed a different digest
	if err := VerifyPoA(v, committee, forged); err == nil {
		t.Fatal("digest-swapped PoA accepted")
	}
	if err := VerifyPoA(v, committee, nil); err == nil {
		t.Fatal("nil PoA accepted")
	}
}

func makePrepareQC(suite Suite, slot types.Slot, view types.View, d types.Digest, voters []types.NodeID, strong []bool) *types.PrepareQC {
	qc := &types.PrepareQC{Slot: slot, View: view, Digest: d}
	for i, id := range voters {
		isStrong := len(strong) == 0 || strong[i]
		vote := types.PrepVote{Slot: slot, View: view, Digest: d, Strong: isStrong}
		qc.Shares = append(qc.Shares, types.SigShare{Signer: id, Sig: suite.Signer(id).Sign(vote.SigningBytes())})
		if len(strong) > 0 {
			qc.StrongMask = append(qc.StrongMask, isStrong)
		}
	}
	return qc
}

func TestVerifyPrepareQC(t *testing.T) {
	committee := types.NewCommittee(4)
	suite := NewEd25519Suite(4, 1)
	v := suite.Verifier()
	d := types.Digest{5}

	ok := makePrepareQC(suite, 1, 0, d, []types.NodeID{0, 1, 2}, nil)
	if err := VerifyPrepareQC(v, committee, ok, 0); err != nil {
		t.Fatalf("valid QC rejected: %v", err)
	}
	small := makePrepareQC(suite, 1, 0, d, []types.NodeID{0, 1}, nil)
	if err := VerifyPrepareQC(v, committee, small, 0); err == nil {
		t.Fatal("2-share QC accepted (needs 2f+1=3)")
	}
	// Weak/strong accounting (§5.5.2): 2f+1 total with f+1 strong.
	mixed := makePrepareQC(suite, 1, 0, d, []types.NodeID{0, 1, 2}, []bool{true, true, false})
	if err := VerifyPrepareQC(v, committee, mixed, 2); err != nil {
		t.Fatalf("2-strong QC rejected at threshold 2: %v", err)
	}
	weak := makePrepareQC(suite, 1, 0, d, []types.NodeID{0, 1, 2}, []bool{true, false, false})
	if err := VerifyPrepareQC(v, committee, weak, 2); err == nil {
		t.Fatal("1-strong QC accepted at threshold 2")
	}
}

func TestVerifyCommitQC(t *testing.T) {
	committee := types.NewCommittee(4)
	suite := NewEd25519Suite(4, 1)
	v := suite.Verifier()
	d := types.Digest{6}

	slow := &types.CommitQC{Slot: 2, View: 1, Digest: d}
	for _, id := range []types.NodeID{0, 1, 3} {
		ack := types.ConfirmAck{Slot: 2, View: 1, Digest: d}
		slow.Shares = append(slow.Shares, types.SigShare{Signer: id, Sig: suite.Signer(id).Sign(ack.SigningBytes())})
	}
	if err := VerifyCommitQC(v, committee, slow); err != nil {
		t.Fatalf("valid slow CommitQC rejected: %v", err)
	}

	fast := &types.CommitQC{Slot: 2, View: 0, Digest: d, Fast: true}
	for _, id := range []types.NodeID{0, 1, 2, 3} {
		vote := types.PrepVote{Slot: 2, View: 0, Digest: d, Strong: true}
		fast.Shares = append(fast.Shares, types.SigShare{Signer: id, Sig: suite.Signer(id).Sign(vote.SigningBytes())})
	}
	if err := VerifyCommitQC(v, committee, fast); err != nil {
		t.Fatalf("valid fast CommitQC rejected: %v", err)
	}
	fast.Shares = fast.Shares[:3] // fast path needs all n
	if err := VerifyCommitQC(v, committee, fast); err == nil {
		t.Fatal("n-1-share fast CommitQC accepted")
	}
}

func TestVerifyTC(t *testing.T) {
	committee := types.NewCommittee(4)
	suite := NewEd25519Suite(4, 1)
	v := suite.Verifier()

	tc := &types.TC{Slot: 3, View: 1}
	for _, id := range []types.NodeID{0, 2, 3} {
		to := types.Timeout{Slot: 3, View: 1, Voter: id}
		to.Sig = suite.Signer(id).Sign(to.SigningBytes())
		tc.Timeouts = append(tc.Timeouts, to)
	}
	if err := VerifyTC(v, committee, tc); err != nil {
		t.Fatalf("valid TC rejected: %v", err)
	}
	short := &types.TC{Slot: 3, View: 1, Timeouts: tc.Timeouts[:2]}
	if err := VerifyTC(v, committee, short); err == nil {
		t.Fatal("2-timeout TC accepted")
	}
	mismatch := &types.TC{Slot: 3, View: 2, Timeouts: tc.Timeouts}
	if err := VerifyTC(v, committee, mismatch); err == nil {
		t.Fatal("view-mismatched TC accepted")
	}
	tampered := &types.TC{Slot: 3, View: 1}
	tampered.Timeouts = append(tampered.Timeouts, tc.Timeouts...)
	tampered.Timeouts[1].Voter = 1 // signature belongs to r2
	if err := VerifyTC(v, committee, tampered); err == nil {
		t.Fatal("voter-swapped TC accepted")
	}
}
