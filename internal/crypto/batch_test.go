package crypto

import (
	"fmt"
	gort "runtime"
	"sync"
	"testing"

	"repro/internal/types"
)

func batchFixture(t testing.TB, suite Suite, n, items int) ([][]byte, [][]byte, []types.NodeID) {
	t.Helper()
	msgs := make([][]byte, items)
	sigs := make([][]byte, items)
	signers := make([]types.NodeID, items)
	for i := range msgs {
		id := types.NodeID(i % n)
		msgs[i] = []byte(fmt.Sprintf("payload-%d", i))
		sigs[i] = suite.Signer(id).Sign(msgs[i])
		signers[i] = id
	}
	return msgs, sigs, signers
}

func testForgedBatch(t *testing.T, suite Suite) {
	t.Helper()
	const n, items = 4, 16
	msgs, sigs, signers := batchFixture(t, suite, n, items)
	cache := NewVerifyCache(suite.Verifier(), 0)

	// Forge one signature in the middle.
	forged := 7
	sigs[forged] = append([]byte(nil), sigs[forged]...)
	sigs[forged][5] ^= 0xff

	bv := NewBatchVerifier(cache)
	for i := range msgs {
		bv.Add(signers[i], msgs[i], sigs[i])
	}
	if err := bv.Verify(); err == nil {
		t.Fatal("batch with a forged signature verified")
	}
	if cache.Cached(signers[forged], msgs[forged], sigs[forged]) {
		t.Fatal("forged signature was memoized")
	}
	// The memo must keep rejecting the forgery on the inline path too.
	if cache.Verify(signers[forged], msgs[forged], sigs[forged]) {
		t.Fatal("forged signature passed the caching verifier")
	}

	// A clean batch passes and memoizes every signature.
	msgs2, sigs2, signers2 := batchFixture(t, suite, n, items)
	bv = NewBatchVerifier(cache)
	for i := range msgs2 {
		bv.Add(signers2[i], msgs2[i], sigs2[i])
	}
	if err := bv.Verify(); err != nil {
		t.Fatalf("clean batch rejected: %v", err)
	}
	for i := range msgs2 {
		if !cache.Cached(signers2[i], msgs2[i], sigs2[i]) {
			t.Fatalf("valid signature %d not memoized", i)
		}
	}
	// Re-verification is a memo hit.
	before, _ := cache.Stats()
	if !cache.Verify(signers2[0], msgs2[0], sigs2[0]) {
		t.Fatal("memoized signature rejected")
	}
	if after, _ := cache.Stats(); after != before+1 {
		t.Fatalf("expected a memo hit, hits %d -> %d", before, after)
	}
}

func TestBatchVerifierRejectsForgeryEd25519(t *testing.T) {
	testForgedBatch(t, NewEd25519Suite(4, 1))
}

func TestBatchVerifierRejectsForgeryNop(t *testing.T) {
	testForgedBatch(t, NewNopSuite(4))
}

func TestVerifyCacheKeyBindsSignature(t *testing.T) {
	// A cached (signer, msg) must not admit a different signature for the
	// same message: the bogus share could be aggregated into a PoA/QC
	// that other replicas reject.
	suite := NewEd25519Suite(4, 1)
	cache := NewVerifyCache(suite.Verifier(), 0)
	msg := []byte("the message")
	sig := suite.Signer(0).Sign(msg)
	if !cache.Verify(0, msg, sig) {
		t.Fatal("valid signature rejected")
	}
	bogus := append([]byte(nil), sig...)
	bogus[0] ^= 1
	if cache.Verify(0, msg, bogus) {
		t.Fatal("different signature admitted via memo")
	}
}

func TestVerifyCacheBounded(t *testing.T) {
	suite := NewNopSuite(1)
	cache := NewVerifyCache(suite.Verifier(), 8)
	signer := suite.Signer(0)
	for i := 0; i < 100; i++ {
		msg := []byte(fmt.Sprintf("m%d", i))
		cache.Verify(0, msg, signer.Sign(msg))
	}
	cache.mu.RLock()
	young, old := len(cache.young), len(cache.old)
	cache.mu.RUnlock()
	if young+old > 16 {
		t.Fatalf("cache grew past 2x capacity: young=%d old=%d", young, old)
	}
}

func TestVerifyCacheConcurrent(t *testing.T) {
	suite := NewEd25519Suite(4, 1)
	cache := NewVerifyCache(suite.Verifier(), 64)
	msgs, sigs, signers := batchFixture(t, suite, 4, 32)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := range msgs {
				if !cache.Verify(signers[i], msgs[i], sigs[i]) {
					t.Error("valid signature rejected concurrently")
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

// BenchmarkVerifyPipeline compares the sequential inline verification the
// event loop used to do against the staged pipeline's primitives: batch
// verification spread across cores, and the memoized re-check that the
// state machine performs on pre-verified messages.
func BenchmarkVerifyPipeline(b *testing.B) {
	const n, items = 4, 64
	suite := NewEd25519Suite(n, 1)
	msgs, sigs, signers := batchFixture(b, suite, n, items)
	verifier := suite.Verifier()

	b.Run("sequential-inline", func(b *testing.B) {
		b.SetBytes(items)
		for i := 0; i < b.N; i++ {
			for j := range msgs {
				if !verifier.Verify(signers[j], msgs[j], sigs[j]) {
					b.Fatal("verify failed")
				}
			}
		}
	})

	b.Run(fmt.Sprintf("batch-parallel-%d", gort.GOMAXPROCS(0)), func(b *testing.B) {
		b.SetBytes(items)
		for i := 0; i < b.N; i++ {
			bv := NewBatchVerifier(verifier)
			for j := range msgs {
				bv.Add(signers[j], msgs[j], sigs[j])
			}
			if err := bv.Verify(); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("memo-hit", func(b *testing.B) {
		cache := NewVerifyCache(verifier, items*2)
		for j := range msgs {
			cache.Verify(signers[j], msgs[j], sigs[j])
		}
		b.ResetTimer()
		b.SetBytes(items)
		for i := 0; i < b.N; i++ {
			for j := range msgs {
				if !cache.Verify(signers[j], msgs[j], sigs[j]) {
					b.Fatal("memo verify failed")
				}
			}
		}
	})
}
