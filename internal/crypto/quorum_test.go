package crypto

import (
	"strings"
	"testing"

	"repro/internal/types"
)

// These regression tests pin the large-committee certificate path: for
// every certificate kind a forged share must be rejected WITH the forger
// named in the error (bisection attribution), a duplicate-signer cert
// must fail structurally before any signature math, a valid cert's
// verdict must land in the whole-cert memo, and a forged cert must never
// be memoized.

func mustName(t *testing.T, err error, signer types.NodeID, kind string) {
	t.Helper()
	if err == nil {
		t.Fatalf("%s: forged share accepted", kind)
	}
	want := "from " + signer.String()
	if !strings.Contains(err.Error(), want) {
		t.Fatalf("%s: error %q does not attribute the forged share to %s", kind, err, signer)
	}
}

func TestForgedShareAttribution(t *testing.T) {
	committee := types.NewCommittee(7) // f=2: bisection has real depth
	suite := NewEd25519Suite(7, 3)
	v := suite.Verifier()
	d := types.Digest{0xaa}

	t.Run("poa", func(t *testing.T) {
		poa := makePoA(t, suite, committee, []types.NodeID{0, 1, 2})
		poa.Shares[1].Sig = suite.Signer(1).Sign([]byte("wrong message"))
		mustName(t, VerifyPoA(v, committee, poa), 1, "PoA")
	})
	t.Run("prepareqc", func(t *testing.T) {
		qc := makePrepareQC(suite, 4, 0, d, []types.NodeID{0, 1, 2, 3, 4}, nil)
		qc.Shares[3].Sig = suite.Signer(3).Sign([]byte("wrong message"))
		mustName(t, VerifyPrepareQC(v, committee, qc, 0), 3, "PrepareQC")
	})
	t.Run("commitqc-slow", func(t *testing.T) {
		qc := &types.CommitQC{Slot: 5, View: 1, Digest: d}
		for _, id := range []types.NodeID{0, 2, 3, 5, 6} {
			ack := types.ConfirmAck{Slot: 5, View: 1, Digest: d}
			qc.Shares = append(qc.Shares, types.SigShare{Signer: id, Sig: suite.Signer(id).Sign(ack.SigningBytes())})
		}
		qc.Shares[4].Sig = suite.Signer(6).Sign([]byte("wrong message"))
		mustName(t, VerifyCommitQC(v, committee, qc), 6, "slow CommitQC")
	})
	t.Run("commitqc-fast", func(t *testing.T) {
		qc := &types.CommitQC{Slot: 5, View: 0, Digest: d, Fast: true}
		for id := types.NodeID(0); id < 7; id++ {
			vote := types.PrepVote{Slot: 5, View: 0, Digest: d, Strong: true}
			qc.Shares = append(qc.Shares, types.SigShare{Signer: id, Sig: suite.Signer(id).Sign(vote.SigningBytes())})
		}
		qc.Shares[0].Sig = suite.Signer(0).Sign([]byte("wrong message"))
		mustName(t, VerifyCommitQC(v, committee, qc), 0, "fast CommitQC")
	})
	t.Run("tc", func(t *testing.T) {
		tc := &types.TC{Slot: 6, View: 2}
		for _, id := range []types.NodeID{1, 2, 4, 5, 6} {
			to := types.Timeout{Slot: 6, View: 2, Voter: id}
			to.Sig = suite.Signer(id).Sign(to.SigningBytes())
			tc.Timeouts = append(tc.Timeouts, to)
		}
		tc.Timeouts[2].Sig = suite.Signer(4).Sign([]byte("wrong message"))
		mustName(t, VerifyTC(v, committee, tc), 4, "TC")
	})
	t.Run("shares", func(t *testing.T) {
		msg := []byte("generic quorum message")
		var shares []types.SigShare
		for _, id := range []types.NodeID{0, 1, 2, 3, 4} {
			shares = append(shares, types.SigShare{Signer: id, Sig: suite.Signer(id).Sign(msg)})
		}
		shares[2].Sig = suite.Signer(2).Sign([]byte("wrong message"))
		mustName(t, VerifyShares(v, committee, msg, shares, 5), 2, "VerifyShares")
	})
}

// TestDuplicateSignerRejected audits every certificate kind: a quorum
// padded with one signer's share repeated must fail the distinctness
// check, never counting the duplicate toward the threshold. The forged
// duplicate carries a VALID signature, so acceptance would be a real
// quorum-dilution bug, not a signature failure.
func TestDuplicateSignerRejected(t *testing.T) {
	committee := types.NewCommittee(4)
	suite := NewEd25519Suite(4, 3)
	v := suite.Verifier()
	d := types.Digest{0xbb}

	t.Run("poa", func(t *testing.T) {
		if err := VerifyPoA(v, committee, makePoA(t, suite, committee, []types.NodeID{1, 1})); err == nil {
			t.Fatal("duplicate-signer PoA accepted")
		}
	})
	t.Run("prepareqc", func(t *testing.T) {
		qc := makePrepareQC(suite, 1, 0, d, []types.NodeID{0, 1, 1}, nil)
		if err := VerifyPrepareQC(v, committee, qc, 0); err == nil {
			t.Fatal("duplicate-signer PrepareQC accepted")
		}
	})
	t.Run("commitqc-slow", func(t *testing.T) {
		qc := &types.CommitQC{Slot: 2, View: 1, Digest: d}
		ack := types.ConfirmAck{Slot: 2, View: 1, Digest: d}
		for _, id := range []types.NodeID{0, 3, 3} {
			qc.Shares = append(qc.Shares, types.SigShare{Signer: id, Sig: suite.Signer(id).Sign(ack.SigningBytes())})
		}
		if err := VerifyCommitQC(v, committee, qc); err == nil {
			t.Fatal("duplicate-signer slow CommitQC accepted")
		}
	})
	t.Run("commitqc-fast", func(t *testing.T) {
		qc := &types.CommitQC{Slot: 2, View: 0, Digest: d, Fast: true}
		vote := types.PrepVote{Slot: 2, View: 0, Digest: d, Strong: true}
		for _, id := range []types.NodeID{0, 1, 2, 2} {
			qc.Shares = append(qc.Shares, types.SigShare{Signer: id, Sig: suite.Signer(id).Sign(vote.SigningBytes())})
		}
		if err := VerifyCommitQC(v, committee, qc); err == nil {
			t.Fatal("duplicate-signer fast CommitQC accepted")
		}
	})
	t.Run("tc", func(t *testing.T) {
		tc := &types.TC{Slot: 3, View: 1}
		for _, id := range []types.NodeID{0, 2, 2} {
			to := types.Timeout{Slot: 3, View: 1, Voter: id}
			to.Sig = suite.Signer(id).Sign(to.SigningBytes())
			tc.Timeouts = append(tc.Timeouts, to)
		}
		if err := VerifyTC(v, committee, tc); err == nil {
			t.Fatal("duplicate-voter TC accepted")
		}
	})
}

// TestCertMemo pins the whole-certificate verdict cache: a valid cert's
// second verification is a memo hit, a forged cert is never cached (every
// re-arrival re-pays and re-fails), and the Sequential baseline wrapper
// bypasses the memo entirely.
func TestCertMemo(t *testing.T) {
	committee := types.NewCommittee(4)
	suite := NewEd25519Suite(4, 3)
	cache := NewVerifyCache(suite.Verifier(), 0)

	poa := makePoA(t, suite, committee, []types.NodeID{0, 2})
	if err := VerifyPoA(cache, committee, poa); err != nil {
		t.Fatalf("valid PoA rejected: %v", err)
	}
	if hits, misses := cache.CertStats(); hits != 0 || misses != 1 {
		t.Fatalf("first verify: cert stats hits=%d misses=%d, want 0/1", hits, misses)
	}
	if err := VerifyPoA(cache, committee, poa); err != nil {
		t.Fatalf("memoized PoA rejected: %v", err)
	}
	if hits, _ := cache.CertStats(); hits != 1 {
		t.Fatalf("second verify of identical PoA missed the cert memo (hits=%d)", hits)
	}

	// A forged cert must fail every time and never enter the memo.
	forged := makePoA(t, suite, committee, []types.NodeID{0, 2})
	forged.Shares[0].Sig = suite.Signer(0).Sign([]byte("wrong message"))
	for i := 0; i < 2; i++ {
		if err := VerifyPoA(cache, committee, forged); err == nil {
			t.Fatalf("forged PoA accepted on attempt %d", i)
		}
	}
	if hits, _ := cache.CertStats(); hits != 1 {
		t.Fatalf("forged PoA produced a cert memo hit (hits=%d)", hits)
	}

	// Mutating any share must change the fingerprint: the memoized verdict
	// must not cover a tampered variant of the cached cert.
	tampered := makePoA(t, suite, committee, []types.NodeID{0, 2})
	tampered.Shares[1].Sig = append([]byte(nil), poa.Shares[1].Sig...)
	tampered.Shares[1].Sig[0] ^= 0xff
	if err := VerifyPoA(cache, committee, tampered); err == nil {
		t.Fatal("tampered variant of a memoized PoA accepted")
	}

	// Sequential wrapper: no memo, no batch — stats must not move.
	seq := Sequential(suite.Verifier())
	if err := VerifyPoA(seq, committee, poa); err != nil {
		t.Fatalf("valid PoA rejected by sequential baseline: %v", err)
	}
	bad := makePoA(t, suite, committee, []types.NodeID{0, 2})
	bad.Shares[1].Sig = suite.Signer(1).Sign([]byte("wrong message"))
	if err := VerifyPoA(seq, committee, bad); err == nil {
		t.Fatal("forged PoA accepted by sequential baseline")
	}
}

// TestCertMemoDomainSeparation ensures two certificate kinds sharing the
// exact same share set cannot alias one another's memoized verdict.
func TestCertMemoDomainSeparation(t *testing.T) {
	items := []batchItem{{signer: 1, msg: []byte("m"), sig: []byte("s")}}
	if certFingerprint("poa", items) == certFingerprint("prepareqc", items) {
		t.Fatal("identical share sets under different domains share a fingerprint")
	}
}
