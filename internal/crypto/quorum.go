package crypto

import (
	"fmt"

	"repro/internal/types"
)

// Certificate verification. Every helper follows the same shape since
// the large-committee rework: structural checks first (threshold,
// distinct committee signers — cheap, and they gate what reaches the
// expensive step), then ONE batched signature verification per
// certificate via BatchVerifier.VerifyCert instead of n inline checks.
// VerifyCert adds two amortizations on top: with a VerifyCache verifier
// the whole-cert verdict is memoized (a re-arriving PoA or QC costs one
// hash + lookup), and on batch failure a per-share bisection names the
// forged share in the error. A SequentialVerifier forces the legacy
// check-each-share-inline path (the benchmark baseline).

// DistinctSigners verifies that shares come from pairwise-distinct,
// committee-valid signers. Returns the signer set on success.
func DistinctSigners(committee types.Committee, shares []types.SigShare) (map[types.NodeID]bool, error) {
	seen := make(map[types.NodeID]bool, len(shares))
	for _, s := range shares {
		if !committee.Valid(s.Signer) {
			return nil, fmt.Errorf("crypto: share from unknown replica %s", s.Signer)
		}
		if seen[s.Signer] {
			return nil, fmt.Errorf("crypto: duplicate share from %s", s.Signer)
		}
		seen[s.Signer] = true
	}
	return seen, nil
}

// VerifyShares checks that every share is a valid signature over msg and
// that the shares come from at least threshold distinct committee members
// (the duplicate-signer check runs BEFORE any signature math: a cert
// padded with one signer's share repeated must fail structurally, not
// count toward the threshold).
func VerifyShares(v Verifier, committee types.Committee, msg []byte, shares []types.SigShare, threshold int) error {
	if len(shares) < threshold {
		return fmt.Errorf("crypto: %d shares below threshold %d", len(shares), threshold)
	}
	if _, err := DistinctSigners(committee, shares); err != nil {
		return err
	}
	bv := NewBatchVerifier(v)
	for _, s := range shares {
		bv.Add(s.Signer, msg, s.Sig)
	}
	return bv.VerifyCert("shares")
}

// VerifyPoA validates a Proof of Availability: f+1 distinct valid votes
// over the car's signing bytes (§5.1), as one batched check with the
// whole-PoA verdict memoized.
func VerifyPoA(v Verifier, committee types.Committee, poa *types.PoA) error {
	if poa == nil {
		return fmt.Errorf("crypto: nil PoA")
	}
	if len(poa.Shares) < committee.PoAQuorum() {
		return fmt.Errorf("crypto: %d shares below threshold %d", len(poa.Shares), committee.PoAQuorum())
	}
	if _, err := DistinctSigners(committee, poa.Shares); err != nil {
		return err
	}
	bv := NewBatchVerifier(v)
	msg := poa.SigningBytes()
	for _, s := range poa.Shares {
		bv.Add(s.Signer, msg, s.Sig)
	}
	return bv.VerifyCert("poa")
}

// VerifyPrepareQC validates a PrepareQC: 2f+1 distinct valid Prep-Votes.
// If strongThreshold > 0, at least that many shares must be strong votes
// (the §5.5.2 weak/strong refinement; pass 0 when optimistic tips are off,
// in which case all votes are implicitly strong and unmarked).
func VerifyPrepareQC(v Verifier, committee types.Committee, qc *types.PrepareQC, strongThreshold int) error {
	if qc == nil {
		return fmt.Errorf("crypto: nil PrepareQC")
	}
	if len(qc.StrongMask) != 0 && len(qc.StrongMask) != len(qc.Shares) {
		return fmt.Errorf("crypto: strong mask length mismatch")
	}
	if _, err := DistinctSigners(committee, qc.Shares); err != nil {
		return err
	}
	if len(qc.Shares) < committee.Quorum() {
		return fmt.Errorf("crypto: PrepareQC has %d shares, need %d", len(qc.Shares), committee.Quorum())
	}
	strong := 0
	bv := NewBatchVerifier(v)
	for i, s := range qc.Shares {
		isStrong := len(qc.StrongMask) == 0 || qc.StrongMask[i]
		if isStrong {
			strong++
		}
		vote := types.PrepVote{Slot: qc.Slot, View: qc.View, Digest: qc.Digest, Strong: isStrong}
		bv.Add(s.Signer, vote.SigningBytes(), s.Sig)
	}
	// Threshold checks complete before the signature batch runs: a QC
	// that is structurally short must not cost any curve arithmetic.
	if strong < strongThreshold {
		return fmt.Errorf("crypto: PrepareQC has %d strong votes, need %d", strong, strongThreshold)
	}
	if err := bv.VerifyCert("prepareqc"); err != nil {
		return fmt.Errorf("crypto: PrepareQC: %w", err)
	}
	return nil
}

// VerifyCommitQC validates a CommitQC. Fast QCs require n strong PrepVote
// shares; slow QCs require 2f+1 ConfirmAck shares (§5.2.1).
func VerifyCommitQC(v Verifier, committee types.Committee, qc *types.CommitQC) error {
	if qc == nil {
		return fmt.Errorf("crypto: nil CommitQC")
	}
	if _, err := DistinctSigners(committee, qc.Shares); err != nil {
		return err
	}
	bv := NewBatchVerifier(v)
	if qc.Fast {
		if len(qc.Shares) < committee.FastQuorum() {
			return fmt.Errorf("crypto: fast CommitQC has %d shares, need %d", len(qc.Shares), committee.FastQuorum())
		}
		vote := types.PrepVote{Slot: qc.Slot, View: qc.View, Digest: qc.Digest, Strong: true}
		msg := vote.SigningBytes()
		for _, s := range qc.Shares {
			bv.Add(s.Signer, msg, s.Sig)
		}
		if err := bv.VerifyCert("commitqc-fast"); err != nil {
			return fmt.Errorf("crypto: fast CommitQC: %w", err)
		}
		return nil
	}
	if len(qc.Shares) < committee.Quorum() {
		return fmt.Errorf("crypto: CommitQC has %d shares, need %d", len(qc.Shares), committee.Quorum())
	}
	ack := types.ConfirmAck{Slot: qc.Slot, View: qc.View, Digest: qc.Digest}
	msg := ack.SigningBytes()
	for _, s := range qc.Shares {
		bv.Add(s.Signer, msg, s.Sig)
	}
	if err := bv.VerifyCert("commitqc-slow"); err != nil {
		return fmt.Errorf("crypto: CommitQC: %w", err)
	}
	return nil
}

// VerifyTC validates a Timeout Certificate: 2f+1 distinct valid Timeout
// signatures for (slot, view), and recursively checks any piggybacked
// HighQCs. HighProps are checked against their leader signatures only when
// present in Prepare reproposals; the TC itself treats them as hints. The
// timeout signatures form one batch; each HighQC is its own memoized
// certificate (the same QC rides in many replicas' timeouts).
func VerifyTC(v Verifier, committee types.Committee, tc *types.TC) error {
	if tc == nil {
		return fmt.Errorf("crypto: nil TC")
	}
	if len(tc.Timeouts) < committee.Quorum() {
		return fmt.Errorf("crypto: TC has %d timeouts, need %d", len(tc.Timeouts), committee.Quorum())
	}
	seen := make(map[types.NodeID]bool, len(tc.Timeouts))
	bv := NewBatchVerifier(v)
	for i := range tc.Timeouts {
		t := &tc.Timeouts[i]
		if t.Slot != tc.Slot || t.View != tc.View {
			return fmt.Errorf("crypto: TC timeout slot/view mismatch")
		}
		if !committee.Valid(t.Voter) || seen[t.Voter] {
			return fmt.Errorf("crypto: TC voter %s invalid or duplicate", t.Voter)
		}
		seen[t.Voter] = true
		bv.Add(t.Voter, t.SigningBytes(), t.Sig)
	}
	if err := bv.VerifyCert("tc"); err != nil {
		return fmt.Errorf("crypto: TC: %w", err)
	}
	for i := range tc.Timeouts {
		if qc := tc.Timeouts[i].HighQC; qc != nil {
			if err := VerifyPrepareQC(v, committee, qc, 0); err != nil {
				return fmt.Errorf("crypto: TC highQC: %w", err)
			}
		}
	}
	return nil
}
