package crypto

import (
	"fmt"

	"repro/internal/types"
)

// DistinctSigners verifies that shares come from pairwise-distinct,
// committee-valid signers. Returns the signer set on success.
func DistinctSigners(committee types.Committee, shares []types.SigShare) (map[types.NodeID]bool, error) {
	seen := make(map[types.NodeID]bool, len(shares))
	for _, s := range shares {
		if !committee.Valid(s.Signer) {
			return nil, fmt.Errorf("crypto: share from unknown replica %s", s.Signer)
		}
		if seen[s.Signer] {
			return nil, fmt.Errorf("crypto: duplicate share from %s", s.Signer)
		}
		seen[s.Signer] = true
	}
	return seen, nil
}

// VerifyShares checks that every share is a valid signature over msg and
// that the shares come from at least threshold distinct committee members.
func VerifyShares(v Verifier, committee types.Committee, msg []byte, shares []types.SigShare, threshold int) error {
	if len(shares) < threshold {
		return fmt.Errorf("crypto: %d shares below threshold %d", len(shares), threshold)
	}
	if _, err := DistinctSigners(committee, shares); err != nil {
		return err
	}
	for _, s := range shares {
		if !v.Verify(s.Signer, msg, s.Sig) {
			return fmt.Errorf("crypto: invalid share from %s", s.Signer)
		}
	}
	return nil
}

// VerifyPoA validates a Proof of Availability: f+1 distinct valid votes
// over the car's signing bytes (§5.1).
func VerifyPoA(v Verifier, committee types.Committee, poa *types.PoA) error {
	if poa == nil {
		return fmt.Errorf("crypto: nil PoA")
	}
	return VerifyShares(v, committee, poa.SigningBytes(), poa.Shares, committee.PoAQuorum())
}

// VerifyPrepareQC validates a PrepareQC: 2f+1 distinct valid Prep-Votes.
// If strongThreshold > 0, at least that many shares must be strong votes
// (the §5.5.2 weak/strong refinement; pass 0 when optimistic tips are off,
// in which case all votes are implicitly strong and unmarked).
func VerifyPrepareQC(v Verifier, committee types.Committee, qc *types.PrepareQC, strongThreshold int) error {
	if qc == nil {
		return fmt.Errorf("crypto: nil PrepareQC")
	}
	if len(qc.StrongMask) != 0 && len(qc.StrongMask) != len(qc.Shares) {
		return fmt.Errorf("crypto: strong mask length mismatch")
	}
	if _, err := DistinctSigners(committee, qc.Shares); err != nil {
		return err
	}
	if len(qc.Shares) < committee.Quorum() {
		return fmt.Errorf("crypto: PrepareQC has %d shares, need %d", len(qc.Shares), committee.Quorum())
	}
	strong := 0
	for i, s := range qc.Shares {
		isStrong := len(qc.StrongMask) == 0 || qc.StrongMask[i]
		if isStrong {
			strong++
		}
		vote := types.PrepVote{Slot: qc.Slot, View: qc.View, Digest: qc.Digest, Strong: isStrong}
		if !v.Verify(s.Signer, vote.SigningBytes(), s.Sig) {
			return fmt.Errorf("crypto: invalid PrepVote share from %s", s.Signer)
		}
	}
	if strong < strongThreshold {
		return fmt.Errorf("crypto: PrepareQC has %d strong votes, need %d", strong, strongThreshold)
	}
	return nil
}

// VerifyCommitQC validates a CommitQC. Fast QCs require n strong PrepVote
// shares; slow QCs require 2f+1 ConfirmAck shares (§5.2.1).
func VerifyCommitQC(v Verifier, committee types.Committee, qc *types.CommitQC) error {
	if qc == nil {
		return fmt.Errorf("crypto: nil CommitQC")
	}
	if _, err := DistinctSigners(committee, qc.Shares); err != nil {
		return err
	}
	if qc.Fast {
		if len(qc.Shares) < committee.FastQuorum() {
			return fmt.Errorf("crypto: fast CommitQC has %d shares, need %d", len(qc.Shares), committee.FastQuorum())
		}
		for _, s := range qc.Shares {
			vote := types.PrepVote{Slot: qc.Slot, View: qc.View, Digest: qc.Digest, Strong: true}
			if !v.Verify(s.Signer, vote.SigningBytes(), s.Sig) {
				return fmt.Errorf("crypto: invalid fast-commit share from %s", s.Signer)
			}
		}
		return nil
	}
	if len(qc.Shares) < committee.Quorum() {
		return fmt.Errorf("crypto: CommitQC has %d shares, need %d", len(qc.Shares), committee.Quorum())
	}
	for _, s := range qc.Shares {
		ack := types.ConfirmAck{Slot: qc.Slot, View: qc.View, Digest: qc.Digest}
		if !v.Verify(s.Signer, ack.SigningBytes(), s.Sig) {
			return fmt.Errorf("crypto: invalid ConfirmAck share from %s", s.Signer)
		}
	}
	return nil
}

// VerifyTC validates a Timeout Certificate: 2f+1 distinct valid Timeout
// signatures for (slot, view), and recursively checks any piggybacked
// HighQCs. HighProps are checked against their leader signatures only when
// present in Prepare reproposals; the TC itself treats them as hints.
func VerifyTC(v Verifier, committee types.Committee, tc *types.TC) error {
	if tc == nil {
		return fmt.Errorf("crypto: nil TC")
	}
	if len(tc.Timeouts) < committee.Quorum() {
		return fmt.Errorf("crypto: TC has %d timeouts, need %d", len(tc.Timeouts), committee.Quorum())
	}
	seen := make(map[types.NodeID]bool, len(tc.Timeouts))
	for i := range tc.Timeouts {
		t := &tc.Timeouts[i]
		if t.Slot != tc.Slot || t.View != tc.View {
			return fmt.Errorf("crypto: TC timeout slot/view mismatch")
		}
		if !committee.Valid(t.Voter) || seen[t.Voter] {
			return fmt.Errorf("crypto: TC voter %s invalid or duplicate", t.Voter)
		}
		seen[t.Voter] = true
		if !v.Verify(t.Voter, t.SigningBytes(), t.Sig) {
			return fmt.Errorf("crypto: invalid timeout signature from %s", t.Voter)
		}
		if t.HighQC != nil {
			if err := VerifyPrepareQC(v, committee, t.HighQC, 0); err != nil {
				return fmt.Errorf("crypto: TC highQC: %w", err)
			}
		}
	}
	return nil
}
