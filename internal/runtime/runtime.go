// Package runtime defines the execution model shared by the discrete-event
// simulator (internal/sim) and the real TCP runtime (internal/transport):
// protocol nodes are single-threaded, event-driven state machines that
// react to messages, timers and client submissions through a Context.
//
// Because every protocol in this repository (Autobahn, HotStuff variants,
// Bullshark) is written against these interfaces, the simulator exercises
// exactly the code a real deployment runs — only the transport and clock
// differ.
package runtime

import (
	"time"

	"repro/internal/types"
)

// TimerTag identifies a timer to the protocol that set it. Kind is a
// protocol-defined discriminator; A and B carry protocol-defined payload
// (e.g. slot and view). Tags are value types so timers allocate nothing.
type TimerTag struct {
	Kind uint8
	A    uint64
	B    uint64
}

// Context is the interface through which a protocol node interacts with
// the outside world. All methods must be called only from within the
// node's event handlers (the runtime is single-threaded per node).
type Context interface {
	// ID returns this node's replica ID.
	ID() types.NodeID
	// Now returns the time elapsed since the deployment epoch. Under
	// simulation this is virtual time.
	Now() time.Duration
	// Send queues m for delivery to replica `to`. Sending to self delivers
	// through the normal path (with loopback cost under simulation).
	Send(to types.NodeID, m types.Message)
	// Broadcast sends m to every replica except the sender.
	Broadcast(m types.Message)
	// SetTimer schedules OnTimer(tag) after d. Timers are one-shot.
	// Setting a timer with a tag equal to an already-pending timer
	// replaces it (the earlier deadline is cancelled).
	SetTimer(d time.Duration, tag TimerTag)
	// CancelTimer cancels a pending timer with the given tag, if any.
	CancelTimer(tag TimerTag)
	// Rand returns a deterministic pseudo-random uint64 (seeded per node
	// by the runtime); protocols must not use global randomness.
	Rand() uint64
}

// Protocol is a replicated state machine node. Implementations must be
// deterministic functions of their event history (plus Context.Rand).
type Protocol interface {
	// Init is called once before any other event.
	Init(ctx Context)
	// OnMessage delivers a message from another replica. Implementations
	// must treat m as immutable (the simulator shares pointers).
	OnMessage(ctx Context, from types.NodeID, m types.Message)
	// OnTimer fires a previously set timer.
	OnTimer(ctx Context, tag TimerTag)
	// OnClientBatch submits a sealed batch of client transactions
	// originating at this replica's mempool.
	OnClientBatch(ctx Context, b *types.Batch)
}

// Flusher is optionally implemented by protocols that defer externally
// visible effects (outbound sends gated behind a durability barrier —
// see core.Config.GroupCommit). Real-time runtimes (internal/transport)
// call Flush after Init and after each burst of consecutively processed
// events; the protocol performs its group barrier (e.g. one journal sync
// for every record the burst appended) and then releases the gated sends
// through ctx. Protocols that gate sends MUST only run under runtimes
// that call Flush; the discrete-event simulator does not, and simulated
// deployments leave gating off.
type Flusher interface {
	Flush(ctx Context)
}

// PreVerifier is optionally implemented by protocols whose inbound
// messages carry signatures that can be checked without protocol state.
// Runtimes that deliver messages from the network (internal/transport)
// detect the interface and run PreVerify on a parallel worker stage
// between frame decode and the event loop, so signature arithmetic comes
// off the single-threaded critical path; messages failing PreVerify are
// dropped before delivery.
//
// Implementations must be stateless with respect to the protocol's
// event-driven state and safe for concurrent use: PreVerify runs on
// multiple goroutines concurrently with the event loop. The intended
// trust hand-off is a shared crypto.VerifyCache — PreVerify populates
// the memo, and the state machine's inline checks become constant-time
// lookups instead of repeated curve arithmetic. Paths that never call
// PreVerify (the discrete-event simulator charges crypto through its
// network model instead) miss the memo and fall back to full inline
// verification, so correctness never depends on the pipeline stage.
//
// PreVerify must return a non-nil error only for cryptographically
// invalid input; state-dependent judgments (duplicates, stale views,
// unknown parents) belong to OnMessage.
type PreVerifier interface {
	PreVerify(from types.NodeID, m types.Message) error
}

// Sharder is optionally implemented by protocols whose data-plane
// message handling is parallelizable across disjoint state partitions —
// Autobahn's lane layer is the motivating case: car handling, payload
// hashing and sync serving for different lanes touch disjoint per-lane
// state and are "embarrassingly parallel" per the paper's §4, while
// consensus must stay strictly serialized.
//
// Runtimes that honor the interface (internal/transport's Loop; the
// discrete-event simulator does not, and keeps every protocol fully
// single-threaded) route each inbound message through ShardOf: -1 keeps
// it on the serialized control loop (the plain Protocol contract), a
// shard index in [0, DataShards()) dispatches it to that shard's
// dedicated worker goroutine via OnShardMessage. Messages mapping to the
// same shard retain their relative order (per-sender FIFO is preserved
// through the pipeline); messages on different shards run concurrently
// with each other and with the control loop.
//
// Implementations guarantee that OnShardMessage for shard i touches only
// state owned by shard i (plus thread-safe shared structures), and that
// cross-shard effects travel by message passing — e.g. a self-addressed
// control message carrying new lane tips into the consensus engine.
//
// ShardOf must be a pure function of the message (it runs on mesh reader
// goroutines). A protocol whose DataShards() reports <= 1 is treated as
// unsharded: everything runs on the control loop exactly as before.
type Sharder interface {
	// DataShards returns the number of data-plane worker shards (W).
	DataShards() int
	// ShardOf classifies a message: -1 = control (serialized), otherwise
	// a shard index in [0, DataShards()).
	ShardOf(from types.NodeID, m types.Message) int
	// BatchShard returns the shard that owns client batch submissions
	// (own-lane production), or -1 to keep them on the control loop.
	BatchShard() int
	// OnShardMessage processes a data-plane message on shard's worker.
	OnShardMessage(ctx Context, shard int, from types.NodeID, m types.Message)
	// OnShardBatch processes a client batch on shard's worker (only
	// called when BatchShard() routed it there).
	OnShardBatch(ctx Context, shard int, b *types.Batch)
	// FlushShard is the per-shard counterpart of Flusher.Flush: the
	// runtime calls it after each burst of events a shard worker
	// processes, so shard-local deferred effects (group-committed sends,
	// coalesced control-plane handoffs) are released burst-wise.
	FlushShard(ctx Context, shard int)
}

// Committed describes one batch that became execution-ready: the protocol
// has totally ordered it and the replica possesses its data (the paper's
// latency endpoint).
type Committed struct {
	// Lane/Position locate the batch in its dissemination structure
	// (lane position for Autobahn, round for DAGs, block height for HS).
	Lane     types.NodeID
	Position types.Pos
	// Slot is the consensus decision that committed the batch (0 when the
	// protocol has no slot notion).
	Slot  types.Slot
	Batch *types.Batch
	// AppHash is the execution layer's chain hash after applying this
	// batch (zero when execution is disabled). Replicas must agree on it
	// at every (lane, position); the harness cross-checks.
	AppHash types.Digest
}

// CommitSink receives execution-ready batches in total order. The runtime
// (not the protocol) provides it; metrics and applications attach here.
type CommitSink interface {
	OnCommit(node types.NodeID, now time.Duration, c Committed)
}

// CommitSinkFunc adapts a function to CommitSink.
type CommitSinkFunc func(node types.NodeID, now time.Duration, c Committed)

// OnCommit implements CommitSink.
func (f CommitSinkFunc) OnCommit(node types.NodeID, now time.Duration, c Committed) {
	f(node, now, c)
}

// NopSink discards commits.
var NopSink CommitSink = CommitSinkFunc(func(types.NodeID, time.Duration, Committed) {})
