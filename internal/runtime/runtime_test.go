package runtime

import (
	"testing"
	"time"

	"repro/internal/types"
)

func TestCommitSinkFunc(t *testing.T) {
	var gotNode types.NodeID
	var gotNow time.Duration
	var gotLane types.NodeID
	sink := CommitSinkFunc(func(node types.NodeID, now time.Duration, c Committed) {
		gotNode, gotNow, gotLane = node, now, c.Lane
	})
	sink.OnCommit(2, 5*time.Second, Committed{Lane: 3, Position: 7, Slot: 9})
	if gotNode != 2 || gotNow != 5*time.Second || gotLane != 3 {
		t.Fatalf("sink saw node=%v now=%v lane=%v", gotNode, gotNow, gotLane)
	}
}

func TestNopSinkIsSafe(t *testing.T) {
	// Must not panic and must accept any input, including zero values.
	NopSink.OnCommit(0, 0, Committed{})
	NopSink.OnCommit(63, time.Hour, Committed{Batch: types.NewSyntheticBatch(1, 1, 1, 1, 0, 0)})
}

func TestTimerTagComparable(t *testing.T) {
	// Tags must be usable as map keys with value semantics (the runtimes
	// key pending timers by tag).
	m := map[TimerTag]int{}
	m[TimerTag{Kind: 1, A: 2, B: 3}] = 1
	m[TimerTag{Kind: 1, A: 2, B: 3}] = 2
	m[TimerTag{Kind: 1, A: 2, B: 4}] = 3
	if len(m) != 2 || m[TimerTag{Kind: 1, A: 2, B: 3}] != 2 {
		t.Fatalf("tag map semantics broken: %v", m)
	}
}
