package runtime

import "repro/internal/types"

// BehaviorTagBase splits the TimerTag.Kind space between a protocol and a
// Behavior wrapped around it: kinds at or above this value are owned by
// the wrapper's behavior, everything below belongs to the protocol. The
// wrapper routes OnTimer accordingly, so an adversary can run its own
// recurring schedule (e.g. timeout spam) without forking the protocol's
// timer plumbing.
const BehaviorTagBase uint8 = 0xC0

// Directed is one outbound transmission: either a point-to-point send or
// a broadcast. Behaviors receive the honest node's sends in this form and
// return the sends to perform instead — the identity transformation is
// []Directed{d}, suppression is nil, and equivocation returns divergent
// per-peer sends.
type Directed struct {
	// To is the destination (meaningful only when Broadcast is false).
	To types.NodeID
	// Broadcast sends to every other replica.
	Broadcast bool
	// Msg is the message to transmit.
	Msg types.Message
}

// Behavior is a Byzantine adversary strategy layered over an honest
// protocol node by a runtime wrapper (internal/adversary.Node). The
// wrapper intercepts the node's outbound traffic and hands each send to
// Outbound; the behavior may pass it through, suppress it, rewrite it, or
// replace it with divergent per-peer sends (signed with the replica's own
// key — a Byzantine replica controls its identity, not others').
//
// Behaviors run under both runtimes: the deterministic discrete-event
// simulator (where they must derive all randomness from ctx.Rand so
// fixed-seed runs stay reproducible) and the real-time transports. They
// are single-threaded per node, like the protocols they wrap.
type Behavior interface {
	// Name identifies the behavior (registry key, logs, reports).
	Name() string
	// Init is called once, after the wrapped protocol's own Init. The
	// behavior may arm timers (tag kinds >= BehaviorTagBase) and send.
	Init(ctx Context)
	// Outbound intercepts one outbound transmission of the wrapped node
	// and returns the transmissions to perform instead. Returning the
	// input unchanged (in a one-element slice) keeps the node honest for
	// this message; returning nil suppresses it.
	Outbound(ctx Context, d Directed) []Directed
	// OnTimer fires a behavior-owned timer (Kind >= BehaviorTagBase).
	OnTimer(ctx Context, tag TimerTag)
}
