package lane

import (
	"testing"

	"repro/internal/crypto"
	"repro/internal/types"
)

// recJournal captures journaled lane records for replay into Restore.
type recJournal struct {
	own   []*types.Proposal
	votes []*types.Vote
}

func (r *recJournal) OwnProposal(p *types.Proposal) { r.own = append(r.own, p) }
func (r *recJournal) Vote(v *types.Vote)            { r.votes = append(r.votes, v) }

func (r *recJournal) voteMap() map[types.NodeID]map[types.Pos]types.Digest {
	out := make(map[types.NodeID]map[types.Pos]types.Digest)
	for _, v := range r.votes {
		m := out[v.Lane]
		if m == nil {
			m = make(map[types.Pos]types.Digest)
			out[v.Lane] = m
		}
		m[v.Position] = v.Digest
	}
	return out
}

func journaledPair(t *testing.T) (owner *State, voter *State, j *recJournal, suite crypto.Suite) {
	t.Helper()
	committee := types.NewCommittee(4)
	suite = crypto.NewNopSuite(4)
	j = &recJournal{}
	owner = NewState(Config{Committee: committee, Self: 0, Signer: suite.Signer(0), Verifier: suite.Verifier(), Journal: j})
	voter = NewState(Config{Committee: committee, Self: 1, Signer: suite.Signer(1), Verifier: suite.Verifier(), Journal: j})
	return
}

// TestRestoreNeverContradictsVotes: a voter rebuilt from its journal
// re-emits only identical votes at voted positions, refuses forks there,
// and continues FIFO voting from the restored frontier.
func TestRestoreNeverContradictsVotes(t *testing.T) {
	owner, voter, j, suite := journaledPair(t)

	p1 := owner.AddBatch(batch(0, 1))
	v1, err := voter.OnProposal(p1)
	if err != nil || len(v1) != 1 {
		t.Fatalf("vote on p1: %v %v", v1, err)
	}
	if _, _, err := owner.OnVote(v1[0]); err != nil {
		t.Fatal(err)
	}
	p2 := owner.AddBatch(batch(0, 2))
	if p2 == nil {
		t.Fatal("p1 certified (self + r1 = f+1), p2 must start")
	}
	if v2, err := voter.OnProposal(p2); err != nil || len(v2) != 1 {
		t.Fatalf("vote on p2: %v %v", v2, err)
	}

	// Crash the voter; rebuild from its journal.
	committee := types.NewCommittee(4)
	voter2 := NewState(Config{Committee: committee, Self: 1, Signer: suite.Signer(1), Verifier: suite.Verifier()})
	voter2.Restore(nil, 0, j.voteMap())

	if got := voter2.VotedPos(0); got != 2 {
		t.Fatalf("restored voted frontier = %d, want 2", got)
	}
	// Retransmission of the exact voted proposal: identical vote re-emitted.
	re, err := voter2.OnProposal(p2)
	if err != nil || len(re) != 1 || re[0].Digest != p2.Digest() {
		t.Fatalf("retransmission re-vote: %v %v", re, err)
	}
	// A fork sibling at a voted position: stored, never voted.
	fork := &types.Proposal{Lane: 0, Position: 2, Parent: p1.Digest(), Batch: batch(0, 99)}
	fork.Sig = suite.Signer(0).Sign(fork.SigningBytes())
	if vs, _ := voter2.OnProposal(fork); len(vs) != 0 {
		t.Fatalf("restored voter voted for a fork at a voted position: %v", vs)
	}
	// FIFO voting continues from the restored digest chain.
	p3 := &types.Proposal{Lane: 0, Position: 3, Parent: p2.Digest(), Batch: batch(0, 3)}
	p3.Sig = suite.Signer(0).Sign(p3.SigningBytes())
	if vs, err := voter2.OnProposal(p3); err != nil || len(vs) != 1 {
		t.Fatalf("FIFO continuation after restore: %v %v", vs, err)
	}
}

// TestRestoreOwnLaneNeverEquivocates: an owner rebuilt from its journal
// resumes production after its last journaled proposal, keeps
// uncertified cars outstanding for re-broadcast, and drops committed
// ones from the pipeline.
func TestRestoreOwnLaneNeverEquivocates(t *testing.T) {
	owner, voter, j, suite := journaledPair(t)
	p1 := owner.AddBatch(batch(0, 1))
	v1, _ := voter.OnProposal(p1)
	owner.OnVote(v1[0])
	p2 := owner.AddBatch(batch(0, 2)) // uncertified

	committee := types.NewCommittee(4)
	owner2 := NewState(Config{Committee: committee, Self: 0, Signer: suite.Signer(0), Verifier: suite.Verifier()})
	owner2.Restore(j.own, 1, nil) // position 1 committed pre-crash

	// Production resumes at position 3, chained to the pre-crash tip —
	// never a second, conflicting proposal at positions 1 or 2. The
	// uncertified p2 fills the pipeline slot, so the batch queues until
	// p2's PoA completes (its votes re-arrive after the re-broadcast).
	if got := owner2.AddBatch(batch(0, 3)); got != nil {
		t.Fatalf("produced %+v past an uncertified outstanding car", got)
	}
	if out := owner2.OldestOutstanding(); out == nil || out.Position != 2 || out.Digest() != p2.Digest() {
		t.Fatalf("outstanding after restore = %+v, want p2", out)
	}
	rv, err := voter.OnProposal(p2)
	if err != nil || len(rv) != 1 {
		t.Fatalf("re-vote on p2: %v %v", rv, err)
	}
	props, _, err := owner2.OnVote(rv[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(props) != 1 || props[0].Position != 3 || props[0].Parent != p2.Digest() {
		t.Fatalf("post-restore production = %+v, want position 3 chained to p2", props)
	}
	// Committed position 1 must not rejoin the outstanding pipeline.
	for _, out := range []*types.Proposal{owner2.OldestOutstanding()} {
		if out != nil && out.Position == 1 {
			t.Fatal("committed car re-entered the outstanding pipeline")
		}
	}
}
