package lane

import (
	"testing"
	"testing/quick"

	"repro/internal/crypto"
	"repro/internal/types"
)

func newStates(t *testing.T, n int, verify bool) []*State {
	t.Helper()
	committee := types.NewCommittee(n)
	var suite crypto.Suite
	if verify {
		suite = crypto.NewEd25519Suite(n, 5)
	} else {
		suite = crypto.NewNopSuite(n)
	}
	out := make([]*State, n)
	for i := range out {
		out[i] = NewState(Config{
			Committee:       committee,
			Self:            types.NodeID(i),
			Signer:          suite.Signer(types.NodeID(i)),
			Verifier:        suite.Verifier(),
			VerifyProposals: verify,
		})
	}
	return out
}

func batch(origin types.NodeID, seq uint64) *types.Batch {
	return types.NewSyntheticBatch(origin, seq, 100, 51200, 0, 0)
}

// driveCar runs one full car: proposer 0 proposes, everyone votes, the
// PoA completes. Returns the completed proposal.
func driveCar(t *testing.T, states []*State, seq uint64) *types.Proposal {
	t.Helper()
	p := states[0].AddBatch(batch(0, seq))
	if p == nil {
		t.Fatal("expected proposal")
	}
	var lastPoAOrNext bool
	for i := 1; i < len(states); i++ {
		votes, err := states[i].OnProposal(p)
		if err != nil {
			t.Fatalf("r%d vote: %v", i, err)
		}
		for _, v := range votes {
			props, poa, err := states[0].OnVote(v)
			if err != nil {
				t.Fatal(err)
			}
			if len(props) > 0 || poa != nil {
				lastPoAOrNext = true
			}
		}
	}
	if !lastPoAOrNext {
		t.Fatal("PoA never completed")
	}
	return p
}

func TestCarLifecycle(t *testing.T) {
	states := newStates(t, 4, true)
	p1 := driveCar(t, states, 1)
	if p1.Position != 1 || !p1.Parent.IsZero() || p1.ParentPoA != nil {
		t.Fatalf("genesis car malformed: %+v", p1)
	}
	if got := states[0].CertifiedTip(0); got.Position != 1 || got.Cert == nil {
		t.Fatalf("own certified tip = %+v", got)
	}

	// Second car chains to the first and carries its PoA.
	p2 := states[0].AddBatch(batch(0, 2))
	if p2 == nil {
		t.Fatal("expected second proposal")
	}
	if p2.Position != 2 || p2.Parent != p1.Digest() || p2.ParentPoA == nil {
		t.Fatalf("second car not chained: %+v", p2)
	}
	if err := crypto.VerifyPoA(crypto.NewEd25519Suite(4, 5).Verifier(), types.NewCommittee(4), p2.ParentPoA); err != nil {
		t.Fatalf("carried PoA invalid: %v", err)
	}
}

func TestSequentialCarsBlockWithoutPoA(t *testing.T) {
	states := newStates(t, 4, false)
	if p := states[0].AddBatch(batch(0, 1)); p == nil {
		t.Fatal("first car must start")
	}
	// No votes yet: the next batch must queue, not propose (PipelineCars=1).
	if p := states[0].AddBatch(batch(0, 2)); p != nil {
		t.Fatal("second car started before the first certified")
	}
	if states[0].PendingBatches() != 1 {
		t.Fatalf("pending = %d", states[0].PendingBatches())
	}
}

func TestPipelinedCars(t *testing.T) {
	committee := types.NewCommittee(4)
	suite := crypto.NewNopSuite(4)
	s := NewState(Config{
		Committee: committee, Self: 0,
		Signer: suite.Signer(0), Verifier: suite.Verifier(),
		PipelineCars: 3,
	})
	for seq := uint64(1); seq <= 3; seq++ {
		if p := s.AddBatch(batch(0, seq)); p == nil {
			t.Fatalf("pipelined car %d must start", seq)
		}
	}
	if p := s.AddBatch(batch(0, 4)); p != nil {
		t.Fatal("fourth car exceeds the pipeline bound")
	}
}

func TestFIFOVotingRejectsGaps(t *testing.T) {
	states := newStates(t, 4, false)
	p1 := states[0].AddBatch(batch(0, 1))
	// Deliver p1 only to r1; then let the PoA form via r1's vote (f+1 = 2
	// with the proposer's own share).
	votes, err := states[1].OnProposal(p1)
	if err != nil || len(votes) != 1 {
		t.Fatalf("r1 must vote: %v", err)
	}
	props, _, err := states[0].OnVote(votes[0])
	if err != nil {
		t.Fatal(err)
	}
	// p2 now exists (carried the PoA); r2 sees p2 WITHOUT p1: buffer.
	states[0].AddBatch(batch(0, 2))
	var p2 *types.Proposal
	if len(props) > 0 {
		p2 = props[0]
	} else {
		p2 = states[0].OldestOutstanding()
	}
	if p2 == nil {
		p2 = states[0].AddBatch(batch(0, 3))
	}
	if p2 == nil {
		t.Fatal("no second proposal available")
	}
	votes, err = states[2].OnProposal(p2)
	if err != ErrMissingParent {
		t.Fatalf("gap must buffer: votes=%v err=%v", votes, err)
	}
	if len(votes) != 0 {
		t.Fatal("must not vote across a gap")
	}
	// Gap fill: r2 receives p1, votes for BOTH in order.
	votes, err = states[2].OnProposal(p1)
	if err != nil {
		t.Fatal(err)
	}
	if len(votes) != 2 || votes[0].Position != 1 || votes[1].Position != 2 {
		t.Fatalf("gap fill must vote the chain: %+v", votes)
	}
}

func TestEquivocationStoredNotVoted(t *testing.T) {
	states := newStates(t, 4, false)
	committee := types.NewCommittee(4)
	suite := crypto.NewNopSuite(4)

	// A Byzantine r0 builds two different proposals for position 1.
	byz := NewState(Config{Committee: committee, Self: 0, Signer: suite.Signer(0), Verifier: suite.Verifier()})
	pA := byz.AddBatch(batch(0, 1))
	byz2 := NewState(Config{Committee: committee, Self: 0, Signer: suite.Signer(0), Verifier: suite.Verifier()})
	pB := byz2.AddBatch(batch(0, 99))
	if pA.Digest() == pB.Digest() {
		t.Fatal("fork digests must differ")
	}

	votes, err := states[1].OnProposal(pA)
	if err != nil || len(votes) != 1 {
		t.Fatalf("first fork must get the vote: %v", err)
	}
	votes, err = states[1].OnProposal(pB)
	if err != nil {
		t.Fatalf("fork sibling must be stored silently: %v", err)
	}
	if len(votes) != 0 {
		t.Fatal("voted twice for one position")
	}
	if states[1].Store().ForksAt(0, 1) != 2 {
		t.Fatalf("both forks must be stored, got %d", states[1].Store().ForksAt(0, 1))
	}
}

func TestDuplicateProposalRevotes(t *testing.T) {
	states := newStates(t, 4, false)
	p1 := states[0].AddBatch(batch(0, 1))
	v1, _ := states[1].OnProposal(p1)
	// Retransmission: the same proposal again yields an identical vote
	// (idempotent recovery after vote loss).
	v2, err := states[1].OnProposal(p1)
	if err != nil {
		t.Fatal(err)
	}
	if len(v1) != 1 || len(v2) != 1 || v1[0].Digest != v2[0].Digest || v1[0].Position != v2[0].Position {
		t.Fatalf("re-vote mismatch: %+v vs %+v", v1, v2)
	}
}

func TestOnCommittedAdoptsFrontier(t *testing.T) {
	states := newStates(t, 4, false)
	p1 := driveCar(t, states, 1)
	d1 := p1.Digest()

	// r3 never saw p1 live; commit adoption lets it vote for p2 anyway.
	fresh := newStates(t, 4, false)[3]
	fresh.OnCommitted(0, 1, d1)
	p2 := &types.Proposal{Lane: 0, Position: 2, Parent: d1, Batch: batch(0, 2)}
	votes, err := fresh.OnProposal(p2)
	if err != nil || len(votes) != 1 {
		t.Fatalf("committed-frontier adoption must allow the next vote: %v %v", votes, err)
	}
}

// TestOwnCommitRetiresOutstanding pins the commit-overtakes-certification
// recovery path (found by the live churn soak): a restarted proposer whose
// pre-crash cars commit from PoAs its peers already held — while the peers
// have GC'd their vote bookkeeping below the committed frontier and so
// never re-vote for a retransmission — must retire those cars from the
// outstanding window and resume production, or its lane wedges forever.
func TestOwnCommitRetiresOutstanding(t *testing.T) {
	committee := types.NewCommittee(4)
	suite := crypto.NewNopSuite(4)
	s := NewState(Config{
		Committee: committee, Self: 0,
		Signer: suite.Signer(0), Verifier: suite.Verifier(),
		PipelineCars: 2,
	})
	// Two outstanding cars whose votes will never arrive, plus a queued
	// batch blocked behind the full pipeline.
	p1 := s.AddBatch(batch(0, 1))
	p2 := s.AddBatch(batch(0, 2))
	if p1 == nil || p2 == nil {
		t.Fatal("pipeline must accept two cars")
	}
	if p := s.AddBatch(batch(0, 3)); p != nil {
		t.Fatal("third car exceeds the pipeline bound")
	}

	// The lane commits through position 1 without a local PoA: car 1
	// retires and the queued batch takes its pipeline slot immediately.
	props := s.OnCommitted(0, 1, p1.Digest())
	if len(props) != 1 || props[0].Position != 3 {
		t.Fatalf("commit did not refill the pipeline: %+v", props)
	}
	if oo := s.OldestOutstanding(); oo == nil || oo.Position != 2 {
		t.Fatalf("outstanding head = %+v, want position 2", oo)
	}

	// The surviving car still certifies normally (peer vote state at or
	// above the committed frontier is retained, so retransmission works).
	v := &types.Vote{Lane: 0, Position: 2, Digest: p2.Digest(), Voter: 1}
	v.Sig = suite.Signer(1).Sign(v.SigningBytes())
	_, poa, err := s.OnVote(v)
	if err != nil {
		t.Fatal(err)
	}
	if poa == nil || poa.Position != 2 {
		t.Fatalf("car 2 did not certify after the retirement: %+v", poa)
	}
}

func TestAssembleCutModes(t *testing.T) {
	states := newStates(t, 4, false)
	driveCar(t, states, 1)
	// A second proposal exists but is uncertified (no votes yet).
	p2 := states[0].AddBatch(batch(0, 2))
	if _, err := states[1].OnProposal(p2); err != nil {
		t.Fatal(err)
	}

	cert := states[1].AssembleCut(false)
	if cert.Tips[0].Position != 1 || !cert.Tips[0].Certified() {
		t.Fatalf("certified cut tip = %+v", cert.Tips[0])
	}
	opt := states[1].AssembleCut(true)
	if opt.Tips[0].Position != 2 || opt.Tips[0].Certified() {
		t.Fatalf("optimistic cut tip = %+v", opt.Tips[0])
	}
	// The proposer's own cut uses its leader tip (uncertified allowed).
	own := states[0].AssembleCut(false)
	if own.Tips[0].Position != 2 {
		t.Fatalf("leader tip = %+v", own.Tips[0])
	}
}

func TestBufferedGapReportsRange(t *testing.T) {
	states := newStates(t, 4, false)
	p1 := driveCar(t, states, 1)
	_ = p1
	// Build up to position 3 at the proposer with only r1 voting.
	var last *types.Proposal
	for seq := uint64(2); seq <= 3; seq++ {
		p := states[0].AddBatch(batch(0, seq))
		if p == nil {
			t.Fatal("car blocked")
		}
		last = p
		votes, err := states[1].OnProposal(p)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range votes {
			states[0].OnVote(v)
		}
	}
	// r3 saw nothing after p1; receives p3 out of order.
	if _, err := states[3].OnProposal(last); err != ErrMissingParent {
		t.Fatalf("expected buffering, got %v", err)
	}
	from, to, anchor, ok := states[3].BufferedGap(0)
	if !ok || from != 2 || to != 2 || anchor.Position != 2 {
		t.Fatalf("gap = [%d,%d] anchor=%+v ok=%v", from, to, anchor, ok)
	}
}

func TestRejectsInvalidProposals(t *testing.T) {
	states := newStates(t, 4, true)
	good := states[0].AddBatch(batch(0, 1))

	tampered := good.Clone()
	tampered.Sig = make([]byte, 64)
	if _, err := states[1].OnProposal(tampered); err == nil {
		t.Fatal("bad signature accepted")
	}
	wrongCount := good.Clone()
	badBatch := good.Batch.Clone()
	badBatch.Txs = []types.Transaction{[]byte("x")}
	badBatch.Count = 5
	badBatch.Bytes = 1
	wrongCount.Batch = badBatch
	if _, err := states[1].OnProposal(wrongCount); err == nil {
		t.Fatal("inconsistent batch accepted")
	}
	if _, err := states[1].OnProposal(&types.Proposal{Lane: 9, Position: 1, Batch: batch(9, 1)}); err == nil {
		t.Fatal("unknown lane accepted")
	}
	if _, err := states[0].OnProposal(good); err == nil {
		t.Fatal("own proposal loopback accepted")
	}
}

// TestChainSuffixIntegrity is a property test: after driving k cars, any
// certified tip's ChainSuffix is gap-free, hash-linked, and complete —
// the §5.1 instant-referencing invariant.
func TestChainSuffixIntegrity(t *testing.T) {
	f := func(k uint8) bool {
		n := int(k%20) + 2
		states := newStates(t, 4, false)
		var tip *types.Proposal
		for seq := 1; seq <= n; seq++ {
			p := states[0].AddBatch(batch(0, uint64(seq)))
			if p == nil {
				return false
			}
			tip = p
			for i := 1; i < 4; i++ {
				votes, err := states[i].OnProposal(p)
				if err != nil {
					return false
				}
				for _, v := range votes {
					states[0].OnVote(v)
				}
			}
		}
		props, complete := states[1].Store().ChainSuffix(0, 1, tip.Position, tip.Digest())
		if !complete || len(props) != n {
			return false
		}
		for i, p := range props {
			if p.Position != types.Pos(i+1) {
				return false
			}
			if i > 0 && p.Parent != props[i-1].Digest() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestStoreGC(t *testing.T) {
	s := NewStore()
	for pos := types.Pos(1); pos <= 10; pos++ {
		s.Put(&types.Proposal{Lane: 0, Position: pos, Batch: batch(0, uint64(pos))})
	}
	if s.Len() != 10 {
		t.Fatalf("len = %d", s.Len())
	}
	if removed := s.GCBelow(0, 5); removed != 4 {
		t.Fatalf("removed %d", removed)
	}
	if s.Len() != 6 {
		t.Fatalf("len after GC = %d", s.Len())
	}
	if _, complete := s.ChainSuffix(0, 1, 4, types.Digest{}); complete {
		t.Fatal("GC'd range must be incomplete")
	}
}
