package lane

import (
	"fmt"

	"repro/internal/crypto"
	"repro/internal/types"
)

// This file holds the data layer's stateless signature checks, split out
// of the stateful State handlers so they can run on the transport's
// parallel pre-verification stage (runtime.PreVerifier). Both paths call
// the same Collect*/Verify* helpers: the pipeline runs them off the event
// loop through a shared crypto.VerifyCache, and the state machine's
// inline re-check then resolves to a constant-time memo lookup.

// PreVerifier checks data-layer message signatures without touching lane
// state. Safe for concurrent use when Verifier is (its fields are
// immutable and a crypto.VerifyCache is thread-safe).
type PreVerifier struct {
	Committee types.Committee
	Verifier  crypto.Verifier
}

// PreVerify implements the runtime.PreVerifier contract for *Proposal,
// *Vote and *PoA; other message types pass through untouched.
func (pv *PreVerifier) PreVerify(_ types.NodeID, m types.Message) error {
	switch msg := m.(type) {
	case *types.Proposal:
		return VerifyProposalSigs(pv.Committee, pv.Verifier, msg)
	case *types.Vote:
		return VerifyVoteSig(pv.Committee, pv.Verifier, msg)
	case *types.PoA:
		// The standalone-PoA broadcast takes the memoized whole-cert
		// path: the state machine's inline re-check (lane.OnPoA,
		// ValidateCut) then resolves to one cert-memo lookup.
		return crypto.VerifyPoA(pv.Verifier, pv.Committee, msg)
	}
	return nil
}

// CollectProposalSigs queues a proposal's signature checks — the
// proposer's signature plus, when a parent PoA rides along, its f+1
// shares — after validating the PoA's structure. Stateless.
func CollectProposalSigs(committee types.Committee, bv *crypto.BatchVerifier, p *types.Proposal) error {
	if !committee.Valid(p.Lane) {
		return fmt.Errorf("lane: proposal for unknown lane %s", p.Lane)
	}
	bv.Add(p.Lane, p.SigningBytes(), p.Sig)
	if p.ParentPoA != nil {
		if p.Position <= 1 || p.ParentPoA.Lane != p.Lane || p.ParentPoA.Position != p.Position-1 || p.ParentPoA.Digest != p.Parent {
			return fmt.Errorf("lane: parent PoA does not certify parent")
		}
		if err := bv.AddPoA(committee, p.ParentPoA); err != nil {
			return err
		}
	}
	return nil
}

// VerifyProposalSigs is the inline form used by the state machine and
// the single-proposal pre-verification path: the proposer's signature is
// checked directly (one share-memo hit on re-check) and the parent PoA
// as a memoized whole certificate.
func VerifyProposalSigs(committee types.Committee, v crypto.Verifier, p *types.Proposal) error {
	if !committee.Valid(p.Lane) {
		return fmt.Errorf("lane: proposal for unknown lane %s", p.Lane)
	}
	if !v.Verify(p.Lane, p.SigningBytes(), p.Sig) {
		return fmt.Errorf("lane: bad proposal signature from %s", p.Lane)
	}
	if p.ParentPoA != nil {
		if p.Position <= 1 || p.ParentPoA.Lane != p.Lane || p.ParentPoA.Position != p.Position-1 || p.ParentPoA.Digest != p.Parent {
			return fmt.Errorf("lane: parent PoA does not certify parent")
		}
		return crypto.VerifyPoA(v, committee, p.ParentPoA)
	}
	return nil
}

// CollectVoteSig queues a lane vote's signature check. Stateless.
func CollectVoteSig(committee types.Committee, bv *crypto.BatchVerifier, v *types.Vote) error {
	if !committee.Valid(v.Voter) {
		return fmt.Errorf("lane: vote from unknown replica %s", v.Voter)
	}
	bv.Add(v.Voter, v.SigningBytes(), v.Sig)
	return nil
}

// VerifyVoteSig is the inline form of CollectVoteSig.
func VerifyVoteSig(committee types.Committee, ver crypto.Verifier, v *types.Vote) error {
	bv := crypto.NewBatchVerifier(ver)
	if err := CollectVoteSig(committee, bv, v); err != nil {
		return err
	}
	return bv.Verify()
}
