package lane

import (
	"sync"

	"repro/internal/types"
)

// Store indexes every data proposal a replica has received, by lane,
// position and digest (Byzantine lanes may fork, so one position can hold
// several proposals). It backs ordering (fetching committed payloads),
// sync serving (walking chain suffixes), and fork garbage collection.
//
// The store is safe for concurrent use: under the sharded data plane
// (core's runtime.Sharder implementation) per-lane shard workers insert
// proposals while the control plane reads them for ordering and the
// consensus engine checks tip availability. A single RWMutex suffices —
// every operation is a few map lookups, orders of magnitude cheaper than
// the payload hashing and signature work that surrounds it.
type Store struct {
	mu    sync.RWMutex
	lanes map[types.NodeID]map[types.Pos]map[types.Digest]*types.Proposal
	count int
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{lanes: make(map[types.NodeID]map[types.Pos]map[types.Digest]*types.Proposal)}
}

// Put stores p; duplicate (lane, pos, digest) entries are ignored.
// It returns true if the proposal was newly stored.
func (s *Store) Put(p *types.Proposal) bool {
	d := p.Digest() // outside the lock: first call hashes the payload
	s.mu.Lock()
	defer s.mu.Unlock()
	byPos, ok := s.lanes[p.Lane]
	if !ok {
		byPos = make(map[types.Pos]map[types.Digest]*types.Proposal)
		s.lanes[p.Lane] = byPos
	}
	byDig, ok := byPos[p.Position]
	if !ok {
		byDig = make(map[types.Digest]*types.Proposal)
		byPos[p.Position] = byDig
	}
	if _, dup := byDig[d]; dup {
		return false
	}
	byDig[d] = p
	s.count++
	return true
}

// Get returns the proposal at (lane, pos) with the given digest, or nil.
func (s *Store) Get(lane types.NodeID, pos types.Pos, digest types.Digest) *types.Proposal {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if byDig, ok := s.lanes[lane][pos]; ok {
		return byDig[digest]
	}
	return nil
}

// Has reports whether the proposal is stored.
func (s *Store) Has(lane types.NodeID, pos types.Pos, digest types.Digest) bool {
	return s.Get(lane, pos, digest) != nil
}

// Len returns the number of stored proposals.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.count
}

// ChainSuffix returns the proposals of `lane` at positions [from, to], in
// ascending order, walking parent links backward from the proposal with
// tipDigest at position `to`. The second result is false if any link is
// missing locally (the returned prefix may then be partial, covering the
// highest contiguous suffix found).
func (s *Store) ChainSuffix(lane types.NodeID, from, to types.Pos, tipDigest types.Digest) ([]*types.Proposal, bool) {
	if from == 0 {
		from = 1
	}
	if to < from {
		return nil, true
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]*types.Proposal, 0, int(to-from)+1)
	dig := tipDigest
	for pos := to; pos >= from; pos-- {
		var p *types.Proposal
		if byDig, ok := s.lanes[lane][pos]; ok {
			p = byDig[dig]
		}
		if p == nil {
			// reverse what we have and report incompleteness
			reverse(out)
			return out, false
		}
		out = append(out, p)
		dig = p.Parent
		if pos == 1 {
			break
		}
	}
	reverse(out)
	return out, true
}

// GCBelow drops all proposals of `lane` at positions < keep. Committed
// prefixes are garbage collected after ordering; fork siblings below the
// committed frontier disappear here (§A.4).
func (s *Store) GCBelow(lane types.NodeID, keep types.Pos) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	removed := 0
	for pos, byDig := range s.lanes[lane] {
		if pos < keep {
			removed += len(byDig)
			delete(s.lanes[lane], pos)
		}
	}
	s.count -= removed
	return removed
}

// ForksAt returns how many distinct proposals are stored at (lane, pos).
func (s *Store) ForksAt(lane types.NodeID, pos types.Pos) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.lanes[lane][pos])
}

func reverse(ps []*types.Proposal) {
	for i, j := 0, len(ps)-1; i < j; i, j = i+1, j-1 {
		ps[i], ps[j] = ps[j], ps[i]
	}
}
