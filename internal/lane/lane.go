// Package lane implements Autobahn's data dissemination layer (§5.1):
// every replica owns a lane — a chain of cars (Propose/Vote exchanges) —
// growing at its own pace, independent of consensus. f+1 votes form a
// Proof of Availability (PoA); chaining plus FIFO voting make a certified
// tip transitively prove the availability of the lane's entire history,
// which is what gives the consensus layer instant referencing,
// non-blocking sync and timely sync.
//
// The package is a pure state machine: methods consume protocol inputs
// and return the messages to emit, so the same code runs under the
// discrete-event simulator, the TCP runtime, and direct unit tests.
package lane

import (
	"errors"
	"fmt"
	"sync/atomic"

	"repro/internal/crypto"
	"repro/internal/types"
)

// Journal records the lane layer's safety-critical outputs before they
// are externalized: own-lane proposals (a restarted replica must never
// equivocate at a position it already proposed) and FIFO votes (it must
// never vote for a different digest at a voted position). core.Journal
// adapts this to the replica-wide durable journal; the default is a
// no-op.
type Journal interface {
	// OwnProposal records a newly produced own-lane proposal.
	OwnProposal(p *types.Proposal)
	// Vote records a FIFO vote cast for a peer-lane proposal.
	Vote(v *types.Vote)
}

type nopJournal struct{}

func (nopJournal) OwnProposal(*types.Proposal) {}
func (nopJournal) Vote(*types.Vote)            {}

// Config parameterizes a replica's lane state.
type Config struct {
	Committee types.Committee
	Self      types.NodeID
	Signer    crypto.Signer
	Verifier  crypto.Verifier
	// Journal durably records proposals and votes before they leave the
	// replica (nil = no persistence).
	Journal Journal
	// VerifyProposals enables full signature verification of incoming
	// proposals and votes. Disable only in simulations where signature
	// cost is modeled by the network layer instead.
	VerifyProposals bool
	// MaxBuffered bounds out-of-order proposals buffered per lane
	// (Byzantine flooding protection; §A.4 bounded wastage).
	MaxBuffered int
	// PipelineCars, when > 1, allows that many un-certified own proposals
	// in flight (§5.5.1). The paper's prototype (and our default) uses 1:
	// a new car starts only once the previous car's PoA completed.
	PipelineCars int
	// MaxCarBytes caps one car's merged payload (default 4 MB). Without a
	// cap, a lane stalled behind congested voters merges its backlog into
	// ever-larger cars whose processing cost congests voters further — a
	// feedback loop that can melt the whole cluster under a blip at high
	// load. The remainder stays pending and rides the following cars.
	MaxCarBytes uint64
}

func (c *Config) fill() {
	if c.MaxBuffered == 0 {
		c.MaxBuffered = 1024
	}
	if c.PipelineCars == 0 {
		c.PipelineCars = 1
	}
	if c.MaxCarBytes == 0 {
		c.MaxCarBytes = 4 << 20
	}
	if c.Journal == nil {
		c.Journal = nopJournal{}
	}
}

// State is one replica's view of all n lanes plus the production state of
// its own lane.
type State struct {
	cfg   Config
	store *Store

	// Own lane production.
	nextPos     types.Pos
	nextSeq     uint64
	outstanding []*types.Proposal // un-certified own proposals, oldest first
	votes       map[types.Pos]map[types.NodeID]types.SigShare
	ownTip      types.TipRef // latest own proposal (possibly uncertified)
	ownCert     types.TipRef // latest certified own tip (PoA complete)
	pending     []*types.Batch
	// ownCommitted is the own lane's committed frontier — the depth
	// gauge's lower bound (certification alone does not retire a car's
	// client-visible backlog; only the commit does).
	ownCommitted types.Pos

	// depth mirrors the own lane's end-to-end backlog atomically: batches
	// waiting for a car plus cars proposed but not yet committed
	// (certified cars awaiting a cut included — under overload that is
	// where the queue lives). Admission control (internal/gateway) reads
	// it from client-facing goroutines while the state machine runs on
	// its event loop, so it cannot read the production state directly.
	depth atomic.Int64

	// Peer lane views (indexed by lane owner; own entry tracks commit GC).
	peers []*peerView
}

// Depth returns the own lane's end-to-end backlog: batches waiting for
// a car plus cars proposed but not yet committed. A single atomic load,
// safe from any goroutine — the gateway's overload signal for this lane.
func (s *State) Depth() int { return int(s.depth.Load()) }

func (s *State) updateDepth() {
	uncommitted := int64(s.nextPos-1) - int64(s.ownCommitted)
	if uncommitted < 0 {
		uncommitted = 0
	}
	s.depth.Store(int64(len(s.pending)) + uncommitted)
}

type peerView struct {
	votedPos    types.Pos
	votedDigest map[types.Pos]types.Digest
	buffered    map[types.Pos]*types.Proposal
	certTip     types.TipRef // highest certified tip observed (PoA known)
	optTip      types.TipRef // highest in-order received proposal
	committed   types.Pos    // last committed position (GC frontier)
}

// NewState builds lane state for one replica.
func NewState(cfg Config) *State {
	cfg.fill()
	peers := make([]*peerView, cfg.Committee.Size())
	for i := range peers {
		peers[i] = &peerView{
			votedDigest: make(map[types.Pos]types.Digest),
			buffered:    make(map[types.Pos]*types.Proposal),
			certTip:     types.TipRef{Lane: types.NodeID(i)},
			optTip:      types.TipRef{Lane: types.NodeID(i)},
		}
	}
	return &State{
		cfg:     cfg,
		store:   NewStore(),
		nextPos: 1,
		votes:   make(map[types.Pos]map[types.NodeID]types.SigShare),
		ownTip:  types.TipRef{Lane: cfg.Self},
		ownCert: types.TipRef{Lane: cfg.Self},
		peers:   peers,
	}
}

// Store exposes the proposal store (ordering and sync serving read it).
func (s *State) Store() *Store { return s.store }

// --- own lane production ---

// AddBatch queues a sealed batch; if the lane can start a new car now it
// returns the proposal to broadcast (nil otherwise).
func (s *State) AddBatch(b *types.Batch) *types.Proposal {
	s.pending = append(s.pending, b)
	p := s.tryPropose()
	s.updateDepth()
	return p
}

// PendingBatches returns the number of batches waiting for a car.
func (s *State) PendingBatches() int { return len(s.pending) }

// OldestOutstanding returns the oldest own car still awaiting its PoA
// (nil if none). The node rebroadcasts it if it lingers: the original
// broadcast or its votes may have been lost to a crash or partition.
func (s *State) OldestOutstanding() *types.Proposal {
	if len(s.outstanding) == 0 {
		return nil
	}
	return s.outstanding[0]
}

func (s *State) tryPropose() *types.Proposal {
	if len(s.pending) == 0 || len(s.outstanding) >= s.cfg.PipelineCars {
		return nil
	}
	// Mini-batching (§6): a car carries the pending batches (up to the
	// size cap), so lane throughput is not capped at one mempool batch
	// per PoA round trip and a post-blip backlog drains in a few cars.
	take := len(s.pending)
	var sz uint64
	for i, b := range s.pending {
		sz += b.Bytes
		if sz > s.cfg.MaxCarBytes && i > 0 {
			take = i
			break
		}
	}
	batch := types.MergeBatches(s.pending[:take])
	s.pending = s.pending[take:]

	var parent types.Digest
	var parentPoA *types.PoA
	if s.nextPos > 1 {
		parent = s.ownTip.Digest
		if s.ownCert.Position == s.nextPos-1 {
			parentPoA = s.ownCert.Cert
		}
	}
	p := &types.Proposal{
		Lane:      s.cfg.Self,
		Position:  s.nextPos,
		Parent:    parent,
		ParentPoA: parentPoA,
		Batch:     batch,
	}
	p.Sig = s.cfg.Signer.Sign(p.SigningBytes())
	d := p.Digest()

	// The proposer's own vote counts toward the PoA (it holds the data).
	self := types.Vote{Lane: s.cfg.Self, Position: p.Position, Digest: d, Voter: s.cfg.Self}
	share := types.SigShare{Signer: s.cfg.Self, Sig: s.cfg.Signer.Sign(self.SigningBytes())}
	s.votes[p.Position] = map[types.NodeID]types.SigShare{s.cfg.Self: share}

	s.outstanding = append(s.outstanding, p)
	s.ownTip = types.TipRef{Lane: s.cfg.Self, Position: p.Position, Digest: d}
	s.nextPos++
	s.store.Put(p)
	s.cfg.Journal.OwnProposal(p)
	return p
}

// OnVote processes a vote for one of this replica's own proposals. When
// votes complete PoAs it returns the new proposals to broadcast (each
// completed PoA rides in its successor's ParentPoA field) and — if the
// newest PoA has no successor batch yet — that PoA to broadcast standalone
// so peers still learn the new certified tip (§5.1 step 3). Errors
// indicate invalid votes (ignored inputs).
func (s *State) OnVote(v *types.Vote) ([]*types.Proposal, *types.PoA, error) {
	if v.Lane != s.cfg.Self {
		return nil, nil, fmt.Errorf("lane: vote for %s routed to %s", v.Lane, s.cfg.Self)
	}
	idx := -1
	for i, p := range s.outstanding {
		if p.Position == v.Position {
			idx = i
			break
		}
	}
	if idx < 0 {
		return nil, nil, nil // vote for an already-certified car: benign
	}
	p := s.outstanding[idx]
	if v.Digest != p.Digest() {
		return nil, nil, fmt.Errorf("lane: vote digest mismatch at pos %d", v.Position)
	}
	if !s.cfg.Committee.Valid(v.Voter) {
		return nil, nil, fmt.Errorf("lane: vote from unknown replica %s", v.Voter)
	}
	if s.cfg.VerifyProposals {
		// Stateless check shared with the pre-verification pipeline: a
		// pre-verified vote resolves to a memo hit here.
		if err := VerifyVoteSig(s.cfg.Committee, s.cfg.Verifier, v); err != nil {
			return nil, nil, err
		}
	}
	set := s.votes[v.Position]
	if _, dup := set[v.Voter]; dup {
		return nil, nil, nil
	}
	set[v.Voter] = types.SigShare{Signer: v.Voter, Sig: v.Sig}

	// Certify from the oldest outstanding car forward; with pipelined cars
	// (PipelineCars > 1) one vote can unblock a cascade of completions.
	var props []*types.Proposal
	var lastPoA *types.PoA
	for len(s.outstanding) > 0 {
		head := s.outstanding[0]
		headSet := s.votes[head.Position]
		if len(headSet) < s.cfg.Committee.PoAQuorum() {
			break
		}
		shares := make([]types.SigShare, 0, len(headSet))
		for _, sh := range headSet {
			shares = append(shares, sh)
		}
		sortShares(shares)
		poa := &types.PoA{Lane: s.cfg.Self, Position: head.Position, Digest: head.Digest(), Shares: shares}
		delete(s.votes, head.Position)
		s.outstanding = s.outstanding[1:]
		s.ownCert = types.TipRef{Lane: s.cfg.Self, Position: poa.Position, Digest: poa.Digest, Cert: poa}
		lastPoA = poa
		if next := s.tryPropose(); next != nil {
			props = append(props, next)
			lastPoA = nil // the PoA travels inside next's ParentPoA
		}
	}
	s.updateDepth()
	return props, lastPoA, nil
}

// --- peer lanes ---

// ErrMissingParent marks proposals buffered for want of their parent.
var ErrMissingParent = errors.New("lane: missing parent, proposal buffered")

// OnProposal processes a data proposal from a peer lane (live broadcast or
// sync delivery). It returns the votes to send to the lane owner: possibly
// several, when the proposal fills a gap and unblocks buffered successors.
// ErrMissingParent reports buffering (the caller may schedule a sync).
func (s *State) OnProposal(p *types.Proposal) ([]*types.Vote, error) {
	if !s.cfg.Committee.Valid(p.Lane) {
		return nil, fmt.Errorf("lane: proposal for unknown lane %s", p.Lane)
	}
	if p.Lane == s.cfg.Self {
		return nil, fmt.Errorf("lane: own proposal fed back")
	}
	if p.Position == 0 {
		return nil, fmt.Errorf("lane: proposal at position 0")
	}
	if err := p.Batch.Validate(); err != nil {
		return nil, err
	}
	if s.cfg.VerifyProposals {
		// Stateless checks (proposer signature + parent PoA) shared with
		// the pre-verification pipeline: a pre-verified proposal resolves
		// to memo hits here instead of repeating the curve arithmetic.
		if err := VerifyProposalSigs(s.cfg.Committee, s.cfg.Verifier, p); err != nil {
			return nil, err
		}
	}
	pv := s.peers[p.Lane]

	// Record the parent PoA as the lane's latest certified tip (§5.1 step 2).
	if p.ParentPoA != nil && p.ParentPoA.Position > pv.certTip.Position {
		pv.certTip = types.TipRef{
			Lane: p.Lane, Position: p.ParentPoA.Position,
			Digest: p.ParentPoA.Digest, Cert: p.ParentPoA,
		}
	}
	s.store.Put(p)

	if p.Position <= pv.votedPos || p.Position <= pv.committed {
		// Duplicate or fork sibling at an old position. If this is a
		// retransmission of exactly what we voted for, re-emit the vote:
		// the original may have been lost to a crash or partition and
		// votes are idempotent (the proposer de-duplicates by signer).
		if d, ok := pv.votedDigest[p.Position]; ok && d == p.Digest() {
			v := &types.Vote{Lane: p.Lane, Position: p.Position, Digest: d, Voter: s.cfg.Self}
			v.Sig = s.cfg.Signer.Sign(v.SigningBytes())
			return []*types.Vote{v}, nil
		}
		return nil, nil
	}
	if p.Position > pv.votedPos+1 {
		// Out of order: buffer (bounded) and wait for the gap to fill.
		if len(pv.buffered) < s.cfg.MaxBuffered {
			if _, exists := pv.buffered[p.Position]; !exists {
				pv.buffered[p.Position] = p
			}
		}
		return nil, ErrMissingParent
	}
	return s.voteChain(pv, p), nil
}

// voteChain votes for p and for any buffered successors it unblocks.
func (s *State) voteChain(pv *peerView, p *types.Proposal) []*types.Vote {
	var out []*types.Vote
	for p != nil {
		if !s.fifoOK(pv, p) {
			// Fork at the head position: store only, stop the chain.
			break
		}
		d := p.Digest()
		v := &types.Vote{Lane: p.Lane, Position: p.Position, Digest: d, Voter: s.cfg.Self}
		v.Sig = s.cfg.Signer.Sign(v.SigningBytes())
		s.cfg.Journal.Vote(v)
		out = append(out, v)
		pv.votedPos = p.Position
		pv.votedDigest[p.Position] = d
		pv.optTip = types.TipRef{Lane: p.Lane, Position: p.Position, Digest: d}
		next, ok := pv.buffered[p.Position+1]
		if !ok {
			break
		}
		delete(pv.buffered, p.Position+1)
		p = next
	}
	return out
}

// fifoOK enforces in-order voting: the proposal's parent must be exactly
// what this replica voted for (or the committed chain) at position-1.
func (s *State) fifoOK(pv *peerView, p *types.Proposal) bool {
	if p.Position == 1 {
		return p.Parent.IsZero()
	}
	prev, ok := pv.votedDigest[p.Position-1]
	if !ok {
		return false
	}
	return prev == p.Parent
}

// IngestOwn stores an own-lane proposal learned back from peers (sync
// delivery only). A replica normally never re-ingests its own lane —
// everything it produces is stored at production time — but two recovery
// cases must accept committed own-lane data from outside: an amnesiac
// restart (the journal was lost, yet pre-crash cars committed and must be
// re-fetched to execute), and a self-equivocated fork losing the commit
// race to the copy sent elsewhere (§A.4 — only a Byzantine replica can
// be in this position, but its execution wedging forever on its own lie
// would make every local commit observer stall with it). Production
// state (positions, outstanding cars, votes, tips) is untouched: this is
// store-only, for execution.
func (s *State) IngestOwn(p *types.Proposal) error {
	if p.Lane != s.cfg.Self {
		return fmt.Errorf("lane: IngestOwn of lane %s at %s", p.Lane, s.cfg.Self)
	}
	if p.Position == 0 {
		return fmt.Errorf("lane: proposal at position 0")
	}
	if err := p.Batch.Validate(); err != nil {
		return err
	}
	if s.cfg.VerifyProposals {
		if err := VerifyProposalSigs(s.cfg.Committee, s.cfg.Verifier, p); err != nil {
			return err
		}
	}
	s.store.Put(p)
	return nil
}

// OnPoA ingests a standalone PoA broadcast (flushed when a lane goes
// idle) or a PoA learned from a consensus cut. The data need not be
// present locally — certified tips are usable for cuts without it.
func (s *State) OnPoA(poa *types.PoA) error {
	if !s.cfg.Committee.Valid(poa.Lane) {
		return fmt.Errorf("lane: PoA for unknown lane %s", poa.Lane)
	}
	if s.cfg.VerifyProposals {
		if err := crypto.VerifyPoA(s.cfg.Verifier, s.cfg.Committee, poa); err != nil {
			return err
		}
	}
	if poa.Lane == s.cfg.Self {
		if poa.Position > s.ownCert.Position {
			s.ownCert = types.TipRef{Lane: poa.Lane, Position: poa.Position, Digest: poa.Digest, Cert: poa}
		}
		return nil
	}
	pv := s.peers[poa.Lane]
	if poa.Position > pv.certTip.Position {
		pv.certTip = types.TipRef{Lane: poa.Lane, Position: poa.Position, Digest: poa.Digest, Cert: poa}
	}
	return nil
}

// --- tips, cuts, availability ---

// CertifiedTip returns the highest certified tip known for a lane.
func (s *State) CertifiedTip(l types.NodeID) types.TipRef {
	if l == s.cfg.Self {
		return s.ownCert
	}
	return s.peers[l].certTip
}

// OptimisticTip returns the highest in-order received proposal of a lane
// (used by the §5.5.2 optimistic-tips optimization). Falls back to the
// certified tip when nothing newer was received.
func (s *State) OptimisticTip(l types.NodeID) types.TipRef {
	if l == s.cfg.Self {
		return s.ownTip
	}
	pv := s.peers[l]
	if pv.optTip.Position > pv.certTip.Position {
		return pv.optTip
	}
	return pv.certTip
}

// AssembleCut builds this replica's current view of all lanes, for use as
// a consensus proposal (§5.2). With optimistic true, non-self lanes use
// their highest received tip (uncertified); the replica's own lane always
// uses the leader-tip rule (§5.5.2: a leader may reference its own latest
// proposal uncertified — it only hurts itself by lying).
func (s *State) AssembleCut(optimistic bool) types.Cut {
	return s.AssembleCutFunc(func(types.NodeID) bool { return optimistic })
}

// AssembleCutFunc is AssembleCut with per-lane optimism — the hook for the
// §B.1 reputation mechanism, which falls back to certified tips for lanes
// that recently forced critical-path synchronization.
func (s *State) AssembleCutFunc(optimisticFor func(types.NodeID) bool) types.Cut {
	n := s.cfg.Committee.Size()
	cut := types.Cut{Tips: make([]types.TipRef, n)}
	for i := 0; i < n; i++ {
		l := types.NodeID(i)
		switch {
		case l == s.cfg.Self:
			cut.Tips[i] = s.leaderOwnTip()
		case optimisticFor(l):
			cut.Tips[i] = s.OptimisticTip(l)
		default:
			cut.Tips[i] = s.CertifiedTip(l)
		}
	}
	return cut
}

func (s *State) leaderOwnTip() types.TipRef {
	if s.ownTip.Position > s.ownCert.Position {
		return s.ownTip // uncertified leader tip
	}
	return s.ownCert
}

// HasProposal reports whether the replica locally possesses the proposal
// identified by a tip reference (vacuously true for genesis tips).
func (s *State) HasProposal(t types.TipRef) bool {
	if t.Empty() {
		return true
	}
	return s.store.Has(t.Lane, t.Position, t.Digest)
}

// VotedPos returns the highest contiguous voted position for a peer lane
// (own lane: highest proposed position).
func (s *State) VotedPos(l types.NodeID) types.Pos {
	if l == s.cfg.Self {
		return s.nextPos - 1
	}
	return s.peers[l].votedPos
}

// BufferedGap reports, for a peer lane, the lowest buffered out-of-order
// proposal and whether a gap currently exists (used to schedule syncs).
func (s *State) BufferedGap(l types.NodeID) (from, to types.Pos, tip types.TipRef, ok bool) {
	if l == s.cfg.Self {
		return 0, 0, types.TipRef{}, false
	}
	pv := s.peers[l]
	if len(pv.buffered) == 0 {
		return 0, 0, types.TipRef{}, false
	}
	lowest := types.Pos(0)
	var lowProp *types.Proposal
	for pos, p := range pv.buffered {
		if lowest == 0 || pos < lowest {
			lowest = pos
			lowProp = p
		}
	}
	// The gap spans (votedPos, lowest-1]; the buffered proposal's parent
	// link anchors the chain we must fetch.
	start := maxPos(pv.votedPos, pv.committed) + 1
	if lowest-1 < start {
		return 0, 0, types.TipRef{}, false
	}
	anchor := types.TipRef{Lane: l, Position: lowest - 1, Digest: lowProp.Parent, Cert: lowProp.ParentPoA}
	return start, lowest - 1, anchor, true
}

// OnCommitted informs the lane layer that `lane` committed through
// (pos, digest): the voting frontier adopts the committed chain (so FIFO
// voting continues from it even across forks healed by sync), buffered
// and fork state below it is garbage collected (§A.4).
//
// For the own lane, a commit can overtake local PoA assembly: a restarted
// replica's pre-crash cars commit from PoAs its peers already held, while
// the peers have GC'd their vote bookkeeping below the committed frontier
// and will never re-vote for a retransmission (OnProposal's duplicate
// branch finds no recorded digest). Waiting for those PoAs would wedge
// the outstanding window — and with it car production — forever. A commit
// subsumes certification, so committed cars retire from the pipeline
// here, and any cars that unblocks are returned for broadcast (nil in
// the steady state, where certification always runs ahead of commit).
func (s *State) OnCommitted(lane types.NodeID, pos types.Pos, digest types.Digest) []*types.Proposal {
	if pos == 0 {
		return nil
	}
	if lane == s.cfg.Self {
		if pos > s.ownCommitted {
			s.ownCommitted = pos
		}
		// Proposals themselves are retained for sync serving (see below);
		// only the outstanding window and its vote shares are reclaimed.
		var props []*types.Proposal
		for len(s.outstanding) > 0 && s.outstanding[0].Position <= pos {
			delete(s.votes, s.outstanding[0].Position)
			s.outstanding = s.outstanding[1:]
			if next := s.tryPropose(); next != nil {
				props = append(props, next)
			}
		}
		s.updateDepth()
		return props
	}
	pv := s.peers[lane]
	if pos <= pv.committed {
		return nil
	}
	pv.committed = pos
	if pv.votedPos < pos {
		pv.votedPos = pos
	}
	pv.votedDigest[pos] = digest
	for p := range pv.votedDigest {
		if p < pos {
			delete(pv.votedDigest, p)
		}
	}
	for p := range pv.buffered {
		if p <= pos {
			delete(pv.buffered, p)
		}
	}
	// Note: certTip is NOT advanced to the committed frontier — it must
	// always carry a real PoA (a cert-less "certified" tip would poison
	// the next cut). A certTip lagging the committed frontier is harmless:
	// ordering ignores stale tips and coverage counts them as old.
	if pv.optTip.Position < pos {
		pv.optTip = types.TipRef{Lane: lane, Position: pos, Digest: digest}
	}
	// Committed proposals are retained: the paper's prototype persists
	// all data (RocksDB) and serves arbitrarily deep sync requests from
	// it — a replica returning from a long partition must be able to
	// fetch history well below the live frontier (see internal/storage
	// for the disk-backed equivalent). Only vote bookkeeping and fork
	// siblings below the frontier are reclaimed (§A.4).
	return nil
}

// Restore rebuilds the lane state of a restarted replica from its
// journal: own-lane production resumes after the last journaled proposal
// (so the lane can never equivocate at a pre-crash position), and peer
// vote frontiers adopt the journaled FIFO votes (so the replica can never
// vote for a different digest at a pre-crash position — only re-emit the
// identical vote on retransmission). Must be called before any protocol
// input, with own proposals in ascending position order. ownCommitted is
// the own lane's executed frontier: proposals at or below it were
// committed pre-crash and are not re-certified (peers have GC'd their
// vote state below their committed frontiers), only retained for sync
// serving.
func (s *State) Restore(own []*types.Proposal, ownCommitted types.Pos, votes map[types.NodeID]map[types.Pos]types.Digest) {
	for _, p := range own {
		if p.Lane != s.cfg.Self || p.Position < s.nextPos {
			continue
		}
		s.store.Put(p)
		d := p.Digest()
		s.ownTip = types.TipRef{Lane: s.cfg.Self, Position: p.Position, Digest: d}
		s.nextPos = p.Position + 1
		if p.Position <= ownCommitted {
			continue
		}
		// Still uncertified: rejoin the outstanding pipeline (the car-retx
		// timer re-broadcasts it; peers re-emit their idempotent votes).
		self := types.Vote{Lane: s.cfg.Self, Position: p.Position, Digest: d, Voter: s.cfg.Self}
		share := types.SigShare{Signer: s.cfg.Self, Sig: s.cfg.Signer.Sign(self.SigningBytes())}
		s.votes[p.Position] = map[types.NodeID]types.SigShare{s.cfg.Self: share}
		s.outstanding = append(s.outstanding, p)
	}
	if ownCommitted > s.ownCommitted {
		s.ownCommitted = ownCommitted
	}
	s.updateDepth()
	lanes := make([]types.NodeID, 0, len(votes))
	for l := range votes {
		lanes = append(lanes, l)
	}
	sortLanes(lanes)
	for _, l := range lanes {
		m := votes[l]
		if !s.cfg.Committee.Valid(l) || l == s.cfg.Self {
			continue
		}
		pv := s.peers[l]
		for pos, d := range m {
			pv.votedDigest[pos] = d
			if pos > pv.votedPos {
				// FIFO voting journals every vote in order, so the highest
				// journaled position is the contiguous frontier.
				pv.votedPos = pos
			}
		}
		// certTip/optTip restart at genesis: certified tips must carry a
		// real PoA, and both rebuild from live traffic (ParentPoA, OnPoA).
	}
}

func maxPos(a, b types.Pos) types.Pos {
	if a > b {
		return a
	}
	return b
}

func sortLanes(lanes []types.NodeID) {
	// insertion sort: committee sizes are small
	for i := 1; i < len(lanes); i++ {
		for j := i; j > 0 && lanes[j] < lanes[j-1]; j-- {
			lanes[j], lanes[j-1] = lanes[j-1], lanes[j]
		}
	}
}

func sortShares(shares []types.SigShare) {
	// insertion sort by signer: share sets are tiny (f+1)
	for i := 1; i < len(shares); i++ {
		for j := i; j > 0 && shares[j].Signer < shares[j-1].Signer; j-- {
			shares[j], shares[j-1] = shares[j-1], shares[j]
		}
	}
}
