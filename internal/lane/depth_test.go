package lane

import "testing"

// TestDepthGaugeFollowsProduction pins the own-lane depth gauge to the
// production pipeline: pending batches and proposed cars raise it, and
// only the commit retires it — certification alone leaves the car's
// client-visible backlog in place (under overload the queue lives in
// certified cars awaiting a cut).
func TestDepthGaugeFollowsProduction(t *testing.T) {
	states := newStates(t, 4, false)
	s := states[0]
	if s.Depth() != 0 {
		t.Fatalf("fresh lane depth = %d", s.Depth())
	}

	// First batch starts a car immediately: one outstanding, none pending.
	p1 := s.AddBatch(batch(0, 1))
	if p1 == nil || s.Depth() != 1 {
		t.Fatalf("after first batch: proposal=%v depth=%d, want 1", p1 != nil, s.Depth())
	}
	// Second batch queues behind the uncertified car (PipelineCars = 1).
	if p := s.AddBatch(batch(0, 2)); p != nil || s.Depth() != 2 {
		t.Fatalf("after second batch: proposal=%v depth=%d, want 2", p != nil, s.Depth())
	}

	// Completing car 1's PoA starts car 2: pending drains, but both cars
	// remain uncommitted — certification does not lower the gauge.
	for i := 1; i < 4; i++ {
		votes, err := states[i].OnProposal(p1)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range votes {
			if _, _, err := s.OnVote(v); err != nil {
				t.Fatal(err)
			}
		}
	}
	if s.Depth() != 2 {
		t.Fatalf("after PoA: depth = %d, want 2 (cars 1 and 2 uncommitted)", s.Depth())
	}

	// A commit through car 2 retires the whole pipeline (commit subsumes
	// certification — the restart-recovery path).
	s.OnCommitted(0, 2, s.OptimisticTip(0).Digest)
	if s.Depth() != 0 {
		t.Fatalf("after commit: depth = %d, want 0", s.Depth())
	}
}
