package wire

import (
	"bytes"
	"math/rand/v2"
	"reflect"
	"testing"
	"time"

	"repro/internal/types"
)

func sig(b byte) []byte {
	s := make([]byte, 64)
	for i := range s {
		s[i] = b
	}
	return s
}

func samplePoA() *types.PoA {
	return &types.PoA{
		Lane: 2, Position: 17, Digest: types.Digest{1, 2},
		Shares: []types.SigShare{{Signer: 0, Sig: sig(1)}, {Signer: 3, Sig: sig(2)}},
	}
}

func sampleRealBatch() *types.Batch {
	return types.NewBatch(1, 9, []types.Transaction{[]byte("alpha"), []byte(""), []byte("gamma-long-payload")}, 5*time.Millisecond)
}

func sampleSynthetic() *types.Batch {
	return types.NewSyntheticBatch(3, 11, 1000, 512_000, 123*time.Millisecond, 130*time.Millisecond)
}

func sampleProposal() *types.Proposal {
	return &types.Proposal{
		Lane: 2, Position: 18, Parent: types.Digest{7},
		ParentPoA: samplePoA(), Batch: sampleRealBatch(), Sig: sig(3),
	}
}

func sampleCut() types.Cut {
	cut := types.NewEmptyCut(4)
	cut.Tips[1] = types.TipRef{Lane: 1, Position: 4, Digest: types.Digest{4}, Cert: samplePoA()}
	cut.Tips[2] = types.TipRef{Lane: 2, Position: 9, Digest: types.Digest{5}} // optimistic
	return cut
}

func sampleTC() *types.TC {
	hp := &types.ConsensusProposal{Slot: 6, View: 1, Cut: sampleCut()}
	return &types.TC{Slot: 6, View: 2, Timeouts: []types.Timeout{
		{Slot: 6, View: 2, Voter: 0, Sig: sig(4)},
		{Slot: 6, View: 2, Voter: 1, HighProp: hp, Sig: sig(5)},
		{Slot: 6, View: 2, Voter: 2, HighQC: &types.PrepareQC{
			Slot: 6, View: 1, Digest: types.Digest{8},
			Shares:     []types.SigShare{{Signer: 0, Sig: sig(6)}, {Signer: 1, Sig: sig(7)}, {Signer: 2, Sig: sig(8)}},
			StrongMask: []bool{true, false, true},
		}, Sig: sig(9)},
	}}
}

func allMessages() []types.Message {
	return []types.Message{
		sampleProposal(),
		&types.Proposal{Lane: 0, Position: 1, Batch: sampleSynthetic(), Sig: sig(1)}, // genesis, synthetic, no PoA
		&types.Vote{Lane: 1, Position: 3, Digest: types.Digest{2}, Voter: 2, Sig: sig(2)},
		samplePoA(),
		&types.Prepare{
			Leader:   3,
			Proposal: types.ConsensusProposal{Slot: 5, View: 0, Cut: sampleCut()},
			Ticket:   types.Ticket{Kind: types.TicketCommit, Commit: &types.CommitQC{Slot: 1, View: 0, Digest: types.Digest{3}, Fast: true, Shares: []types.SigShare{{Signer: 1, Sig: sig(4)}}}},
			Sig:      sig(5),
		},
		&types.Prepare{
			Leader:   0,
			Proposal: types.ConsensusProposal{Slot: 6, View: 3, Cut: sampleCut()},
			Ticket:   types.Ticket{Kind: types.TicketTC, TC: sampleTC()},
			Sig:      sig(6),
		},
		&types.Prepare{ // genesis ticket: commit kind with nil QC
			Leader:   1,
			Proposal: types.ConsensusProposal{Slot: 2, View: 0, Cut: types.NewEmptyCut(4)},
			Ticket:   types.Ticket{Kind: types.TicketCommit},
			Sig:      sig(7),
		},
		&types.PrepVote{Slot: 5, View: 0, Digest: types.Digest{6}, Voter: 1, Strong: true, Sig: sig(8)},
		&types.Confirm{Leader: 3, QC: types.PrepareQC{Slot: 5, View: 0, Digest: types.Digest{6}, Shares: []types.SigShare{{Signer: 2, Sig: sig(9)}}}, Sig: sig(10)},
		&types.ConfirmAck{Slot: 5, View: 0, Digest: types.Digest{6}, Voter: 0, Sig: sig(11)},
		&types.CommitNotice{
			QC:       types.CommitQC{Slot: 5, View: 0, Digest: types.Digest{6}, Shares: []types.SigShare{{Signer: 0, Sig: sig(12)}}},
			Proposal: types.ConsensusProposal{Slot: 5, View: 0, Cut: sampleCut()},
		},
		&types.Timeout{Slot: 7, View: 1, Voter: 2, HighQC: nil, HighProp: nil, Sig: sig(13)},
		&types.SyncRequest{Lane: 1, From: 3, To: 9, TipDigest: types.Digest{7}, Requester: 0},
		&types.SyncReply{Lane: 1, Complete: true, Proposals: []*types.Proposal{sampleProposal()}},
		&types.CommitRequest{From: 2, To: 8, Requester: 3},
		&types.CommitReply{Notices: []types.CommitNotice{{
			QC:       types.CommitQC{Slot: 2, View: 0, Digest: types.Digest{9}},
			Proposal: types.ConsensusProposal{Slot: 2, View: 0, Cut: types.NewEmptyCut(4)},
		}}},
		&types.SnapshotRequest{Requester: 2},
		&types.SnapshotManifest{Manifest: []byte{0xab, 0xcd, 0xef, 0x01}},
		&types.ChunkRequest{StateHash: types.Digest{0x11}, Index: 3, Requester: 1},
		&types.ChunkReply{StateHash: types.Digest{0x11}, Index: 3, Data: []byte{1, 2, 3, 4, 5}},
	}
}

// TestRoundTripAllMessages checks Encode∘Decode is the identity for every
// message kind, including nil-able sub-fields.
func TestRoundTripAllMessages(t *testing.T) {
	for i, m := range allMessages() {
		data, err := Encode(m)
		if err != nil {
			t.Fatalf("case %d (%T): encode: %v", i, m, err)
		}
		got, err := Decode(data)
		if err != nil {
			t.Fatalf("case %d (%T): decode: %v", i, m, err)
		}
		if !reflect.DeepEqual(m, got) {
			t.Fatalf("case %d (%T): round trip mismatch:\n in: %#v\nout: %#v", i, m, m, got)
		}
	}
}

// TestEncodingDeterministic: equal messages encode to equal bytes.
func TestEncodingDeterministic(t *testing.T) {
	for i, m := range allMessages() {
		a, _ := Encode(m)
		b, _ := Encode(m)
		if !bytes.Equal(a, b) {
			t.Fatalf("case %d: non-deterministic encoding", i)
		}
	}
}

// TestTruncationsFailCleanly: every strict prefix of a valid encoding
// must return an error, never panic or succeed.
func TestTruncationsFailCleanly(t *testing.T) {
	for i, m := range allMessages() {
		data, _ := Encode(m)
		step := 1
		if len(data) > 512 {
			step = len(data) / 257
		}
		for cut := 0; cut < len(data); cut += step {
			if _, err := Decode(data[:cut]); err == nil {
				t.Fatalf("case %d (%T): truncation at %d/%d decoded successfully", i, m, cut, len(data))
			}
		}
	}
}

// TestTrailingBytesRejected: appended garbage must be detected.
func TestTrailingBytesRejected(t *testing.T) {
	data, _ := Encode(&types.Vote{Lane: 0, Position: 1, Voter: 1, Sig: sig(1)})
	if _, err := Decode(append(data, 0xAB)); err == nil {
		t.Fatal("trailing byte accepted")
	}
}

// TestRandomFuzzNeverPanics throws random bytes at the decoder.
func TestRandomFuzzNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for i := 0; i < 5000; i++ {
		n := int(rng.Uint64() % 512)
		buf := make([]byte, n)
		for j := range buf {
			buf[j] = byte(rng.Uint64())
		}
		_, _ = Decode(buf) // must not panic
	}
}

// TestBitFlipsNeverPanic mutates valid encodings (structure-aware fuzz).
func TestBitFlipsNeverPanic(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	for _, m := range allMessages() {
		data, _ := Encode(m)
		for i := 0; i < 200; i++ {
			mut := make([]byte, len(data))
			copy(mut, data)
			pos := int(rng.Uint64() % uint64(len(mut)))
			mut[pos] ^= byte(1 << (rng.Uint64() % 8))
			_, _ = Decode(mut) // must not panic
		}
	}
}

// TestHostileLengthFields: a length prefix claiming gigabytes must fail
// fast without allocating.
func TestHostileLengthFields(t *testing.T) {
	// SyncReply claiming 2^31 proposals.
	data := []byte{byte(types.MsgSyncReply), 0, 0, 1, 0xff, 0xff, 0xff, 0x7f}
	if _, err := Decode(data); err == nil {
		t.Fatal("hostile proposal count accepted")
	}
	// Vote with a signature length of 1GB.
	vote, _ := Encode(&types.Vote{Lane: 0, Position: 1, Voter: 1, Sig: sig(1)})
	hostile := make([]byte, len(vote))
	copy(hostile, vote)
	// The sig length prefix is the last 4+64 bytes; overwrite length.
	pos := len(hostile) - 68
	hostile[pos] = 0xff
	hostile[pos+1] = 0xff
	hostile[pos+2] = 0xff
	hostile[pos+3] = 0x6f
	if _, err := Decode(hostile); err == nil {
		t.Fatal("hostile sig length accepted")
	}
}

func TestUnknownTypeRejected(t *testing.T) {
	if _, err := Decode([]byte{0xEE, 1, 2, 3}); err == nil {
		t.Fatal("unknown type accepted")
	}
	if _, err := Decode(nil); err == nil {
		t.Fatal("empty input accepted")
	}
}
