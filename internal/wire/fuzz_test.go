package wire

import (
	"bytes"
	"testing"
)

// FuzzRoundTrip drives the codec with arbitrary bytes: any input Decode
// accepts must re-encode byte-identically (the codec is canonical — one
// valid encoding per message), and that encoding must decode again
// without error. This pins both hostile-input robustness (no panics or
// over-allocation on garbage) and encode/decode inverse-ness, including
// for the pooled EncodeTo path.
func FuzzRoundTrip(f *testing.F) {
	for _, m := range sampleMessages() {
		enc, err := Encode(m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(enc)
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Decode(data)
		if err != nil {
			return // invalid input must fail cleanly, nothing more to check
		}
		re, err := Encode(m)
		if err != nil {
			t.Fatalf("decoded message failed to encode: %v", err)
		}
		if !bytes.Equal(re, data) {
			t.Fatalf("re-encode differs from accepted input:\n in: %x\nout: %x", data, re)
		}
		buf := GetBuf(SizeHint(m))
		defer buf.Release()
		buf.B, err = EncodeTo(buf.B, m)
		if err != nil {
			t.Fatalf("EncodeTo: %v", err)
		}
		if !bytes.Equal(buf.B, data) {
			t.Fatal("pooled EncodeTo differs from Encode")
		}
		if _, err := Decode(re); err != nil {
			t.Fatalf("re-encoding failed to decode: %v", err)
		}
		// The zero-copy decoder must accept exactly the same inputs and
		// produce semantically identical messages (checked through the
		// canonical re-encoding).
		ma, err := DecodeFrom(data)
		if err != nil {
			t.Fatalf("DecodeFrom rejects input Decode accepts: %v", err)
		}
		rea, err := Encode(ma)
		if err != nil {
			t.Fatalf("aliased decode failed to encode: %v", err)
		}
		if !bytes.Equal(rea, data) {
			t.Fatalf("aliased re-encode differs from accepted input:\n in: %x\nout: %x", data, rea)
		}
	})
}

// FuzzDecodeFromRejects pins the inverse direction: inputs Decode
// rejects must also be rejected by the aliasing decoder (the two paths
// share structure validation, but a divergence here would let hostile
// frames through the hot path only).
func FuzzDecodeFromRejects(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0xff, 0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		_, errCopy := Decode(data)
		_, errAlias := DecodeFrom(data)
		if (errCopy == nil) != (errAlias == nil) {
			t.Fatalf("decoder divergence: copy err=%v alias err=%v", errCopy, errAlias)
		}
	})
}
