package wire

import (
	"bytes"
	"testing"
)

// FuzzRoundTrip drives the codec with arbitrary bytes: any input Decode
// accepts must re-encode byte-identically (the codec is canonical — one
// valid encoding per message), and that encoding must decode again
// without error. This pins both hostile-input robustness (no panics or
// over-allocation on garbage) and encode/decode inverse-ness, including
// for the pooled EncodeTo path.
func FuzzRoundTrip(f *testing.F) {
	for _, m := range sampleMessages() {
		enc, err := Encode(m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(enc)
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Decode(data)
		if err != nil {
			return // invalid input must fail cleanly, nothing more to check
		}
		re, err := Encode(m)
		if err != nil {
			t.Fatalf("decoded message failed to encode: %v", err)
		}
		if !bytes.Equal(re, data) {
			t.Fatalf("re-encode differs from accepted input:\n in: %x\nout: %x", data, re)
		}
		buf := GetBuf(SizeHint(m))
		defer buf.Release()
		buf.B, err = EncodeTo(buf.B, m)
		if err != nil {
			t.Fatalf("EncodeTo: %v", err)
		}
		if !bytes.Equal(buf.B, data) {
			t.Fatal("pooled EncodeTo differs from Encode")
		}
		if _, err := Decode(re); err != nil {
			t.Fatalf("re-encoding failed to decode: %v", err)
		}
	})
}
