package wire

import (
	"reflect"
	"testing"

	"repro/internal/types"
)

// deltaCuts returns a base cut and a successor differing in exactly one
// tip (lane 3 advanced and gained a certificate).
func deltaCuts() (prev, cur types.Cut) {
	prev = sampleCut()
	cur = prev.Clone()
	cur.Tips[3] = types.TipRef{Lane: 3, Position: 7, Digest: types.Digest{9}, Cert: samplePoA()}
	return prev, cur
}

func samplePrepareWith(cut types.Cut) *types.Prepare {
	return &types.Prepare{
		Leader:   2,
		Proposal: types.ConsensusProposal{Slot: 9, View: 1, Cut: cut},
		Ticket:   types.Ticket{Kind: types.TicketCommit, Commit: &types.CommitQC{Slot: 8, View: 1, Digest: types.Digest{3}, Shares: []types.SigShare{{Signer: 1, Sig: sig(4)}}}},
		Sig:      sig(5),
	}
}

func sampleCommitNoticeWith(cut types.Cut) *types.CommitNotice {
	return &types.CommitNotice{
		QC:       types.CommitQC{Slot: 9, View: 1, Digest: types.Digest{6}, Shares: []types.SigShare{{Signer: 0, Sig: sig(12)}}},
		Proposal: types.ConsensusProposal{Slot: 9, View: 1, Cut: cut},
	}
}

// TestDeltaRoundTrip: EncodeDeltaTo∘DecodeDeltaFrom is the identity for
// both cut-bearing message kinds, against the same base cut.
func TestDeltaRoundTrip(t *testing.T) {
	prev, cur := deltaCuts()
	for _, m := range []types.Message{samplePrepareWith(cur), sampleCommitNoticeWith(cur)} {
		data, err := EncodeDeltaTo(nil, m, prev)
		if err != nil {
			t.Fatalf("%T: encode delta: %v", m, err)
		}
		if !IsDeltaFrame(data) {
			t.Fatalf("%T: delta frame not recognized by IsDeltaFrame", m)
		}
		got, err := DecodeDeltaFrom(data, prev, true)
		if err != nil {
			t.Fatalf("%T: decode delta: %v", m, err)
		}
		if !reflect.DeepEqual(m, got) {
			t.Fatalf("%T: delta round trip mismatch:\n in: %#v\nout: %#v", m, m, got)
		}
	}
}

// TestDeltaSmallerThanFull: the point of the exercise. An identical
// consecutive cut (the CommitNotice-after-Prepare case) encodes its cut
// section in 36 bytes; a one-tip change still undercuts the full frame.
func TestDeltaSmallerThanFull(t *testing.T) {
	prev, cur := deltaCuts()

	// Identical cut: the whole cut section is base digest + zero count.
	same := sampleCommitNoticeWith(prev.Clone())
	full, err := Encode(same)
	if err != nil {
		t.Fatal(err)
	}
	delta, err := EncodeDeltaTo(nil, same, prev)
	if err != nil {
		t.Fatal(err)
	}
	if len(delta) >= len(full) {
		t.Fatalf("identical-cut delta (%d B) not smaller than full frame (%d B)", len(delta), len(full))
	}
	// The delta replaces the full cut encoding with 36 bytes (32-byte base
	// digest + 4-byte change count), modulo the 1-byte type tag and the
	// cut-length prefix the full frame carries.
	if got, err := DecodeDeltaFrom(delta, prev, true); err != nil || !reflect.DeepEqual(same, got) {
		t.Fatalf("identical-cut delta round trip: err=%v", err)
	}

	one := sampleCommitNoticeWith(cur)
	full, _ = Encode(one)
	delta, err = EncodeDeltaTo(nil, one, prev)
	if err != nil {
		t.Fatal(err)
	}
	if len(delta) >= len(full) {
		t.Fatalf("one-tip delta (%d B) not smaller than full frame (%d B)", len(delta), len(full))
	}
}

// TestDeltaBaseMismatch: decoding against the wrong base cut must fail
// loudly (the caller closes the connection), never reconstruct silently.
func TestDeltaBaseMismatch(t *testing.T) {
	prev, cur := deltaCuts()
	data, err := EncodeDeltaTo(nil, sampleCommitNoticeWith(cur), prev)
	if err != nil {
		t.Fatal(err)
	}
	wrong := prev.Clone()
	wrong.Tips[0] = types.TipRef{Lane: 0, Position: 1, Digest: types.Digest{0xde}}
	if _, err := DecodeDeltaFrom(data, wrong, true); err == nil {
		t.Fatal("delta decoded against a mismatched base cut")
	}
	if _, err := DecodeDeltaFrom(data, types.Cut{}, false); err == nil {
		t.Fatal("delta decoded with no base cut on the connection")
	}
}

// TestDeltaIneligible: only cut-bearing broadcast control messages may
// delta-encode; everything else falls back to the full frame.
func TestDeltaIneligible(t *testing.T) {
	prev, _ := deltaCuts()
	if _, err := EncodeDeltaTo(nil, &types.Vote{Lane: 1, Position: 3, Voter: 2, Sig: sig(2)}, prev); err == nil {
		t.Fatal("non-cut-bearing message delta-encoded")
	}
	// Structurally incomparable cuts (committee mismatch / empty base).
	if _, err := EncodeDeltaTo(nil, sampleCommitNoticeWith(sampleCut()), types.Cut{}); err == nil {
		t.Fatal("delta encoded against an empty base cut")
	}
	if m, ok := CutCarrier(&types.Vote{}); ok {
		t.Fatalf("Vote reported as cut carrier: %v", m)
	}
}

// TestGenericDecodeRejectsDelta: the delta type bytes live outside every
// MsgType range, so a delta frame can never sneak past a decoder that
// lacks the connection's base state.
func TestGenericDecodeRejectsDelta(t *testing.T) {
	prev, cur := deltaCuts()
	data, err := EncodeDeltaTo(nil, sampleCommitNoticeWith(cur), prev)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(data); err == nil {
		t.Fatal("generic Decode accepted a delta frame")
	}
	if _, err := DecodeFrom(data); err == nil {
		t.Fatal("generic DecodeFrom accepted a delta frame")
	}
}

// TestDeltaTrailingBytes: a delta frame with trailing garbage must fail
// the end-of-buffer check like any other frame.
func TestDeltaTrailingBytes(t *testing.T) {
	prev, cur := deltaCuts()
	data, err := EncodeDeltaTo(nil, sampleCommitNoticeWith(cur), prev)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeDeltaFrom(append(data, 0xff), prev, true); err == nil {
		t.Fatal("delta frame with trailing bytes accepted")
	}
	if _, err := DecodeDeltaFrom(data[:len(data)-1], prev, true); err == nil {
		t.Fatal("truncated delta frame accepted")
	}
}

// TestDeltaIndexOrder: change records must arrive strictly ascending —
// a hostile peer repeating or reordering indices must fail the decode.
func TestDeltaIndexOrder(t *testing.T) {
	prev, _ := deltaCuts()
	tip := types.TipRef{Lane: 1, Position: 9, Digest: types.Digest{7}}
	w := &writer{}
	w.digest(prev.Digest())
	w.u32(2)
	for _, idx := range []uint32{2, 1} { // descending: must be rejected
		w.u32(idx)
		w.node(tip.Lane)
		w.u64(uint64(tip.Position))
		w.digest(tip.Digest)
		putPoA(w, nil)
	}
	r := &reader{buf: w.buf, alias: true}
	getCutDelta(r, prev, true)
	if r.err == nil {
		t.Fatal("out-of-order delta indices accepted")
	}

	// Duplicate index is the same violation.
	w = &writer{}
	w.digest(prev.Digest())
	w.u32(2)
	for _, idx := range []uint32{1, 1} {
		w.u32(idx)
		w.node(tip.Lane)
		w.u64(uint64(tip.Position))
		w.digest(tip.Digest)
		putPoA(w, nil)
	}
	r = &reader{buf: w.buf, alias: true}
	getCutDelta(r, prev, true)
	if r.err == nil {
		t.Fatal("duplicate delta index accepted")
	}
}
