// Pooled encode buffers. The egress hot path (transport frames, journal
// records) encodes thousands of messages per second; allocating a fresh
// slice per message makes the allocator and GC the bottleneck long
// before the NIC is (EXPERIMENTS.md). Buf wraps a reusable byte slice
// drawn from a size-classed sync.Pool: callers take one sized by
// SizeHint, encode into it with EncodeTo, and Release it once the bytes
// have been handed off (written to a socket, copied into a store).
package wire

import (
	"sync"
	"sync/atomic"

	"repro/internal/types"
)

// bufClasses are the pooled capacity tiers. Votes and consensus messages
// land in the smallest classes; batch-carrying proposals in the middle;
// multi-proposal sync replies at the top. Larger requests are allocated
// exactly and still recycled into the largest fitting class on Release.
var bufClasses = [...]int{1 << 10, 1 << 14, 1 << 18, 1 << 20, 1 << 23}

var bufPools [len(bufClasses)]sync.Pool

// Buf is a pooled encode buffer. B is the live slice: append to it (or
// hand it to EncodeTo) and call Release when the bytes are no longer
// referenced. A Buf must not be used after Release.
type Buf struct {
	B []byte
}

// GetBuf returns a buffer with len 0 and capacity at least hint.
func GetBuf(hint int) *Buf {
	for i, size := range bufClasses {
		if hint <= size {
			if v := bufPools[i].Get(); v != nil {
				b := v.(*Buf)
				b.B = b.B[:0]
				return b
			}
			return &Buf{B: make([]byte, 0, size)}
		}
	}
	return &Buf{B: make([]byte, 0, hint)}
}

// Release returns the buffer to the pool serving its current capacity
// (append growth beyond the original class re-files it upward).
func (b *Buf) Release() {
	c := cap(b.B)
	for i := len(bufClasses) - 1; i >= 0; i-- {
		if c >= bufClasses[i] {
			b.B = b.B[:0]
			bufPools[i].Put(b)
			return
		}
	}
	// Smaller than every class (caller-provided slice): drop for GC.
}

// Frame is a pooled, reference-counted ingress buffer: the transport
// reads one wire frame's payload into it and DecodeFrom aliases the
// decoded message's variable-length fields directly into Data, so the
// ingress path never copies payload bytes (mirroring the egress side's
// refcounted frames).
//
// Lifetime rules: GetFrame returns a frame holding one reference, owned
// by the caller. Pipeline stages that enqueue the frame's message for
// another goroutine pass the reference along; stages that DROP the
// message before delivery (decode error, failed pre-verification, full
// inbox) must Release — those are the paths where recycling matters,
// because overload is exactly when allocation pressure hurts. Once the
// message is DELIVERED to a protocol handler the reference is abandoned
// instead: the protocol may retain aliased slices indefinitely (stored
// proposals, certificate shares), so the buffer's storage is reclaimed
// by the garbage collector when the message itself dies. Release after
// delivery would recycle memory the protocol still reads.
type Frame struct {
	buf  *Buf
	refs atomic.Int32
}

var framePool = sync.Pool{New: func() any { return new(Frame) }}

// GetFrame returns a frame with a Data slice of exactly n bytes (drawn
// from the pooled size classes) and one reference held by the caller.
func GetFrame(n int) *Frame {
	f := framePool.Get().(*Frame)
	f.buf = GetBuf(n)
	f.buf.B = f.buf.B[:n]
	f.refs.Store(1)
	return f
}

// Data is the frame's payload slice. Valid until the last Release.
func (f *Frame) Data() []byte { return f.buf.B }

// Retain adds a reference (one per independently-released holder).
func (f *Frame) Retain() { f.refs.Add(1) }

// Release drops one reference; the last one returns the buffer to the
// pool. Must not be called for references abandoned to the GC (see the
// type comment) — releasing memory a decoded message still aliases is a
// use-after-free in spirit, even though Go keeps it type-safe.
func (f *Frame) Release() {
	if f.refs.Add(-1) == 0 {
		f.buf.Release()
		f.buf = nil
		framePool.Put(f)
	}
}

// SizeHint estimates m's encoded size, for pre-sizing encode buffers.
// It leans on Message.WireSize but re-derives batch-carrying messages
// from their actual payload slices, because WireSize trusts the batch's
// self-declared Count/Bytes: a synthetic batch models a payload the
// codec never emits (a simulated 500 KB car must not cost a 500 KB
// journal-encode buffer), and a decoded hostile batch can claim sizes
// that overflow the arithmetic outright. The estimate may be slightly
// low (WireSize models 2-byte length prefixes where the codec writes
// 4); EncodeTo grows the buffer when that happens.
func SizeHint(m types.Message) int {
	const slack = 64
	var n int
	switch v := m.(type) {
	case *types.Proposal:
		n = proposalHint(v)
	case *types.SyncReply:
		n = 8
		for _, p := range v.Proposals {
			n += proposalHint(p)
		}
	default:
		n = m.WireSize()
	}
	if n < 0 || n > MaxFrame {
		// Unencodable garbage; let append growth pay for whatever the
		// writer actually produces.
		n = 0
	}
	return n + slack
}

func proposalHint(p *types.Proposal) int {
	n := 2 + 8 + types.DigestSize + 8 + len(p.Sig) + poaHint(p.ParentPoA)
	if b := p.Batch; b != nil {
		n += 48
		for _, tx := range b.Txs {
			n += 4 + len(tx)
		}
	}
	return n
}

func poaHint(p *types.PoA) int {
	if p == nil {
		return 1
	}
	n := 1 + 2 + 8 + types.DigestSize + 8
	for _, s := range p.Shares {
		n += 8 + len(s.Sig)
	}
	return n
}
