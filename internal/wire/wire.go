// Package wire provides the canonical binary codec for every Autobahn
// message, used by the TCP transport (internal/transport). Encodings are
// deterministic and length-framed; the decoder validates structure and
// bounds every length field, so malformed or hostile input fails cleanly
// instead of over-allocating.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"repro/internal/types"
)

// ErrTruncated reports input shorter than its encoding requires.
var ErrTruncated = errors.New("wire: truncated message")

// Limits guarding against hostile length fields.
const (
	maxTxs       = 1 << 20
	maxShares    = 1 << 12
	maxProposals = 1 << 17
	maxBytesLen  = 64 << 20
)

// MaxFrame is the largest framed message a transport should accept:
// the payload cap plus headroom for message envelopes (headers, shares,
// length prefixes). Larger length prefixes are hostile — no message this
// codec produces in practice approaches the payload cap (sync replies
// chunk at 8 MB, cars cap at 4 MB) — and must close the connection
// rather than allocate.
const MaxFrame = maxBytesLen + 1<<20

// --- writer ---

type writer struct {
	buf []byte
}

func (w *writer) u8(v uint8)            { w.buf = append(w.buf, v) }
func (w *writer) u16(v uint16)          { w.buf = binary.LittleEndian.AppendUint16(w.buf, v) }
func (w *writer) u32(v uint32)          { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }
func (w *writer) u64(v uint64)          { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }
func (w *writer) node(v types.NodeID)   { w.u16(uint16(v)) }
func (w *writer) digest(d types.Digest) { w.buf = append(w.buf, d[:]...) }
func (w *writer) bytes(b []byte) {
	w.u32(uint32(len(b)))
	w.buf = append(w.buf, b...)
}
func (w *writer) bool(v bool) {
	if v {
		w.u8(1)
	} else {
		w.u8(0)
	}
}

// --- reader ---

type reader struct {
	buf []byte
	off int
	err error
	// alias makes bytes() return sub-slices of buf instead of copies
	// (zero-copy ingress decode, see DecodeFrom). Aliased slices are
	// capacity-clamped so appending to one can never scribble into the
	// backing frame.
	alias bool
}

func (r *reader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

func (r *reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.off+n > len(r.buf) {
		r.fail(ErrTruncated)
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

func (r *reader) u8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}
func (r *reader) u16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}
func (r *reader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}
func (r *reader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}
func (r *reader) node() types.NodeID { return types.NodeID(r.u16()) }
func (r *reader) digest() types.Digest {
	var d types.Digest
	copy(d[:], r.take(types.DigestSize))
	return d
}
func (r *reader) bytes() []byte {
	n := int(r.u32())
	if n > maxBytesLen {
		r.fail(fmt.Errorf("wire: byte field of %d exceeds limit", n))
		return nil
	}
	if n == 0 {
		return nil
	}
	b := r.take(n)
	if b == nil {
		return nil
	}
	if r.alias {
		return b[:n:n]
	}
	out := make([]byte, n)
	copy(out, b)
	return out
}

// bool accepts only the canonical encodings 0 and 1: anything else is
// malformed input (the codec must stay a bijection so that re-encoding a
// decoded message is byte-identical — see FuzzRoundTrip).
func (r *reader) bool() bool {
	b := r.u8()
	if b > 1 {
		r.fail(fmt.Errorf("wire: non-canonical bool byte %d", b))
	}
	return b == 1
}

func (r *reader) done() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.buf) {
		return fmt.Errorf("wire: %d trailing bytes", len(r.buf)-r.off)
	}
	return nil
}

// --- batch ---

func putBatch(w *writer, b *types.Batch) {
	w.node(b.Origin)
	w.u64(b.Seq)
	w.u32(b.Count)
	w.u64(b.Bytes)
	w.u64(uint64(b.MeanArrival))
	w.u64(uint64(b.CreatedAt))
	if b.Txs == nil {
		w.bool(true) // synthetic
		return
	}
	w.bool(false)
	w.u32(uint32(len(b.Txs)))
	for _, tx := range b.Txs {
		w.bytes(tx)
	}
}

func getBatch(r *reader) *types.Batch {
	b := &types.Batch{
		Origin:      r.node(),
		Seq:         r.u64(),
		Count:       r.u32(),
		Bytes:       r.u64(),
		MeanArrival: types.Duration(r.u64()),
		CreatedAt:   types.Duration(r.u64()),
	}
	if r.bool() {
		return b // synthetic
	}
	n := int(r.u32())
	if n > maxTxs {
		r.fail(fmt.Errorf("wire: %d txs exceeds limit", n))
		return b
	}
	b.Txs = make([]types.Transaction, 0, min(n, 4096))
	for i := 0; i < n && r.err == nil; i++ {
		tx := types.Transaction(r.bytes())
		if tx == nil {
			tx = types.Transaction{} // preserve empty (but present) payloads
		}
		b.Txs = append(b.Txs, tx)
	}
	return b
}

// --- shares, PoA, cuts ---

func putShares(w *writer, shares []types.SigShare) {
	w.u32(uint32(len(shares)))
	for _, s := range shares {
		w.node(s.Signer)
		w.bytes(s.Sig)
	}
}

func getShares(r *reader) []types.SigShare {
	n := int(r.u32())
	if n > maxShares {
		r.fail(fmt.Errorf("wire: %d shares exceeds limit", n))
		return nil
	}
	if n == 0 {
		return nil
	}
	out := make([]types.SigShare, 0, min(n, 64))
	for i := 0; i < n && r.err == nil; i++ {
		out = append(out, types.SigShare{Signer: r.node(), Sig: r.bytes()})
	}
	return out
}

func putPoA(w *writer, p *types.PoA) {
	if p == nil {
		w.bool(false)
		return
	}
	w.bool(true)
	w.node(p.Lane)
	w.u64(uint64(p.Position))
	w.digest(p.Digest)
	putShares(w, p.Shares)
}

func getPoA(r *reader) *types.PoA {
	if !r.bool() {
		return nil
	}
	return &types.PoA{
		Lane:     r.node(),
		Position: types.Pos(r.u64()),
		Digest:   r.digest(),
		Shares:   getShares(r),
	}
}

func putCut(w *writer, c types.Cut) {
	w.u32(uint32(len(c.Tips)))
	for _, t := range c.Tips {
		w.node(t.Lane)
		w.u64(uint64(t.Position))
		w.digest(t.Digest)
		putPoA(w, t.Cert)
	}
}

func getCut(r *reader) types.Cut {
	n := int(r.u32())
	if n > maxShares {
		r.fail(fmt.Errorf("wire: cut of %d tips exceeds limit", n))
		return types.Cut{}
	}
	tips := make([]types.TipRef, 0, min(n, 64))
	for i := 0; i < n && r.err == nil; i++ {
		tips = append(tips, types.TipRef{
			Lane:     r.node(),
			Position: types.Pos(r.u64()),
			Digest:   r.digest(),
			Cert:     getPoA(r),
		})
	}
	return types.Cut{Tips: tips}
}

// --- proposals & QCs ---

func putProposal(w *writer, p *types.Proposal) {
	w.node(p.Lane)
	w.u64(uint64(p.Position))
	w.digest(p.Parent)
	putPoA(w, p.ParentPoA)
	putBatch(w, p.Batch)
	w.bytes(p.Sig)
}

func getProposal(r *reader) *types.Proposal {
	return &types.Proposal{
		Lane:      r.node(),
		Position:  types.Pos(r.u64()),
		Parent:    r.digest(),
		ParentPoA: getPoA(r),
		Batch:     getBatch(r),
		Sig:       r.bytes(),
	}
}

func putConsensusProposal(w *writer, p *types.ConsensusProposal) {
	w.u64(uint64(p.Slot))
	w.u64(uint64(p.View))
	putCut(w, p.Cut)
}

func getConsensusProposal(r *reader) types.ConsensusProposal {
	return types.ConsensusProposal{
		Slot: types.Slot(r.u64()),
		View: types.View(r.u64()),
		Cut:  getCut(r),
	}
}

func putPrepareQC(w *writer, qc *types.PrepareQC) {
	if qc == nil {
		w.bool(false)
		return
	}
	w.bool(true)
	w.u64(uint64(qc.Slot))
	w.u64(uint64(qc.View))
	w.digest(qc.Digest)
	putShares(w, qc.Shares)
	w.u32(uint32(len(qc.StrongMask)))
	for _, b := range qc.StrongMask {
		w.bool(b)
	}
}

func getPrepareQC(r *reader) *types.PrepareQC {
	if !r.bool() {
		return nil
	}
	qc := &types.PrepareQC{
		Slot:   types.Slot(r.u64()),
		View:   types.View(r.u64()),
		Digest: r.digest(),
		Shares: getShares(r),
	}
	n := int(r.u32())
	if n > maxShares {
		r.fail(fmt.Errorf("wire: strong mask of %d exceeds limit", n))
		return qc
	}
	for i := 0; i < n && r.err == nil; i++ {
		qc.StrongMask = append(qc.StrongMask, r.bool())
	}
	return qc
}

func putCommitQC(w *writer, qc *types.CommitQC) {
	if qc == nil {
		w.bool(false)
		return
	}
	w.bool(true)
	w.u64(uint64(qc.Slot))
	w.u64(uint64(qc.View))
	w.digest(qc.Digest)
	w.bool(qc.Fast)
	putShares(w, qc.Shares)
}

func getCommitQC(r *reader) *types.CommitQC {
	if !r.bool() {
		return nil
	}
	return &types.CommitQC{
		Slot:   types.Slot(r.u64()),
		View:   types.View(r.u64()),
		Digest: r.digest(),
		Fast:   r.bool(),
		Shares: getShares(r),
	}
}

func putTimeout(w *writer, t *types.Timeout) {
	w.u64(uint64(t.Slot))
	w.u64(uint64(t.View))
	w.node(t.Voter)
	putPrepareQC(w, t.HighQC)
	if t.HighProp != nil {
		w.bool(true)
		putConsensusProposal(w, t.HighProp)
	} else {
		w.bool(false)
	}
	w.bytes(t.Sig)
}

func getTimeout(r *reader) types.Timeout {
	t := types.Timeout{
		Slot:   types.Slot(r.u64()),
		View:   types.View(r.u64()),
		Voter:  r.node(),
		HighQC: getPrepareQC(r),
	}
	if r.bool() {
		p := getConsensusProposal(r)
		t.HighProp = &p
	}
	t.Sig = r.bytes()
	return t
}

func putTC(w *writer, tc *types.TC) {
	if tc == nil {
		w.bool(false)
		return
	}
	w.bool(true)
	w.u64(uint64(tc.Slot))
	w.u64(uint64(tc.View))
	w.u32(uint32(len(tc.Timeouts)))
	for i := range tc.Timeouts {
		putTimeout(w, &tc.Timeouts[i])
	}
}

func getTC(r *reader) *types.TC {
	if !r.bool() {
		return nil
	}
	tc := &types.TC{Slot: types.Slot(r.u64()), View: types.View(r.u64())}
	n := int(r.u32())
	if n > maxShares {
		r.fail(fmt.Errorf("wire: TC of %d timeouts exceeds limit", n))
		return tc
	}
	for i := 0; i < n && r.err == nil; i++ {
		tc.Timeouts = append(tc.Timeouts, getTimeout(r))
	}
	return tc
}

func putTicket(w *writer, t types.Ticket) {
	w.u8(uint8(t.Kind))
	switch t.Kind {
	case types.TicketCommit:
		putCommitQC(w, t.Commit)
	case types.TicketTC:
		putTC(w, t.TC)
	}
}

func getTicket(r *reader) types.Ticket {
	t := types.Ticket{Kind: types.TicketKind(r.u8())}
	switch t.Kind {
	case types.TicketCommit:
		t.Commit = getCommitQC(r)
	case types.TicketTC:
		t.TC = getTC(r)
	default:
		r.fail(fmt.Errorf("wire: unknown ticket kind %d", t.Kind))
	}
	return t
}

// --- top-level messages ---

// Encode serializes m as [type byte | payload]. It supports every message
// in package types; unknown concrete types return an error. Each call
// allocates a fresh right-sized buffer; hot send paths should prefer
// EncodeTo with a pooled buffer (see GetBuf).
func Encode(m types.Message) ([]byte, error) {
	return EncodeTo(make([]byte, 0, SizeHint(m)), m)
}

// EncodeTo appends m's encoding ([type byte | payload]) to buf and
// returns the extended slice. buf may be nil or recycled (see GetBuf);
// capacity shortfalls grow it via append as usual. Size the buffer with
// SizeHint to avoid growth on the hot path.
func EncodeTo(buf []byte, m types.Message) ([]byte, error) {
	w := &writer{buf: buf}
	w.u8(uint8(m.Type()))
	switch v := m.(type) {
	case *types.Proposal:
		putProposal(w, v)
	case *types.Vote:
		w.node(v.Lane)
		w.u64(uint64(v.Position))
		w.digest(v.Digest)
		w.node(v.Voter)
		w.bytes(v.Sig)
	case *types.PoA:
		putPoA(w, v)
	case *types.Prepare:
		w.node(v.Leader)
		putConsensusProposal(w, &v.Proposal)
		putTicket(w, v.Ticket)
		w.bytes(v.Sig)
	case *types.PrepVote:
		w.u64(uint64(v.Slot))
		w.u64(uint64(v.View))
		w.digest(v.Digest)
		w.node(v.Voter)
		w.bool(v.Strong)
		w.bytes(v.Sig)
	case *types.Confirm:
		w.node(v.Leader)
		putPrepareQC(w, &v.QC)
		w.bytes(v.Sig)
	case *types.ConfirmAck:
		w.u64(uint64(v.Slot))
		w.u64(uint64(v.View))
		w.digest(v.Digest)
		w.node(v.Voter)
		w.bytes(v.Sig)
	case *types.CommitNotice:
		putCommitQC(w, &v.QC)
		putConsensusProposal(w, &v.Proposal)
	case *types.Timeout:
		putTimeout(w, v)
	case *types.SyncRequest:
		w.node(v.Lane)
		w.u64(uint64(v.From))
		w.u64(uint64(v.To))
		w.digest(v.TipDigest)
		w.node(v.Requester)
	case *types.SyncReply:
		w.node(v.Lane)
		w.bool(v.Complete)
		w.u32(uint32(len(v.Proposals)))
		for _, p := range v.Proposals {
			putProposal(w, p)
		}
	case *types.CommitRequest:
		w.u64(uint64(v.From))
		w.u64(uint64(v.To))
		w.node(v.Requester)
	case *types.CommitReply:
		w.u32(uint32(len(v.Notices)))
		for i := range v.Notices {
			putCommitQC(w, &v.Notices[i].QC)
			putConsensusProposal(w, &v.Notices[i].Proposal)
		}
	case *types.SnapshotRequest:
		w.node(v.Requester)
	case *types.SnapshotManifest:
		w.bytes(v.Manifest)
	case *types.ChunkRequest:
		w.digest(v.StateHash)
		w.u32(v.Index)
		w.node(v.Requester)
	case *types.ChunkReply:
		w.digest(v.StateHash)
		w.u32(v.Index)
		w.bytes(v.Data)
	default:
		// Return the (unmodified past the type byte) buffer so pooled
		// callers can still Release it — EncodeTo's contract is append.
		return buf, fmt.Errorf("wire: cannot encode %T", m)
	}
	return w.buf, nil
}

// Decode parses a message previously produced by Encode. Every
// variable-length field is copied out of data, so the caller may recycle
// the input buffer immediately (journal recovery does).
func Decode(data []byte) (types.Message, error) {
	return decode(data, false)
}

// DecodeFrom parses a message previously produced by Encode without
// copying: every variable-length field (transaction payloads, signatures,
// signature shares) aliases a sub-slice of data. It exists for the
// transport ingress hot path, where data is a pooled, reference-counted
// frame (see Frame) and copying multi-megabyte car payloads out of it
// would dominate the decode cost.
//
// Lifetime contract: the caller must keep data immutable and alive for
// as long as the decoded message — or anything extracted from it (stored
// proposals, retained signature shares) — is reachable. With a Frame
// that means dropping a message before delivery must Release the frame,
// and a delivered message's frame reference must be abandoned to the
// garbage collector rather than recycled (the protocol may legitimately
// retain pieces of it indefinitely). See transport's read loop for the
// canonical use.
func DecodeFrom(data []byte) (types.Message, error) {
	return decode(data, true)
}

func decode(data []byte, alias bool) (types.Message, error) {
	if len(data) == 0 {
		return nil, ErrTruncated
	}
	r := &reader{buf: data, off: 1, alias: alias}
	var m types.Message
	switch types.MsgType(data[0]) {
	case types.MsgProposal:
		m = getProposal(r)
	case types.MsgVote:
		m = &types.Vote{
			Lane:     r.node(),
			Position: types.Pos(r.u64()),
			Digest:   r.digest(),
			Voter:    r.node(),
			Sig:      r.bytes(),
		}
	case types.MsgPoA:
		m = getPoA(r)
		if m == (*types.PoA)(nil) {
			return nil, fmt.Errorf("wire: nil PoA message")
		}
	case types.MsgPrepare:
		m = &types.Prepare{
			Leader:   r.node(),
			Proposal: getConsensusProposal(r),
			Ticket:   getTicket(r),
			Sig:      r.bytes(),
		}
	case types.MsgPrepVote:
		m = &types.PrepVote{
			Slot:   types.Slot(r.u64()),
			View:   types.View(r.u64()),
			Digest: r.digest(),
			Voter:  r.node(),
			Strong: r.bool(),
			Sig:    r.bytes(),
		}
	case types.MsgConfirm:
		c := &types.Confirm{Leader: r.node()}
		if qc := getPrepareQC(r); qc != nil {
			c.QC = *qc
		} else {
			r.fail(fmt.Errorf("wire: confirm without QC"))
		}
		c.Sig = r.bytes()
		m = c
	case types.MsgConfirmAck:
		m = &types.ConfirmAck{
			Slot:   types.Slot(r.u64()),
			View:   types.View(r.u64()),
			Digest: r.digest(),
			Voter:  r.node(),
			Sig:    r.bytes(),
		}
	case types.MsgCommitNotice:
		cn := &types.CommitNotice{}
		if qc := getCommitQC(r); qc != nil {
			cn.QC = *qc
		} else {
			r.fail(fmt.Errorf("wire: commit notice without QC"))
		}
		cn.Proposal = getConsensusProposal(r)
		m = cn
	case types.MsgTimeout:
		t := getTimeout(r)
		m = &t
	case types.MsgSyncRequest:
		m = &types.SyncRequest{
			Lane:      r.node(),
			From:      types.Pos(r.u64()),
			To:        types.Pos(r.u64()),
			TipDigest: r.digest(),
			Requester: r.node(),
		}
	case types.MsgSyncReply:
		rep := &types.SyncReply{Lane: r.node(), Complete: r.bool()}
		n := int(r.u32())
		if n > maxProposals {
			return nil, fmt.Errorf("wire: %d proposals exceeds limit", n)
		}
		for i := 0; i < n && r.err == nil; i++ {
			rep.Proposals = append(rep.Proposals, getProposal(r))
		}
		m = rep
	case types.MsgCommitRequest:
		m = &types.CommitRequest{
			From:      types.Slot(r.u64()),
			To:        types.Slot(r.u64()),
			Requester: r.node(),
		}
	case types.MsgCommitReply:
		rep := &types.CommitReply{}
		n := int(r.u32())
		if n > maxProposals {
			return nil, fmt.Errorf("wire: %d notices exceeds limit", n)
		}
		for i := 0; i < n && r.err == nil; i++ {
			var cn types.CommitNotice
			if qc := getCommitQC(r); qc != nil {
				cn.QC = *qc
			} else {
				r.fail(fmt.Errorf("wire: commit reply notice without QC"))
			}
			cn.Proposal = getConsensusProposal(r)
			rep.Notices = append(rep.Notices, cn)
		}
		m = rep
	case types.MsgSnapshotRequest:
		m = &types.SnapshotRequest{Requester: r.node()}
	case types.MsgSnapshotManifest:
		m = &types.SnapshotManifest{Manifest: r.bytes()}
	case types.MsgChunkRequest:
		m = &types.ChunkRequest{
			StateHash: r.digest(),
			Index:     r.u32(),
			Requester: r.node(),
		}
	case types.MsgChunkReply:
		rep := &types.ChunkReply{
			StateHash: r.digest(),
			Index:     r.u32(),
			Data:      r.bytes(),
		}
		m = rep
	default:
		return nil, fmt.Errorf("wire: unknown message type %d", data[0])
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return m, nil
}

// Guard against accidental integer truncation in length prefixes.
var _ = math.MaxUint32
