package wire

import (
	"bytes"
	"testing"

	"repro/internal/types"
)

func sampleMessages() []types.Message {
	batch := types.NewBatch(1, 7, []types.Transaction{
		make(types.Transaction, 512), {0xaa}, {},
	}, 5)
	shares := []types.SigShare{{Signer: 0, Sig: make([]byte, 64)}, {Signer: 2, Sig: make([]byte, 64)}}
	poa := &types.PoA{Lane: 1, Position: 3, Digest: types.Digest{9}, Shares: shares}
	cut := types.Cut{Tips: []types.TipRef{
		{Lane: 0, Position: 4, Digest: types.Digest{1}, Cert: poa},
		{Lane: 1, Position: 9, Digest: types.Digest{2}},
	}}
	prepQC := &types.PrepareQC{Slot: 3, View: 1, Digest: types.Digest{7}, Shares: shares, StrongMask: []bool{true, false, true}}
	commitQC := &types.CommitQC{Slot: 3, View: 1, Digest: types.Digest{7}, Fast: true, Shares: shares}
	timeout := &types.Timeout{Slot: 4, View: 2, Voter: 3, HighQC: prepQC, HighProp: &types.ConsensusProposal{Slot: 4, View: 1, Cut: cut}, Sig: make([]byte, 64)}
	prop := &types.Proposal{Lane: 1, Position: 9, Parent: types.Digest{3}, ParentPoA: poa, Batch: batch, Sig: make([]byte, 64)}
	synthetic := &types.Proposal{Lane: 2, Position: 1, Batch: types.NewSyntheticBatch(2, 1, 1000, 512_000, 0, 0), Sig: make([]byte, 64)}
	return []types.Message{
		prop,
		synthetic,
		&types.Vote{Lane: 1, Position: 9, Digest: types.Digest{5}, Voter: 2, Sig: make([]byte, 64)},
		poa,
		&types.Prepare{Leader: 0, Proposal: types.ConsensusProposal{Slot: 5, View: 0, Cut: cut}, Ticket: types.Ticket{Kind: types.TicketCommit, Commit: commitQC}, Sig: make([]byte, 64)},
		&types.PrepVote{Slot: 5, View: 0, Digest: types.Digest{6}, Voter: 1, Strong: true, Sig: make([]byte, 64)},
		&types.Confirm{Leader: 0, QC: *prepQC, Sig: make([]byte, 64)},
		&types.ConfirmAck{Slot: 5, View: 0, Digest: types.Digest{6}, Voter: 1, Sig: make([]byte, 64)},
		&types.CommitNotice{QC: *commitQC, Proposal: types.ConsensusProposal{Slot: 3, View: 1, Cut: cut}},
		timeout,
		&types.SyncRequest{Lane: 1, From: 2, To: 9, TipDigest: types.Digest{8}, Requester: 3},
		&types.SyncReply{Lane: 1, Complete: true, Proposals: []*types.Proposal{prop}},
		&types.CommitRequest{From: 1, To: 9, Requester: 2},
		&types.CommitReply{Notices: []types.CommitNotice{{QC: *commitQC, Proposal: types.ConsensusProposal{Slot: 3, View: 1, Cut: cut}}}},
	}
}

// TestEncodeToMatchesEncode pins the pooled path to the canonical one:
// for every message kind, EncodeTo into a recycled buffer produces the
// same bytes as a fresh Encode, including when appending after a prefix.
func TestEncodeToMatchesEncode(t *testing.T) {
	for _, m := range sampleMessages() {
		want, err := Encode(m)
		if err != nil {
			t.Fatalf("%T: %v", m, err)
		}
		buf := GetBuf(SizeHint(m))
		buf.B, err = EncodeTo(buf.B, m)
		if err != nil {
			t.Fatalf("%T: EncodeTo: %v", m, err)
		}
		if !bytes.Equal(buf.B, want) {
			t.Fatalf("%T: EncodeTo differs from Encode", m)
		}
		// Appending after an existing prefix must leave the prefix alone.
		prefixed := append([]byte{1, 2, 3, 4}, 0)
		prefixed, err = EncodeTo(prefixed[:4], m)
		if err != nil {
			t.Fatalf("%T: EncodeTo prefixed: %v", m, err)
		}
		if !bytes.Equal(prefixed[:4], []byte{1, 2, 3, 4}) || !bytes.Equal(prefixed[4:], want) {
			t.Fatalf("%T: prefixed EncodeTo corrupted output", m)
		}
		buf.Release()
	}
}

// TestBufPoolRecycles verifies release/reacquire round-trips reuse the
// backing array instead of allocating. Under -race the runtime
// deliberately drops sync.Pool items to shake out lifecycle bugs, so
// the identity check only holds on regular builds.
func TestBufPoolRecycles(t *testing.T) {
	b := GetBuf(100)
	b.B = append(b.B, 1, 2, 3)
	first := &b.B[:cap(b.B)][cap(b.B)-1]
	b.Release()
	c := GetBuf(200) // same class (1 KB)
	if len(c.B) != 0 {
		t.Fatalf("recycled buffer not reset: len=%d", len(c.B))
	}
	if !raceEnabled && &c.B[:cap(c.B)][cap(c.B)-1] != first {
		t.Fatal("pool did not recycle the released buffer")
	}
	c.Release()
}

// TestSizeHintCoversEncoding: for real payloads the hint must be large
// enough that EncodeTo never re-allocates; for synthetic batches it must
// stay near the true (tiny) encoding rather than the modeled payload.
func TestSizeHintCoversEncoding(t *testing.T) {
	for _, m := range sampleMessages() {
		enc, err := Encode(m)
		if err != nil {
			t.Fatal(err)
		}
		hint := SizeHint(m)
		if p, ok := m.(*types.Proposal); ok && p.Batch != nil && p.Batch.Synthetic() {
			if hint > 10*len(enc)+1024 {
				t.Fatalf("synthetic proposal hint %d far exceeds encoding %d", hint, len(enc))
			}
			continue
		}
		if hint < len(enc) {
			t.Fatalf("%T: hint %d < encoding %d", m, hint, len(enc))
		}
	}
}

// BenchmarkEgressEncodeLegacy is the pre-pool egress encode path: one
// fresh allocation per message (compare with BenchmarkEgressEncodePooled).
func BenchmarkEgressEncodeLegacy(b *testing.B) {
	v := &types.Vote{Lane: 1, Position: 9, Digest: types.Digest{5}, Voter: 2, Sig: make([]byte, 64)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Encode(v); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEgressEncodePooled is the hot-path contract: encode into a
// pooled buffer and release — steady-state zero allocations.
func BenchmarkEgressEncodePooled(b *testing.B) {
	v := &types.Vote{Lane: 1, Position: 9, Digest: types.Digest{5}, Voter: 2, Sig: make([]byte, 64)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf := GetBuf(SizeHint(v))
		var err error
		buf.B, err = EncodeTo(buf.B, v)
		if err != nil {
			b.Fatal(err)
		}
		buf.Release()
	}
}

// BenchmarkEgressEncodeProposalPooled exercises the pooled path on a
// full 1000×128 B car.
func BenchmarkEgressEncodeProposalPooled(b *testing.B) {
	batch := types.NewBatch(1, 7, make([]types.Transaction, 1000), 0)
	for i := range batch.Txs {
		batch.Txs[i] = make(types.Transaction, 128)
	}
	p := &types.Proposal{Lane: 1, Position: 9, Batch: batch, Sig: make([]byte, 64)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf := GetBuf(SizeHint(p))
		var err error
		buf.B, err = EncodeTo(buf.B, p)
		if err != nil {
			b.Fatal(err)
		}
		buf.Release()
	}
}
