// Delta-compressed cut frames. Cut-bearing control messages (Prepare,
// CommitNotice) dominate consensus bandwidth at large committees: a cut
// carries one TipRef per lane, each with an f+1-share PoA, so the full
// encoding grows O(n²) in signature bytes while consecutive cuts on one
// connection overlap almost entirely (slow lanes keep their tips for
// many slots, and a slot's CommitNotice usually repeats its Prepare's
// cut verbatim). A delta frame re-encodes only the tips that changed
// since the previous cut sent on the same TCP connection, identified by
// the base cut's digest; everything else the receiver reconstructs from
// its connection-local copy.
//
// The frames are a transport-level encoding, not protocol messages: the
// sender's stream writer chooses per connection between the full frame
// and a delta (whichever is smaller), and the receiver's read loop
// reconstructs the full message before delivery — the protocol layers
// never see a delta. The generic Decode/DecodeFrom reject the delta type
// bytes, so a delta frame can never smuggle past a decoder that lacks
// the base state. Any base mismatch (reconnect raced a state reset, or a
// hostile peer lied) fails the decode loudly; the connection closes and
// the fresh connection restarts from full encodings — the gap/reconnect
// fallback.
package wire

import (
	"fmt"

	"repro/internal/types"
)

// Delta frame type bytes, deliberately outside every types.MsgType range
// (data 1-31, consensus 32-63, sync 64-79, baselines 80-111, internal
// 112): the generic decoder must reject them as unknown.
const (
	deltaPrepareByte      = 0xF4
	deltaCommitNoticeByte = 0xF5
)

// IsDeltaFrame reports whether a frame payload is delta-encoded (and so
// must be decoded with DecodeDeltaFrom against connection state).
func IsDeltaFrame(data []byte) bool {
	return len(data) > 0 && (data[0] == deltaPrepareByte || data[0] == deltaCommitNoticeByte)
}

// CutCarrier returns the cut a delta-eligible message carries, reporting
// eligibility. Only the cut-bearing broadcast control messages qualify;
// sync/commit-reply payloads keep their full encodings (they are
// explicitly requested catch-up data, where the requester has no base).
func CutCarrier(m types.Message) (types.Cut, bool) {
	switch v := m.(type) {
	case *types.Prepare:
		return v.Proposal.Cut, true
	case *types.CommitNotice:
		return v.Proposal.Cut, true
	}
	return types.Cut{}, false
}

// EncodeDeltaTo appends m's delta encoding relative to prev (the last
// cut sent on the same connection) and returns the extended slice. It
// fails — callers fall back to the full frame — when m is not
// delta-eligible or the cuts are structurally incomparable (committee
// mismatch; never happens within one deployment).
func EncodeDeltaTo(buf []byte, m types.Message, prev types.Cut) ([]byte, error) {
	cut, ok := CutCarrier(m)
	if !ok {
		return buf, fmt.Errorf("wire: %T is not delta-eligible", m)
	}
	if len(cut.Tips) != len(prev.Tips) || len(prev.Tips) == 0 {
		return buf, fmt.Errorf("wire: cut delta base has %d tips, message %d", len(prev.Tips), len(cut.Tips))
	}
	w := &writer{buf: buf}
	switch v := m.(type) {
	case *types.Prepare:
		w.u8(deltaPrepareByte)
		w.node(v.Leader)
		w.u64(uint64(v.Proposal.Slot))
		w.u64(uint64(v.Proposal.View))
		putCutDelta(w, prev, cut)
		putTicket(w, v.Ticket)
		w.bytes(v.Sig)
	case *types.CommitNotice:
		w.u8(deltaCommitNoticeByte)
		putCommitQC(w, &v.QC)
		w.u64(uint64(v.Proposal.Slot))
		w.u64(uint64(v.Proposal.View))
		putCutDelta(w, prev, cut)
	}
	return w.buf, nil
}

// DecodeDeltaFrom reconstructs a delta frame against prev (the last cut
// received on the same connection), aliasing variable-length fields into
// data like DecodeFrom. havePrev false (nothing cut-bearing received yet
// on this connection — the sender should not have emitted a delta) and
// any base-digest mismatch are errors; the caller closes the connection
// and recovery is the reconnect's full-encoding restart.
func DecodeDeltaFrom(data []byte, prev types.Cut, havePrev bool) (types.Message, error) {
	if len(data) == 0 {
		return nil, ErrTruncated
	}
	r := &reader{buf: data, off: 1, alias: true}
	var m types.Message
	switch data[0] {
	case deltaPrepareByte:
		p := &types.Prepare{Leader: r.node()}
		p.Proposal.Slot = types.Slot(r.u64())
		p.Proposal.View = types.View(r.u64())
		p.Proposal.Cut = getCutDelta(r, prev, havePrev)
		p.Ticket = getTicket(r)
		p.Sig = r.bytes()
		m = p
	case deltaCommitNoticeByte:
		cn := &types.CommitNotice{}
		if qc := getCommitQC(r); qc != nil {
			cn.QC = *qc
		} else {
			r.fail(fmt.Errorf("wire: delta commit notice without QC"))
		}
		cn.Proposal.Slot = types.Slot(r.u64())
		cn.Proposal.View = types.View(r.u64())
		cn.Proposal.Cut = getCutDelta(r, prev, havePrev)
		m = cn
	default:
		return nil, fmt.Errorf("wire: unknown delta frame type %d", data[0])
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return m, nil
}

// putCutDelta encodes cur as changes against prev: the base digest (the
// receiver's integrity check), then the changed tips as strictly
// ascending (index, TipRef) pairs. Identical consecutive cuts — the
// CommitNotice-after-Prepare case — cost 36 bytes total.
func putCutDelta(w *writer, prev, cur types.Cut) {
	w.digest(prev.Digest())
	changed := 0
	for i := range cur.Tips {
		if !tipEqual(&prev.Tips[i], &cur.Tips[i]) {
			changed++
		}
	}
	w.u32(uint32(changed))
	for i := range cur.Tips {
		t := &cur.Tips[i]
		if tipEqual(&prev.Tips[i], t) {
			continue
		}
		w.u32(uint32(i))
		w.node(t.Lane)
		w.u64(uint64(t.Position))
		w.digest(t.Digest)
		putPoA(w, t.Cert)
	}
}

// getCutDelta reconstructs a full cut from prev plus the encoded
// changes. The reconstructed tips are a fresh slice; unchanged entries
// share prev's PoA pointers, which the protocol treats as immutable
// (certificates are never modified after assembly).
func getCutDelta(r *reader, prev types.Cut, havePrev bool) types.Cut {
	base := r.digest()
	if r.err != nil {
		return types.Cut{}
	}
	if !havePrev {
		r.fail(fmt.Errorf("wire: cut delta without a base cut on this connection"))
		return types.Cut{}
	}
	if got := prev.Digest(); base != got {
		r.fail(fmt.Errorf("wire: cut delta base %s does not match connection state %s", base, got))
		return types.Cut{}
	}
	n := int(r.u32())
	if n > len(prev.Tips) {
		r.fail(fmt.Errorf("wire: cut delta changes %d of %d tips", n, len(prev.Tips)))
		return types.Cut{}
	}
	tips := make([]types.TipRef, len(prev.Tips))
	copy(tips, prev.Tips)
	last := -1
	for i := 0; i < n && r.err == nil; i++ {
		idx := int(r.u32())
		if idx <= last || idx >= len(tips) {
			r.fail(fmt.Errorf("wire: cut delta index %d out of order or range", idx))
			return types.Cut{}
		}
		last = idx
		tips[idx] = types.TipRef{
			Lane:     r.node(),
			Position: types.Pos(r.u64()),
			Digest:   r.digest(),
			Cert:     getPoA(r),
		}
	}
	return types.Cut{Tips: tips}
}

// tipEqual reports deep equality of two tip references, shares included:
// a tip that gained (or swapped) its certificate must re-encode even at
// the same position. Byte comparison is orders of magnitude cheaper than
// the signature verification the receiver would otherwise repeat.
func tipEqual(a, b *types.TipRef) bool {
	if a.Lane != b.Lane || a.Position != b.Position || a.Digest != b.Digest {
		return false
	}
	return poaEqual(a.Cert, b.Cert)
}

func poaEqual(a, b *types.PoA) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a == b {
		return true
	}
	if a.Lane != b.Lane || a.Position != b.Position || a.Digest != b.Digest || len(a.Shares) != len(b.Shares) {
		return false
	}
	for i := range a.Shares {
		if a.Shares[i].Signer != b.Shares[i].Signer || string(a.Shares[i].Sig) != string(b.Shares[i].Sig) {
			return false
		}
	}
	return true
}
