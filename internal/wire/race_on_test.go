//go:build race

package wire

// raceEnabled reports the race detector is active (sync.Pool sheds
// items under it, so pool-identity assertions must relax).
const raceEnabled = true
