// Package fetch implements Autobahn's data synchronization (§5.2.2):
// replicas missing lane history request it — in a single round trip,
// regardless of backlog length — from the replicas that certified the
// tip (one of which must be correct and, by FIFO voting, hold the entire
// history). Synchronization is non-blocking: it proceeds in parallel with
// consensus voting and only gates execution.
//
// The manager is a pure state machine: the node sends the requests it
// emits, feeds replies back, and pumps retries from a coarse tick timer.
package fetch

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/types"
)

// Purpose tags why a range is being fetched, so the node can resume the
// right work when data lands.
type Purpose uint8

const (
	// PurposeGap fills a live-voting gap in a peer lane.
	PurposeGap Purpose = iota + 1
	// PurposeExecute fills data needed to execute a committed slot.
	PurposeExecute
	// PurposeTipVote fetches an optimistic tip before consensus voting
	// (§5.5.2); Slot/View identify the pending vote.
	PurposeTipVote
)

// Request is an outstanding fetch.
type Request struct {
	Lane      types.NodeID
	From, To  types.Pos
	TipDigest types.Digest
	Purpose   Purpose
	Slot      types.Slot
	View      types.View

	targets  []types.NodeID
	attempt  int
	lastSend time.Duration
}

type key struct {
	lane types.NodeID
	to   types.Pos
	dig  types.Digest
}

// Config parameterizes the manager.
type Config struct {
	Self types.NodeID
	// RetryAfter re-issues an unanswered request to the next target
	// (default 300ms — beyond one intra-US RTT plus processing).
	RetryAfter time.Duration
	// MaxReplyProposals bounds accepted reply sizes (flooding guard).
	MaxReplyProposals int
	// MaxAttempts abandons a fetch after this many sends (default 10).
	// Consumers that still need the data re-issue it (execution retries
	// from the orderer's missing set, pending votes from the engine); a
	// fetch nobody re-issues was stale — e.g. an optimistic-tip fetch for
	// a slot that has since decided — and must not retry forever.
	MaxAttempts int
	// PerPositionDelay extends the retry deadline proportionally to the
	// requested range (default 10ms per position): bulk backlog transfers
	// take real time and must not be re-requested while streaming.
	PerPositionDelay time.Duration
	// MaxOutstandingPositions bounds the total in-flight requested range
	// across all fetches (default 512 positions ≈ a few hundred MB of
	// batches) — receive-side backpressure. Without it, retrying bulk
	// fetches whose replies are queued behind a saturated ingest pipeline
	// causes congestion collapse. Point requests (From == To) bypass the
	// budget so consensus voting never starves.
	MaxOutstandingPositions int
}

func (c *Config) fill() {
	if c.RetryAfter == 0 {
		c.RetryAfter = 300 * time.Millisecond
	}
	if c.MaxReplyProposals == 0 {
		c.MaxReplyProposals = 1 << 16
	}
	if c.MaxAttempts == 0 {
		c.MaxAttempts = 10
	}
	if c.PerPositionDelay == 0 {
		c.PerPositionDelay = 10 * time.Millisecond
	}
	if c.MaxOutstandingPositions == 0 {
		c.MaxOutstandingPositions = 512
	}
}

// Manager tracks outstanding fetches.
type Manager struct {
	cfg     Config
	pending map[key]*Request
}

// NewManager builds a fetch manager.
func NewManager(cfg Config) *Manager {
	cfg.fill()
	return &Manager{cfg: cfg, pending: make(map[key]*Request)}
}

// Outstanding returns the number of pending fetches.
func (m *Manager) Outstanding() int { return len(m.pending) }

// budgetUsed sums the in-flight requested ranges.
func (m *Manager) budgetUsed() int {
	used := 0
	for _, req := range m.pending {
		used += int(req.To - req.From + 1)
	}
	return used
}

// Emit is a request to send plus its destination.
type Emit struct {
	To  types.NodeID
	Msg *types.SyncRequest
}

// Start begins fetching [from, to] of lane, anchored at tipDigest, asking
// the given candidate targets in order (certifier quorum first). It
// returns the message to send now, or nil if an equivalent or broader
// fetch is already outstanding.
func (m *Manager) Start(now time.Duration, lane types.NodeID, from, to types.Pos, tipDigest types.Digest, targets []types.NodeID, p Purpose, slot types.Slot, view types.View) *Emit {
	if to < from || to == 0 {
		return nil
	}
	k := key{lane, to, tipDigest}
	if req, ok := m.pending[k]; ok {
		// Broaden an existing fetch downward if needed.
		if from < req.From {
			req.From = from
		}
		return nil
	}
	if to != from && m.budgetUsed()+int(to-from+1) > m.cfg.MaxOutstandingPositions {
		return nil // over budget: callers re-trigger from their tick paths
	}
	// Filter self out of targets.
	clean := make([]types.NodeID, 0, len(targets))
	for _, t := range targets {
		if t != m.cfg.Self {
			clean = append(clean, t)
		}
	}
	if len(clean) == 0 {
		return nil
	}
	req := &Request{
		Lane: lane, From: from, To: to, TipDigest: tipDigest,
		Purpose: p, Slot: slot, View: view,
		targets: clean, lastSend: now,
	}
	m.pending[k] = req
	return m.emit(req)
}

func (m *Manager) emit(req *Request) *Emit {
	target := req.targets[req.attempt%len(req.targets)]
	return &Emit{
		To: target,
		Msg: &types.SyncRequest{
			Lane: req.Lane, From: req.From, To: req.To,
			TipDigest: req.TipDigest, Requester: m.cfg.Self,
		},
	}
}

// retryDeadline returns how long a request may wait before re-issue,
// scaled by range size (large transfers stream for a while).
func (m *Manager) retryDeadline(req *Request) time.Duration {
	span := time.Duration(req.To-req.From+1) * m.cfg.PerPositionDelay
	return m.cfg.RetryAfter + span
}

// Tick re-issues requests that have waited longer than their retry
// deadline, rotating through targets; requests exceeding MaxAttempts are
// dropped. The node calls this from a coarse timer. Requests are visited
// in a canonical order — never map order: the emits become sends, and
// send order must be a deterministic function of the event history or
// fixed-seed simulations of recovery scenarios stop being reproducible.
func (m *Manager) Tick(now time.Duration) []*Emit {
	var out []*Emit
	for _, k := range m.sortedKeys() {
		req := m.pending[k]
		if now-req.lastSend >= m.retryDeadline(req) {
			req.attempt++
			if req.attempt >= m.cfg.MaxAttempts {
				delete(m.pending, k)
				continue
			}
			req.lastSend = now
			out = append(out, m.emit(req))
		}
	}
	return out
}

// sortedKeys returns the pending-request keys in canonical (lane, to,
// digest) order. Pending sets are tiny (a handful of ranges).
func (m *Manager) sortedKeys() []key {
	keys := make([]key, 0, len(m.pending))
	for k := range m.pending {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].lane != keys[j].lane {
			return keys[i].lane < keys[j].lane
		}
		if keys[i].to != keys[j].to {
			return keys[i].to < keys[j].to
		}
		return bytes.Compare(keys[i].dig[:], keys[j].dig[:]) < 0
	})
	return keys
}

// Result is a validated reply: the proposals (ascending, hash-chained,
// ending at the anchor digest) and the satisfied request.
type Result struct {
	Request   Request
	Proposals []*types.Proposal
	// Remainder is non-nil when the responder served only the top of the
	// range: a follow-up fetch for the lower sub-range, already tracked.
	Remainder *Emit
}

// OnReply validates a SyncReply against its outstanding request. Invalid
// or unsolicited replies return (nil, error). Partial replies anchored at
// the tip are accepted; the manager re-targets the remainder.
func (m *Manager) OnReply(now time.Duration, from types.NodeID, rep *types.SyncReply) (*Result, error) {
	if len(rep.Proposals) == 0 {
		return nil, fmt.Errorf("fetch: empty reply from %s", from)
	}
	if len(rep.Proposals) > m.cfg.MaxReplyProposals {
		return nil, fmt.Errorf("fetch: oversized reply from %s", from)
	}
	top := rep.Proposals[len(rep.Proposals)-1]
	low0 := rep.Proposals[0]
	k := key{rep.Lane, top.Position, top.Digest()}
	req, ok := m.pending[k]
	if !ok {
		if err := ValidateChain(rep); err != nil {
			return nil, err
		}
		// A windowed reply: the server bounded its stream, so the top is
		// mid-chain rather than the requested tip. Advance the matching
		// outstanding request past the window and immediately chase the
		// next one (self-clocked streaming). Canonical key order, so which
		// request a reply matches (and hence the follow-up send) is a
		// deterministic function of the event history.
		for _, wk := range m.sortedKeys() {
			wreq := m.pending[wk]
			if wk.lane == rep.Lane && wreq.From == low0.Position && top.Position < wreq.To {
				wreq.From = top.Position + 1
				wreq.attempt = 0
				wreq.lastSend = now
				return &Result{Request: *wreq, Proposals: rep.Proposals, Remainder: m.emit(wreq)}, nil
			}
		}
		// Otherwise: late reply to an abandoned or superseded request —
		// still useful (the caller ingests idempotently).
		return nil, ErrUnsolicited
	}
	if err := ValidateChain(rep); err != nil {
		return nil, err
	}
	if top.Digest() != req.TipDigest {
		return nil, fmt.Errorf("fetch: reply not anchored at requested tip")
	}
	low := rep.Proposals[0]
	delete(m.pending, k)

	res := &Result{Request: *req, Proposals: rep.Proposals}
	if low.Position > req.From {
		// Lower sub-range still missing; chase it anchored at low.Parent.
		res.Remainder = m.Start(now, req.Lane, req.From, low.Position-1, low.Parent,
			req.targets, req.Purpose, req.Slot, req.View)
	}
	return res, nil
}

// ErrUnsolicited marks a chain-valid reply with no matching outstanding
// request; callers should still ingest its proposals.
var ErrUnsolicited = errors.New("fetch: unsolicited (but chain-valid) reply")

// ValidateChain checks a reply's internal integrity: one lane, ascending
// contiguous positions, hash-linked parents, structurally valid batches.
func ValidateChain(rep *types.SyncReply) error {
	for i := len(rep.Proposals) - 1; i >= 0; i-- {
		p := rep.Proposals[i]
		if p.Lane != rep.Lane {
			return fmt.Errorf("fetch: reply crosses lanes")
		}
		if i < len(rep.Proposals)-1 {
			next := rep.Proposals[i+1]
			if p.Position+1 != next.Position || next.Parent != p.Digest() {
				return fmt.Errorf("fetch: reply chain broken at pos %d", p.Position)
			}
		}
		if err := p.Batch.Validate(); err != nil {
			return fmt.Errorf("fetch: invalid batch in reply: %w", err)
		}
	}
	return nil
}

// HasPending reports whether any fetch with the given purpose is
// outstanding for the lane (used to avoid overlapping catch-up ranges).
func (m *Manager) HasPending(lane types.NodeID, p Purpose) bool {
	for _, req := range m.pending {
		if req.Lane == lane && req.Purpose == p {
			return true
		}
	}
	return false
}

// Cancel drops outstanding fetches for a lane at or below pos (e.g. after
// the data arrived through live dissemination instead).
func (m *Manager) Cancel(lane types.NodeID, pos types.Pos) {
	for k := range m.pending {
		if k.lane == lane && k.to <= pos {
			delete(m.pending, k)
		}
	}
}

// Rebase drops the lane's fetches wholly at or below pos and raises the
// lower bound of fetches spanning it. After a snapshot install, history
// at or below the frontier is moot (and, against truncating peers,
// unservable), but a spanning request's upper remainder is still wanted
// — typically the very positions that gate the first post-install
// execution. Shrinking it releases outstanding-position budget for new
// fetches and re-issues it immediately, rather than letting a request
// sized for a genesis-deep span sit out a streaming deadline computed
// for hundreds of positions. Keys are visited in canonical order so the
// re-issued sends stay a deterministic function of the event history.
func (m *Manager) Rebase(now time.Duration, lane types.NodeID, pos types.Pos) []*Emit {
	var out []*Emit
	for _, k := range m.sortedKeys() {
		if k.lane != lane {
			continue
		}
		if k.to <= pos {
			delete(m.pending, k)
			continue
		}
		if req := m.pending[k]; req.From <= pos {
			req.From = pos + 1
			req.lastSend = now
			out = append(out, m.emit(req))
		}
	}
	return out
}

// ServeChunkBytes bounds one reply message's payload; ServeWindowBytes
// bounds the total served per request. Large histories are streamed as
// chunked replies in FIFO (oldest-first) order (§A.3.2: history "can be
// staggered, and sent in FIFO order at the bandwidth the network allows"
// — the requester orders and executes position s before s+1 arrives).
// The requester's manager advances the outstanding request past each
// received window and immediately asks for the next, so a deep catch-up
// self-clocks against the requester's ingest capacity: without the window
// bound, one request would dump the entire backlog and every retry would
// dump it again — congestion collapse at a recovering replica.
const (
	ServeChunkBytes  = 8 << 20
	ServeWindowBytes = 32 << 20
)

// Serve answers a peer's SyncRequest from the local store with a FIFO
// stream of chunked replies covering the oldest ServeWindowBytes of the
// requested range. The chain is located by walking parent links back from
// the requested tip, then emitted oldest-first.
func Serve(store interface {
	ChainSuffix(lane types.NodeID, from, to types.Pos, tipDigest types.Digest) ([]*types.Proposal, bool)
}, req *types.SyncRequest) []*types.SyncReply {
	props, complete := store.ChainSuffix(req.Lane, req.From, req.To, req.TipDigest)
	if len(props) == 0 {
		return nil
	}
	// Trim to the oldest window.
	total := 0
	for i, p := range props {
		total += p.WireSize()
		if total > ServeWindowBytes && i > 0 {
			props = props[:i]
			complete = false
			break
		}
	}
	var out []*types.SyncReply
	start, size := 0, 0
	for i, p := range props {
		size += p.WireSize()
		if size >= ServeChunkBytes && i+1 < len(props) {
			out = append(out, &types.SyncReply{Lane: req.Lane, Proposals: props[start : i+1], Complete: false})
			start, size = i+1, 0
		}
	}
	out = append(out, &types.SyncReply{Lane: req.Lane, Proposals: props[start:], Complete: complete})
	return out
}

// Pending returns snapshots of outstanding requests in canonical key
// order (tests).
func (m *Manager) Pending() []Request {
	out := make([]Request, 0, len(m.pending))
	for _, k := range m.sortedKeys() {
		out = append(out, *m.pending[k])
	}
	return out
}
