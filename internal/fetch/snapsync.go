package fetch

import (
	"time"

	"repro/internal/types"
)

// SnapTracker paces one snapshot-based state sync (the cold-join path):
// at most one sync is in flight per replica, retries rotate targets so a
// single unresponsive (or hostile) peer cannot wedge the join, and a
// bounded attempt budget turns a hopeless sync back over to ordinary
// range fetching. It only tracks pacing — manifest and chunk assembly
// state live with the caller, which owns verification.
type SnapTracker struct {
	// RetryAfter is the silence threshold before a stalled sync retries
	// (default 500ms).
	RetryAfter time.Duration
	// MaxAttempts bounds target rotations before the sync aborts
	// (default 8).
	MaxAttempts int

	active   bool
	target   types.NodeID
	last     time.Duration
	attempts int
}

func (t *SnapTracker) fill() {
	if t.RetryAfter == 0 {
		t.RetryAfter = 500 * time.Millisecond
	}
	if t.MaxAttempts == 0 {
		t.MaxAttempts = 8
	}
}

// Active reports whether a state sync is in flight.
func (t *SnapTracker) Active() bool { return t.active }

// Target returns the peer currently serving the sync.
func (t *SnapTracker) Target() types.NodeID { return t.target }

// Begin starts tracking a sync against target. Returns false when one is
// already in flight.
func (t *SnapTracker) Begin(now time.Duration, target types.NodeID) bool {
	t.fill()
	if t.active {
		return false
	}
	t.active = true
	t.target = target
	t.last = now
	t.attempts = 1
	return true
}

// Touch records progress (a manifest or chunk arrived), resetting the
// stall clock.
func (t *SnapTracker) Touch(now time.Duration) {
	if t.active {
		t.last = now
	}
}

// Stalled reports whether the sync has been silent past RetryAfter.
func (t *SnapTracker) Stalled(now time.Duration) bool {
	return t.active && now-t.last >= t.RetryAfter
}

// Rotate moves the sync to the next peer (skipping self) and charges one
// attempt. Returns the new target and false when the attempt budget is
// exhausted — the caller should abort the sync.
func (t *SnapTracker) Rotate(now time.Duration, committee int, self types.NodeID) (types.NodeID, bool) {
	t.fill()
	if !t.active {
		return 0, false
	}
	t.attempts++
	if t.attempts > t.MaxAttempts {
		t.Reset()
		return 0, false
	}
	next := types.NodeID((int(t.target) + 1) % committee)
	if next == self {
		next = types.NodeID((int(next) + 1) % committee)
	}
	t.target = next
	t.last = now
	return next, true
}

// Reset abandons the sync.
func (t *SnapTracker) Reset() {
	t.active = false
	t.target = 0
	t.attempts = 0
}
