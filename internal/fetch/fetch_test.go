package fetch

import (
	"testing"
	"time"

	"repro/internal/lane"
	"repro/internal/types"
)

func chain(laneID types.NodeID, n int) (*lane.Store, []*types.Proposal) {
	store := lane.NewStore()
	props := make([]*types.Proposal, n)
	var parent types.Digest
	for pos := 1; pos <= n; pos++ {
		p := &types.Proposal{
			Lane:     laneID,
			Position: types.Pos(pos),
			Parent:   parent,
			Batch:    types.NewSyntheticBatch(laneID, uint64(pos), 10, 5120, 0, 0),
		}
		store.Put(p)
		parent = p.Digest()
		props[pos-1] = p
	}
	return store, props
}

func TestStartDedupAndTargets(t *testing.T) {
	m := NewManager(Config{Self: 0})
	_, props := chain(1, 5)
	tip := props[4]
	em := m.Start(0, 1, 1, 5, tip.Digest(), []types.NodeID{0, 2, 3}, PurposeExecute, 7, 0)
	if em == nil {
		t.Fatal("first start must emit")
	}
	if em.To == 0 {
		t.Fatal("self must be filtered from targets")
	}
	if em.Msg.From != 1 || em.Msg.To != 5 || em.Msg.TipDigest != tip.Digest() {
		t.Fatalf("request = %+v", em.Msg)
	}
	if dup := m.Start(0, 1, 2, 5, tip.Digest(), []types.NodeID{2}, PurposeExecute, 7, 0); dup != nil {
		t.Fatal("duplicate start must not emit")
	}
	// Broadening downward is absorbed into the pending request.
	m.Start(0, 1, 1, 5, tip.Digest(), []types.NodeID{2}, PurposeExecute, 7, 0)
	if m.Outstanding() != 1 {
		t.Fatalf("outstanding = %d", m.Outstanding())
	}
}

func TestStartRejectsSelfOnlyTargets(t *testing.T) {
	m := NewManager(Config{Self: 0})
	if em := m.Start(0, 1, 1, 3, types.Digest{1}, []types.NodeID{0, 0}, PurposeGap, 0, 0); em != nil {
		t.Fatal("self-only targets must not emit")
	}
}

func TestServeAndReplyRoundTrip(t *testing.T) {
	store, props := chain(1, 6)
	tip := props[5]
	m := NewManager(Config{Self: 0})
	em := m.Start(0, 1, 2, 6, tip.Digest(), []types.NodeID{2}, PurposeGap, 0, 0)
	reps := Serve(store, em.Msg)
	if len(reps) != 1 || len(reps[0].Proposals) != 5 || !reps[0].Complete {
		t.Fatalf("serve = %+v", reps)
	}
	res, err := m.OnReply(0, 2, reps[0])
	if err != nil || res == nil {
		t.Fatalf("reply rejected: %v", err)
	}
	if res.Request.Purpose != PurposeGap || len(res.Proposals) != 5 {
		t.Fatalf("result = %+v", res)
	}
	if m.Outstanding() != 0 {
		t.Fatal("request must clear on satisfaction")
	}
}

func TestServeChunksLargeHistoriesFIFO(t *testing.T) {
	store, props := chain(1, 40)
	// Make payloads big enough that ~each chunk holds a few proposals.
	big, bigProps := lane.NewStore(), make([]*types.Proposal, 0, 40)
	var parent types.Digest
	for pos := 1; pos <= 40; pos++ {
		p := &types.Proposal{
			Lane: 1, Position: types.Pos(pos), Parent: parent,
			Batch: types.NewSyntheticBatch(1, uint64(pos), 2000, 1<<20, 0, 0),
		}
		big.Put(p)
		parent = p.Digest()
		bigProps = append(bigProps, p)
	}
	_ = store
	_ = props
	tip := bigProps[39]
	reps := Serve(big, &types.SyncRequest{Lane: 1, From: 1, To: 40, TipDigest: tip.Digest(), Requester: 0})
	if len(reps) < 3 {
		t.Fatalf("40 MiB history must chunk, got %d replies", len(reps))
	}
	// FIFO oldest-first: chunk k's first position follows chunk k-1's
	// last; the served prefix is bounded by the per-request window, so the
	// final chunk is not Complete (the requester chases the remainder).
	next := types.Pos(1)
	var served int
	for i, rep := range reps {
		for _, p := range rep.Proposals {
			if p.Position != next {
				t.Fatalf("chunk %d out of order: pos %d want %d", i, p.Position, next)
			}
			next++
			served += p.WireSize()
		}
		if rep.Complete {
			t.Fatalf("windowed stream chunk %d must not claim completeness", i)
		}
	}
	if served > ServeWindowBytes+ServeChunkBytes {
		t.Fatalf("served %d bytes, window is %d", served, ServeWindowBytes)
	}
	if next < 2 {
		t.Fatal("window served nothing")
	}
	// A small history is served completely.
	small, smallProps := chain(2, 5)
	sr := Serve(small, &types.SyncRequest{Lane: 2, From: 1, To: 5, TipDigest: smallProps[4].Digest()})
	if len(sr) != 1 || !sr[0].Complete {
		t.Fatalf("small serve = %+v", sr)
	}
}

// TestWindowedReplyAdvancesRequest: a reply covering only the oldest
// window advances the outstanding request in place and immediately chases
// the next window (self-clocked streaming).
func TestWindowedReplyAdvancesRequest(t *testing.T) {
	_, props := chain(1, 10)
	tip := props[9]
	m := NewManager(Config{Self: 0})
	m.Start(0, 1, 1, 10, tip.Digest(), []types.NodeID{2}, PurposeExecute, 3, 0)
	// Simulate a server window covering positions 1-4 only.
	window := &types.SyncReply{Lane: 1, Proposals: props[:4]}
	res, err := m.OnReply(time.Millisecond, 2, window)
	if err != nil || res == nil {
		t.Fatalf("windowed reply rejected: %v", err)
	}
	if res.Remainder == nil || res.Remainder.Msg.From != 5 || res.Remainder.Msg.To != 10 {
		t.Fatalf("remainder = %+v", res.Remainder)
	}
	if m.Outstanding() != 1 {
		t.Fatal("request must remain outstanding across windows")
	}
	// The final anchored stretch completes it.
	rest := &types.SyncReply{Lane: 1, Proposals: props[4:], Complete: true}
	res, err = m.OnReply(2*time.Millisecond, 2, rest)
	if err != nil || res == nil || res.Remainder != nil {
		t.Fatalf("final stretch: res=%+v err=%v", res, err)
	}
	if m.Outstanding() != 0 {
		t.Fatal("request must complete")
	}
}

func TestOnReplyValidatesChains(t *testing.T) {
	store, props := chain(1, 4)
	tip := props[3]
	fresh := func() *Manager {
		m := NewManager(Config{Self: 0})
		m.Start(0, 1, 1, 4, tip.Digest(), []types.NodeID{2}, PurposeExecute, 0, 0)
		return m
	}
	good := Serve(store, &types.SyncRequest{Lane: 1, From: 1, To: 4, TipDigest: tip.Digest()})[0]

	// Broken link.
	broken := &types.SyncReply{Lane: 1, Proposals: append([]*types.Proposal{}, good.Proposals...)}
	broken.Proposals[1] = &types.Proposal{Lane: 1, Position: 2, Parent: types.Digest{9}, Batch: props[1].Batch}
	if _, err := fresh().OnReply(0, 2, broken); err == nil {
		t.Fatal("broken chain accepted")
	}
	// Wrong anchor: a valid chain ending at a different tip is treated as
	// unsolicited (ingestable) and leaves the request outstanding.
	otherStore := lane.NewStore()
	var parent types.Digest
	var otherProps []*types.Proposal
	for pos := 1; pos <= 4; pos++ {
		p := &types.Proposal{
			Lane: 1, Position: types.Pos(pos), Parent: parent,
			Batch: types.NewSyntheticBatch(1, uint64(100+pos), 10, 5120, 0, 0),
		}
		otherStore.Put(p)
		parent = p.Digest()
		otherProps = append(otherProps, p)
	}
	mgr := fresh()
	if _, err := mgr.OnReply(0, 2, &types.SyncReply{Lane: 1, Proposals: otherProps}); err != ErrUnsolicited {
		t.Fatalf("unanchored chain: got %v, want ErrUnsolicited", err)
	}
	if mgr.Outstanding() != 1 {
		t.Fatal("unanchored reply must leave the request outstanding")
	}
	// Cross-lane.
	cross := &types.SyncReply{Lane: 2, Proposals: good.Proposals}
	if _, err := fresh().OnReply(0, 2, cross); err == nil {
		t.Fatal("cross-lane reply accepted")
	}
	// Empty.
	if _, err := fresh().OnReply(0, 2, &types.SyncReply{Lane: 1}); err == nil {
		t.Fatal("empty reply accepted")
	}
}

func TestUnsolicitedChainValidReply(t *testing.T) {
	st, props := chain(1, 3)
	tip := props[2]
	m := NewManager(Config{Self: 0})
	rep := Serve(st, &types.SyncRequest{Lane: 1, From: 1, To: 3, TipDigest: tip.Digest()})[0]
	res, err := m.OnReply(0, 2, rep)
	if err != ErrUnsolicited || res != nil {
		t.Fatalf("got (%v, %v), want ErrUnsolicited", res, err)
	}
}

func TestPartialReplyChasesRemainder(t *testing.T) {
	_, props := chain(1, 6)
	tip := props[5]
	m := NewManager(Config{Self: 0})
	m.Start(0, 1, 1, 6, tip.Digest(), []types.NodeID{2, 3}, PurposeExecute, 0, 0)
	// Responder only has positions 4-6.
	partial := lane.NewStore()
	for _, p := range props[3:] {
		partial.Put(p)
	}
	rep := Serve(partial, &types.SyncRequest{Lane: 1, From: 1, To: 6, TipDigest: tip.Digest()})[0]
	if rep.Complete {
		t.Fatal("partial serve must not claim completeness")
	}
	res, err := m.OnReply(0, 2, rep)
	if err != nil || res == nil {
		t.Fatalf("partial reply rejected: %v", err)
	}
	if res.Remainder == nil {
		t.Fatal("remainder fetch expected")
	}
	if res.Remainder.Msg.From != 1 || res.Remainder.Msg.To != 3 || res.Remainder.Msg.TipDigest != props[3].Parent {
		t.Fatalf("remainder = %+v", res.Remainder.Msg)
	}
	if m.Outstanding() != 1 {
		t.Fatal("remainder must be tracked")
	}
}

func TestTickRetriesThenAbandons(t *testing.T) {
	m := NewManager(Config{Self: 0, RetryAfter: 10 * time.Millisecond, PerPositionDelay: time.Millisecond, MaxAttempts: 3})
	m.Start(0, 1, 5, 5, types.Digest{1}, []types.NodeID{2, 3}, PurposeTipVote, 1, 0)

	ems := m.Tick(20 * time.Millisecond)
	if len(ems) != 1 {
		t.Fatalf("first retry: %d emits", len(ems))
	}
	if ems[0].To != 3 {
		t.Fatalf("retry must rotate targets, got %s", ems[0].To)
	}
	if len(m.Tick(25*time.Millisecond)) != 0 {
		t.Fatal("retry before deadline")
	}
	m.Tick(40 * time.Millisecond)
	ems = m.Tick(60 * time.Millisecond) // attempt 3 = MaxAttempts: dropped
	if len(ems) != 0 || m.Outstanding() != 0 {
		t.Fatalf("fetch not abandoned: emits=%d outstanding=%d", len(ems), m.Outstanding())
	}
}

func TestBudgetBoundsBulkFetches(t *testing.T) {
	m := NewManager(Config{Self: 0, MaxOutstandingPositions: 10})
	if em := m.Start(0, 1, 1, 8, types.Digest{1}, []types.NodeID{2}, PurposeExecute, 0, 0); em == nil {
		t.Fatal("within budget must emit")
	}
	if em := m.Start(0, 2, 1, 8, types.Digest{2}, []types.NodeID{2}, PurposeExecute, 0, 0); em != nil {
		t.Fatal("over budget must defer")
	}
	// Point requests bypass the budget (consensus voting).
	if em := m.Start(0, 2, 9, 9, types.Digest{3}, []types.NodeID{2}, PurposeTipVote, 1, 0); em == nil {
		t.Fatal("point request must bypass the budget")
	}
}

func TestCancel(t *testing.T) {
	m := NewManager(Config{Self: 0})
	m.Start(0, 1, 1, 5, types.Digest{1}, []types.NodeID{2}, PurposeGap, 0, 0)
	m.Start(0, 1, 6, 9, types.Digest{2}, []types.NodeID{2}, PurposeGap, 0, 0)
	m.Cancel(1, 5)
	if m.Outstanding() != 1 {
		t.Fatalf("outstanding = %d after cancel", m.Outstanding())
	}
	if !m.HasPending(1, PurposeGap) {
		t.Fatal("higher range must survive cancel")
	}
}

// TestRebaseShrinksSpanningFetch pins the snapshot-install contract:
// fetches wholly at or below the frontier are dropped, a fetch spanning
// it is narrowed to the upper remainder (freeing outstanding-position
// budget) and re-emitted immediately with the narrowed range.
func TestRebaseShrinksSpanningFetch(t *testing.T) {
	m := NewManager(Config{Self: 0, MaxOutstandingPositions: 250})
	_, propsA := chain(1, 200)
	_, propsB := chain(2, 100)
	tipA, tipB := propsA[199], propsB[99]
	if m.Start(0, 1, 1, 200, tipA.Digest(), []types.NodeID{2}, PurposeGap, 0, 0) == nil {
		t.Fatal("spanning fetch must start")
	}
	if m.Start(0, 2, 1, 100, tipB.Digest(), []types.NodeID{2}, PurposeGap, 0, 0) != nil {
		t.Fatal("second bulk fetch must be over budget before rebase")
	}
	ems := m.Rebase(time.Second, 1, 150)
	if len(ems) != 1 {
		t.Fatalf("want 1 re-emit, got %d", len(ems))
	}
	if ems[0].Msg.From != 151 || ems[0].Msg.To != 200 {
		t.Fatalf("rebased range = [%d,%d], want [151,200]", ems[0].Msg.From, ems[0].Msg.To)
	}
	// Budget released: the lane-2 bulk fetch fits now.
	if m.Start(time.Second, 2, 1, 100, tipB.Digest(), []types.NodeID{2}, PurposeGap, 0, 0) == nil {
		t.Fatal("rebase must release outstanding-position budget")
	}
	// A fetch wholly below the frontier is dropped outright.
	m.Rebase(2*time.Second, 2, 100)
	if m.Outstanding() != 1 {
		t.Fatalf("want only the rebased lane-1 fetch outstanding, got %d", m.Outstanding())
	}
}
