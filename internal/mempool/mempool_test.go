package mempool

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/types"
)

func TestCountTriggerSeals(t *testing.T) {
	p := NewPool(Config{Self: 1, MaxBatchTxs: 3, MaxBatchBytes: 1 << 20})
	var sealed []*types.Batch
	for i := 0; i < 7; i++ {
		sealed = append(sealed, p.AddTx(make(types.Transaction, 10), 0)...)
	}
	if len(sealed) != 2 {
		t.Fatalf("sealed %d batches, want 2", len(sealed))
	}
	for _, b := range sealed {
		if b.Count != 3 || b.Origin != 1 {
			t.Fatalf("batch = %+v", b)
		}
		if err := b.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	if !p.Pending() {
		t.Fatal("one tx must remain pending")
	}
	if b := p.Flush(0); b == nil || b.Count != 1 {
		t.Fatalf("flush = %+v", b)
	}
	if p.Pending() {
		t.Fatal("pool must be empty after flush")
	}
}

func TestByteTriggerSeals(t *testing.T) {
	p := NewPool(Config{Self: 0, MaxBatchTxs: 1000, MaxBatchBytes: 100})
	sealed := p.AddTx(make(types.Transaction, 60), 0)
	if len(sealed) != 0 {
		t.Fatal("60 bytes must not seal at 100-byte cap")
	}
	sealed = p.AddTx(make(types.Transaction, 60), 0)
	if len(sealed) != 1 || sealed[0].Bytes != 120 {
		t.Fatalf("sealed = %+v", sealed)
	}
}

func TestDelayTrigger(t *testing.T) {
	p := NewPool(Config{Self: 0, MaxBatchDelay: 100 * time.Millisecond})
	p.AddTx([]byte("x"), 50*time.Millisecond)
	if p.FlushDue(100 * time.Millisecond) {
		t.Fatal("flush due too early")
	}
	if !p.FlushDue(151 * time.Millisecond) {
		t.Fatal("flush must be due after the delay")
	}
	if p.FlushDue(0) && !p.Pending() {
		t.Fatal("empty pool must never be due")
	}
}

func TestSyntheticCarving(t *testing.T) {
	p := NewPool(Config{Self: 2, MaxBatchTxs: 1000, MaxBatchBytes: 1 << 30})
	sealed := p.AddSynthetic(2500, 2500*512, 10*time.Millisecond, 10*time.Millisecond)
	if len(sealed) != 2 {
		t.Fatalf("sealed %d, want 2 full batches", len(sealed))
	}
	var total uint64
	for _, b := range sealed {
		if b.Count != 1000 {
			t.Fatalf("carved batch count = %d", b.Count)
		}
		total += uint64(b.Count)
	}
	rest := p.Flush(20 * time.Millisecond)
	if rest == nil || rest.Count != 500 {
		t.Fatalf("remainder = %+v", rest)
	}
	total += uint64(rest.Count)
	if total != 2500 {
		t.Fatalf("tx conservation violated: %d", total)
	}
	if sum := sealed[0].Bytes + sealed[1].Bytes + rest.Bytes; sum != 2500*512 {
		t.Fatalf("byte conservation violated: %d", sum)
	}
}

// TestSyntheticConservation is a property test: however arrivals are
// chunked, sealed batches conserve transaction and byte totals.
func TestSyntheticConservation(t *testing.T) {
	f := func(chunks []uint16) bool {
		if len(chunks) > 32 {
			chunks = chunks[:32]
		}
		p := NewPool(Config{Self: 0})
		var want uint64
		var got uint64
		now := time.Duration(0)
		for _, c := range chunks {
			count := uint64(c % 3000)
			want += count
			for _, b := range p.AddSynthetic(count, count*512, now, now) {
				got += uint64(b.Count)
			}
			now += time.Millisecond
		}
		for {
			b := p.Flush(now)
			if b == nil {
				break
			}
			got += uint64(b.Count)
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSequenceNumbersMonotone(t *testing.T) {
	p := NewPool(Config{Self: 0, MaxBatchTxs: 1})
	var last uint64
	for i := 0; i < 5; i++ {
		b := p.AddTx([]byte("t"), 0)[0]
		if b.Seq <= last {
			t.Fatalf("seq %d after %d", b.Seq, last)
		}
		last = b.Seq
	}
}
