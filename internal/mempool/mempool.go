// Package mempool batches incoming client transactions into the fixed-size
// batches the data layer disseminates (§6: 500 KB / 1000-transaction
// batches, sealed early after a maximum delay). It supports both real
// transaction payloads and the simulator's synthetic aggregates (counts +
// byte totals + arrival-time statistics), which keep multi-hundred-MB/s
// workloads cheap to simulate while preserving latency accounting.
package mempool

import (
	"sync/atomic"
	"time"

	"repro/internal/types"
)

// Config parameterizes batching.
type Config struct {
	Self types.NodeID
	// MaxBatchTxs seals a batch at this many transactions (default 1000).
	MaxBatchTxs int
	// MaxBatchBytes seals a batch at this payload size (default 500 KB).
	MaxBatchBytes uint64
	// MaxBatchDelay seals a non-empty batch after this long even if not
	// full (default 100ms).
	MaxBatchDelay time.Duration
}

func (c *Config) fill() {
	if c.MaxBatchTxs == 0 {
		c.MaxBatchTxs = 1000
	}
	if c.MaxBatchBytes == 0 {
		c.MaxBatchBytes = 500 << 10
	}
	if c.MaxBatchDelay == 0 {
		c.MaxBatchDelay = 100 * time.Millisecond
	}
}

// Pool accumulates transactions and seals batches.
type Pool struct {
	cfg Config
	seq uint64

	// Real transactions. txs is a reusable accumulation buffer pre-sized
	// to MaxBatchTxs: sealing copies the batch prefix out into an
	// exactly-sized slice (the batch escapes into lane stores and onto
	// the wire, so its backing array cannot be recycled) and compacts
	// the remainder to the front, so the buffer is allocated once per
	// pool instead of re-grown per batch.
	txs      []types.Transaction
	txsBytes uint64

	// Synthetic aggregate.
	synCount      uint64
	synBytes      uint64
	synArrivalSum float64 // sum over txs of arrival (seconds), for the mean

	oldest  time.Duration // arrival of the oldest pending item
	hasWork bool

	// depth mirrors the unsealed transaction count (real + synthetic)
	// atomically so admission control (internal/gateway) can read the
	// pool's backlog without taking the caller's pool lock; hwm is its
	// high-watermark. Both are maintained by the mutating methods, which
	// the caller already serializes.
	depth atomic.Int64
	hwm   atomic.Int64
}

// Depth returns the number of unsealed transactions currently pending
// (real + synthetic aggregate counts). Safe to call concurrently with
// the externally-locked mutating methods: it is a single atomic load,
// cheap enough for a per-submission admission check.
func (p *Pool) Depth() int { return int(p.depth.Load()) }

// HighWatermark returns the largest Depth observed since the pool was
// created — how deep the backlog ever got, for overload postmortems.
func (p *Pool) HighWatermark() int { return int(p.hwm.Load()) }

// updateDepth republishes the gauge after a mutation. Runs under the
// caller's external lock, so the read-modify-write on hwm cannot race
// with another writer — only with concurrent readers, which is safe.
func (p *Pool) updateDepth() {
	d := int64(len(p.txs)) + int64(p.synCount)
	p.depth.Store(d)
	if d > p.hwm.Load() {
		p.hwm.Store(d)
	}
}

// NewPool builds a pool.
func NewPool(cfg Config) *Pool {
	cfg.fill()
	return &Pool{cfg: cfg, txs: make([]types.Transaction, 0, cfg.MaxBatchTxs)}
}

// Pending reports whether unsealed transactions exist.
func (p *Pool) Pending() bool { return p.hasWork }

// OldestArrival returns the arrival time of the oldest pending item
// (meaningful only when Pending).
func (p *Pool) OldestArrival() time.Duration { return p.oldest }

// AddTx adds one real transaction; it returns any batches sealed by the
// size/count triggers.
func (p *Pool) AddTx(tx types.Transaction, now time.Duration) []*types.Batch {
	if !p.hasWork {
		p.oldest = now
		p.hasWork = true
	}
	p.txs = append(p.txs, tx)
	p.txsBytes += uint64(len(tx))
	var out []*types.Batch
	for len(p.txs) >= p.cfg.MaxBatchTxs || p.txsBytes >= p.cfg.MaxBatchBytes {
		out = append(out, p.sealReal(now))
	}
	p.updateDepth()
	return out
}

// AddSynthetic adds an aggregate of count transactions totalling size
// bytes with the given mean arrival time; it returns sealed batches.
func (p *Pool) AddSynthetic(count uint64, size uint64, meanArrival, now time.Duration) []*types.Batch {
	if count == 0 {
		return nil
	}
	if !p.hasWork {
		p.oldest = meanArrival
		p.hasWork = true
	}
	p.synCount += count
	p.synBytes += size
	p.synArrivalSum += float64(count) * meanArrival.Seconds()
	var out []*types.Batch
	for p.synCount >= uint64(p.cfg.MaxBatchTxs) || p.synBytes >= p.cfg.MaxBatchBytes {
		out = append(out, p.sealSynthetic(now))
	}
	p.updateDepth()
	return out
}

// Flush seals whatever is pending (delay trigger); nil when empty.
func (p *Pool) Flush(now time.Duration) *types.Batch {
	defer p.updateDepth()
	switch {
	case len(p.txs) > 0:
		return p.sealReal(now)
	case p.synCount > 0:
		return p.sealSynthetic(now)
	default:
		return nil
	}
}

// FlushDue reports whether the delay trigger has expired.
func (p *Pool) FlushDue(now time.Duration) bool {
	return p.hasWork && now-p.oldest >= p.cfg.MaxBatchDelay
}

func (p *Pool) sealReal(now time.Duration) *types.Batch {
	n := min(len(p.txs), p.cfg.MaxBatchTxs)
	txs := make([]types.Transaction, n)
	copy(txs, p.txs[:n])
	// Compact the remainder to the front and reuse the accumulation
	// buffer (re-slicing p.txs[n:] instead would strand the prefix and
	// force append to re-grow a fresh backing array every batch).
	rest := copy(p.txs, p.txs[n:])
	for i := rest; i < len(p.txs); i++ {
		p.txs[i] = nil // drop tx references so sealed payloads can be GC'd
	}
	p.txs = p.txs[:rest]
	var sz uint64
	for _, tx := range txs {
		sz += uint64(len(tx))
	}
	p.txsBytes -= sz
	p.seq++
	b := types.NewBatch(p.cfg.Self, p.seq, txs, now)
	p.afterSeal(now)
	return b
}

func (p *Pool) sealSynthetic(now time.Duration) *types.Batch {
	count := min(p.synCount, uint64(p.cfg.MaxBatchTxs))
	// Carve bytes proportionally; the remainder keeps its share.
	size := p.synBytes
	if count < p.synCount {
		size = p.synBytes * count / p.synCount
	}
	mean := time.Duration(p.synArrivalSum / float64(p.synCount) * float64(time.Second))
	p.synArrivalSum -= float64(count) * mean.Seconds()
	if p.synArrivalSum < 0 {
		p.synArrivalSum = 0
	}
	p.synCount -= count
	p.synBytes -= size
	p.seq++
	b := types.NewSyntheticBatch(p.cfg.Self, p.seq, uint32(count), size, mean, now)
	p.afterSeal(now)
	return b
}

func (p *Pool) afterSeal(now time.Duration) {
	if len(p.txs) == 0 && p.synCount == 0 {
		p.hasWork = false
	} else {
		// Approximation: remaining items arrived no earlier than "now
		// minus the delay window"; precise tracking isn't needed because
		// the next seal is at most MaxBatchDelay away.
		p.oldest = now
	}
}
