package mempool

import (
	"sync"
	"testing"
	"time"
)

// TestDepthTracksBacklog pins the gauge to the ground truth through the
// seal triggers: depth is the unsealed remainder after every operation.
func TestDepthTracksBacklog(t *testing.T) {
	p := NewPool(Config{Self: 0, MaxBatchTxs: 10})
	if p.Depth() != 0 {
		t.Fatalf("fresh pool depth = %d", p.Depth())
	}
	for i := 0; i < 9; i++ {
		p.AddTx([]byte("t"), 0)
	}
	if p.Depth() != 9 || p.HighWatermark() != 9 {
		t.Fatalf("depth = %d hwm = %d, want 9/9", p.Depth(), p.HighWatermark())
	}
	if b := p.AddTx([]byte("t"), 0); len(b) != 1 {
		t.Fatal("10th tx should seal")
	}
	if p.Depth() != 0 {
		t.Fatalf("depth after seal = %d, want 0", p.Depth())
	}
	if p.HighWatermark() != 9 {
		t.Fatalf("hwm = %d, want 9", p.HighWatermark())
	}
	p.AddSynthetic(7, 7*100, 0, 0)
	if p.Depth() != 7 {
		t.Fatalf("synthetic depth = %d, want 7", p.Depth())
	}
	p.Flush(time.Second)
	if p.Depth() != 0 {
		t.Fatalf("depth after flush = %d, want 0", p.Depth())
	}
}

// TestDepthAccurateUnderConcurrentAddDrain drives the pool the way the
// gateway sees it: submitters add under an external lock while readers
// poll Depth lock-free. After every locked mutation the gauge must equal
// the exact unsealed remainder, and the final drain must return it to
// zero — no lost or phantom updates under -race.
func TestDepthAccurateUnderConcurrentAddDrain(t *testing.T) {
	p := NewPool(Config{Self: 0, MaxBatchTxs: 64})
	var mu sync.Mutex
	stop := make(chan struct{})

	// Lock-free readers: the gauge must always be a value the pool
	// actually passed through (0..MaxBatchTxs-1 after a mutation, and
	// never negative or above the seal trigger by a full batch).
	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				d := p.Depth()
				if d < 0 || d >= 2*64 {
					t.Errorf("implausible depth %d", d)
					return
				}
			}
		}()
	}

	var writers sync.WaitGroup
	const perWriter = 2000
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func() {
			defer writers.Done()
			for i := 0; i < perWriter; i++ {
				mu.Lock()
				if i%5 == 4 {
					p.Flush(time.Duration(i)) // drain interleaved with adds
				} else {
					p.AddTx([]byte("tx"), time.Duration(i))
				}
				if got, want := p.Depth(), len(p.txs)+int(p.synCount); got != want {
					t.Errorf("depth %d != ground truth %d", got, want)
				}
				mu.Unlock()
			}
		}()
	}
	writers.Wait()
	close(stop)
	readers.Wait()

	mu.Lock()
	defer mu.Unlock()
	for p.Flush(time.Hour) != nil {
	}
	if p.Depth() != 0 {
		t.Fatalf("drained pool depth = %d", p.Depth())
	}
	if p.HighWatermark() == 0 {
		t.Fatal("high-watermark never advanced")
	}
}
