package mempool

import (
	"testing"
	"time"

	"repro/internal/types"
)

// TestSealedBatchesSurviveBufferRecycling: the accumulation buffer is
// reused across seals, so a sealed batch's transactions must be
// independent of later pool activity (the seal copies them out).
func TestSealedBatchesSurviveBufferRecycling(t *testing.T) {
	p := NewPool(Config{MaxBatchTxs: 4, MaxBatchDelay: time.Hour})
	mk := func(tag byte) types.Transaction { return types.Transaction{tag, tag, tag} }

	var batches []*types.Batch
	for i := 0; i < 12; i++ {
		batches = append(batches, p.AddTx(mk(byte(i)), 0)...)
	}
	if b := p.Flush(0); b != nil {
		batches = append(batches, b)
	}
	if len(batches) != 3 {
		t.Fatalf("sealed %d batches, want 3", len(batches))
	}
	seen := 0
	for _, b := range batches {
		for _, tx := range b.Txs {
			if len(tx) != 3 || tx[0] != byte(seen) {
				t.Fatalf("batch tx corrupted by recycling: got %v at index %d", tx, seen)
			}
			seen++
		}
	}
	if seen != 12 {
		t.Fatalf("recovered %d txs, want 12", seen)
	}
}

// TestPartialSealKeepsRemainder: a byte-triggered seal mid-buffer must
// compact the unsealed suffix to the front, not lose or duplicate it.
func TestPartialSealKeepsRemainder(t *testing.T) {
	p := NewPool(Config{MaxBatchTxs: 100, MaxBatchBytes: 10})
	big := make(types.Transaction, 10)
	small := types.Transaction{7}
	batches := p.AddTx(small, 0)
	if len(batches) != 0 {
		t.Fatal("premature seal")
	}
	batches = p.AddTx(big, 0) // 11 bytes pending >= 10: seals everything
	if len(batches) != 1 || len(batches[0].Txs) != 2 {
		t.Fatalf("batches = %+v", batches)
	}
	if p.Pending() {
		t.Fatal("pool should be empty after full seal")
	}
}

// BenchmarkMempoolAddTx is the submitter hot path (LiveCluster.Submit
// holds a lock around it): pre-sizing the accumulation buffer from
// MaxBatchTxs and recycling it across seals drops the per-tx allocation
// churn (~83 B/op before this fix, the remainder is the unavoidable
// exactly-sized sealed-batch slice).
func BenchmarkMempoolAddTx(b *testing.B) {
	p := NewPool(Config{})
	tx := make(types.Transaction, 128)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.AddTx(tx, 0)
	}
}
