package workload

import (
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/runtime"
	"repro/internal/sim"
	"repro/internal/types"
)

// counter tallies submitted batches per node.
type counter struct {
	txs   atomic.Uint64
	bytes atomic.Uint64
	n     atomic.Uint64
}

func (c *counter) Init(runtime.Context)                                   {}
func (c *counter) OnMessage(runtime.Context, types.NodeID, types.Message) {}
func (c *counter) OnTimer(runtime.Context, runtime.TimerTag)              {}
func (c *counter) OnClientBatch(_ runtime.Context, b *types.Batch) {
	c.txs.Add(uint64(b.Count))
	c.bytes.Add(b.Bytes)
	c.n.Add(1)
}

func newEngine(faults *sim.FaultSchedule) (*sim.Engine, []*counter) {
	eng := sim.NewEngine(sim.Config{
		Net:    sim.NewNetwork(sim.NetConfig{Topology: sim.UniformTopology{OneWay: time.Millisecond}}),
		Faults: faults,
		Seed:   1,
	})
	cs := make([]*counter, 4)
	for i := range cs {
		cs[i] = &counter{}
		eng.AddNode(cs[i])
	}
	return eng, cs
}

func ids() []types.NodeID { return []types.NodeID{0, 1, 2, 3} }

func TestRateAccounting(t *testing.T) {
	eng, cs := newEngine(nil)
	Install(eng, ids(), Config{TotalRate: 40_000, TxSize: 512, Start: 0, End: 10 * time.Second})
	eng.Run(15 * time.Second)
	var total, bytes uint64
	for _, c := range cs {
		total += c.txs.Load()
		bytes += c.bytes.Load()
	}
	if total != 400_000 {
		t.Fatalf("submitted %d txs, want exactly 400000", total)
	}
	if bytes != 400_000*512 {
		t.Fatalf("submitted %d bytes", bytes)
	}
	// Load balanced evenly.
	for i, c := range cs {
		if c.txs.Load() != 100_000 {
			t.Fatalf("node %d got %d txs", i, c.txs.Load())
		}
	}
}

func TestBatchSealing(t *testing.T) {
	eng, cs := newEngine(nil)
	Install(eng, ids(), Config{TotalRate: 4_000, Start: 0, End: 2 * time.Second})
	eng.Run(5 * time.Second)
	// 1k tx/s per node with 1000-tx batches sealed within 100ms: at least
	// one full batch plus delay-triggered partials.
	for i, c := range cs {
		if c.n.Load() < 2 || c.n.Load() > 40 {
			t.Fatalf("node %d sealed %d batches", i, c.n.Load())
		}
	}
}

func TestRedirectAwayFromDownNode(t *testing.T) {
	faults := (&sim.FaultSchedule{}).AddDown(1, 0, 10*time.Second)
	eng, cs := newEngine(faults)
	Install(eng, ids(), Config{TotalRate: 40_000, TxSize: 512, Start: 0, End: 10 * time.Second})
	eng.Run(15 * time.Second)
	if got := cs[1].txs.Load(); got != 0 {
		t.Fatalf("down node received %d txs", got)
	}
	var total uint64
	for _, c := range cs {
		total += c.txs.Load()
	}
	if total != 400_000 {
		t.Fatalf("redirected load lost txs: %d", total)
	}
}

func TestNoRedirectDropsLoad(t *testing.T) {
	faults := (&sim.FaultSchedule{}).AddDown(1, 0, 10*time.Second)
	eng, cs := newEngine(faults)
	Install(eng, ids(), Config{TotalRate: 40_000, TxSize: 512, Start: 0, End: 10 * time.Second, NoRedirect: true})
	eng.Run(15 * time.Second)
	if got := cs[1].txs.Load(); got != 0 {
		t.Fatalf("down node received %d txs", got)
	}
	var total uint64
	for _, c := range cs {
		total += c.txs.Load()
	}
	if total >= 400_000 {
		t.Fatal("NoRedirect must drop the down node's share")
	}
}

func TestArrivalTimestampsProgress(t *testing.T) {
	eng, _ := newEngine(nil)
	var arrivals []time.Duration
	probe := &probeProto{onBatch: func(b *types.Batch) { arrivals = append(arrivals, b.MeanArrival) }}
	eng.AddNode(probe)
	Install(eng, []types.NodeID{4}, Config{TotalRate: 5_000, Start: time.Second, End: 3 * time.Second})
	eng.Run(5 * time.Second)
	if len(arrivals) < 5 {
		t.Fatalf("only %d batches", len(arrivals))
	}
	for i, a := range arrivals {
		if a < time.Second || a > 3*time.Second {
			t.Fatalf("arrival %d = %v outside the window", i, a)
		}
		if i > 0 && a < arrivals[i-1] {
			t.Fatal("arrival means must be nondecreasing")
		}
	}
}

type probeProto struct {
	onBatch func(*types.Batch)
}

func (p *probeProto) Init(runtime.Context)                                   {}
func (p *probeProto) OnMessage(runtime.Context, types.NodeID, types.Message) {}
func (p *probeProto) OnTimer(runtime.Context, runtime.TimerTag)              {}
func (p *probeProto) OnClientBatch(_ runtime.Context, b *types.Batch)        { p.onBatch(b) }
