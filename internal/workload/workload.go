// Package workload generates the paper's evaluation workload (§6): an
// open-loop constant stream of 512-byte no-op transactions, balanced
// across replicas (clients are co-located with their replica, so
// client→replica latency is excluded, as in the paper). Under simulation,
// transactions are aggregated into synthetic chunks per scheduling tick;
// the mempool turns chunks into sealed batches with correct arrival-time
// statistics for latency measurement.
package workload

import (
	"time"

	"repro/internal/mempool"
	"repro/internal/sim"
	"repro/internal/types"
)

// Config describes an open-loop load.
type Config struct {
	// TotalRate is the aggregate submission rate across all replicas
	// (tx/s).
	TotalRate float64
	// TxSize is the per-transaction payload size (default 512 bytes).
	TxSize int
	// Start/End bound the submission window.
	Start, End time.Duration
	// Tick is the chunk granularity (default 5ms).
	Tick time.Duration
	// Batch overrides mempool batching parameters (zero = defaults:
	// 1000 txs / 500 KB / 100ms).
	Batch mempool.Config
	// RedirectFromDown re-routes load away from crashed replicas to the
	// next live one (clients re-submitting elsewhere). Default true via
	// Install.
	NoRedirect bool
}

func (c *Config) fill() {
	if c.TxSize == 0 {
		c.TxSize = 512
	}
	if c.Tick == 0 {
		c.Tick = 5 * time.Millisecond
	}
}

// Install schedules the workload on a simulation engine for the given
// replicas. It returns the per-replica mempools (tests may inspect them).
func Install(e *sim.Engine, nodes []types.NodeID, cfg Config) []*mempool.Pool {
	cfg.fill()
	pools := make([]*mempool.Pool, len(nodes))
	carry := make([]float64, len(nodes))
	for i, id := range nodes {
		bc := cfg.Batch
		bc.Self = id
		pools[i] = mempool.NewPool(bc)
	}
	perNode := cfg.TotalRate / float64(len(nodes))
	txPerTick := perNode * cfg.Tick.Seconds()

	// Ticks continue past End so partially filled batches still flush.
	e.Every(cfg.Start, cfg.Tick, cfg.End+2*time.Second, func(t time.Duration) {
		for i, id := range nodes {
			var count uint64
			if t < cfg.End {
				carry[i] += txPerTick
				count = uint64(carry[i])
				carry[i] -= float64(count)
			}

			target := id
			pi := i
			if !cfg.NoRedirect && e.NodeDown(id) {
				// Re-route to the next live replica (client failover).
				for off := 1; off < len(nodes); off++ {
					cand := nodes[(i+off)%len(nodes)]
					if !e.NodeDown(cand) {
						target = cand
						pi = (i + off) % len(nodes)
						break
					}
				}
				if e.NodeDown(target) {
					continue // everyone down: drop
				}
			}
			pool := pools[pi]
			mean := t + cfg.Tick/2
			if count > 0 {
				batches := pool.AddSynthetic(count, count*uint64(cfg.TxSize), mean, t)
				for _, b := range batches {
					e.SubmitBatch(target, b)
				}
			}
			if pool.FlushDue(t) {
				if b := pool.Flush(t); b != nil {
					e.SubmitBatch(target, b)
				}
			}
		}
	})
	return pools
}
