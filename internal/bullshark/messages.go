package bullshark

import (
	"crypto/sha256"
	"encoding/binary"

	"repro/internal/types"
)

// Message types (range reserved in types.MsgBullsharkBase).
const (
	MsgHeader types.MsgType = types.MsgBullsharkBase + iota
	MsgHeaderVote
	MsgCert
	MsgBatch
	MsgBatchPull
	MsgBatchPush
	MsgCertPull
	MsgCertPush
)

// Round is a DAG round.
type Round uint64

// BatchRef identifies a disseminated batch.
type BatchRef struct {
	Origin types.NodeID
	Seq    uint64
	Digest types.Digest
}

// CertRef references a certificate (and hence a header) by identity.
type CertRef struct {
	Author types.NodeID
	Round  Round
	Header types.Digest
}

// Header is one replica's per-round DAG vertex: its fresh batch digests
// plus 2f+1 certificates of the previous round (the DAG edges).
type Header struct {
	Author  types.NodeID
	Round   Round
	Refs    []BatchRef
	Parents []CertRef
	Sig     []byte
}

// Digest hashes the header.
func (h *Header) Digest() types.Digest {
	hs := sha256.New()
	var hdr [8 + 2 + 8]byte
	copy(hdr[:8], "bshdr-v1")
	binary.LittleEndian.PutUint16(hdr[8:], uint16(h.Author))
	binary.LittleEndian.PutUint64(hdr[10:], uint64(h.Round))
	hs.Write(hdr[:])
	for _, r := range h.Refs {
		hs.Write(r.Digest[:])
	}
	for _, p := range h.Parents {
		var b [10]byte
		binary.LittleEndian.PutUint16(b[:], uint16(p.Author))
		binary.LittleEndian.PutUint64(b[2:], uint64(p.Round))
		hs.Write(b[:])
		hs.Write(p.Header[:])
	}
	var d types.Digest
	hs.Sum(d[:0])
	return d
}

// SigningBytes returns the author-signed content.
func (h *Header) SigningBytes() []byte {
	d := h.Digest()
	return append([]byte("bssig-h\x00"), d[:]...)
}

// HeaderMsg broadcasts a header.
type HeaderMsg struct {
	Header *Header
}

func (m *HeaderMsg) Type() types.MsgType { return MsgHeader }
func (m *HeaderMsg) WireSize() int {
	return 1 + 2 + 8 + 66 +
		len(m.Header.Refs)*(2+8+types.DigestSize) +
		len(m.Header.Parents)*(2+8+types.DigestSize)
}

// HeaderVote acknowledges a header (first per author-round, data present).
type HeaderVote struct {
	Author types.NodeID
	Round  Round
	Header types.Digest
	Voter  types.NodeID
	Sig    []byte
}

func (m *HeaderVote) Type() types.MsgType { return MsgHeaderVote }
func (m *HeaderVote) WireSize() int       { return 1 + 2 + 8 + types.DigestSize + 2 + 66 }

// SigningBytes binds author, round and header digest.
func (m *HeaderVote) SigningBytes() []byte {
	out := make([]byte, 0, 20+types.DigestSize)
	out = append(out, []byte("bsvote\x00\x00")...)
	var b [10]byte
	binary.LittleEndian.PutUint16(b[:], uint16(m.Author))
	binary.LittleEndian.PutUint64(b[2:], uint64(m.Round))
	out = append(out, b[:]...)
	return append(out, m.Header[:]...)
}

// Cert is a Narwhal availability certificate: 2f+1 votes over a header.
type Cert struct {
	Author types.NodeID
	Round  Round
	Header types.Digest
	Shares []types.SigShare
}

// Ref returns the cert's identity reference.
func (c *Cert) Ref() CertRef { return CertRef{Author: c.Author, Round: c.Round, Header: c.Header} }

func (c *Cert) Type() types.MsgType { return MsgCert }
func (c *Cert) WireSize() int {
	return 1 + 2 + 8 + types.DigestSize + 4 + len(c.Shares)*68
}

// BatchMsg streams a batch (single co-located worker, RB elided — §6).
type BatchMsg struct {
	Batch *types.Batch
}

func (m *BatchMsg) Type() types.MsgType { return MsgBatch }
func (m *BatchMsg) WireSize() int       { return 1 + m.Batch.WireSize() }

// BatchPull requests missing referenced batches from a header's author.
type BatchPull struct {
	Refs      []BatchRef
	Requester types.NodeID
}

func (m *BatchPull) Type() types.MsgType { return MsgBatchPull }
func (m *BatchPull) WireSize() int       { return 1 + 2 + 4 + len(m.Refs)*(2+8+types.DigestSize) }

// BatchPush answers a BatchPull.
type BatchPush struct {
	Batches []*types.Batch
}

func (m *BatchPush) Type() types.MsgType { return MsgBatchPush }
func (m *BatchPush) WireSize() int {
	n := 1 + 4
	for _, b := range m.Batches {
		n += b.WireSize()
	}
	return n
}

// CertPull requests certificates (and their headers) the requester is
// missing: either specific references (to validate a header's parents) or
// a whole round range [FromRound, ToRound] (straggler catch-up after a
// crash or partition — Narwhal's certificate synchronization).
type CertPull struct {
	Refs      []CertRef
	FromRound Round
	ToRound   Round
	Requester types.NodeID
}

func (m *CertPull) Type() types.MsgType { return MsgCertPull }
func (m *CertPull) WireSize() int       { return 1 + 2 + 8 + 8 + 4 + len(m.Refs)*(2+8+types.DigestSize) }

// CertPush answers a CertPull with certs and their headers.
type CertPush struct {
	Certs   []*Cert
	Headers []*Header
}

func (m *CertPush) Type() types.MsgType { return MsgCertPush }
func (m *CertPush) WireSize() int {
	n := 1 + 8
	for _, c := range m.Certs {
		n += c.WireSize()
	}
	for _, h := range m.Headers {
		n += (&HeaderMsg{Header: h}).WireSize()
	}
	return n
}
