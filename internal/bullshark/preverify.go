package bullshark

import (
	"fmt"

	"repro/internal/crypto"
	"repro/internal/runtime"
	"repro/internal/types"
)

// Staged-ingress mirror for the Bullshark baseline (see the hotstuff
// twin): header, vote and certificate signatures are checkable without
// DAG state, so they run on the transport's parallel verification stage.

var _ runtime.PreVerifier = (*Node)(nil)

// PreVerify checks m's signatures without touching DAG state (immutable
// config + thread-safe verifier only). Safe for concurrent use.
func (n *Node) PreVerify(from types.NodeID, m types.Message) error {
	if !n.cfg.VerifySigs {
		return nil
	}
	switch msg := m.(type) {
	case *HeaderMsg:
		return verifyHeaderSig(n.verifier, msg.Header)
	case *HeaderVote:
		if !n.verifier.Verify(msg.Voter, msg.SigningBytes(), msg.Sig) {
			return fmt.Errorf("bullshark: bad header-vote signature from %s", msg.Voter)
		}
		return nil
	case *Cert:
		return verifyCert(n.cfg.Committee, n.verifier, msg)
	case *CertPush:
		for _, h := range msg.Headers {
			if err := verifyHeaderSig(n.verifier, h); err != nil {
				return err
			}
		}
		for _, c := range msg.Certs {
			if err := verifyCert(n.cfg.Committee, n.verifier, c); err != nil {
				return err
			}
		}
		return nil
	}
	return nil
}

func verifyHeaderSig(v crypto.Verifier, h *Header) error {
	if !v.Verify(h.Author, h.SigningBytes(), h.Sig) {
		return fmt.Errorf("bullshark: bad header signature from %s", h.Author)
	}
	return nil
}

// verifyCert is the stateless certificate check shared by the inline
// path and the pre-verification pipeline (batch-verified shares).
func verifyCert(committee types.Committee, v crypto.Verifier, c *Cert) error {
	if len(c.Shares) < committee.Quorum() {
		return fmt.Errorf("bullshark: cert has %d shares, need %d", len(c.Shares), committee.Quorum())
	}
	if _, err := crypto.DistinctSigners(committee, c.Shares); err != nil {
		return err
	}
	bv := crypto.NewBatchVerifier(v)
	probe := HeaderVote{Author: c.Author, Round: c.Round, Header: c.Header}
	msg := probe.SigningBytes()
	for _, sh := range c.Shares {
		bv.Add(sh.Signer, msg, sh.Sig)
	}
	// Whole-cert verdict memoized (VerifyCache verifiers): a DAG cert is
	// re-verified once per child header that references it, which the
	// memo collapses to one lookup per re-arrival.
	return bv.VerifyCert("bullshark-cert")
}
