// Package bullshark implements the paper's DAG-BFT baseline (§6): a
// Narwhal-style certified DAG (per-round headers certified by 2f+1 votes,
// each referencing 2f+1 previous-round certificates) with the partially
// synchronous Bullshark commit rule (an anchor every two rounds, committed
// once f+1 next-round headers link to it; committed anchors order their
// causal history deterministically).
//
// Faithful to the systems the paper measures, data synchronization sits on
// the timeout-critical path: replicas vote for a header only once they
// hold all referenced batches and parent certificates, pulling what they
// miss from the header's author. Matching the paper's setup (single
// co-located worker), batches are broadcast directly and reliable
// broadcast at the worker layer is elided.
package bullshark

import (
	"sort"
	"time"

	"repro/internal/crypto"
	"repro/internal/runtime"
	"repro/internal/types"
)

// Config parameterizes a Bullshark replica.
type Config struct {
	Committee  types.Committee
	Self       types.NodeID
	Suite      crypto.Suite
	VerifySigs bool
	// MaxRefsPerHeader bounds batch references per header (default 32) —
	// the round-paced dissemination that slows post-partition recovery.
	MaxRefsPerHeader int
	// AnchorWait is how long a replica waits for the anchor certificate
	// beyond the 2f+1 quorum before advancing rounds (default 150ms),
	// the partially-synchronous Bullshark timeout.
	AnchorWait time.Duration
	// Sink receives execution-ready batches.
	Sink runtime.CommitSink
}

func (c *Config) fill() {
	if c.MaxRefsPerHeader == 0 {
		c.MaxRefsPerHeader = 32
	}
	if c.AnchorWait == 0 {
		c.AnchorWait = 150 * time.Millisecond
	}
	if c.Sink == nil {
		c.Sink = runtime.NopSink
	}
}

const (
	tagAnchorWait uint8 = iota + 1
	tagHeaderRetx
)

// headerRetransmit is how often an uncertified header is re-broadcast
// (TCP would retransmit transparently; the simulator models broken links
// as losses, so the protocol resends — required for partition recovery).
const headerRetransmit = 500 * time.Millisecond

// pullThrottle bounds repeated BatchPull/CertPull for one pending header.
const pullThrottle = 300 * time.Millisecond

// Node is one Bullshark replica.
type Node struct {
	cfg      Config
	signer   crypto.Signer
	verifier crypto.Verifier

	round Round // current DAG round (next header to produce)

	headers map[types.Digest]*Header
	certs   map[Round]map[types.NodeID]*Cert
	// votes collected for our own current header
	myHeader   *Header
	myVotes    map[types.NodeID]types.SigShare
	myCertDone bool
	myCert     *Cert
	// lastRetxRound detects rounds stuck across retransmit ticks.
	lastRetxRound Round
	// votedFor tracks the first header voted per (round, author).
	votedFor map[Round]map[types.NodeID]types.Digest

	batchStore map[types.Digest]*types.Batch
	unproposed []BatchRef
	inDAG      map[types.Digest]Round // refs seen in any header

	// Headers whose vote is blocked on missing batches/parents.
	pendingVotes map[types.Digest]*pendingHeader
	// lastCertSync throttles round-range catch-up pulls.
	lastCertSync time.Duration

	// Commit state.
	lastAnchorRound Round
	ordered         map[types.Digest]bool // certs already ordered
	execQueue       []execItem
	executedRef     map[types.Digest]bool

	anchorTimerArmed bool

	stats Stats
}

type execItem struct {
	ref   BatchRef
	round Round
}

type pendingHeader struct {
	h        *Header
	lastPull time.Duration
}

// Stats counts protocol events.
type Stats struct {
	HeadersProposed  uint64
	CertsFormed      uint64
	AnchorsCommitted uint64
	BatchesExecuted  uint64
	TxExecuted       uint64
	BatchPulls       uint64
	CertPulls        uint64
}

var _ runtime.Protocol = (*Node)(nil)

// NewNode builds a Bullshark replica.
func NewNode(cfg Config) *Node {
	cfg.fill()
	verifier := cfg.Suite.Verifier()
	if cfg.VerifySigs {
		// Memoized: inline checks of pre-verified messages are cache hits.
		verifier = crypto.NewVerifyCache(verifier, 0)
	}
	return &Node{
		cfg:          cfg,
		signer:       cfg.Suite.Signer(cfg.Self),
		verifier:     verifier,
		round:        1,
		headers:      make(map[types.Digest]*Header),
		certs:        make(map[Round]map[types.NodeID]*Cert),
		votedFor:     make(map[Round]map[types.NodeID]types.Digest),
		batchStore:   make(map[types.Digest]*types.Batch),
		inDAG:        make(map[types.Digest]Round),
		pendingVotes: make(map[types.Digest]*pendingHeader),
		ordered:      make(map[types.Digest]bool),
		executedRef:  make(map[types.Digest]bool),
	}
}

// Stats returns a counter snapshot.
func (n *Node) Stats() Stats { return n.stats }

// Round returns the replica's current DAG round (tests).
func (n *Node) Round() Round { return n.round }

// anchorAuthor returns the anchor (leader) of a wave; wave w covers
// rounds 2w-1 (anchor) and 2w (support).
func (n *Node) anchorAuthor(w uint64) types.NodeID {
	return types.NodeID(w % uint64(n.cfg.Committee.Size()))
}

func anchorRound(w uint64) Round { return Round(2*w - 1) }

func waveOf(r Round) (uint64, bool) {
	if r%2 == 1 {
		return (uint64(r) + 1) / 2, true
	}
	return uint64(r) / 2, false
}

// Init emits the genesis-round header and arms the retransmit loop.
func (n *Node) Init(ctx runtime.Context) {
	n.produceHeader(ctx)
	ctx.SetTimer(headerRetransmit, runtime.TimerTag{Kind: tagHeaderRetx})
}

// OnClientBatch stores and streams a batch, queueing its reference for
// this replica's next header.
func (n *Node) OnClientBatch(ctx runtime.Context, b *types.Batch) {
	d := b.Digest()
	n.batchStore[d] = b
	n.unproposed = append(n.unproposed, BatchRef{Origin: b.Origin, Seq: b.Seq, Digest: d})
	ctx.Broadcast(&BatchMsg{Batch: b})
}

// OnTimer handles the anchor-wait expiry (advance without the anchor) and
// the header retransmit loop.
func (n *Node) OnTimer(ctx runtime.Context, tag runtime.TimerTag) {
	switch tag.Kind {
	case tagAnchorWait:
		if Round(tag.A) != n.round {
			return
		}
		n.anchorTimerArmed = false
		n.tryAdvance(ctx, true)
	case tagHeaderRetx:
		if n.myHeader != nil && !n.myCertDone {
			// Our header never certified: the broadcast or its votes were
			// lost (partition) — repeat it.
			ctx.Broadcast(&HeaderMsg{Header: n.myHeader})
		} else if n.myCert != nil && n.round == n.lastRetxRound {
			// Certified but the round is stuck: peers may be missing our
			// certificate (cert broadcasts lost to a partition are never
			// resent otherwise, deadlocking round advancement).
			ctx.Broadcast(n.myCert)
		}
		n.lastRetxRound = n.round
		ctx.SetTimer(headerRetransmit, runtime.TimerTag{Kind: tagHeaderRetx})
	}
}

// OnMessage dispatches peer messages.
func (n *Node) OnMessage(ctx runtime.Context, from types.NodeID, m types.Message) {
	switch msg := m.(type) {
	case *HeaderMsg:
		n.onHeader(ctx, from, msg.Header)
	case *HeaderVote:
		n.onVote(ctx, from, msg)
	case *Cert:
		n.onCert(ctx, msg)
	case *BatchMsg:
		n.onBatchData(ctx, msg.Batch)
	case *BatchPull:
		var push BatchPush
		for _, ref := range msg.Refs {
			if b, ok := n.batchStore[ref.Digest]; ok {
				push.Batches = append(push.Batches, b)
			}
		}
		if len(push.Batches) > 0 {
			ctx.Send(msg.Requester, &push)
		}
	case *BatchPush:
		for _, b := range msg.Batches {
			n.onBatchData(ctx, b)
		}
	case *CertPull:
		var push CertPush
		appendCert := func(c *Cert) {
			push.Certs = append(push.Certs, c)
			if h, ok := n.headers[c.Header]; ok {
				push.Headers = append(push.Headers, h)
			}
		}
		for _, ref := range msg.Refs {
			if c := n.certOf(ref.Round, ref.Author); c != nil {
				appendCert(c)
			}
		}
		if msg.ToRound >= msg.FromRound && msg.ToRound > 0 {
			to := msg.ToRound
			if to > msg.FromRound+64 {
				to = msg.FromRound + 64 // bounded catch-up per request
			}
			for r := msg.FromRound; r <= to; r++ {
				for _, id := range n.cfg.Committee.Nodes() {
					if c := n.certOf(r, id); c != nil {
						appendCert(c)
					}
				}
			}
		}
		if len(push.Certs) > 0 {
			ctx.Send(msg.Requester, &push)
		}
	case *CertPush:
		for _, h := range msg.Headers {
			d := h.Digest()
			if _, dup := n.headers[d]; !dup {
				n.headers[d] = h
				n.noteHeaderRefs(h)
			}
		}
		for _, c := range msg.Certs {
			n.onCert(ctx, c)
		}
	}
}

func (n *Node) certOf(r Round, author types.NodeID) *Cert {
	if byAuthor, ok := n.certs[r]; ok {
		return byAuthor[author]
	}
	return nil
}

// --- header production & round advancement ---

func (n *Node) produceHeader(ctx runtime.Context) {
	take := min(len(n.unproposed), n.cfg.MaxRefsPerHeader)
	h := &Header{
		Author: n.cfg.Self,
		Round:  n.round,
		Refs:   n.unproposed[:take:take],
	}
	n.unproposed = n.unproposed[take:]
	if n.round > 1 {
		for _, id := range n.cfg.Committee.Nodes() {
			if c := n.certOf(n.round-1, id); c != nil {
				h.Parents = append(h.Parents, c.Ref())
			}
		}
	}
	h.Sig = n.signer.Sign(h.SigningBytes())
	n.myHeader = h
	n.myVotes = make(map[types.NodeID]types.SigShare)
	n.myCertDone = false
	n.stats.HeadersProposed++
	d := h.Digest()
	n.headers[d] = h
	n.noteHeaderRefs(h)
	ctx.Broadcast(&HeaderMsg{Header: h})
	// Self-vote.
	v := &HeaderVote{Author: h.Author, Round: h.Round, Header: d, Voter: n.cfg.Self}
	v.Sig = n.signer.Sign(v.SigningBytes())
	n.collectVote(ctx, v)
}

func (n *Node) noteHeaderRefs(h *Header) {
	for _, r := range h.Refs {
		if _, ok := n.inDAG[r.Digest]; !ok {
			n.inDAG[r.Digest] = h.Round
		}
		for i, u := range n.unproposed {
			if u.Digest == r.Digest {
				n.unproposed = append(n.unproposed[:i], n.unproposed[i+1:]...)
				break
			}
		}
	}
}

// tryAdvance moves to the next round once 2f+1 certificates of the
// current round exist — waiting briefly for the anchor's certificate in
// anchor rounds (the partially-synchronous commit timeout). A straggler
// holding certificate quorums for several rounds (after catch-up sync)
// jumps forward without anchor waits.
func (n *Node) tryAdvance(ctx runtime.Context, timedOut bool) {
	for {
		byAuthor := n.certs[n.round]
		if len(byAuthor) < n.cfg.Committee.Quorum() {
			return
		}
		behind := len(n.certs[n.round+1]) > 0
		if !timedOut && !behind {
			// Wait for the anchor cert when closing an anchor round at
			// the live frontier.
			w, isAnchor := waveOf(n.round)
			if isAnchor {
				if _, ok := byAuthor[n.anchorAuthor(w)]; !ok {
					if !n.anchorTimerArmed {
						n.anchorTimerArmed = true
						ctx.SetTimer(n.cfg.AnchorWait, runtime.TimerTag{Kind: tagAnchorWait, A: uint64(n.round)})
					}
					return
				}
			}
		}
		n.anchorTimerArmed = false
		timedOut = false
		n.round++
		n.produceHeader(ctx)
	}
}

// --- header votes & certificates ---

func (n *Node) onHeader(ctx runtime.Context, from types.NodeID, h *Header) {
	if h.Author != from || !n.cfg.Committee.Valid(h.Author) {
		return
	}
	if n.cfg.VerifySigs && !n.verifier.Verify(h.Author, h.SigningBytes(), h.Sig) {
		return
	}
	d := h.Digest()
	if _, dup := n.headers[d]; dup {
		// Retransmitted header: if we already voted for it, our earlier
		// vote may have been lost (partition) — resend idempotently.
		if prev, voted := n.votedFor[h.Round][h.Author]; voted && prev == d && h.Author != n.cfg.Self {
			v := &HeaderVote{Author: h.Author, Round: h.Round, Header: d, Voter: n.cfg.Self}
			v.Sig = n.signer.Sign(v.SigningBytes())
			ctx.Send(h.Author, v)
		}
		return
	}
	if h.Round > 1 && len(h.Parents) < n.cfg.Committee.Quorum() {
		return
	}
	n.headers[d] = h
	n.noteHeaderRefs(h)
	n.tryVoteHeader(ctx, h)
}

// tryVoteHeader votes once per (round, author), only with all referenced
// batches and parent certificates locally present (data synchronization on
// the timeout-critical path, as in the measured systems).
func (n *Node) tryVoteHeader(ctx runtime.Context, h *Header) {
	byAuthor := n.votedFor[h.Round]
	if byAuthor == nil {
		byAuthor = make(map[types.NodeID]types.Digest)
		n.votedFor[h.Round] = byAuthor
	}
	d := h.Digest()
	if prev, voted := byAuthor[h.Author]; voted {
		if prev != d {
			return // equivocation: never vote twice per (round, author)
		}
		return
	}
	var missingBatches []BatchRef
	for _, r := range h.Refs {
		if _, ok := n.batchStore[r.Digest]; !ok {
			missingBatches = append(missingBatches, r)
		}
	}
	var missingCerts []CertRef
	for _, p := range h.Parents {
		if c := n.certOf(p.Round, p.Author); c == nil {
			missingCerts = append(missingCerts, p)
		}
	}
	if len(missingBatches) > 0 || len(missingCerts) > 0 {
		ph := n.pendingVotes[d]
		if ph == nil {
			// Grace period before the first pull: referenced batches are
			// usually already in flight (the broadcast races the header),
			// and eager pulls duplicate bulk traffic into an already-busy
			// ingest pipeline.
			ph = &pendingHeader{h: h, lastPull: ctx.Now()}
			n.pendingVotes[d] = ph
			return
		}
		if ctx.Now()-ph.lastPull >= pullThrottle {
			ph.lastPull = ctx.Now()
			if len(missingBatches) > 0 {
				n.stats.BatchPulls++
				ctx.Send(h.Author, &BatchPull{Refs: missingBatches, Requester: n.cfg.Self})
			}
			if len(missingCerts) > 0 {
				n.stats.CertPulls++
				ctx.Send(h.Author, &CertPull{Refs: missingCerts, Requester: n.cfg.Self})
			}
		}
		return
	}
	delete(n.pendingVotes, d)
	byAuthor[h.Author] = d
	v := &HeaderVote{Author: h.Author, Round: h.Round, Header: d, Voter: n.cfg.Self}
	v.Sig = n.signer.Sign(v.SigningBytes())
	if h.Author == n.cfg.Self {
		n.collectVote(ctx, v)
	} else {
		ctx.Send(h.Author, v)
	}
}

func (n *Node) retryPending(ctx runtime.Context) {
	for _, ph := range n.pendingVotes {
		n.tryVoteHeader(ctx, ph.h)
	}
}

func (n *Node) onBatchData(ctx runtime.Context, b *types.Batch) {
	d := b.Digest()
	if _, dup := n.batchStore[d]; dup {
		return
	}
	n.batchStore[d] = b
	if _, inDag := n.inDAG[d]; !inDag && !n.executedRef[d] && b.Origin != n.cfg.Self {
		// Not our batch to propose: Narwhal primaries only reference their
		// own worker's batches; nothing to queue.
		_ = d
	}
	n.retryPending(ctx)
	n.drainExecQueue(ctx)
}

func (n *Node) onVote(ctx runtime.Context, from types.NodeID, v *HeaderVote) {
	if from != v.Voter {
		return
	}
	if n.cfg.VerifySigs && !n.verifier.Verify(v.Voter, v.SigningBytes(), v.Sig) {
		return
	}
	n.collectVote(ctx, v)
}

func (n *Node) collectVote(ctx runtime.Context, v *HeaderVote) {
	if n.myHeader == nil || n.myCertDone || v.Round != n.myHeader.Round || v.Header != n.myHeader.Digest() {
		return
	}
	if _, dup := n.myVotes[v.Voter]; dup {
		return
	}
	n.myVotes[v.Voter] = types.SigShare{Signer: v.Voter, Sig: v.Sig}
	if len(n.myVotes) < n.cfg.Committee.Quorum() {
		return
	}
	c := &Cert{Author: n.cfg.Self, Round: v.Round, Header: v.Header}
	for _, id := range n.cfg.Committee.Nodes() {
		if sh, ok := n.myVotes[id]; ok {
			c.Shares = append(c.Shares, sh)
		}
	}
	n.stats.CertsFormed++
	n.myCertDone = true
	n.myCert = c
	ctx.Broadcast(c)
	n.onCert(ctx, c)
}

func (n *Node) onCert(ctx runtime.Context, c *Cert) {
	if !n.cfg.Committee.Valid(c.Author) || c.Round == 0 {
		return
	}
	if n.cfg.VerifySigs && !n.verifyCert(c) {
		return
	}
	byAuthor := n.certs[c.Round]
	if byAuthor == nil {
		byAuthor = make(map[types.NodeID]*Cert)
		n.certs[c.Round] = byAuthor
	}
	if _, dup := byAuthor[c.Author]; dup {
		return
	}
	byAuthor[c.Author] = c
	n.retryPending(ctx) // a parent cert may unblock header votes
	n.tryCommit(ctx, c)
	// Straggler catch-up: a cert far ahead of our round means we missed
	// intermediate rounds (crash/partition); pull them so we can rejoin.
	if c.Round > n.round && ctx.Now()-n.lastCertSync >= pullThrottle {
		n.lastCertSync = ctx.Now()
		n.stats.CertPulls++
		ctx.Send(c.Author, &CertPull{FromRound: n.round, ToRound: c.Round, Requester: n.cfg.Self})
	}
	n.tryAdvance(ctx, false)
}

func (n *Node) verifyCert(c *Cert) bool {
	return verifyCert(n.cfg.Committee, n.verifier, c) == nil
}

// --- Bullshark commit rule ---

// tryCommit fires when support-round certs arrive: anchor A of wave w
// (round 2w-1) commits once f+1 certs of round 2w have A among their
// parents.
func (n *Node) tryCommit(ctx runtime.Context, c *Cert) {
	w, isAnchor := waveOf(c.Round)
	if isAnchor {
		return
	}
	ar := anchorRound(w)
	if ar <= n.lastAnchorRound {
		return
	}
	anchor := n.certOf(ar, n.anchorAuthor(w))
	if anchor == nil {
		return
	}
	support := 0
	for _, sc := range n.certs[c.Round] {
		h := n.headers[sc.Header]
		if h == nil {
			continue
		}
		for _, p := range h.Parents {
			if p.Author == anchor.Author && p.Round == ar && p.Header == anchor.Header {
				support++
				break
			}
		}
	}
	if support < n.cfg.Committee.PoAQuorum() { // f+1
		return
	}
	n.commitAnchor(ctx, anchor, w)
}

// commitAnchor commits the anchor of wave w, first committing any earlier
// uncommitted anchors reachable from it (wave order), then ordering each
// anchor's yet-unordered causal history by (round, author).
func (n *Node) commitAnchor(ctx runtime.Context, anchor *Cert, w uint64) {
	// Gather earlier reachable anchors.
	type pending struct {
		cert *Cert
		wave uint64
	}
	chain := []pending{{anchor, w}}
	cur := anchor
	for v := w - 1; v >= 1; v-- {
		ar := anchorRound(v)
		if ar <= n.lastAnchorRound {
			break
		}
		prev := n.certOf(ar, n.anchorAuthor(v))
		if prev == nil || !n.reachable(cur, prev) {
			continue
		}
		chain = append(chain, pending{prev, v})
		cur = prev
	}
	// Oldest wave first.
	sort.Slice(chain, func(i, j int) bool { return chain[i].wave < chain[j].wave })
	for _, p := range chain {
		n.orderHistory(ctx, p.cert)
		n.stats.AnchorsCommitted++
	}
	n.lastAnchorRound = anchorRound(w)
	n.drainExecQueue(ctx)
}

// reachable reports whether `to` is in `from`'s causal closure.
func (n *Node) reachable(from, to *Cert) bool {
	seen := make(map[types.Digest]bool)
	stack := []*Cert{from}
	for len(stack) > 0 {
		c := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if c.Author == to.Author && c.Round == to.Round && c.Header == to.Header {
			return true
		}
		if c.Round <= to.Round {
			continue
		}
		h := n.headers[c.Header]
		if h == nil || seen[c.Header] {
			continue
		}
		seen[c.Header] = true
		for _, p := range h.Parents {
			if pc := n.certOf(p.Round, p.Author); pc != nil {
				stack = append(stack, pc)
			}
		}
	}
	return false
}

// orderHistory appends the anchor's unordered causal history to the
// execution queue, deterministically sorted by (round, author).
func (n *Node) orderHistory(ctx runtime.Context, anchor *Cert) {
	var collected []*Cert
	stack := []*Cert{anchor}
	for len(stack) > 0 {
		c := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if n.ordered[c.Header] {
			continue
		}
		n.ordered[c.Header] = true
		collected = append(collected, c)
		if h := n.headers[c.Header]; h != nil {
			for _, p := range h.Parents {
				if pc := n.certOf(p.Round, p.Author); pc != nil && !n.ordered[pc.Header] {
					stack = append(stack, pc)
				}
			}
		}
	}
	sort.Slice(collected, func(i, j int) bool {
		if collected[i].Round != collected[j].Round {
			return collected[i].Round < collected[j].Round
		}
		return collected[i].Author < collected[j].Author
	})
	for _, c := range collected {
		h := n.headers[c.Header]
		if h == nil {
			continue
		}
		for _, r := range h.Refs {
			n.execQueue = append(n.execQueue, execItem{ref: r, round: c.Round})
		}
	}
}

// drainExecQueue executes ordered batches strictly in order, stalling on
// missing data (pulled via retryPending paths).
func (n *Node) drainExecQueue(ctx runtime.Context) {
	for len(n.execQueue) > 0 {
		item := n.execQueue[0]
		if n.executedRef[item.ref.Digest] {
			n.execQueue = n.execQueue[1:]
			continue
		}
		b, ok := n.batchStore[item.ref.Digest]
		if !ok {
			// Pull from the batch origin; execution resumes on arrival.
			n.stats.BatchPulls++
			ctx.Send(item.ref.Origin, &BatchPull{Refs: []BatchRef{item.ref}, Requester: n.cfg.Self})
			return
		}
		n.executedRef[item.ref.Digest] = true
		n.execQueue = n.execQueue[1:]
		n.stats.BatchesExecuted++
		n.stats.TxExecuted += uint64(b.Count)
		n.cfg.Sink.OnCommit(n.cfg.Self, ctx.Now(), runtime.Committed{
			Lane:     b.Origin,
			Position: types.Pos(b.Seq),
			Slot:     types.Slot(item.round),
			Batch:    b,
		})
	}
}

// DebugState exposes internals for tests.
func (n *Node) DebugState() (round Round, certDone bool, myVotes, pendingVotes, votedForRound int) {
	vf := 0
	if m, ok := n.votedFor[n.round]; ok {
		vf = len(m)
	}
	return n.round, n.myCertDone, len(n.myVotes), len(n.pendingVotes), vf
}
