package bullshark_test

import (
	"testing"
	"time"

	"repro/internal/bullshark"
	"repro/internal/crypto"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/types"
	"repro/internal/workload"
)

func newBSCluster(n int, faults *sim.FaultSchedule, verify bool) (*sim.Engine, *metrics.Recorder, []*bullshark.Node) {
	committee := types.NewCommittee(n)
	var suite crypto.Suite
	if verify {
		suite = crypto.NewEd25519Suite(n, 11)
	} else {
		suite = crypto.NewNopSuite(n)
	}
	rec := metrics.NewRecorder(5 * time.Minute)
	eng := sim.NewEngine(sim.Config{
		Net:    sim.NewNetwork(sim.DefaultNetConfig(sim.IntraUSTopology())),
		Faults: faults,
		Seed:   11,
	})
	var nodes []*bullshark.Node
	for i := 0; i < n; i++ {
		nd := bullshark.NewNode(bullshark.Config{
			Committee:  committee,
			Self:       types.NodeID(i),
			Suite:      suite,
			VerifySigs: verify,
			Sink:       rec.Sink(),
		})
		nodes = append(nodes, nd)
		eng.AddNode(nd)
	}
	return eng, rec, nodes
}

func ids(n int) []types.NodeID {
	out := make([]types.NodeID, n)
	for i := range out {
		out[i] = types.NodeID(i)
	}
	return out
}

func TestBullsharkCommits(t *testing.T) {
	eng, rec, nodes := newBSCluster(4, nil, false)
	workload.Install(eng, ids(4), workload.Config{TotalRate: 20000, Start: 0, End: 10 * time.Second})
	eng.Run(15 * time.Second)
	total := rec.Total()
	if total < 190_000 {
		t.Fatalf("committed only %d of ~200000", total)
	}
	lat := rec.MeanLatency(2*time.Second, 9*time.Second)
	if lat <= 0 || lat > 2*time.Second {
		t.Fatalf("implausible latency %v", lat)
	}
	s := nodes[0].Stats()
	if s.AnchorsCommitted == 0 || s.CertsFormed == 0 {
		t.Fatalf("no DAG progress: %+v", s)
	}
	t.Logf("committed=%d lat=%v p99=%v anchors=%d round=%d", total, lat, rec.Percentile(0.99), s.AnchorsCommitted, nodes[0].Round())
}

func TestBullsharkWithRealSignatures(t *testing.T) {
	eng, rec, _ := newBSCluster(4, nil, true)
	workload.Install(eng, ids(4), workload.Config{TotalRate: 4000, Start: 0, End: 3 * time.Second})
	eng.Run(6 * time.Second)
	if rec.Total() < 10_000 {
		t.Fatalf("committed only %d with real crypto", rec.Total())
	}
}

func TestBullsharkAnchorFailure(t *testing.T) {
	// Crash one replica for 2s: anchors it owns are skipped; later anchors
	// commit the skipped rounds' history. Throughput must fully recover.
	faults := (&sim.FaultSchedule{}).AddDown(2, 4*time.Second, 6*time.Second)
	eng, rec, _ := newBSCluster(4, faults, false)
	workload.Install(eng, ids(4), workload.Config{TotalRate: 20000, Start: 0, End: 15 * time.Second})
	eng.Run(22 * time.Second)
	total := rec.Total()
	if total < 270_000 { // 300k minus the crashed replica's in-window share
		t.Fatalf("committed only %d across anchor failure", total)
	}
	t.Logf("committed=%d", total)
}

func TestBullsharkStallsDuringPartition(t *testing.T) {
	// The DAG needs 2f+1 certs per round: a 2-2 split must stall round
	// advancement entirely (unlike Autobahn's lanes). After heal, the
	// backlog commits.
	faults := (&sim.FaultSchedule{}).SplitPartition(4, []types.NodeID{2, 3}, 5*time.Second, 10*time.Second)
	eng, rec, nodes := newBSCluster(4, faults, false)
	workload.Install(eng, ids(4), workload.Config{TotalRate: 10000, Start: 0, End: 15 * time.Second})

	eng.Run(7 * time.Second)
	midRound := nodes[0].Round()
	eng.Run(10 * time.Second)
	if nodes[0].Round() > midRound+1 {
		t.Fatalf("DAG advanced during partition: %d -> %d", midRound, nodes[0].Round())
	}
	eng.Run(35 * time.Second)
	total := rec.Total()
	if total < 140_000 {
		t.Fatalf("committed only %d of ~150000 after partition heal", total)
	}
	t.Logf("committed=%d finalRound=%d", total, nodes[0].Round())
}
