//go:build race

package harness

// raceDetector reports whether this test binary runs under the race
// detector, which slows signature verification and the event loops
// roughly an order of magnitude; timing-sensitive live cells scale
// their load and stall thresholds proportionately.
const raceDetector = true
