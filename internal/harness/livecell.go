package harness

import (
	"fmt"
	"log"
	"net"
	"sync/atomic"
	"time"

	autobahn "repro"
	"repro/internal/transport"
	"repro/internal/types"
)

// LiveCellConfig parameterizes one real-runtime fault-matrix cell: a
// 4-replica TCP loopback cluster, optionally with one Byzantine replica
// (replica 2) and a link-fault profile on every mesh, under a paced
// open-loop load. Both the CI bench (`cmd/bench -exp faultmatrix`) and
// the -race e2e tests drive cells through this one runner, so floor
// semantics, drain behavior and observer wiring cannot diverge between
// them.
type LiveCellConfig struct {
	// N is the committee size (default 4). Larger committees exercise
	// the large-committee fast path (gossip, delta cuts) end to end.
	N int
	// GossipFanout, when > 0, enables fanout-k car gossip on every
	// replica (Options.GossipFanout).
	GossipFanout int
	// DeltaCuts enables delta-compressed cut frames on every replica.
	DeltaCuts bool
	// Adversary names the behavior replica 2 runs ("" = all honest).
	Adversary string
	// Rule, when non-zero, is installed on every replica's egress.
	Rule transport.LinkRule
	Seed uint64
	// Rate is the submission rate (tx/s); load runs for Duration.
	Rate     float64
	Duration time.Duration
	// DrainTimeout bounds how long past the load the cell waits for
	// every replica to reach the commit floor (default 30s).
	DrainTimeout time.Duration
	// Logger receives replica transport logs (nil = discard-ish default).
	Logger *log.Logger
}

// LiveCellResult reports one cell's outcome. Err is non-nil only for
// infrastructure failures (port allocation, replica start) — callers
// treat those as SKIP/fatal, not as protocol verdicts.
type LiveCellResult struct {
	Submitted int
	// SubmittedHonest counts transactions entrusted to honest replicas;
	// the Floor covers only these. A Byzantine replica's own lane has no
	// progress guarantee (it can wedge itself by losing a self-fork
	// commit race — §A.4/§B.1; real clients time out and resubmit
	// elsewhere), but everything submitted to honest replicas must
	// commit at every replica, the adversary included.
	SubmittedHonest int
	Floor           uint64
	// PerReplica is each replica's committed transaction count;
	// MinCommitted the minimum (the liveness verdict is
	// MinCommitted >= Floor).
	PerReplica   []uint64
	MinCommitted uint64
	// Violation is the safety oracle's verdict ("" = safe), fed from
	// every replica's synchronous commit observer.
	Violation string
	Elapsed   time.Duration
	// LinkStats reports injected link faults (nil without a Rule).
	LinkStats *LinkFaultStats
	Err       error
}

// LinkFaultStats re-exports the transport counters for reporting.
type LinkFaultStats = transport.LinkFaultStats

// RunLiveTCPCell executes one cell; see LiveCellConfig.
func RunLiveTCPCell(cfg LiveCellConfig) LiveCellResult {
	n := cfg.N
	if n == 0 {
		n = 4
	}
	if cfg.DrainTimeout == 0 {
		cfg.DrainTimeout = 30 * time.Second
	}
	res := LiveCellResult{PerReplica: make([]uint64, n)}
	addrs, err := freeLoopbackAddrs(n)
	if err != nil {
		res.Err = err
		return res
	}
	opts := autobahn.Options{
		N: n, Seed: cfg.Seed, MaxBatchDelay: 10 * time.Millisecond,
		GossipFanout: cfg.GossipFanout, DeltaCuts: cfg.DeltaCuts,
	}
	if cfg.Adversary != "" {
		opts.Adversaries = map[types.NodeID]string{2: cfg.Adversary}
	}
	var faults *transport.LinkFaults
	if !cfg.Rule.Zero() {
		faults = transport.NewLinkFaults(cfg.Seed).SetAll(cfg.Rule)
		opts.LinkFaults = faults
	}

	ci := NewCommitInterceptor()
	perReplica := make([]atomic.Uint64, n)
	replicas := make([]*autobahn.Replica, n)
	defer func() {
		for _, r := range replicas {
			if r != nil {
				r.Stop()
			}
		}
	}()
	for i := 0; i < n; i++ {
		r, err := autobahn.NewReplica(types.NodeID(i), addrs, opts, cfg.Logger)
		if err != nil {
			res.Err = err
			return res
		}
		// The safety oracle taps the synchronous observer, not the
		// Commits channel: the channel drops under backpressure, and a
		// gap would misalign the oracle's log comparison.
		id := types.NodeID(i)
		r.SetCommitObserver(func(c autobahn.Committed) {
			ci.Record(id, c.Lane, c.Position, c.Batch.Digest(), c.AppHash)
			// The liveness counter tracks honest-lane commits only, to
			// match the honest-submitted floor: counting the Byzantine
			// lane's commits (including equivocation-fork batches) would
			// dilute the assertion by up to its 1/n share of the load.
			if cfg.Adversary != "" && c.Lane == 2 {
				return
			}
			perReplica[id].Add(uint64(c.Batch.Count))
		})
		if err := r.Start(); err != nil {
			res.Err = err
			return res
		}
		replicas[i] = r
	}

	// Open-loop load, round-robin across replicas.
	tx := make([]byte, 128)
	interval := time.Duration(float64(time.Second) / cfg.Rate)
	start := time.Now() //lint:allow noclock live cell measures wall-clock throughput by design
	for time.Since(start) < cfg.Duration {
		to := res.Submitted % n
		replicas[to].Submit(tx)
		res.Submitted++
		if cfg.Adversary == "" || to != 2 {
			res.SubmittedHonest++
		}
		time.Sleep(interval) //lint:allow noclock open-loop pacing needs real time
	}

	// Drain until every replica reaches the floor or the deadline.
	res.Floor = uint64(float64(res.SubmittedHonest) * 0.9)
	deadline := time.Now().Add(cfg.DrainTimeout) //lint:allow noclock drain deadline is wall-clock
	for time.Now().Before(deadline) {
		done := true
		for i := 0; i < n; i++ {
			if perReplica[i].Load() < res.Floor {
				done = false
				break
			}
		}
		if done {
			break
		}
		time.Sleep(50 * time.Millisecond) //lint:allow noclock drain polling is wall-clock
	}
	res.Elapsed = time.Since(start) //lint:allow noclock elapsed wall time is the measurement
	res.MinCommitted = perReplica[0].Load()
	for i := 0; i < n; i++ {
		res.PerReplica[i] = perReplica[i].Load()
		if res.PerReplica[i] < res.MinCommitted {
			res.MinCommitted = res.PerReplica[i]
		}
	}
	res.Violation = ci.Violation()
	if faults != nil {
		s := faults.Stats()
		res.LinkStats = &s
	}
	return res
}

// freeLoopbackAddrs reserves n distinct loopback ports by binding and
// releasing them (the standard test-harness pattern; a rare race with
// another process surfaces as a replica Start error, reported through
// LiveCellResult.Err).
func freeLoopbackAddrs(n int) (map[types.NodeID]string, error) {
	addrs := make(map[types.NodeID]string, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, fmt.Errorf("harness: reserve port: %w", err)
		}
		addrs[types.NodeID(i)] = ln.Addr().String()
		ln.Close()
	}
	return addrs, nil
}
