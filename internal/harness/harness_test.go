package harness

import (
	"os"
	"testing"
	"time"
)

// TestHeadlineComparison asserts the paper's central Fig. 5 claims at one
// high-load point: Autobahn matches Bullshark's throughput while cutting
// its latency roughly in half, and beats both HotStuff variants' latency.
func TestHeadlineComparison(t *testing.T) {
	const load = 200e3
	auto := MeasurePoint(Autobahn, 4, load, 15*time.Second, 1)
	bull := MeasurePoint(Bullshark, 4, load, 15*time.Second, 1)
	t.Logf("autobahn: tput=%.0f lat=%v", auto.Throughput, auto.MeanLat)
	t.Logf("bullshark: tput=%.0f lat=%v", bull.Throughput, bull.MeanLat)

	if auto.Throughput < 0.95*load {
		t.Errorf("Autobahn did not sustain %.0f tx/s: %.0f", load, auto.Throughput)
	}
	if bull.Throughput < 0.95*load {
		t.Errorf("Bullshark did not sustain %.0f tx/s: %.0f", load, bull.Throughput)
	}
	if ratio := float64(bull.MeanLat) / float64(auto.MeanLat); ratio < 1.6 {
		t.Errorf("latency ratio Bullshark/Autobahn = %.2f, want >= 1.6 (paper: 2.1)", ratio)
	}
}

func TestVanillaSaturatesEarly(t *testing.T) {
	ok := MeasurePoint(VanillaHS, 4, 15e3, 15*time.Second, 1)
	t.Logf("vanilla@15k: tput=%.0f lat=%v", ok.Throughput, ok.MeanLat)
	if ok.Throughput < 0.95*15e3 || ok.MeanLat > time.Second {
		t.Errorf("VanillaHS should sustain 15k tx/s comfortably: tput=%.0f lat=%v", ok.Throughput, ok.MeanLat)
	}
	sat := MeasurePoint(VanillaHS, 4, 100e3, 15*time.Second, 1)
	t.Logf("vanilla@100k: tput=%.0f lat=%v", sat.Throughput, sat.MeanLat)
	if sat.Throughput > 50e3 {
		t.Errorf("VanillaHS sustained %.0f at 100k offered; expected hard saturation well below", sat.Throughput)
	}
}

// TestBlipSeamlessness asserts the Fig. 1/7 contrast: VanillaHS suffers a
// hangover after a leader-failure blip; Autobahn recovers seamlessly.
func TestBlipSeamlessness(t *testing.T) {
	vhs := RunBlip(BlipConfig{System: VanillaHS, Load: 15e3, Duration: 25 * time.Second})
	auto := RunBlip(BlipConfig{System: Autobahn, Load: 200e3, Duration: 25 * time.Second})
	if testing.Verbose() {
		PrintBlip(os.Stdout, vhs, 25)
		PrintBlip(os.Stdout, auto, 25)
	}
	t.Logf("VanillaHS: baseline=%v peak=%v hangover=%v", vhs.Baseline, vhs.PeakLat, vhs.Hangover)
	t.Logf("Autobahn:  baseline=%v peak=%v hangover=%v", auto.Baseline, auto.PeakLat, auto.Hangover)

	// Both blip (peak latency >> baseline) — the failure is real.
	if vhs.PeakLat < 2*time.Second {
		t.Errorf("VanillaHS blip too small: peak=%v", vhs.PeakLat)
	}
	// VanillaHS hangs over; Autobahn does not.
	if vhs.Hangover < time.Second {
		t.Errorf("VanillaHS hangover = %v, expected >= 1s", vhs.Hangover)
	}
	if auto.Hangover > time.Second {
		t.Errorf("Autobahn hangover = %v, expected seamless (~0)", auto.Hangover)
	}
}

// TestRestartBlipSeamless is the recovery scenario of ISSUE 2: a replica
// crashes mid-run and its process restarts from its journal at the end
// of the down window. The cluster must commit everything with no
// hangover beyond the window, and the restarted replica must not dent
// steady-state latency after rejoining.
func TestRestartBlipSeamless(t *testing.T) {
	for _, tc := range []struct {
		name     string
		amnesia  bool
		minTotal uint64
	}{
		// Journal-backed: every offered tx commits (20k tx/s for 25s).
		{"journal-backed", false, 499_000},
		// Amnesia: the amnesiac's own lane halts (peers never vote below
		// their frontier for it), so its post-restart share of the load is
		// lost — but every other lane commits in full.
		{"amnesia", true, 425_000},
	} {
		t.Run(tc.name, func(t *testing.T) {
			r := RunRestartBlip(BlipConfig{Load: 20e3, Duration: 25 * time.Second}, tc.amnesia)
			if testing.Verbose() {
				PrintBlip(os.Stdout, r, 25)
			}
			t.Logf("baseline=%v peak=%v resume=%v hangover=%v total=%d", r.Baseline, r.PeakLat, r.BlipEnd, r.Hangover, r.Total)
			if r.Total < tc.minTotal {
				t.Errorf("committed %d txs, want >= %d", r.Total, tc.minTotal)
			}
			// No hangover beyond the down window (the seamlessness claim).
			if r.Hangover > time.Second {
				t.Errorf("restart hangover = %v, want ~0", r.Hangover)
			}
			if r.BlipEnd > r.FaultTo+time.Second {
				t.Errorf("commits resumed at %v, well past the fault end %v", r.BlipEnd, r.FaultTo)
			}
		})
	}
}

func TestAblationDirection(t *testing.T) {
	r := Ablation(4, 150e3, 12*time.Second, 1)
	t.Logf("full=%v noFast=%v certified=%v neither=%v", r.Full, r.NoFastPath, r.CertifiedTips, r.Neither)
	if r.NoFastPath <= r.Full {
		t.Errorf("disabling the fast path should cost latency: %v <= %v", r.NoFastPath, r.Full)
	}
	if r.CertifiedTips <= r.Full {
		t.Errorf("certified-only tips should cost latency: %v <= %v", r.CertifiedTips, r.Full)
	}
}

func TestPartitionContrast(t *testing.T) {
	auto := RunPartition(PartitionConfig{System: Autobahn})
	bull := RunPartition(PartitionConfig{System: Bullshark})
	vhs := RunPartition(PartitionConfig{System: VanillaHS})
	for _, r := range []PartitionResult{auto, bull, vhs} {
		t.Logf("%-10s recovery=%v worstInBlip=%v total=%d", r.System, r.Recovery, r.WorstInBlip, r.Total)
	}
	// The paper's shape: Autobahn recovers almost immediately (~1s,
	// bandwidth-bound sync only); Bullshark recovers promptly too (the
	// paper's ~9s includes TCP reconnection effects our simulator does
	// not model — see EXPERIMENTS.md); VanillaHS's hangover is
	// proportional to the blip and dwarfs both.
	if auto.Recovery > 4*time.Second {
		t.Errorf("Autobahn partition recovery %v, want small (~1-2s)", auto.Recovery)
	}
	if bull.Recovery > 8*time.Second {
		t.Errorf("Bullshark partition recovery %v, want bounded (<8s)", bull.Recovery)
	}
	if vhs.Recovery < 4*auto.Recovery || vhs.Recovery < 8*time.Second {
		t.Errorf("VanillaHS hangover should dwarf Autobahn's: %v vs %v", vhs.Recovery, auto.Recovery)
	}
}
