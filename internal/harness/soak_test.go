package harness

import (
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/types"
)

// TestSimSoakChurn runs the quick CI soak cell on the deterministic
// simulator: a full default chaos mix (rolling restarts with amnesia,
// stall windows, a storage fault, an equivocator) under load, asserting
// the safety oracle and per-window seamless recovery.
func TestSimSoakChurn(t *testing.T) {
	res, err := RunSimSoak(SoakConfig{
		Seed:     7,
		Load:     15e3,
		Duration: 30 * time.Second,
		Chaos:    chaos.Params{Start: 5 * time.Second, End: 25 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != "" {
		t.Fatalf("safety violation under churn: %s", res.Violation)
	}
	if len(res.Windows) != 6 {
		t.Fatalf("expected 6 fault windows, got %d", len(res.Windows))
	}
	if !res.Recovered {
		t.Fatalf("latency did not recover inside every gap: max hangover %v (windows %+v)",
			res.MaxHangover, res.Windows)
	}
	if res.Total == 0 {
		t.Fatal("nothing committed under churn")
	}
	t.Logf("total=%d baseline=%v max-hangover=%v", res.Total, res.Baseline, res.MaxHangover)
}

// TestSimSoakDeterministic pins the soak's replayability: the same seed
// must produce the identical run (schedule, commits, verdicts) — a
// failing soak replays from its seed.
func TestSimSoakDeterministic(t *testing.T) {
	cfg := SoakConfig{
		Seed:     3,
		Load:     10e3,
		Duration: 18 * time.Second,
		Chaos: chaos.Params{
			Start: 4 * time.Second, End: 14 * time.Second,
			Restarts: 1, DownFor: time.Second, AmnesiaMix: 1.0,
			StorageFaults: 1,
		},
	}
	a, err := RunSimSoak(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSimSoak(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Total != b.Total || a.Baseline != b.Baseline || a.MaxHangover != b.MaxHangover {
		t.Fatalf("same seed diverged: total %d/%d baseline %v/%v hangover %v/%v",
			a.Total, b.Total, a.Baseline, b.Baseline, a.MaxHangover, b.MaxHangover)
	}
	if a.Violation != "" {
		t.Fatalf("safety violation: %s", a.Violation)
	}
	// The amnesia path ran: AmnesiaMix 1.0 forces the restart to discard
	// its journal, exercising the oracle's recovery-replay tolerance.
	amnesia := false
	for _, ev := range a.Schedule.Events {
		amnesia = amnesia || ev.Amnesia
	}
	if !amnesia {
		t.Fatal("schedule has no amnesia restart despite AmnesiaMix=1")
	}
}

// TestCommitInterceptorLaneGap pins the oracle's gap check: a lane that
// commits position 3 after position 1 is a hole in a committed prefix.
func TestCommitInterceptorLaneGap(t *testing.T) {
	ci := NewCommitInterceptor()
	d := types.Digest{1}
	ci.Record(0, 1, 1, d, types.Digest{})
	ci.Record(0, 1, 3, types.Digest{3}, types.Digest{})
	if v := ci.Violation(); v == "" {
		t.Fatal("lane gap not detected")
	}
}

// TestCommitInterceptorRecoveryReplay pins NoteRecovery semantics: after
// a restart, replaying an already-recorded commit with the same batch is
// legal; replaying it with a different batch is a violation.
func TestCommitInterceptorRecoveryReplay(t *testing.T) {
	ci := NewCommitInterceptor()
	d := types.Digest{1}
	ci.Record(2, 1, 1, d, types.Digest{})
	ci.NoteRecovery(2)
	ci.Record(2, 1, 1, d, types.Digest{}) // amnesiac replay of the same commit
	if v := ci.Violation(); v != "" {
		t.Fatalf("legal recovery replay flagged: %s", v)
	}
	ci.Record(2, 1, 1, types.Digest{9}, types.Digest{}) // replay with a different batch
	if v := ci.Violation(); v == "" {
		t.Fatal("divergent replay not detected")
	}

	// Without NoteRecovery the same re-delivery is a double commit.
	ci2 := NewCommitInterceptor()
	ci2.Record(0, 0, 1, d, types.Digest{})
	ci2.Record(0, 0, 1, d, types.Digest{})
	if v := ci2.Violation(); v == "" {
		t.Fatal("duplicate commit not detected")
	}
}

// TestLiveSoakChurn drives the quick live cell end to end: real TCP
// replicas with WALs, one scheduled restart, one link-level stall window
// (the transport stall detector must fire and redial through it), and
// one poisoned WAL (the journal barrier failure must halt the replica
// fatally before anything externalizes), then checks the safety oracle,
// the eligible-load commit floor, and the leak watermarks.
func TestLiveSoakChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("live soak needs ~20s of wall time")
	}
	cfg := LiveSoakConfig{
		Seed:     7,
		Rate:     300,
		Duration: 12 * time.Second,
		Chaos:    chaos.Params{Start: 3 * time.Second, End: 9 * time.Second},
		Dir:      t.TempDir(),
		// Gateway traffic rides through the same churn: reconnecting
		// clients must resubmit through teardowns, the dedup window must
		// absorb the retries, and nothing may commit twice.
		GatewayClients: 40,
		GatewayRate:    60,
	}
	if raceDetector {
		// The race detector slows verification and the event loops ~10x
		// (and CI runs whole-repo race sweeps with packages competing
		// for cores): keep the full operational churn, but scale the
		// timing assumptions with it. A 400ms stall threshold under race
		// declares genuine slowness a stall, churning connections
		// cluster-wide; and the mempool-loss hazard slack must cover a
		// slowed submit->journal pipeline, or transactions that died
		// in a victim's memory are counted eligible and the floor
		// becomes unreachable.
		cfg.Rate = 150
		cfg.StallTimeout = 800 * time.Millisecond
		cfg.HazardSlack = 3 * time.Second
	}
	res := RunLiveSoak(cfg)
	if res.Err != nil {
		t.Fatalf("soak setup: %v", res.Err)
	}
	if res.Violation != "" {
		t.Fatalf("safety violation under operational churn: %s", res.Violation)
	}
	if res.MinCommitted < res.Floor {
		t.Fatalf("liveness: per-replica committed %v < floor %d (submitted %d, eligible %d)",
			res.PerReplica, res.Floor, res.Submitted, res.Eligible)
	}
	if res.JournalFatals < 1 {
		t.Fatalf("poisoned WAL did not halt its replica (fatals=%d)", res.JournalFatals)
	}
	if res.Stalls < 1 || res.Redials < 1 {
		t.Fatalf("stall window not detected/redialed (stalls=%d redials=%d)", res.Stalls, res.Redials)
	}
	if res.OperatorRestarts != 2 {
		t.Fatalf("expected 2 operator restarts (restart + storage), got %d", res.OperatorRestarts)
	}
	if res.GoroutineGrowth > 20 {
		t.Fatalf("goroutine leak: growth %d across the churn", res.GoroutineGrowth)
	}
	if res.FDGrowth > 16 {
		t.Fatalf("fd leak: growth %d across the churn", res.FDGrowth)
	}
	// Gateway exactly-once through the churn: every submission resolved
	// (drained), none committed twice (chain-dups), and the vast majority
	// committed despite the fault windows — the retry machinery, not luck.
	if res.GatewayChainDups != 0 {
		t.Fatalf("gateway duplicate commits under churn: %d", res.GatewayChainDups)
	}
	if !res.GatewayDrained {
		t.Fatalf("gateway submissions unresolved at drain deadline (submitted=%d committed=%d)",
			res.GatewaySubmitted, res.GatewayCommitted)
	}
	if res.GatewaySubmitted == 0 {
		t.Fatal("gateway fleet submitted nothing")
	}
	if res.GatewayCommitted < res.GatewaySubmitted*9/10 {
		t.Fatalf("gateway commit ratio collapsed: committed %d of %d (rejected %d, deduped %d, readmitted %d)",
			res.GatewayCommitted, res.GatewaySubmitted, res.GatewayRejected,
			res.GatewayDeduped, res.GatewayReadmitted)
	}
	t.Logf("submitted=%d eligible=%d floor=%d min=%d stalls=%d redials=%d fatals=%d goroutines=%+d fds=%+d",
		res.Submitted, res.Eligible, res.Floor, res.MinCommitted,
		res.Stalls, res.Redials, res.JournalFatals, res.GoroutineGrowth, res.FDGrowth)
	t.Logf("gateway: submitted=%d committed=%d rejected=%d deduped=%d readmitted=%d reconnects=%d resubmits=%d ack-drops=%d",
		res.GatewaySubmitted, res.GatewayCommitted, res.GatewayRejected,
		res.GatewayDeduped, res.GatewayReadmitted, res.GatewayReconnects,
		res.GatewayResubmits, res.GatewayAckDrops)
}
