package harness

import (
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"path/filepath"
	gort "runtime"
	"sync"
	"sync/atomic"
	"time"

	autobahn "repro"
	"repro/internal/chaos"
	"repro/internal/gateway"
	"repro/internal/storage"
	"repro/internal/transport"
	"repro/internal/types"
)

// --- simulated churn soak ---

// SoakConfig parameterizes one simulated churn soak: a cluster under
// sustained load while a seeded chaos.Schedule rolls restarts (with an
// amnesia mix), stall windows, storage faults and Byzantine behaviors
// through the committee. The zero value yields the quick CI cell; the
// nightly cell stretches Duration and the event counts.
type SoakConfig struct {
	N        int
	Seed     uint64
	Load     float64
	Duration time.Duration
	// Chaos overrides the generated schedule's parameters. Zero fault
	// counts select the default mix; N/Seed/Start/End default from the
	// fields above.
	Chaos chaos.Params
	// Execution runs the deterministic execution layer under the churn:
	// every commit carries an AppHash and the oracle additionally checks
	// cross-replica execution agreement.
	Execution bool
	// SnapshotEvery, when > 0, checkpoints and truncates every this many
	// slots during the soak — restarts then recover from the newer of
	// snapshot and journal, and far-behind replicas join via state sync.
	// Requires Execution.
	SnapshotEvery types.Slot
}

func (c *SoakConfig) fill() {
	if c.N == 0 {
		c.N = 7
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Load == 0 {
		c.Load = 20e3
	}
	if c.Duration == 0 {
		c.Duration = 40 * time.Second
	}
	ch := &c.Chaos
	if ch.N == 0 {
		ch.N = c.N
	}
	if ch.Seed == 0 {
		ch.Seed = c.Seed
	}
	if ch.Start == 0 {
		ch.Start = 6 * time.Second
	}
	if ch.End == 0 {
		ch.End = c.Duration - 8*time.Second
	}
	if ch.Restarts == 0 && ch.Stalls == 0 && ch.StorageFaults == 0 && len(ch.Behaviors) == 0 {
		ch.Restarts = 3
		ch.DownFor = 1500 * time.Millisecond
		ch.AmnesiaMix = 0.34
		ch.Stalls = 2
		ch.StallFor = 1200 * time.Millisecond
		ch.StorageFaults = 1
		// With f >= 2 there is quorum headroom for a full-run equivocator
		// alongside each benign one-at-a-time fault window.
		if f := (c.N - 1) / 3; f >= 2 {
			ch.Behaviors = []chaos.Behavior{{Node: types.NodeID(c.N - 1), Name: "equivocate", From: ch.Start, To: ch.End}}
		}
	}
}

// SoakWindow reports one fault window's seamlessness verdict.
type SoakWindow struct {
	Event chaos.Event
	// Hangover is how long past the window's end per-second latency
	// stayed above 2x the pre-chaos baseline, measured only inside this
	// window's own recovery gap (unlike Recorder.Hangover, later fault
	// windows cannot bleed into the figure).
	Hangover time.Duration
	// Recovered reports whether latency returned under the threshold
	// strictly before the next fault window opened.
	Recovered bool
}

// SoakResult is one soak's outcome.
type SoakResult struct {
	Schedule *chaos.Schedule
	Total    uint64
	Baseline time.Duration
	// Violation is the safety oracle's verdict: contradictions,
	// per-replica duplicate commits, per-lane gaps, prefix divergence
	// ("" = safe).
	Violation   string
	Windows     []SoakWindow
	MaxHangover time.Duration
	// Recovered is the conjunction over windows: after every fault the
	// cluster returned to steady state inside the recovery gap.
	Recovered bool
}

// RunSimSoak executes one churn soak on the deterministic simulator: the
// same seed replays the same schedule against the same event timeline.
func RunSimSoak(cfg SoakConfig) (SoakResult, error) {
	cfg.fill()
	sched, err := chaos.Generate(cfg.Chaos)
	if err != nil {
		return SoakResult{}, err
	}
	fs, err := sched.CompileSim()
	if err != nil {
		return SoakResult{}, err
	}
	ci := NewCommitInterceptor()
	c := Build(ClusterConfig{
		System:        Autobahn,
		N:             cfg.N,
		Seed:          cfg.Seed,
		Reputation:    true,
		Execution:     cfg.Execution,
		SnapshotEvery: cfg.SnapshotEvery,
		Faults:        fs,
		WrapSink:      ci.Wrap,
		OnRebuild:     func(id types.NodeID, _ bool) { ci.NoteRecovery(id) },
	})
	c.RunLoad(cfg.Load, 0, cfg.Duration, cfg.Duration+15*time.Second)

	rec := c.Recorder
	warm := 2 * time.Second
	if cfg.Chaos.Start <= 3*time.Second {
		warm = time.Second
	}
	baseline := rec.MeanLatency(warm, cfg.Chaos.Start)
	res := SoakResult{
		Schedule:  sched,
		Total:     rec.Total(),
		Baseline:  baseline,
		Violation: ci.Violation(),
		Recovered: true,
	}
	threshold := time.Duration(float64(baseline) * 2.0)
	series := rec.ArrivalSeries()
	for i, ev := range sched.Events {
		endSec := int((ev.To + time.Second - 1) / time.Second)
		gapEnd := int(cfg.Duration / time.Second)
		if i+1 < len(sched.Events) {
			gapEnd = int(sched.Events[i+1].From / time.Second)
		}
		last := endSec
		for _, p := range series {
			if p.Second < endSec || p.Second >= gapEnd || p.Committed == 0 {
				continue
			}
			if p.MeanLat > threshold {
				last = p.Second + 1
			}
		}
		w := SoakWindow{
			Event:     ev,
			Hangover:  time.Duration(last-endSec) * time.Second,
			Recovered: last < gapEnd || gapEnd <= endSec,
		}
		if w.Hangover > res.MaxHangover {
			res.MaxHangover = w.Hangover
		}
		res.Recovered = res.Recovered && w.Recovered
		res.Windows = append(res.Windows, w)
	}
	return res, nil
}

// PrintSoak renders one simulated soak.
func PrintSoak(w io.Writer, r SoakResult) {
	safety := "safe"
	if r.Violation != "" {
		safety = "VIOLATION: " + r.Violation
	}
	recovered := "recovered"
	if !r.Recovered {
		recovered = "NOT RECOVERED"
	}
	fmt.Fprintf(w, "sim soak n=%d seed=%d: %d fault windows, total=%d baseline=%.1fms max-hangover=%.1fs %s %s\n",
		r.Schedule.N, r.Schedule.Seed, len(r.Windows), r.Total, ms(r.Baseline),
		r.MaxHangover.Seconds(), recovered, safety)
	for _, win := range r.Windows {
		fmt.Fprintf(w, "  %-8s node %s [%5.1fs,%5.1fs) amnesia=%-5v hangover=%.1fs\n",
			win.Event.Kind, win.Event.Node, win.Event.From.Seconds(), win.Event.To.Seconds(),
			win.Event.Amnesia, win.Hangover.Seconds())
	}
}

// --- live TCP churn soak ---

// LiveSoakConfig parameterizes one real-runtime churn soak: a WAL-backed
// TCP loopback cluster with the stall detector armed, under open-loop
// load, while the chaos schedule is applied operationally — restarts are
// real replica teardowns and rebuilds from the same WAL (amnesia deletes
// it), stall windows silence a replica's egress at the link layer (it
// keeps receiving — the failure mode the stall detector exists for), and
// storage faults poison a replica's WAL so its journal barrier fails,
// the process halts fatally, and the operator restarts it from the
// durable log.
type LiveSoakConfig struct {
	N    int
	Seed uint64
	// Rate is the submission rate (tx/s); load runs for Duration.
	Rate     float64
	Duration time.Duration
	// Chaos overrides the generated schedule (defaults mirror the quick
	// cell: one restart, one stall, one storage fault).
	Chaos chaos.Params
	// StallTimeout arms every replica's stall detector (default 400ms;
	// must be shorter than the stall windows for the detector to fire).
	StallTimeout time.Duration
	// HazardSlack widens each fault window's mempool-loss hazard to
	// [From-HazardSlack, To): a submission within it is not counted
	// eligible, because it may still be in the victim's in-memory
	// pipeline (mempool batching, lane propose, journal barrier) when
	// the teardown hits. Default 1s; raise it when the whole process
	// runs slowed (e.g. under the race detector).
	HazardSlack time.Duration
	// Rule, when non-zero, is the steady background link-fault profile on
	// every replica (the soak composes chaos with a lossy network).
	Rule transport.LinkRule
	// Dir is the WAL directory ("" = a fresh temp dir, removed on return).
	Dir string
	// DrainTimeout bounds the post-load wait for the commit floor
	// (default 30s).
	DrainTimeout time.Duration
	// GatewayClients, when positive, additionally drives the chaos
	// schedule through the client gateway tier: every eligible replica
	// (honest, never amnesiac) is fronted by a gateway.Server, and a
	// fleet of gateway.Clients submits at GatewayRate aggregate tx/s.
	// Fault teardowns drop the gateway's client connections (clients
	// must reconnect and resubmit) and restarts swap the backend
	// generation (lost admissions are re-admitted on resubmission) —
	// the end-to-end claim is exactly-once: every submission resolves,
	// and the chain-duplicate counter stays zero through the churn.
	GatewayClients int
	// GatewayRate is the gateway fleet's aggregate submission rate
	// (default 100 tx/s when GatewayClients > 0).
	GatewayRate float64
	// Execution runs the deterministic execution layer through the churn
	// (AppHash on every commit, checked by the oracle).
	Execution bool
	// SnapshotEvery, when > 0, checkpoints and truncates the WAL every
	// this many slots: restarts recover from the newer of snapshot and
	// journal, and MaxWALBytes lets tests assert bounded on-disk growth.
	// Requires Execution.
	SnapshotEvery types.Slot
	Logger        *log.Logger
}

func (c *LiveSoakConfig) fill() {
	if c.N == 0 {
		c.N = 4
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Rate == 0 {
		c.Rate = 400
	}
	if c.Duration == 0 {
		c.Duration = 15 * time.Second
	}
	if c.StallTimeout == 0 {
		c.StallTimeout = 400 * time.Millisecond
	}
	if c.DrainTimeout == 0 {
		c.DrainTimeout = 30 * time.Second
	}
	if c.HazardSlack == 0 {
		c.HazardSlack = time.Second
	}
	if c.GatewayClients > 0 && c.GatewayRate == 0 {
		c.GatewayRate = 100
	}
	ch := &c.Chaos
	if ch.N == 0 {
		ch.N = c.N
	}
	if ch.Seed == 0 {
		ch.Seed = c.Seed
	}
	if ch.Start == 0 {
		ch.Start = 3 * time.Second
	}
	if ch.End == 0 {
		ch.End = c.Duration - 3*time.Second
	}
	if ch.Restarts == 0 && ch.Stalls == 0 && ch.StorageFaults == 0 && len(ch.Behaviors) == 0 {
		ch.Restarts = 1
		ch.DownFor = 1500 * time.Millisecond
		ch.Stalls = 1
		ch.StallFor = 1500 * time.Millisecond
		ch.StorageFaults = 1
	}
}

// LiveSoakResult reports one live soak. Err is non-nil only for
// infrastructure failures (ports, replica construction) — protocol
// verdicts live in Violation / MinCommitted / Recovered fields.
type LiveSoakResult struct {
	Schedule  *chaos.Schedule
	Submitted int
	// Eligible counts submissions the commit floor covers: entrusted to
	// honest replicas whose lanes survive the whole schedule (no amnesia
	// — an amnesiac's own lane halts at its pre-crash tip) and outside
	// every fault window's mempool-loss hazard (in-memory transactions
	// accepted just before a teardown die with the process; real clients
	// time out and resubmit elsewhere).
	Eligible int
	Floor    uint64
	// PerReplica is each replica's committed count over eligible lanes;
	// MinCommitted the minimum (liveness verdict: MinCommitted >= Floor).
	PerReplica   []uint64
	MinCommitted uint64
	// Violation is the safety oracle's verdict ("" = safe).
	Violation string
	// Stalls/Redials/Dials aggregate every incarnation's transport
	// counters: the stall windows must show up as detector teardowns
	// followed by successful redials.
	Stalls, Redials, Dials uint64
	// JournalFatals counts incarnations that halted on a failed journal
	// barrier (one per scheduled storage fault).
	JournalFatals uint64
	// OperatorRestarts counts scheduled replica rebuilds.
	OperatorRestarts int
	// MaxWALBytes is the largest per-replica WAL file at teardown — with
	// SnapshotEvery set, tests assert it stays bounded (truncation plus
	// compaction keeps the log from growing with history).
	MaxWALBytes int64
	// GoroutineGrowth / FDGrowth are end-minus-start watermarks after
	// full teardown (leak detection; FDGrowth is 0 where /proc is
	// unavailable).
	GoroutineGrowth int
	FDGrowth        int
	Elapsed         time.Duration
	Err             error

	// Gateway tier outcomes (all zero unless GatewayClients > 0).
	// GatewayDrained reports that every gateway submission resolved
	// before the drain deadline; GatewayChainDups is the servers'
	// duplicate-commit counter (the exactly-once claim: must be zero);
	// Deduped/Readmitted/Reconnects/Resubmits show the recovery
	// machinery actually firing through the churn.
	GatewaySubmitted  uint64
	GatewayCommitted  uint64
	GatewayRejected   uint64 // Submit refused locally (window/suppression)
	GatewayDrained    bool
	GatewayChainDups  uint64
	GatewayDeduped    uint64
	GatewayReadmitted uint64
	GatewayAckDrops   uint64
	GatewayReconnects uint64
	GatewayResubmits  uint64
}

// liveSoakRun is the mutable state one live soak threads through its
// load loop, fault timeline and fatal watchers.
type liveSoakRun struct {
	cfg   LiveSoakConfig
	sched *chaos.Schedule
	addrs map[types.NodeID]string
	dir   string
	opts  autobahn.Options
	link  []*transport.LinkFaults
	ci    *CommitInterceptor
	start time.Time

	mu       sync.Mutex
	replicas []*autobahn.Replica
	alive    []bool
	retired  []bool // amnesiac lanes: clients gave up permanently
	err      error

	perReplica []atomic.Uint64
	dials      atomic.Uint64
	redials    atomic.Uint64
	stalls     atomic.Uint64
	fatals     atomic.Uint64
	restarts   atomic.Uint64

	eligibleLane []bool
	hazardOf     [][][2]time.Duration // per-node teardown hazard windows [From-HazardSlack, To)

	// Gateway tier (nil / empty unless cfg.GatewayClients > 0).
	gws         []*gateway.Server // per-slot, nil for ineligible lanes
	gwClients   []*gateway.Client
	gwSubmitted atomic.Uint64
	gwCommitted atomic.Uint64
	gwRejected  atomic.Uint64

	done    chan struct{}
	wg      sync.WaitGroup // the fault timeline
	gwWg    sync.WaitGroup // the gateway load loop
	watchWg sync.WaitGroup // per-incarnation fatal watchers (exit on done)
}

// soakBackend adapts one soak slot to gateway.Backend across replica
// incarnations: it always reads the slot's current incarnation, and
// while the slot is down (mid-restart, journal-fatal) it reports an
// effectively infinite backlog so admission answers Busy instead of
// silently dropping — the client's backoff-and-retry carries the
// submission across the outage.
type soakBackend struct {
	s *liveSoakRun
	i int
}

func (b soakBackend) Submit(tx []byte) {
	if r := b.s.current(b.i); r != nil {
		r.Submit(tx)
	}
}

func (b soakBackend) MempoolDepth() int {
	if r := b.s.current(b.i); r != nil {
		return r.MempoolDepth()
	}
	return 1 << 30
}

func (b soakBackend) LaneDepth() int {
	if r := b.s.current(b.i); r != nil {
		return r.LaneDepth()
	}
	return 1 << 30
}

// RunLiveSoak executes one live TCP churn soak; see LiveSoakConfig.
func RunLiveSoak(cfg LiveSoakConfig) LiveSoakResult {
	cfg.fill()
	res := LiveSoakResult{PerReplica: make([]uint64, cfg.N)}
	sched, err := chaos.Generate(cfg.Chaos)
	if err != nil {
		res.Err = err
		return res
	}
	res.Schedule = sched
	goroutines0 := gort.NumGoroutine()
	fd0 := openFDs()

	dir := cfg.Dir
	if dir == "" {
		dir, err = os.MkdirTemp("", "autobahn-soak-*")
		if err != nil {
			res.Err = err
			return res
		}
		defer os.RemoveAll(dir)
	}
	addrs, err := freeLoopbackAddrs(cfg.N)
	if err != nil {
		res.Err = err
		return res
	}
	s := &liveSoakRun{
		cfg:          cfg,
		sched:        sched,
		addrs:        addrs,
		dir:          dir,
		ci:           NewCommitInterceptor(),
		replicas:     make([]*autobahn.Replica, cfg.N),
		alive:        make([]bool, cfg.N),
		retired:      make([]bool, cfg.N),
		perReplica:   make([]atomic.Uint64, cfg.N),
		eligibleLane: make([]bool, cfg.N),
		hazardOf:     make([][][2]time.Duration, cfg.N),
		link:         make([]*transport.LinkFaults, cfg.N),
		done:         make(chan struct{}),
	}
	s.opts = autobahn.Options{
		N: cfg.N, Seed: cfg.Seed, MaxBatchDelay: 10 * time.Millisecond,
		StallTimeout:  cfg.StallTimeout,
		Execution:     cfg.Execution,
		SnapshotEvery: cfg.SnapshotEvery,
	}
	adversary := make(map[types.NodeID]string)
	for _, b := range sched.Behaviors {
		// Live adversaries run for the deployment's lifetime; the
		// schedule's behavior windows are honored by the simulator only.
		adversary[b.Node] = b.Name
	}
	if len(adversary) > 0 {
		s.opts.Adversaries = adversary
	}
	for i := 0; i < cfg.N; i++ {
		s.link[i] = transport.NewLinkFaults(cfg.Seed + uint64(i)).SetAll(cfg.Rule)
	}
	// Floor accounting: a lane is eligible unless Byzantine or doomed to
	// amnesia; a submission is eligible when its lane is and it lands
	// outside every teardown hazard window [From-HazardSlack, To) of its
	// replica (the slack covers batching plus the journal barrier, after
	// which the transaction survives restarts in the WAL).
	for i := 0; i < cfg.N; i++ {
		_, byz := adversary[types.NodeID(i)]
		s.eligibleLane[i] = !byz
	}
	for _, ev := range sched.Events {
		if ev.Kind == chaos.KindRestart && ev.Amnesia {
			s.eligibleLane[ev.Node] = false
		}
		from := ev.From - cfg.HazardSlack
		if from < 0 {
			from = 0
		}
		s.hazardOf[ev.Node] = append(s.hazardOf[ev.Node], [2]time.Duration{from, ev.To})
	}

	// Gateway tier: one server per eligible slot, outliving that slot's
	// incarnations (the tier is a separate process in a real deployment).
	if cfg.GatewayClients > 0 {
		s.gws = make([]*gateway.Server, cfg.N)
		for i := 0; i < cfg.N; i++ {
			if s.eligibleLane[i] {
				s.gws[i] = gateway.NewServer(soakBackend{s: s, i: i}, gateway.Options{Logger: cfg.Logger})
			}
		}
		defer func() {
			for _, cl := range s.gwClients {
				cl.Close()
			}
			for _, gw := range s.gws {
				if gw != nil {
					gw.Stop()
				}
			}
		}()
	}

	defer func() {
		s.mu.Lock()
		rs := append([]*autobahn.Replica(nil), s.replicas...)
		s.mu.Unlock()
		for i, r := range rs {
			if r != nil {
				s.retireIncarnation(i, r)
			}
		}
	}()
	for i := 0; i < cfg.N; i++ {
		if err := s.startReplica(i, nil, false); err != nil {
			res.Err = err
			return res
		}
	}

	// Gateway fleet: globally unique client IDs (commits are total, every
	// server routes by envelope ID — a collision would cross-complete
	// another client's window), spread round-robin over eligible slots.
	if cfg.GatewayClients > 0 {
		slots := make([]int, 0, cfg.N)
		for i, gw := range s.gws {
			if gw != nil {
				slots = append(slots, i)
			}
		}
		if len(slots) == 0 {
			res.Err = fmt.Errorf("harness: gateway load with no eligible lanes")
			return res
		}
		for k := 0; k < cfg.GatewayClients; k++ {
			gw := s.gws[slots[k%len(slots)]]
			cl, err := gateway.NewClient(gateway.ClientOptions{
				ID:       uint64(k + 1),
				Seed:     cfg.Seed + uint64(k)*7919,
				Priority: gateway.PriorityNormal,
				Dial: func() (net.Conn, error) {
					a, b := net.Pipe()
					go gw.ServeConn(b)
					return a, nil
				},
				// The timeout must outlast a fault window plus recovery-to
				// -commit: a journaled pre-crash admission then commits and
				// acks before the resubmission that would re-admit it under
				// the new generation could fire (exactly-once depends on it).
				AckTimeout: 8 * time.Second,
				OnOutcome: func(out gateway.Outcome) {
					if out.Committed {
						s.gwCommitted.Add(1)
					}
				},
			})
			if err != nil {
				res.Err = err
				return res
			}
			s.gwClients = append(s.gwClients, cl)
		}
	}

	s.start = time.Now() //lint:allow noclock the live soak schedules real faults on wall time
	s.wg.Add(1)
	go s.timeline()
	if cfg.GatewayClients > 0 {
		s.gwWg.Add(1)
		go s.gatewayLoad()
	}

	// Open-loop load, round-robin over currently-submittable replicas.
	tx := make([]byte, 128)
	interval := time.Duration(float64(time.Second) / cfg.Rate)
	cursor := 0
	for {
		now := time.Since(s.start) //lint:allow noclock open-loop pacing needs real time
		if now >= cfg.Duration {
			break
		}
		if i, r := s.pickTarget(&cursor); r != nil {
			r.Submit(tx)
			res.Submitted++
			if s.eligibleSubmission(i, now) {
				res.Eligible++
			}
		}
		time.Sleep(interval) //lint:allow noclock open-loop pacing needs real time
	}
	s.wg.Wait()   // all fault windows closed (schedule ends before the load)
	s.gwWg.Wait() // gateway load stops on the same duration clock

	// Drain until every replica reaches the floor or the deadline.
	res.Floor = uint64(float64(res.Eligible) * 0.9)
	deadline := time.Now().Add(cfg.DrainTimeout) //lint:allow noclock drain deadline is wall-clock
	for time.Now().Before(deadline) {            //lint:allow noclock drain deadline is wall-clock
		done := true
		for i := 0; i < cfg.N; i++ {
			if s.perReplica[i].Load() < res.Floor {
				done = false
				break
			}
		}
		if done {
			break
		}
		time.Sleep(50 * time.Millisecond) //lint:allow noclock drain polling is wall-clock
	}
	// Gateway drain: every submission must resolve — committed, or a
	// terminal rejection — under the same deadline. This is the
	// exactly-once liveness half; the safety half is ChainDups == 0.
	if cfg.GatewayClients > 0 {
		res.GatewayDrained = true
		for {
			inflight := 0
			for _, cl := range s.gwClients {
				inflight += cl.InFlight()
			}
			if inflight == 0 {
				break
			}
			if !time.Now().Before(deadline) { //lint:allow noclock drain deadline is wall-clock
				res.GatewayDrained = false
				break
			}
			time.Sleep(50 * time.Millisecond) //lint:allow noclock drain polling is wall-clock
		}
	}
	res.Elapsed = time.Since(s.start) //lint:allow noclock elapsed wall time is the measurement

	// Full teardown before the leak watermarks.
	s.mu.Lock()
	rs := append([]*autobahn.Replica(nil), s.replicas...)
	s.mu.Unlock()
	for i, r := range rs {
		if r != nil {
			s.retireIncarnation(i, r)
		}
	}
	// The gateway tier comes down with the run, before the leak
	// watermarks (the deferred cleanup is an idempotent safety net).
	for _, cl := range s.gwClients {
		cl.Close()
	}
	for _, gw := range s.gws {
		if gw != nil {
			gw.Stop()
		}
	}
	close(s.done)
	s.watchWg.Wait()
	time.Sleep(300 * time.Millisecond) //lint:allow noclock settle before the goroutine watermark

	for i := 0; i < cfg.N; i++ {
		if st, err := os.Stat(s.walPath(i)); err == nil && st.Size() > res.MaxWALBytes {
			res.MaxWALBytes = st.Size()
		}
	}
	res.MinCommitted = s.perReplica[0].Load()
	for i := 0; i < cfg.N; i++ {
		res.PerReplica[i] = s.perReplica[i].Load()
		if res.PerReplica[i] < res.MinCommitted {
			res.MinCommitted = res.PerReplica[i]
		}
	}
	res.Violation = s.ci.Violation()
	res.Dials = s.dials.Load()
	res.Redials = s.redials.Load()
	res.Stalls = s.stalls.Load()
	res.JournalFatals = s.fatals.Load()
	res.OperatorRestarts = int(s.restarts.Load())
	if cfg.GatewayClients > 0 {
		res.GatewaySubmitted = s.gwSubmitted.Load()
		res.GatewayCommitted = s.gwCommitted.Load()
		res.GatewayRejected = s.gwRejected.Load()
		for _, gw := range s.gws {
			if gw == nil {
				continue
			}
			st := gw.Stats()
			res.GatewayChainDups += st.ChainDups
			res.GatewayDeduped += st.Deduped
			res.GatewayReadmitted += st.Readmitted
			res.GatewayAckDrops += st.AckDrops
		}
		for _, cl := range s.gwClients {
			c := cl.Counters()
			res.GatewayReconnects += c.Reconnects
			res.GatewayResubmits += c.Resubmits
		}
	}
	res.GoroutineGrowth = gort.NumGoroutine() - goroutines0
	if fd1 := openFDs(); fd0 >= 0 && fd1 >= 0 {
		res.FDGrowth = fd1 - fd0
	}
	s.mu.Lock()
	res.Err = s.err
	s.mu.Unlock()
	return res
}

func (s *liveSoakRun) walPath(i int) string {
	return filepath.Join(s.dir, fmt.Sprintf("replica-%d.wal", i))
}

// startReplica builds and starts incarnation i (an optional storage
// fault plan poisons its WAL; amnesia notes the recovery-from-nothing to
// the oracle and resets its floor counter, since it re-delivers the
// whole order from scratch).
func (s *liveSoakRun) startReplica(i int, plan *storage.FaultPlan, amnesia bool) error {
	opts := s.opts
	opts.WALPath = s.walPath(i)
	opts.WALFaults = plan
	opts.LinkFaults = s.link[i]
	id := types.NodeID(i)
	r, err := autobahn.NewReplica(id, s.addrs, opts, s.cfg.Logger)
	if err != nil {
		s.setErr(err)
		return err
	}
	if amnesia {
		s.perReplica[i].Store(0)
	}
	r.SetCommitObserver(func(c autobahn.Committed) {
		s.ci.Record(id, c.Lane, c.Position, c.Batch.Digest(), c.AppHash)
		if s.eligibleLane[c.Lane] {
			s.perReplica[i].Add(uint64(c.Batch.Count))
		}
		if s.gws != nil && s.gws[i] != nil {
			s.gws[i].OnCommit(c.Batch)
		}
	})
	if err := r.Start(); err != nil {
		s.setErr(err)
		return err
	}
	s.mu.Lock()
	s.replicas[i] = r
	s.alive[i] = true
	s.mu.Unlock()
	if s.gws != nil && s.gws[i] != nil {
		// New incarnation, new admission generation: submissions admitted
		// to the previous one may have died with its mempool, so client
		// resubmissions are re-admitted (byte-identical) from here on.
		s.gws[i].SwapBackend(soakBackend{s: s, i: i})
	}
	s.watchWg.Add(1)
	go s.watchFatal(i, r)
	return nil
}

// retireIncarnation stops one incarnation (idempotent per incarnation)
// and absorbs its transport/journal counters into the run totals.
func (s *liveSoakRun) retireIncarnation(i int, r *autobahn.Replica) {
	if r == nil {
		return
	}
	s.mu.Lock()
	if s.replicas[i] != r {
		s.mu.Unlock()
		return
	}
	s.replicas[i] = nil
	s.alive[i] = false
	s.mu.Unlock()
	if s.gws != nil && s.gws[i] != nil {
		// The front door fails over with the incarnation: clients must
		// reconnect and resubmit, and the dedup window absorbs the rest.
		s.gws[i].DropConns()
	}
	r.Stop()
	st := r.LoopStats()
	s.dials.Add(st.PeerDials)
	s.redials.Add(st.PeerRedials)
	s.stalls.Add(st.PeerStalls)
	s.fatals.Add(st.JournalFatal)
}

// watchFatal retires an incarnation the moment its journal goes fatal
// (the replica has already halted itself; this keeps the load loop from
// feeding a dead process until the operator restart).
func (s *liveSoakRun) watchFatal(i int, r *autobahn.Replica) {
	defer s.watchWg.Done()
	select {
	case <-s.done:
	case <-r.Fatal():
		s.retireIncarnation(i, r)
	}
}

func (s *liveSoakRun) current(i int) *autobahn.Replica {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.replicas[i]
}

func (s *liveSoakRun) setErr(err error) {
	s.mu.Lock()
	if s.err == nil {
		s.err = err
	}
	s.mu.Unlock()
}

// pickTarget round-robins over replicas currently accepting client load.
func (s *liveSoakRun) pickTarget(cursor *int) (int, *autobahn.Replica) {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := len(s.replicas)
	for k := 0; k < n; k++ {
		i := (*cursor + k) % n
		if s.alive[i] && !s.retired[i] {
			*cursor = i + 1
			return i, s.replicas[i]
		}
	}
	return -1, nil
}

func (s *liveSoakRun) eligibleSubmission(i int, at time.Duration) bool {
	if !s.eligibleLane[i] {
		return false
	}
	for _, h := range s.hazardOf[i] {
		if at >= h[0] && at < h[1] {
			return false
		}
	}
	return true
}

// gatewayLoad drives the client fleet open-loop at cfg.GatewayRate
// aggregate tx/s, round-robin. Local refusals (window budget, Busy
// suppression) count as rejected and are not retried by this source —
// everything that made it to a Pending is carried to a terminal
// outcome by the per-client retry machinery instead.
func (s *liveSoakRun) gatewayLoad() {
	defer s.gwWg.Done()
	payload := make([]byte, 128)
	interval := time.Duration(float64(time.Second) / s.cfg.GatewayRate)
	k := 0
	for {
		now := time.Since(s.start) //lint:allow noclock open-loop pacing needs real time
		if now >= s.cfg.Duration {
			return
		}
		cl := s.gwClients[k%len(s.gwClients)]
		k++
		if _, err := cl.Submit(payload); err != nil {
			s.gwRejected.Add(1)
		} else {
			s.gwSubmitted.Add(1)
		}
		time.Sleep(interval) //lint:allow noclock open-loop pacing needs real time
	}
}

// timeline applies the chaos schedule operationally, on wall time.
func (s *liveSoakRun) timeline() {
	defer s.wg.Done()
	for _, ev := range s.sched.Events {
		s.sleepUntil(ev.From)
		i := int(ev.Node)
		switch ev.Kind {
		case chaos.KindRestart:
			s.retireIncarnation(i, s.current(i))
			if ev.Amnesia {
				os.Remove(s.walPath(i))
				os.Remove(s.walPath(i) + ".snap") // amnesia forgets the checkpoint too
				s.mu.Lock()
				s.retired[i] = true // clients time out and resubmit elsewhere
				s.mu.Unlock()
			}
		case chaos.KindStall:
			// Receives-but-sends-nothing: egress silenced at the link
			// layer, ingress untouched — peers' stall detectors must fire.
			s.link[i].SetAll(transport.LinkRule{DropP: 1})
		case chaos.KindStorage:
			// Poison the WAL: the next journal barrier fails, the replica
			// halts fatally, and watchFatal retires the incarnation.
			s.retireIncarnation(i, s.current(i))
			s.startReplica(i, &storage.FaultPlan{Seed: s.cfg.Seed + uint64(i), FailWriteAfter: 1}, false)
		}
		s.sleepUntil(ev.To)
		switch ev.Kind {
		case chaos.KindRestart, chaos.KindStorage:
			s.retireIncarnation(i, s.current(i)) // storage: usually already fatal-retired
			if s.startReplica(i, nil, ev.Amnesia) == nil {
				s.restarts.Add(1)
				s.ci.NoteRecovery(ev.Node)
			}
		case chaos.KindStall:
			s.link[i].SetAll(s.cfg.Rule)
		}
	}
}

func (s *liveSoakRun) sleepUntil(d time.Duration) {
	for {
		rem := d - time.Since(s.start) //lint:allow noclock fault windows are scheduled on wall time
		if rem <= 0 {
			return
		}
		if rem > 50*time.Millisecond {
			rem = 50 * time.Millisecond
		}
		time.Sleep(rem) //lint:allow noclock fault windows are scheduled on wall time
	}
}

// openFDs counts this process's open file descriptors (-1 where /proc is
// unavailable; the caller skips the watermark).
func openFDs() int {
	ents, err := os.ReadDir("/proc/self/fd")
	if err != nil {
		return -1
	}
	return len(ents)
}

// PrintLiveSoak renders one live soak.
func PrintLiveSoak(w io.Writer, r LiveSoakResult) {
	if r.Err != nil {
		fmt.Fprintf(w, "live soak: SKIP (%v)\n", r.Err)
		return
	}
	safety := "safe"
	if r.Violation != "" {
		safety = "VIOLATION: " + r.Violation
	}
	fmt.Fprintf(w, "live soak n=%d: %d windows, submitted=%d eligible=%d floor=%d min-committed=%d restarts=%d fatals=%d stalls=%d redials=%d goroutine-growth=%d fd-growth=%d %s\n",
		len(r.PerReplica), len(r.Schedule.Events), r.Submitted, r.Eligible, r.Floor,
		r.MinCommitted, r.OperatorRestarts, r.JournalFatals, r.Stalls, r.Redials,
		r.GoroutineGrowth, r.FDGrowth, safety)
	if r.GatewaySubmitted > 0 || r.GatewayRejected > 0 {
		drained := "drained"
		if !r.GatewayDrained {
			drained = "NOT DRAINED"
		}
		fmt.Fprintf(w, "  gateway: submitted=%d committed=%d rejected=%d chain-dups=%d deduped=%d readmitted=%d ack-drops=%d reconnects=%d resubmits=%d %s\n",
			r.GatewaySubmitted, r.GatewayCommitted, r.GatewayRejected,
			r.GatewayChainDups, r.GatewayDeduped, r.GatewayReadmitted,
			r.GatewayAckDrops, r.GatewayReconnects, r.GatewayResubmits, drained)
	}
}
