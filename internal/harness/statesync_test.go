package harness

import (
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/runtime"
	"repro/internal/sim"
	"repro/internal/types"
)

// TestExecutionAppHashAgreement runs a fault-free cluster with the
// execution layer on: every commit must carry a non-zero AppHash, all
// replicas must agree at every (lane, position), and the safety oracle
// must stay quiet.
func TestExecutionAppHashAgreement(t *testing.T) {
	ci := NewCommitInterceptor()
	var mu sync.Mutex
	nonZero := 0
	c := Build(ClusterConfig{
		System:    Autobahn,
		N:         4,
		Execution: true,
		WrapSink: func(inner runtime.CommitSink) runtime.CommitSink {
			inner = ci.Wrap(inner)
			return runtime.CommitSinkFunc(func(node types.NodeID, now time.Duration, cm runtime.Committed) {
				if cm.AppHash != (types.Digest{}) {
					mu.Lock()
					nonZero++
					mu.Unlock()
				}
				inner.OnCommit(node, now, cm)
			})
		},
	})
	c.RunLoad(10e3, 0, 5*time.Second, 8*time.Second)
	if v := ci.Violation(); v != "" {
		t.Fatalf("unexpected violation: %s", v)
	}
	if c.Recorder.Total() == 0 {
		t.Fatal("no commits")
	}
	if nonZero == 0 {
		t.Fatal("execution on but no commit carried an AppHash")
	}
}

// TestExecutionDivergenceOracle is the execution-safety drill: one
// replica's machine executes a mutated batch (a byzantine executor whose
// commit stream still looks plausible), and the interceptor must flag
// the AppHash divergence — the whole point of cross-checking the chain
// hash rather than just the committed digests.
func TestExecutionDivergenceOracle(t *testing.T) {
	ci := NewCommitInterceptor()
	c := Build(ClusterConfig{
		System:    Autobahn,
		N:         4,
		Execution: true,
		WrapSink:  ci.Wrap,
	})
	c.Nodes[1].(*core.Node).TamperExecution()
	c.RunLoad(10e3, 0, 3*time.Second, 5*time.Second)
	v := ci.Violation()
	if v == "" {
		t.Fatal("tampered execution not detected")
	}
	if !strings.Contains(v, "execution divergence") {
		t.Fatalf("wrong violation kind: %s", v)
	}
	t.Logf("oracle verdict: %s", v)
}

// TestSnapshotColdJoin is the O(state) join path on the simulator: a
// snapshotting cluster runs long enough to truncate history, one replica
// restarts with amnesia, and it must rejoin through snapshot-based state
// sync (manifest, verified chunks, install) — counted by the node's
// SnapshotsInstalled stat — then keep committing with the others, all
// under the safety oracle.
func TestSnapshotColdJoin(t *testing.T) {
	ci := NewCommitInterceptor()
	faults := (&sim.FaultSchedule{}).
		AddDown(2, 10*time.Second, 11500*time.Millisecond).
		Restart(2, 11500*time.Millisecond, true)
	c := Build(ClusterConfig{
		System:        Autobahn,
		N:             4,
		Execution:     true,
		SnapshotEvery: 25,
		Faults:        faults,
		WrapSink:      ci.Wrap,
		OnRebuild:     func(id types.NodeID, _ bool) { ci.NoteRecovery(id) },
	})
	c.RunLoad(10e3, 0, 20*time.Second, 25*time.Second)
	if v := ci.Violation(); v != "" {
		t.Fatalf("violation during cold join: %s", v)
	}
	nd := c.Nodes[2].(*core.Node)
	if got := nd.Stats().SnapshotsInstalled; got == 0 {
		t.Fatalf("amnesiac replica never installed a snapshot (frontier %d, next exec %d)",
			nd.SnapshotFrontier(), nd.Orderer().NextExec())
	}
	if ci.Commits(2) == 0 {
		t.Fatal("amnesiac replica committed nothing after rejoin")
	}
	t.Logf("replica 2 rejoined via %d snapshot install(s), resumed at slot %d, %d commits",
		nd.Stats().SnapshotsInstalled, nd.Orderer().NextExec(), ci.Commits(2))
}

// TestSimSoakSnapshotChurn is the PR 8 churn soak with execution,
// snapshots and truncation on: rolling restarts (with the amnesia mix),
// stalls and a Byzantine lane, while every replica checkpoints and
// truncates — zero safety violations and full recovery required.
func TestSimSoakSnapshotChurn(t *testing.T) {
	res, err := RunSimSoak(SoakConfig{
		N:             7,
		Execution:     true,
		SnapshotEvery: 25,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != "" {
		t.Fatalf("violation: %s", res.Violation)
	}
	if !res.Recovered {
		t.Fatalf("cluster did not recover inside every gap (max hangover %s)", res.MaxHangover)
	}
	if res.Total == 0 {
		t.Fatal("no commits")
	}
}
