// Package harness builds simulated deployments of all four systems the
// paper evaluates (Autobahn, Bullshark, VanillaHS, BatchedHS) and runs
// the experiments behind every table and figure in §6. Each experiment
// returns structured results (for tests and benchmarks to assert the
// paper's comparative shape) and can render the same rows/series the
// paper reports.
package harness

import (
	"fmt"
	"time"

	"repro/internal/adversary"
	"repro/internal/bullshark"
	"repro/internal/core"
	"repro/internal/crypto"
	"repro/internal/hotstuff"
	"repro/internal/metrics"
	"repro/internal/runtime"
	"repro/internal/sim"
	"repro/internal/types"
	"repro/internal/workload"
)

// System names one of the four evaluated protocols.
type System string

// The four systems of §6.
const (
	Autobahn  System = "Autobahn"
	Bullshark System = "Bullshark"
	VanillaHS System = "VanillaHS"
	BatchedHS System = "BatchedHS"
)

// AllSystems lists the paper's comparison set in its plotting order.
var AllSystems = []System{Autobahn, Bullshark, BatchedHS, VanillaHS}

// ClusterConfig parameterizes one simulated deployment.
type ClusterConfig struct {
	System System
	N      int
	Seed   uint64
	// VerifySigs enables real ed25519 end to end (slower; default off —
	// signature cost is charged by the network model).
	VerifySigs bool
	// ViewTimeout for consensus progress timers (default 1s, §6).
	ViewTimeout time.Duration
	// Autobahn toggles (fast path and optimistic tips default true, the
	// paper's configuration; weak votes are the §5.5.2 refinement and
	// default off, matching the prototype).
	FastPathOff       bool
	OptimisticTipsOff bool
	WeakVotes         bool
	// HotStuff leader regime (default Rotating).
	StableLeaders bool
	// Reputation enables the §B.1 lane-reputation defense (Autobahn only;
	// requires optimistic tips, the default).
	Reputation bool
	// Execution enables the deterministic execution layer (Autobahn only):
	// commits carry the running AppHash, the cross-replica execution
	// oracle the CommitInterceptor checks.
	Execution bool
	// SnapshotEvery checkpoints execution state every this many slots and
	// truncates the journal/lane stores beneath it; replicas far behind
	// join via snapshot-based state sync. 0 disables. Requires Execution.
	// Snapshot stores are retained across warm restarts (like journals)
	// and replaced on amnesia.
	SnapshotEvery types.Slot
	// Faults to inject (nil = fault-free). Byzantine behavior windows in
	// the schedule (FaultSchedule.AddBehavior) wrap the named replicas
	// with internal/adversary before the run (Autobahn only).
	Faults *sim.FaultSchedule
	// WrapSink, when set, interposes on every replica's commit stream
	// (e.g. the Byzantine experiments' no-contradiction interceptor).
	WrapSink func(runtime.CommitSink) runtime.CommitSink
	// OnRebuild, when set, is invoked whenever a Restart fault rebuilds a
	// replica, before it rejoins. The soak harness uses it to tell the
	// safety oracle about recoveries (whose re-delivered commits are
	// replay, not duplicates — CommitInterceptor.NoteRecovery).
	OnRebuild func(id types.NodeID, amnesia bool)
	// Horizon bounds the recorder's time series (default 5 min).
	Horizon time.Duration
	// Net overrides the network model (default: paper's GCP intra-US).
	Net *sim.Network
}

// Cluster is a built deployment ready to run.
type Cluster struct {
	Config   ClusterConfig
	Engine   *sim.Engine
	Recorder *metrics.Recorder
	IDs      []types.NodeID
	// Nodes holds the protocol instances (type-assert per system for
	// protocol-specific statistics). A Restart fault replaces the entry
	// for the restarted replica.
	Nodes []runtime.Protocol
	// Journals holds per-replica journals, populated only when the fault
	// schedule contains Restart events (Autobahn only).
	Journals []core.Journal
	// Snapshots holds per-replica snapshot stores, populated only when
	// SnapshotEvery > 0 (Autobahn only).
	Snapshots []*core.MemSnapshots
}

// Build constructs the deployment.
func Build(cfg ClusterConfig) *Cluster {
	if cfg.N == 0 {
		cfg.N = 4
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.ViewTimeout == 0 {
		cfg.ViewTimeout = time.Second
	}
	if cfg.Horizon == 0 {
		cfg.Horizon = 5 * time.Minute
	}
	committee := types.NewCommittee(cfg.N)
	var suite crypto.Suite
	if cfg.VerifySigs {
		suite = crypto.NewEd25519Suite(cfg.N, cfg.Seed)
	} else {
		suite = crypto.NewNopSuite(cfg.N)
	}
	rec := metrics.NewRecorder(cfg.Horizon)
	rec.Quorum = committee.F() + 1 // output commit: f+1 replica replies (§6)
	net := cfg.Net
	if net == nil {
		net = sim.NewNetwork(sim.DefaultNetConfig(sim.IntraUSTopology()))
	}
	eng := sim.NewEngine(sim.Config{Net: net, Faults: cfg.Faults, Seed: cfg.Seed})

	if cfg.Faults != nil {
		if nb := len(cfg.Faults.Behaviors()); nb > committee.F() {
			panic(fmt.Sprintf("harness: %d Byzantine behaviors exceeds f=%d for n=%d", nb, committee.F(), cfg.N))
		}
	}
	c := &Cluster{Config: cfg, Engine: eng, Recorder: rec}
	// Restart faults tear protocol state down mid-run and rebuild it from
	// a journal (crash-restart recovery). Only Autobahn wires journals;
	// the baselines have no recovery story in this reproduction.
	if cfg.Faults != nil && cfg.Faults.HasRestarts() {
		if cfg.System != Autobahn {
			panic(fmt.Sprintf("harness: Restart faults are only supported for Autobahn, not %s", cfg.System))
		}
		c.Journals = make([]core.Journal, cfg.N)
		for i := range c.Journals {
			c.Journals[i] = core.NewMemJournal()
		}
	}
	if cfg.SnapshotEvery > 0 {
		if cfg.System != Autobahn {
			panic(fmt.Sprintf("harness: snapshots are only supported for Autobahn, not %s", cfg.System))
		}
		c.Snapshots = make([]*core.MemSnapshots, cfg.N)
		for i := range c.Snapshots {
			c.Snapshots[i] = &core.MemSnapshots{}
		}
	}
	sink := runtime.CommitSink(rec.Sink())
	if cfg.WrapSink != nil {
		sink = cfg.WrapSink(sink)
	}
	for i := 0; i < cfg.N; i++ {
		id := types.NodeID(i)
		c.IDs = append(c.IDs, id)
		nd := buildNode(cfg, committee, id, suite, sink, c.journal(id), c.snapshots(id))
		nd = wrapAdversary(cfg, committee, id, suite, nd)
		c.Nodes = append(c.Nodes, nd)
		eng.AddNode(nd)
	}
	if c.Journals != nil {
		eng.SetRebuild(func(id types.NodeID, amnesia bool) runtime.Protocol {
			if cfg.OnRebuild != nil {
				cfg.OnRebuild(id, amnesia)
			}
			if amnesia {
				c.Journals[id] = core.NewMemJournal()
				if c.Snapshots != nil {
					c.Snapshots[id] = &core.MemSnapshots{}
				}
			}
			nd := buildNode(cfg, committee, id, suite, sink, c.Journals[id], c.snapshots(id))
			c.Nodes[id] = nd
			return nd
		})
	}
	return c
}

// wrapAdversary wraps a replica with its scheduled Byzantine behavior, if
// the fault schedule names one (Autobahn only — the baselines have no
// adversary story in this reproduction).
func wrapAdversary(cfg ClusterConfig, committee types.Committee, id types.NodeID, suite crypto.Suite, nd runtime.Protocol) runtime.Protocol {
	if cfg.Faults == nil {
		return nd
	}
	bw, ok := cfg.Faults.BehaviorFor(id)
	if !ok {
		return nd
	}
	cn, isAutobahn := nd.(*core.Node)
	if !isAutobahn {
		panic(fmt.Sprintf("harness: Byzantine behaviors are only supported for Autobahn, not %s", cfg.System))
	}
	for _, r := range cfg.Faults.Restarts() {
		if r.Node == id {
			panic(fmt.Sprintf("harness: node %s has both a Restart and a behavior (rebuild would drop the adversary)", id))
		}
	}
	wrapped, err := adversary.WrapNode(cn, committee, id, suite.Signer(id), bw.Behavior, bw.From, bw.To)
	if err != nil {
		panic(err)
	}
	return wrapped
}

func (c *Cluster) journal(id types.NodeID) core.Journal {
	if c.Journals == nil {
		return nil
	}
	return c.Journals[id]
}

// snapshots returns the replica's snapshot store as the interface type —
// nil (not a typed nil) when snapshots are off.
func (c *Cluster) snapshots(id types.NodeID) core.SnapshotStore {
	if c.Snapshots == nil {
		return nil
	}
	return c.Snapshots[id]
}

func buildNode(cfg ClusterConfig, committee types.Committee, id types.NodeID, suite crypto.Suite, sink runtime.CommitSink, journal core.Journal, snaps core.SnapshotStore) runtime.Protocol {
	switch cfg.System {
	case Autobahn:
		return core.NewNode(core.Config{
			Committee:      committee,
			Self:           id,
			Suite:          suite,
			VerifySigs:     cfg.VerifySigs,
			FastPath:       !cfg.FastPathOff,
			OptimisticTips: !cfg.OptimisticTipsOff,
			WeakVotes:      cfg.WeakVotes,
			Reputation:     cfg.Reputation,
			ViewTimeout:    cfg.ViewTimeout,
			Execution:      cfg.Execution,
			SnapshotEvery:  cfg.SnapshotEvery,
			Snapshots:      snaps,
			Journal:        journal,
			Sink:           sink,
		})
	case Bullshark:
		return bullshark.NewNode(bullshark.Config{
			Committee:  committee,
			Self:       id,
			Suite:      suite,
			VerifySigs: cfg.VerifySigs,
			Sink:       sink,
		})
	case VanillaHS, BatchedHS:
		variant := hotstuff.Vanilla
		if cfg.System == BatchedHS {
			variant = hotstuff.Batched
		}
		mode := hotstuff.Rotating
		if cfg.StableLeaders {
			mode = hotstuff.Stable
		}
		return hotstuff.NewNode(hotstuff.Config{
			Committee:   committee,
			Self:        id,
			Suite:       suite,
			VerifySigs:  cfg.VerifySigs,
			Variant:     variant,
			LeaderMode:  mode,
			ViewTimeout: cfg.ViewTimeout,
			Sink:        sink,
		})
	default:
		panic(fmt.Sprintf("harness: unknown system %q", cfg.System))
	}
}

// RunLoad installs an open-loop load of rate tx/s over [start, end) and
// runs the simulation until `until`.
func (c *Cluster) RunLoad(rate float64, start, end, until time.Duration) {
	workload.Install(c.Engine, c.IDs, workload.Config{
		TotalRate: rate,
		Start:     start,
		End:       end,
	})
	c.Engine.Run(until)
}
