package harness

import (
	"fmt"
	"io"
	"time"

	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/types"
)

// --- Table 1: RTT matrix ---

// Table1 renders the configured inter-region RTT matrix (the paper's
// Table 1, which the simulator's topology reproduces verbatim).
func Table1(w io.Writer) {
	fmt.Fprintf(w, "%-10s", "RTT(ms)")
	for _, r := range sim.IntraUSRegions {
		fmt.Fprintf(w, "%12s", r)
	}
	fmt.Fprintln(w)
	for i, r := range sim.IntraUSRegions {
		fmt.Fprintf(w, "%-10s", r)
		for j := range sim.IntraUSRegions {
			fmt.Fprintf(w, "%12.1f", sim.IntraUSRTTms[i][j])
		}
		fmt.Fprintln(w)
	}
}

// --- Fig. 5: latency vs throughput under increasing load ---

// LoadPoint is one point of the latency/throughput curve.
type LoadPoint struct {
	Load       float64 // offered tx/s
	Throughput float64 // committed tx/s over the steady window
	MeanLat    time.Duration
	P99        time.Duration
}

// Fig5Config parameterizes the load sweep.
type Fig5Config struct {
	N        int
	Loads    []float64 // offered loads; zero = paper-like default sweep
	Duration time.Duration
	Seed     uint64
	// LatCutoff stops a system's sweep once mean latency exceeds it
	// (default 4s, past the paper's plotted range).
	LatCutoff time.Duration
	Systems   []System
}

func (c *Fig5Config) fill() {
	if c.N == 0 {
		c.N = 4
	}
	if len(c.Loads) == 0 {
		c.Loads = []float64{10e3, 25e3, 50e3, 100e3, 150e3, 200e3, 220e3, 240e3, 260e3}
	}
	if c.Duration == 0 {
		c.Duration = 20 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.LatCutoff == 0 {
		c.LatCutoff = 4 * time.Second
	}
	if len(c.Systems) == 0 {
		c.Systems = AllSystems
	}
}

// Fig5 sweeps offered load and measures steady-state latency/throughput
// for each system (the paper's Figure 5).
func Fig5(cfg Fig5Config) map[System][]LoadPoint {
	cfg.fill()
	out := make(map[System][]LoadPoint)
	for _, sys := range cfg.Systems {
		for _, load := range cfg.Loads {
			p := MeasurePoint(sys, cfg.N, load, cfg.Duration, cfg.Seed)
			out[sys] = append(out[sys], p)
			if p.MeanLat > cfg.LatCutoff {
				break // saturated: later points only get worse
			}
		}
	}
	return out
}

// MeasurePoint runs one (system, n, load) cell and returns its steady
// window measurements. The first and last fifths of the run are excluded
// as warmup/drain.
func MeasurePoint(sys System, n int, load float64, duration time.Duration, seed uint64) LoadPoint {
	c := Build(ClusterConfig{System: sys, N: n, Seed: seed})
	c.RunLoad(load, 0, duration, duration+10*time.Second)
	warm := duration / 5
	p := LoadPoint{
		Load:       load,
		Throughput: c.Recorder.Throughput(warm, duration-warm),
		MeanLat:    c.Recorder.MeanLatency(warm, duration-warm),
		P99:        c.Recorder.Percentile(0.99),
	}
	if p.MeanLat == 0 {
		// Nothing committed in the window: report as saturated.
		p.MeanLat = time.Hour
	}
	return p
}

// PrintFig5 renders the sweep like the paper's Figure 5 series.
func PrintFig5(w io.Writer, res map[System][]LoadPoint) {
	fmt.Fprintf(w, "%-10s %12s %14s %12s %12s\n", "system", "load(tx/s)", "tput(tx/s)", "mean(ms)", "p99(ms)")
	for _, sys := range AllSystems {
		for _, p := range res[sys] {
			fmt.Fprintf(w, "%-10s %12.0f %14.0f %12.1f %12.1f\n",
				sys, p.Load, p.Throughput, ms(p.MeanLat), ms(p.P99))
		}
	}
}

// --- Fig. 6: peak throughput scaling with n ---

// PeakPoint is the peak sustainable throughput of one (system, n) cell,
// annotated with the latency at peak (the numbers atop the paper's bars).
type PeakPoint struct {
	Peak      float64
	LatAtPeak time.Duration
}

// Fig6Config parameterizes the scaling experiment.
type Fig6Config struct {
	Ns       []int
	Duration time.Duration
	Seed     uint64
	// LatBound is the latency cap defining "peak" (the paper bounds
	// latency at 2s).
	LatBound time.Duration
	Systems  []System
	// Loads is the candidate load ladder searched for the peak.
	Loads []float64
}

func (c *Fig6Config) fill() {
	if len(c.Ns) == 0 {
		c.Ns = []int{4, 12, 20}
	}
	if c.Duration == 0 {
		c.Duration = 20 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.LatBound == 0 {
		c.LatBound = 2 * time.Second
	}
	if len(c.Systems) == 0 {
		c.Systems = AllSystems
	}
	if len(c.Loads) == 0 {
		c.Loads = []float64{1.5e3, 5e3, 10e3, 15e3, 20e3, 30e3, 50e3, 75e3, 100e3,
			125e3, 150e3, 175e3, 200e3, 220e3, 240e3, 260e3}
	}
}

// Fig6 finds, per system and committee size, the highest offered load the
// system sustains (committed throughput >= 90% of offered, mean latency
// within the bound), reporting throughput and latency at that peak.
func Fig6(cfg Fig6Config) map[int]map[System]PeakPoint {
	cfg.fill()
	out := make(map[int]map[System]PeakPoint)
	for _, n := range cfg.Ns {
		out[n] = make(map[System]PeakPoint)
		for _, sys := range cfg.Systems {
			out[n][sys] = peakSearch(sys, n, cfg)
		}
	}
	return out
}

func peakSearch(sys System, n int, cfg Fig6Config) PeakPoint {
	var best PeakPoint
	for _, load := range cfg.Loads {
		p := MeasurePoint(sys, n, load, cfg.Duration, cfg.Seed)
		if p.MeanLat <= cfg.LatBound && p.Throughput >= 0.9*load {
			if p.Throughput > best.Peak {
				best = PeakPoint{Peak: p.Throughput, LatAtPeak: p.MeanLat}
			}
			continue
		}
		break // saturated; the ladder is increasing
	}
	return best
}

// PrintFig6 renders the peak table like the paper's Figure 6 bars.
func PrintFig6(w io.Writer, res map[int]map[System]PeakPoint, ns []int) {
	if len(ns) == 0 {
		ns = []int{4, 12, 20}
	}
	fmt.Fprintf(w, "%-10s", "system")
	for _, n := range ns {
		fmt.Fprintf(w, "%16s", fmt.Sprintf("n=%d peak", n))
		fmt.Fprintf(w, "%12s", "lat(ms)")
	}
	fmt.Fprintln(w)
	for _, sys := range AllSystems {
		fmt.Fprintf(w, "%-10s", sys)
		for _, n := range ns {
			p := res[n][sys]
			fmt.Fprintf(w, "%16.0f%12.0f", p.Peak, ms(p.LatAtPeak))
		}
		fmt.Fprintln(w)
	}
}

// --- §6.1 ablation: fast path & optimistic tips ---

// AblationResult reports Autobahn's latency under the four toggle
// combinations at a fixed load (the paper reports +40ms without the fast
// path and +33ms with certified-only tips).
type AblationResult struct {
	Full          time.Duration // fast path + optimistic tips
	NoFastPath    time.Duration
	CertifiedTips time.Duration
	Neither       time.Duration
	// WeakVotes is the §5.5.2 refinement on top of the full configuration.
	WeakVotes time.Duration
}

// Ablation measures the §6.1 optimization deltas (plus the §5.5.2
// weak-vote refinement).
func Ablation(n int, load float64, duration time.Duration, seed uint64) AblationResult {
	run := func(noFast, noTips, weak bool) time.Duration {
		c := Build(ClusterConfig{
			System: Autobahn, N: n, Seed: seed,
			FastPathOff: noFast, OptimisticTipsOff: noTips, WeakVotes: weak,
		})
		c.RunLoad(load, 0, duration, duration+5*time.Second)
		warm := duration / 5
		return c.Recorder.MeanLatency(warm, duration-warm)
	}
	return AblationResult{
		Full:          run(false, false, false),
		NoFastPath:    run(true, false, false),
		CertifiedTips: run(false, true, false),
		Neither:       run(true, true, false),
		WeakVotes:     run(false, false, true),
	}
}

// PrintAblation renders the ablation table.
func PrintAblation(w io.Writer, r AblationResult) {
	fmt.Fprintf(w, "%-34s %10s %10s\n", "configuration", "mean(ms)", "delta(ms)")
	fmt.Fprintf(w, "%-34s %10.1f %10s\n", "fast path + optimistic tips", ms(r.Full), "-")
	fmt.Fprintf(w, "%-34s %10.1f %+10.1f\n", "slow path (fast path off)", ms(r.NoFastPath), ms(r.NoFastPath-r.Full))
	fmt.Fprintf(w, "%-34s %10.1f %+10.1f\n", "certified tips only", ms(r.CertifiedTips), ms(r.CertifiedTips-r.Full))
	fmt.Fprintf(w, "%-34s %10.1f %+10.1f\n", "neither optimization", ms(r.Neither), ms(r.Neither-r.Full))
	fmt.Fprintf(w, "%-34s %10.1f %+10.1f\n", "full + weak votes (§5.5.2)", ms(r.WeakVotes), ms(r.WeakVotes-r.Full))
}

// --- Figs. 1, 7: leader-failure blips & hangovers ---

// BlipResult captures one blip experiment: the latency-vs-request-start
// series plus the §2.1 hangover analysis.
type BlipResult struct {
	System    System
	Load      float64
	FaultFrom time.Duration
	FaultTo   time.Duration
	// Baseline is the pre-blip steady-state mean latency.
	Baseline time.Duration
	// BlipEnd estimates when commits resumed (end of the blip proper).
	BlipEnd time.Duration
	// Hangover is how long past BlipEnd latency stayed above 2x baseline
	// (meaningful degradation; a recovering replica digesting its data
	// backlog costs the fast path ~2 message delays for a while, which is
	// not a backlog hangover in the paper's sense).
	Hangover time.Duration
	// PeakLat is the worst per-second latency during/after the blip.
	PeakLat time.Duration
	Series  []metrics.SeriesPoint
	Total   uint64
}

// BlipConfig parameterizes a leader-failure blip run.
type BlipConfig struct {
	System System
	N      int
	Load   float64
	// Timeout is the view timeout (1s or 5s in Fig. 7).
	Timeout time.Duration
	// StableLeaders selects the paper's single-timeout scenarios; the
	// default rotating regime produces the "Dbl" double timeout.
	StableLeaders bool
	// CrashFrom/CrashFor crash the target replica (default: 10s, long
	// enough to cover the relevant leadership moments).
	CrashFrom time.Duration
	CrashFor  time.Duration
	CrashNode types.NodeID
	Duration  time.Duration
	Seed      uint64
}

func (c *BlipConfig) fill() {
	if c.N == 0 {
		c.N = 4
	}
	if c.Timeout == 0 {
		c.Timeout = time.Second
	}
	if c.CrashFrom == 0 {
		c.CrashFrom = 10 * time.Second
	}
	if c.CrashFor == 0 {
		c.CrashFor = 1500 * time.Millisecond
	}
	if c.CrashNode == 0 {
		c.CrashNode = 1
	}
	if c.Duration == 0 {
		c.Duration = 30 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// RunBlip crashes one replica mid-run and analyzes the hangover.
func RunBlip(cfg BlipConfig) BlipResult {
	cfg.fill()
	faults := (&sim.FaultSchedule{}).AddDown(cfg.CrashNode, cfg.CrashFrom, cfg.CrashFrom+cfg.CrashFor)
	return runBlipWith(cfg, faults)
}

// RunRestartBlip crashes one Autobahn replica mid-run and restarts its
// process at the end of the down window — rebuilt from its journal, or
// blank when amnesia is set — then analyzes the blip exactly like
// RunBlip. This is the recovery analog of Fig. 7: the restarted replica
// must rejoin without a safety violation and without a hangover beyond
// the down window.
func RunRestartBlip(cfg BlipConfig, amnesia bool) BlipResult {
	cfg.System = Autobahn
	cfg.fill()
	faults := (&sim.FaultSchedule{}).
		AddDown(cfg.CrashNode, cfg.CrashFrom, cfg.CrashFrom+cfg.CrashFor).
		Restart(cfg.CrashNode, cfg.CrashFrom+cfg.CrashFor, amnesia)
	return runBlipWith(cfg, faults)
}

func runBlipWith(cfg BlipConfig, faults *sim.FaultSchedule) BlipResult {
	c := Build(ClusterConfig{
		System:        cfg.System,
		N:             cfg.N,
		Seed:          cfg.Seed,
		ViewTimeout:   cfg.Timeout,
		StableLeaders: cfg.StableLeaders,
		Faults:        faults,
	})
	c.RunLoad(cfg.Load, 0, cfg.Duration, cfg.Duration+15*time.Second)

	rec := c.Recorder
	baseline := rec.MeanLatency(2*time.Second, cfg.CrashFrom-time.Second)
	blipEnd := commitResumeTime(rec, cfg.CrashFrom)
	// The blip lasts at least until the fault clears; a seamless system
	// may never fully stall commits, which would under-report the end.
	if faultEnd := cfg.CrashFrom + cfg.CrashFor; blipEnd < faultEnd {
		blipEnd = faultEnd
	}
	res := BlipResult{
		System:    cfg.System,
		Load:      cfg.Load,
		FaultFrom: cfg.CrashFrom,
		FaultTo:   cfg.CrashFrom + cfg.CrashFor,
		Baseline:  baseline,
		BlipEnd:   blipEnd,
		Hangover:  rec.Hangover(blipEnd, baseline, 2.0),
		Series:    rec.ArrivalSeries(),
		Total:     rec.Total(),
	}
	for _, p := range res.Series {
		if p.MeanLat > res.PeakLat {
			res.PeakLat = p.MeanLat
		}
	}
	return res
}

// commitResumeTime finds when per-second committed throughput first
// returns to a nonzero level after a stall that begins within a few
// seconds of the fault. Seamless systems may never fully stall (parallel
// slots keep committing); then the blip end is the fault start itself.
func commitResumeTime(rec *metrics.Recorder, faultStart time.Duration) time.Duration {
	commits := rec.CommitSeries()
	start := int(faultStart / time.Second)
	stalled := -1
	for s := start; s < len(commits) && s < start+5; s++ {
		if commits[s] == 0 {
			stalled = s
			break
		}
	}
	if stalled < 0 {
		return faultStart
	}
	for s := stalled; s < len(commits); s++ {
		if commits[s] > 0 {
			return time.Duration(s) * time.Second
		}
	}
	return faultStart
}

// PrintBlip renders a blip run: header plus the per-second series the
// paper plots (latency by request start time).
func PrintBlip(w io.Writer, r BlipResult, maxSec int) {
	fmt.Fprintf(w, "%s @ %.0f tx/s: fault [%.0fs,%.0fs) baseline=%.0fms peak=%.1fs resume=%.0fs hangover=%.1fs total=%d\n",
		r.System, r.Load, r.FaultFrom.Seconds(), r.FaultTo.Seconds(),
		ms(r.Baseline), r.PeakLat.Seconds(), r.BlipEnd.Seconds(), r.Hangover.Seconds(), r.Total)
	for _, p := range r.Series {
		if p.Second > maxSec {
			break
		}
		bar := int(p.MeanLat / (100 * time.Millisecond))
		if bar > 60 {
			bar = 60
		}
		fmt.Fprintf(w, "  t=%3ds lat=%8.1fms |%s\n", p.Second, ms(p.MeanLat), stars(bar))
	}
}

// --- Fig. 8: partial partition ---

// PartitionResult captures the Fig. 8 experiment for one system.
type PartitionResult struct {
	System System
	// RecoverySecs is how long after heal until per-second latency (by
	// request start) returns to <= 2x the pre-partition baseline.
	Recovery time.Duration
	// WorstInBlip is the worst latency experienced by transactions
	// arriving during the partition.
	WorstInBlip time.Duration
	Baseline    time.Duration
	Total       uint64
	Series      []metrics.SeriesPoint
}

// PartitionConfig parameterizes the Fig. 8 run.
type PartitionConfig struct {
	System   System
	N        int
	Load     float64
	From, To time.Duration
	Duration time.Duration
	Seed     uint64
}

func (c *PartitionConfig) fill() {
	if c.N == 0 {
		c.N = 4
	}
	if c.Load == 0 {
		c.Load = 15e3
	}
	if c.From == 0 {
		c.From = 10 * time.Second
	}
	if c.To == 0 {
		c.To = 30 * time.Second
	}
	if c.Duration == 0 {
		c.Duration = 50 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// buildPartitionCluster constructs the Fig. 8 deployment without load.
func buildPartitionCluster(cfg PartitionConfig) *Cluster {
	half := make([]types.NodeID, 0, cfg.N/2)
	for i := cfg.N / 2; i < cfg.N; i++ {
		half = append(half, types.NodeID(i))
	}
	faults := (&sim.FaultSchedule{}).SplitPartition(cfg.N, half, cfg.From, cfg.To)
	return Build(ClusterConfig{System: cfg.System, N: cfg.N, Seed: cfg.Seed, Faults: faults})
}

// RunPartition splits the committee in half for [From, To) and measures
// backlog recovery (the paper's Figure 8).
func RunPartition(cfg PartitionConfig) PartitionResult {
	cfg.fill()
	c := buildPartitionCluster(cfg)
	c.RunLoad(cfg.Load, 0, cfg.Duration, cfg.Duration+30*time.Second)

	rec := c.Recorder
	baseline := rec.MeanLatency(2*time.Second, cfg.From-time.Second)
	res := PartitionResult{
		System:   cfg.System,
		Baseline: baseline,
		Total:    rec.Total(),
		Series:   rec.ArrivalSeries(),
	}
	healSec := int(cfg.To / time.Second)
	last := healSec
	for _, p := range res.Series {
		if p.Second >= int(cfg.From/time.Second) && p.Second < healSec && p.MeanLat > res.WorstInBlip {
			res.WorstInBlip = p.MeanLat
		}
		if p.Second >= healSec && p.Committed > 0 && p.MeanLat > 2*baseline+100*time.Millisecond {
			last = p.Second + 1
		}
	}
	res.Recovery = time.Duration(last-healSec) * time.Second
	return res
}

// PrintPartition renders the partition run summary.
func PrintPartition(w io.Writer, r PartitionResult) {
	fmt.Fprintf(w, "%-10s baseline=%6.0fms worstInBlip=%6.1fs recoveryAfterHeal=%5.1fs committed=%d\n",
		r.System, ms(r.Baseline), r.WorstInBlip.Seconds(), r.Recovery.Seconds(), r.Total)
}

// --- helpers ---

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

func stars(n int) string {
	s := make([]byte, n)
	for i := range s {
		s[i] = '*'
	}
	return string(s)
}
