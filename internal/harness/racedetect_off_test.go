//go:build !race

package harness

const raceDetector = false
