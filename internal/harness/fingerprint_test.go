package harness

import (
	"fmt"
	"testing"
	"time"
)

// TestSimFingerprint pins the deterministic-simulation fingerprint used
// to validate refactors of the real runtime: the fixed-seed sim path
// must stay byte-identical across transport/egress/ingress changes —
// including with the sharded data plane compiled in (the simulator
// always runs unsharded, W=1, and digest memoization is value-
// deterministic), which this test re-verifies on every run (only the
// real-time runtimes may change behavior). If a PR intentionally
// changes simulated protocol behavior, it must update these constants
// and say so.
func TestSimFingerprint(t *testing.T) {
	p := MeasurePoint(Autobahn, 4, 5e3, 5*time.Second, 42)
	if got := fmt.Sprintf("%.2f", p.Throughput); got != "4995.33" {
		t.Fatalf("throughput fingerprint drifted: %s tx/s, want 4995.33", got)
	}
	if p.MeanLat != 166069675*time.Nanosecond {
		t.Fatalf("mean latency fingerprint drifted: %v, want 166.069675ms", p.MeanLat)
	}
	if p.P99 != 237308553*time.Nanosecond {
		t.Fatalf("p99 fingerprint drifted: %v, want 237.308553ms", p.P99)
	}
}
