package harness

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"repro/internal/adversary"
	"repro/internal/metrics"
	"repro/internal/runtime"
	"repro/internal/sim"
	"repro/internal/types"
)

// AdversaryNames lists the shipped Byzantine behaviors in reporting
// order (mirrors internal/adversary).
func AdversaryNames() []string { return adversary.Names() }

// --- commit interceptor: the safety oracle ---

// CommitInterceptor observes every replica's commit stream and checks the
// protocol's safety invariants from outside the protocol: no replica
// commits two batches at one (lane, position); no two replicas commit
// different batches at the same (lane, position) — the §A.4 equivocation
// hazard; every replica commits each lane gap-free (positions 1, 2, 3, …
// in delivery order — committed lane prefixes admit no holes); and all
// replica logs agree on their common prefix (identical total order). It
// is safe for concurrent use, so the same oracle runs under the
// single-threaded simulator and the real-time clusters.
type CommitInterceptor struct {
	mu        sync.Mutex
	logs      map[types.NodeID][]CommitRecord
	byPos     map[[2]uint64]types.Digest // (lane, position) -> digest, across all replicas
	byHash    map[[2]uint64]types.Digest // (lane, position) -> AppHash: the execution oracle
	seen      map[[3]uint64]struct{}     // (replica, lane, position): per-replica duplicate check
	next      map[[2]uint64]types.Pos    // (replica, lane) -> next expected position (gap check)
	recovered map[types.NodeID]bool      // NoteRecovery: replay of recorded commits is legal
	jumped    map[types.NodeID]bool      // replica joined via snapshot: its log is a suffix
	broken    string                     // first violation, sticky
}

// CommitRecord is one observed commit.
type CommitRecord struct {
	Lane     types.NodeID
	Position types.Pos
	Digest   types.Digest
	// AppHash is the execution layer's chain hash after this batch (zero
	// when execution is off). Two replicas reporting different non-zero
	// AppHashes at one (lane, position) executed divergent histories.
	AppHash types.Digest
}

// NewCommitInterceptor builds an empty oracle.
func NewCommitInterceptor() *CommitInterceptor {
	return &CommitInterceptor{
		logs:      make(map[types.NodeID][]CommitRecord),
		byPos:     make(map[[2]uint64]types.Digest),
		byHash:    make(map[[2]uint64]types.Digest),
		seen:      make(map[[3]uint64]struct{}),
		next:      make(map[[2]uint64]types.Pos),
		recovered: make(map[types.NodeID]bool),
		jumped:    make(map[types.NodeID]bool),
	}
}

// NoteRecovery marks a replica as crash-recovered (the soak harness
// calls it on every restart). A recovering replica legitimately
// re-delivers commits it already externalized — an amnesiac re-executes
// the whole total order, and a crash can land between a commit delivery
// and the persisted execution-frontier record that would skip it on
// replay. After NoteRecovery, a re-delivery of an already-recorded
// (lane, position) is verified against the pinned digest (a differing
// batch is still a violation) and then dropped, instead of being flagged
// as an intra-replica double commit.
func (ci *CommitInterceptor) NoteRecovery(replica types.NodeID) {
	ci.mu.Lock()
	defer ci.mu.Unlock()
	ci.recovered[replica] = true
}

// Wrap interposes the oracle on a commit sink (ClusterConfig.WrapSink).
func (ci *CommitInterceptor) Wrap(inner runtime.CommitSink) runtime.CommitSink {
	return runtime.CommitSinkFunc(func(node types.NodeID, now time.Duration, c runtime.Committed) {
		ci.Record(node, c.Lane, c.Position, c.Batch.Digest(), c.AppHash)
		inner.OnCommit(node, now, c)
	})
}

// Record observes one commit (live harnesses feed their observers here).
// appHash is the reporting replica's execution chain hash after the batch
// (zero with execution off — zero hashes are exempt from the execution
// oracle, never pinned).
func (ci *CommitInterceptor) Record(replica, lane types.NodeID, pos types.Pos, digest, appHash types.Digest) {
	ci.mu.Lock()
	defer ci.mu.Unlock()
	// Intra-replica: a position must commit at most once — except on a
	// crash-recovered replica, where replay of already-recorded commits
	// is legal as long as the batch matches the pin.
	rk := [3]uint64{uint64(replica), uint64(lane), uint64(pos)}
	if _, dup := ci.seen[rk]; dup {
		if ci.recovered[replica] {
			if d, ok := ci.byPos[[2]uint64{uint64(lane), uint64(pos)}]; ok && d != digest && ci.broken == "" {
				ci.broken = fmt.Sprintf("replica %s replayed lane %s position %d with a different batch", replica, lane, pos)
			}
			return
		}
		if ci.broken == "" {
			ci.broken = fmt.Sprintf("replica %s committed lane %s position %d twice", replica, lane, pos)
		}
	}
	ci.seen[rk] = struct{}{}
	// Intra-replica: each lane must commit gap-free, positions 1, 2, 3, …
	// in delivery order (a committed lane prefix admits no holes).
	lk := [2]uint64{uint64(replica), uint64(lane)}
	if want := ci.next[lk] + 1; pos != want {
		if ci.recovered[replica] && pos > want {
			// A snapshot-joined replica legitimately resumes a lane above
			// its last locally-delivered position: positions beneath the
			// snapshot frontier were adopted as state, not replayed. Its
			// log is a suffix of the others', so it is excluded from the
			// common-prefix check (positional pins still apply).
			ci.jumped[replica] = true
		} else if ci.broken == "" {
			ci.broken = fmt.Sprintf("replica %s lane %s gap: committed position %d, expected %d", replica, lane, pos, want)
		}
	}
	if pos > ci.next[lk] {
		ci.next[lk] = pos
	}
	// Cross-replica: one batch per (lane, position), everywhere.
	k := [2]uint64{uint64(lane), uint64(pos)}
	if d, ok := ci.byPos[k]; ok {
		if d != digest && ci.broken == "" {
			ci.broken = fmt.Sprintf("contradictory commits at lane %s position %d", lane, pos)
		}
	} else {
		ci.byPos[k] = digest
	}
	// Cross-replica execution oracle: the chain hash after a (lane,
	// position) is a pure function of the committed history up to it, so
	// every executing replica must report the same one. A mismatch means
	// some replica executed a different history — mutated batch, skipped
	// entry, reordering — even if its commit stream looks plausible.
	if appHash != (types.Digest{}) {
		if h, ok := ci.byHash[k]; ok {
			if h != appHash && ci.broken == "" {
				ci.broken = fmt.Sprintf("execution divergence at lane %s position %d", lane, pos)
			}
		} else {
			ci.byHash[k] = appHash
		}
	}
	ci.logs[replica] = append(ci.logs[replica], CommitRecord{Lane: lane, Position: pos, Digest: digest, AppHash: appHash})
}

// Violation returns the first safety violation observed ("" if none),
// after additionally checking cross-replica prefix agreement.
func (ci *CommitInterceptor) Violation() string {
	ci.mu.Lock()
	defer ci.mu.Unlock()
	if ci.broken != "" {
		return ci.broken
	}
	ids := make([]types.NodeID, 0, len(ci.logs))
	for id := range ci.logs {
		ids = append(ids, id)
	}
	// Pairwise comparison below reports the first divergence it sees:
	// canonical id order keeps the violation string deterministic.
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			if ci.jumped[ids[i]] || ci.jumped[ids[j]] {
				// A snapshot-joined replica's log is a suffix of the full
				// order, not a prefix: index-aligned comparison would
				// report false divergence. The positional pins (byPos,
				// byHash) still bind every entry it delivers.
				continue
			}
			a, b := ci.logs[ids[i]], ci.logs[ids[j]]
			n := len(a)
			if len(b) < n {
				n = len(b)
			}
			for k := 0; k < n; k++ {
				if a[k] != b[k] {
					return fmt.Sprintf("log divergence between %s and %s at index %d: %v vs %v",
						ids[i], ids[j], k, a[k], b[k])
				}
			}
		}
	}
	return ""
}

// Commits returns how many commits replica reported (liveness floor
// checks).
func (ci *CommitInterceptor) Commits(replica types.NodeID) int {
	ci.mu.Lock()
	defer ci.mu.Unlock()
	return len(ci.logs[replica])
}

// --- Byzantine blip experiment ---

// ByzantineConfig parameterizes one simulated Byzantine scenario: a
// cluster under load with `Adversaries` replicas running the named
// behavior during [From, To).
type ByzantineConfig struct {
	Behavior    string
	N           int
	Adversaries int // how many replicas misbehave (must stay <= f)
	Load        float64
	From, To    time.Duration
	Duration    time.Duration
	Seed        uint64
	// CompanionCrash additionally crashes one honest replica for 2s
	// inside the behavior window. Sync-corruption behaviors are otherwise
	// barely exercised — a healthy cluster rarely fetches — whereas a
	// recovering replica must catch up through sync requests, some of
	// which land on the adversary and must be survived.
	CompanionCrash bool
}

func (c *ByzantineConfig) fill() {
	if c.N == 0 {
		c.N = 4
	}
	if c.Adversaries == 0 {
		c.Adversaries = 1
	}
	if c.Load == 0 {
		c.Load = 20e3
	}
	if c.From == 0 {
		c.From = 5 * time.Second
	}
	if c.To == 0 {
		c.To = 15 * time.Second
	}
	if c.Duration == 0 {
		c.Duration = 25 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if f := (c.N - 1) / 3; c.Adversaries > f {
		panic(fmt.Sprintf("harness: %d adversaries exceeds f=%d for n=%d", c.Adversaries, f, c.N))
	}
}

// AdversaryIDs returns the replica IDs the scenario corrupts: spread
// through the committee starting at 2 (avoiding replica 0, whose commit
// stream doubles as several harnesses' canonical log).
func (c *ByzantineConfig) AdversaryIDs() []types.NodeID {
	out := make([]types.NodeID, 0, c.Adversaries)
	for i := 0; i < c.Adversaries; i++ {
		out = append(out, types.NodeID((2+3*i)%c.N))
	}
	return out
}

// ByzantineResult captures one scenario: the safety verdict from the
// commit interceptor, the liveness/throughput outcome versus the same
// fault-free deployment, and the seamlessness (hangover) analysis.
type ByzantineResult struct {
	Behavior    string
	N           int
	Adversaries int
	// Baseline is the pre-window steady-state mean latency.
	Baseline time.Duration
	// Hangover is how long past the behavior window latency stayed above
	// 2x baseline (the paper's seamlessness measure; ~0 for a seamless
	// system).
	Hangover time.Duration
	// PeakLat is the worst per-second latency over the run.
	PeakLat time.Duration
	// P99 is the run's 99th-percentile commit latency.
	P99 time.Duration
	// Total is the committed transaction count; FaultFreeTotal the same
	// deployment's count with no adversary (same seed).
	Total, FaultFreeTotal uint64
	// Violation is the interceptor's safety verdict ("" = safe).
	Violation string
	Series    []metrics.SeriesPoint
}

// RunByzantine executes one Byzantine scenario on the deterministic
// simulator and, for the throughput comparison, the matching fault-free
// run. Reputation (§B.1) is enabled: the experiments double as coverage
// of the paper's lane-reputation defense.
func RunByzantine(cfg ByzantineConfig) ByzantineResult {
	cfg.fill()
	ci := NewCommitInterceptor()
	faults := &sim.FaultSchedule{}
	for _, id := range cfg.AdversaryIDs() {
		faults.AddBehavior(id, cfg.Behavior, cfg.From, cfg.To)
	}
	if cfg.CompanionCrash {
		// Replica 1 is honest in every scenario (AdversaryIDs starts at 2).
		faults.AddDown(1, cfg.From+time.Second, cfg.From+3*time.Second)
	}
	c := Build(ClusterConfig{
		System: Autobahn, N: cfg.N, Seed: cfg.Seed,
		Reputation: true,
		Faults:     faults,
		WrapSink:   ci.Wrap,
	})
	c.RunLoad(cfg.Load, 0, cfg.Duration, cfg.Duration+15*time.Second)

	ff := Build(ClusterConfig{System: Autobahn, N: cfg.N, Seed: cfg.Seed, Reputation: true})
	ff.RunLoad(cfg.Load, 0, cfg.Duration, cfg.Duration+15*time.Second)

	rec := c.Recorder
	// Steady-state window: after warmup, strictly before the behavior
	// window opens (From may be as low as ~2s in quick configurations).
	warm := time.Second
	if cfg.From > 3*time.Second {
		warm = 2 * time.Second
	}
	baseline := rec.MeanLatency(warm, cfg.From)
	res := ByzantineResult{
		Behavior:       cfg.Behavior,
		N:              cfg.N,
		Adversaries:    cfg.Adversaries,
		Baseline:       baseline,
		P99:            rec.Percentile(0.99),
		Hangover:       rec.Hangover(cfg.To, baseline, 2.0),
		Total:          rec.Total(),
		FaultFreeTotal: ff.Recorder.Total(),
		Violation:      ci.Violation(),
		Series:         rec.ArrivalSeries(),
	}
	for _, p := range res.Series {
		if p.MeanLat > res.PeakLat {
			res.PeakLat = p.MeanLat
		}
	}
	return res
}

// PrintByzantine renders one scenario like the blip experiments.
func PrintByzantine(w io.Writer, r ByzantineResult) {
	safety := "safe"
	if r.Violation != "" {
		safety = "VIOLATION: " + r.Violation
	}
	ratio := 0.0
	if r.FaultFreeTotal > 0 {
		ratio = float64(r.Total) / float64(r.FaultFreeTotal)
	}
	fmt.Fprintf(w, "%-15s n=%d adv=%d baseline=%6.1fms p99=%7.1fms peak=%7.1fms hangover=%4.1fs tput=%5.1f%% of fault-free (%d/%d) %s\n",
		r.Behavior, r.N, r.Adversaries, ms(r.Baseline), ms(r.P99), ms(r.PeakLat),
		r.Hangover.Seconds(), 100*ratio, r.Total, r.FaultFreeTotal, safety)
}
