package gateway

import (
	"encoding/binary"
	"io"
	"net"
	"testing"
	"time"
)

// rawConn opens an un-handshaken pipe to the server.
func rawConn(s *Server) net.Conn {
	a, b := net.Pipe()
	go s.ServeConn(b)
	return a
}

// expectDropped asserts the server closes its side: reads hit EOF/closed
// within the timeout.
func expectDropped(t *testing.T, c net.Conn) {
	t.Helper()
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 64)
	for {
		if _, err := c.Read(buf); err != nil {
			if err == io.EOF || err == io.ErrClosedPipe {
				return
			}
			// net.Pipe surfaces the peer close as io.EOF; anything else
			// (deadline) means the server kept the connection alive.
			t.Fatalf("connection not dropped: %v", err)
		}
	}
}

// TestHostileClients drives protocol abuse at the server: every attack
// drops that connection, counts as hostile, and leaves the backend and
// other clients untouched.
func TestHostileClients(t *testing.T) {
	be := &fakeBackend{}
	srv := NewServer(be, Options{MaxFrame: 1 << 16})
	defer srv.Stop()

	t.Run("garbage bytes", func(t *testing.T) {
		c := rawConn(srv)
		defer c.Close()
		// Random-ish junk: the length prefix decodes to an absurd frame.
		c.Write([]byte("\xde\xad\xbe\xef\xffGET / HTTP/1.1\r\n\r\n"))
		expectDropped(t, c)
	})

	t.Run("oversized frame", func(t *testing.T) {
		c := rawConn(srv)
		defer c.Close()
		hdr := binary.LittleEndian.AppendUint32(nil, 1<<30) // 1 GB claim
		c.Write(append(hdr, frameHello))
		expectDropped(t, c)
	})

	t.Run("submit before hello", func(t *testing.T) {
		c := rawConn(srv)
		defer c.Close()
		c.Write(appendSubmit(nil, 1, PriorityNormal, []byte("sneak")))
		expectDropped(t, c)
	})

	t.Run("unknown frame type after hello", func(t *testing.T) {
		c := rawConn(srv)
		defer c.Close()
		c.Write(appendHello(nil, 999))
		readAck(t, c) // HelloOK
		c.Write(appendFrame(nil, 0x7F, []byte("???")))
		expectDropped(t, c)
	})

	t.Run("empty payload", func(t *testing.T) {
		c := rawConn(srv)
		defer c.Close()
		c.Write(appendHello(nil, 998))
		readAck(t, c) // HelloOK
		c.Write(appendSubmit(nil, 1, PriorityNormal, nil))
		expectDropped(t, c)
	})

	if got := len(be.admitted()); got != 0 {
		t.Fatalf("hostile input reached the backend: %d admissions", got)
	}
	if st := srv.Stats(); st.HostileDrops < 5 {
		t.Fatalf("HostileDrops = %d, want >= 5", st.HostileDrops)
	}

	// Window overflow is abuse of a *valid* session: typed rejections,
	// not a drop — and still nothing extra reaches the backend beyond
	// the window.
	t.Run("window overflow", func(t *testing.T) {
		srv2 := NewServer(&fakeBackend{}, Options{Window: 4})
		defer srv2.Stop()
		c := rawConn(srv2)
		defer c.Close()
		c.Write(appendHello(nil, 1))
		readAck(t, c) // HelloOK
		for seq := uint64(1); seq <= 12; seq++ {
			c.Write(appendSubmit(nil, seq, PriorityNormal, []byte("x")))
		}
		waitCond(t, "overflow rejections", func() bool {
			return srv2.Stats().RejectedWindowFull == 8
		})
		if got := srv2.Stats().Admitted; got != 4 {
			t.Fatalf("admitted %d, want the window's 4", got)
		}
		if srv2.Stats().HostileDrops != 0 {
			t.Fatal("window overflow must not be treated as hostile")
		}
	})

	// The replica stays healthy throughout: a well-behaved client on the
	// same server commits normally after all of the above.
	cl, err := NewClient(ClientOptions{ID: 1000, Dial: pipeDial(srv)})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	p, err := cl.Submit([]byte("still-works"))
	if err != nil {
		t.Fatal(err)
	}
	waitCond(t, "good-client admission", func() bool { return len(be.admitted()) == 1 })
	be.commit(srv)
	if out := p.Wait(); !out.Committed {
		t.Fatalf("good client outcome = %+v", out)
	}
}

// readAck reads one frame off a raw connection (handshake replies).
func readAck(t *testing.T, c net.Conn) {
	t.Helper()
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, _, err := readFrame(c, 1<<16, nil); err != nil {
		t.Fatalf("reading server frame: %v", err)
	}
	c.SetReadDeadline(time.Time{})
}
