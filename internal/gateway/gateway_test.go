package gateway

import (
	"bytes"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/types"
)

// fakeBackend is a settable-depth mempool stand-in that records every
// admitted envelope.
type fakeBackend struct {
	mu   sync.Mutex
	txs  [][]byte
	mem  int
	lane int
}

func (f *fakeBackend) Submit(tx []byte) {
	f.mu.Lock()
	f.txs = append(f.txs, append([]byte(nil), tx...))
	f.mu.Unlock()
}

func (f *fakeBackend) MempoolDepth() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.mem
}

func (f *fakeBackend) LaneDepth() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.lane
}

func (f *fakeBackend) setDepths(mem, lane int) {
	f.mu.Lock()
	f.mem, f.lane = mem, lane
	f.mu.Unlock()
}

func (f *fakeBackend) admitted() [][]byte {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([][]byte, len(f.txs))
	copy(out, f.txs)
	return out
}

// commit drains the recorded envelopes into one committed batch fed to
// the server — the replica's commit sink in miniature.
func (f *fakeBackend) commit(s *Server) int {
	f.mu.Lock()
	txs := make([]types.Transaction, len(f.txs))
	for i, tx := range f.txs {
		txs[i] = types.Transaction(tx)
	}
	f.txs = nil
	f.mu.Unlock()
	if len(txs) == 0 {
		return 0
	}
	s.OnCommit(types.NewBatch(0, 1, txs, 0))
	return len(txs)
}

// pipeDial returns a Dial that connects through an in-memory pipe to
// the server — no sockets, no ports, -race friendly.
func pipeDial(s *Server) func() (net.Conn, error) {
	return func() (net.Conn, error) {
		a, b := net.Pipe()
		go s.ServeConn(b)
		return a, nil
	}
}

func waitCond(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestSubmitCommitAck is the happy path: submit → admit → commit → ack,
// with the envelope surviving the round trip.
func TestSubmitCommitAck(t *testing.T) {
	be := &fakeBackend{}
	srv := NewServer(be, Options{})
	defer srv.Stop()
	cl, err := NewClient(ClientOptions{ID: 7, Dial: pipeDial(srv)})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	p, err := cl.Submit([]byte("hello-chain"))
	if err != nil {
		t.Fatal(err)
	}
	waitCond(t, "admission", func() bool { return len(be.admitted()) == 1 })
	env := be.admitted()[0]
	cid, seq, ok := ParseTx(env)
	if !ok || cid != 7 || seq != p.Seq() {
		t.Fatalf("envelope = client %d seq %d ok %v", cid, seq, ok)
	}
	if !bytes.HasSuffix(env, []byte("hello-chain")) {
		t.Fatal("payload mangled in envelope")
	}
	be.commit(srv)
	out := p.Wait()
	if !out.Committed || out.Status != StatusCommitted || out.Attempts != 1 {
		t.Fatalf("outcome = %+v", out)
	}
	st := srv.Stats()
	if st.Admitted != 1 || st.Acked != 1 || st.Deduped != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.AckLatencyMean <= 0 {
		t.Fatal("ack latency not recorded")
	}
}

// TestAckAfterCommitOrdering pins the ack contract: no commit ack may
// be pushed before the commit sink reports the transaction. The
// submission must sit unresolved until OnCommit runs.
func TestAckAfterCommitOrdering(t *testing.T) {
	be := &fakeBackend{}
	srv := NewServer(be, Options{})
	defer srv.Stop()
	cl, err := NewClient(ClientOptions{ID: 1, Dial: pipeDial(srv)})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	p, err := cl.Submit([]byte("tx"))
	if err != nil {
		t.Fatal(err)
	}
	waitCond(t, "admission", func() bool { return len(be.admitted()) == 1 })
	select {
	case out := <-p.done:
		t.Fatalf("resolved before commit: %+v", out)
	case <-time.After(50 * time.Millisecond):
	}
	if got := srv.Stats().Acked; got != 0 {
		t.Fatalf("%d acks before commit", got)
	}
	be.commit(srv)
	if out := p.Wait(); !out.Committed {
		t.Fatalf("outcome = %+v", out)
	}
}

// TestRejectionBackoffRoundTrip drives the typed-rejection loop: a
// loaded backend sheds the submission with Busy, the client backs off
// and resubmits, and once load clears the retry commits. End to end:
// rejection → jittered backoff → resubmission → admission → ack.
func TestRejectionBackoffRoundTrip(t *testing.T) {
	be := &fakeBackend{}
	be.setDepths(1<<20, 0) // fully loaded: every class shed
	srv := NewServer(be, Options{})
	defer srv.Stop()
	cl, err := NewClient(ClientOptions{
		ID: 3, Dial: pipeDial(srv), Seed: 42,
		BackoffBase: 5 * time.Millisecond, BackoffCap: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	p, err := cl.Submit([]byte("persistent"))
	if err != nil {
		t.Fatal(err)
	}
	waitCond(t, "a Busy rejection", func() bool { return srv.Stats().RejectedBusy >= 1 })
	if len(be.admitted()) != 0 {
		t.Fatal("rejected submission reached the backend")
	}
	// Load clears; the client's backoff retry must get through on its own.
	be.setDepths(0, 0)
	waitCond(t, "retry admission", func() bool { return len(be.admitted()) == 1 })
	be.commit(srv)
	out := p.Wait()
	if !out.Committed || out.Attempts < 2 {
		t.Fatalf("outcome = %+v, want committed retry", out)
	}

	// With MaxAttempts = 1 the same rejection is terminal — the typed
	// outcome surfaces to the caller instead of an endless retry.
	be.setDepths(1<<20, 0)
	cl2, err := NewClient(ClientOptions{ID: 4, Dial: pipeDial(srv), MaxAttempts: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Close()
	out2, err := cl2.SubmitWait([]byte("shed-me"))
	if err != nil {
		t.Fatal(err)
	}
	if out2.Committed || out2.Status != StatusBusy {
		t.Fatalf("outcome = %+v, want terminal Busy", out2)
	}
}

// TestPrioritySheddingOrder pins weighted admission: at a load past
// bulk's threshold but under normal's, bulk is shed and normal admitted.
func TestPrioritySheddingOrder(t *testing.T) {
	be := &fakeBackend{}
	srv := NewServer(be, Options{MaxMempoolTxs: 100})
	defer srv.Stop()
	be.setDepths(60, 0) // 0.6 load: past bulk's 0.5, under normal's 0.75

	bulk, err := NewClient(ClientOptions{ID: 10, Dial: pipeDial(srv), Priority: PriorityBulk, MaxAttempts: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer bulk.Close()
	normal, err := NewClient(ClientOptions{ID: 11, Dial: pipeDial(srv), Priority: PriorityNormal})
	if err != nil {
		t.Fatal(err)
	}
	defer normal.Close()

	outB, err := bulk.SubmitWait([]byte("bulk"))
	if err != nil {
		t.Fatal(err)
	}
	if outB.Committed || outB.Status != StatusBusy {
		t.Fatalf("bulk outcome = %+v, want shed", outB)
	}
	pN, err := normal.Submit([]byte("normal"))
	if err != nil {
		t.Fatal(err)
	}
	waitCond(t, "normal admission", func() bool { return len(be.admitted()) == 1 })
	be.commit(srv)
	if out := pN.Wait(); !out.Committed {
		t.Fatalf("normal outcome = %+v", out)
	}
}

// TestDedupAcrossReconnect is the window's reason to exist: a client
// that loses its connection after admission resubmits on reconnect, the
// duplicate is absorbed (never re-admitted), and the commit acks once.
func TestDedupAcrossReconnect(t *testing.T) {
	be := &fakeBackend{}
	srv := NewServer(be, Options{})
	defer srv.Stop()
	cl, err := NewClient(ClientOptions{
		ID: 5, Dial: pipeDial(srv),
		AckTimeout: 50 * time.Millisecond, // aggressive resubmission
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	p, err := cl.Submit([]byte("once-only"))
	if err != nil {
		t.Fatal(err)
	}
	waitCond(t, "admission", func() bool { return len(be.admitted()) == 1 })

	// Kill the connection; the client reconnects and resubmits.
	srv.DropConns()
	waitCond(t, "reconnect", func() bool { return cl.Counters().Reconnects >= 1 })
	waitCond(t, "dedup absorption", func() bool { return srv.Stats().Deduped >= 1 })
	if got := len(be.admitted()); got != 1 {
		t.Fatalf("backend saw %d admissions, want 1 (dedup must absorb the resubmit)", got)
	}
	be.commit(srv)
	if out := p.Wait(); !out.Committed {
		t.Fatalf("outcome = %+v", out)
	}
	if dups := srv.Stats().ChainDups; dups != 0 {
		t.Fatalf("%d chain-level duplicates", dups)
	}

	// A raw replay of the committed seq (a late retry from a client that
	// missed the ack) is acked from the window as idempotent success:
	// Deduped rises, backend stays quiet.
	before := srv.Stats().Deduped
	conn := cl.connForTest()
	if conn == nil {
		t.Fatal("client has no live connection")
	}
	if _, err := conn.Write(appendSubmit(nil, p.Seq(), PriorityNormal, []byte("once-only"))); err != nil {
		t.Fatal(err)
	}
	waitCond(t, "replay absorption", func() bool { return srv.Stats().Deduped > before })
	if got := len(be.admitted()); got != 0 {
		t.Fatalf("replay reached the backend (%d)", got)
	}
}

// connForTest exposes the live conn to tests in this package.
func (c *Client) connForTest() net.Conn {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.conn
}

// TestDedupUnderResubmitRace hammers the reconnect + resubmit machinery
// under -race: many clients, connections dropped while submissions and
// commit acks are in flight, aggressive ack timeouts. Every submission
// must commit exactly once at the chain (no chain dups, admissions
// match unique seqs) and resolve exactly once at the client.
func TestDedupUnderResubmitRace(t *testing.T) {
	be := &fakeBackend{}
	srv := NewServer(be, Options{})
	defer srv.Stop()

	// Commit pump: continuously drain admissions into commits.
	stop := make(chan struct{})
	var pump sync.WaitGroup
	pump.Add(1)
	go func() {
		defer pump.Done()
		for {
			select {
			case <-stop:
				be.commit(srv)
				return
			case <-time.After(5 * time.Millisecond):
				be.commit(srv)
			}
		}
	}()

	// Chaos: drop all connections every 20ms.
	pump.Add(1)
	go func() {
		defer pump.Done()
		for {
			select {
			case <-stop:
				return
			case <-time.After(20 * time.Millisecond):
				srv.DropConns()
			}
		}
	}()

	const clients = 8
	const perClient = 40
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(id uint64) {
			defer wg.Done()
			cl, err := NewClient(ClientOptions{
				ID: id, Dial: pipeDial(srv), Seed: id,
				AckTimeout:  30 * time.Millisecond,
				BackoffBase: time.Millisecond, BackoffCap: 20 * time.Millisecond,
			})
			if err != nil {
				t.Error(err)
				return
			}
			defer cl.Close()
			for j := 0; j < perClient; j++ {
				out, err := cl.SubmitWait([]byte{byte(id), byte(j)})
				if err != nil {
					t.Errorf("client %d submit %d: %v", id, j, err)
					return
				}
				if !out.Committed {
					t.Errorf("client %d submission %d: %+v", id, j, out)
					return
				}
			}
		}(uint64(i + 1))
	}
	wg.Wait()
	close(stop)
	pump.Wait()

	st := srv.Stats()
	if st.ChainDups != 0 {
		t.Fatalf("%d chain-level duplicate commits under resubmit races", st.ChainDups)
	}
	if st.Admitted != clients*perClient {
		t.Fatalf("admitted %d, want exactly %d (dedup must absorb every resubmit)",
			st.Admitted, clients*perClient)
	}
	t.Logf("stats: %+v", st)
}

// TestBackendSwapReadmission drives the crash-recovery seam: a pending
// submission admitted to generation g is re-admitted when the client
// resubmits after SwapBackend — and only then.
func TestBackendSwapReadmission(t *testing.T) {
	be := &fakeBackend{}
	srv := NewServer(be, Options{})
	defer srv.Stop()
	cl, err := NewClient(ClientOptions{
		ID: 9, Dial: pipeDial(srv),
		AckTimeout: 40 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	p, err := cl.Submit([]byte("survives-crash"))
	if err != nil {
		t.Fatal(err)
	}
	waitCond(t, "admission", func() bool { return len(be.admitted()) == 1 })
	first := be.admitted()[0]

	// The "replica" crashes, losing its mempool; a fresh backend swaps in.
	be2 := &fakeBackend{}
	srv.SwapBackend(be2)
	// The client's ack timeout fires and resubmits; the server re-admits
	// the retained envelope into the new backend, byte-identical.
	waitCond(t, "re-admission", func() bool { return len(be2.admitted()) == 1 })
	if !bytes.Equal(be2.admitted()[0], first) {
		t.Fatal("re-admitted envelope differs from the original")
	}
	if got := srv.Stats().Readmitted; got != 1 {
		t.Fatalf("Readmitted = %d, want 1", got)
	}
	be2.commit(srv)
	if out := p.Wait(); !out.Committed {
		t.Fatalf("outcome = %+v", out)
	}
}

// TestOutstandingGauge pins the gateway's own end-to-end backlog gauge:
// admissions raise it, commit acks retire it, and it alone — with the
// replica's mempool and lane gauges both reading empty — drives the
// admission decision. Under sustained overload the backlog sits in
// queues the replica gauges don't sample; the outstanding count is what
// still sees it.
func TestOutstandingGauge(t *testing.T) {
	be := &fakeBackend{} // depths stay 0: only outstanding can shed
	srv := NewServer(be, Options{MaxOutstanding: 4})
	defer srv.Stop()
	cl, err := NewClient(ClientOptions{ID: 30, Dial: pipeDial(srv), Priority: PriorityNormal, MaxAttempts: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// MaxOutstanding 4: bulk sheds at 2, normal at 3, high at 4. Two
	// normal admissions fill the gauge to the normal threshold.
	for i := 0; i < 3; i++ {
		if _, err := cl.Submit([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	waitCond(t, "admissions", func() bool { return len(be.admitted()) >= 3 })
	if got := srv.Outstanding(); got != 3 {
		t.Fatalf("Outstanding = %d, want 3", got)
	}
	// The fourth normal submission hits load 3/4 >= 0.75: Busy.
	waitCond(t, "outstanding-driven Busy", func() bool {
		cl.mu.Lock() // clear suppression so the attempt reaches the wire
		cl.suppressUntil = time.Time{}
		cl.mu.Unlock()
		cl.Submit([]byte("over"))
		return srv.Stats().RejectedBusy >= 1
	})

	// Commits retire the gauge and admission reopens.
	be.commit(srv)
	waitCond(t, "gauge retired", func() bool { return srv.Outstanding() == 0 })
}

// TestBusySuppression pins the client half of backpressure: a Busy
// verdict opens a suppression window during which Submit fails fast
// with ErrSuppressed (no wire traffic); commits do NOT decay the
// escalation (under sustained overload commits trickle as the pipeline
// drains — their per-client rate reflects fleet size, not admission
// headroom); the escalation instead restarts when a Busy arrives after
// a long quiet gap (the overload episode ended).
func TestBusySuppression(t *testing.T) {
	be := &fakeBackend{}
	be.setDepths(1<<20, 0) // fully loaded
	srv := NewServer(be, Options{})
	defer srv.Stop()
	cl, err := NewClient(ClientOptions{
		ID: 31, Dial: pipeDial(srv), MaxAttempts: 1,
		BackoffBase: time.Minute, // suppression outlives the test unless lifted
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	if out, err := cl.SubmitWait([]byte("shed")); err != nil || out.Status != StatusBusy {
		t.Fatalf("outcome = %+v, err %v, want Busy", out, err)
	}
	hellosBefore := srv.Stats().Hellos
	rejBefore := srv.Stats().RejectedBusy
	if _, err := cl.Submit([]byte("cached")); err != ErrSuppressed {
		t.Fatalf("Submit under suppression: err = %v, want ErrSuppressed", err)
	}
	if got := cl.Counters().Suppressed; got != 1 {
		t.Fatalf("Suppressed = %d, want 1", got)
	}
	if s := srv.Stats(); s.RejectedBusy != rejBefore || s.Hellos != hellosBefore {
		t.Fatal("suppressed submission reached the wire")
	}

	// Load clears and the window expires: submissions flow again.
	be.setDepths(0, 0)
	cl.mu.Lock()
	cl.suppressUntil = time.Time{} // simulate hint expiry without sleeping a minute
	cl.mu.Unlock()
	p, err := cl.Submit([]byte("admitted"))
	if err != nil {
		t.Fatal(err)
	}
	waitCond(t, "admission after suppression", func() bool { return len(be.admitted()) == 1 })
	cl.mu.Lock()
	cl.busyStreak = 8
	cl.suppressUntil = time.Now().Add(time.Hour)
	cl.mu.Unlock()
	be.commit(srv) // commit ack arrives while suppressed
	if out := p.Wait(); !out.Committed {
		t.Fatalf("outcome = %+v", out)
	}
	// The commit resolved the pending but must neither lift the open
	// window nor decay the escalation.
	if _, err := cl.Submit([]byte("still shed")); err != ErrSuppressed {
		t.Fatalf("Submit after commit-under-suppression: err = %v, want ErrSuppressed", err)
	}
	cl.mu.Lock()
	streak := cl.busyStreak
	cl.mu.Unlock()
	if streak != 8 {
		t.Fatalf("busyStreak = %d after a commit, want 8 (unchanged)", streak)
	}

	// A Busy after a long quiet gap starts a fresh episode: the streak
	// restarts at 1 instead of escalating from the stale value.
	be.setDepths(1<<20, 0)
	cl.mu.Lock()
	cl.suppressUntil = time.Time{}
	cl.lastBusy = time.Now().Add(-time.Hour)
	cl.mu.Unlock()
	if out, err := cl.SubmitWait([]byte("new episode")); err != nil || out.Status != StatusBusy {
		t.Fatalf("outcome = %+v, err %v, want Busy", out, err)
	}
	cl.mu.Lock()
	streak = cl.busyStreak
	cl.mu.Unlock()
	if streak != 1 {
		t.Fatalf("busyStreak = %d after quiet gap, want 1 (fresh episode)", streak)
	}
}
