package gateway

import "time"

// window is one client's submission window and sliding dedup set. It is
// the piece that makes at-least-once client retries exactly-once at the
// chain: every (client, seq) pair is admitted to the mempool at most
// once per backend incarnation, and replays are answered from here.
//
// Three seq populations, by client protocol (seqs are assigned
// monotonically by the client):
//
//   - pending: admitted, commit ack not yet pushed. Bounded by the
//     window cap — the client's in-flight budget.
//   - completed: committed and acked, retained in a sliding set of the
//     last dedupCap completions so replays are re-acked as Committed.
//   - below floor: completions old enough to have slid out of the set.
//     Treated as committed — a client replaying a seq that far back has
//     long received its ack (or abandoned it), and answering Committed
//     is the idempotent-success answer either way.
//
// Not thread-safe; the owning clientState serializes access.
type window struct {
	cap      int
	dedupCap int

	pending map[uint64]*pendingTx

	// completed holds acked seqs >= floor; evict tracks completion order
	// so overflow slides the floor forward rather than forgetting
	// arbitrary entries. Entries stranded below a jumped floor are
	// answered by the floor check first, so they only cost memory until
	// their eviction turn.
	completed map[uint64]struct{}
	evict     []uint64
	floor     uint64 // seqs below this are assumed committed
}

// pendingTx is one admitted, un-acked submission.
type pendingTx struct {
	prio uint8
	// tx is the enveloped payload, retained so a resubmission after a
	// backend turnover (replica restart) can be re-admitted without
	// trusting the client to resend identical bytes.
	tx []byte
	// submitted is the wall-clock admission time (ack latency basis).
	submitted time.Time
	// gen is the backend generation that admitted it. If the backend
	// turns over while this is pending, the admitted copy may have died
	// with the old process — a resubmission then re-admits tx under the
	// new generation.
	gen uint64
}

func newWindow(capacity, dedupCap int) *window {
	return &window{
		cap:       capacity,
		dedupCap:  dedupCap,
		pending:   make(map[uint64]*pendingTx),
		completed: make(map[uint64]struct{}),
	}
}

// verdict classifies a submission against the window.
type verdict int

const (
	verdictNew          verdict = iota // not seen: run admission control
	verdictDupPending                  // in flight: ack Duplicate, commit ack follows
	verdictDupCommitted                // already committed: ack Committed from the window
	verdictWindowFull                  // in-flight budget exhausted
)

// classify maps a submitted seq to its verdict without mutating state.
// Pending wins over the floor: a long-pending seq must keep answering
// Duplicate even after younger completions slide the floor past it.
func (w *window) classify(seq uint64) verdict {
	if _, ok := w.pending[seq]; ok {
		return verdictDupPending
	}
	if _, ok := w.completed[seq]; ok {
		return verdictDupCommitted
	}
	if seq < w.floor {
		return verdictDupCommitted
	}
	if len(w.pending) >= w.cap {
		return verdictWindowFull
	}
	return verdictNew
}

// admit records a newly admitted submission (after a verdictNew).
func (w *window) admit(seq uint64, p *pendingTx) { w.pending[seq] = p }

// complete moves seq from pending to the dedup set, returning its entry.
// ok is false when seq was not pending: either it already completed
// (chain-level duplicate — the caller counts it) or it was never
// admitted here (a commit from another client's gateway, skipped).
func (w *window) complete(seq uint64) (p *pendingTx, ok bool, wasCompleted bool) {
	p, ok = w.pending[seq]
	if !ok {
		if seq < w.floor {
			return nil, false, true
		}
		_, dup := w.completed[seq]
		return nil, false, dup
	}
	delete(w.pending, seq)
	w.completed[seq] = struct{}{}
	w.evict = append(w.evict, seq)
	for len(w.evict) > w.dedupCap {
		old := w.evict[0]
		w.evict = w.evict[1:]
		delete(w.completed, old)
		if old+1 > w.floor {
			w.floor = old + 1
		}
	}
	return p, true, false
}
