package gateway

import (
	"testing"
	"time"
)

func pend() *pendingTx { return &pendingTx{submitted: time.Now()} }

func TestWindowLifecycle(t *testing.T) {
	w := newWindow(2, 4)
	if v := w.classify(1); v != verdictNew {
		t.Fatalf("fresh seq = %v", v)
	}
	w.admit(1, pend())
	if v := w.classify(1); v != verdictDupPending {
		t.Fatalf("pending seq = %v", v)
	}
	w.admit(2, pend())
	if v := w.classify(3); v != verdictWindowFull {
		t.Fatalf("over-window seq = %v", v)
	}
	if _, ok, _ := w.complete(1); !ok {
		t.Fatal("complete(1) failed")
	}
	if v := w.classify(1); v != verdictDupCommitted {
		t.Fatalf("completed seq = %v", v)
	}
	if v := w.classify(3); v != verdictNew {
		t.Fatalf("freed window seq = %v", v)
	}
	// Completing an already-completed seq is the chain-dup signal.
	if _, ok, wasDone := w.complete(1); ok || !wasDone {
		t.Fatalf("re-complete(1) = ok %v wasDone %v", ok, wasDone)
	}
	// Completing a never-admitted seq is neither.
	if _, ok, wasDone := w.complete(99); ok || wasDone {
		t.Fatalf("complete(99) = ok %v wasDone %v", ok, wasDone)
	}
}

// TestWindowSlides pins the sliding dedup set: old completions evict in
// completion order, and seqs below the floor stay classified as
// committed duplicates (idempotent success) forever.
func TestWindowSlides(t *testing.T) {
	w := newWindow(1, 3)
	for seq := uint64(1); seq <= 10; seq++ {
		if v := w.classify(seq); v != verdictNew {
			t.Fatalf("seq %d = %v", seq, v)
		}
		w.admit(seq, pend())
		if _, ok, _ := w.complete(seq); !ok {
			t.Fatalf("complete(%d) failed", seq)
		}
	}
	if len(w.completed) != 3 {
		t.Fatalf("dedup set holds %d, want 3", len(w.completed))
	}
	// Everything ever completed — in the set or below the floor — must
	// answer as a committed duplicate.
	for seq := uint64(1); seq <= 10; seq++ {
		if v := w.classify(seq); v != verdictDupCommitted {
			t.Fatalf("replayed seq %d = %v", seq, v)
		}
	}
	if v := w.classify(11); v != verdictNew {
		t.Fatalf("next fresh seq = %v", v)
	}
}

// TestWindowFloorDoesNotSwallowPending: a pending seq must keep
// answering Duplicate even when younger completions slide the floor
// past its number — the floor is a statement about completions only.
func TestWindowFloorDoesNotSwallowPending(t *testing.T) {
	w := newWindow(8, 2)
	w.admit(5, pend())
	for seq := uint64(6); seq <= 12; seq++ {
		w.admit(seq, pend())
		w.complete(seq)
	}
	if w.floor <= 5 {
		t.Fatalf("floor = %d, test needs it past 5", w.floor)
	}
	if v := w.classify(5); v != verdictDupPending {
		t.Fatalf("stranded pending seq = %v, want dupPending", v)
	}
	if p, ok, _ := w.complete(5); !ok || p == nil {
		t.Fatal("stranded pending seq must still complete")
	}
}
