// Wire protocol of the gateway tier: length-framed binary frames over a
// byte stream. Deliberately independent of internal/wire (the replica
// mesh codec) — clients speak a four-frame vocabulary (Hello, HelloOK,
// Submit, Ack) and nothing else, so the parser is small enough to audit
// for hostile-input safety: every length is bounded before allocation,
// every frame type outside the vocabulary drops the connection.
package gateway

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Frame types. A client sends Hello then Submits; the server answers
// HelloOK then Acks. Anything else is a protocol violation.
const (
	frameHello   = 0x01
	frameHelloOK = 0x02
	frameSubmit  = 0x03
	frameAck     = 0x04
)

// helloMagic guards against a stray client dialing the wrong port: the
// handshake must open with it or the connection is dropped.
const helloMagic uint32 = 0x41424757 // "ABGW"

// protoVersion is negotiated down never — a mismatch drops the
// connection (forward compatibility is not a goal of this tier yet).
const protoVersion = 1

// Ack status codes — the typed outcomes a submission can have.
const (
	// StatusCommitted: the transaction committed; the ack is terminal.
	StatusCommitted = 0x01
	// StatusBusy: admission control shed the submission (replica
	// overload for this priority class). RetryAfter carries the server's
	// backoff hint.
	StatusBusy = 0x02
	// StatusWindowFull: the client's in-flight window is exhausted; it
	// must wait for acks before submitting more.
	StatusWindowFull = 0x03
	// StatusDuplicate: the submission is already in flight (admitted,
	// not yet committed). Not terminal — the commit ack follows.
	StatusDuplicate = 0x04
)

// submitOverhead is the fixed prefix of a Submit body: seq (8) +
// priority (1).
const submitOverhead = 9

// frameHeader is the frame prefix: payload length (4) + type (1).
const frameHeader = 5

// writeFrame appends a frame to buf: [len u32][type u8][body].
func appendFrame(buf []byte, typ byte, body []byte) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(body)))
	buf = append(buf, typ)
	return append(buf, body...)
}

// readFrame reads one frame, enforcing the size cap before allocating.
// Returns the frame type and body, or an error that must drop the
// connection (hostile or broken peer — there is no resynchronization in
// a length-framed stream).
func readFrame(r io.Reader, maxFrame int, scratch []byte) (byte, []byte, error) {
	var hdr [frameHeader]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:4])
	if int(n) > maxFrame {
		return 0, nil, fmt.Errorf("%w: frame of %d bytes exceeds cap %d", errHostile, n, maxFrame)
	}
	body := scratch
	if cap(body) < int(n) {
		body = make([]byte, n)
	}
	body = body[:n]
	if _, err := io.ReadFull(r, body); err != nil {
		return 0, nil, err
	}
	return hdr[4], body, nil
}

// Hello body: magic (4) + version (1) + clientID (8).
func appendHello(buf []byte, clientID uint64) []byte {
	body := make([]byte, 0, 13)
	body = binary.LittleEndian.AppendUint32(body, helloMagic)
	body = append(body, protoVersion)
	body = binary.LittleEndian.AppendUint64(body, clientID)
	return appendFrame(buf, frameHello, body)
}

func parseHello(body []byte) (clientID uint64, err error) {
	if len(body) != 13 {
		return 0, fmt.Errorf("gateway: hello of %d bytes", len(body))
	}
	if binary.LittleEndian.Uint32(body) != helloMagic {
		return 0, fmt.Errorf("gateway: bad hello magic")
	}
	if body[4] != protoVersion {
		return 0, fmt.Errorf("gateway: protocol version %d (want %d)", body[4], protoVersion)
	}
	return binary.LittleEndian.Uint64(body[5:]), nil
}

// HelloOK body: window (4) + dedup window (4) — the server's per-client
// limits, so a client can size its own in-flight bookkeeping.
func appendHelloOK(buf []byte, window, dedup uint32) []byte {
	body := make([]byte, 0, 8)
	body = binary.LittleEndian.AppendUint32(body, window)
	body = binary.LittleEndian.AppendUint32(body, dedup)
	return appendFrame(buf, frameHelloOK, body)
}

func parseHelloOK(body []byte) (window, dedup uint32, err error) {
	if len(body) != 8 {
		return 0, 0, fmt.Errorf("gateway: helloOK of %d bytes", len(body))
	}
	return binary.LittleEndian.Uint32(body), binary.LittleEndian.Uint32(body[4:]), nil
}

// Submit body: seq (8) + priority (1) + payload.
func appendSubmit(buf []byte, seq uint64, prio uint8, payload []byte) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(submitOverhead+len(payload)))
	buf = append(buf, frameSubmit)
	buf = binary.LittleEndian.AppendUint64(buf, seq)
	buf = append(buf, prio)
	return append(buf, payload...)
}

func parseSubmit(body []byte) (seq uint64, prio uint8, payload []byte, err error) {
	if len(body) < submitOverhead {
		return 0, 0, nil, fmt.Errorf("gateway: submit of %d bytes", len(body))
	}
	return binary.LittleEndian.Uint64(body), body[8], body[submitOverhead:], nil
}

// Ack body: seq (8) + status (1) + retryAfter ms (4).
func appendAck(buf []byte, seq uint64, status byte, retryAfterMs uint32) []byte {
	body := make([]byte, 0, 13)
	body = binary.LittleEndian.AppendUint64(body, seq)
	body = append(body, status)
	body = binary.LittleEndian.AppendUint32(body, retryAfterMs)
	return appendFrame(buf, frameAck, body)
}

func parseAck(body []byte) (seq uint64, status byte, retryAfterMs uint32, err error) {
	if len(body) != 13 {
		return 0, 0, 0, fmt.Errorf("gateway: ack of %d bytes", len(body))
	}
	return binary.LittleEndian.Uint64(body), body[8], binary.LittleEndian.Uint32(body[9:]), nil
}

// --- transaction envelope ---

// envelopeMagic tags mempool transactions that entered through a
// gateway, so the commit dispatcher can route acks with one parse
// instead of hashing every committed payload. Transactions submitted
// through other paths (bare Replica.Submit, autobahn-client without
// -gateway) fail the tag check and are skipped.
const envelopeMagic = 0xA7

// envelopeOverhead is the envelope prefix: magic (1) + clientID (8) +
// seq (8).
const envelopeOverhead = 17

// WrapTx prefixes a client payload with its routing envelope.
func WrapTx(clientID, seq uint64, payload []byte) []byte {
	tx := make([]byte, 0, envelopeOverhead+len(payload))
	tx = append(tx, envelopeMagic)
	tx = binary.LittleEndian.AppendUint64(tx, clientID)
	tx = binary.LittleEndian.AppendUint64(tx, seq)
	return append(tx, payload...)
}

// ParseTx recovers the routing envelope from a committed transaction;
// ok is false for transactions that did not enter through a gateway.
func ParseTx(tx []byte) (clientID, seq uint64, ok bool) {
	if len(tx) < envelopeOverhead || tx[0] != envelopeMagic {
		return 0, 0, false
	}
	return binary.LittleEndian.Uint64(tx[1:]), binary.LittleEndian.Uint64(tx[9:]), true
}
