// Package gateway is Autobahn's client-facing ingress tier: it fans in
// tens of thousands of client connections ahead of one replica and
// keeps that replica healthy under any offered load.
//
// The replica core assumes a well-behaved submitter — Replica.Submit
// accepts everything, so overload surfaces as silent queue growth and
// clients learn nothing about their transactions' fates. The gateway
// inverts both properties:
//
//   - Admission control reads the replica's live backlog (mempool depth
//     and own-lane car depth) plus the gateway's own outstanding gauge —
//     admitted submissions not yet commit-acked, the one measure that
//     sees backlog wherever it physically queues — per submission, and
//     sheds load with typed rejections: Busy carries a retry hint,
//     WindowFull bounds a single client's in-flight budget. Saturation
//     degrades into explicit backpressure instead of collapse, and
//     priority classes shed bulk traffic first.
//   - A per-client sliding dedup window makes at-least-once client
//     retries exactly-once at the chain: duplicates and replays are
//     acked from the window, never re-admitted to the mempool.
//   - The gateway subscribes to the replica's commit sink and pushes a
//     commit ack to the submitting client, so clients learn their
//     transaction's terminal outcome without polling.
//
// The tier is strictly off the replica's critical path: commit
// notifications are handed to a dispatcher goroutine through a spill
// queue (the event loop never blocks on a slow client), and the depth
// gauges it reads are single atomic loads.
package gateway

import (
	"errors"
	"log"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/types"
)

// Backend is the replica surface the gateway drives. *autobahn.Replica
// implements it directly; harnesses adapt LiveCluster replicas or swap
// incarnations across restarts (SwapBackend).
type Backend interface {
	// Submit admits one (enveloped) transaction to the mempool.
	Submit(tx []byte)
	// MempoolDepth returns the unsealed mempool backlog (transactions).
	MempoolDepth() int
	// LaneDepth returns the own lane's end-to-end backlog (batches
	// waiting for a car plus cars proposed but not yet committed).
	LaneDepth() int
}

// Priority classes for weighted admission. Higher classes survive
// deeper overload; bulk is shed first.
const (
	PriorityBulk   uint8 = 0
	PriorityNormal uint8 = 1
	PriorityHigh   uint8 = 2
)

// shedAt maps a priority class to the overload fraction at which its
// submissions start being shed: bulk yields at half load, normal at
// three quarters, high rides to the full backlog bound.
var shedAt = [3]float64{PriorityBulk: 0.5, PriorityNormal: 0.75, PriorityHigh: 1.0}

// Options configures a gateway server. The zero value gets defaults.
type Options struct {
	// Window is the per-client in-flight submission budget (default 64).
	Window int
	// DedupWindow is the per-client sliding dedup set size: how many
	// completed seqs are remembered for replay absorption (default 4096).
	DedupWindow int
	// MaxClients bounds distinct client IDs (default 1 << 17).
	MaxClients int
	// MaxFrame caps one wire frame; larger frames drop the connection
	// (hostile-input bound; default 1 MB + framing overhead).
	MaxFrame int
	// MaxMempoolTxs is the mempool depth treated as fully loaded for
	// admission (default 8192).
	MaxMempoolTxs int
	// MaxLaneDepth is the own-lane depth (pending batches + outstanding
	// cars) treated as fully loaded (default 256).
	MaxLaneDepth int
	// MaxOutstanding is the gateway-wide count of admitted-but-uncommitted
	// submissions treated as fully loaded (default 32768). The replica's
	// depth gauges sample two specific queues; this one is end-to-end —
	// under sustained overload the backlog eventually sits in queues
	// neither replica gauge samples (sealed batches in the event-loop
	// shard channels), and only the outstanding count keeps growing.
	MaxOutstanding int
	// AckQueue is the per-connection ack write queue; a slower client
	// loses acks beyond it (recovered by its own resubmission) instead
	// of stalling the dispatcher (default 1024).
	AckQueue int
	// HandshakeTimeout bounds how long an accepted connection may sit
	// without completing its Hello (default 10s).
	HandshakeTimeout time.Duration
	// Logger, when set, receives connection-level diagnostics.
	Logger *log.Logger
}

func (o *Options) fill() {
	if o.Window == 0 {
		o.Window = 64
	}
	if o.DedupWindow == 0 {
		o.DedupWindow = 4096
	}
	if o.MaxClients == 0 {
		o.MaxClients = 1 << 17
	}
	if o.MaxFrame == 0 {
		o.MaxFrame = 1<<20 + 128
	}
	if o.MaxMempoolTxs == 0 {
		o.MaxMempoolTxs = 8192
	}
	if o.MaxLaneDepth == 0 {
		o.MaxLaneDepth = 256
	}
	if o.MaxOutstanding == 0 {
		o.MaxOutstanding = 32768
	}
	if o.AckQueue == 0 {
		o.AckQueue = 1024
	}
	if o.HandshakeTimeout == 0 {
		o.HandshakeTimeout = 10 * time.Second
	}
}

// Server is one replica's gateway tier. It outlives backend
// incarnations: a restarted replica is swapped in with SwapBackend and
// the per-client dedup state carries across, which is what lets
// reconnecting clients resubmit through a crash without double-commits.
type Server struct {
	opts Options
	ctrs metrics.GatewayCounters

	backendMu  sync.RWMutex
	backend    Backend
	backendGen uint64

	// outstanding counts admitted submissions that have not yet resolved
	// to a commit ack, across all clients — the gateway's own end-to-end
	// backlog gauge (see Options.MaxOutstanding).
	outstanding atomic.Int64

	// hintMs is the adaptive Busy retry hint (see hintLoop): the one
	// controller with a fleet-wide view, tuned so the fleet's rejected
	// wire traffic stays a trickle without starving admission.
	hintMs atomic.Uint32

	clientMu sync.RWMutex
	clients  map[uint64]*clientState

	connMu sync.Mutex
	conns  map[net.Conn]struct{}
	ln     net.Listener

	commitMu sync.Mutex
	commitQ  []*types.Batch
	notify   chan struct{}

	done     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// clientState is the durable per-client record, keyed by client ID and
// surviving reconnects: the window is the dedup truth, conn the current
// ack route (nil while disconnected).
type clientState struct {
	id uint64

	mu   sync.Mutex
	win  *window
	conn *connWriter
}

// NewServer builds a gateway over a backend and starts its commit
// dispatcher. Stop releases it.
func NewServer(b Backend, o Options) *Server {
	o.fill()
	s := &Server{
		opts:    o,
		backend: b,
		clients: make(map[uint64]*clientState),
		conns:   make(map[net.Conn]struct{}),
		notify:  make(chan struct{}, 1),
		done:    make(chan struct{}),
	}
	s.hintMs.Store(hintBaseMs)
	s.wg.Add(2)
	go s.dispatch()
	go s.hintLoop()
	return s
}

// Adaptive retry-hint bounds: the controller multiplicatively raises
// the hint while Busy rejections exceed ~1/16 of admissions (the fleet
// is paying wire traffic to be told no) and decays it while rejections
// are zero (suppression is overshooting the backlog).
const (
	hintBaseMs = 20
	hintCapMs  = 2000
)

// hintLoop is the server half of backpressure control. Per-client
// escalation cannot size suppression windows correctly — the right
// window is a function of fleet size and aggregate headroom, which
// only the server observes. AIMD on the observed rejection:admission
// ratio converges to windows that keep rejected wire traffic a small
// fraction of throughput at any fleet size.
func (s *Server) hintLoop() {
	defer s.wg.Done()
	t := time.NewTicker(100 * time.Millisecond)
	defer t.Stop()
	var lastAdm, lastRej uint64
	for {
		select {
		case <-s.done:
			return
		case <-t.C:
			adm, rej := s.ctrs.Admitted.Load(), s.ctrs.RejectedBusy.Load()
			a, r := adm-lastAdm, rej-lastRej
			lastAdm, lastRej = adm, rej
			h := s.hintMs.Load()
			switch {
			case r > a/16:
				h = h*3/2 + 1
				if h > hintCapMs {
					h = hintCapMs
				}
			case r == 0:
				h = h * 7 / 8
				if h < hintBaseMs {
					h = hintBaseMs
				}
			}
			s.hintMs.Store(h)
		}
	}
}

// Start listens on addr and accepts client connections until Stop.
func (s *Server) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.connMu.Lock()
	s.ln = ln
	s.connMu.Unlock()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				select {
				case <-s.done:
					return
				default:
				}
				s.logf("gateway: accept: %v", err)
				return
			}
			go s.ServeConn(conn)
		}
	}()
	return nil
}

// Addr returns the listener address ("" before Start).
func (s *Server) Addr() string {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Stop closes the listener, drops every client connection, and stops
// the dispatcher. Per-client dedup state is retained (a stopped server
// is not a fresh one), but no further frames are processed.
func (s *Server) Stop() {
	s.stopOnce.Do(func() {
		close(s.done)
		s.connMu.Lock()
		if s.ln != nil {
			s.ln.Close()
		}
		for c := range s.conns {
			c.Close()
		}
		s.connMu.Unlock()
		s.wg.Wait()
	})
}

// SwapBackend replaces the backend and bumps the admission generation:
// pending submissions admitted to the previous backend are re-admitted
// on their next client resubmission (the previous incarnation may have
// lost them). This is the crash-recovery seam the soak harness drives.
func (s *Server) SwapBackend(b Backend) {
	s.backendMu.Lock()
	s.backend = b
	s.backendGen++
	s.backendMu.Unlock()
}

// DropConns force-closes every live client connection (the backend and
// dedup state stay). Harness hook: models the front door failing over,
// forcing clients through their reconnect + resubmit path.
func (s *Server) DropConns() {
	s.connMu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.connMu.Unlock()
}

// Outstanding reports the gateway's end-to-end backlog: admitted
// submissions not yet resolved to a commit ack, across all clients.
func (s *Server) Outstanding() int { return int(s.outstanding.Load()) }

// Counters exposes the live counters; Stats snapshots them.
func (s *Server) Counters() *metrics.GatewayCounters { return &s.ctrs }

// Stats snapshots the gateway counters.
func (s *Server) Stats() metrics.GatewaySnapshot { return s.ctrs.Snapshot() }

func (s *Server) currentBackend() (Backend, uint64) {
	s.backendMu.RLock()
	defer s.backendMu.RUnlock()
	return s.backend, s.backendGen
}

func (s *Server) logf(format string, args ...any) {
	if s.opts.Logger != nil {
		s.opts.Logger.Printf(format, args...)
	}
}

// --- connection handling ---

// connWriter serializes ack writes to one connection on a dedicated
// goroutine with a bounded queue: the commit dispatcher must never
// block on a slow client's socket.
type connWriter struct {
	conn net.Conn
	q    chan []byte
	done chan struct{} // closed by close(); q itself is never closed
	once sync.Once
}

func newConnWriter(conn net.Conn, depth int) *connWriter {
	cw := &connWriter{conn: conn, q: make(chan []byte, depth), done: make(chan struct{})}
	go func() {
		for {
			select {
			case <-cw.done:
				return
			case buf := <-cw.q:
				if _, err := conn.Write(buf); err != nil {
					conn.Close() // reader notices and tears the session down
					return       // senders fall through to drop, never block
				}
			}
		}
	}()
	return cw
}

// send enqueues an encoded frame; false when the queue is full or the
// writer is gone (the caller counts the ack as dropped — the client's
// resubmission recovers it).
func (cw *connWriter) send(buf []byte) bool {
	select {
	case <-cw.done:
		return false
	default:
	}
	select {
	case cw.q <- buf:
		return true
	default:
		return false
	}
}

func (cw *connWriter) close() { cw.once.Do(func() { close(cw.done) }) }

var errHostile = errors.New("gateway: protocol violation")

// ServeConn runs one client connection to completion: handshake, then
// submissions. Any protocol violation — oversized frame, garbage bytes,
// unknown frame type, submissions before Hello — drops the connection;
// the replica behind the gateway never sees hostile input. Exported so
// harnesses can drive the server over in-memory pipes.
func (s *Server) ServeConn(conn net.Conn) {
	s.ctrs.Conns.Add(1)
	s.connMu.Lock()
	s.conns[conn] = struct{}{}
	s.connMu.Unlock()
	defer func() {
		s.connMu.Lock()
		delete(s.conns, conn)
		s.connMu.Unlock()
		conn.Close()
	}()

	// Handshake, bounded: a connection that won't say Hello is hostile.
	conn.SetReadDeadline(time.Now().Add(s.opts.HandshakeTimeout))
	typ, body, err := readFrame(conn, s.opts.MaxFrame, nil)
	if err != nil || typ != frameHello {
		s.ctrs.HostileDrops.Add(1)
		return
	}
	clientID, err := parseHello(body)
	if err != nil {
		s.ctrs.HostileDrops.Add(1)
		return
	}
	conn.SetReadDeadline(time.Time{})

	cs := s.client(clientID, true)
	if cs == nil {
		s.logf("gateway: client table full, refusing client %d", clientID)
		return
	}
	s.ctrs.Hellos.Add(1)

	cw := newConnWriter(conn, s.opts.AckQueue)
	defer cw.close()
	cs.mu.Lock()
	if old := cs.conn; old != nil && old != cw {
		// The client reconnected (or a second process claims its ID):
		// newest connection wins the ack route, the old one is torn down.
		old.conn.Close()
		old.close()
	}
	cs.conn = cw
	cs.mu.Unlock()
	defer func() {
		cs.mu.Lock()
		if cs.conn == cw {
			cs.conn = nil
		}
		cs.mu.Unlock()
	}()
	cw.send(appendHelloOK(nil, uint32(s.opts.Window), uint32(s.opts.DedupWindow)))

	scratch := make([]byte, 4096)
	for {
		typ, body, err := readFrame(conn, s.opts.MaxFrame, scratch)
		if err != nil {
			// Only self-detected protocol violations count as hostile;
			// EOFs, resets and closed pipes are ordinary disconnects.
			if errors.Is(err, errHostile) {
				s.ctrs.HostileDrops.Add(1)
			}
			return
		}
		if typ != frameSubmit {
			s.ctrs.HostileDrops.Add(1)
			return
		}
		seq, prio, payload, err := parseSubmit(body)
		if err != nil || len(payload) == 0 {
			s.ctrs.HostileDrops.Add(1)
			return
		}
		s.handleSubmit(cs, cw, seq, prio, payload)
	}
}

// client looks up (or, with create, makes) the durable per-client
// record. Returns nil when the table is full.
func (s *Server) client(id uint64, create bool) *clientState {
	s.clientMu.RLock()
	cs := s.clients[id]
	s.clientMu.RUnlock()
	if cs != nil || !create {
		return cs
	}
	s.clientMu.Lock()
	defer s.clientMu.Unlock()
	if cs = s.clients[id]; cs != nil {
		return cs
	}
	if len(s.clients) >= s.opts.MaxClients {
		return nil
	}
	cs = &clientState{id: id, win: newWindow(s.opts.Window, s.opts.DedupWindow)}
	s.clients[id] = cs
	return cs
}

// handleSubmit runs one submission through the dedup window and
// admission control, acking its verdict on the arriving connection.
func (s *Server) handleSubmit(cs *clientState, cw *connWriter, seq uint64, prio uint8, payload []byte) {
	if prio > PriorityHigh {
		prio = PriorityHigh
	}
	cs.mu.Lock()
	defer cs.mu.Unlock()
	switch cs.win.classify(seq) {
	case verdictDupPending:
		// Already in flight. If the backend turned over since admission,
		// the admitted copy may have died with it — re-admit the retained
		// envelope under the new generation (byte-identical, so even a
		// surviving pre-crash copy commits the same transaction).
		p := cs.win.pending[seq]
		if b, gen := s.currentBackend(); b != nil && p.gen != gen {
			p.gen = gen
			s.ctrs.Readmitted.Add(1)
			b.Submit(p.tx)
		}
		s.ctrs.Deduped.Add(1)
		s.ack(cw, seq, StatusDuplicate, 0)
	case verdictDupCommitted:
		// Replay of a completed submission: idempotent success, answered
		// from the window — the mempool never sees it again.
		s.ctrs.Deduped.Add(1)
		s.ack(cw, seq, StatusCommitted, 0)
	case verdictWindowFull:
		s.ctrs.RejectedWindowFull.Add(1)
		s.ack(cw, seq, StatusWindowFull, 20)
	case verdictNew:
		b, gen := s.currentBackend()
		ok, retry := s.admitClass(b, prio)
		if !ok {
			s.ctrs.RejectedBusy.Add(1)
			s.ack(cw, seq, StatusBusy, retry)
			return
		}
		tx := WrapTx(cs.id, seq, payload)
		cs.win.admit(seq, &pendingTx{prio: prio, tx: tx, submitted: time.Now(), gen: gen})
		s.ctrs.Admitted.Add(1)
		s.outstanding.Add(1)
		b.Submit(tx)
	}
}

// admitClass is the weighted admission decision: load is the worst of
// the mempool, own-lane, and gateway-outstanding backlog fractions, and
// a class is admitted while load is under its shed threshold. The retry
// hint is the adaptive fleet-wide value maintained by hintLoop.
func (s *Server) admitClass(b Backend, prio uint8) (bool, uint32) {
	if b == nil {
		// No backend (e.g. mid-restart): everything is Busy, with a hint
		// floor covering a typical recovery rather than a retry storm.
		h := s.hintMs.Load()
		if h < 100 {
			h = 100
		}
		return false, h
	}
	load := float64(b.MempoolDepth()) / float64(s.opts.MaxMempoolTxs)
	if ln := float64(b.LaneDepth()) / float64(s.opts.MaxLaneDepth); ln > load {
		load = ln
	}
	if out := float64(s.outstanding.Load()) / float64(s.opts.MaxOutstanding); out > load {
		load = out
	}
	if load < shedAt[prio] {
		return true, 0
	}
	return false, s.hintMs.Load()
}

func (s *Server) ack(cw *connWriter, seq uint64, status byte, retryMs uint32) {
	if cw == nil || !cw.send(appendAck(nil, seq, status, retryMs)) {
		s.ctrs.AckDrops.Add(1)
	}
}

// --- commit feed ---

// OnCommit hands one committed batch to the ack dispatcher. Called from
// the replica's commit sink (event-loop goroutine): it must stay cheap
// and never block, so it only appends to a spill queue.
func (s *Server) OnCommit(b *types.Batch) {
	if b == nil || len(b.Txs) == 0 {
		return // synthetic batches carry no payloads, nothing to ack
	}
	s.commitMu.Lock()
	s.commitQ = append(s.commitQ, b)
	s.commitMu.Unlock()
	select {
	case s.notify <- struct{}{}:
	default:
	}
}

// dispatch drains the commit queue, completing windows and pushing
// commit acks. One goroutine per server: ack ordering per client
// follows commit order.
func (s *Server) dispatch() {
	defer s.wg.Done()
	for {
		select {
		case <-s.done:
			return
		case <-s.notify:
		}
		for {
			s.commitMu.Lock()
			q := s.commitQ
			s.commitQ = nil
			s.commitMu.Unlock()
			if len(q) == 0 {
				break
			}
			for _, b := range q {
				for _, tx := range b.Txs {
					s.routeAck(tx)
				}
			}
		}
	}
}

// routeAck resolves one committed transaction against its submitter's
// window and pushes the commit ack.
func (s *Server) routeAck(tx []byte) {
	cid, seq, ok := ParseTx(tx)
	if !ok {
		return // not gateway traffic
	}
	cs := s.client(cid, false)
	if cs == nil {
		return // another gateway's client (commits are total across lanes)
	}
	cs.mu.Lock()
	p, completed, wasDone := cs.win.complete(seq)
	cw := cs.conn
	cs.mu.Unlock()
	if !completed {
		if wasDone {
			// The same (client, seq) reached the chain twice: the dedup
			// guarantee failed. Counted, asserted zero by the soak.
			s.ctrs.ChainDups.Add(1)
		}
		return
	}
	s.outstanding.Add(-1)
	s.ctrs.AckObserved(time.Since(p.submitted))
	s.ack(cw, seq, StatusCommitted, 0)
}
