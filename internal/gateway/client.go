package gateway

import (
	"errors"
	"fmt"
	mrand "math/rand/v2"
	"net"
	"sync"
	"time"
)

// ClientOptions configures a gateway client.
type ClientOptions struct {
	// ID identifies this client to the gateway. The dedup window is
	// keyed by it, so it must be stable across reconnects and restarts
	// of the same logical client — and unique among live clients.
	ID uint64
	// Seed drives the jittered backoff; defaults to ID (deterministic
	// per client, decorrelated across clients).
	Seed uint64
	// Dial opens a connection to the gateway. Required.
	Dial func() (net.Conn, error)
	// Window bounds locally tracked in-flight submissions (default 32;
	// keep at or under the server's window to avoid WindowFull churn).
	Window int
	// Priority is the admission class for all submissions. The zero
	// value is PriorityBulk — shed first under load; declare
	// PriorityNormal or PriorityHigh explicitly for better service.
	Priority uint8
	// AckTimeout resubmits an unacknowledged submission after this long
	// (default 5s). Resubmission is idempotent end-to-end: the server's
	// dedup window absorbs the duplicate.
	AckTimeout time.Duration
	// MaxAttempts bounds admission retries (Busy/WindowFull rejections)
	// per submission; exceeding it resolves the submission with the
	// rejection as its terminal outcome. 0 retries forever.
	MaxAttempts int
	// BackoffBase / BackoffCap shape the jittered exponential backoff on
	// rejections and redials (defaults 20ms / 2s).
	BackoffBase time.Duration
	BackoffCap  time.Duration
	// OnOutcome, when set, observes every terminal outcome (also
	// delivered through Pending.Wait).
	OnOutcome func(Outcome)
}

func (o *ClientOptions) fill() error {
	if o.Dial == nil {
		return errors.New("gateway: ClientOptions.Dial is required")
	}
	if o.Window == 0 {
		o.Window = 32
	}
	if o.AckTimeout == 0 {
		o.AckTimeout = 5 * time.Second
	}
	if o.BackoffBase == 0 {
		o.BackoffBase = 20 * time.Millisecond
	}
	if o.BackoffCap == 0 {
		o.BackoffCap = 2 * time.Second
	}
	if o.Seed == 0 {
		o.Seed = o.ID + 1
	}
	return nil
}

// Outcome is a submission's terminal result.
type Outcome struct {
	Seq uint64
	// Status is StatusCommitted, or the rejection that exhausted
	// MaxAttempts (StatusBusy / StatusWindowFull), or StatusAborted.
	Status byte
	// Committed is true iff the transaction committed.
	Committed bool
	// Latency is submit-to-terminal-outcome time.
	Latency time.Duration
	// Attempts counts wire submissions (1 = first try).
	Attempts int
}

// StatusAborted is the client-side terminal status for submissions
// cancelled by Close.
const StatusAborted byte = 0xFF

// Pending is one in-flight submission.
type Pending struct {
	seq     uint64
	payload []byte
	start   time.Time

	mu       sync.Mutex
	attempts int
	timer    *time.Timer // ack-timeout / backoff timer, nil once resolved
	resolved bool

	done chan Outcome
}

// Wait blocks until the submission's terminal outcome.
func (p *Pending) Wait() Outcome { return <-p.done }

// Seq returns the submission's sequence number.
func (p *Pending) Seq() uint64 { return p.seq }

// ClientCounters aggregates a client's activity (read with Counters).
type ClientCounters struct {
	Committed, Rejected, Aborted uint64
	Resubmits, Reconnects        uint64
	// Suppressed counts Submit calls refused locally while honoring a
	// server Busy retry hint (ErrSuppressed) — shed load that never
	// reached the wire.
	Suppressed uint64
}

// Client is a gateway client: it numbers submissions, tracks them to a
// terminal outcome, backs off (seeded, jittered, exponential) on typed
// rejections, resubmits on ack timeout, and reconnects + resubmits on
// connection loss — all idempotent through the server's dedup window.
//
// Busy rejections additionally open a suppression window: new Submit
// calls fail fast with ErrSuppressed (no wire traffic) until the
// server's retry hint — escalated exponentially across consecutive Busy
// verdicts within an overload episode, restarting after a long quiet
// gap — expires. An overloaded gateway tells
// each client once per window instead of paying to reject every
// attempt, which is what lets the replica keep its capacity for the
// admitted load.
type Client struct {
	o ClientOptions

	mu      sync.Mutex
	conn    net.Conn
	pending map[uint64]*Pending
	nextSeq uint64
	rng     *mrand.Rand
	closed  bool
	dialing bool
	ctrs    ClientCounters

	// Busy-driven admission suppression (see ErrSuppressed). The streak
	// escalates within one overload episode: a Busy arriving more than
	// 2x BackoffCap after the previous one starts a fresh episode near
	// the base. Commits deliberately do not decay it — under sustained
	// overload commits trickle as the pipeline drains, and how often
	// they arrive per client is a function of fleet size, not headroom.
	suppressUntil time.Time
	busyStreak    int
	lastBusy      time.Time

	// wmu serializes frame writes: submissions go out from the caller's
	// goroutine, backoff/ack timers, and the reconnect resubmit loop —
	// interleaved writes would corrupt the length-framed stream.
	wmu sync.Mutex
}

// NewClient builds a client and establishes its first connection.
func NewClient(o ClientOptions) (*Client, error) {
	if err := o.fill(); err != nil {
		return nil, err
	}
	c := &Client{
		o:       o,
		pending: make(map[uint64]*Pending),
		nextSeq: 1,
		rng:     mrand.New(mrand.NewPCG(o.Seed, 0x6761746577617921)),
	}
	conn, err := c.dialOnce()
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.conn = conn
	c.mu.Unlock()
	go c.readLoop(conn)
	return c, nil
}

// Dial is the common case: a TCP client with the given options.
func Dial(addr string, o ClientOptions) (*Client, error) {
	if o.Dial == nil {
		o.Dial = func() (net.Conn, error) {
			return net.DialTimeout("tcp", addr, 5*time.Second)
		}
	}
	return NewClient(o)
}

// dialOnce opens a connection and completes the handshake.
func (c *Client) dialOnce() (net.Conn, error) {
	conn, err := c.o.Dial()
	if err != nil {
		return nil, err
	}
	if _, err := conn.Write(appendHello(nil, c.o.ID)); err != nil {
		conn.Close()
		return nil, err
	}
	typ, body, err := readFrame(conn, 1<<16, nil)
	if err != nil || typ != frameHelloOK {
		conn.Close()
		return nil, fmt.Errorf("gateway: handshake refused (%v)", err)
	}
	if _, _, err := parseHelloOK(body); err != nil {
		conn.Close()
		return nil, err
	}
	return conn, nil
}

// Counters snapshots the client's activity counters.
func (c *Client) Counters() ClientCounters {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ctrs
}

// InFlight returns the number of unresolved submissions.
func (c *Client) InFlight() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.pending)
}

// ErrWindowFull is returned by Submit when the local in-flight window
// is exhausted — backpressure to the caller, not a wire rejection.
var ErrWindowFull = errors.New("gateway: client window full")

// ErrClosed is returned by Submit after Close.
var ErrClosed = errors.New("gateway: client closed")

// ErrSuppressed is returned by Submit while the client honors a server
// Busy retry hint: the gateway said it is overloaded and when to come
// back, so new submissions are shed locally — free for both sides —
// until that deadline. Terminal for this Submit call, like
// ErrWindowFull.
var ErrSuppressed = errors.New("gateway: suppressed by server Busy retry hint")

// Submit sends one transaction and returns its in-flight handle. The
// submission resolves exactly once — commit ack, exhausted rejection,
// or abort — through Pending.Wait and ClientOptions.OnOutcome.
func (c *Client) Submit(payload []byte) (*Pending, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	if !c.suppressUntil.IsZero() && time.Now().Before(c.suppressUntil) {
		c.ctrs.Suppressed++
		c.mu.Unlock()
		return nil, ErrSuppressed
	}
	if len(c.pending) >= c.o.Window {
		c.mu.Unlock()
		return nil, ErrWindowFull
	}
	seq := c.nextSeq
	c.nextSeq++
	p := &Pending{seq: seq, payload: payload, start: time.Now(), done: make(chan Outcome, 1)}
	c.pending[seq] = p
	conn := c.conn
	c.mu.Unlock()

	c.sendSubmit(conn, p)
	c.armTimer(p, c.o.AckTimeout)
	return p, nil
}

// SubmitWait is Submit + Wait.
func (c *Client) SubmitWait(payload []byte) (Outcome, error) {
	p, err := c.Submit(payload)
	if err != nil {
		return Outcome{}, err
	}
	return p.Wait(), nil
}

// sendSubmit writes one submission frame; a write failure starts the
// reconnect path (which resubmits everything pending).
func (c *Client) sendSubmit(conn net.Conn, p *Pending) {
	p.mu.Lock()
	if p.resolved {
		p.mu.Unlock()
		return
	}
	p.attempts++
	p.mu.Unlock()
	if conn == nil {
		return // reconnecting; the redial resubmits all pending
	}
	buf := appendSubmit(nil, p.seq, c.o.Priority, p.payload)
	c.wmu.Lock()
	_, err := conn.Write(buf)
	c.wmu.Unlock()
	if err != nil {
		c.reconnect(conn)
	}
}

// armTimer (re)arms a pending submission's timer: after d, resubmit on
// ack timeout.
func (c *Client) armTimer(p *Pending, d time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.resolved {
		return
	}
	if p.timer != nil {
		p.timer.Stop()
	}
	p.timer = time.AfterFunc(d, func() { c.ackTimeout(p) })
}

// ackTimeout fires when a submission has gone unacknowledged too long:
// the submission (or its ack) was lost somewhere — resubmit. The
// server's dedup window makes this idempotent.
func (c *Client) ackTimeout(p *Pending) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	conn := c.conn
	c.ctrs.Resubmits++
	c.mu.Unlock()
	c.sendSubmit(conn, p)
	c.armTimer(p, c.o.AckTimeout)
}

// backoff returns the jittered exponential delay for the given attempt
// count: uniform in [d/2, 3d/2) around d = base << attempts, capped.
func (c *Client) backoff(attempts int, serverHintMs uint32) time.Duration {
	d := c.o.BackoffBase << uint(min(attempts, 16))
	if hint := time.Duration(serverHintMs) * time.Millisecond; d < hint {
		d = hint
	}
	if d > c.o.BackoffCap {
		d = c.o.BackoffCap
	}
	c.mu.Lock()
	jitter := c.rng.Float64()
	c.mu.Unlock()
	return d/2 + time.Duration(jitter*float64(d))
}

// readLoop consumes acks from one connection until it dies, then hands
// off to the reconnect path.
func (c *Client) readLoop(conn net.Conn) {
	scratch := make([]byte, 64)
	for {
		typ, body, err := readFrame(conn, 1<<16, scratch)
		if err != nil {
			c.reconnect(conn)
			return
		}
		if typ != frameAck {
			continue // tolerate future frame types from newer servers
		}
		seq, status, retryMs, err := parseAck(body)
		if err != nil {
			c.reconnect(conn)
			return
		}
		c.onAck(seq, status, retryMs)
	}
}

// onAck applies one server ack to its pending submission.
func (c *Client) onAck(seq uint64, status byte, retryMs uint32) {
	c.mu.Lock()
	p := c.pending[seq]
	c.mu.Unlock()
	if p == nil {
		// Ack for a submission already resolved: a retry raced with the
		// original ack (the dedup window answers both). Benign.
		return
	}
	switch status {
	case StatusCommitted:
		// Deliberately no effect on the Busy escalation: a commit says
		// the pipeline drained one item, not that admission has headroom
		// — under sustained overload commits trickle constantly, and
		// decaying the streak on them kept suppression windows near the
		// base, letting the fleet's rejected wire traffic eat the
		// replica's capacity. The escalation instead expires by time
		// (see the Busy case).
		c.resolve(p, StatusCommitted, true)
	case StatusDuplicate:
		// Still in flight server-side; the commit ack will follow. Push
		// the ack timeout out so we don't retry-storm a slow commit.
		c.armTimer(p, c.o.AckTimeout)
	case StatusBusy, StatusWindowFull:
		if status == StatusBusy {
			// Honor the retry hint: shed new submissions locally until it
			// expires, escalating across consecutive Busy verdicts (the
			// jittered backoff schedule keeps the fleet decorrelated).
			// A long quiet gap — 2x BackoffCap comfortably exceeds the
			// longest jittered window — means the previous overload
			// episode ended, so the escalation restarts near the base.
			c.mu.Lock()
			now := time.Now()
			if !c.lastBusy.IsZero() && now.Sub(c.lastBusy) > 2*c.o.BackoffCap {
				c.busyStreak = 0
			}
			c.lastBusy = now
			c.busyStreak++
			streak := c.busyStreak
			c.mu.Unlock()
			// The server's adaptive hint is the authoritative controller
			// (it alone sees fleet-wide rejection vs admission rates); the
			// local escalation is a bounded fallback, capped low so a
			// stale streak cannot starve a recovered server.
			if streak > 4 {
				streak = 4
			}
			until := time.Now().Add(c.backoff(streak, retryMs))
			c.mu.Lock()
			if until.After(c.suppressUntil) {
				c.suppressUntil = until
			}
			c.mu.Unlock()
		}
		p.mu.Lock()
		attempts := p.attempts
		p.mu.Unlock()
		if c.o.MaxAttempts > 0 && attempts >= c.o.MaxAttempts {
			c.resolve(p, status, false)
			return
		}
		// Back off, then resubmit: seeded jitter decorrelates the fleet,
		// the server hint floors the delay under deep overload.
		delay := c.backoff(attempts, retryMs)
		p.mu.Lock()
		if !p.resolved {
			if p.timer != nil {
				p.timer.Stop()
			}
			p.timer = time.AfterFunc(delay, func() {
				c.mu.Lock()
				conn := c.conn
				closed := c.closed
				c.mu.Unlock()
				if !closed {
					c.sendSubmit(conn, p)
					c.armTimer(p, c.o.AckTimeout)
				}
			})
		}
		p.mu.Unlock()
	}
}

// resolve delivers a submission's terminal outcome exactly once.
func (c *Client) resolve(p *Pending, status byte, committed bool) {
	p.mu.Lock()
	if p.resolved {
		p.mu.Unlock()
		return
	}
	p.resolved = true
	if p.timer != nil {
		p.timer.Stop()
		p.timer = nil
	}
	attempts := p.attempts
	p.mu.Unlock()

	c.mu.Lock()
	delete(c.pending, p.seq)
	switch {
	case committed:
		c.ctrs.Committed++
	case status == StatusAborted:
		c.ctrs.Aborted++
	default:
		c.ctrs.Rejected++
	}
	c.mu.Unlock()

	out := Outcome{
		Seq: p.seq, Status: status, Committed: committed,
		Latency: time.Since(p.start), Attempts: attempts,
	}
	p.done <- out
	if c.o.OnOutcome != nil {
		c.o.OnOutcome(out)
	}
}

// reconnect tears down a dead connection and, once per generation,
// redials with jittered backoff, replays the handshake, and resubmits
// everything pending — the crash/partition recovery path.
func (c *Client) reconnect(dead net.Conn) {
	c.mu.Lock()
	if c.closed || c.conn != dead || c.dialing {
		c.mu.Unlock()
		return
	}
	c.dialing = true
	c.conn = nil
	c.mu.Unlock()
	if dead != nil {
		dead.Close()
	}

	go func() {
		for attempt := 1; ; attempt++ {
			c.mu.Lock()
			closed := c.closed
			c.mu.Unlock()
			if closed {
				return
			}
			conn, err := c.dialOnce()
			if err != nil {
				time.Sleep(c.backoff(attempt, 0))
				continue
			}
			c.mu.Lock()
			c.conn = conn
			c.dialing = false
			c.ctrs.Reconnects++
			resubmit := make([]*Pending, 0, len(c.pending))
			for _, p := range c.pending {
				resubmit = append(resubmit, p)
			}
			c.mu.Unlock()
			go c.readLoop(conn)
			// Resubmit everything in flight: whatever the old connection
			// lost is replayed, and the server's window dedups the rest.
			for _, p := range resubmit {
				c.sendSubmit(conn, p)
				c.armTimer(p, c.o.AckTimeout)
			}
			return
		}
	}()
}

// Close aborts in-flight submissions and releases the connection.
func (c *Client) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	conn := c.conn
	c.conn = nil
	var toAbort []*Pending
	for _, p := range c.pending {
		toAbort = append(toAbort, p)
	}
	c.mu.Unlock()
	if conn != nil {
		conn.Close()
	}
	for _, p := range toAbort {
		c.resolve(p, StatusAborted, false)
	}
}
