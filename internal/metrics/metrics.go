// Package metrics measures protocol performance the way the paper's
// evaluation does (§6): latency is the time from transaction arrival at a
// replica to the moment it is execution-ready; throughput is
// execution-ready transactions per second; time-series plots (Figs. 1, 7,
// 8) bucket latency by *request start time*. A blip/hangover analyzer
// implements the paper's §2.1 definitions.
package metrics

import (
	"math"
	"sync"
	"time"

	"repro/internal/runtime"
	"repro/internal/types"
)

// Recorder accumulates commit measurements. It is safe for concurrent use
// (the TCP runtime commits from multiple goroutines; the simulator from
// one).
//
// Quorum controls the latency endpoint: a batch counts as committed when
// Quorum distinct replicas have executed it. The paper's clients require
// f+1 matching replies (output commit), so one slow or recovering replica
// does not define latency; harnesses set Quorum = f+1. The default (1)
// records at the first executing replica.
type Recorder struct {
	mu sync.Mutex

	// Quorum is the number of distinct replicas that must execute a batch
	// before it counts (set before use; default 1).
	Quorum int

	// Per-second buckets keyed by request start (arrival) second.
	arrival []bucket
	// Per-second committed-transaction counts keyed by commit second.
	commit []uint64

	// seen tracks executions per batch until the quorum is reached.
	seen map[batchKey]*seenState

	hist  histogram
	total uint64
	txSum uint64
}

type batchKey struct {
	origin types.NodeID
	seq    uint64
}

type seenState struct {
	nodes uint64 // bitmask of replicas that executed (committees are small)
	count int
	done  bool
}

type bucket struct {
	count  uint64
	sumLat float64 // seconds
}

// NewRecorder builds a recorder sized for runs up to horizon.
func NewRecorder(horizon time.Duration) *Recorder {
	secs := int(horizon/time.Second) + 2
	return &Recorder{
		Quorum:  1,
		arrival: make([]bucket, secs),
		commit:  make([]uint64, secs),
		seen:    make(map[batchKey]*seenState),
		hist:    newHistogram(),
	}
}

// Sink returns a runtime.CommitSink recording each batch once, at the
// moment the Quorum-th distinct replica executes it (output commit).
func (r *Recorder) Sink() runtime.CommitSink {
	return runtime.CommitSinkFunc(func(node types.NodeID, now time.Duration, c runtime.Committed) {
		if c.Batch == nil {
			return
		}
		r.RecordAt(node, now, c.Batch)
	})
}

// RecordAt notes that `node` executed the batch; once Quorum distinct
// replicas have, the batch is recorded with that timestamp.
func (r *Recorder) RecordAt(node types.NodeID, now time.Duration, b *types.Batch) {
	r.mu.Lock()
	k := batchKey{origin: b.Origin, seq: b.Seq}
	st := r.seen[k]
	if st == nil {
		st = &seenState{}
		r.seen[k] = st
	}
	bit := uint64(1) << (uint(node) % 64)
	if st.done || st.nodes&bit != 0 {
		r.mu.Unlock()
		return
	}
	st.nodes |= bit
	st.count++
	if st.count < r.Quorum {
		r.mu.Unlock()
		return
	}
	st.done = true
	r.mu.Unlock()
	r.Record(now, b)
}

// Record notes the commit of a batch at time now.
func (r *Recorder) Record(now time.Duration, b *types.Batch) {
	lat := now - b.MeanArrival
	if lat < 0 {
		lat = 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	as := int(b.MeanArrival / time.Second)
	cs := int(now / time.Second)
	r.grow(max(as, cs))
	r.arrival[as].count += uint64(b.Count)
	r.arrival[as].sumLat += lat.Seconds() * float64(b.Count)
	r.commit[cs] += uint64(b.Count)
	r.hist.add(lat, uint64(b.Count))
	r.total += uint64(b.Count)
	r.txSum += b.Bytes
}

func (r *Recorder) grow(sec int) {
	for sec >= len(r.arrival) {
		r.arrival = append(r.arrival, bucket{})
		r.commit = append(r.commit, 0)
	}
}

// Total returns the number of committed transactions recorded.
func (r *Recorder) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Throughput returns committed tx/s over commit-time window [from, to).
func (r *Recorder) Throughput(from, to time.Duration) float64 {
	if to <= from {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var sum uint64
	f, t := int(from/time.Second), int(to/time.Second)
	for s := f; s < t && s < len(r.commit); s++ {
		sum += r.commit[s]
	}
	return float64(sum) / (to - from).Seconds()
}

// MeanLatency returns the mean commit latency of transactions that
// *arrived* within [from, to).
func (r *Recorder) MeanLatency(from, to time.Duration) time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	var count uint64
	var sum float64
	f, t := int(from/time.Second), int(to/time.Second)
	for s := f; s < t && s < len(r.arrival); s++ {
		count += r.arrival[s].count
		sum += r.arrival[s].sumLat
	}
	if count == 0 {
		return 0
	}
	return time.Duration(sum / float64(count) * float64(time.Second))
}

// Percentile returns the p-quantile (0 < p <= 1) of all recorded latencies.
func (r *Recorder) Percentile(p float64) time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.hist.percentile(p)
}

// SeriesPoint is one per-second sample of the latency-vs-request-start
// series the paper's blip figures plot.
type SeriesPoint struct {
	Second    int
	MeanLat   time.Duration
	Committed uint64 // txs that started in this second and committed
}

// ArrivalSeries returns per-second mean latency keyed by request start.
func (r *Recorder) ArrivalSeries() []SeriesPoint {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]SeriesPoint, 0, len(r.arrival))
	for s, b := range r.arrival {
		p := SeriesPoint{Second: s, Committed: b.count}
		if b.count > 0 {
			p.MeanLat = time.Duration(b.sumLat / float64(b.count) * float64(time.Second))
		}
		out = append(out, p)
	}
	return out
}

// CommitSeries returns per-second committed transaction counts.
func (r *Recorder) CommitSeries() []uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]uint64, len(r.commit))
	copy(out, r.commit)
	return out
}

// --- hangover analysis (§2.1) ---

// Hangover quantifies a blip's aftermath: given the blip window and a
// steady-state latency baseline, it reports how long after the blip ended
// the per-second mean latency (by request start time) stayed above
// baseline*tolerance — the paper's "performance degradation ... that
// persists beyond the return of a good interval".
func (r *Recorder) Hangover(blipEnd time.Duration, baseline time.Duration, tolerance float64) time.Duration {
	series := r.ArrivalSeries()
	threshold := time.Duration(float64(baseline) * tolerance)
	endSec := int((blipEnd + time.Second - 1) / time.Second) // first full post-blip second
	last := endSec
	for _, p := range series {
		if p.Second < endSec || p.Committed == 0 {
			continue
		}
		if p.MeanLat > threshold {
			last = p.Second + 1
		}
	}
	if last <= endSec {
		return 0
	}
	return time.Duration(last-endSec) * time.Second
}

// --- histogram ---

const (
	histMin    = 50 * time.Microsecond
	histGrowth = 1.05
	histSize   = 512
)

type histogram struct {
	buckets [histSize]uint64
	logG    float64
}

func newHistogram() histogram {
	return histogram{logG: math.Log(histGrowth)}
}

func (h *histogram) index(d time.Duration) int {
	if d <= histMin {
		return 0
	}
	i := int(math.Log(float64(d)/float64(histMin)) / h.logG)
	if i >= histSize {
		i = histSize - 1
	}
	return i
}

func (h *histogram) value(i int) time.Duration {
	return time.Duration(float64(histMin) * math.Pow(histGrowth, float64(i)+0.5))
}

func (h *histogram) add(d time.Duration, w uint64) {
	h.buckets[h.index(d)] += w
}

func (h *histogram) percentile(p float64) time.Duration {
	var total uint64
	for _, c := range h.buckets {
		total += c
	}
	if total == 0 {
		return 0
	}
	target := uint64(p * float64(total))
	var cum uint64
	for i, c := range h.buckets {
		cum += c
		if cum >= target {
			return h.value(i)
		}
	}
	return h.value(histSize - 1)
}
