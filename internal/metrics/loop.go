// Event-loop ingress counters: how many events a replica's runtime
// accepted, dispatched to data-plane shards, and — critically — dropped
// because an inbox was full. Drops are silent by design (protocols
// tolerate loss and recover by retransmission), which historically made
// overload invisible; these counters make it observable.
package metrics

import "sync/atomic"

// LoopCounters instruments one transport event loop (control queue plus
// its data-plane shard queues, if any).
type LoopCounters struct {
	// ControlEvents / ShardEvents count events accepted onto the control
	// queue and the shard queues respectively.
	ControlEvents atomic.Uint64
	ShardEvents   atomic.Uint64
	// InboxDrops counts events discarded because the control inbox was
	// full; ShardDrops the same for data-plane shard queues. The newest
	// event is the one dropped (see transport.Loop's queueing contract).
	InboxDrops atomic.Uint64
	ShardDrops atomic.Uint64
	// Gossip car-dissemination counters (zero unless the mesh runs with
	// gossip enabled). GossipOrigin counts cars this replica originated
	// through the fanout sampler (instead of full-mesh broadcast);
	// GossipRelays counts inbound cars re-forwarded to sampled peers;
	// GossipDupDrops counts duplicate arrivals suppressed by the
	// relay-once dedup before delivery.
	GossipOrigin   atomic.Uint64
	GossipRelays   atomic.Uint64
	GossipDupDrops atomic.Uint64
}

// LoopSnapshot is a plain-value copy of LoopCounters, plus replica-level
// health fields the loop itself does not own: Replica.LoopStats fills
// them from the mesh's per-peer link-health counters and the journal's
// fault state, so one snapshot carries the whole self-healing picture.
type LoopSnapshot struct {
	ControlEvents, ShardEvents, InboxDrops, ShardDrops uint64
	GossipOrigin, GossipRelays, GossipDupDrops         uint64
	// PeerStalls / PeerRedials / PeerDials aggregate the mesh's link
	// health across peers (see PeerTransport).
	PeerStalls, PeerRedials, PeerDials uint64
	// JournalFatal is 1 when the replica halted on a journal write/sync
	// failure (write-before-externalize could no longer be guaranteed).
	JournalFatal uint64
}

// Snapshot copies the counters into plain values.
func (c *LoopCounters) Snapshot() LoopSnapshot {
	return LoopSnapshot{
		ControlEvents:  c.ControlEvents.Load(),
		ShardEvents:    c.ShardEvents.Load(),
		InboxDrops:     c.InboxDrops.Load(),
		ShardDrops:     c.ShardDrops.Load(),
		GossipOrigin:   c.GossipOrigin.Load(),
		GossipRelays:   c.GossipRelays.Load(),
		GossipDupDrops: c.GossipDupDrops.Load(),
	}
}
