// Per-peer transport counters for the TCP mesh's egress/ingress paths.
// Counters are lock-free atomics bumped by writer/reader goroutines;
// Snapshot gives a consistent-enough view for monitoring and tests (each
// field is individually atomic, the set is not a transaction).
package metrics

import "sync/atomic"

// PlaneCounters instruments one priority plane (control or data) of one
// peer link.
type PlaneCounters struct {
	// Frames is the number of framed messages handed to the wire.
	Frames atomic.Uint64
	// Flushes is the number of write syscalls (coalesced batches); the
	// coalescing ratio is Frames/Flushes.
	Flushes atomic.Uint64
	// Bytes is the total frame bytes written.
	Bytes atomic.Uint64
	// Drops counts frames discarded because the peer's queue was full.
	Drops atomic.Uint64
	// DeltaFrames counts frames written delta-compressed against the
	// connection's previous cut instead of full-size (subset of Frames;
	// zero unless delta cuts are enabled).
	DeltaFrames atomic.Uint64
}

// PeerTransport instruments one peer link across both planes.
type PeerTransport struct {
	Control PlaneCounters
	Data    PlaneCounters
	// RecvFrames / RecvBytes count inbound frames from this peer.
	RecvFrames atomic.Uint64
	RecvBytes  atomic.Uint64
	// Link-health counters (TCP mesh only). Dials counts successful
	// outbound connection establishments to this peer; Redials the subset
	// that replaced a previously working connection (reconnections);
	// Stalls counts stall-detector teardowns — connections the peer held
	// open but made no receive progress on within the stall timeout.
	Dials   atomic.Uint64
	Redials atomic.Uint64
	Stalls  atomic.Uint64
}

// PlaneSnapshot is a plain-value copy of PlaneCounters.
type PlaneSnapshot struct {
	Frames, Flushes, Bytes, Drops, DeltaFrames uint64
}

// TransportSnapshot is a plain-value copy of PeerTransport.
type TransportSnapshot struct {
	Control, Data          PlaneSnapshot
	RecvFrames, RecvBytes  uint64
	Dials, Redials, Stalls uint64
}

func (p *PlaneCounters) snapshot() PlaneSnapshot {
	return PlaneSnapshot{
		Frames:      p.Frames.Load(),
		Flushes:     p.Flushes.Load(),
		Bytes:       p.Bytes.Load(),
		Drops:       p.Drops.Load(),
		DeltaFrames: p.DeltaFrames.Load(),
	}
}

// Snapshot copies the counters into plain values.
func (t *PeerTransport) Snapshot() TransportSnapshot {
	return TransportSnapshot{
		Control:    t.Control.snapshot(),
		Data:       t.Data.snapshot(),
		RecvFrames: t.RecvFrames.Load(),
		RecvBytes:  t.RecvBytes.Load(),
		Dials:      t.Dials.Load(),
		Redials:    t.Redials.Load(),
		Stalls:     t.Stalls.Load(),
	}
}

// Add accumulates another snapshot into this one (mesh-wide totals).
func (s *TransportSnapshot) Add(o TransportSnapshot) {
	s.Control.add(o.Control)
	s.Data.add(o.Data)
	s.RecvFrames += o.RecvFrames
	s.RecvBytes += o.RecvBytes
	s.Dials += o.Dials
	s.Redials += o.Redials
	s.Stalls += o.Stalls
}

func (p *PlaneSnapshot) add(o PlaneSnapshot) {
	p.Frames += o.Frames
	p.Flushes += o.Flushes
	p.Bytes += o.Bytes
	p.Drops += o.Drops
	p.DeltaFrames += o.DeltaFrames
}
