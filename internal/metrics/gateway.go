// Gateway-tier counters: what the client-facing front door admitted,
// rejected (and why), deduplicated, and acknowledged. The rejection
// split matters operationally — Busy means the replica is the
// bottleneck (back off), WindowFull means one client is (widen or slow
// that client), and a rising Deduped count under churn means the
// at-least-once retry machinery is doing real work.
package metrics

import (
	"sync/atomic"
	"time"
)

// GatewayCounters instruments one gateway server. All fields are
// atomics: the hot paths (per-submission admission, per-commit ack
// routing) bump them from client-connection and dispatcher goroutines.
type GatewayCounters struct {
	// Conns counts accepted client connections; Hellos the subset that
	// completed the handshake (the difference is hostile or broken peers).
	Conns  atomic.Uint64
	Hellos atomic.Uint64
	// Admitted counts submissions handed to the replica's mempool.
	Admitted atomic.Uint64
	// RejectedBusy / RejectedWindowFull count typed rejections: replica
	// overload (mempool or own-lane depth past the priority's threshold)
	// vs a single client exceeding its in-flight window.
	RejectedBusy       atomic.Uint64
	RejectedWindowFull atomic.Uint64
	// Deduped counts duplicate/replayed submissions absorbed by the
	// per-client dedup window — acked from gateway state, never
	// re-admitted to the mempool.
	Deduped atomic.Uint64
	// Readmitted counts resubmissions re-fed to the mempool because the
	// backend turned over (replica restart) since their first admission —
	// the crash-recovery leg of end-to-end idempotent delivery.
	Readmitted atomic.Uint64
	// Acked counts commit acknowledgments pushed to clients; AckDrops
	// counts acks discarded because the client's connection was gone or
	// its write queue full (the client's resubmission recovers these).
	Acked    atomic.Uint64
	AckDrops atomic.Uint64
	// ChainDups counts committed transactions whose (client, seq) was
	// already acked — a duplicate reaching the chain despite the dedup
	// window. The soak asserts this stays zero.
	ChainDups atomic.Uint64
	// HostileDrops counts connections dropped by protocol policing
	// (oversized frames, garbage bytes, submissions before the
	// handshake).
	HostileDrops atomic.Uint64
	// AckLatencyNs accumulates submit→commit-ack latency over all acks
	// (mean = AckLatencyNs / Acked); benches keep full histograms.
	AckLatencyNs atomic.Uint64
}

// AckObserved records one commit acknowledgment and its latency.
func (c *GatewayCounters) AckObserved(lat time.Duration) {
	c.Acked.Add(1)
	if lat > 0 {
		c.AckLatencyNs.Add(uint64(lat))
	}
}

// GatewaySnapshot is a plain-value copy of GatewayCounters.
type GatewaySnapshot struct {
	Conns, Hellos                    uint64
	Admitted                         uint64
	RejectedBusy, RejectedWindowFull uint64
	Deduped, Readmitted              uint64
	Acked, AckDrops                  uint64
	ChainDups, HostileDrops          uint64
	AckLatencyMean                   time.Duration
}

// Snapshot copies the counters into plain values.
func (c *GatewayCounters) Snapshot() GatewaySnapshot {
	s := GatewaySnapshot{
		Conns:              c.Conns.Load(),
		Hellos:             c.Hellos.Load(),
		Admitted:           c.Admitted.Load(),
		RejectedBusy:       c.RejectedBusy.Load(),
		RejectedWindowFull: c.RejectedWindowFull.Load(),
		Deduped:            c.Deduped.Load(),
		Readmitted:         c.Readmitted.Load(),
		Acked:              c.Acked.Load(),
		AckDrops:           c.AckDrops.Load(),
		ChainDups:          c.ChainDups.Load(),
		HostileDrops:       c.HostileDrops.Load(),
	}
	if s.Acked > 0 {
		s.AckLatencyMean = time.Duration(c.AckLatencyNs.Load() / s.Acked)
	}
	return s
}

// Rejected returns total typed rejections.
func (s GatewaySnapshot) Rejected() uint64 { return s.RejectedBusy + s.RejectedWindowFull }
