package metrics

import (
	"testing"
	"time"

	"repro/internal/types"
)

func batchAt(origin types.NodeID, seq uint64, count uint32, arrival time.Duration) *types.Batch {
	return types.NewSyntheticBatch(origin, seq, count, uint64(count)*512, arrival, arrival)
}

func TestRecordAndWindows(t *testing.T) {
	r := NewRecorder(time.Minute)
	// 100 txs arriving at 1.5s committing at 2.0s (500ms latency).
	r.Record(2*time.Second, batchAt(0, 1, 100, 1500*time.Millisecond))
	// 300 txs arriving at 2.5s committing at 2.7s (200ms latency).
	r.Record(2700*time.Millisecond, batchAt(0, 2, 300, 2500*time.Millisecond))

	if r.Total() != 400 {
		t.Fatalf("total = %d", r.Total())
	}
	// Throughput over commit window [2s,3s): all 400.
	if got := r.Throughput(2*time.Second, 3*time.Second); got != 400 {
		t.Fatalf("throughput = %v", got)
	}
	// Mean latency over arrival window [1s,3s): (100*0.5 + 300*0.2)/400.
	want := time.Duration((100*0.5 + 300*0.2) / 400 * float64(time.Second))
	got := r.MeanLatency(1*time.Second, 3*time.Second)
	if got < want-time.Millisecond || got > want+time.Millisecond {
		t.Fatalf("mean = %v, want %v", got, want)
	}
	// Arrival window excluding the first batch.
	if got := r.MeanLatency(2*time.Second, 3*time.Second); got < 190*time.Millisecond || got > 210*time.Millisecond {
		t.Fatalf("windowed mean = %v", got)
	}
}

func TestQuorumRecording(t *testing.T) {
	r := NewRecorder(time.Minute)
	r.Quorum = 2
	b := batchAt(1, 7, 50, time.Second)
	r.RecordAt(0, 1500*time.Millisecond, b) // first executor: not yet recorded
	if r.Total() != 0 {
		t.Fatal("recorded before quorum")
	}
	r.RecordAt(0, 1600*time.Millisecond, b) // duplicate executor: ignored
	if r.Total() != 0 {
		t.Fatal("duplicate executor counted")
	}
	r.RecordAt(2, 1800*time.Millisecond, b) // second distinct: recorded at 1.8s
	if r.Total() != 50 {
		t.Fatalf("total = %d", r.Total())
	}
	lat := r.MeanLatency(0, 2*time.Second)
	if lat != 800*time.Millisecond {
		t.Fatalf("latency endpoint = %v, want 800ms (2nd executor)", lat)
	}
	r.RecordAt(3, 5*time.Second, b) // post-quorum executor: ignored
	if r.Total() != 50 {
		t.Fatal("post-quorum execution double-counted")
	}
}

func TestPercentiles(t *testing.T) {
	r := NewRecorder(time.Minute)
	// 90 txs at 100ms, 10 txs at 1s.
	r.Record(1100*time.Millisecond, batchAt(0, 1, 90, time.Second))
	r.Record(3*time.Second, batchAt(0, 2, 10, 2*time.Second))
	p50 := r.Percentile(0.5)
	p99 := r.Percentile(0.99)
	if p50 < 80*time.Millisecond || p50 > 130*time.Millisecond {
		t.Fatalf("p50 = %v", p50)
	}
	if p99 < 800*time.Millisecond || p99 > 1200*time.Millisecond {
		t.Fatalf("p99 = %v", p99)
	}
	if p99 <= p50 {
		t.Fatal("percentiles must be monotone")
	}
}

func TestHangoverAnalysis(t *testing.T) {
	r := NewRecorder(time.Minute)
	// Steady 100ms latency for seconds 0-9.
	for s := 0; s < 10; s++ {
		arr := time.Duration(s)*time.Second + 500*time.Millisecond
		r.Record(arr+100*time.Millisecond, batchAt(0, uint64(s+1), 100, arr))
	}
	// Blip: seconds 10-12 at 2s latency; recovery at 13+.
	for s := 10; s < 13; s++ {
		arr := time.Duration(s)*time.Second + 500*time.Millisecond
		r.Record(arr+2*time.Second, batchAt(0, uint64(s+1), 100, arr))
	}
	for s := 13; s < 20; s++ {
		arr := time.Duration(s)*time.Second + 500*time.Millisecond
		r.Record(arr+110*time.Millisecond, batchAt(0, uint64(s+1), 100, arr))
	}
	// Blip declared over at t=11s: latency stayed >2x baseline until 13.
	h := r.Hangover(11*time.Second, 100*time.Millisecond, 2.0)
	if h != 2*time.Second {
		t.Fatalf("hangover = %v, want 2s", h)
	}
	// Measured from 13s, no hangover remains.
	if h := r.Hangover(13*time.Second, 100*time.Millisecond, 2.0); h != 0 {
		t.Fatalf("post-recovery hangover = %v", h)
	}
}

func TestArrivalSeriesShape(t *testing.T) {
	r := NewRecorder(10 * time.Second)
	r.Record(2*time.Second, batchAt(0, 1, 10, 1500*time.Millisecond))
	series := r.ArrivalSeries()
	if series[1].Committed != 10 || series[1].MeanLat != 500*time.Millisecond {
		t.Fatalf("series[1] = %+v", series[1])
	}
	if series[0].Committed != 0 {
		t.Fatalf("series[0] = %+v", series[0])
	}
}

func TestNegativeLatencyClamped(t *testing.T) {
	r := NewRecorder(time.Minute)
	r.Record(time.Second, batchAt(0, 1, 10, 2*time.Second)) // commit before arrival
	if lat := r.MeanLatency(2*time.Second, 3*time.Second); lat != 0 {
		t.Fatalf("negative latency not clamped: %v", lat)
	}
}
