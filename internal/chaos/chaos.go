// Package chaos generates seeded, composable fault schedules for the
// soak harness: restart churn (rolling, with an amnesia mix), stall
// windows (a replica turns accepted-but-silent), storage faults (a
// replica's WAL goes bad and the process dies loudly), and Byzantine
// behavior windows, spread over a minutes-long run.
//
// One Schedule drives both runtimes. The simulator consumes it through
// CompileSim (restarts become Down+Restart events, stall windows become
// Mute windows — the sim has no sockets to wedge); the live TCP soak
// (internal/harness) interprets the same events operationally: real
// process-style replica teardowns, link-level silence, and WAL fault
// plans with operator restarts.
//
// Everything here is a pure function of Params — no wall clock, no
// global randomness — so a failing soak replays from its seed.
package chaos

import (
	"fmt"
	"math/rand/v2"
	"sort"
	"time"

	"repro/internal/sim"
	"repro/internal/types"
)

// Kind classifies one scheduled fault event.
type Kind int

const (
	// KindRestart crashes the node for [From, To) and restarts it at To,
	// with or without its journal (Amnesia).
	KindRestart Kind = iota
	// KindStall makes the node accepted-but-silent during [From, To): it
	// keeps receiving but sends nothing, the failure mode the transport
	// stall detector exists for.
	KindStall
	// KindStorage poisons the node's WAL at From: the journal barrier
	// fails, the replica halts fatally, and the operator restarts it at
	// To from whatever the log durably holds.
	KindStorage
)

func (k Kind) String() string {
	switch k {
	case KindRestart:
		return "restart"
	case KindStall:
		return "stall"
	case KindStorage:
		return "storage"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Event is one scheduled fault: node suffers Kind during [From, To).
type Event struct {
	Kind     Kind
	Node     types.NodeID
	From, To time.Duration
	// Amnesia (restarts only) discards the journal at restart.
	Amnesia bool
}

// Behavior schedules a Byzantine behavior window (internal/adversary
// name) on one replica.
type Behavior struct {
	Node     types.NodeID
	Name     string
	From, To time.Duration
}

// Schedule is a composed chaos plan: benign fault events (sorted by
// From, pairwise non-overlapping in time — at most one event is active
// at any instant, keeping the concurrent-fault count ≤ f alongside the
// behaviors) plus Byzantine behavior windows.
type Schedule struct {
	N         int
	Seed      uint64
	Events    []Event
	Behaviors []Behavior
}

// Params configures Generate. Counts of zero skip that fault class.
type Params struct {
	// N is the committee size (3f+1; required).
	N int
	// Seed drives every random choice (node selection, jitter, amnesia
	// mix); the same Params generate the same Schedule.
	Seed uint64
	// Start/End bound the fault activity: events are spread over
	// [Start, End) with recovery gaps between them, so invariant
	// checkers can measure hangover after each window.
	Start, End time.Duration
	// Restarts is the number of rolling crash+restart events; DownFor is
	// each crash window's length; AmnesiaMix the fraction ([0,1]) of
	// restarts that discard the journal (capped so an amnesiac node is
	// never the behavior node).
	Restarts   int
	DownFor    time.Duration
	AmnesiaMix float64
	// Stalls is the number of accepted-but-silent windows of StallFor.
	Stalls   int
	StallFor time.Duration
	// StorageFaults is the number of WAL-poisoning events; each keeps
	// the replica down for DownFor before its operator restart.
	StorageFaults int
	// Behaviors assigns full- or part-run Byzantine behaviors. They are
	// copied into the schedule after validation (≤ f total, no overlap
	// with event nodes is NOT required — a stalled adversary is legal —
	// but restarts avoid behavior nodes, mirroring sim.AddBehavior's
	// restart restriction).
	Behaviors []Behavior
}

// Generate builds a seeded Schedule from Params. Events are laid out in
// equal slots over [Start, End), one event per slot with jittered onset,
// so no two events overlap and every event is followed by a recovery
// gap inside its own slot.
func Generate(p Params) (*Schedule, error) {
	if p.N < 4 {
		return nil, fmt.Errorf("chaos: committee of %d (need >= 4)", p.N)
	}
	f := (p.N - 1) / 3
	if len(p.Behaviors) > f {
		return nil, fmt.Errorf("chaos: %d behaviors exceeds f=%d", len(p.Behaviors), f)
	}
	total := p.Restarts + p.Stalls + p.StorageFaults
	if total == 0 && len(p.Behaviors) == 0 {
		return nil, fmt.Errorf("chaos: empty plan")
	}
	if total > 0 && p.End <= p.Start {
		return nil, fmt.Errorf("chaos: empty window [%v, %v)", p.Start, p.End)
	}
	rng := rand.New(rand.NewPCG(p.Seed, p.Seed^0x6a09e667f3bcc909))

	// Nodes eligible for restarts/storage faults: behavior nodes are
	// excluded (an adversary restarting honestly would end its behavior;
	// the sim builder rejects the combination outright).
	behaviorNode := make([]bool, p.N)
	for _, b := range p.Behaviors {
		if int(b.Node) >= p.N {
			return nil, fmt.Errorf("chaos: behavior node %d outside committee", b.Node)
		}
		if behaviorNode[b.Node] {
			return nil, fmt.Errorf("chaos: node %d has two behaviors", b.Node)
		}
		behaviorNode[b.Node] = true
	}
	var restartable []types.NodeID
	for i := 0; i < p.N; i++ {
		if !behaviorNode[i] {
			restartable = append(restartable, types.NodeID(i))
		}
	}
	if (p.Restarts > 0 || p.StorageFaults > 0) && len(restartable) == 0 {
		return nil, fmt.Errorf("chaos: no restartable nodes")
	}

	// Deterministic event-kind sequence, shuffled so kinds interleave.
	kinds := make([]Kind, 0, total)
	for i := 0; i < p.Restarts; i++ {
		kinds = append(kinds, KindRestart)
	}
	for i := 0; i < p.Stalls; i++ {
		kinds = append(kinds, KindStall)
	}
	for i := 0; i < p.StorageFaults; i++ {
		kinds = append(kinds, KindStorage)
	}
	rng.Shuffle(len(kinds), func(i, j int) { kinds[i], kinds[j] = kinds[j], kinds[i] })

	s := &Schedule{N: p.N, Seed: p.Seed}
	s.Behaviors = append(s.Behaviors, p.Behaviors...)
	if total == 0 {
		return s, nil
	}
	slot := (p.End - p.Start) / time.Duration(total)
	rollIdx := rng.IntN(max(len(restartable), 1)) // rolling cursor
	for i, kind := range kinds {
		slotStart := p.Start + time.Duration(i)*slot
		width := p.DownFor
		if kind == KindStall {
			width = p.StallFor
		}
		if width <= 0 || width > slot/2 {
			// Keep at least half the slot as recovery gap.
			width = slot / 2
		}
		// Jitter the onset inside the slack this slot leaves.
		slack := slot - width
		from := slotStart
		if slack > 0 {
			from += time.Duration(rng.Int64N(int64(slack) / 2))
		}
		ev := Event{Kind: kind, From: from, To: from + width}
		switch kind {
		case KindStall:
			ev.Node = types.NodeID(rng.IntN(p.N))
		default:
			// Rolling: cycle the restartable nodes so churn spreads
			// instead of hammering one replica.
			ev.Node = restartable[rollIdx%len(restartable)]
			rollIdx++
			if kind == KindRestart {
				ev.Amnesia = rng.Float64() < p.AmnesiaMix
			}
		}
		s.Events = append(s.Events, ev)
	}
	sort.Slice(s.Events, func(i, j int) bool { return s.Events[i].From < s.Events[j].From })
	return s, nil
}

// Validate checks structural invariants: events sorted and pairwise
// non-overlapping, nodes in range, behaviors ≤ f and restart-disjoint.
func (s *Schedule) Validate() error {
	f := (s.N - 1) / 3
	if len(s.Behaviors) > f {
		return fmt.Errorf("chaos: %d behaviors exceeds f=%d", len(s.Behaviors), f)
	}
	behaviorNode := make([]bool, s.N)
	for _, b := range s.Behaviors {
		if int(b.Node) >= s.N {
			return fmt.Errorf("chaos: behavior node %d outside committee", b.Node)
		}
		behaviorNode[b.Node] = true
	}
	var prevTo time.Duration
	for i, ev := range s.Events {
		if int(ev.Node) >= s.N {
			return fmt.Errorf("chaos: event %d node %d outside committee", i, ev.Node)
		}
		if ev.To <= ev.From {
			return fmt.Errorf("chaos: event %d empty window [%v, %v)", i, ev.From, ev.To)
		}
		if ev.From < prevTo {
			return fmt.Errorf("chaos: event %d overlaps previous (starts %v, previous ends %v)", i, ev.From, prevTo)
		}
		prevTo = ev.To
		if ev.Kind != KindStall && behaviorNode[ev.Node] {
			return fmt.Errorf("chaos: event %d restarts behavior node %d", i, ev.Node)
		}
	}
	return nil
}

// CompileSim lowers the schedule onto the simulator's fault model:
// restarts become Down windows ending in Restart events; storage
// faults become crash+recover (the WAL's durable prefix survives, so
// no amnesia); stall windows become Mute windows — the sim's network
// has no TCP sessions to wedge, so "receives but sends nothing" is the
// faithful projection.
func (s *Schedule) CompileSim() (*sim.FaultSchedule, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	fs := &sim.FaultSchedule{}
	for _, ev := range s.Events {
		switch ev.Kind {
		case KindRestart:
			fs.AddDown(ev.Node, ev.From, ev.To).Restart(ev.Node, ev.To, ev.Amnesia)
		case KindStorage:
			fs.AddDown(ev.Node, ev.From, ev.To).Restart(ev.Node, ev.To, false)
		case KindStall:
			fs.AddMute(ev.Node, ev.From, ev.To)
		}
	}
	for _, b := range s.Behaviors {
		fs.AddBehavior(b.Node, b.Name, b.From, b.To)
	}
	return fs, nil
}

// Windows returns the half-open fault windows ([From, To) per event, in
// order — the intervals after which invariant checkers measure
// hangover.
func (s *Schedule) Windows() []Event { return s.Events }
