package chaos

import (
	"testing"
	"time"
)

func soakParams(seed uint64) Params {
	return Params{
		N:             7,
		Seed:          seed,
		Start:         2 * time.Second,
		End:           30 * time.Second,
		Restarts:      3,
		DownFor:       800 * time.Millisecond,
		AmnesiaMix:    0.5,
		Stalls:        2,
		StallFor:      600 * time.Millisecond,
		StorageFaults: 1,
		Behaviors:     []Behavior{{Node: 6, Name: "equivocate", From: 0, To: 0}},
	}
}

// Same params, same schedule — a failing soak replays from its seed.
func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(soakParams(42))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(soakParams(42))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Events) != len(b.Events) {
		t.Fatalf("event counts differ: %d vs %d", len(a.Events), len(b.Events))
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, a.Events[i], b.Events[i])
		}
	}
	c, err := Generate(soakParams(43))
	if err != nil {
		t.Fatal(err)
	}
	same := len(a.Events) == len(c.Events)
	if same {
		for i := range a.Events {
			if a.Events[i] != c.Events[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds generated identical schedules")
	}
}

// Generated schedules must satisfy their own invariants: full event
// count, sorted non-overlapping windows inside [Start, End), behavior
// nodes never restarted, and the whole thing Validate- and
// CompileSim-clean.
func TestGenerateStructure(t *testing.T) {
	p := soakParams(7)
	s, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(s.Events), p.Restarts+p.Stalls+p.StorageFaults; got != want {
		t.Fatalf("generated %d events, want %d", got, want)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	kinds := make(map[Kind]int)
	for _, ev := range s.Events {
		kinds[ev.Kind]++
		if ev.From < p.Start || ev.To > p.End {
			t.Fatalf("event %+v outside [%v, %v)", ev, p.Start, p.End)
		}
		if ev.Kind != KindStall && ev.Node == 6 {
			t.Fatalf("behavior node restarted: %+v", ev)
		}
	}
	if kinds[KindRestart] != p.Restarts || kinds[KindStall] != p.Stalls || kinds[KindStorage] != p.StorageFaults {
		t.Fatalf("kind mix %v does not match params", kinds)
	}
	fs, err := s.CompileSim()
	if err != nil {
		t.Fatal(err)
	}
	if got := len(fs.Restarts()); got != p.Restarts+p.StorageFaults {
		t.Fatalf("sim schedule has %d restarts, want %d", got, p.Restarts+p.StorageFaults)
	}
	if !fs.HasBehaviors() {
		t.Fatal("behavior window lost in compilation")
	}
	// The compiled Down windows must match the benign events: the node
	// is down inside its window, up outside every window.
	for _, ev := range s.Events {
		if ev.Kind == KindStall {
			continue
		}
		mid := ev.From + (ev.To-ev.From)/2
		if !fs.Down(mid, ev.Node) {
			t.Fatalf("node %d not down at %v (event %+v)", ev.Node, mid, ev)
		}
	}
}

// Degenerate and invalid params must be rejected, not silently shrunk.
func TestGenerateRejectsInvalid(t *testing.T) {
	cases := []Params{
		{N: 3, Seed: 1, Restarts: 1, Start: 0, End: time.Second},
		{N: 4, Seed: 1},
		{N: 4, Seed: 1, Restarts: 1, Start: time.Second, End: time.Second},
		{N: 4, Seed: 1, Restarts: 1, End: time.Second, Behaviors: []Behavior{
			{Node: 1, Name: "equivocate"}, {Node: 2, Name: "equivocate"}}},
		{N: 7, Seed: 1, Restarts: 1, End: time.Second, Behaviors: []Behavior{
			{Node: 9, Name: "equivocate"}}},
	}
	for i, p := range cases {
		if _, err := Generate(p); err == nil {
			t.Fatalf("case %d: invalid params accepted: %+v", i, p)
		}
	}
}

// Validate must reject hand-built schedules that break the one-at-a-time
// discipline the soak's ≤ f argument rests on.
func TestValidateRejectsOverlap(t *testing.T) {
	s := &Schedule{N: 4, Events: []Event{
		{Kind: KindRestart, Node: 1, From: time.Second, To: 3 * time.Second},
		{Kind: KindStall, Node: 2, From: 2 * time.Second, To: 4 * time.Second},
	}}
	if err := s.Validate(); err == nil {
		t.Fatal("overlapping events validated")
	}
	s2 := &Schedule{N: 4,
		Events:    []Event{{Kind: KindRestart, Node: 1, From: 1 * time.Second, To: 2 * time.Second}},
		Behaviors: []Behavior{{Node: 1, Name: "equivocate"}},
	}
	if err := s2.Validate(); err == nil {
		t.Fatal("restart of a behavior node validated")
	}
	if _, err := s2.CompileSim(); err == nil {
		t.Fatal("CompileSim accepted an invalid schedule")
	}
}
