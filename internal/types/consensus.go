package types

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
)

// TicketKind discriminates the two tenure proofs a leader may carry (§5.3).
type TicketKind uint8

const (
	// TicketCommit: a CommitQC for a preceding slot (view-0 tenures). Under
	// parallel multi-slot agreement (§5.4) the ticket references slot s-k.
	TicketCommit TicketKind = iota + 1
	// TicketTC: a Timeout Certificate for (slot, view-1) (view>0 tenures).
	TicketTC
)

// Ticket proves a leader's tenure for (slot, view).
type Ticket struct {
	Kind TicketKind
	// Commit is set when Kind == TicketCommit.
	Commit *CommitQC
	// TC is set when Kind == TicketTC.
	TC *TC
}

// Proposal payload of the consensus layer: a (slot, view, cut) triple.
type ConsensusProposal struct {
	Slot Slot
	View View
	Cut  Cut
}

// Digest binds slot, view and cut.
func (p *ConsensusProposal) Digest() Digest {
	h := sha256.New()
	var hdr [8 + 8 + 8]byte
	copy(hdr[:8], "consv1\x00\x00")
	binary.LittleEndian.PutUint64(hdr[8:], uint64(p.Slot))
	binary.LittleEndian.PutUint64(hdr[16:], uint64(p.View))
	h.Write(hdr[:])
	cd := p.Cut.Digest()
	h.Write(cd[:])
	var d Digest
	h.Sum(d[:0])
	return d
}

// ValueDigest binds only the slot and cut — the view-independent identity
// of the proposed value. View changes repropose the same value under a new
// view; safety arguments track values, not (view, value) pairs.
func (p *ConsensusProposal) ValueDigest() Digest {
	h := sha256.New()
	var hdr [8 + 8]byte
	copy(hdr[:8], "consval\x00")
	binary.LittleEndian.PutUint64(hdr[8:], uint64(p.Slot))
	h.Write(hdr[:])
	cd := p.Cut.Digest()
	h.Write(cd[:])
	var d Digest
	h.Sum(d[:0])
	return d
}

func (p *ConsensusProposal) String() string {
	return fmt.Sprintf("P{s=%d v=%d}", p.Slot, p.View)
}

// Prepare opens a view: the leader broadcasts its proposal plus the ticket
// proving its tenure (§5.2.1 P1).
type Prepare struct {
	Leader   NodeID
	Proposal ConsensusProposal
	Ticket   Ticket
	Sig      []byte
}

// SigningBytes returns the leader-signed bytes.
func (m *Prepare) SigningBytes() []byte {
	d := m.Proposal.Digest()
	out := make([]byte, 0, 8+DigestSize)
	out = append(out, []byte("prep-sig")...)
	out = append(out, d[:]...)
	return out
}

// PrepVote is a replica's vote on a Prepare. Strong votes additionally
// assert local availability of all (optimistic) tip data (§5.5.2); with
// certified-only cuts every vote is strong.
type PrepVote struct {
	Slot   Slot
	View   View
	Digest Digest // ConsensusProposal.Digest()
	Voter  NodeID
	Strong bool
	Sig    []byte
}

// SigningBytes binds slot, view, proposal digest and strength.
func (m *PrepVote) SigningBytes() []byte {
	return consensusVoteBytes("prepvote", m.Slot, m.View, m.Digest, m.Strong)
}

func consensusVoteBytes(tag string, s Slot, v View, d Digest, strong bool) []byte {
	out := make([]byte, 0, len(tag)+17+DigestSize+1)
	out = append(out, tag...)
	var b [16]byte
	binary.LittleEndian.PutUint64(b[:], uint64(s))
	binary.LittleEndian.PutUint64(b[8:], uint64(v))
	out = append(out, b[:]...)
	out = append(out, d[:]...)
	if strong {
		out = append(out, 1)
	} else {
		out = append(out, 0)
	}
	return out
}

// PrepareQC aggregates 2f+1 PrepVotes: agreement within a view (§5.2.1 P1
// step 3). At least f+1 of the shares must be strong when optimistic tips
// are in use.
type PrepareQC struct {
	Slot   Slot
	View   View
	Digest Digest
	Shares []SigShare
	// StrongMask marks which shares were strong votes (parallel to Shares).
	StrongMask []bool
}

// Confirm forwards a PrepareQC to all replicas (slow path, §5.2.1 P2).
type Confirm struct {
	Leader NodeID
	QC     PrepareQC
	Sig    []byte
}

// SigningBytes returns the leader-signed bytes of the Confirm.
func (m *Confirm) SigningBytes() []byte {
	return consensusVoteBytes("confirm\x00", m.QC.Slot, m.QC.View, m.QC.Digest, false)
}

// ConfirmAck acknowledges a Confirm; 2f+1 form a CommitQC.
type ConfirmAck struct {
	Slot   Slot
	View   View
	Digest Digest
	Voter  NodeID
	Sig    []byte
}

// SigningBytes binds slot, view and proposal digest.
func (m *ConfirmAck) SigningBytes() []byte {
	return consensusVoteBytes("confack\x00", m.Slot, m.View, m.Digest, false)
}

// CommitQC proves commitment of a proposal: either 2f+1 ConfirmAcks (slow
// path) or n strong PrepVotes upgraded by the leader (fast path).
type CommitQC struct {
	Slot   Slot
	View   View
	Digest Digest
	Fast   bool
	Shares []SigShare
}

func (qc *CommitQC) String() string {
	kind := "slow"
	if qc.Fast {
		kind = "fast"
	}
	return fmt.Sprintf("CommitQC{s=%d v=%d %s}", qc.Slot, qc.View, kind)
}

// CommitNotice broadcasts a CommitQC together with the committed proposal
// so replicas that never saw the Prepare can still process the commit.
type CommitNotice struct {
	QC       CommitQC
	Proposal ConsensusProposal
}

// Timeout is a replica's complaint that (slot, view) failed to make timely
// progress (§5.3 step 1). It carries the highest PrepareQC and highest
// proposal the replica has locally observed for the slot, which the next
// leader uses to recover any possibly-committed value.
type Timeout struct {
	Slot  Slot
	View  View
	Voter NodeID
	// HighQC is the PrepareQC with the highest view the voter stored for
	// this slot (nil if none).
	HighQC *PrepareQC
	// HighProp is the proposal with the highest view the voter voted for
	// in this slot (nil if none).
	HighProp *ConsensusProposal
	Sig      []byte
}

// SigningBytes binds the slot and view being timed out. The piggybacked
// HighQC/HighProp are self-certifying (QC shares / leader signature) and
// are validated independently.
func (m *Timeout) SigningBytes() []byte {
	return consensusVoteBytes("timeout\x00", m.Slot, m.View, ZeroDigest, false)
}

// TC is a Timeout Certificate: 2f+1 Timeouts for (slot, view), licensing
// the leader of view+1 (§5.3 step 2).
type TC struct {
	Slot     Slot
	View     View
	Timeouts []Timeout
}

// WinningProposal applies the two-pronged recovery rule (§5.3): the next
// leader must repropose the greater of (i) the proposal certified by the
// highest HighQC in the TC, and (ii) the proposal appearing at least f+1
// times among HighProps (it may have fast-committed); ties favor the QC.
// It returns nil if the TC constrains nothing (leader proposes fresh).
func (tc *TC) WinningProposal(committee Committee) *ConsensusProposal {
	var bestQC *PrepareQC
	for i := range tc.Timeouts {
		if qc := tc.Timeouts[i].HighQC; qc != nil {
			if bestQC == nil || qc.View > bestQC.View {
				bestQC = qc
			}
		}
	}
	// Count HighProps by (view, value digest); find any reaching f+1.
	type key struct {
		v View
		d Digest
	}
	counts := make(map[key]int)
	props := make(map[key]*ConsensusProposal)
	var bestProp *ConsensusProposal
	for i := range tc.Timeouts {
		p := tc.Timeouts[i].HighProp
		if p == nil {
			continue
		}
		k := key{p.View, p.ValueDigest()}
		counts[k]++
		props[k] = p
		if counts[k] >= committee.PoAQuorum() { // f+1
			if bestProp == nil || p.View > bestProp.View {
				bestProp = props[k]
			}
		}
	}
	switch {
	case bestQC == nil && bestProp == nil:
		return nil
	case bestQC == nil:
		return bestProp
	case bestProp == nil || bestProp.View <= bestQC.View: // tie → QC
		// The QC certifies a digest; the matching proposal must be found
		// among the HighProps (some Timeout carried it) — by quorum
		// intersection at least one of the 2f+1 mutineers voted for it.
		for i := range tc.Timeouts {
			p := tc.Timeouts[i].HighProp
			if p != nil && p.Slot == bestQC.Slot && p.Digest() == bestQC.Digest {
				return p
			}
		}
		// Digest-only fallback: search any proposal whose value matches a
		// lower-view reproposal of the same value.
		for i := range tc.Timeouts {
			p := tc.Timeouts[i].HighProp
			if p != nil && consensusVoteDigestMatches(p, bestQC) {
				return p
			}
		}
		return nil
	default:
		return bestProp
	}
}

func consensusVoteDigestMatches(p *ConsensusProposal, qc *PrepareQC) bool {
	q := ConsensusProposal{Slot: p.Slot, View: qc.View, Cut: p.Cut}
	return q.Digest() == qc.Digest
}
