package types

// MsgType tags every wire message. Ranges: 1-31 Autobahn data layer,
// 32-63 Autobahn consensus, 64-79 synchronization, 80-95 HotStuff
// baseline, 96-111 Bullshark baseline, 112+ transport/control.
type MsgType uint8

const (
	MsgProposal MsgType = 1 + iota
	MsgVote
	MsgPoA

	MsgPrepare MsgType = 32 + iota - 3
	MsgPrepVote
	MsgConfirm
	MsgConfirmAck
	MsgCommitNotice
	MsgTimeout

	MsgSyncRequest   MsgType = 64
	MsgSyncReply     MsgType = 65
	MsgCommitRequest MsgType = 66
	MsgCommitReply   MsgType = 67

	// Snapshot-based state sync (the execution layer's cold-join path).
	MsgSnapshotRequest  MsgType = 68
	MsgSnapshotManifest MsgType = 69
	MsgChunkRequest     MsgType = 70
	MsgChunkReply       MsgType = 71
)

// Baseline message-type ranges (values defined in their packages).
const (
	MsgHotStuffBase  MsgType = 80
	MsgBullsharkBase MsgType = 96
)

// MsgInternal tags runtime-internal control messages (the sharded data
// plane's shard↔control handoffs, defined in internal/core). They are
// only ever self-addressed, never cross the wire, and the codec rejects
// them.
const MsgInternal MsgType = 112

// Message is the interface all wire messages implement. WireSize reports
// the number of bytes the message occupies on the wire; the simulator's
// bandwidth and processing model is driven by it, and the TCP codec's
// encodings match it closely (synthetic batches excepted, by design).
type Message interface {
	Type() MsgType
	WireSize() int
}

const sigShareWire = 2 + 2 + 64 // signer + length prefix + ed25519 sig

func sharesWire(shares []SigShare) int {
	n := 4
	for _, s := range shares {
		n += 2 + 2 + len(s.Sig)
	}
	return n
}

func poaWire(p *PoA) int {
	if p == nil {
		return 1
	}
	return 1 + 2 + 8 + DigestSize + sharesWire(p.Shares)
}

// --- data layer ---

func (p *Proposal) Type() MsgType { return MsgProposal }

// WireSize accounts for the header, the parent PoA and the batch payload.
func (p *Proposal) WireSize() int {
	return 1 + 2 + 8 + DigestSize + poaWire(p.ParentPoA) + p.Batch.WireSize() + 2 + len(p.Sig)
}

func (v *Vote) Type() MsgType { return MsgVote }
func (v *Vote) WireSize() int {
	return 1 + 2 + 8 + DigestSize + 2 + 2 + len(v.Sig)
}

func (p *PoA) Type() MsgType { return MsgPoA }
func (p *PoA) WireSize() int { return poaWire(p) }

// --- consensus ---

func cutWire(c Cut) int {
	n := 4
	for i := range c.Tips {
		n += 2 + 8 + DigestSize + poaWire(c.Tips[i].Cert)
	}
	return n
}

func ticketWire(t Ticket) int {
	switch t.Kind {
	case TicketCommit:
		if t.Commit == nil {
			return 2
		}
		return 2 + commitQCWire(t.Commit)
	case TicketTC:
		if t.TC == nil {
			return 2
		}
		return 2 + tcWire(t.TC)
	default:
		return 1
	}
}

func prepareQCWire(qc *PrepareQC) int {
	if qc == nil {
		return 1
	}
	return 1 + 8 + 8 + DigestSize + sharesWire(qc.Shares) + len(qc.StrongMask)
}

func commitQCWire(qc *CommitQC) int {
	if qc == nil {
		return 1
	}
	return 1 + 8 + 8 + DigestSize + 1 + sharesWire(qc.Shares)
}

func proposalHeaderWire(p *ConsensusProposal) int {
	return 8 + 8 + cutWire(p.Cut)
}

func tcWire(tc *TC) int {
	n := 8 + 8 + 4
	for i := range tc.Timeouts {
		n += timeoutWire(&tc.Timeouts[i])
	}
	return n
}

func timeoutWire(t *Timeout) int {
	n := 1 + 8 + 8 + 2 + 2 + len(t.Sig)
	n += prepareQCWire(t.HighQC)
	if t.HighProp != nil {
		n += proposalHeaderWire(t.HighProp)
	} else {
		n++
	}
	return n
}

func (m *Prepare) Type() MsgType { return MsgPrepare }
func (m *Prepare) WireSize() int {
	return 1 + 2 + proposalHeaderWire(&m.Proposal) + ticketWire(m.Ticket) + 2 + len(m.Sig)
}

func (m *PrepVote) Type() MsgType { return MsgPrepVote }
func (m *PrepVote) WireSize() int {
	return 1 + 8 + 8 + DigestSize + 2 + 1 + 2 + len(m.Sig)
}

func (m *Confirm) Type() MsgType { return MsgConfirm }
func (m *Confirm) WireSize() int {
	return 1 + 2 + prepareQCWire(&m.QC) + 2 + len(m.Sig)
}

func (m *ConfirmAck) Type() MsgType { return MsgConfirmAck }
func (m *ConfirmAck) WireSize() int {
	return 1 + 8 + 8 + DigestSize + 2 + 2 + len(m.Sig)
}

func (m *CommitNotice) Type() MsgType { return MsgCommitNotice }
func (m *CommitNotice) WireSize() int {
	return 1 + commitQCWire(&m.QC) + proposalHeaderWire(&m.Proposal)
}

func (m *Timeout) Type() MsgType { return MsgTimeout }
func (m *Timeout) WireSize() int { return timeoutWire(m) }

// --- synchronization ---

// SyncRequest asks a peer for the proposals of one lane in the inclusive
// position range [From, To], whose chain must terminate in TipDigest at
// position To (§5.2.2). Point requests (From == To) are used for
// optimistic-tip fetches.
type SyncRequest struct {
	Lane      NodeID
	From      Pos
	To        Pos
	TipDigest Digest
	Requester NodeID
}

func (m *SyncRequest) Type() MsgType { return MsgSyncRequest }
func (m *SyncRequest) WireSize() int { return 1 + 2 + 8 + 8 + DigestSize + 2 }

// SyncReply carries a gap-free, hash-chained suffix of lane proposals in
// ascending position order. Complete reports whether the responder could
// serve the whole requested range.
type SyncReply struct {
	Lane      NodeID
	Proposals []*Proposal
	Complete  bool
}

func (m *SyncReply) Type() MsgType { return MsgSyncReply }
func (m *SyncReply) WireSize() int {
	n := 1 + 2 + 4 + 1
	for _, p := range m.Proposals {
		n += p.WireSize()
	}
	return n
}

// CommitRequest asks a peer for the CommitNotices of slots [From, To]
// that the requester missed (e.g. across a partition); the responder
// answers with whatever it still retains.
type CommitRequest struct {
	From, To  Slot
	Requester NodeID
}

func (m *CommitRequest) Type() MsgType { return MsgCommitRequest }
func (m *CommitRequest) WireSize() int { return 1 + 8 + 8 + 2 }

// CommitReply returns retained commit certificates and their proposals.
type CommitReply struct {
	Notices []CommitNotice
}

func (m *CommitReply) Type() MsgType { return MsgCommitReply }
func (m *CommitReply) WireSize() int {
	n := 1 + 4
	for i := range m.Notices {
		n += m.Notices[i].WireSize()
	}
	return n
}

// --- snapshot-based state sync ---

// SnapshotRequest asks a peer for its latest execution snapshot's
// manifest. Sent by a replica whose execution frontier has fallen far
// enough behind the decided frontier that ordered replay may no longer
// be served (peers truncate below their snapshot frontiers).
type SnapshotRequest struct {
	Requester NodeID
}

func (m *SnapshotRequest) Type() MsgType { return MsgSnapshotRequest }
func (m *SnapshotRequest) WireSize() int { return 1 + 2 }

// SnapshotManifest returns a snapshot manifest in its canonical
// encoding (internal/exec owns the format; the wire layer carries it
// opaquely — chunk hashes inside it pin every subsequent ChunkReply).
type SnapshotManifest struct {
	Manifest []byte
}

func (m *SnapshotManifest) Type() MsgType { return MsgSnapshotManifest }
func (m *SnapshotManifest) WireSize() int { return 1 + 4 + len(m.Manifest) }

// ChunkRequest asks for one chunk of the snapshot state identified by
// StateHash (the manifest's state hash, so a rotated responder serving
// a different snapshot answers nothing rather than mixing states).
type ChunkRequest struct {
	StateHash Digest
	Index     uint32
	Requester NodeID
}

func (m *ChunkRequest) Type() MsgType { return MsgChunkRequest }
func (m *ChunkRequest) WireSize() int { return 1 + DigestSize + 4 + 2 }

// ChunkReply carries one verified-against-manifest snapshot chunk.
type ChunkReply struct {
	StateHash Digest
	Index     uint32
	Data      []byte
}

func (m *ChunkReply) Type() MsgType { return MsgChunkReply }
func (m *ChunkReply) WireSize() int { return 1 + DigestSize + 4 + 4 + len(m.Data) }
