package types

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sync/atomic"
	"time"
)

// Transaction is an opaque client request. The paper's evaluation uses
// 512-byte no-op transactions; the protocol never inspects payloads beyond
// hashing them.
type Transaction []byte

// Batch is a set of transactions assembled by one replica's mempool and
// disseminated through that replica's data lane (or through a baseline
// protocol's dissemination path).
//
// A batch is either *real* (Txs holds the payloads; used by the TCP
// transport, the examples, and most unit tests) or *synthetic* (Txs is nil
// and Count/Bytes describe the aggregate; used by the discrete-event
// simulator so that multi-hundred-MB workloads need not be materialized).
// Synthetic batches carry the same metadata the metrics layer needs: the
// mean arrival time of the aggregated transactions.
type Batch struct {
	// Origin is the replica whose mempool created the batch.
	Origin NodeID
	// Seq is the per-origin batch sequence number (used only for digest
	// uniqueness and debugging; lane positions are assigned separately).
	Seq uint64
	// Txs holds real transaction payloads; nil for synthetic batches.
	Txs []Transaction
	// Count is the number of transactions. For real batches it must equal
	// len(Txs); for synthetic batches it is authoritative.
	Count uint32
	// Bytes is the total payload size in bytes. For real batches it must
	// equal the sum of len(tx); for synthetic batches it is authoritative.
	Bytes uint64
	// MeanArrival is the mean arrival time (since epoch) of the batch's
	// transactions at the origin replica; commit latency is measured
	// against it, matching the paper's arrival→execution-ready definition.
	MeanArrival time.Duration
	// CreatedAt is when the mempool sealed the batch.
	CreatedAt time.Duration

	// dig memoizes Digest(): hashing a multi-megabyte payload is the
	// dominant per-message CPU cost, and the digest is demanded several
	// times along a batch's life (signature bytes, store indexing, vote
	// matching). The memo makes the first caller pay — by design the
	// transport's parallel pre-verification stage, so the single-threaded
	// event handlers never hash payloads (see runtime.PreVerifier).
	// Batches are immutable once first hashed; the atomic supports
	// concurrent readers across pipeline stages.
	dig atomic.Pointer[Digest]
}

// NewBatch builds a real batch from transaction payloads.
func NewBatch(origin NodeID, seq uint64, txs []Transaction, now time.Duration) *Batch {
	var total uint64
	for _, tx := range txs {
		total += uint64(len(tx))
	}
	return &Batch{
		Origin:      origin,
		Seq:         seq,
		Txs:         txs,
		Count:       uint32(len(txs)),
		Bytes:       total,
		MeanArrival: now,
		CreatedAt:   now,
	}
}

// NewSyntheticBatch builds a payload-free batch describing count
// transactions totalling size bytes whose mean arrival time was meanArrival.
func NewSyntheticBatch(origin NodeID, seq uint64, count uint32, size uint64, meanArrival, now time.Duration) *Batch {
	return &Batch{
		Origin:      origin,
		Seq:         seq,
		Count:       count,
		Bytes:       size,
		MeanArrival: meanArrival,
		CreatedAt:   now,
	}
}

// Clone returns a shallow copy (payload slices shared) with a fresh
// digest memo. Batches must not be copied by value (the memo carries a
// no-copy atomic); callers constructing variants of an existing batch —
// tamper tests, speculative edits — clone instead, which also guarantees
// the variant re-hashes rather than inheriting the original's digest.
func (b *Batch) Clone() *Batch {
	return &Batch{
		Origin:      b.Origin,
		Seq:         b.Seq,
		Txs:         b.Txs,
		Count:       b.Count,
		Bytes:       b.Bytes,
		MeanArrival: b.MeanArrival,
		CreatedAt:   b.CreatedAt,
	}
}

// Synthetic reports whether the batch carries no real payloads.
func (b *Batch) Synthetic() bool { return b.Txs == nil && b.Count > 0 }

// Digest returns the batch's content hash, memoized after the first
// call. Real batches hash their payloads; synthetic batches hash their
// metadata header, which uniquely identifies them ((origin, seq) is
// unique per honest mempool). A batch must not be mutated after its
// first Digest call.
func (b *Batch) Digest() Digest {
	if d := b.dig.Load(); d != nil {
		return *d
	}
	d := b.computeDigest()
	b.dig.Store(&d)
	return d
}

func (b *Batch) computeDigest() Digest {
	h := sha256.New()
	var hdr [8 + 2 + 8 + 4 + 8 + 8]byte
	copy(hdr[:8], "batchv1\x00")
	binary.LittleEndian.PutUint16(hdr[8:], uint16(b.Origin))
	binary.LittleEndian.PutUint64(hdr[10:], b.Seq)
	binary.LittleEndian.PutUint32(hdr[18:], b.Count)
	binary.LittleEndian.PutUint64(hdr[22:], b.Bytes)
	binary.LittleEndian.PutUint64(hdr[30:], uint64(b.MeanArrival))
	h.Write(hdr[:])
	for _, tx := range b.Txs {
		var ln [4]byte
		binary.LittleEndian.PutUint32(ln[:], uint32(len(tx)))
		h.Write(ln[:])
		h.Write(tx)
	}
	var d Digest
	h.Sum(d[:0])
	return d
}

// WireSize returns the number of bytes the batch occupies on the wire.
// For synthetic batches this is the described payload size plus the header,
// so the simulator's bandwidth accounting matches a real deployment even
// though no payload bytes exist in memory.
func (b *Batch) WireSize() int {
	const header = 2 + 8 + 4 + 8 + 8 + 8 + 1 // origin, seq, count, bytes, arrival, created, kind
	if b == nil {
		return 1
	}
	return header + int(b.Bytes) + 4*int(b.Count) // per-tx length prefixes
}

// MergeBatches combines several batches from one origin into a single
// larger batch (the paper's mini-batching: proposals "include/reference
// more than one batch if available", letting replicas organically reach
// larger effective batch sizes, §6). Arrival statistics merge by
// count-weighted mean; the merged batch reuses the first part's sequence
// number (unique, since the parts are consumed). A single part is
// returned unchanged.
func MergeBatches(parts []*Batch) *Batch {
	if len(parts) == 0 {
		return nil
	}
	if len(parts) == 1 {
		return parts[0]
	}
	out := &Batch{Origin: parts[0].Origin, Seq: parts[0].Seq}
	var arrivalSum float64
	real := parts[0].Txs != nil
	for _, p := range parts {
		out.Count += p.Count
		out.Bytes += p.Bytes
		arrivalSum += float64(p.Count) * p.MeanArrival.Seconds()
		if p.CreatedAt > out.CreatedAt {
			out.CreatedAt = p.CreatedAt
		}
		if real {
			out.Txs = append(out.Txs, p.Txs...)
		}
	}
	if out.Count > 0 {
		out.MeanArrival = time.Duration(arrivalSum / float64(out.Count) * float64(time.Second))
	}
	return out
}

// Validate performs structural validation: real batches must have
// consistent Count/Bytes.
func (b *Batch) Validate() error {
	if b.Txs != nil {
		if int(b.Count) != len(b.Txs) {
			return fmt.Errorf("batch: count %d != len(txs) %d", b.Count, len(b.Txs))
		}
		var total uint64
		for _, tx := range b.Txs {
			total += uint64(len(tx))
		}
		if total != b.Bytes {
			return fmt.Errorf("batch: bytes %d != sum(txs) %d", b.Bytes, total)
		}
	}
	return nil
}
