// Package types defines the core identifiers, data structures, and wire
// messages shared by every layer of the Autobahn reproduction: the data
// dissemination layer (lanes and cars), the consensus layer (cuts, slots,
// views, quorum certificates), the synchronization layer, and the baseline
// protocols. All structures carry a canonical binary encoding (encode.go)
// used both for hashing/signing and for TCP transport.
package types

import (
	"encoding/hex"
	"fmt"
	"time"
)

// NodeID identifies a replica within a committee. Replicas are numbered
// 0..n-1; the same space is used for lane ownership (replica i owns lane i).
type NodeID uint16

// String renders a NodeID as "r<i>".
func (id NodeID) String() string { return fmt.Sprintf("r%d", uint16(id)) }

// Slot is a consensus sequence number. Slots are totally ordered and each
// commits one cut of the data lanes. Slot numbering starts at 1.
type Slot uint64

// View is a view number within a slot. Each (slot, view) pair maps to one
// designated leader; view 0 is the slot's initial tenure.
type View uint64

// Pos is a position within a data lane (the sequence number of a car).
// Positions start at 1; position 0 denotes the empty lane genesis.
type Pos uint64

// DigestSize is the size of all content digests (SHA-256).
const DigestSize = 32

// Digest is a SHA-256 content hash. The zero digest denotes "no parent"
// (lane genesis) or an absent value.
type Digest [DigestSize]byte

// ZeroDigest is the all-zero digest, used as the genesis parent reference.
var ZeroDigest Digest

// IsZero reports whether d is the zero digest.
func (d Digest) IsZero() bool { return d == ZeroDigest }

// String renders the first 8 bytes of the digest in hex.
func (d Digest) String() string { return hex.EncodeToString(d[:8]) }

// Committee captures the static membership of a deployment: n replicas
// tolerating f = floor((n-1)/3) Byzantine faults. For the canonical
// n = 3f+1 sizes the quorums reduce to the familiar 2f+1; for other sizes
// (the paper's Fig. 6 uses n = 12 and n = 20) the agreement quorum is
// n-f, which still intersects any two quorums in at least f+1 replicas.
type Committee struct {
	n      int
	f      int
	stride int // slot-leader stride, coprime with n (see Leader)
}

// NewCommittee returns the committee for n >= 1 replicas.
func NewCommittee(n int) Committee {
	if n < 1 {
		panic(fmt.Sprintf("types: committee size %d invalid", n))
	}
	f := (n - 1) / 3
	// Smallest stride >= 2f+1 that is coprime with n: consecutive slots'
	// initial leaders are then at least the faulty window apart AND every
	// replica leads infinitely many slots.
	stride := 2*f + 1
	for gcd(stride, n) != 1 {
		stride++
	}
	return Committee{n: n, f: f, stride: stride}
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// Size returns n, the number of replicas.
func (c Committee) Size() int { return c.n }

// F returns f, the maximum number of faulty replicas tolerated.
func (c Committee) F() int { return c.f }

// Quorum returns the agreement quorum size (PrepareQC, CommitQC, Timeout
// Certificate): n-f, which equals 2f+1 when n = 3f+1.
func (c Committee) Quorum() int { return c.n - c.f }

// FastQuorum returns n = 3f+1, the vote count required by the fast path.
func (c Committee) FastQuorum() int { return c.n }

// PoAQuorum returns f+1, the vote count of a Proof of Availability: enough
// to guarantee at least one correct replica holds the data.
func (c Committee) PoAQuorum() int { return c.f + 1 }

// Leader returns the designated leader of (slot, view). Consecutive slots
// are offset by 2f+1 positions — coprime with n = 3f+1, so every replica
// leads infinitely many slots — which clears the entire faulty window
// between the initial leaders of consecutive slots (§5.4 "Adjusting view
// synchronization": without an offset >= f, k successive slots could each
// rotate through the same faulty leaders).
func (c Committee) Leader(s Slot, v View) NodeID {
	return NodeID((uint64(s)*uint64(c.stride) + uint64(v)) % uint64(c.n))
}

// EachNode calls fn for every replica ID in the committee.
func (c Committee) EachNode(fn func(NodeID)) {
	for i := 0; i < c.n; i++ {
		fn(NodeID(i))
	}
}

// Nodes returns the list of all replica IDs.
func (c Committee) Nodes() []NodeID {
	out := make([]NodeID, c.n)
	for i := range out {
		out[i] = NodeID(i)
	}
	return out
}

// Valid reports whether id addresses a member of the committee.
func (c Committee) Valid(id NodeID) bool { return int(id) < c.n }

// Duration re-exported for convenience in message fields (timestamps are
// durations since the start of the deployment/simulation epoch).
type Duration = time.Duration
