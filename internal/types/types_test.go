package types

import (
	"testing"
	"testing/quick"
	"time"
)

func TestCommitteeQuorums(t *testing.T) {
	for _, tc := range []struct {
		n, f, quorum, fast, poa int
	}{
		{1, 0, 1, 1, 1},
		{4, 1, 3, 4, 2},
		{7, 2, 5, 7, 3},
		{10, 3, 7, 10, 4},
		{12, 3, 9, 12, 4},  // the paper's Fig. 6 sizes are not 3f+1:
		{20, 6, 14, 20, 7}, // quorum is n-f with f = floor((n-1)/3)
		{31, 10, 21, 31, 11},
	} {
		c := NewCommittee(tc.n)
		if c.F() != tc.f || c.Quorum() != tc.quorum || c.FastQuorum() != tc.fast || c.PoAQuorum() != tc.poa {
			t.Errorf("n=%d: got f=%d q=%d fast=%d poa=%d", tc.n, c.F(), c.Quorum(), c.FastQuorum(), c.PoAQuorum())
		}
	}
}

func TestCommitteeRejectsBadSizes(t *testing.T) {
	for _, n := range []int{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewCommittee(%d) did not panic", n)
				}
			}()
			NewCommittee(n)
		}()
	}
}

// TestLeaderScheduleCoversAllReplicas verifies the 2f+1 slot stride is
// coprime with n, so every replica leads view 0 of infinitely many slots
// (required for reliable inclusion, §A.4).
func TestLeaderScheduleCoversAllReplicas(t *testing.T) {
	for _, n := range []int{4, 7, 10, 12, 15, 20, 31} {
		c := NewCommittee(n)
		seen := make(map[NodeID]bool)
		for s := Slot(1); s <= Slot(n); s++ {
			seen[c.Leader(s, 0)] = true
		}
		if len(seen) != n {
			t.Errorf("n=%d: view-0 leaders cover only %d replicas", n, len(seen))
		}
	}
}

func TestLeaderViewRotation(t *testing.T) {
	c := NewCommittee(4)
	s := Slot(9)
	base := c.Leader(s, 0)
	for v := View(1); v < 8; v++ {
		want := NodeID((uint64(base) + uint64(v)) % 4)
		if got := c.Leader(s, v); got != want {
			t.Fatalf("leader(%d,%d) = %s, want %s", s, v, got, want)
		}
	}
}

func TestBatchDigestDistinguishesContent(t *testing.T) {
	b1 := NewBatch(1, 1, []Transaction{[]byte("aa"), []byte("bb")}, 0)
	b2 := NewBatch(1, 1, []Transaction{[]byte("aabb")}, 0)
	if b1.Digest() == b2.Digest() {
		t.Fatal("length-prefixed tx hashing must distinguish concatenation splits")
	}
	s1 := NewSyntheticBatch(1, 1, 10, 100, 0, 0)
	s2 := NewSyntheticBatch(1, 2, 10, 100, 0, 0)
	if s1.Digest() == s2.Digest() {
		t.Fatal("synthetic batches with distinct seqs must have distinct digests")
	}
}

func TestBatchValidate(t *testing.T) {
	good := NewBatch(0, 1, []Transaction{[]byte("xyz")}, 0)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good.Clone()
	bad.Count = 2
	if err := bad.Validate(); err == nil {
		t.Fatal("count mismatch must fail validation")
	}
	bad2 := good.Clone()
	bad2.Bytes = 99
	if err := bad2.Validate(); err == nil {
		t.Fatal("byte-sum mismatch must fail validation")
	}
}

// TestMergeBatchesConservesTotals is a property test: merging preserves
// counts, bytes, and the count-weighted arrival mean.
func TestMergeBatchesConservesTotals(t *testing.T) {
	f := func(counts []uint16, arrivalsMs []uint16) bool {
		if len(counts) == 0 {
			return true
		}
		if len(counts) > 16 {
			counts = counts[:16]
		}
		var parts []*Batch
		var wantCount, wantBytes uint64
		var wantArr float64
		for i, c := range counts {
			count := uint64(c%999) + 1
			arr := time.Duration(0)
			if i < len(arrivalsMs) {
				arr = time.Duration(arrivalsMs[i]) * time.Millisecond
			}
			parts = append(parts, NewSyntheticBatch(2, uint64(i+1), uint32(count), count*512, arr, arr))
			wantCount += count
			wantBytes += count * 512
			wantArr += float64(count) * arr.Seconds()
		}
		m := MergeBatches(parts)
		if uint64(m.Count) != wantCount || m.Bytes != wantBytes {
			return false
		}
		wantMean := wantArr / float64(wantCount)
		got := m.MeanArrival.Seconds()
		return got > wantMean-1e-6 && got < wantMean+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMergeBatchesSinglePartIdentity(t *testing.T) {
	b := NewSyntheticBatch(0, 5, 10, 5120, time.Second, time.Second)
	if MergeBatches([]*Batch{b}) != b {
		t.Fatal("single-part merge must return the part unchanged")
	}
	if MergeBatches(nil) != nil {
		t.Fatal("empty merge must return nil")
	}
}

func TestCutValidate(t *testing.T) {
	c4 := NewCommittee(4)
	cut := NewEmptyCut(4)
	if err := cut.Validate(c4); err != nil {
		t.Fatal(err)
	}
	short := Cut{Tips: cut.Tips[:3]}
	if err := short.Validate(c4); err == nil {
		t.Fatal("short cut must fail")
	}
	wrongLane := NewEmptyCut(4)
	wrongLane.Tips[2].Lane = 3
	if err := wrongLane.Validate(c4); err == nil {
		t.Fatal("misordered lanes must fail")
	}
	genesisDigest := NewEmptyCut(4)
	genesisDigest.Tips[0].Digest = Digest{1}
	if err := genesisDigest.Validate(c4); err == nil {
		t.Fatal("genesis tip with digest must fail")
	}
	mismatchedCert := NewEmptyCut(4)
	mismatchedCert.Tips[1].Position = 5
	mismatchedCert.Tips[1].Digest = Digest{9}
	mismatchedCert.Tips[1].Cert = &PoA{Lane: 1, Position: 4, Digest: Digest{9}}
	if err := mismatchedCert.Validate(c4); err == nil {
		t.Fatal("tip/PoA position mismatch must fail")
	}
}

func TestNewTipsVersus(t *testing.T) {
	cut := NewEmptyCut(4)
	cut.Tips[0].Position = 5
	cut.Tips[1].Position = 3
	cut.Tips[3].Position = 7
	base := []Pos{4, 3, 0, 2}
	if got := cut.NewTipsVersus(base); got != 2 { // lanes 0 and 3 advance
		t.Fatalf("NewTipsVersus = %d, want 2", got)
	}
}

func TestConsensusProposalDigests(t *testing.T) {
	cut := NewEmptyCut(4)
	p1 := ConsensusProposal{Slot: 3, View: 0, Cut: cut}
	p2 := ConsensusProposal{Slot: 3, View: 1, Cut: cut}
	if p1.Digest() == p2.Digest() {
		t.Fatal("digest must bind the view")
	}
	if p1.ValueDigest() != p2.ValueDigest() {
		t.Fatal("value digest must be view-independent")
	}
	p3 := ConsensusProposal{Slot: 4, View: 0, Cut: cut}
	if p1.ValueDigest() == p3.ValueDigest() {
		t.Fatal("value digest must bind the slot")
	}
}

func TestWireSizeReflectsSyntheticPayload(t *testing.T) {
	small := NewSyntheticBatch(0, 1, 10, 100, 0, 0)
	big := NewSyntheticBatch(0, 2, 1000, 512_000, 0, 0)
	ps := &Proposal{Lane: 0, Position: 1, Batch: small}
	pb := &Proposal{Lane: 0, Position: 2, Batch: big}
	if pb.WireSize()-ps.WireSize() < 500_000 {
		t.Fatalf("wire size must account for synthetic payload bytes: %d vs %d", ps.WireSize(), pb.WireSize())
	}
}

func TestMessageTypeTags(t *testing.T) {
	cases := []struct {
		m    Message
		want MsgType
	}{
		{&Proposal{Batch: NewSyntheticBatch(0, 1, 1, 1, 0, 0)}, MsgProposal},
		{&Vote{}, MsgVote},
		{&PoA{}, MsgPoA},
		{&Prepare{}, MsgPrepare},
		{&PrepVote{}, MsgPrepVote},
		{&Confirm{}, MsgConfirm},
		{&ConfirmAck{}, MsgConfirmAck},
		{&CommitNotice{}, MsgCommitNotice},
		{&Timeout{}, MsgTimeout},
		{&SyncRequest{}, MsgSyncRequest},
		{&SyncReply{}, MsgSyncReply},
		{&CommitRequest{}, MsgCommitRequest},
		{&CommitReply{}, MsgCommitReply},
	}
	seen := make(map[MsgType]bool)
	for _, c := range cases {
		if c.m.Type() != c.want {
			t.Errorf("%T.Type() = %d, want %d", c.m, c.m.Type(), c.want)
		}
		if seen[c.want] {
			t.Errorf("duplicate message type %d", c.want)
		}
		seen[c.want] = true
		if c.m.WireSize() <= 0 {
			t.Errorf("%T.WireSize() must be positive", c.m)
		}
	}
}
