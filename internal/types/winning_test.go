package types

import "testing"

// Helpers building TC scenarios for the §5.3 winning-proposal rule.

func prop(slot Slot, view View, mark byte) *ConsensusProposal {
	cut := NewEmptyCut(4)
	cut.Tips[0].Position = Pos(mark) // distinguish values
	if mark > 0 {
		cut.Tips[0].Digest = Digest{mark}
	}
	return &ConsensusProposal{Slot: slot, View: view, Cut: cut}
}

func qcFor(p *ConsensusProposal) *PrepareQC {
	return &PrepareQC{Slot: p.Slot, View: p.View, Digest: p.Digest()}
}

func tcWith(timeouts ...Timeout) *TC {
	return &TC{Slot: 1, View: 0, Timeouts: timeouts}
}

func TestWinningProposalEmpty(t *testing.T) {
	c := NewCommittee(4)
	tc := tcWith(
		Timeout{Slot: 1, View: 0, Voter: 0},
		Timeout{Slot: 1, View: 0, Voter: 1},
		Timeout{Slot: 1, View: 0, Voter: 2},
	)
	if w := tc.WinningProposal(c); w != nil {
		t.Fatalf("no QCs or props: winner must be nil, got %v", w)
	}
}

// A proposal seen by f+1 mutineers may have fast-committed: it must win.
func TestWinningProposalFastPathSurvival(t *testing.T) {
	c := NewCommittee(4)
	p := prop(1, 0, 7)
	tc := tcWith(
		Timeout{Slot: 1, View: 0, Voter: 0, HighProp: p},
		Timeout{Slot: 1, View: 0, Voter: 1, HighProp: p},
		Timeout{Slot: 1, View: 0, Voter: 2},
	)
	w := tc.WinningProposal(c)
	if w == nil || w.Cut.Digest() != p.Cut.Digest() {
		t.Fatalf("f+1 HighProps must win: got %v", w)
	}
}

// A proposal appearing only once (< f+1) cannot have fast-committed and
// must not win on its own.
func TestWinningProposalSingleHighPropLoses(t *testing.T) {
	c := NewCommittee(4)
	tc := tcWith(
		Timeout{Slot: 1, View: 0, Voter: 0, HighProp: prop(1, 0, 7)},
		Timeout{Slot: 1, View: 0, Voter: 1},
		Timeout{Slot: 1, View: 0, Voter: 2},
	)
	if w := tc.WinningProposal(c); w != nil {
		t.Fatalf("single HighProp must not win, got %v", w)
	}
}

// A PrepareQC in the TC always constrains the reproposal (slow-path
// survival): the QC's proposal must be recoverable from some HighProp.
func TestWinningProposalQCSurvival(t *testing.T) {
	c := NewCommittee(4)
	p := prop(1, 0, 9)
	tc := tcWith(
		Timeout{Slot: 1, View: 0, Voter: 0, HighQC: qcFor(p), HighProp: p},
		Timeout{Slot: 1, View: 0, Voter: 1},
		Timeout{Slot: 1, View: 0, Voter: 2},
	)
	w := tc.WinningProposal(c)
	if w == nil || w.Cut.Digest() != p.Cut.Digest() {
		t.Fatalf("QC'd proposal must win: got %v", w)
	}
}

// Ties between a QC and an f+1 HighProp set at the same view go to the QC
// (§5.3: "in a tie, precedence is given to the highQC").
func TestWinningProposalTieFavorsQC(t *testing.T) {
	c := NewCommittee(4)
	pq := prop(1, 0, 9) // the QC'd value
	ph := prop(1, 0, 5) // a different value seen f+1 times, same view
	tc := tcWith(
		Timeout{Slot: 1, View: 0, Voter: 0, HighQC: qcFor(pq), HighProp: pq},
		Timeout{Slot: 1, View: 0, Voter: 1, HighProp: ph},
		Timeout{Slot: 1, View: 0, Voter: 2, HighProp: ph},
	)
	w := tc.WinningProposal(c)
	if w == nil || w.Cut.Digest() != pq.Cut.Digest() {
		t.Fatalf("tie must favor the QC'd proposal: got %v", w)
	}
}

// A higher-view f+1 HighProp set beats a lower-view QC: the newer value
// may have fast-committed after the QC's view.
func TestWinningProposalHigherViewPropBeatsOlderQC(t *testing.T) {
	c := NewCommittee(4)
	old := prop(1, 0, 9)
	newer := prop(1, 2, 5)
	tc := &TC{Slot: 1, View: 2, Timeouts: []Timeout{
		{Slot: 1, View: 2, Voter: 0, HighQC: qcFor(old), HighProp: old},
		{Slot: 1, View: 2, Voter: 1, HighProp: newer},
		{Slot: 1, View: 2, Voter: 2, HighProp: newer},
	}}
	w := tc.WinningProposal(c)
	if w == nil || w.Cut.Digest() != newer.Cut.Digest() {
		t.Fatalf("higher-view f+1 props must beat an older QC: got %v", w)
	}
}

// A higher-view QC beats a lower-view f+1 HighProp set.
func TestWinningProposalHigherViewQCWins(t *testing.T) {
	c := NewCommittee(4)
	older := prop(1, 0, 5)
	qcd := prop(1, 1, 9)
	tc := &TC{Slot: 1, View: 1, Timeouts: []Timeout{
		{Slot: 1, View: 1, Voter: 0, HighQC: qcFor(qcd), HighProp: qcd},
		{Slot: 1, View: 1, Voter: 1, HighProp: older},
		{Slot: 1, View: 1, Voter: 2, HighProp: older},
	}}
	w := tc.WinningProposal(c)
	if w == nil || w.Cut.Digest() != qcd.Cut.Digest() {
		t.Fatalf("higher-view QC must win: got %v", w)
	}
}
