package types

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sync/atomic"
)

// SigShare is one replica's signature over a message's signing bytes.
// Quorum certificates aggregate SigShares; with threshold signatures these
// would collapse into a single share (see crypto.Aggregator).
type SigShare struct {
	Signer NodeID
	Sig    []byte
}

// Proposal is a data proposal — the payload of a "car" (Certification of
// Available Request) in a replica's lane (§5.1). It carries a batch of
// transactions, the position within the lane, a hash-link to the previous
// proposal, and the PoA certifying the parent (proving, transitively, the
// availability of the whole history).
type Proposal struct {
	// Lane is the proposing replica (lanes are owned 1:1 by replicas).
	Lane NodeID
	// Position within the lane; positions start at 1 and must be gap-free.
	Position Pos
	// Parent is the digest of the proposal at Position-1 (ZeroDigest at
	// position 1).
	Parent Digest
	// ParentPoA certifies the parent proposal (nil at position 1). Voting
	// replicas store it as the lane's latest certified tip.
	ParentPoA *PoA
	// Batch is the transaction payload.
	Batch *Batch
	// Sig is the proposer's signature over SigningBytes().
	Sig []byte

	// dig memoizes Digest() (see Batch.dig): the proposal digest embeds
	// the batch digest, so caching both keeps payload hashing entirely on
	// the first caller — the parallel pre-verification stage.
	dig atomic.Pointer[Digest]
}

// Digest returns the proposal's content hash (memoized after the first
// call), binding lane, position, parent link and batch contents. PoAs
// and signatures are excluded: a proposal's identity is its chain
// position and payload. A proposal must not be mutated after its first
// Digest call.
func (p *Proposal) Digest() Digest {
	if d := p.dig.Load(); d != nil {
		return *d
	}
	d := p.computeDigest()
	p.dig.Store(&d)
	return d
}

func (p *Proposal) computeDigest() Digest {
	h := sha256.New()
	var hdr [8 + 2 + 8]byte
	copy(hdr[:8], "carv1\x00\x00\x00")
	binary.LittleEndian.PutUint16(hdr[8:], uint16(p.Lane))
	binary.LittleEndian.PutUint64(hdr[10:], uint64(p.Position))
	h.Write(hdr[:])
	h.Write(p.Parent[:])
	bd := p.Batch.Digest()
	h.Write(bd[:])
	var d Digest
	h.Sum(d[:0])
	return d
}

// Clone returns a shallow copy (batch, PoA and signature shared) with a
// fresh digest memo — see Batch.Clone for why proposals must not be
// copied by value.
func (p *Proposal) Clone() *Proposal {
	return &Proposal{
		Lane:      p.Lane,
		Position:  p.Position,
		Parent:    p.Parent,
		ParentPoA: p.ParentPoA,
		Batch:     p.Batch,
		Sig:       p.Sig,
	}
}

// SigningBytes returns the bytes the proposer signs.
func (p *Proposal) SigningBytes() []byte {
	d := p.Digest()
	out := make([]byte, 0, 8+DigestSize)
	out = append(out, []byte("prop-sig")...)
	out = append(out, d[:]...)
	return out
}

func (p *Proposal) String() string {
	return fmt.Sprintf("Prop{lane=%s pos=%d txs=%d}", p.Lane, p.Position, p.Batch.Count)
}

// Vote acknowledges delivery of a proposal (§5.1 step 2). f+1 matching
// votes form a PoA. Votes are addressed to the proposer.
type Vote struct {
	Lane     NodeID
	Position Pos
	Digest   Digest
	Voter    NodeID
	Sig      []byte
}

// SigningBytes returns the bytes the voter signs: the vote binds the lane,
// position and proposal digest (not the voter, which is authenticated by
// the signature itself).
func (v *Vote) SigningBytes() []byte { return voteSigningBytes(v.Lane, v.Position, v.Digest) }

func voteSigningBytes(lane NodeID, pos Pos, d Digest) []byte {
	out := make([]byte, 0, 8+2+8+DigestSize)
	out = append(out, []byte("carvote\x00")...)
	var b [10]byte
	binary.LittleEndian.PutUint16(b[:], uint16(lane))
	binary.LittleEndian.PutUint64(b[2:], uint64(pos))
	out = append(out, b[:]...)
	out = append(out, d[:]...)
	return out
}

// PoA is a Proof of Availability: f+1 matching votes for one proposal,
// guaranteeing at least one correct replica holds the data and — because
// correct replicas vote in FIFO lane order — its entire history (§5.1).
type PoA struct {
	Lane     NodeID
	Position Pos
	Digest   Digest
	Shares   []SigShare
}

// SigningBytes returns the byte string every share must have signed.
func (p *PoA) SigningBytes() []byte { return voteSigningBytes(p.Lane, p.Position, p.Digest) }

// Signers returns the set of replicas that contributed shares.
func (p *PoA) Signers() []NodeID {
	out := make([]NodeID, len(p.Shares))
	for i, s := range p.Shares {
		out[i] = s.Signer
	}
	return out
}

func (p *PoA) String() string {
	return fmt.Sprintf("PoA{lane=%s pos=%d votes=%d}", p.Lane, p.Position, len(p.Shares))
}

// TipRef references the latest proposal of one lane inside a consensus cut.
// A certified tip carries the PoA; an optimistic or leader tip (§5.5.2)
// carries only (digest, position) and Cert == nil.
type TipRef struct {
	Lane     NodeID
	Position Pos
	Digest   Digest
	// Cert is the tip's PoA; nil for optimistic/leader tips.
	Cert *PoA
}

// Certified reports whether the tip carries an availability proof.
func (t TipRef) Certified() bool { return t.Cert != nil }

// Empty reports whether the tip references the lane genesis (no proposals).
func (t TipRef) Empty() bool { return t.Position == 0 }

// Cut is a consensus proposal payload: a snapshot of all n lanes, one tip
// per lane, indexed by lane ID (§5.2). Committing a cut commits, for each
// lane, every proposal up to and including the tip.
type Cut struct {
	Tips []TipRef
}

// NewEmptyCut returns a cut with n genesis tips.
func NewEmptyCut(n int) Cut {
	tips := make([]TipRef, n)
	for i := range tips {
		tips[i] = TipRef{Lane: NodeID(i)}
	}
	return Cut{Tips: tips}
}

// Digest hashes the cut's tip references.
func (c Cut) Digest() Digest {
	h := sha256.New()
	h.Write([]byte("cutv1\x00\x00\x00"))
	for _, t := range c.Tips {
		var b [10]byte
		binary.LittleEndian.PutUint16(b[:], uint16(t.Lane))
		binary.LittleEndian.PutUint64(b[2:], uint64(t.Position))
		h.Write(b[:])
		h.Write(t.Digest[:])
	}
	var d Digest
	h.Sum(d[:0])
	return d
}

// Clone returns a deep copy sharing no memory with c: tips,
// certificates, shares and signature bytes are all freshly allocated.
// Holders that outlive the message that carried the cut must clone —
// decoded messages alias pooled transport frames, which recycle when
// the message is dropped (the delta-cut connection state is the
// canonical case).
func (c Cut) Clone() Cut {
	tips := make([]TipRef, len(c.Tips))
	copy(tips, c.Tips)
	for i := range tips {
		if cert := tips[i].Cert; cert != nil {
			cc := *cert
			cc.Shares = make([]SigShare, len(cert.Shares))
			copy(cc.Shares, cert.Shares)
			for j := range cc.Shares {
				cc.Shares[j].Sig = append([]byte(nil), cc.Shares[j].Sig...)
			}
			tips[i].Cert = &cc
		}
	}
	return Cut{Tips: tips}
}

// Validate checks structural sanity: exactly n tips, one per lane, in
// lane order.
func (c Cut) Validate(committee Committee) error {
	if len(c.Tips) != committee.Size() {
		return fmt.Errorf("cut: %d tips for committee of %d", len(c.Tips), committee.Size())
	}
	for i, t := range c.Tips {
		if t.Lane != NodeID(i) {
			return fmt.Errorf("cut: tip %d references lane %s", i, t.Lane)
		}
		if t.Position == 0 && !t.Digest.IsZero() {
			return fmt.Errorf("cut: lane %s genesis tip with non-zero digest", t.Lane)
		}
		if t.Cert != nil && (t.Cert.Lane != t.Lane || t.Cert.Position != t.Position || t.Cert.Digest != t.Digest) {
			return fmt.Errorf("cut: lane %s tip PoA mismatch", t.Lane)
		}
	}
	return nil
}

// NewTipsVersus counts how many tips in c strictly advance beyond the
// positions recorded in base (a last-committed or last-proposed frontier).
// The consensus layer's lane-coverage rule (§5.2.3) compares against this.
func (c Cut) NewTipsVersus(base []Pos) int {
	count := 0
	for i, t := range c.Tips {
		if i < len(base) && t.Position > base[i] {
			count++
		}
	}
	return count
}
