package types

import (
	"math/rand/v2"
	"testing"
)

// TestWinnerPreservesFastCommittedValue is a randomized property test of
// the §5.3 recovery rule against the fast path: if a value fast-committed
// in view v (all n replicas cast strong Prep-Votes and stored the
// proposal), then ANY timeout certificate formed from ANY 2f+1 subset of
// replicas must select that value — otherwise a conflicting reproposal
// could violate agreement (Lemma 3, fast case).
func TestWinnerPreservesFastCommittedValue(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 9))
	committee := NewCommittee(4)
	committed := prop(1, 0, 42)

	for trial := 0; trial < 500; trial++ {
		// Every replica voted for (and stored) the committed proposal in
		// view 0. Some replicas may additionally hold stale artifacts
		// from earlier aborted attempts — model older conflicting
		// proposals they saw before voting (HighProp tracks the highest
		// view, so here the committed one dominates at every replica).
		voters := rng.Perm(4)[:3] // any 2f+1 mutineers
		tc := &TC{Slot: 1, View: 0}
		for _, v := range voters {
			to := Timeout{Slot: 1, View: 0, Voter: NodeID(v), HighProp: committed}
			// A minority of timeouts may also carry an old QC from a
			// previous slot attempt at a lower view — never higher than
			// the committed view here (view 0 is the first).
			tc.Timeouts = append(tc.Timeouts, to)
		}
		w := tc.WinningProposal(committee)
		if w == nil || w.Cut.Digest() != committed.Cut.Digest() {
			t.Fatalf("trial %d: fast-committed value lost: %v", trial, w)
		}
	}
}

// TestWinnerPreservesSlowCommittedValue: if a value slow-committed in
// view v (2f+1 ConfirmAcks, hence >= f+1 correct replicas stored the
// PrepareQC), any 2f+1 TC intersects those in >= 1 replica, whose HighQC
// must win against any number of conflicting HighProps at views <= v.
func TestWinnerPreservesSlowCommittedValue(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 13))
	committee := NewCommittee(4)
	committed := prop(1, 1, 77) // committed in view 1 on the slow path
	conflicting := prop(1, 0, 13)

	for trial := 0; trial < 500; trial++ {
		// At least one mutineer holds the committed PrepareQC (quorum
		// intersection guarantees this); the others hold only an older
		// conflicting proposal from view 0.
		holders := 1 + int(rng.Uint64()%3)
		tc := &TC{Slot: 1, View: 1}
		for i := 0; i < 3; i++ {
			to := Timeout{Slot: 1, View: 1, Voter: NodeID(i)}
			if i < holders {
				to.HighQC = qcFor(committed)
				to.HighProp = committed
			} else {
				to.HighProp = conflicting
			}
			tc.Timeouts = append(tc.Timeouts, to)
		}
		// Shuffle timeout order: the rule must not depend on position.
		rng.Shuffle(len(tc.Timeouts), func(a, b int) {
			tc.Timeouts[a], tc.Timeouts[b] = tc.Timeouts[b], tc.Timeouts[a]
		})
		w := tc.WinningProposal(committee)
		if w == nil || w.Cut.Digest() != committed.Cut.Digest() {
			t.Fatalf("trial %d (holders=%d): slow-committed value lost: %v", trial, holders, w)
		}
	}
}

// TestWinnerNeverInventsValues: the winner, when non-nil, is always one
// of the proposals present in the TC (no fabrication).
func TestWinnerNeverInventsValues(t *testing.T) {
	rng := rand.New(rand.NewPCG(17, 19))
	committee := NewCommittee(4)
	candidates := []*ConsensusProposal{prop(1, 0, 1), prop(1, 1, 2), prop(1, 2, 3)}

	for trial := 0; trial < 1000; trial++ {
		tc := &TC{Slot: 1, View: 2}
		present := make(map[Digest]bool)
		for i := 0; i < 3; i++ {
			to := Timeout{Slot: 1, View: 2, Voter: NodeID(i)}
			if rng.Uint64()%2 == 0 {
				p := candidates[rng.Uint64()%3]
				to.HighProp = p
				present[p.Cut.Digest()] = true
			}
			if rng.Uint64()%4 == 0 {
				p := candidates[rng.Uint64()%3]
				to.HighQC = qcFor(p)
				// The QC's value is recoverable only if some timeout
				// carries the matching proposal; mark it present when so.
			}
			tc.Timeouts = append(tc.Timeouts, to)
		}
		w := tc.WinningProposal(committee)
		if w != nil && !present[w.Cut.Digest()] {
			// The QC-matching fallback can select a proposal carried by a
			// HighProp only; winning without any carried proposal would
			// be fabrication.
			t.Fatalf("trial %d: winner not among carried proposals", trial)
		}
	}
}
