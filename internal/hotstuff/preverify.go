package hotstuff

import (
	"fmt"

	"repro/internal/crypto"
	"repro/internal/runtime"
	"repro/internal/types"
)

// Staged-ingress mirror for the HotStuff baselines: the same parallel
// pre-verification hook the Autobahn replica implements, so baseline
// comparisons on the real runtime measure protocol differences rather
// than which system got the multi-core verification pipeline.

var _ runtime.PreVerifier = (*Node)(nil)

// PreVerify checks m's signatures without touching protocol state (it
// reads only the immutable config and the thread-safe verifier). Safe
// for concurrent use.
func (n *Node) PreVerify(from types.NodeID, m types.Message) error {
	if !n.cfg.VerifySigs {
		return nil
	}
	switch msg := m.(type) {
	case *Proposal:
		blk := msg.Block
		if !n.verifier.Verify(blk.Proposer, blk.SigningBytes(), blk.Sig) {
			return fmt.Errorf("hotstuff: bad block signature from %s", blk.Proposer)
		}
		if blk.Justify != nil {
			return verifyQC(n.cfg.Committee, n.verifier, blk.Justify)
		}
		return nil
	case *Vote:
		if !n.verifier.Verify(msg.Voter, msg.SigningBytes(), msg.Sig) {
			return fmt.Errorf("hotstuff: bad vote signature from %s", msg.Voter)
		}
		return nil
	case *NewView:
		if !n.verifier.Verify(msg.Voter, msg.SigningBytes(), msg.Sig) {
			return fmt.Errorf("hotstuff: bad new-view signature from %s", msg.Voter)
		}
		if msg.HighQC != nil {
			return verifyQC(n.cfg.Committee, n.verifier, msg.HighQC)
		}
		return nil
	}
	return nil
}

// verifyQC is the stateless QC check shared by the inline path and the
// pre-verification pipeline (batch-verified: shares spread across cores).
func verifyQC(committee types.Committee, v crypto.Verifier, qc *QC) error {
	if len(qc.Shares) < committee.Quorum() {
		return fmt.Errorf("hotstuff: QC has %d shares, need %d", len(qc.Shares), committee.Quorum())
	}
	if _, err := crypto.DistinctSigners(committee, qc.Shares); err != nil {
		return err
	}
	bv := crypto.NewBatchVerifier(v)
	probe := Vote{Round: qc.Round, Block: qc.Block}
	msg := probe.SigningBytes()
	for _, sh := range qc.Shares {
		bv.Add(sh.Signer, msg, sh.Sig)
	}
	// Whole-QC verdict memoized (VerifyCache verifiers): the same justify
	// QC arrives in the proposal and again in every NewView that carries
	// it, and the inline re-check is then a single lookup.
	return bv.VerifyCert("hotstuff-qc")
}
