package hotstuff

import (
	"crypto/sha256"
	"encoding/binary"

	"repro/internal/types"
)

// Message types (range reserved in types.MsgHotStuffBase).
const (
	MsgProposal  types.MsgType = types.MsgHotStuffBase + iota // block proposal
	MsgVote                                                   // block vote
	MsgNewView                                                // round-timeout complaint
	MsgBatch                                                  // BatchedHS batch broadcast
	MsgBatchPull                                              // fetch missing batches
	MsgBatchPush                                              // batch fetch reply
	MsgBlockPull                                              // fetch a missing ancestor block
)

// Round is a HotStuff round number.
type Round uint64

// QC is a quorum certificate over a block: 2f+1 votes.
type QC struct {
	Round  Round
	Block  types.Digest
	Shares []types.SigShare
}

// Block is a chained-HotStuff block. VanillaHS blocks carry the proposer's
// own batches inline; BatchedHS blocks carry digests referencing batches
// streamed separately.
type Block struct {
	Round    Round
	Proposer types.NodeID
	Parent   types.Digest
	// Justify certifies the parent (nil only for the genesis child).
	Justify *QC
	// Batches carried inline (VanillaHS).
	Batches []*types.Batch
	// Refs reference separately disseminated batches (BatchedHS):
	// (origin, seq, digest) triples.
	Refs []BatchRef
	Sig  []byte
}

// BatchRef identifies a streamed batch.
type BatchRef struct {
	Origin types.NodeID
	Seq    uint64
	Digest types.Digest
}

// Digest hashes the block header and payload identity.
func (b *Block) Digest() types.Digest {
	h := sha256.New()
	var hdr [8 + 8 + 2]byte
	copy(hdr[:8], "hsblk-v1")
	binary.LittleEndian.PutUint64(hdr[8:], uint64(b.Round))
	binary.LittleEndian.PutUint16(hdr[16:], uint16(b.Proposer))
	h.Write(hdr[:])
	h.Write(b.Parent[:])
	if b.Justify != nil {
		h.Write(b.Justify.Block[:])
	}
	for _, batch := range b.Batches {
		d := batch.Digest()
		h.Write(d[:])
	}
	for _, r := range b.Refs {
		h.Write(r.Digest[:])
	}
	var d types.Digest
	h.Sum(d[:0])
	return d
}

// SigningBytes returns the proposer-signed content.
func (b *Block) SigningBytes() []byte {
	d := b.Digest()
	return append([]byte("hssig-b\x00"), d[:]...)
}

// Proposal broadcasts a block.
type Proposal struct {
	Block *Block
}

func (m *Proposal) Type() types.MsgType { return MsgProposal }
func (m *Proposal) WireSize() int {
	n := 1 + 8 + 2 + types.DigestSize + 64 + 2
	if m.Block.Justify != nil {
		n += 8 + types.DigestSize + len(m.Block.Justify.Shares)*68
	}
	for _, b := range m.Block.Batches {
		n += b.WireSize()
	}
	n += len(m.Block.Refs) * (2 + 8 + types.DigestSize)
	return n
}

// Vote endorses a block; it is sent to the round's vote collector (the
// next leader under rotation — the root of the paper's "Dbl" blip).
type Vote struct {
	Round Round
	Block types.Digest
	Voter types.NodeID
	Sig   []byte
}

func (m *Vote) Type() types.MsgType { return MsgVote }
func (m *Vote) WireSize() int       { return 1 + 8 + types.DigestSize + 2 + 66 }

// SigningBytes binds round and block.
func (m *Vote) SigningBytes() []byte {
	out := make([]byte, 0, 16+types.DigestSize)
	out = append(out, []byte("hsvote\x00\x00")...)
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(m.Round))
	out = append(out, b[:]...)
	out = append(out, m.Block[:]...)
	return out
}

// NewView complains about a stalled round and carries the sender's highQC
// so the next leader can extend the freshest certified block.
type NewView struct {
	Round  Round
	HighQC *QC
	Voter  types.NodeID
	Sig    []byte
}

func (m *NewView) Type() types.MsgType { return MsgNewView }
func (m *NewView) WireSize() int {
	n := 1 + 8 + 2 + 66
	if m.HighQC != nil {
		n += 8 + types.DigestSize + len(m.HighQC.Shares)*68
	}
	return n
}

// SigningBytes binds the timed-out round.
func (m *NewView) SigningBytes() []byte {
	out := make([]byte, 0, 16)
	out = append(out, []byte("hsnewvw\x00")...)
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(m.Round))
	return append(out, b[:]...)
}

// BatchMsg streams a batch to all replicas (BatchedHS).
type BatchMsg struct {
	Batch *types.Batch
}

func (m *BatchMsg) Type() types.MsgType { return MsgBatch }
func (m *BatchMsg) WireSize() int       { return 1 + m.Batch.WireSize() }

// BatchPull requests missing batches from the block proposer — the
// synchronization-on-the-critical-path that BatchedHS cannot avoid.
type BatchPull struct {
	Refs      []BatchRef
	Requester types.NodeID
}

func (m *BatchPull) Type() types.MsgType { return MsgBatchPull }
func (m *BatchPull) WireSize() int       { return 1 + 2 + 4 + len(m.Refs)*(2+8+types.DigestSize) }

// BatchPush answers a BatchPull.
type BatchPush struct {
	Batches []*types.Batch
}

func (m *BatchPush) Type() types.MsgType { return MsgBatchPush }
func (m *BatchPush) WireSize() int {
	n := 1 + 4
	for _, b := range m.Batches {
		n += b.WireSize()
	}
	return n
}

// BlockPull requests a missing ancestor block chain from a peer.
type BlockPull struct {
	From      types.Digest
	Requester types.NodeID
}

func (m *BlockPull) Type() types.MsgType { return MsgBlockPull }
func (m *BlockPull) WireSize() int       { return 1 + types.DigestSize + 2 }
