// Package hotstuff implements the paper's two HotStuff baselines (§6):
//
//   - VanillaHS: chained HotStuff where each proposal carries only the
//     issuing leader's own pending batches — data dissemination coupled to
//     consensus, the design whose blips cause hangovers (Figs. 1, 7, 8).
//   - BatchedHS: replicas stream batches continuously and leaders propose
//     digest references; replicas must fetch missing batches from the
//     leader *before voting* (synchronization on the timeout-critical
//     path), the design whose scaling degrades with n (Fig. 6).
//
// Two leader regimes reproduce the paper's blip scenarios: Rotating
// (pipelined; votes are eagerly forwarded only to the next leader, so one
// failure can trigger two timeouts — the "Dbl" blip of Fig. 7) and Stable
// (votes return to the current leader, who proposes a pipeline of blocks;
// the leader changes only on view change — single-timeout blips).
package hotstuff

import (
	"time"

	"repro/internal/crypto"
	"repro/internal/runtime"
	"repro/internal/types"
)

// Variant selects the payload regime.
type Variant uint8

const (
	// Vanilla couples dissemination to consensus (own batches inline).
	Vanilla Variant = iota + 1
	// Batched decouples naively (streamed batches, digest references).
	Batched
)

// LeaderMode selects the leader regime.
type LeaderMode uint8

const (
	// Rotating pipelines views across rotating leaders (votes to next
	// leader).
	Rotating LeaderMode = iota + 1
	// Stable keeps one leader per view; views change only on timeouts.
	Stable
)

// Config parameterizes a HotStuff replica.
type Config struct {
	Committee  types.Committee
	Self       types.NodeID
	Suite      crypto.Suite
	VerifySigs bool
	Variant    Variant
	LeaderMode LeaderMode
	// ViewTimeout is the base progress timer (default 1s, doubling).
	ViewTimeout time.Duration
	// MaxInlineTx bounds a VanillaHS proposal's payload in transactions
	// (default 2000 — two full batches; partially filled delay-sealed
	// batches merge up to the cap, so sparse leader turns at large n are
	// not starved by a batch-count limit).
	MaxInlineTx int
	// MaxRefs bounds a BatchedHS proposal's references (default 32 — the
	// paper notes BatchedHS "must enforce a cap on mini-batch references
	// per proposal to avoid excessive synchronization").
	MaxRefs int
	// Sink receives execution-ready batches.
	Sink runtime.CommitSink
}

func (c *Config) fill() {
	if c.Variant == 0 {
		c.Variant = Vanilla
	}
	if c.LeaderMode == 0 {
		c.LeaderMode = Rotating
	}
	if c.ViewTimeout == 0 {
		c.ViewTimeout = time.Second
	}
	if c.MaxInlineTx == 0 {
		c.MaxInlineTx = 2000
	}
	if c.MaxRefs == 0 {
		c.MaxRefs = 32
	}
	if c.Sink == nil {
		c.Sink = runtime.NopSink
	}
}

// Timer tags.
const (
	tagViewTimer uint8 = iota + 1
)

// Node is one HotStuff replica.
type Node struct {
	cfg      Config
	signer   crypto.Signer
	verifier crypto.Verifier

	view        uint64 // pacemaker view
	consecutive int    // consecutive timeouts (timeout doubling)
	nextRound   Round  // stable mode: next block round to propose

	highQC      *QC
	lockedRound Round
	lastVoted   Round

	blocks   map[types.Digest]*Block
	genesis  types.Digest
	execHead types.Digest // highest executed block
	execRnd  Round

	votes    map[Round]map[types.NodeID]types.SigShare
	voteDig  map[Round]types.Digest
	newViews map[uint64]map[types.NodeID]*NewView

	// Vanilla payload.
	pendingOwn  []*types.Batch
	inflight    map[uint64]Round // own batch seq -> proposing round
	executedOwn map[uint64]bool  // own batch seqs already executed
	// forwardedOwn retains batches sent to a stable leader until they
	// execute, so leadership changes re-forward what a dead leader ate.
	forwardedOwn []*types.Batch
	// executedAll dedups executed batches by (origin, seq) so re-forwarded
	// duplicates are not proposed twice (Vanilla mode).
	executedAll map[[2]uint64]bool

	// Batched payload.
	batchStore  map[types.Digest]*types.Batch
	unproposed  []BatchRef
	refInflight map[types.Digest]Round
	executedRef map[types.Digest]bool
	// Execution queue of refs committed but awaiting data.
	execQueue []execItem
	// Pending votes blocked on missing batch data.
	pendingVote map[types.Digest]*Block

	stats Stats
	ctx   runtime.Context
}

type execItem struct {
	ref   BatchRef
	round Round
}

// Stats counts protocol events.
type Stats struct {
	BlocksProposed  uint64
	BlocksCommitted uint64
	BatchesExecuted uint64
	TxExecuted      uint64
	Timeouts        uint64
	BatchPulls      uint64
}

var _ runtime.Protocol = (*Node)(nil)

// NewNode builds a HotStuff replica.
func NewNode(cfg Config) *Node {
	cfg.fill()
	verifier := cfg.Suite.Verifier()
	if cfg.VerifySigs {
		// Memoized: inline checks of pre-verified messages are cache hits.
		verifier = crypto.NewVerifyCache(verifier, 0)
	}
	return &Node{
		cfg:         cfg,
		signer:      cfg.Suite.Signer(cfg.Self),
		verifier:    verifier,
		view:        1,
		nextRound:   1,
		blocks:      make(map[types.Digest]*Block),
		votes:       make(map[Round]map[types.NodeID]types.SigShare),
		voteDig:     make(map[Round]types.Digest),
		newViews:    make(map[uint64]map[types.NodeID]*NewView),
		inflight:    make(map[uint64]Round),
		executedOwn: make(map[uint64]bool),
		executedAll: make(map[[2]uint64]bool),
		batchStore:  make(map[types.Digest]*types.Batch),
		refInflight: make(map[types.Digest]Round),
		executedRef: make(map[types.Digest]bool),
		pendingVote: make(map[types.Digest]*Block),
	}
}

// Stats returns a counter snapshot.
func (n *Node) Stats() Stats { return n.stats }

// leaderOfView returns the proposer for a view.
func (n *Node) leaderOfView(v uint64) types.NodeID {
	return types.NodeID(v % uint64(n.cfg.Committee.Size()))
}

// voteTarget returns where votes for a block in view v are sent: the next
// leader under rotation (pipelining), the current leader when stable.
func (n *Node) voteTarget(v uint64) types.NodeID {
	if n.cfg.LeaderMode == Rotating {
		return n.leaderOfView(v + 1)
	}
	return n.leaderOfView(v)
}

// Init starts the first view's timer; the first leader proposes
// immediately (nothing to wait for at genesis).
func (n *Node) Init(ctx runtime.Context) {
	n.ctx = ctx
	n.armTimer(ctx)
	if n.leaderOfView(n.view) == n.cfg.Self {
		n.propose(ctx)
	}
}

func (n *Node) armTimer(ctx runtime.Context) {
	shift := n.consecutive
	if shift > 6 {
		shift = 6
	}
	d := n.cfg.ViewTimeout << shift
	ctx.SetTimer(d, runtime.TimerTag{Kind: tagViewTimer, A: n.view})
}

// OnClientBatch queues a sealed batch; BatchedHS also streams it. Under a
// stable leader, VanillaHS non-leaders forward their batches to the leader
// (only proposers disseminate data in this design, and only the leader
// proposes) — the single-broadcast bottleneck the paper describes.
func (n *Node) OnClientBatch(ctx runtime.Context, b *types.Batch) {
	n.ctx = ctx
	switch n.cfg.Variant {
	case Vanilla:
		leader := n.leaderOfView(n.view)
		if n.cfg.LeaderMode == Stable && leader != n.cfg.Self {
			n.forwardedOwn = append(n.forwardedOwn, b)
			ctx.Send(leader, &BatchMsg{Batch: b})
			return
		}
		n.pendingOwn = append(n.pendingOwn, b)
	case Batched:
		d := b.Digest()
		n.batchStore[d] = b
		n.unproposed = append(n.unproposed, BatchRef{Origin: b.Origin, Seq: b.Seq, Digest: d})
		ctx.Broadcast(&BatchMsg{Batch: b})
	}
}

// OnTimer fires the view progress timer.
func (n *Node) OnTimer(ctx runtime.Context, tag runtime.TimerTag) {
	n.ctx = ctx
	if tag.Kind != tagViewTimer || tag.A != n.view {
		return
	}
	n.stats.Timeouts++
	n.consecutive++
	nv := &NewView{Round: Round(n.view), HighQC: n.highQC, Voter: n.cfg.Self}
	nv.Sig = n.signer.Sign(nv.SigningBytes())
	ctx.Broadcast(nv)
	n.enterView(ctx, n.view+1)
	n.collectNewView(ctx, nv)
}

func (n *Node) enterView(ctx runtime.Context, v uint64) {
	if v <= n.view {
		return
	}
	leaderChanged := n.leaderOfView(v) != n.leaderOfView(n.view)
	n.view = v
	n.armTimer(ctx)
	if n.cfg.LeaderMode == Stable && n.leaderOfView(v) == n.cfg.Self {
		// A fresh stable leader proposes immediately from its highQC.
		n.propose(ctx)
	}
	if n.cfg.LeaderMode == Stable && n.cfg.Variant == Vanilla && leaderChanged {
		n.reforward(ctx)
	}
}

// reforward resends unexecuted forwarded batches to the new stable leader
// (the previous leader may have died holding them; clients re-submit in
// real deployments).
func (n *Node) reforward(ctx runtime.Context) {
	leader := n.leaderOfView(n.view)
	if leader == n.cfg.Self {
		for _, b := range n.forwardedOwn {
			if !n.executedOwn[b.Seq] {
				n.pendingOwn = append(n.pendingOwn, b)
			}
		}
		n.forwardedOwn = nil
		return
	}
	kept := n.forwardedOwn[:0]
	for _, b := range n.forwardedOwn {
		if n.executedOwn[b.Seq] {
			continue
		}
		ctx.Send(leader, &BatchMsg{Batch: b})
		kept = append(kept, b)
	}
	n.forwardedOwn = kept
}

// OnMessage dispatches peer messages.
func (n *Node) OnMessage(ctx runtime.Context, from types.NodeID, m types.Message) {
	n.ctx = ctx
	switch msg := m.(type) {
	case *Proposal:
		n.onProposal(ctx, from, msg.Block)
	case *Vote:
		n.onVote(ctx, from, msg)
	case *NewView:
		if from != msg.Voter {
			return
		}
		if n.cfg.VerifySigs && !n.verifier.Verify(msg.Voter, msg.SigningBytes(), msg.Sig) {
			return
		}
		n.collectNewView(ctx, msg)
	case *BatchMsg:
		if n.cfg.Variant == Vanilla {
			// A forwarded batch under stable leadership: queue it if we
			// lead, else forward another hop (leadership may have moved).
			// Re-forwarded duplicates are filtered by (origin, seq).
			if n.leaderOfView(n.view) == n.cfg.Self {
				if n.executedAll[[2]uint64{uint64(msg.Batch.Origin), msg.Batch.Seq}] {
					return // already committed by a previous leader
				}
				for _, b := range n.pendingOwn {
					if b.Origin == msg.Batch.Origin && b.Seq == msg.Batch.Seq {
						return
					}
				}
				n.pendingOwn = append(n.pendingOwn, msg.Batch)
			} else {
				ctx.Send(n.leaderOfView(n.view), msg)
			}
			return
		}
		n.onBatchData(ctx, msg.Batch)
	case *BatchPull:
		var push BatchPush
		for _, ref := range msg.Refs {
			if b, ok := n.batchStore[ref.Digest]; ok {
				push.Batches = append(push.Batches, b)
			}
		}
		if len(push.Batches) > 0 {
			ctx.Send(msg.Requester, &push)
		}
	case *BatchPush:
		for _, b := range msg.Batches {
			n.onBatchData(ctx, b)
		}
	case *BlockPull:
		n.serveBlocks(ctx, msg)
	}
}

// --- proposing ---

func (n *Node) propose(ctx runtime.Context) {
	parentDig := n.genesisOrHighQCBlock()
	parent := n.blocks[parentDig]
	var round Round
	var justify *QC
	if parent != nil {
		justify = n.highQC
		round = parent.Round + 1
	} else {
		round = 1
	}
	if n.cfg.LeaderMode == Rotating {
		// One block per view; round tracks the view to keep the 3-chain
		// arithmetic aligned with view progression.
		if Round(n.view) > round {
			round = Round(n.view)
		}
	}
	if round < n.nextRound {
		round = n.nextRound
	}
	n.nextRound = round + 1

	blk := &Block{Round: round, Proposer: n.cfg.Self, Justify: justify}
	if parent != nil {
		blk.Parent = parentDig
	}
	switch n.cfg.Variant {
	case Vanilla:
		// Merge per origin up to the tx cap: batch identity (origin, seq)
		// must survive merging for dedup and metrics, and stable leaders
		// queue forwarded batches from several origins. Each proposal may
		// carry one merged batch per origin.
		txs := 0
		groups := make(map[types.NodeID][]*types.Batch)
		var order []types.NodeID
		taken := 0
		for _, b := range n.pendingOwn {
			if txs >= n.cfg.MaxInlineTx {
				break
			}
			if _, ok := groups[b.Origin]; !ok {
				order = append(order, b.Origin)
			}
			groups[b.Origin] = append(groups[b.Origin], b)
			txs += int(b.Count)
			taken++
		}
		if taken > 0 {
			n.pendingOwn = n.pendingOwn[taken:]
			for _, origin := range order {
				merged := types.MergeBatches(groups[origin])
				blk.Batches = append(blk.Batches, merged)
				n.inflight[merged.Seq] = round
				n.batchStore[merged.Digest()] = merged
			}
		}
	case Batched:
		take := min(len(n.unproposed), n.cfg.MaxRefs)
		blk.Refs = n.unproposed[:take:take]
		n.unproposed = n.unproposed[take:]
		for _, r := range blk.Refs {
			n.refInflight[r.Digest] = round
		}
	}
	blk.Sig = n.signer.Sign(blk.SigningBytes())
	n.stats.BlocksProposed++
	ctx.Broadcast(&Proposal{Block: blk})
	n.onProposal(ctx, n.cfg.Self, blk)
}

func (n *Node) genesisOrHighQCBlock() types.Digest {
	if n.highQC != nil {
		return n.highQC.Block
	}
	return types.ZeroDigest
}

// --- block handling & voting ---

func (n *Node) onProposal(ctx runtime.Context, from types.NodeID, blk *Block) {
	if blk.Proposer != from {
		return
	}
	if n.cfg.VerifySigs && !n.verifier.Verify(blk.Proposer, blk.SigningBytes(), blk.Sig) {
		return
	}
	d := blk.Digest()
	if _, dup := n.blocks[d]; dup {
		return
	}
	// Validate the justify QC and adopt it.
	if blk.Justify != nil {
		if blk.Justify.Block != blk.Parent {
			return
		}
		if n.cfg.VerifySigs && !n.verifyQC(blk.Justify) {
			return
		}
		n.adoptQC(ctx, blk.Justify)
	} else if !blk.Parent.IsZero() {
		return
	}
	n.blocks[d] = blk

	// Track payload references for duplicate suppression and requeueing.
	for _, r := range blk.Refs {
		if _, ok := n.refInflight[r.Digest]; !ok {
			n.refInflight[r.Digest] = blk.Round
		}
		// Drop from our own unproposed queue if another leader beat us.
		for i, u := range n.unproposed {
			if u.Digest == r.Digest {
				n.unproposed = append(n.unproposed[:i], n.unproposed[i+1:]...)
				break
			}
		}
	}
	for _, b := range blk.Batches {
		n.batchStore[b.Digest()] = b
	}

	// Pacemaker: a valid block for a newer view pulls us forward (its
	// justify proves 2f+1 progressed past our view).
	if n.cfg.LeaderMode == Rotating && uint64(blk.Round) > n.view {
		n.view = uint64(blk.Round)
		n.armTimer(ctx)
	}

	n.tryVote(ctx, blk)
	n.drainExecQueue(ctx)
}

// tryVote applies the chained-HotStuff vote rule and the BatchedHS data
// availability rule.
func (n *Node) tryVote(ctx runtime.Context, blk *Block) {
	if blk.Round <= n.lastVoted {
		return
	}
	// Safety: extend the locked branch or justify must outrank the lock.
	if blk.Justify == nil {
		if !blk.Parent.IsZero() {
			return
		}
	} else if blk.Justify.Round < n.lockedRound {
		return
	}
	// BatchedHS: all referenced batches must be locally present before
	// voting (synchronization on the timeout-critical path).
	if n.cfg.Variant == Batched {
		var missing []BatchRef
		for _, r := range blk.Refs {
			if _, ok := n.batchStore[r.Digest]; !ok {
				missing = append(missing, r)
			}
		}
		if len(missing) > 0 {
			n.pendingVote[blk.Digest()] = blk
			n.stats.BatchPulls++
			ctx.Send(blk.Proposer, &BatchPull{Refs: missing, Requester: n.cfg.Self})
			return
		}
	}
	n.lastVoted = blk.Round
	v := &Vote{Round: blk.Round, Block: blk.Digest(), Voter: n.cfg.Self}
	v.Sig = n.signer.Sign(v.SigningBytes())
	target := n.voteTarget(uint64(blk.Round))
	if n.cfg.LeaderMode == Stable {
		target = n.leaderOfView(n.view)
	}
	if target == n.cfg.Self {
		n.collectVote(ctx, v)
	} else {
		ctx.Send(target, v)
	}
}

func (n *Node) onBatchData(ctx runtime.Context, b *types.Batch) {
	d := b.Digest()
	if _, dup := n.batchStore[d]; dup {
		return
	}
	n.batchStore[d] = b
	if b.Origin != n.cfg.Self {
		// Candidate for our own future proposals unless already in chain.
		if _, inflight := n.refInflight[d]; !inflight && !n.executedRef[d] {
			n.unproposed = append(n.unproposed, BatchRef{Origin: b.Origin, Seq: b.Seq, Digest: d})
		}
	}
	// Unblock pending votes and stalled execution.
	for bd, blk := range n.pendingVote {
		ready := true
		for _, r := range blk.Refs {
			if _, ok := n.batchStore[r.Digest]; !ok {
				ready = false
				break
			}
		}
		if ready {
			delete(n.pendingVote, bd)
			n.tryVote(ctx, blk)
		}
	}
	n.drainExecQueue(ctx)
}

// --- votes, QCs, commits ---

func (n *Node) onVote(ctx runtime.Context, from types.NodeID, v *Vote) {
	if from != v.Voter {
		return
	}
	if n.cfg.VerifySigs && !n.verifier.Verify(v.Voter, v.SigningBytes(), v.Sig) {
		return
	}
	n.collectVote(ctx, v)
}

func (n *Node) collectVote(ctx runtime.Context, v *Vote) {
	if dig, ok := n.voteDig[v.Round]; ok && dig != v.Block {
		return
	}
	n.voteDig[v.Round] = v.Block
	set := n.votes[v.Round]
	if set == nil {
		set = make(map[types.NodeID]types.SigShare)
		n.votes[v.Round] = set
	}
	if _, dup := set[v.Voter]; dup {
		return
	}
	set[v.Voter] = types.SigShare{Signer: v.Voter, Sig: v.Sig}
	if len(set) < n.cfg.Committee.Quorum() {
		return
	}
	qc := &QC{Round: v.Round, Block: v.Block}
	for _, id := range n.cfg.Committee.Nodes() {
		if sh, ok := set[id]; ok {
			qc.Shares = append(qc.Shares, sh)
		}
	}
	delete(n.votes, v.Round)
	n.adoptQC(ctx, qc)
	// Progress: the QC holder proposes the next block. Rotating: we are
	// leader(view+1) and the QC is our ticket. Stable: we are the current
	// leader extending our pipeline.
	switch n.cfg.LeaderMode {
	case Rotating:
		if n.leaderOfView(uint64(qc.Round)+1) == n.cfg.Self {
			n.enterViewQuiet(ctx, uint64(qc.Round)+1)
			n.propose(ctx)
		}
	case Stable:
		if n.leaderOfView(n.view) == n.cfg.Self {
			n.propose(ctx)
		}
	}
}

// enterViewQuiet advances the pacemaker on progress (QC), resetting the
// timeout backoff.
func (n *Node) enterViewQuiet(ctx runtime.Context, v uint64) {
	if v <= n.view {
		return
	}
	n.view = v
	n.consecutive = 0
	n.armTimer(ctx)
}

func (n *Node) adoptQC(ctx runtime.Context, qc *QC) {
	if n.highQC == nil || qc.Round > n.highQC.Round {
		n.highQC = qc
	}
	// Locking (2-chain) and commit (3-chain, consecutive rounds).
	b := n.blocks[qc.Block]
	if b == nil {
		// Parent unknown: pull the chain from any peer later; commits
		// will catch up. (Crash-fault experiments rarely hit this.)
		return
	}
	if p := n.blocks[b.Parent]; p != nil {
		if p.Round > n.lockedRound {
			n.lockedRound = p.Round
		}
		if g := n.blocks[p.Parent]; g != nil {
			if p.Round == b.Round-1 && g.Round == p.Round-1 {
				n.commit(ctx, g)
			}
		}
	}
	// Progress in rotating mode: everyone advances on seeing the QC via
	// the next proposal; the timer resets on commit instead.
	if n.cfg.LeaderMode == Rotating {
		n.enterViewQuiet(ctx, uint64(qc.Round))
	}
}

// commit finalizes blk and all its unexecuted ancestors, oldest first.
func (n *Node) commit(ctx runtime.Context, blk *Block) {
	if blk.Round <= n.execRnd && !n.execHead.IsZero() {
		return
	}
	var chain []*Block
	cur := blk
	for cur != nil && (n.execHead.IsZero() || cur.Round > n.execRnd) {
		chain = append(chain, cur)
		if cur.Parent.IsZero() {
			break
		}
		cur = n.blocks[cur.Parent]
	}
	// Oldest first.
	for i := len(chain) - 1; i >= 0; i-- {
		b := chain[i]
		n.stats.BlocksCommitted++
		for _, batch := range b.Batches {
			n.executeBatch(ctx, batch, b.Round)
		}
		for _, ref := range b.Refs {
			n.execQueue = append(n.execQueue, execItem{ref: ref, round: b.Round})
		}
	}
	n.execHead = blk.Digest()
	n.execRnd = blk.Round
	n.consecutive = 0
	n.armTimer(ctx)
	n.drainExecQueue(ctx)
	n.requeueOrphans(ctx)
}

// drainExecQueue executes committed BatchedHS refs strictly in order,
// stalling (and pulling) when data is missing — the post-commit
// synchronization hangover of naive decoupling.
func (n *Node) drainExecQueue(ctx runtime.Context) {
	for len(n.execQueue) > 0 {
		item := n.execQueue[0]
		if n.executedRef[item.ref.Digest] {
			n.execQueue = n.execQueue[1:]
			continue
		}
		b, ok := n.batchStore[item.ref.Digest]
		if !ok {
			return // head-of-line blocked until the data arrives
		}
		n.executedRef[item.ref.Digest] = true
		n.execQueue = n.execQueue[1:]
		n.executeBatch(ctx, b, item.round)
	}
}

func (n *Node) executeBatch(ctx runtime.Context, b *types.Batch, round Round) {
	key := [2]uint64{uint64(b.Origin), b.Seq}
	if n.executedAll[key] {
		return // duplicate via orphan re-proposal or re-forwarding
	}
	n.executedAll[key] = true
	if b.Origin == n.cfg.Self {
		n.executedOwn[b.Seq] = true
		delete(n.inflight, b.Seq)
	}
	n.stats.BatchesExecuted++
	n.stats.TxExecuted += uint64(b.Count)
	n.cfg.Sink.OnCommit(n.cfg.Self, ctx.Now(), runtime.Committed{
		Lane:     b.Origin,
		Position: types.Pos(b.Seq),
		Slot:     types.Slot(round),
		Batch:    b,
	})
}

// requeueOrphans returns payloads of abandoned blocks to the pending
// queues so they are eventually re-proposed.
func (n *Node) requeueOrphans(ctx runtime.Context) {
	_ = ctx
	if n.cfg.Variant == Vanilla {
		for seq, round := range n.inflight {
			if n.executedOwn[seq] {
				delete(n.inflight, seq)
				continue
			}
			if round+2 < n.execRnd {
				// Proposed long before the executed frontier yet never
				// executed: the block was orphaned. Re-propose.
				delete(n.inflight, seq)
				if b := n.findOwnBatch(seq); b != nil {
					n.pendingOwn = append([]*types.Batch{b}, n.pendingOwn...)
				}
			}
		}
		return
	}
	for dig, round := range n.refInflight {
		if n.executedRef[dig] {
			delete(n.refInflight, dig)
			continue
		}
		if round+2 < n.execRnd {
			delete(n.refInflight, dig)
			if b, ok := n.batchStore[dig]; ok {
				n.unproposed = append([]BatchRef{{Origin: b.Origin, Seq: b.Seq, Digest: dig}}, n.unproposed...)
			}
		}
	}
}

func (n *Node) findOwnBatch(seq uint64) *types.Batch {
	for _, b := range n.batchStore {
		if b.Origin == n.cfg.Self && b.Seq == seq {
			return b
		}
	}
	return nil
}

// --- view changes ---

func (n *Node) collectNewView(ctx runtime.Context, nv *NewView) {
	if nv.HighQC != nil {
		if n.cfg.VerifySigs && !n.verifyQC(nv.HighQC) {
			return
		}
		n.adoptQC(ctx, nv.HighQC)
	}
	v := uint64(nv.Round)
	set := n.newViews[v]
	if set == nil {
		set = make(map[types.NodeID]*NewView)
		n.newViews[v] = set
	}
	if _, dup := set[nv.Voter]; dup {
		return
	}
	set[nv.Voter] = nv
	if len(set) < n.cfg.Committee.Quorum() {
		return
	}
	delete(n.newViews, v)
	n.enterView(ctx, v+1)
	if n.leaderOfView(v+1) == n.cfg.Self {
		n.propose(ctx)
	}
}

func (n *Node) verifyQC(qc *QC) bool {
	return verifyQC(n.cfg.Committee, n.verifier, qc) == nil
}

// serveBlocks answers an ancestor pull with the requested chain (bounded).
func (n *Node) serveBlocks(ctx runtime.Context, pull *BlockPull) {
	cur, ok := n.blocks[pull.From]
	for i := 0; ok && i < 16; i++ {
		ctx.Send(pull.Requester, &Proposal{Block: cur})
		if cur.Parent.IsZero() {
			break
		}
		cur, ok = n.blocks[cur.Parent]
	}
}
