package hotstuff_test

import (
	"testing"
	"time"

	"repro/internal/crypto"
	"repro/internal/hotstuff"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/types"
	"repro/internal/workload"
)

func newHSCluster(n int, variant hotstuff.Variant, mode hotstuff.LeaderMode, faults *sim.FaultSchedule, verify bool) (*sim.Engine, *metrics.Recorder, []*hotstuff.Node) {
	committee := types.NewCommittee(n)
	var suite crypto.Suite
	if verify {
		suite = crypto.NewEd25519Suite(n, 7)
	} else {
		suite = crypto.NewNopSuite(n)
	}
	rec := metrics.NewRecorder(5 * time.Minute)
	eng := sim.NewEngine(sim.Config{
		Net:    sim.NewNetwork(sim.DefaultNetConfig(sim.IntraUSTopology())),
		Faults: faults,
		Seed:   7,
	})
	var nodes []*hotstuff.Node
	for i := 0; i < n; i++ {
		nd := hotstuff.NewNode(hotstuff.Config{
			Committee:  committee,
			Self:       types.NodeID(i),
			Suite:      suite,
			VerifySigs: verify,
			Variant:    variant,
			LeaderMode: mode,
			Sink:       rec.Sink(),
		})
		nodes = append(nodes, nd)
		eng.AddNode(nd)
	}
	return eng, rec, nodes
}

func ids(n int) []types.NodeID {
	out := make([]types.NodeID, n)
	for i := range out {
		out[i] = types.NodeID(i)
	}
	return out
}

func TestVanillaCommits(t *testing.T) {
	for _, mode := range []hotstuff.LeaderMode{hotstuff.Rotating, hotstuff.Stable} {
		eng, rec, _ := newHSCluster(4, hotstuff.Vanilla, mode, nil, false)
		workload.Install(eng, ids(4), workload.Config{TotalRate: 10000, Start: 0, End: 10 * time.Second})
		eng.Run(14 * time.Second)
		total := rec.Total()
		if total < 95_000 {
			t.Fatalf("mode %d: committed only %d of ~100000", mode, total)
		}
		lat := rec.MeanLatency(2*time.Second, 9*time.Second)
		if lat <= 0 || lat > 2*time.Second {
			t.Fatalf("mode %d: implausible latency %v", mode, lat)
		}
		t.Logf("mode=%d committed=%d lat=%v p99=%v", mode, total, lat, rec.Percentile(0.99))
	}
}

func TestBatchedCommits(t *testing.T) {
	eng, rec, nodes := newHSCluster(4, hotstuff.Batched, hotstuff.Rotating, nil, false)
	workload.Install(eng, ids(4), workload.Config{TotalRate: 50000, Start: 0, End: 10 * time.Second})
	eng.Run(15 * time.Second)
	total := rec.Total()
	if total < 480_000 {
		t.Fatalf("committed only %d of ~500000", total)
	}
	lat := rec.MeanLatency(2*time.Second, 9*time.Second)
	if lat <= 0 || lat > 2*time.Second {
		t.Fatalf("implausible latency %v", lat)
	}
	t.Logf("committed=%d lat=%v pulls=%d", total, lat, nodes[0].Stats().BatchPulls)
}

func TestVanillaWithRealSignatures(t *testing.T) {
	eng, rec, _ := newHSCluster(4, hotstuff.Vanilla, hotstuff.Rotating, nil, true)
	workload.Install(eng, ids(4), workload.Config{TotalRate: 4000, Start: 0, End: 3 * time.Second})
	eng.Run(6 * time.Second)
	if rec.Total() < 10_000 {
		t.Fatalf("committed only %d with real crypto", rec.Total())
	}
}

func TestVanillaLeaderFailureRecovers(t *testing.T) {
	// Crash r1 for 1.5s: rotating mode should see the double timeout and
	// recover; load continues and commits drain afterwards.
	faults := (&sim.FaultSchedule{}).AddDown(1, 4*time.Second, 5500*time.Millisecond)
	eng, rec, nodes := newHSCluster(4, hotstuff.Vanilla, hotstuff.Rotating, faults, false)
	workload.Install(eng, ids(4), workload.Config{TotalRate: 10000, Start: 0, End: 15 * time.Second})
	eng.Run(25 * time.Second)
	total := rec.Total()
	if total < 140_000 {
		t.Fatalf("committed only %d of ~150000 across leader failure", total)
	}
	if nodes[0].Stats().Timeouts == 0 {
		t.Fatalf("expected timeouts during the blip")
	}
	// The blip must show up as elevated latency for requests arriving in
	// the fault window (the hangover signature of coupled dissemination).
	blipLat := rec.MeanLatency(4*time.Second, 6*time.Second)
	steady := rec.MeanLatency(1*time.Second, 4*time.Second)
	if blipLat < steady {
		t.Fatalf("expected elevated latency during blip: blip=%v steady=%v", blipLat, steady)
	}
	t.Logf("steady=%v blip=%v timeouts=%d", steady, blipLat, nodes[0].Stats().Timeouts)
}
