package core_test

import (
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/types"
	"repro/internal/workload"
)

// TestSafetyAcrossRandomSchedules runs many seeds (different jitter, and
// hence different message interleavings and timer races) and asserts the
// prefix-agreement safety invariant in every execution, with a mid-run
// leader crash thrown in.
func TestSafetyAcrossRandomSchedules(t *testing.T) {
	for seed := uint64(1); seed <= 12; seed++ {
		faults := (&sim.FaultSchedule{}).AddDown(types.NodeID(seed%4), 3*time.Second, 4*time.Second)
		c := newCluster(clusterOpts{
			n: 4, fastPath: seed%2 == 0, optimisticTips: seed%3 != 0,
			faults: faults, seed: seed,
		})
		workload.Install(c.engine, c.ids, workload.Config{
			TotalRate: 30000, Start: 0, End: 8 * time.Second,
		})
		c.engine.Run(12 * time.Second)
		checkPrefixAgreement(t, c.logs.logs)
		if c.recorder.Total() < 200_000 {
			t.Fatalf("seed %d: committed only %d of ~240000", seed, c.recorder.Total())
		}
	}
}

// TestMaxFaultsLiveness: n=7 tolerates f=2; with two replicas crashed for
// the whole run, the remaining 5 (= quorum) keep committing.
func TestMaxFaultsLiveness(t *testing.T) {
	faults := (&sim.FaultSchedule{}).
		AddDown(2, 0, time.Hour).
		AddDown(5, 0, time.Hour)
	c := newCluster(clusterOpts{n: 7, fastPath: true, optimisticTips: true, faults: faults})
	workload.Install(c.engine, c.ids, workload.Config{
		TotalRate: 20000, Start: 0, End: 10 * time.Second,
	})
	c.engine.Run(18 * time.Second)
	checkPrefixAgreement(t, c.logs.logs)
	// The crashed replicas' load redirects; everything submitted commits.
	if c.recorder.Total() < 190_000 {
		t.Fatalf("committed only %d of ~200000 with f crashed replicas", c.recorder.Total())
	}
	// The fast path is impossible (needs all n votes): latency must still
	// be sane on the slow path.
	lat := c.recorder.MeanLatency(2*time.Second, 9*time.Second)
	if lat <= 0 || lat > 2*time.Second {
		t.Fatalf("implausible latency with max faults: %v", lat)
	}
	t.Logf("total=%d lat=%v", c.recorder.Total(), lat)
}

// TestWeakVotesEndToEnd: the §5.5.2 refinement holds up in a full cluster
// at load — commits flow and logs agree.
func TestWeakVotesEndToEnd(t *testing.T) {
	c := newClusterWith(t, func(o *clusterOpts) {
		o.n = 4
		o.fastPath = true
		o.optimisticTips = true
		o.weakVotes = true
	})
	workload.Install(c.engine, c.ids, workload.Config{
		TotalRate: 50000, Start: 0, End: 8 * time.Second,
	})
	c.engine.Run(12 * time.Second)
	checkPrefixAgreement(t, c.logs.logs)
	if c.recorder.Total() < 390_000 {
		t.Fatalf("committed only %d with weak votes", c.recorder.Total())
	}
	lat := c.recorder.MeanLatency(2*time.Second, 7*time.Second)
	if lat <= 0 || lat > time.Second {
		t.Fatalf("implausible weak-vote latency %v", lat)
	}
	t.Logf("weak votes: total=%d lat=%v", c.recorder.Total(), lat)
}
