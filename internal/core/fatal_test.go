package core_test

import (
	"errors"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/crypto"
	"repro/internal/storage"
	"repro/internal/types"
)

// TestFailedSyncHaltsReplicaAndDropsGatedSends pins the loud-failure
// posture: when the group-commit barrier cannot make the burst's
// records durable, the replica must drop the gated sends (releasing
// them could externalize an un-journaled vote that contradicts the
// post-restart replica), report fatally exactly once, and stay halted.
func TestFailedSyncHaltsReplicaAndDropsGatedSends(t *testing.T) {
	st, err := storage.OpenWithFaults(filepath.Join(t.TempDir(), "wal"), &storage.FaultPlan{FailWriteAfter: 1})
	if err != nil {
		t.Fatal(err)
	}
	j := core.NewWALJournal(st)
	defer j.Close()

	fatalErr := make(chan error, 2)
	var fatals atomic.Int32
	nd := core.NewNode(core.Config{
		Committee:      types.NewCommittee(4),
		Self:           1,
		Suite:          crypto.NewNopSuite(4),
		FastPath:       true,
		OptimisticTips: true,
		Journal:        j,
		GroupCommit:    true,
		OnFatal: func(err error) {
			fatals.Add(1)
			fatalErr <- err
		},
	})
	ctx := &recordingCtx{}
	nd.Init(ctx)
	nd.Flush(ctx)
	ctx.sends = nil

	// A sealed batch journals an own proposal and gates its broadcast.
	nd.OnClientBatch(ctx, types.NewBatch(1, 1, []types.Transaction{{1, 2, 3}}, 0))
	nd.Flush(ctx) // barrier fails: the store's first write is poisoned
	if len(ctx.sends) != 0 {
		t.Fatalf("%d sends externalized after a failed sync", len(ctx.sends))
	}
	if !nd.Halted() {
		t.Fatal("replica did not halt on journal failure")
	}
	select {
	case err := <-fatalErr:
		if !errors.Is(err, storage.ErrInjected) {
			t.Fatalf("fatal error = %v, want ErrInjected", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("OnFatal never fired")
	}

	// Halted means halted: further bursts release nothing, and the
	// fatal callback does not fire again.
	nd.OnClientBatch(ctx, types.NewBatch(1, 2, []types.Transaction{{4, 5, 6}}, 0))
	nd.Flush(ctx)
	if len(ctx.sends) != 0 {
		t.Fatalf("%d sends escaped a halted replica", len(ctx.sends))
	}
	time.Sleep(10 * time.Millisecond)
	if n := fatals.Load(); n != 1 {
		t.Fatalf("OnFatal fired %d times, want exactly once", n)
	}
}

// corruptionProposal builds a fresh lane-0 incarnation's first proposal
// carrying txs — two different payloads give two digests at the same
// (lane, position).
func corruptionProposal(t *testing.T, txs []types.Transaction) *types.Proposal {
	t.Helper()
	peer := core.NewNode(core.Config{
		Committee: types.NewCommittee(4),
		Self:      0,
		Suite:     crypto.NewNopSuite(4),
	})
	pctx := &recordingCtx{}
	peer.Init(pctx)
	pctx.sends = nil
	peer.OnClientBatch(pctx, types.NewBatch(0, 1, txs, 0))
	for _, m := range pctx.sends {
		if p, ok := m.(*types.Proposal); ok {
			return p
		}
	}
	t.Fatal("peer produced no proposal")
	return nil
}

// TestCorruptedWALRecoveryNeverDoubleVotes damages the WAL tail between
// two incarnations: recovery must keep every intact record before the
// damage (the journaled lane vote), and the restarted replica must not
// vote a different digest at that voted position — corruption may cost
// conservative amnesia for the damaged tail, never a contradiction.
func TestCorruptedWALRecoveryNeverDoubleVotes(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	mkNode := func(j core.Journal) *core.Node {
		return core.NewNode(core.Config{
			Committee:      types.NewCommittee(4),
			Self:           1,
			Suite:          crypto.NewNopSuite(4),
			FastPath:       true,
			OptimisticTips: true,
			Journal:        j,
		})
	}

	// Incarnation 1: vote on the peer's proposal (journaled), then
	// append an own proposal that will become the damaged tail.
	st, err := storage.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	j := core.NewWALJournal(st)
	nd := mkNode(j)
	ctx := &recordingCtx{}
	nd.Init(ctx)
	ctx.sends = nil
	propA := corruptionProposal(t, []types.Transaction{{1, 2, 3}})
	nd.OnMessage(ctx, 0, propA)
	var votedDigest types.Digest
	voted := false
	for _, m := range ctx.sends {
		if v, ok := m.(*types.Vote); ok && v.Lane == 0 && v.Position == 1 {
			votedDigest, voted = v.Digest, true
		}
	}
	if !voted {
		t.Fatal("incarnation 1 never voted on the peer proposal")
	}
	nd.OnClientBatch(ctx, types.NewBatch(1, 1, []types.Transaction{{7, 7}}, 0))
	if err := j.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Post-crash bit rot on the tail: the own-proposal record (appended
	// after the vote) is damaged; the vote record must survive.
	if err := storage.CorruptFlip(path, -1); err != nil {
		t.Fatal(err)
	}

	// Incarnation 2 recovers the vote, loses only the damaged tail.
	st2, err := storage.Open(path)
	if err != nil {
		t.Fatalf("recovery from corrupted WAL: %v", err)
	}
	j2 := core.NewWALJournal(st2)
	defer j2.Close()
	if d, ok := j2.Recover().LaneVotes[0][1]; !ok {
		t.Fatal("journaled lane vote lost to unrelated tail damage")
	} else if d != votedDigest {
		t.Fatalf("recovered vote digest %x, journaled %x", d, votedDigest)
	}
	nd2 := mkNode(j2)
	ctx2 := &recordingCtx{}
	nd2.Init(ctx2)
	ctx2.sends = nil

	// An equivocating proposal at the voted position: the restarted
	// replica must not vote a different digest.
	propB := corruptionProposal(t, []types.Transaction{{9, 9, 9}})
	if propB.Digest() == propA.Digest() {
		t.Fatal("test needs two distinct digests at the same position")
	}
	nd2.OnMessage(ctx2, 0, propB)
	nd2.OnMessage(ctx2, 0, propA) // re-delivery of the original is fine
	for _, m := range ctx2.sends {
		if v, ok := m.(*types.Vote); ok && v.Lane == 0 && v.Position == 1 && v.Digest != votedDigest {
			t.Fatalf("restarted replica voted digest %x at lane 0 pos 1, contradicting journaled %x", v.Digest, votedDigest)
		}
	}
}
