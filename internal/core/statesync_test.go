package core_test

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/crypto"
	"repro/internal/exec"
	"repro/internal/storage"
	"repro/internal/types"
)

// buildSnapshotState runs a small execution history and returns the
// machine plus a manifest checkpointing it at `next`.
func buildSnapshotState(next types.Slot, entries int) (*exec.Machine, *exec.Manifest) {
	m := exec.New()
	frontier := make([]types.Pos, 4)
	digests := make([]types.Digest, 4)
	for i := 0; i < entries; i++ {
		lane := types.NodeID(i % 4)
		frontier[lane]++
		var d types.Digest
		d[0], d[1] = byte(i), byte(i>>8)
		digests[lane] = m.Apply(types.Slot(i/4+1), lane, frontier[lane], d, nil)
	}
	man := exec.BuildManifest(next, frontier, digests, m.AppHash(), m.Count(), m.Serialize())
	return m, man
}

// newSnapNode builds a 4-committee replica with execution on over the
// given journal and snapshot store (recovery runs inside NewNode).
func newSnapNode(j core.Journal, snaps core.SnapshotStore) *core.Node {
	return core.NewNode(core.Config{
		Committee:      types.NewCommittee(4),
		Self:           0,
		Suite:          crypto.NewNopSuite(4),
		FastPath:       true,
		OptimisticTips: true,
		Execution:      true,
		SnapshotEvery:  10,
		Snapshots:      snaps,
		Journal:        j,
	})
}

// TestRecoverPrefersNewerSnapshot is the satellite crash-window
// regression: the snapshot is durably saved BEFORE the journal
// truncates, so a crash between the two leaves a snapshot ahead of the
// journal's execution frontier. Recovery must take the snapshot — and
// repair the journal's frontier record to match — not replay from the
// stale journal frontier.
func TestRecoverPrefersNewerSnapshot(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal")
	st, err := storage.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	j := core.NewWALJournal(st)
	// Journal thinks execution stopped at slot 50 …
	j.Executed(50, []types.Pos{5, 5, 5, 5}, make([]types.Digest, 4), types.Digest{0x50}, 20)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// … but a snapshot at slot 80 was committed just before the crash.
	m, man := buildSnapshotState(80, 32)
	snaps := storage.FileSnapshots{Path: path + ".snap"}
	if err := snaps.Save(man.Encode(), m.Serialize()); err != nil {
		t.Fatal(err)
	}

	st2, err := storage.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	j2 := core.NewWALJournal(st2)
	nd := newSnapNode(j2, snaps)
	if got := nd.Orderer().NextExec(); got != 80 {
		t.Fatalf("recovered at slot %d, want snapshot frontier 80", got)
	}
	if nd.Machine().AppHash() != man.AppHash || nd.Machine().Count() != man.Count {
		t.Fatal("machine not restored to the snapshot's chain oracle")
	}
	// The journal was repaired in place: a third incarnation recovering
	// from it alone (snapshot gone) starts at the snapshot frontier.
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	st3, err := storage.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	j3 := core.NewWALJournal(st3)
	defer j3.Close()
	if rec := j3.Recover(); rec.NextExec != 80 || rec.ChainCount != man.Count {
		t.Fatalf("journal not repaired: NextExec=%d ChainCount=%d", rec.NextExec, rec.ChainCount)
	}
}

// TestRecoverPrefersNewerJournal is the mirror image: execution ran past
// the last checkpoint before the crash, so the journal frontier wins and
// the chain oracle restores from the journal trailer (balances still
// come from the older snapshot — the oracle is state-independent by
// construction).
func TestRecoverPrefersNewerJournal(t *testing.T) {
	m, man := buildSnapshotState(30, 16)
	snaps := &core.MemSnapshots{}
	if err := snaps.Save(man.Encode(), m.Serialize()); err != nil {
		t.Fatal(err)
	}
	j := core.NewMemJournal()
	want := types.Digest{0xee}
	j.Executed(50, []types.Pos{9, 9, 9, 9}, make([]types.Digest, 4), want, 44)
	nd := newSnapNode(j, snaps)
	if got := nd.Orderer().NextExec(); got != 50 {
		t.Fatalf("recovered at slot %d, want journal frontier 50", got)
	}
	if nd.Machine().AppHash() != want || nd.Machine().Count() != 44 {
		t.Fatal("chain oracle not restored from the journal trailer")
	}
}

// TestTornSnapshotFallsBackToJournal corrupts the snapshot file: load
// must degrade to "no snapshot" and recovery proceed from the journal
// frontier alone.
func TestTornSnapshotFallsBackToJournal(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.snap")
	m, man := buildSnapshotState(80, 32)
	snaps := storage.FileSnapshots{Path: path}
	if err := snaps.Save(man.Encode(), m.Serialize()); err != nil {
		t.Fatal(err)
	}
	// Tear the file mid-state (past the manifest section).
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, b[:len(b)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	j := core.NewMemJournal()
	j.Executed(50, []types.Pos{5, 5, 5, 5}, make([]types.Digest, 4), types.Digest{0x50}, 20)
	nd := newSnapNode(j, snaps)
	if got := nd.Orderer().NextExec(); got != 50 {
		t.Fatalf("recovered at slot %d, want journal frontier 50 (torn snapshot must not win)", got)
	}
}

// TestTruncateCrashRecovers drives the truncation path into an injected
// crash (satellite faultfile regression): tombstones partially persist,
// the compact never happens, and a reopened journal plus the already-
// durable snapshot must still recover at the snapshot frontier.
func TestTruncateCrashRecovers(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal")
	st, err := storage.OpenWithFaults(path, &storage.FaultPlan{CrashAfterWrites: 6})
	if err != nil {
		t.Fatal(err)
	}
	j := core.NewWALJournal(st)
	j.Executed(50, []types.Pos{5, 5, 5, 5}, make([]types.Digest, 4), types.Digest{0x50}, 20)
	for s := types.Slot(1); s <= 4; s++ {
		j.PrepVote(&types.PrepVote{Slot: s, Voter: 0})
	}
	m, man := buildSnapshotState(80, 32)
	snaps := storage.FileSnapshots{Path: path + ".snap"}
	if err := snaps.Save(man.Encode(), m.Serialize()); err != nil {
		t.Fatal(err)
	}
	// Truncation crashes partway through its deletes (write 7+ hits the
	// crash point). The journal reports the failure; what's on disk is a
	// prefix of the tombstones.
	j.Truncate(0, man.Frontier, man.Next)
	j.Close()

	st2, err := storage.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	j2 := core.NewWALJournal(st2)
	nd := newSnapNode(j2, snaps)
	defer j2.Close()
	if got := nd.Orderer().NextExec(); got != 80 {
		t.Fatalf("recovered at slot %d after truncate crash, want 80", got)
	}
	if nd.Machine().AppHash() != man.AppHash {
		t.Fatal("chain oracle lost across truncate crash")
	}
}

// TestSnapshotRoundTripMemStore pins the MemSnapshots copy semantics:
// mutating the caller's buffers after Save must not corrupt the stored
// snapshot.
func TestSnapshotRoundTripMemStore(t *testing.T) {
	s := &core.MemSnapshots{}
	manifest := []byte{1, 2, 3}
	state := []byte{4, 5, 6}
	if err := s.Save(manifest, state); err != nil {
		t.Fatal(err)
	}
	manifest[0], state[0] = 9, 9
	gm, gs, err := s.Load()
	if err != nil {
		t.Fatal(err)
	}
	if gm[0] != 1 || gs[0] != 4 {
		t.Fatal("MemSnapshots aliased the caller's buffers")
	}
}
