package core_test

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/crypto"
	"repro/internal/lane"
	"repro/internal/metrics"
	"repro/internal/runtime"
	"repro/internal/sim"
	"repro/internal/types"
	"repro/internal/workload"
)

// equivocatingLane wraps an Autobahn node and, at configured positions,
// broadcasts a conflicting fork of its own lane proposal to half the
// replicas — the §A.4 Byzantine lane scenario. The wrapped node's own
// consensus participation stays honest so the attack is isolated to the
// data layer.
type equivocatingLane struct {
	*core.Node
	committee types.Committee
	suite     crypto.Suite
	self      types.NodeID
	seq       uint64
}

func (e *equivocatingLane) OnClientBatch(ctx runtime.Context, b *types.Batch) {
	e.Node.OnClientBatch(ctx, b)
	// Every few batches, fabricate a fork for the position just proposed
	// and send it to the odd-numbered replicas only.
	e.seq++
	if e.seq%3 != 0 {
		return
	}
	tip := e.Node.Lanes().OptimisticTip(e.self)
	if tip.Position == 0 {
		return
	}
	forkBatch := types.NewSyntheticBatch(e.self, 1_000_000+e.seq, b.Count, b.Bytes, b.MeanArrival, b.CreatedAt)
	fork := &types.Proposal{
		Lane:     e.self,
		Position: tip.Position, // same position, different content: a fork
		Batch:    forkBatch,
	}
	fork.Sig = e.suite.Signer(e.self).Sign(fork.SigningBytes())
	for _, id := range e.committee.Nodes() {
		if id != e.self && id%2 == 1 {
			ctx.Send(id, fork)
		}
	}
}

// TestEquivocatingLaneDoesNotBreakAgreement: a Byzantine lane owner forks
// its lane toward half the replicas; consensus still produces identical
// logs everywhere and honest lanes keep committing (§A.4: forks are
// resolved at commit time, at most one proposal per position commits).
func TestEquivocatingLaneDoesNotBreakAgreement(t *testing.T) {
	const n = 4
	committee := types.NewCommittee(n)
	suite := crypto.NewEd25519Suite(n, 21)
	rec := metrics.NewRecorder(2 * time.Minute)
	rec.Quorum = committee.F() + 1
	lc := newLogCollector(n, rec.Sink())
	eng := sim.NewEngine(sim.Config{
		Net:  sim.NewNetwork(sim.DefaultNetConfig(sim.IntraUSTopology())),
		Seed: 21,
	})
	ids := make([]types.NodeID, n)
	for i := 0; i < n; i++ {
		ids[i] = types.NodeID(i)
		nd := core.NewNode(core.Config{
			Committee: committee, Self: types.NodeID(i), Suite: suite,
			VerifySigs: true, FastPath: true, OptimisticTips: false,
			Sink: lc,
		})
		if i == 2 {
			eng.AddNode(&equivocatingLane{Node: nd, committee: committee, suite: suite, self: 2})
		} else {
			eng.AddNode(nd)
		}
	}
	workload.Install(eng, ids, workload.Config{TotalRate: 8000, Start: 0, End: 8 * time.Second})
	eng.Run(15 * time.Second)

	checkPrefixAgreement(t, lc.logs)
	// Honest lanes (3/4 of the load) must commit in full.
	if rec.Total() < 8000*8*3/4 {
		t.Fatalf("committed only %d txs under an equivocating lane", rec.Total())
	}
	// No position commits twice: scan replica 0's log.
	seen := make(map[[2]uint64]bool)
	for _, e := range lc.logs[0] {
		k := [2]uint64{uint64(e.Lane), uint64(e.Pos)}
		if seen[k] {
			t.Fatalf("lane %d position %d committed twice", e.Lane, e.Pos)
		}
		seen[k] = true
	}
	t.Logf("committed %d txs, %d entries at r0", rec.Total(), len(lc.logs[0]))
}

// TestForgedMessagesRejected: messages with invalid signatures or forged
// certificates must not affect honest replicas (with VerifySigs on).
func TestForgedMessagesRejected(t *testing.T) {
	committee := types.NewCommittee(4)
	suite := crypto.NewEd25519Suite(4, 9)
	rec := metrics.NewRecorder(time.Minute)
	rec.Quorum = 2
	lc := newLogCollector(4, rec.Sink())
	eng := sim.NewEngine(sim.Config{
		Net:  sim.NewNetwork(sim.DefaultNetConfig(sim.IntraUSTopology())),
		Seed: 9,
	})
	var nodes []*core.Node
	ids := []types.NodeID{0, 1, 2, 3}
	for i := 0; i < 4; i++ {
		nd := core.NewNode(core.Config{
			Committee: committee, Self: types.NodeID(i), Suite: suite,
			VerifySigs: true, FastPath: true, OptimisticTips: true, Sink: lc,
		})
		nodes = append(nodes, nd)
		eng.AddNode(nd)
	}
	workload.Install(eng, ids, workload.Config{TotalRate: 4000, Start: 0, End: 5 * time.Second})

	// Periodically inject forged traffic "from" r3 into r0.
	bogusSig := make([]byte, 64)
	eng.Every(100*time.Millisecond, 200*time.Millisecond, 5*time.Second, func(now time.Duration) {
		forgedProp := &types.Proposal{
			Lane: 3, Position: 1,
			Batch: types.NewSyntheticBatch(3, 999, 10, 5120, now, now),
			Sig:   bogusSig,
		}
		nodes[0].OnMessage(ctxOf(eng, 0), 3, forgedProp)
		forgedCommit := &types.CommitNotice{
			QC: types.CommitQC{Slot: 999, View: 0, Digest: types.Digest{1}, Shares: []types.SigShare{
				{Signer: 1, Sig: bogusSig}, {Signer: 2, Sig: bogusSig}, {Signer: 3, Sig: bogusSig},
			}},
			Proposal: types.ConsensusProposal{Slot: 999, Cut: types.NewEmptyCut(4)},
		}
		nodes[0].OnMessage(ctxOf(eng, 0), 3, forgedCommit)
	})
	eng.Run(10 * time.Second)

	checkPrefixAgreement(t, lc.logs)
	if rec.Total() < 19_000 {
		t.Fatalf("forged traffic disrupted honest commits: %d", rec.Total())
	}
	if nodes[0].Engine().Decided(999) {
		t.Fatal("forged CommitQC decided a slot")
	}
}

// ctxOf builds a minimal runtime.Context for direct message injection in
// tests (sends from it are delivered through the engine's own plumbing
// because the node under test uses its own ctx for replies — we only need
// Now / timers to be safe no-ops here).
func ctxOf(eng *sim.Engine, id types.NodeID) runtime.Context {
	return injectCtx{eng: eng, id: id}
}

type injectCtx struct {
	eng *sim.Engine
	id  types.NodeID
}

func (c injectCtx) ID() types.NodeID                         { return c.id }
func (c injectCtx) Now() time.Duration                       { return c.eng.Now() }
func (c injectCtx) Send(types.NodeID, types.Message)         {}
func (c injectCtx) Broadcast(types.Message)                  {}
func (c injectCtx) SetTimer(time.Duration, runtime.TimerTag) {}
func (c injectCtx) CancelTimer(runtime.TimerTag)             {}
func (c injectCtx) Rand() uint64                             { return 4 }

// TestLaneStateRejectsForkVotes exercises the lane layer's one-vote-per-
// position rule directly under real signatures.
func TestLaneStateRejectsForkVotes(t *testing.T) {
	committee := types.NewCommittee(4)
	suite := crypto.NewEd25519Suite(4, 13)
	mk := func(id types.NodeID) *lane.State {
		return lane.NewState(lane.Config{
			Committee: committee, Self: id,
			Signer: suite.Signer(id), Verifier: suite.Verifier(),
			VerifyProposals: true,
		})
	}
	honest := mk(1)
	// Byzantine r0 signs two proposals for position 1.
	mkProp := func(seq uint64) *types.Proposal {
		p := &types.Proposal{
			Lane: 0, Position: 1,
			Batch: types.NewSyntheticBatch(0, seq, 10, 5120, 0, 0),
		}
		p.Sig = suite.Signer(0).Sign(p.SigningBytes())
		return p
	}
	a, b := mkProp(1), mkProp(2)
	votesA, err := honest.OnProposal(a)
	if err != nil || len(votesA) != 1 {
		t.Fatalf("first fork: %v %v", votesA, err)
	}
	votesB, err := honest.OnProposal(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(votesB) != 0 {
		t.Fatal("honest replica voted for both forks of one position")
	}
}
