package core_test

import (
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/crypto"
	"repro/internal/runtime"
	"repro/internal/transport"
	"repro/internal/types"
	"repro/internal/workload"
)

// shardedCluster is a real-time in-process cluster with the parallel
// data plane enabled: every replica runs W shard workers plus the
// control loop, connected by a transport.LocalMesh. Group commit against
// an in-memory journal is on, so the per-shard flush barrier (gated
// sends released after Journal.Sync) is exercised too.
type shardedCluster struct {
	mesh  *transport.LocalMesh
	nodes []*core.Node

	mu   sync.Mutex
	logs [][]logEntry
}

func newShardedCluster(t *testing.T, n, shards int) *shardedCluster {
	t.Helper()
	sc := &shardedCluster{mesh: transport.NewLocalMesh(), logs: make([][]logEntry, n)}
	committee := types.NewCommittee(n)
	suite := crypto.NewEd25519Suite(n, 7)
	sink := runtime.CommitSinkFunc(func(node types.NodeID, _ time.Duration, c runtime.Committed) {
		sc.mu.Lock()
		sc.logs[node] = append(sc.logs[node], logEntry{Lane: c.Lane, Pos: c.Position, Dig: c.Batch.Digest()})
		sc.mu.Unlock()
	})
	for i := 0; i < n; i++ {
		nd := core.NewNode(core.Config{
			Committee:      committee,
			Self:           types.NodeID(i),
			Suite:          suite,
			VerifySigs:     true,
			FastPath:       true,
			OptimisticTips: true,
			Shards:         shards,
			Journal:        core.NewMemJournal(),
			GroupCommit:    true,
			Sink:           sink,
		})
		sc.nodes = append(sc.nodes, nd)
		sc.mesh.AddNode(nd, time.Now())
	}
	return sc
}

func (sc *shardedCluster) stop() {
	sc.mesh.Stop()
	for i := range sc.nodes {
		sc.mesh.Loop(types.NodeID(i)).Join()
	}
}

// TestShardedClusterAgreesAndProgresses runs a 4-replica cluster with 4
// data shards per replica under sustained submission at every replica,
// then checks the invariants the shard↔consensus tip handoff must
// preserve: identical total order across replicas (prefix agreement),
// per-lane contiguous gap-free commit positions, and actual progress on
// every lane. Run with -race: this is the primary concurrency regression
// test for the parallel data plane.
func TestShardedClusterAgreesAndProgresses(t *testing.T) {
	const (
		n       = 4
		shards  = 4
		batches = 60
	)
	sc := newShardedCluster(t, n, shards)
	sc.mesh.Start()
	defer sc.stop()

	var seq [n]uint64
	for b := 0; b < batches; b++ {
		for i := 0; i < n; i++ {
			seq[i]++
			txs := []types.Transaction{make(types.Transaction, 64)}
			sc.mesh.Loop(types.NodeID(i)).Submit(types.NewBatch(types.NodeID(i), seq[i], txs, 0))
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Wait until every replica commits every lane's full run (or time out).
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		if sc.committedAll(n, batches) {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}

	sc.mu.Lock()
	defer sc.mu.Unlock()
	checkPrefixAgreement(t, sc.logs)
	for r := range sc.logs {
		perLane := make(map[types.NodeID]types.Pos)
		for _, e := range sc.logs[r] {
			if e.Pos != perLane[e.Lane]+1 {
				t.Fatalf("replica %d: lane %s commits position %d after %d (gap)",
					r, e.Lane, e.Pos, perLane[e.Lane])
			}
			perLane[e.Lane] = e.Pos
		}
		if len(perLane) != n {
			t.Fatalf("replica %d: only %d of %d lanes committed anything", r, len(perLane), n)
		}
		for l, pos := range perLane {
			if pos == 0 {
				t.Fatalf("replica %d: lane %s never committed", r, l)
			}
		}
	}
	t.Logf("replica 0 committed %d entries", len(sc.logs[0]))
}

func (sc *shardedCluster) committedAll(n, batches int) bool {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	for r := range sc.logs {
		perLane := make(map[types.NodeID]int)
		for _, e := range sc.logs[r] {
			perLane[e.Lane]++
		}
		for i := 0; i < n; i++ {
			// Mini-batching merges pending batches into cars, so the car
			// count per lane is <= batches; completion = every submitted
			// batch's payload committed. Count committed batches via
			// positions reached instead: all lanes must have committed
			// through their final car, which we can only bound loosely —
			// require at least one commit per lane and stable totals.
			if perLane[types.NodeID(i)] == 0 {
				return false
			}
		}
		if len(sc.logs[r]) < len(sc.logs[0]) {
			return false
		}
	}
	return true
}

// TestShardedNodeUnshardedRuntimeFallback pins the fallback contract: a
// node configured with Shards > 1 but driven by a runtime that ignores
// runtime.Sharder (everything delivered through OnMessage on one
// goroutine) must still be correct — data messages run the shard path
// inline with an immediate notice flush. A 4-node simulated cluster
// would hide this (sim never sets Shards); drive one node directly.
func TestShardedNodeUnshardedRuntimeFallback(t *testing.T) {
	c := newClusterWith(t, func(o *clusterOpts) {
		o.fastPath = true
		o.optimisticTips = true
		o.shards = 4 // sim engine ignores Sharder: exercises the fallback
	})
	workload.Install(c.engine, c.ids, workload.Config{
		TotalRate: 10000, Start: 0, End: 5 * time.Second,
	})
	c.engine.Run(8 * time.Second)
	checkPrefixAgreement(t, c.logs.logs)
	if total := c.recorder.Total(); total < 45_000 {
		t.Fatalf("fallback path committed only %d of ~50000 txs", total)
	}
}
